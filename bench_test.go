package repro

// This file holds the reproduction's benchmark harness: one benchmark
// family per experiment in DESIGN.md's per-experiment index (E1–E9; the
// later additions E2b, E7b, E10, and E11 are measured by the cmd/bench
// harness instead — see DESIGN.md §3). The
// paper (HPDC 1999) has no results tables — it is a standards proposal —
// so each experiment operationalizes one of its quantitative claims (C1–C5)
// or architecture figures (F1–F3); EXPERIMENTS.md records the outcomes.
//
// Run everything:
//
//	go test -bench=. -benchmem .
//
// Run one experiment:
//
//	go test -bench=BenchmarkE4 .

import (
	"fmt"
	"math"
	"sync"
	"sync/atomic"
	"testing"

	"repro/internal/beans"
	"repro/internal/cca"
	"repro/internal/cca/collective"
	"repro/internal/cca/framework"
	"repro/internal/esi"
	"repro/internal/hydro"
	"repro/internal/linalg"
	"repro/internal/mesh"
	"repro/internal/mpi"
	"repro/internal/orb"
	"repro/internal/sidl"
	"repro/internal/sidl/codegen"
	"repro/internal/sidl/sreflect"
	"repro/internal/transport"
	"repro/internal/viz"
)

// ---------------------------------------------------------------------------
// E1 — C1+C2 (§6.2): per-call overhead of the connection mechanisms.
// Direct Go call vs direct-connected port vs SIDL stub (2–3 calls) vs
// framework-interposed proxy vs reflective DMI.
// ---------------------------------------------------------------------------

// benchOp is a minimal fine-grain operator implementing the generated
// EsiOperator binding.
type benchOp struct{ n int }

func (o *benchOp) TypeName() string { return "bench.Op" }
func (o *benchOp) Rows() int32      { return int32(o.n) }
func (o *benchOp) Apply(x []float64, y *[]float64) error {
	out := *y
	for i := range out {
		out[i] = 2 * x[i]
	}
	return nil
}

// sink defeats dead-code elimination.
var sink float64

func benchApplyThrough(b *testing.B, op esi.EsiOperator) {
	b.Helper()
	x := []float64{1, 2, 3, 4}
	y := make([]float64, 4)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := op.Apply(x, &y); err != nil {
			b.Fatal(err)
		}
	}
	sink = y[0]
}

func BenchmarkE1_DirectGoCall(b *testing.B) {
	benchApplyThrough(b, &benchOp{n: 4})
}

func BenchmarkE1_DirectConnectPort(b *testing.B) {
	// Full framework wiring; the fetched port must be the provider's very
	// interface value (C1: "no penalty").
	fw := framework.New(framework.Options{})
	prov := &portProvider{op: &benchOp{n: 4}}
	user := &portUser{}
	if err := fw.Install("p", prov); err != nil {
		b.Fatal(err)
	}
	if err := fw.Install("u", user); err != nil {
		b.Fatal(err)
	}
	if _, err := fw.Connect("u", "op", "p", "op"); err != nil {
		b.Fatal(err)
	}
	port, err := user.svc.GetPort("op")
	if err != nil {
		b.Fatal(err)
	}
	benchApplyThrough(b, port.(esi.EsiOperator))
}

func BenchmarkE1_SIDLStub(b *testing.B) {
	// C2: stub -> EPV -> skeleton, "approximately 2-3 function calls".
	benchApplyThrough(b, esi.NewEsiOperatorStub(&benchOp{n: 4}))
}

func BenchmarkE1_DoubleStub(b *testing.B) {
	// Two stacked bindings — the upper bound of the paper's "2-3 calls"
	// estimate (caller-side and callee-side language bindings).
	benchApplyThrough(b, esi.NewEsiOperatorStub(esi.NewEsiOperatorStub(&benchOp{n: 4})))
}

func BenchmarkE1_ProxyInterposedPort(b *testing.B) {
	// §6.2 ablation: the framework interposes the SIDL stub as a proxy.
	fw := framework.New(framework.Options{
		Proxy: func(p cca.Port, info cca.PortInfo) cca.Port {
			return esi.NewEsiOperatorStub(p.(esi.EsiOperator))
		},
	})
	prov := &portProvider{op: &benchOp{n: 4}}
	user := &portUser{}
	if err := fw.Install("p", prov); err != nil {
		b.Fatal(err)
	}
	if err := fw.Install("u", user); err != nil {
		b.Fatal(err)
	}
	if _, err := fw.Connect("u", "op", "p", "op"); err != nil {
		b.Fatal(err)
	}
	port, _ := user.svc.GetPort("op")
	benchApplyThrough(b, port.(esi.EsiOperator))
}

func BenchmarkE1_ReflectionDMI(b *testing.B) {
	// §5's dynamic method invocation path.
	info, ok := sreflect.Global.Lookup("esi.Operator")
	if !ok {
		b.Fatal("esi.Operator not registered")
	}
	obj, err := sreflect.NewObject(info, &benchOp{n: 4})
	if err != nil {
		b.Fatal(err)
	}
	x := []float64{1, 2, 3, 4}
	y := make([]float64, 4)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := obj.Call("apply", x, &y); err != nil {
			b.Fatal(err)
		}
	}
	sink = y[0]
}

type portProvider struct{ op *benchOp }

func (p *portProvider) SetServices(svc cca.Services) error {
	return svc.AddProvidesPort(p.op, cca.PortInfo{Name: "op", Type: esi.TypeOperator})
}

type portUser struct{ svc cca.Services }

func (u *portUser) SetServices(svc cca.Services) error {
	u.svc = svc
	return svc.RegisterUsesPort(cca.PortInfo{Name: "op", Type: esi.TypeOperator})
}

// ---------------------------------------------------------------------------
// E2 — C3 (§3.3): the mandatory-marshaling ORB versus a direct port, by
// payload size; plus the genuinely remote TCP call for scale.
// ---------------------------------------------------------------------------

type sumServer struct{}

func (sumServer) Sum(xs []float64) float64 {
	var s float64
	for _, x := range xs {
		s += x
	}
	return s
}

// SumPort is the port-interface equivalent of the ORB servant.
type SumPort interface {
	Sum(xs []float64) float64
}

var e2Sizes = []int{1, 16, 256, 4096, 65536}

func e2Info(b *testing.B) *sreflect.TypeInfo {
	b.Helper()
	f, err := sidl.Parse(`package bench { interface Sum { double sum(in array<double,1> xs); } }`)
	if err != nil {
		b.Fatal(err)
	}
	tbl, err := sidl.Resolve(f)
	if err != nil {
		b.Fatal(err)
	}
	for _, ti := range sreflect.FromTable(tbl) {
		if ti.QName == "bench.Sum" {
			return ti
		}
	}
	b.Fatal("bench.Sum missing")
	return nil
}

func BenchmarkE2_DirectPortCall(b *testing.B) {
	for _, n := range e2Sizes {
		b.Run(fmt.Sprintf("floats=%d", n), func(b *testing.B) {
			var p SumPort = sumServer{}
			xs := make([]float64, n)
			b.SetBytes(int64(8 * n))
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				sink = p.Sum(xs)
			}
		})
	}
}

func BenchmarkE2_ORBInProcess(b *testing.B) {
	info := e2Info(b)
	for _, n := range e2Sizes {
		b.Run(fmt.Sprintf("floats=%d", n), func(b *testing.B) {
			o := orb.NewInProcessORB()
			if err := o.OA.Register("sum", info, sumServer{}); err != nil {
				b.Fatal(err)
			}
			proxy := o.Proxy("sum")
			xs := make([]float64, n)
			b.SetBytes(int64(8 * n))
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				res, err := proxy.Invoke("sum", xs)
				if err != nil {
					b.Fatal(err)
				}
				sink = res[0].(float64)
			}
		})
	}
}

func BenchmarkE2_ORBRemoteTCP(b *testing.B) {
	info := e2Info(b)
	for _, n := range e2Sizes {
		b.Run(fmt.Sprintf("floats=%d", n), func(b *testing.B) {
			oa := orb.NewObjectAdapter()
			if err := oa.Register("sum", info, sumServer{}); err != nil {
				b.Fatal(err)
			}
			l, err := transport.TCP{}.Listen("127.0.0.1:0")
			if err != nil {
				b.Fatal(err)
			}
			srv := orb.Serve(oa, l)
			defer srv.Stop()
			c, err := orb.DialClient(transport.TCP{}, srv.Addr())
			if err != nil {
				b.Fatal(err)
			}
			defer c.Close()
			proxy := c.Proxy("sum")
			xs := make([]float64, n)
			b.SetBytes(int64(8 * n))
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				res, err := proxy.Invoke("sum", xs)
				if err != nil {
					b.Fatal(err)
				}
				sink = res[0].(float64)
			}
		})
	}
}

// BenchmarkE2_ORBRemoteTCPPipelined measures the multiplexed remote path:
// 16 callers keep their requests in flight concurrently on one TCP
// connection, so correlation-ID pipelining amortizes round trips and the
// write coalescer batches frames into shared writev windows. Compare
// against BenchmarkE2_ORBRemoteTCP (one outstanding call) for the
// throughput win.
func BenchmarkE2_ORBRemoteTCPPipelined(b *testing.B) {
	info := e2Info(b)
	const callers = 16
	for _, n := range []int{1, 4096} {
		b.Run(fmt.Sprintf("floats=%d", n), func(b *testing.B) {
			oa := orb.NewObjectAdapter()
			if err := oa.Register("sum", info, sumServer{}); err != nil {
				b.Fatal(err)
			}
			l, err := transport.TCP{}.Listen("127.0.0.1:0")
			if err != nil {
				b.Fatal(err)
			}
			srv := orb.Serve(oa, l)
			defer srv.Stop()
			c, err := orb.DialClient(transport.TCP{}, srv.Addr())
			if err != nil {
				b.Fatal(err)
			}
			defer c.Close()
			xs := make([]float64, n)
			b.SetBytes(int64(8 * n))
			b.ResetTimer()
			var wg sync.WaitGroup
			var next atomic.Int64
			for g := 0; g < callers; g++ {
				wg.Add(1)
				go func() {
					defer wg.Done()
					for next.Add(1) <= int64(b.N) {
						res, err := c.Invoke("sum", "sum", xs)
						if err != nil {
							b.Error(err)
							return
						}
						sink = res[0].(float64)
					}
				}()
			}
			wg.Wait()
		})
	}
}

// ---------------------------------------------------------------------------
// E3 — C4 (§3.2/§6): JavaBeans-style event delivery versus port fan-out.
// ---------------------------------------------------------------------------

var e3Fanouts = []int{1, 4, 16, 64}

func BenchmarkE3_BeansEvents(b *testing.B) {
	for _, fan := range e3Fanouts {
		b.Run(fmt.Sprintf("listeners=%d", fan), func(b *testing.B) {
			bean := beans.NewBean("src")
			var acc float64
			for i := 0; i < fan; i++ {
				bean.AddListener("tick", beans.ListenerFunc(func(e beans.Event) {
					acc += e.Payload.(float64)
				}))
			}
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				bean.Fire("tick", 1.5)
			}
			sink = acc
		})
	}
}

// tickPort is the typed port equivalent of the event above.
type tickPort interface{ Tick(v float64) }

type tickSink struct{ acc float64 }

func (t *tickSink) Tick(v float64) { t.acc += v }
func (t *tickSink) SetServices(svc cca.Services) error {
	return svc.AddProvidesPort(t, cca.PortInfo{Name: "tick", Type: "bench.Tick"})
}

func BenchmarkE3_PortFanOut(b *testing.B) {
	for _, fan := range e3Fanouts {
		b.Run(fmt.Sprintf("listeners=%d", fan), func(b *testing.B) {
			fw := framework.New(framework.Options{})
			user := &tickUser{}
			if err := fw.Install("u", user); err != nil {
				b.Fatal(err)
			}
			for i := 0; i < fan; i++ {
				name := fmt.Sprintf("s%d", i)
				if err := fw.Install(name, &tickSink{}); err != nil {
					b.Fatal(err)
				}
				if _, err := fw.Connect("u", "tick", name, "tick"); err != nil {
					b.Fatal(err)
				}
			}
			ports, err := user.svc.GetPorts("tick")
			if err != nil {
				b.Fatal(err)
			}
			typed := make([]tickPort, len(ports))
			for i, p := range ports {
				typed[i] = p.(tickPort)
			}
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				for _, p := range typed {
					p.Tick(1.5)
				}
			}
		})
	}
}

type tickUser struct{ svc cca.Services }

func (u *tickUser) SetServices(svc cca.Services) error {
	u.svc = svc
	return svc.RegisterUsesPort(cca.PortInfo{Name: "tick", Type: "bench.Tick"})
}

// ---------------------------------------------------------------------------
// E4 — C5 (§6.3): collective-port redistribution across map shapes, with
// the matched fast path and its forced ablation.
// ---------------------------------------------------------------------------

func benchTransfer(b *testing.B, world int, src, dst collective.Side, forced bool) {
	b.Helper()
	plan, err := collective.NewPlan(src, dst)
	if err != nil {
		b.Fatal(err)
	}
	n := plan.GlobalLen()
	b.SetBytes(int64(8 * n))
	b.ResetTimer()
	mpi.Run(world, func(c *mpi.Comm) {
		local := make([]float64, plan.SrcLocalLen(c.Rank()))
		out := make([]float64, plan.DstLocalLen(c.Rank()))
		for i := 0; i < b.N; i++ {
			var err error
			if forced {
				err = plan.TransferForced(c, local, out)
			} else {
				err = plan.Transfer(c, local, out)
			}
			if err != nil {
				b.Errorf("rank %d: %v", c.Rank(), err)
				return
			}
		}
	})
}

func BenchmarkE4_Redistribution(b *testing.B) {
	ranks := func(lo, n int) []int {
		out := make([]int, n)
		for i := range out {
			out[i] = lo + i
		}
		return out
	}
	for _, n := range []int{1000, 100000} {
		b.Run(fmt.Sprintf("n=%d/matched4to4", n), func(b *testing.B) {
			benchTransfer(b, 4, collective.Block(n, ranks(0, 4)), collective.Block(n, ranks(0, 4)), false)
		})
		b.Run(fmt.Sprintf("n=%d/matched4to4-forced", n), func(b *testing.B) {
			benchTransfer(b, 4, collective.Block(n, ranks(0, 4)), collective.Block(n, ranks(0, 4)), true)
		})
		b.Run(fmt.Sprintf("n=%d/block4toCyclic4", n), func(b *testing.B) {
			benchTransfer(b, 8, collective.Block(n, ranks(0, 4)), collective.Cyclic(n, 64, ranks(4, 4)), false)
		})
		b.Run(fmt.Sprintf("n=%d/scatter1to4", n), func(b *testing.B) {
			benchTransfer(b, 5, collective.Serial(n, 0), collective.Block(n, ranks(1, 4)), false)
		})
		b.Run(fmt.Sprintf("n=%d/gather4to1", n), func(b *testing.B) {
			benchTransfer(b, 5, collective.Block(n, ranks(0, 4)), collective.Serial(n, 4), false)
		})
		b.Run(fmt.Sprintf("n=%d/block2to8", n), func(b *testing.B) {
			benchTransfer(b, 10, collective.Block(n, ranks(0, 2)), collective.Block(n, ranks(2, 8)), false)
		})
	}
}

// ---------------------------------------------------------------------------
// E5 — F1 (§2): the full semi-implicit timestep, ports-wired versus a
// hand-wired monolith, across cohort sizes.
// ---------------------------------------------------------------------------

func BenchmarkE5_Figure1Pipeline(b *testing.B) {
	for _, p := range []int{1, 2, 4} {
		for _, grid := range []int{32, 64} {
			m := mesh.StructuredQuad(grid, grid)
			b.Run(fmt.Sprintf("ports/p=%d/grid=%d", p, grid), func(b *testing.B) {
				mpi.Run(p, func(comm *mpi.Comm) {
					flow := buildBenchPipeline(b, comm, m, p)
					// Warm once (binds mesh, builds the operator), then
					// exclude all setup from the measurement.
					if _, err := flow.Step(0.01); err != nil {
						b.Errorf("warm step: %v", err)
						return
					}
					if err := comm.Barrier(); err != nil {
						b.Errorf("barrier: %v", err)
						return
					}
					if comm.Rank() == 0 {
						b.ResetTimer()
					}
					for i := 0; i < b.N; i++ {
						if _, err := flow.Step(0.01); err != nil {
							b.Errorf("step: %v", err)
							return
						}
					}
				})
			})
			b.Run(fmt.Sprintf("monolith/p=%d/grid=%d", p, grid), func(b *testing.B) {
				mpi.Run(p, func(comm *mpi.Comm) {
					mono, err := newMonolith(comm, m, p)
					if err != nil {
						b.Errorf("monolith: %v", err)
						return
					}
					if err := mono.step(0.01); err != nil {
						b.Errorf("warm step: %v", err)
						return
					}
					if err := comm.Barrier(); err != nil {
						b.Errorf("barrier: %v", err)
						return
					}
					if comm.Rank() == 0 {
						b.ResetTimer()
					}
					for i := 0; i < b.N; i++ {
						if err := mono.step(0.01); err != nil {
							b.Errorf("step: %v", err)
							return
						}
					}
				})
			})
		}
	}
}

func buildBenchPipeline(b *testing.B, comm *mpi.Comm, m *mesh.Mesh, p int) hydro.FlowPort {
	b.Helper()
	c := framework.NewCohort(comm, framework.Options{})
	if err := c.InstallParallel("mesh", func(rank int) cca.Component {
		mc, err := hydro.NewMeshComponent(m, "rcb", p, rank)
		if err != nil {
			b.Errorf("mesh: %v", err)
		}
		return mc
	}); err != nil {
		b.Errorf("install: %v", err)
	}
	if err := c.InstallParallel("flow", func(rank int) cca.Component {
		fc, err := hydro.NewFlowComponent(comm, hydro.Config{
			Nu: 1, Tol: 1e-8, Prec: "jacobi",
			// A steady source keeps per-step solve work constant, so the
			// benchmark is not chasing a decaying field.
			Source: benchSource,
		})
		if err != nil {
			b.Errorf("flow: %v", err)
		}
		return fc
	}); err != nil {
		b.Errorf("install: %v", err)
	}
	if _, err := c.ConnectParallel("flow", "mesh", "mesh", "mesh"); err != nil {
		b.Errorf("connect: %v", err)
	}
	comp, _ := c.F.Component("flow")
	return comp.(hydro.FlowPort)
}

// monolith replicates the FlowComponent's semi-implicit diffusion step with
// zero CCA machinery: the baseline quantifying what port wiring costs.
type monolith struct {
	comm     *mpi.Comm
	dec      *mesh.Decomposition
	op       *mesh.DistOperator
	prec     linalg.Preconditioner
	u        []float64
	source   []float64
	boundary map[int]bool
}

func newMonolith(comm *mpi.Comm, m *mesh.Mesh, p int) (*monolith, error) {
	part := mesh.RCB{}.PartitionNodes(m, p)
	dec, err := mesh.Decompose(m, part, p, comm.Rank())
	if err != nil {
		return nil, err
	}
	boundary := map[int]bool{}
	for _, n := range m.BoundaryNodes() {
		boundary[n] = true
	}
	const dt, nu = 0.01, 1.0
	var entries []mesh.Entry
	for i := 0; i < m.NumNodes(); i++ {
		if boundary[i] {
			entries = append(entries, mesh.Entry{Row: i, Col: i, Val: 1})
			continue
		}
		deg := 0
		for _, j := range m.NodeNeighbors(i) {
			deg++
			if !boundary[j] {
				entries = append(entries, mesh.Entry{Row: i, Col: j, Val: -dt * nu})
			}
		}
		entries = append(entries, mesh.Entry{Row: i, Col: i, Val: 1 + dt*nu*float64(deg)})
	}
	op, err := mesh.NewDistOperator(dec, comm, entries)
	if err != nil {
		return nil, err
	}
	diag := op.Local.Diagonal()
	prec, err := linalg.NewJacobiFromDiag(diag[:dec.NumOwned()])
	if err != nil {
		return nil, err
	}
	u := make([]float64, dec.NumLocal())
	src := make([]float64, dec.NumOwned())
	for li, g := range dec.Owned {
		c := m.Coords[g]
		dx, dy := c[0]-0.5, c[1]-0.5
		if !boundary[g] {
			u[li] = math.Exp(-50 * (dx*dx + dy*dy)) // same IC as FlowComponent
			src[li] = benchSource(c[0], c[1])
		}
	}
	mo := &monolith{comm: comm, dec: dec, op: op, prec: prec, u: u, boundary: boundary, source: src}
	return mo, dec.Exchange(comm, u)
}

// benchSource is the steady forcing shared by the ports and monolith
// variants of E5.
func benchSource(x, y float64) float64 {
	dx, dy := x-0.3, y-0.6
	return 4 * math.Exp(-30*(dx*dx+dy*dy))
}

// step mirrors FlowComponent.Step's work exactly — ghost exchange, the
// (zero-velocity) advection sweep, the implicit solve, and the four-way
// stats reduction — with no CCA machinery, isolating port-wiring overhead.
func (mo *monolith) step(dt float64) error {
	m := mo.dec.M
	n := mo.dec.NumOwned()
	if err := mo.dec.Exchange(mo.comm, mo.u); err != nil {
		return err
	}
	ustar := make([]float64, n)
	for li, g := range mo.dec.Owned {
		if mo.boundary[g] {
			ustar[li] = mo.u[li]
			continue
		}
		ui := mo.u[li]
		acc, rate := 0.0, 0.0
		for _, j := range m.NodeNeighbors(g) {
			e := [2]float64{m.Coords[j][0] - m.Coords[g][0], m.Coords[j][1] - m.Coords[g][1]}
			h2 := e[0]*e[0] + e[1]*e[1]
			if h2 == 0 {
				continue
			}
			c := -(0*e[0] + 0*e[1]) / h2
			if c > 0 {
				lj := mo.dec.LocalIndex(j)
				acc += c * (mo.u[lj] - ui)
				rate += c
			}
		}
		_ = rate
		ustar[li] = ui + dt*acc + dt*mo.source[li]
	}
	x := make([]float64, n)
	copy(x, mo.u[:n])
	_, err := (linalg.CG{}).Solve(mo.op, ustar, x, linalg.Options{
		Tol: 1e-8, Dot: mesh.GlobalDot(mo.comm), Prec: mo.prec,
	})
	if err != nil {
		return err
	}
	copy(mo.u[:n], x)
	if err := mo.dec.Exchange(mo.comm, mo.u); err != nil {
		return err
	}
	// Stats reduction, as FlowComponent does after every step.
	lmin, lmax, lsum, lsq := math.Inf(1), math.Inf(-1), 0.0, 0.0
	for _, v := range mo.u[:n] {
		lmin = math.Min(lmin, v)
		lmax = math.Max(lmax, v)
		lsum += v
		lsq += v * v
	}
	for _, red := range []struct {
		v  float64
		op mpi.Op
	}{{lmin, mpi.Min}, {lmax, mpi.Max}, {lsum, mpi.Sum}, {lsq, mpi.Sum}} {
		if _, err := mo.comm.AllreduceScalar(red.v, red.op); err != nil {
			return err
		}
	}
	return nil
}

// ---------------------------------------------------------------------------
// E6 — F3 (§6.1): connection-mechanism throughput and the dynamic-attach
// latency of §2.2.
// ---------------------------------------------------------------------------

func BenchmarkE6_ConnectDisconnect(b *testing.B) {
	fw := framework.New(framework.Options{})
	prov := &portProvider{op: &benchOp{n: 4}}
	user := &portUser{}
	if err := fw.Install("p", prov); err != nil {
		b.Fatal(err)
	}
	if err := fw.Install("u", user); err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		id, err := fw.Connect("u", "op", "p", "op")
		if err != nil {
			b.Fatal(err)
		}
		if err := fw.Disconnect(id); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkE6_GetPort(b *testing.B) {
	fw := framework.New(framework.Options{})
	prov := &portProvider{op: &benchOp{n: 4}}
	user := &portUser{}
	if err := fw.Install("p", prov); err != nil {
		b.Fatal(err)
	}
	if err := fw.Install("u", user); err != nil {
		b.Fatal(err)
	}
	if _, err := fw.Connect("u", "op", "p", "op"); err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		p, err := user.svc.GetPort("op")
		if err != nil {
			b.Fatal(err)
		}
		_ = p
		user.svc.ReleasePort("op")
	}
}

// BenchmarkE6_GetPortParallel measures GetPort/ReleasePort contention across
// goroutines. With the framework's RWMutex-plus-snapshot connection state the
// read hot path takes only a read lock, so throughput should scale with
// GOMAXPROCS instead of serializing on a single mutex.
func BenchmarkE6_GetPortParallel(b *testing.B) {
	fw := framework.New(framework.Options{})
	prov := &portProvider{op: &benchOp{n: 4}}
	user := &portUser{}
	if err := fw.Install("p", prov); err != nil {
		b.Fatal(err)
	}
	if err := fw.Install("u", user); err != nil {
		b.Fatal(err)
	}
	if _, err := fw.Connect("u", "op", "p", "op"); err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	b.RunParallel(func(pb *testing.PB) {
		for pb.Next() {
			p, err := user.svc.GetPort("op")
			if err != nil {
				b.Fatal(err)
			}
			_ = p
			user.svc.ReleasePort("op")
		}
	})
}

func BenchmarkE6_DynamicAttachSnapshot(b *testing.B) {
	// Time from "attach request" to first frame delivered, amortized:
	// plan + one pull per iteration over a 4-rank field.
	const p = 4
	m := mesh.StructuredQuad(24, 24)
	part := mesh.RCB{}.PartitionNodes(m, p)
	b.ResetTimer()
	mpi.Run(p+1, func(world *mpi.Comm) {
		d, err := mesh.Decompose(m, part, p, 0)
		if err != nil {
			b.Errorf("decompose: %v", err)
			return
		}
		side, err := hydro.SideOf(d, nil)
		if err != nil {
			b.Errorf("side: %v", err)
			return
		}
		me := world.Rank()
		var local []float64
		if me < p {
			local = make([]float64, side.Map.LocalLen(me))
		}
		for i := 0; i < b.N; i++ {
			plan, err := collective.NewPlan(side, collective.Serial(m.NumNodes(), p))
			if err != nil {
				b.Errorf("plan: %v", err)
				return
			}
			var out []float64
			if me == p {
				out = make([]float64, m.NumNodes())
			}
			if err := plan.Transfer(world, local, out); err != nil {
				b.Errorf("transfer: %v", err)
				return
			}
		}
	})
}

// ---------------------------------------------------------------------------
// E7 — §5: SIDL toolchain throughput and binding-generation cost.
// ---------------------------------------------------------------------------

func esiCorpusSrc(b *testing.B) string {
	b.Helper()
	esiSrc, portsSrc := esi.Sources()
	return esiSrc + "\n" + portsSrc
}

func BenchmarkE7_SIDLLex(b *testing.B) {
	src := esiCorpusSrc(b)
	b.SetBytes(int64(len(src)))
	for i := 0; i < b.N; i++ {
		if _, err := sidl.Lex(src); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkE7_SIDLParse(b *testing.B) {
	src := esiCorpusSrc(b)
	b.SetBytes(int64(len(src)))
	for i := 0; i < b.N; i++ {
		if _, err := sidl.Parse(src); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkE7_SIDLResolve(b *testing.B) {
	f, err := sidl.Parse(esiCorpusSrc(b))
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := sidl.Resolve(f); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkE7_SIDLCodegen(b *testing.B) {
	f, err := sidl.Parse(esiCorpusSrc(b))
	if err != nil {
		b.Fatal(err)
	}
	tbl, err := sidl.Resolve(f)
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := codegen.Generate(tbl, codegen.Options{PackageName: "x", Reflection: true}); err != nil {
			b.Fatal(err)
		}
	}
}

// ---------------------------------------------------------------------------
// E8 — §2.2/ESI: solver component swap, time-to-solution through identical
// port wiring.
// ---------------------------------------------------------------------------

func BenchmarkE8_SolverSwap(b *testing.B) {
	for _, grid := range []int{32, 64} {
		a := linalg.Poisson2D(grid, grid)
		rhs := make([]float64, a.NRows)
		if err := a.Apply(linalg.Ones(a.NCols), rhs); err != nil {
			b.Fatal(err)
		}
		for _, method := range []string{"cg", "gmres", "bicgstab"} {
			for _, prec := range []string{"none", "jacobi", "ilu0"} {
				b.Run(fmt.Sprintf("grid=%d/%s-%s", grid, method, prec), func(b *testing.B) {
					solver := wireBenchSolver(b, a, method, prec)
					solver.SetTolerance(1e-8)
					b.ResetTimer()
					for i := 0; i < b.N; i++ {
						x := make([]float64, a.NRows)
						if _, err := solver.Solve(rhs, &x); err != nil {
							b.Fatal(err)
						}
					}
				})
			}
		}
	}
}

func wireBenchSolver(b *testing.B, a *linalg.CSR, method, prec string) esi.EsiSolver {
	b.Helper()
	fw := framework.New(framework.Options{TypeCheck: esi.TypeChecker()})
	if err := fw.Install("op", esi.NewOperatorComponent(a)); err != nil {
		b.Fatal(err)
	}
	if err := fw.Install("solver", esi.NewSolverComponent(method)); err != nil {
		b.Fatal(err)
	}
	if err := fw.Install("prec", esi.NewPreconditionerComponent(prec)); err != nil {
		b.Fatal(err)
	}
	for _, c := range [][4]string{
		{"solver", "A", "op", "A"}, {"prec", "A", "op", "A"}, {"solver", "M", "prec", "M"},
	} {
		if _, err := fw.Connect(c[0], c[1], c[2], c[3]); err != nil {
			b.Fatal(err)
		}
	}
	comp, _ := fw.Component("solver")
	return comp.(esi.EsiSolver)
}

// ---------------------------------------------------------------------------
// E9 — §6.3 substrate: MPI collective scaling by rank count and payload.
// ---------------------------------------------------------------------------

func BenchmarkE9_MPICollectives(b *testing.B) {
	for _, p := range []int{2, 4, 8, 16} {
		for _, n := range []int{1, 1024, 131072} {
			b.Run(fmt.Sprintf("bcast/p=%d/floats=%d", p, n), func(b *testing.B) {
				b.SetBytes(int64(8 * n))
				mpi.Run(p, func(c *mpi.Comm) {
					data := make([]float64, n)
					for i := 0; i < b.N; i++ {
						var in []float64
						if c.Rank() == 0 {
							in = data
						}
						if _, err := c.BcastFloat64(0, in); err != nil {
							b.Errorf("bcast: %v", err)
							return
						}
					}
				})
			})
			b.Run(fmt.Sprintf("allreduce/p=%d/floats=%d", p, n), func(b *testing.B) {
				b.SetBytes(int64(8 * n))
				mpi.Run(p, func(c *mpi.Comm) {
					data := make([]float64, n)
					for i := 0; i < b.N; i++ {
						if _, err := c.AllreduceFloat64(data, mpi.Sum); err != nil {
							b.Errorf("allreduce: %v", err)
							return
						}
					}
				})
			})
		}
		b.Run(fmt.Sprintf("barrier/p=%d", p), func(b *testing.B) {
			mpi.Run(p, func(c *mpi.Comm) {
				for i := 0; i < b.N; i++ {
					if err := c.Barrier(); err != nil {
						b.Errorf("barrier: %v", err)
						return
					}
				}
			})
		})
	}
}

// Silence unused-import guards for packages used only in some benchmarks.
var _ = viz.RenderASCII

// ---------------------------------------------------------------------------
// Ablation — partitioner choice (DESIGN.md §3): RCB vs greedy BFS, measured
// as edge cut (communication proxy) and actual pipeline step time.
// ---------------------------------------------------------------------------

func BenchmarkAblation_Partitioner(b *testing.B) {
	for _, name := range []string{"rcb", "greedy"} {
		for _, p := range []int{2, 4} {
			m := mesh.StructuredQuad(48, 48)
			pt, err := mesh.NewPartitioner(name)
			if err != nil {
				b.Fatal(err)
			}
			part := pt.PartitionNodes(m, p)
			cut := mesh.EdgeCut(m, part)
			b.Run(fmt.Sprintf("%s/p=%d/edgecut=%d", name, p, cut), func(b *testing.B) {
				mpi.Run(p, func(comm *mpi.Comm) {
					dec, err := mesh.Decompose(m, part, p, comm.Rank())
					if err != nil {
						b.Errorf("decompose: %v", err)
						return
					}
					field := make([]float64, dec.NumLocal())
					if comm.Rank() == 0 {
						b.ResetTimer()
					}
					for i := 0; i < b.N; i++ {
						if err := dec.Exchange(comm, field); err != nil {
							b.Errorf("exchange: %v", err)
							return
						}
					}
				})
			})
		}
	}
}
