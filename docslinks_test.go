package repro

// Docs-link checker: every relative link in the repository's markdown must
// point at a file that exists, and every same-file `#anchor` link must
// match a heading. The doc set is navigable from the README's docs map,
// so a renamed file or section breaks CI, not a reader.

import (
	"os"
	"path/filepath"
	"regexp"
	"strings"
	"testing"
)

var (
	// [text](target) — inline links only; reference-style links are not
	// used in this repo. The target is cut at the first ')'.
	mdLink = regexp.MustCompile(`\]\(([^)\s]+)\)`)
	mdHead = regexp.MustCompile(`(?m)^#{1,6}\s+(.+)$`)
)

// githubSlug mimics GitHub's heading-anchor algorithm closely enough for
// the anchors this repo writes: lowercase, code ticks dropped, everything
// but letters/digits/spaces/hyphens/underscores removed, spaces to
// hyphens.
func githubSlug(heading string) string {
	h := strings.ToLower(strings.TrimSpace(heading))
	h = strings.ReplaceAll(h, "`", "")
	var b strings.Builder
	for _, r := range h {
		switch {
		case r >= 'a' && r <= 'z', r >= '0' && r <= '9', r == '-', r == '_':
			b.WriteRune(r)
		case r == ' ':
			b.WriteRune('-')
		}
	}
	return b.String()
}

func TestDocsRelativeLinks(t *testing.T) {
	var files []string
	err := filepath.WalkDir(".", func(path string, d os.DirEntry, err error) error {
		if err != nil {
			return err
		}
		if d.IsDir() {
			if name := d.Name(); name == ".git" || name == "testdata" {
				return filepath.SkipDir
			}
			return nil
		}
		if strings.EqualFold(filepath.Ext(path), ".md") {
			files = append(files, path)
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(files) == 0 {
		t.Fatal("no markdown files found (test must run from the repo root)")
	}

	for _, path := range files {
		src, err := os.ReadFile(path)
		if err != nil {
			t.Fatal(err)
		}
		// Anchors defined by this file's own headings.
		anchors := map[string]bool{}
		for _, m := range mdHead.FindAllStringSubmatch(string(src), -1) {
			anchors[githubSlug(m[1])] = true
		}
		for _, m := range mdLink.FindAllStringSubmatch(string(src), -1) {
			target := m[1]
			switch {
			case strings.Contains(target, "://"), strings.HasPrefix(target, "mailto:"):
				continue // external
			case strings.HasPrefix(target, "#"):
				if !anchors[target[1:]] {
					t.Errorf("%s: anchor link %q matches no heading", path, target)
				}
				continue
			}
			// Relative file link; an anchor suffix is checked against the
			// target file's headings.
			file, frag, _ := strings.Cut(target, "#")
			dest := filepath.Join(filepath.Dir(path), file)
			data, err := os.ReadFile(dest)
			if err != nil {
				t.Errorf("%s: dead relative link %q (%v)", path, target, err)
				continue
			}
			if frag != "" && strings.EqualFold(filepath.Ext(dest), ".md") {
				found := false
				for _, hm := range mdHead.FindAllStringSubmatch(string(data), -1) {
					if githubSlug(hm[1]) == frag {
						found = true
						break
					}
				}
				if !found {
					t.Errorf("%s: link %q: no heading in %s matches #%s", path, target, dest, frag)
				}
			}
		}
	}
}
