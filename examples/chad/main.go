// Chad runs the paper's Figure 1 end-to-end: a CHAD-like semi-implicit
// flow simulation distributed over P goroutine "ranks", wired entirely
// through CCA ports, with a serial visualization tool on an extra rank that
// attaches mid-run through a collective port and renders ASCII frames —
// the §2.2 scenario of "dynamically attaching a visualization tool to an
// ongoing simulation that is running on a remote parallel machine."
//
// Component graph (paper Figure 1):
//
//	driver (time integrator) ──flow──▶ flow ◀──mesh── mesh
//	                                    │ ──monitor──▶ stats monitor (per rank)
//	                                    └─field (collective DistArray port)──▶ viz (rank P)
//
// Run:
//
//	go run ./examples/chad [-p 4] [-grid 24] [-steps 12] [-attach 4]
package main

import (
	"flag"
	"fmt"
	"log"
	"os"

	"repro/internal/cca"
	"repro/internal/cca/collective"
	"repro/internal/cca/framework"
	"repro/internal/hydro"
	"repro/internal/mesh"
	"repro/internal/mpi"
	"repro/internal/viz"
)

func main() {
	p := flag.Int("p", 4, "parallel ranks of the flow component")
	grid := flag.Int("grid", 24, "mesh cells per side")
	steps := flag.Int("steps", 12, "timesteps")
	attachAt := flag.Int("attach", 4, "step at which the viz tool attaches")
	dt := flag.Float64("dt", 0.004, "timestep")
	nu := flag.Float64("nu", 0.4, "diffusion coefficient")
	flag.Parse()

	m := mesh.StructuredQuad(*grid, *grid)
	fmt.Printf("mesh: %d nodes, %d cells; flow on %d ranks + 1 viz rank\n",
		m.NumNodes(), m.NumCells(), *p)

	vizRank := *p
	mpi.Run(*p+1, func(world *mpi.Comm) {
		// Carve the flow cohort out of the world (viz keeps rank P).
		color := 0
		if world.Rank() == vizRank {
			color = 1
		}
		sub, err := world.Split(color, world.Rank())
		if err != nil {
			log.Fatal(err)
		}

		var flow *hydro.FlowComponent
		var driver *hydro.IntegratorComponent
		if world.Rank() != vizRank {
			flow, driver = buildFlow(sub, m, *p, *nu)
		}

		var att *viz.Attachment
		for step := 1; step <= *steps; step++ {
			if flow != nil {
				// The time-integrator component drives the flow through
				// its uses port (Figure 1's driver box).
				if _, err := driver.Run(1, *dt); err != nil {
					log.Fatalf("rank %d step %d: %v", world.Rank(), step, err)
				}
			}
			// Dynamic attach: all world ranks join the collective
			// connection at the agreed step.
			if step == *attachAt {
				att = attach(world, flow, m, *p, vizRank)
				if world.Rank() == vizRank {
					fmt.Printf("\n-- viz attached at step %d --\n", step)
				}
			}
			if att != nil {
				snap, err := att.Snapshot(world)
				if err != nil {
					log.Fatalf("rank %d snapshot: %v", world.Rank(), err)
				}
				if world.Rank() == vizRank && (step-*attachAt)%2 == 0 {
					fmt.Printf("\nstep %d:\n%s", step, viz.RenderASCII(m.Coords, snap, 2**grid+1, *grid+1))
				}
			}
		}
	})
}

// buildFlow assembles this rank's mesh+flow+monitor+driver components
// through the cohort framework.
func buildFlow(comm *mpi.Comm, m *mesh.Mesh, p int, nu float64) (*hydro.FlowComponent, *hydro.IntegratorComponent) {
	c := framework.NewCohort(comm, framework.Options{})
	if err := c.InstallParallel("mesh", func(rank int) cca.Component {
		mc, err := hydro.NewMeshComponent(m, "rcb", p, rank)
		if err != nil {
			log.Fatal(err)
		}
		return mc
	}); err != nil {
		log.Fatal(err)
	}
	var flow *hydro.FlowComponent
	if err := c.InstallParallel("flow", func(rank int) cca.Component {
		fc, err := hydro.NewFlowComponent(comm, hydro.Config{
			Nu: nu, Vel: [2]float64{3, 1.5}, Tol: 1e-9, Prec: "jacobi",
		})
		if err != nil {
			log.Fatal(err)
		}
		flow = fc
		return fc
	}); err != nil {
		log.Fatal(err)
	}
	// A stats monitor on rank 0 only prints; other ranks stay silent.
	if err := c.InstallParallel("stats", func(rank int) cca.Component {
		mon := &viz.StatsMonitor{}
		if rank == 0 {
			mon.Out = os.Stdout
		}
		return mon
	}); err != nil {
		log.Fatal(err)
	}
	if err := c.VerifyPorts("flow"); err != nil {
		log.Fatal(err)
	}
	if _, err := c.ConnectParallel("flow", "mesh", "mesh", "mesh"); err != nil {
		log.Fatal(err)
	}
	if _, err := c.ConnectParallel("flow", "monitor", "stats", "monitor"); err != nil {
		log.Fatal(err)
	}
	var driver *hydro.IntegratorComponent
	if err := c.InstallParallel("driver", func(rank int) cca.Component {
		driver = hydro.NewIntegratorComponent(1, 0.004)
		return driver
	}); err != nil {
		log.Fatal(err)
	}
	if _, err := c.ConnectParallel("driver", "flow", "flow", "flow"); err != nil {
		log.Fatal(err)
	}
	return flow, driver
}

// attach plans the collective connection on every world rank. Flow ranks
// pass their live component; the viz rank reconstructs the side metadata
// deterministically (same mesh, same partitioner — the SPMD consistency
// §6.3 relies on).
func attach(world *mpi.Comm, flow *hydro.FlowComponent, m *mesh.Mesh, p, vizRank int) *viz.Attachment {
	var att *viz.Attachment
	var err error
	if flow != nil {
		att, err = viz.Attach(flow, vizRank)
	} else {
		part := mesh.RCB{}.PartitionNodes(m, p)
		d, derr := mesh.Decompose(m, part, p, 0)
		if derr != nil {
			log.Fatal(derr)
		}
		side, serr := hydro.SideOf(d, nil)
		if serr != nil {
			log.Fatal(serr)
		}
		att, err = viz.Attach(vizSide{side: side}, vizRank)
	}
	if err != nil {
		log.Fatalf("rank %d attach: %v", world.Rank(), err)
	}
	return att
}

// vizSide carries the provider's side metadata on the consumer rank, which
// is never asked for data (it is not in the source side).
type vizSide struct {
	side collective.Side
}

func (v vizSide) Side() collective.Side { return v.side }
func (v vizSide) LocalData() []float64  { return nil }
