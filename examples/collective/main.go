// Collective demonstrates §6.3 of the paper: collective ports between
// parallel components with mismatched data distributions.
//
// An M-rank producer holds a block-distributed vector; an N-rank consumer
// wants it block-cyclic. The collective connection planner intersects the
// two data maps into a message schedule and executes it — plus the two
// degenerate cases the paper calls out: matched N→N maps (no communication
// at all) and serial↔parallel (scatter/gather semantics).
//
// Run:
//
//	go run ./examples/collective [-m 3] [-n 2] [-len 24] [-block 4]
package main

import (
	"flag"
	"fmt"
	"log"
	"strings"

	"repro/internal/cca/collective"
	"repro/internal/mpi"
)

func main() {
	mRanks := flag.Int("m", 3, "producer ranks")
	nRanks := flag.Int("n", 2, "consumer ranks")
	length := flag.Int("len", 24, "global vector length")
	block := flag.Int("block", 4, "consumer block-cyclic block size")
	flag.Parse()

	fmt.Printf("== M→N redistribution: block(%d ranks) → cyclic(%d ranks, b=%d), %d elements ==\n",
		*mRanks, *nRanks, *block, *length)
	producers := ranksFrom(0, *mRanks)
	consumers := ranksFrom(*mRanks, *nRanks)
	runPlan(*mRanks+*nRanks, *length,
		collective.Block(*length, producers),
		collective.Cyclic(*length, *block, consumers))

	fmt.Printf("\n== matched N→N: block → block on the same ranks (fast path) ==\n")
	runPlan(*mRanks, *length,
		collective.Block(*length, producers),
		collective.Block(*length, producers))

	fmt.Printf("\n== N→1 gather: block(%d ranks) → serial ==\n", *mRanks)
	runPlan(*mRanks+1, *length,
		collective.Block(*length, producers),
		collective.Serial(*length, *mRanks))
}

func ranksFrom(start, n int) []int {
	out := make([]int, n)
	for i := range out {
		out[i] = start + i
	}
	return out
}

// runPlan executes one collective transfer and prints each side's layout.
func runPlan(world, length int, src, dst collective.Side) {
	plan, err := collective.NewPlan(src, dst)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("plan: %d inter-rank messages, matched fast path: %v\n", plan.Messages(), plan.Matched())

	mpi.Run(world, func(c *mpi.Comm) {
		me := c.Rank()
		// Producer chunk: global index values, per the source map.
		var local []float64
		for side, w := range src.WorldRanks {
			if w != me {
				continue
			}
			local = make([]float64, src.Map.LocalLen(side))
			for _, r := range src.Map.Runs() {
				if r.Rank == side {
					for k := 0; k < r.Global.Len(); k++ {
						local[r.Local+k] = float64(r.Global.Lo + k)
					}
				}
			}
			fmt.Printf("  src rank %d (world %d): %s\n", side, w, fmtVec(local))
		}
		out := make([]float64, plan.DstLocalLen(me))
		if err := plan.Transfer(c, local, out); err != nil {
			log.Fatalf("rank %d: %v", me, err)
		}
		for side, w := range dst.WorldRanks {
			if w == me && len(out) > 0 {
				fmt.Printf("  dst rank %d (world %d): %s\n", side, w, fmtVec(out))
			}
		}
	})
}

func fmtVec(v []float64) string {
	parts := make([]string, len(v))
	for i, x := range v {
		parts[i] = fmt.Sprintf("%g", x)
	}
	return "[" + strings.Join(parts, " ") + "]"
}
