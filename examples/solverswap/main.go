// Solverswap reproduces the paper's §2.2 motivation with the ESI component
// suite: "enabling applications like CHAD to experiment more easily with
// multiple solution strategies and to upgrade as new algorithms ... are
// discovered and encapsulated within toolkits."
//
// Part one is the classic experiment: a 2-D advection-diffusion operator
// component is wired, through identical CCA port connections, to each of
// the repository's solver components (CG, GMRES, BiCGStab) crossed with
// each preconditioner component (none, Jacobi, SOR, ILU0). The
// application code never changes — only the builder's connect calls — and
// the program prints the resulting iteration/time table.
//
// Part two is the live upgrade the paper could only gesture at: a
// step-wise CG solver is hot-swapped for a fresh instance twice, mid-solve,
// while a driver keeps stepping it. The framework quiesces the port (the
// driver sees only the typed retryable "port quiescing" shed), carries the
// mid-Krylov checkpoint into the replacement, re-wires the connections,
// and the solve resumes exactly where it stopped — no lost iterations, no
// restart.
//
// Run:
//
//	go run ./examples/solverswap [-n 64] [-vx 8] [-vy 4]
package main

import (
	"errors"
	"flag"
	"fmt"
	"log"
	"math"
	"sync/atomic"
	"time"

	"repro/internal/cca"
	"repro/internal/cca/framework"
	"repro/internal/core"
	"repro/internal/esi"
	"repro/internal/linalg"
)

func main() {
	n := flag.Int("n", 48, "grid points per side")
	vx := flag.Float64("vx", 8, "advection velocity x")
	vy := flag.Float64("vy", 4, "advection velocity y")
	tol := flag.Float64("tol", 1e-8, "solver tolerance")
	flag.Parse()

	a := linalg.AdvDiff2D(*n, *n, *vx, *vy)
	b := make([]float64, a.NRows)
	if err := a.Apply(linalg.Ones(a.NCols), b); err != nil {
		log.Fatal(err)
	}
	fmt.Printf("system: %d unknowns, %d nonzeros (advection-diffusion, v=(%g,%g))\n\n",
		a.NRows, a.NNZ(), *vx, *vy)
	fmt.Printf("%-10s %-8s %8s %12s %12s %s\n", "solver", "prec", "iters", "relres", "time", "note")

	for _, method := range []string{"cg", "gmres", "bicgstab"} {
		for _, prec := range []string{"none", "jacobi", "sor", "ilu0"} {
			iters, res, dur, err := runOnce(a, b, method, prec, *tol)
			note := ""
			if err != nil {
				note = err.Error()
				if len(note) > 48 {
					note = note[:48] + "..."
				}
			}
			fmt.Printf("%-10s %-8s %8d %12.3e %12v %s\n", method, prec, iters, res, dur.Round(time.Microsecond), note)
		}
	}

	if err := liveSwap(*n, *tol); err != nil {
		log.Fatal(err)
	}
}

// runOnce assembles a fresh app, swaps in the requested solver and
// preconditioner components, and solves.
func runOnce(a *linalg.CSR, b []float64, method, prec string, tol float64) (int32, float64, time.Duration, error) {
	app, err := core.NewApp(core.Options{WithESI: true})
	if err != nil {
		return 0, 0, 0, err
	}
	if err := app.Install("op", esi.NewOperatorComponent(a)); err != nil {
		return 0, 0, 0, err
	}
	if err := app.Create("solver", "esi.SolverComponent."+method); err != nil {
		return 0, 0, 0, err
	}
	if err := app.Create("prec", "esi.PreconditionerComponent."+prec); err != nil {
		return 0, 0, 0, err
	}
	for _, c := range [][4]string{
		{"solver", "A", "op", "A"},
		{"prec", "A", "op", "A"},
		{"solver", "M", "prec", "M"},
	} {
		if _, err := app.Connect(c[0], c[1], c[2], c[3]); err != nil {
			return 0, 0, 0, err
		}
	}
	comp, _ := app.Component("solver")
	solver := comp.(esi.EsiSolver)
	solver.SetTolerance(tol)
	// CG legitimately fails on this nonsymmetric system (part of the
	// demonstration); cap its futile iterations to keep the table quick.
	solver.SetMaxIterations(2000)
	x := make([]float64, a.NRows)
	start := time.Now()
	iters, err := solver.Solve(b, &x)
	return iters, solver.FinalResidual(), time.Since(start), err
}

// driver is the application-side component holding the uses port the live
// solve is stepped through.
type driver struct{ svc cca.Services }

func (d *driver) SetServices(svc cca.Services) error {
	d.svc = svc
	return svc.RegisterUsesPort(cca.PortInfo{Name: "solver", Type: esi.TypeIterativeSolver})
}

// stepSolver is the slice of the step-wise port the driver needs.
type stepSolver interface {
	SetTolerance(tol float64)
	Begin(b []float64) error
	Step(k int) (it int, resid float64, done bool, err error)
	Solution() []float64
	Residual() float64
	Converged() bool
}

// liveSwap hot-swaps a running step-wise CG solver twice mid-solve while
// the driver keeps stepping — the checkpointed Krylov state carries across
// each swap, so the iteration count never resets.
func liveSwap(n int, tol float64) error {
	a := linalg.Poisson2D(n, n)
	b := make([]float64, a.NRows)
	if err := a.Apply(linalg.Ones(a.NCols), b); err != nil {
		return err
	}
	fmt.Printf("\nlive swap under standing load (Poisson %d² = %d unknowns, step-wise CG):\n",
		n, a.NRows)

	app, err := core.NewApp(core.Options{WithESI: true})
	if err != nil {
		return err
	}
	if err := app.Install("op", esi.NewOperatorComponent(a)); err != nil {
		return err
	}
	if err := app.Create("itersolver", "esi.IterativeSolverComponent.cg"); err != nil {
		return err
	}
	d := &driver{}
	if err := app.Install("drive", d); err != nil {
		return err
	}
	for _, c := range [][4]string{
		{"itersolver", "A", "op", "A"},
		{"drive", "solver", "itersolver", "solver"},
	} {
		if _, err := app.Connect(c[0], c[1], c[2], c[3]); err != nil {
			return err
		}
	}

	// acquire retries the typed quiescing shed — the only error a swap
	// window is allowed to surface to callers.
	var sheds atomic.Int64
	acquire := func() (stepSolver, error) {
		for {
			port, err := d.svc.GetPort("solver")
			if err == nil {
				return port.(stepSolver), nil
			}
			if !errors.Is(err, cca.ErrPortQuiescing) {
				return nil, err
			}
			sheds.Add(1)
			time.Sleep(100 * time.Microsecond)
		}
	}

	s, err := acquire()
	if err != nil {
		return err
	}
	s.SetTolerance(tol)
	if err := s.Begin(b); err != nil {
		return err
	}
	d.svc.ReleasePort("solver")

	// The standing load: keep stepping through the port until convergence,
	// reporting each iteration count so the swapper can fire mid-solve.
	var iters atomic.Int64
	itCh := make(chan int)
	solveDone := make(chan error, 1)
	go func() {
		defer close(itCh)
		for {
			s, err := acquire()
			if err != nil {
				solveDone <- err
				return
			}
			it, _, done, err := s.Step(1)
			d.svc.ReleasePort("solver")
			if err != nil {
				solveDone <- err
				return
			}
			iters.Store(int64(it))
			if done {
				solveDone <- nil
				return
			}
			itCh <- it
			// Pace the loop: a production Krylov iteration is compute-bound
			// for far longer than this toy 2-D stencil, and the pacing keeps
			// the solve in flight long enough for the swaps to land mid-run.
			time.Sleep(200 * time.Microsecond)
		}
	}()

	// Two live swaps, each triggered the moment the solve crosses its
	// threshold. The swap runs concurrently with the stepper: during the
	// quiesce window every stepper acquisition sheds, and the moment the
	// gates lift it resumes from the carried state.
	runSwap := func(swapNo, at int) error {
		swapErr := make(chan error, 1)
		start := time.Now()
		go func() {
			swapErr <- app.Fw.Swap("itersolver", esi.NewIterativeSolverComponent(),
				framework.SwapOptions{})
		}()
		// Keep draining so the stepper stands as live load while the
		// framework quiesces, transfers state, and re-wires; check the
		// swap result first after every iteration so the stepper cannot
		// race past the next threshold unobserved.
		drain := itCh
		for {
			select {
			case err := <-swapErr:
				if err != nil {
					return err
				}
				fmt.Printf("  swap %d at iteration %d: window %v, state carried into fresh instance\n",
					swapNo, at, time.Since(start).Round(time.Microsecond))
				return nil
			case _, ok := <-drain:
				if !ok {
					drain = nil // solve finished; the swap result still decides
					continue
				}
				select {
				case err := <-swapErr:
					if err != nil {
						return err
					}
					fmt.Printf("  swap %d at iteration %d: window %v, state carried into fresh instance\n",
						swapNo, at, time.Since(start).Round(time.Microsecond))
					return nil
				default:
				}
			}
		}
	}
	for swapNo, threshold := range []int{5, 10} {
		fired := false
		for it := range itCh {
			if it < threshold {
				continue
			}
			if err := runSwap(swapNo+1, it); err != nil {
				return err
			}
			fired = true
			break
		}
		if !fired {
			return fmt.Errorf("solve converged before swap %d fired; lower the thresholds", swapNo+1)
		}
	}
	for range itCh {
		// drain the remaining iterations to convergence
	}

	if err := <-solveDone; err != nil {
		return err
	}
	s, err = acquire()
	if err != nil {
		return err
	}
	maxErr := 0.0
	for _, v := range s.Solution() {
		if e := math.Abs(v - 1); e > maxErr {
			maxErr = e
		}
	}
	converged := s.Converged()
	resid := s.Residual()
	d.svc.ReleasePort("solver")
	fmt.Printf("  converged=%v iters=%d relres=%.3e max|x-1|=%.3e sheds=%d (all typed retryable)\n",
		converged, iters.Load(), resid, maxErr, sheds.Load())
	if !converged || maxErr > 1e-6 {
		return fmt.Errorf("live-swapped solve did not converge to the manufactured solution")
	}
	return nil
}
