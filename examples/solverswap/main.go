// Solverswap reproduces the paper's §2.2 motivation with the ESI component
// suite: "enabling applications like CHAD to experiment more easily with
// multiple solution strategies and to upgrade as new algorithms ... are
// discovered and encapsulated within toolkits."
//
// A 2-D advection-diffusion operator component is wired, through identical
// CCA port connections, to each of the repository's solver components
// (CG, GMRES, BiCGStab) crossed with each preconditioner component (none,
// Jacobi, SOR, ILU0). The application code never changes — only the
// builder's connect calls — and the program prints the resulting
// iteration/time table.
//
// Run:
//
//	go run ./examples/solverswap [-n 64] [-vx 8] [-vy 4]
package main

import (
	"flag"
	"fmt"
	"log"
	"time"

	"repro/internal/core"
	"repro/internal/esi"
	"repro/internal/linalg"
)

func main() {
	n := flag.Int("n", 48, "grid points per side")
	vx := flag.Float64("vx", 8, "advection velocity x")
	vy := flag.Float64("vy", 4, "advection velocity y")
	tol := flag.Float64("tol", 1e-8, "solver tolerance")
	flag.Parse()

	a := linalg.AdvDiff2D(*n, *n, *vx, *vy)
	b := make([]float64, a.NRows)
	if err := a.Apply(linalg.Ones(a.NCols), b); err != nil {
		log.Fatal(err)
	}
	fmt.Printf("system: %d unknowns, %d nonzeros (advection-diffusion, v=(%g,%g))\n\n",
		a.NRows, a.NNZ(), *vx, *vy)
	fmt.Printf("%-10s %-8s %8s %12s %12s %s\n", "solver", "prec", "iters", "relres", "time", "note")

	for _, method := range []string{"cg", "gmres", "bicgstab"} {
		for _, prec := range []string{"none", "jacobi", "sor", "ilu0"} {
			iters, res, dur, err := runOnce(a, b, method, prec, *tol)
			note := ""
			if err != nil {
				note = err.Error()
				if len(note) > 48 {
					note = note[:48] + "..."
				}
			}
			fmt.Printf("%-10s %-8s %8d %12.3e %12v %s\n", method, prec, iters, res, dur.Round(time.Microsecond), note)
		}
	}
}

// runOnce assembles a fresh app, swaps in the requested solver and
// preconditioner components, and solves.
func runOnce(a *linalg.CSR, b []float64, method, prec string, tol float64) (int32, float64, time.Duration, error) {
	app, err := core.NewApp(core.Options{WithESI: true})
	if err != nil {
		return 0, 0, 0, err
	}
	if err := app.Install("op", esi.NewOperatorComponent(a)); err != nil {
		return 0, 0, 0, err
	}
	if err := app.Create("solver", "esi.SolverComponent."+method); err != nil {
		return 0, 0, 0, err
	}
	if err := app.Create("prec", "esi.PreconditionerComponent."+prec); err != nil {
		return 0, 0, 0, err
	}
	for _, c := range [][4]string{
		{"solver", "A", "op", "A"},
		{"prec", "A", "op", "A"},
		{"solver", "M", "prec", "M"},
	} {
		if _, err := app.Connect(c[0], c[1], c[2], c[3]); err != nil {
			return 0, 0, 0, err
		}
	}
	comp, _ := app.Component("solver")
	solver := comp.(esi.EsiSolver)
	solver.SetTolerance(tol)
	// CG legitimately fails on this nonsymmetric system (part of the
	// demonstration); cap its futile iterations to keep the table quick.
	solver.SetMaxIterations(2000)
	x := make([]float64, a.NRows)
	start := time.Now()
	iters, err := solver.Solve(b, &x)
	return iters, solver.FinalResidual(), time.Since(start), err
}
