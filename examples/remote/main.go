// Remote demonstrates §6.1's distributed connections: "loosely coupled
// distributed connections should be available through the very same
// interface as the tightly coupled direct connections, without the
// components being aware of the connection type."
//
// A "server" framework hosts the matrix and exports its esi.MatrixData
// port over TCP. A "client" framework installs a proxy component for it and
// connects an unmodified CG solver component. The solver cannot tell it is
// calling across a socket — it just observes higher latency, which the
// program reports by also timing the same solve against a direct local
// connection.
//
// Run:
//
//	go run ./examples/remote [-n 24]
package main

import (
	"flag"
	"fmt"
	"log"
	"time"

	"repro/internal/cca"
	"repro/internal/cca/framework"
	"repro/internal/dist"
	"repro/internal/esi"
	"repro/internal/linalg"
	"repro/internal/transport"
)

func main() {
	n := flag.Int("n", 24, "grid points per side")
	flag.Parse()

	m := linalg.Poisson2D(*n, *n)
	b := make([]float64, m.NRows)
	if err := m.Apply(linalg.Ones(m.NCols), b); err != nil {
		log.Fatal(err)
	}
	fmt.Printf("system: 2-D Poisson %d² = %d unknowns\n\n", *n, m.NRows)

	// --- server side ---
	server := framework.New(framework.Options{})
	if err := server.Install("op", esi.NewOperatorComponent(m)); err != nil {
		log.Fatal(err)
	}
	l, err := transport.TCP{}.Listen("127.0.0.1:0")
	if err != nil {
		log.Fatal(err)
	}
	exp := dist.NewExporter(server, l)
	defer exp.Close()
	key, err := exp.Export("op", "A")
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("server: exported %s at %s\n", key, exp.Addr())

	// --- client side: remote connection ---
	client := framework.New(framework.Options{
		Flavor:    cca.FlavorInProcess | cca.FlavorDistributed,
		TypeCheck: esi.TypeChecker(),
	})
	rp, err := dist.InstallRemoteOperator(client, "remoteA", transport.TCP{}, exp.Addr(), key, esi.TypeMatrixData)
	if err != nil {
		log.Fatal(err)
	}
	defer rp.Close()
	if err := client.Install("solver", esi.NewSolverComponent("cg")); err != nil {
		log.Fatal(err)
	}
	if _, err := client.Connect("solver", "A", "remoteA", "A"); err != nil {
		log.Fatal(err)
	}
	solve(client, "remote (TCP)", b, m.NRows)

	// --- same solve, direct local connection, for comparison ---
	local := framework.New(framework.Options{TypeCheck: esi.TypeChecker()})
	if err := local.Install("op", esi.NewOperatorComponent(m)); err != nil {
		log.Fatal(err)
	}
	if err := local.Install("solver", esi.NewSolverComponent("cg")); err != nil {
		log.Fatal(err)
	}
	if _, err := local.Connect("solver", "A", "op", "A"); err != nil {
		log.Fatal(err)
	}
	solve(local, "direct", b, m.NRows)
}

func solve(fw *framework.Framework, label string, b []float64, n int) {
	comp, _ := fw.Component("solver")
	solver := comp.(esi.EsiSolver)
	solver.SetTolerance(1e-8)
	x := make([]float64, n)
	start := time.Now()
	iters, err := solver.Solve(b, &x)
	if err != nil {
		log.Fatalf("%s: %v", label, err)
	}
	fmt.Printf("client: %-12s iters=%d relres=%.2e time=%v\n",
		label, iters, solver.FinalResidual(), time.Since(start).Round(time.Microsecond))
}
