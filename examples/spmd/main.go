// Spmd runs the paper's Figure 1 pipeline — mesh, solver, hydro flow —
// as N real OS processes instead of N goroutines: the same components,
// the same cohort wiring, the same collective algorithms, but every rank
// is a separate process whose MPI traffic moves over the multiplexed
// transport (tcp:// sockets or shm:// shared-memory rings), with cohort
// formation through the rendezvous service.
//
// Without -worker it is its own launcher: it self-execs N workers under
// internal/mpi/mpirun supervision. With -chaos it SIGKILLs the highest
// rank shortly after the world forms; the survivors observe the death as
// a typed RankDeadError, finalize, re-join, and the relaunched rank
// completes the pipeline with them as generation 2 — the §2.2 "long
// running simulation on a remote parallel machine" surviving a rank loss.
//
//	go run ./examples/spmd -n 4 -transport tcp
//	go run ./examples/spmd -n 4 -transport shm -chaos
package main

import (
	"errors"
	"flag"
	"fmt"
	"log"
	"os"
	"time"

	"repro/internal/cca"
	"repro/internal/cca/framework"
	"repro/internal/hydro"
	"repro/internal/mesh"
	"repro/internal/mpi"
	"repro/internal/mpi/mpirun"
	"repro/internal/viz"
)

// maxReforms bounds how many cohort re-formations a worker tolerates
// before giving up.
const maxReforms = 3

func main() {
	worker := flag.Bool("worker", false, "run as a rank process (internal; set by the launcher)")
	n := flag.Int("n", 4, "number of rank processes")
	transportFlag := flag.String("transport", "tcp", "rank mesh transport: tcp or shm")
	grid := flag.Int("grid", 16, "mesh cells per side")
	steps := flag.Int("steps", 8, "timesteps")
	dt := flag.Float64("dt", 0.004, "timestep")
	nu := flag.Float64("nu", 0.4, "diffusion coefficient")
	stepDelay := flag.Duration("stepdelay", 0, "pause between timesteps (stretches the run for chaos testing)")
	chaos := flag.Bool("chaos", false, "kill the highest rank mid-run and require recovery")
	killAfter := flag.Duration("killafter", 300*time.Millisecond, "chaos: delay after world formation before the kill")
	flag.Parse()

	if *worker {
		runWorker(*grid, *steps, *dt, *nu, *stepDelay)
		return
	}
	launch(*n, *transportFlag, *grid, *steps, *dt, *nu, *stepDelay, *chaos, *killAfter)
}

// launch self-execs n workers under mpirun supervision.
func launch(n int, scheme string, grid, steps int, dt, nu float64, stepDelay time.Duration, chaos bool, killAfter time.Duration) {
	exe, err := os.Executable()
	if err != nil {
		log.Fatal(err)
	}
	var rendezvous string
	switch scheme {
	case "tcp":
		rendezvous = "tcp://127.0.0.1:0"
	case "shm":
		dir, err := os.MkdirTemp("", "spmd-*")
		if err != nil {
			log.Fatal(err)
		}
		defer os.RemoveAll(dir)
		rendezvous = "shm://" + dir + "/rv"
	default:
		log.Fatalf("spmd: unknown transport %q (want tcp or shm)", scheme)
	}

	restarts := 0
	if chaos {
		restarts = 1
		if stepDelay == 0 {
			// Stretch the run so the kill lands mid-pipeline, not after it.
			stepDelay = 100 * time.Millisecond
		}
	}
	cmd := []string{exe, "-worker",
		fmt.Sprintf("-grid=%d", grid), fmt.Sprintf("-steps=%d", steps),
		fmt.Sprintf("-dt=%g", dt), fmt.Sprintf("-nu=%g", nu),
		fmt.Sprintf("-stepdelay=%s", stepDelay),
	}
	l, err := mpirun.New(mpirun.Config{
		Size:        n,
		Rendezvous:  rendezvous,
		Command:     cmd,
		MaxRestarts: restarts,
	})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("spmd: launching %d rank processes over %s (rendezvous %s)\n", n, scheme, l.RendezvousAddr())
	if err := l.Start(); err != nil {
		l.Close()
		log.Fatal(err)
	}
	if chaos {
		go func() {
			<-l.Rendezvous().Formed()
			time.Sleep(killAfter)
			victim := n - 1
			if err := l.Kill(victim); err != nil {
				fmt.Fprintln(os.Stderr, "spmd: chaos kill:", err)
				return
			}
			fmt.Printf("spmd: chaos killed rank %d\n", victim)
		}()
	}
	err = l.Wait()
	gens := l.Rendezvous().Generations()
	l.Close()
	if err != nil {
		log.Fatal(err)
	}
	if chaos && gens < 2 {
		log.Fatalf("spmd: chaos run finished in %d generation(s); expected a re-formation", gens)
	}
	fmt.Printf("spmd: all %d ranks exited cleanly after %d generation(s)\n", n, gens)
}

// runWorker is one rank process: join the cohort, run the pipeline, and
// on a peer death finalize and re-join the next generation.
func runWorker(grid, steps int, dt, nu float64, stepDelay time.Duration) {
	m := mesh.StructuredQuad(grid, grid)
	for attempt := 0; attempt <= maxReforms; attempt++ {
		comm, proc, err := mpi.Join()
		if err != nil {
			log.Fatalf("spmd worker: join: %v", err)
		}
		stats, err := runPipeline(comm, m, steps, dt, nu, stepDelay)
		if err != nil {
			var dead *mpi.RankDeadError
			if errors.As(err, &dead) {
				fmt.Printf("spmd rank %d: peer rank %d died mid-run (gen %d); re-forming\n",
					comm.Rank(), dead.Rank, proc.Generation())
				proc.Close()
				continue
			}
			log.Fatalf("spmd rank %d: %v", comm.Rank(), err)
		}
		if comm.Rank() == 0 {
			fmt.Printf("spmd: generation %d complete on %d processes: %s\n",
				proc.Generation(), comm.Size(), stats)
		}
		proc.Close()
		return
	}
	log.Fatal("spmd worker: gave up after repeated cohort re-formations")
}

// runPipeline assembles the Figure 1 component graph over the world
// communicator — every process is one flow rank — and integrates. It is
// the same wiring as examples/chad's buildFlow, running across processes.
func runPipeline(comm *mpi.Comm, m *mesh.Mesh, steps int, dt, nu float64, stepDelay time.Duration) (hydro.Stats, error) {
	p, rank := comm.Size(), comm.Rank()
	c := framework.NewCohort(comm, framework.Options{})
	if err := c.InstallParallel("mesh", func(rank int) cca.Component {
		mc, err := hydro.NewMeshComponent(m, "rcb", p, rank)
		if err != nil {
			log.Fatal(err)
		}
		return mc
	}); err != nil {
		return hydro.Stats{}, err
	}
	if err := c.InstallParallel("flow", func(rank int) cca.Component {
		fc, err := hydro.NewFlowComponent(comm, hydro.Config{
			Nu: nu, Vel: [2]float64{3, 1.5}, Tol: 1e-9, Prec: "jacobi",
		})
		if err != nil {
			log.Fatal(err)
		}
		return fc
	}); err != nil {
		return hydro.Stats{}, err
	}
	if err := c.InstallParallel("stats", func(rank int) cca.Component {
		return &viz.StatsMonitor{} // silent: no Out writer across processes
	}); err != nil {
		return hydro.Stats{}, err
	}
	if err := c.VerifyPorts("flow"); err != nil {
		return hydro.Stats{}, err
	}
	if _, err := c.ConnectParallel("flow", "mesh", "mesh", "mesh"); err != nil {
		return hydro.Stats{}, err
	}
	if _, err := c.ConnectParallel("flow", "monitor", "stats", "monitor"); err != nil {
		return hydro.Stats{}, err
	}
	var driver *hydro.IntegratorComponent
	if err := c.InstallParallel("driver", func(rank int) cca.Component {
		driver = hydro.NewIntegratorComponent(1, dt)
		return driver
	}); err != nil {
		return hydro.Stats{}, err
	}
	if _, err := c.ConnectParallel("driver", "flow", "flow", "flow"); err != nil {
		return hydro.Stats{}, err
	}

	var last hydro.Stats
	for step := 1; step <= steps; step++ {
		st, err := driver.Run(1, dt)
		if err != nil {
			return hydro.Stats{}, err
		}
		last = st
		if stepDelay > 0 {
			time.Sleep(stepDelay)
		}
	}
	_ = rank
	return last, nil
}
