// Distviz demonstrates the distributed collective port: Figure 1's
// visualization tool attaching, from a separate OS process, to a parallel
// simulation's distributed array — §6.3's M→N redistribution carried over
// §6.1's distributed connection instead of an in-process transfer.
//
// The parent process is the "simulation": an M-rank cohort holding a
// block-distributed wave field that it keeps evolving. It publishes the
// cohort's DistArray ports over TCP loopback (or, with -transport shm,
// over the same-host shared-memory rings) and re-executes itself as the
// "viz" child process. The child attaches with a different distribution (a
// cyclic map over N ranks), installs the attachment into a local framework
// as an ordinary provides port, and pulls frames through it — each frame
// an epoch-consistent snapshot redistributed as chunked bulk frames.
//
// Mid-run, an injected fault severs the viz connection. Supervision
// surfaces it as a connection-degraded event through the framework's
// configuration API, redials, announces connection-restored, and the
// interrupted pull completes with correct data — the event pair every
// remote port flavor shares.
//
// Run:
//
//	go run ./examples/distviz [-m 2] [-n 3] [-len 40000] [-frames 4] [-transport tcp|shm]
package main

import (
	"context"
	"flag"
	"fmt"
	"io"
	"log"
	"math"
	"os"
	"os/exec"
	"path/filepath"
	"strconv"
	"sync"
	"time"

	"repro/internal/array"
	"repro/internal/cca"
	ccoll "repro/internal/cca/collective"
	"repro/internal/cca/framework"
	dcoll "repro/internal/dist/collective"
	"repro/internal/obs"
	"repro/internal/orb"
	"repro/internal/transport"
	"repro/internal/viz"
)

func main() {
	var (
		m      = flag.Int("m", 2, "simulation cohort ranks (provider)")
		n      = flag.Int("n", 3, "viz cohort ranks (consumer)")
		gl     = flag.Int("len", 40000, "global array length")
		frames = flag.Int("frames", 4, "frames the viz pulls")
		sever  = flag.Int("sever", 25, "sever viz connection after this many frames sent (0 = never)")
		subs   = flag.Int("subs", 0, "after the viz run, fan one frozen frame out to this many concurrent supervised subscribers")
		viz      = flag.Bool("viz", false, "run as the viz child process")
		addr     = flag.String("addr", "", "simulation address (viz mode)")
		trName   = flag.String("transport", "tcp", "cross-process transport: tcp or shm")
		simOnly  = flag.Bool("sim-only", false, "publish the simulation and block (no viz child); attach with ccafe load examples/distviz/distviz.ccl")
		addrFile = flag.String("addr-file", "", "write the simulation address to this file (sim-only mode)")
	)
	flag.Parse()
	if *trName != "tcp" && *trName != "shm" {
		log.Fatalf("unknown -transport %q (want tcp or shm)", *trName)
	}
	if *viz {
		runViz(*trName, *addr, *n, *gl, *frames, *sever)
		return
	}
	if *simOnly {
		runSimOnly(*trName, *m, *gl, *addrFile)
		return
	}
	runSim(*trName, *m, *n, *gl, *frames, *sever, *subs)
}

// runSimOnly publishes the evolving wave field and blocks until stdin
// closes — the standing simulation a declaratively assembled viz (the
// checked-in distviz.ccl) attaches to from another process.
func runSimOnly(trName string, m, gl int, addrFile string) {
	dm := array.NewBlockMap(gl, m)
	mu := &sync.Mutex{}
	fields := make([]*simField, m)
	ports := make([]ccoll.DistArrayPort, m)
	for r := 0; r < m; r++ {
		fields[r] = &simField{mu: mu, side: ccoll.Side{Map: dm}, data: make([]float64, dm.LocalLen(r))}
		ports[r] = fields[r]
	}
	step(fields, dm, 0)

	oa := orb.NewObjectAdapter()
	tr, listenAddr := pickTransport(trName)
	l, err := tr.Listen(listenAddr)
	if err != nil {
		log.Fatal(err)
	}
	srv := orb.Serve(oa, l)
	defer srv.Close()
	pub, err := dcoll.Publish(oa, "wave", ports, dcoll.WithEpochCache())
	if err != nil {
		log.Fatal(err)
	}
	if addrFile != "" {
		if err := os.WriteFile(addrFile, []byte(srv.Addr()+"\n"), 0o644); err != nil {
			log.Fatal(err)
		}
	}
	fmt.Printf("sim: publishing wave (%s) at %s\n", dm, srv.Addr())

	stop := make(chan struct{})
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		for s := 1; ; s++ {
			select {
			case <-stop:
				return
			default:
				step(fields, dm, s)
				pub.Advance()
				time.Sleep(200 * time.Microsecond)
			}
		}
	}()
	// Block until the launcher closes stdin.
	io.Copy(io.Discard, os.Stdin) //nolint:errcheck
	close(stop)
	wg.Wait()
	fmt.Println("sim: done")
}

// pickTransport maps the -transport flag to a backend and a listen
// address: a kernel-assigned loopback port for tcp, a fresh directory
// for the shared-memory rings. Since sim and viz really are separate OS
// processes here, -transport shm exercises the cross-process mmap path,
// not an in-process shortcut.
func pickTransport(name string) (transport.Transport, string) {
	if name == "shm" {
		dir, err := os.MkdirTemp("", "distviz-shm-")
		if err != nil {
			log.Fatal(err)
		}
		return transport.SHM{}, filepath.Join(dir, "sim")
	}
	return transport.TCP{}, "127.0.0.1:0"
}

// simField is one simulation rank's chunk of the wave field. LocalData
// returns a copy under the cohort lock, so a begin-epoch snapshot never
// races the time-stepping loop.
type simField struct {
	mu   *sync.Mutex
	side ccoll.Side
	data []float64
}

func (f *simField) Side() ccoll.Side { return f.side }

func (f *simField) LocalData() []float64 {
	f.mu.Lock()
	defer f.mu.Unlock()
	return append([]float64(nil), f.data...)
}

// Snapshot implements ccoll.SnapshotPort: the copy LocalData makes is
// already retain-forever, so the publisher keeps it without a second pass.
func (f *simField) Snapshot() []float64 { return f.LocalData() }

// step writes field value s + g/1e6: every element encodes (step, global
// index) so the viz can verify both placement and epoch consistency.
func step(fields []*simField, m array.DataMap, s int) {
	fields[0].mu.Lock()
	defer fields[0].mu.Unlock()
	for _, run := range m.Runs() {
		d := fields[run.Rank].data
		for k := 0; k < run.Global.Len(); k++ {
			g := run.Global.Lo + k
			d[run.Local+k] = float64(s) + float64(g)/1e6
		}
	}
}

func runSim(trName string, m, n, gl, frames, sever, subs int) {
	dm := array.NewBlockMap(gl, m)
	mu := &sync.Mutex{}
	fields := make([]*simField, m)
	ports := make([]ccoll.DistArrayPort, m)
	for r := 0; r < m; r++ {
		fields[r] = &simField{mu: mu, side: ccoll.Side{Map: dm}, data: make([]float64, dm.LocalLen(r))}
		ports[r] = fields[r]
	}
	step(fields, dm, 0)

	oa := orb.NewObjectAdapter()
	tr, listenAddr := pickTransport(trName)
	l, err := tr.Listen(listenAddr)
	if err != nil {
		log.Fatal(err)
	}
	srv := orb.Serve(oa, l)
	defer srv.Close()
	// The epoch cache makes every subscriber of a timestep share one
	// snapshot and one packed chunk stream; Advance (below, per step) is
	// its invalidation point.
	pub, err := dcoll.Publish(oa, "wave", ports, dcoll.WithEpochCache())
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("sim: publishing wave (%s) at %s\n", dm, srv.Addr())

	// Keep time-stepping while the viz pulls: epochs isolate each frame
	// from the mutation.
	stop := make(chan struct{})
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		for s := 1; ; s++ {
			select {
			case <-stop:
				return
			default:
				step(fields, dm, s)
				pub.Advance()
				time.Sleep(200 * time.Microsecond)
			}
		}
	}()

	// Re-exec this binary as the viz process, pointed at our address.
	exe, err := os.Executable()
	if err != nil {
		log.Fatal(err)
	}
	child := exec.Command(exe, "-viz",
		"-addr", srv.Addr(),
		"-transport", trName,
		"-n", strconv.Itoa(n),
		"-len", strconv.Itoa(gl),
		"-frames", strconv.Itoa(frames),
		"-sever", strconv.Itoa(sever))
	child.Stdout = os.Stdout
	child.Stderr = os.Stderr
	if err := child.Run(); err != nil {
		log.Fatalf("sim: viz process failed: %v", err)
	}
	close(stop)
	wg.Wait()
	fmt.Println("sim: viz exited cleanly")
	if subs > 0 {
		runFanout(srv.Addr(), gl, subs, pub)
	}
}

// runFanout is the serving-tier smoke: freeze the field at one final
// generation and let `subs` concurrent supervised subscribers — each a
// serial viz.RemoteAttachment over its own TCP connection — pull the same
// frame. The publisher packs each chunk window once; every other
// subscriber is served the cached frame zero-copy, which is what the
// printed hit rate shows.
func runFanout(addr string, gl, subs int, pub *dcoll.Publisher) {
	pub.Advance() // one fresh generation for the whole fan-out
	before := obs.Default.Snapshot().Counters
	start := time.Now()
	var wg sync.WaitGroup
	errs := make(chan error, subs)
	for i := 0; i < subs; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			att, err := viz.AttachRemote(transport.TCP{}, addr, "wave", gl, dcoll.Options{})
			if err != nil {
				errs <- err
				return
			}
			defer att.Close()
			frame, err := att.Snapshot(context.Background())
			if err != nil {
				errs <- err
				return
			}
			// Every element encodes (step, global index); the frame must
			// be one un-torn timestep.
			s := math.Round(frame[0])
			for g, v := range frame {
				if math.Abs(v-s-float64(g)/1e6) > 1e-9 {
					errs <- fmt.Errorf("subscriber: global %d holds %v at step %.0f", g, v, s)
					return
				}
			}
		}()
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		log.Fatalf("sim: fan-out: %v", err)
	}
	after := obs.Default.Snapshot().Counters
	hits := after["collective.frame_cache_hits"] - before["collective.frame_cache_hits"]
	misses := after["collective.frame_cache_misses"] - before["collective.frame_cache_misses"]
	rate := 0.0
	if hits+misses > 0 {
		rate = 100 * float64(hits) / float64(hits+misses)
	}
	fmt.Printf("sim: fan-out %d subscribers in %v, frame cache %d hits / %d misses (%.1f%% hit rate)\n",
		subs, time.Since(start).Round(time.Millisecond), hits, misses, rate)
}

func runViz(trName, addr string, n, gl, frames, sever int) {
	if addr == "" {
		log.Fatal("viz: -addr required")
	}
	dm := array.NewCyclicMap(gl, n, 64)

	// The injected fault: the viz's dialed connections sever after a fixed
	// number of frames. On the first degraded event the fault plan is
	// cleared, so the supervised redial heals for good — one clean
	// degraded→restored cycle mid-run. Faulty wraps whichever backend was
	// picked, so the heal cycle runs over shm rings just as it does over
	// sockets.
	var inner transport.Transport = transport.TCP{}
	if trName == "shm" {
		inner = transport.SHM{}
	}
	faulty := transport.NewFaulty(inner, transport.Faults{SeverAfterSends: sever})
	var clearOnce sync.Once

	fw := framework.New(framework.Options{Flavor: cca.FlavorInProcess | cca.FlavorDistributed})
	fw.AddEventListener(cca.EventListenerFunc(func(e cca.Event) {
		switch e.Kind {
		case cca.EventConnectionDegraded, cca.EventConnectionRestored, cca.EventConnectionBroken:
			fmt.Printf("viz: event %s on %s\n", e.Kind, e.Component)
		}
		if e.Kind == cca.EventConnectionDegraded {
			clearOnce.Do(func() { faulty.SetFaults(transport.Faults{}) })
		}
	}))

	imp, err := dcoll.InstallRemoteDistArray(fw, "wave-proxy", faulty, addr, "wave", dm, dcoll.Options{})
	if err != nil {
		log.Fatal(err)
	}
	defer imp.Close()
	fmt.Printf("viz: attached %s, provider has %d ranks\n", dm, imp.ProviderRanks())

	// Pull through the framework-mediated port, as any component would.
	viz := &vizComponent{}
	if err := fw.Install("viz", viz); err != nil {
		log.Fatal(err)
	}
	if _, err := fw.Connect("viz", "in", "wave-proxy", "data"); err != nil {
		log.Fatal(err)
	}
	port, err := viz.svc.GetPort("in")
	if err != nil {
		log.Fatal(err)
	}
	pull := port.(ccoll.PullPort)

	// Frame buffers are allocated once and reused across epochs: the pull
	// path scatters into them in place, so the steady-state frame loop
	// allocates nothing.
	outs := make([][]float64, n)
	for r := 0; r < n; r++ {
		outs[r] = make([]float64, pull.LocalLen(r))
	}
	for f := 0; f < frames; f++ {
		for r := 0; r < n; r++ {
			if err := pull.Pull(r, outs[r]); err != nil {
				log.Fatalf("viz: frame %d rank %d: %v", f, r, err)
			}
		}
		// Each element encodes (step, global index): verify placement and
		// that one rank's frame is a single epoch (no torn timestep).
		for r := 0; r < n; r++ {
			s := -1.0
			for _, run := range dm.Runs() {
				if run.Rank != r {
					continue
				}
				for k := 0; k < run.Global.Len(); k++ {
					g := run.Global.Lo + k
					v := outs[r][run.Local+k]
					gotStep := math.Round(v - float64(g)/1e6)
					if math.Abs(v-gotStep-float64(g)/1e6) > 1e-9 {
						log.Fatalf("viz: frame %d rank %d global %d holds %v — wrong placement", f, r, g, v)
					}
					if s < 0 {
						s = gotStep
					} else if s != gotStep {
						log.Fatalf("viz: frame %d rank %d mixes steps %v and %v — torn epoch", f, r, s, gotStep)
					}
				}
			}
			fmt.Printf("viz: frame %d rank %d consistent at sim step %.0f\n", f, r, s)
		}
	}
	fmt.Println("viz: done")
}

// vizComponent is the consuming component: one uses port of the pull type.
type vizComponent struct{ svc cca.Services }

func (v *vizComponent) SetServices(svc cca.Services) error {
	v.svc = svc
	return svc.RegisterUsesPort(cca.PortInfo{Name: "in", Type: ccoll.PullPortType})
}

func (v *vizComponent) RequiredFlavor() cca.Flavor { return cca.FlavorDistributed }
