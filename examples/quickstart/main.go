// Quickstart: the smallest complete CCA application.
//
// Two components — a provider exposing an "integrate" provides port and a
// driver with a matching uses port — are installed into a framework and
// connected by the framework (Figure 3 of the paper: addProvidesPort /
// getPort through the CCAServices handle). The call through the connected
// port is a direct Go dynamic dispatch: the paper's §6.2 direct connection.
//
// Run:
//
//	go run ./examples/quickstart
package main

import (
	"fmt"
	"log"
	"math"

	"repro/internal/cca"
	"repro/internal/cca/framework"
)

// IntegratePort is the port interface: numerically integrate f over [a,b].
type IntegratePort interface {
	Integrate(f func(float64) float64, a, b float64) float64
}

// simpson provides IntegratePort using composite Simpson's rule.
type simpson struct {
	intervals int
}

func (s *simpson) SetServices(svc cca.Services) error {
	return svc.AddProvidesPort(s, cca.PortInfo{Name: "integrate", Type: "demo.Integrate"})
}

func (s *simpson) Integrate(f func(float64) float64, a, b float64) float64 {
	n := s.intervals
	if n%2 == 1 {
		n++
	}
	h := (b - a) / float64(n)
	sum := f(a) + f(b)
	for i := 1; i < n; i++ {
		x := a + float64(i)*h
		if i%2 == 1 {
			sum += 4 * f(x)
		} else {
			sum += 2 * f(x)
		}
	}
	return sum * h / 3
}

// driver uses an IntegratePort to do its science.
type driver struct {
	svc cca.Services
}

func (d *driver) SetServices(svc cca.Services) error {
	d.svc = svc
	return svc.RegisterUsesPort(cca.PortInfo{Name: "quad", Type: "demo.Integrate"})
}

// Run fetches the connected port (Figure 3 step 4) and calls through it.
func (d *driver) Run() error {
	port, err := d.svc.GetPort("quad")
	if err != nil {
		return err
	}
	defer d.svc.ReleasePort("quad")
	quad := port.(IntegratePort)

	pi := quad.Integrate(func(x float64) float64 { return 4 / (1 + x*x) }, 0, 1)
	fmt.Printf("∫₀¹ 4/(1+x²) dx = %.10f (error %.2e)\n", pi, math.Abs(pi-math.Pi))

	e := quad.Integrate(math.Exp, 0, 1)
	fmt.Printf("∫₀¹ eˣ dx      = %.10f (error %.2e)\n", e, math.Abs(e-(math.E-1)))
	return nil
}

func main() {
	fw := framework.New(framework.Options{})

	if err := fw.Install("quadrature", &simpson{intervals: 512}); err != nil {
		log.Fatal(err)
	}
	d := &driver{}
	if err := fw.Install("driver", d); err != nil {
		log.Fatal(err)
	}

	// The framework connects compatible ports; components never see each
	// other directly.
	id, err := fw.Connect("driver", "quad", "quadrature", "integrate")
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("connected:", id)

	if err := d.Run(); err != nil {
		log.Fatal(err)
	}
}
