// Command ccafe is the reproduction's Ccaffeine-like framework shell: an
// interactive (or scripted) builder driving the CCA reference framework
// through the configuration API — the "composition tool" of the paper's
// Figure 2.
//
// Usage:
//
//	ccafe              # interactive shell on stdin
//	ccafe -f script    # run a script file
//
// Distributed-connection flags (supervised remote ports):
//
//	--connect-timeout   initial dial budget for `remote` (default 5s)
//	--retry             per-call attempt budget for idempotent methods
//	                    across reconnects (default 4)
//	--breaker-threshold consecutive failed redials before the circuit
//	                    opens and calls are shed (default 5)
//
// Observability flags:
//
//	--metrics-addr      serve the metrics/trace snapshot as JSON over HTTP
//	                    at this address (e.g. 127.0.0.1:9090; off by default)
//
// Commands:
//
//	repository                    list deposited component types
//	describe                      describe deposited types and ports
//	sidl <qname>                  show a SIDL type from the merged table
//	create <instance> <type>      instantiate a repository type
//	matrix <instance> <kind> <n>  install an operator component wrapping a
//	                              built-in matrix (kind: poisson|advdiff|laplace1d)
//	connect <user> <uses> <provider> <provides>
//	autoconnect <user> <provider>
//	disconnect <user> <uses> <provider> <provides>
//	components                    list installed instances
//	connections                   list live connections
//	ports <instance>              list an instance's ports
//	solve <solver-instance> [tol] run the solver against a manufactured RHS
//	export <instance> <port> [addr]
//	                              serve a provides port over TCP for remote
//	                              frameworks (addr default 127.0.0.1:0)
//	remote <instance> <addr> <key> [type]
//	                              install a supervised proxy component for a
//	                              remotely exported port (type default
//	                              esi.MatrixData); the connection redials
//	                              with backoff, retries idempotent calls,
//	                              and circuit-breaks per the flags above
//	health <instance> <port>      show a provides port's connection health
//	checkpoint <instance> <file>  save a Checkpointable instance's state to
//	                              a checkpoint file (atomic temp+rename)
//	restore <instance> <file>     restore an instance from a checkpoint file
//	swap <instance> <type>        hot-swap a running instance for a fresh
//	                              one of a repository type: connections are
//	                              re-wired live, state carries over when
//	                              both sides are Checkpointable
//	stats [prefix]                dump framework/ORB/transport metrics,
//	                              optionally filtered by name prefix
//	trace on|off                  toggle port-call tracing
//	trace [n]                     show the last n recorded spans (default 16)
//	remove <instance>             remove an instance
//	save <file>                   persist the repository (descriptions) as JSON
//	load <file.json>              merge a saved repository into this session
//	load <file.ccl> [K=V ...]     compile a declarative assembly (docs/CCL.md):
//	                              resolve its components (against the ccl
//	                              repository stanza's networked repository or
//	                              the local one), verify/create the lockfile,
//	                              and assemble the whole application —
//	                              components, remotes, exports, connections.
//	                              K=V pairs bind the document's ${VAR}s.
//	pull <instance> <port>        pull every rank of a connected collective
//	                              DistArray uses port and print a summary
//	events                        dump configuration events observed so far
//	quit
package main

import (
	"bufio"
	"flag"
	"fmt"
	"os"
	"strconv"
	"strings"
	"time"

	"repro/internal/cca"
	ccoll "repro/internal/cca/collective"
	"repro/internal/cca/framework"
	"repro/internal/ccl"
	"repro/internal/ckpt"
	"repro/internal/core"
	"repro/internal/dist"
	"repro/internal/esi"
	"repro/internal/linalg"
	"repro/internal/obs"
	"repro/internal/orb"
	"repro/internal/transport"
)

func main() {
	script := flag.String("f", "", "script file (default: interactive stdin)")
	connectTimeout := flag.Duration("connect-timeout", 5*time.Second,
		"initial dial budget for remote connections")
	retry := flag.Int("retry", 4,
		"per-call attempt budget for idempotent methods across reconnects")
	breakerThreshold := flag.Int("breaker-threshold", 5,
		"consecutive failed redials before the circuit breaker opens")
	metricsAddr := flag.String("metrics-addr", "",
		"serve the observability snapshot over HTTP at this address")
	pprofOn := flag.Bool("pprof", false,
		"also mount /debug/pprof profile handlers on the metrics address")
	flag.Parse()

	if *metricsAddr != "" {
		bound, closeMetrics, err := obs.ServeWith(*metricsAddr, obs.ServeOptions{Pprof: *pprofOn})
		if err != nil {
			fmt.Fprintln(os.Stderr, "ccafe:", err)
			os.Exit(1)
		}
		defer closeMetrics() //nolint:errcheck
		fmt.Fprintf(os.Stderr, "ccafe: metrics at http://%s/\n", bound)
	}

	// FlavorDistributed: the shell hosts supervised proxy components for
	// remotely exported ports (the `remote` command).
	app, err := core.NewApp(core.Options{
		Flavor:  cca.FlavorInProcess | cca.FlavorDistributed,
		WithESI: true,
	})
	if err != nil {
		fmt.Fprintln(os.Stderr, "ccafe:", err)
		os.Exit(1)
	}
	// The ccl consumer type, so `load`ed assemblies (and `create`) can
	// declare generic DistArray consumers by repository type.
	if err := ccl.DepositConsumer(app.Repo); err != nil {
		fmt.Fprintln(os.Stderr, "ccafe:", err)
		os.Exit(1)
	}

	in := os.Stdin
	interactive := true
	if *script != "" {
		f, err := os.Open(*script)
		if err != nil {
			fmt.Fprintln(os.Stderr, "ccafe:", err)
			os.Exit(1)
		}
		defer f.Close()
		in = f
		interactive = false
	}

	sh := &shell{app: app, supOpts: orb.SupervisorOptions{
		ConnectTimeout:   *connectTimeout,
		MaxAttempts:      *retry,
		BreakerThreshold: *breakerThreshold,
	}}
	defer sh.shutdown()
	scanner := bufio.NewScanner(in)
	if interactive {
		fmt.Print("ccafe> ")
	}
	for scanner.Scan() {
		line := strings.TrimSpace(scanner.Text())
		if line != "" && !strings.HasPrefix(line, "#") {
			if done := sh.exec(line); done {
				return
			}
		}
		if interactive {
			fmt.Print("ccafe> ")
		}
	}
}

type shell struct {
	app        *core.App
	supOpts    orb.SupervisorOptions
	exports    []*dist.Exporter
	remotes    []*dist.RemotePort
	assemblies []*ccl.Assembly
}

// shutdown releases every exporter, supervised connection, and compiled
// assembly the session opened.
func (sh *shell) shutdown() {
	for _, a := range sh.assemblies {
		a.Close()
	}
	for _, r := range sh.remotes {
		r.Close()
	}
	for _, e := range sh.exports {
		e.Close()
	}
}

// exec runs one command line; returns true on quit.
func (sh *shell) exec(line string) bool {
	fields := strings.Fields(line)
	cmd, args := fields[0], fields[1:]
	var err error
	switch cmd {
	case "quit", "exit":
		return true
	case "repository":
		for _, n := range sh.app.Repo.List() {
			fmt.Println(" ", n)
		}
	case "describe":
		fmt.Print(sh.app.Repo.Describe())
	case "sidl":
		if len(args) != 1 {
			err = fmt.Errorf("usage: sidl <qualified-type>")
			break
		}
		tbl := sh.app.Repo.Table()
		kind := tbl.Lookup(args[0])
		if kind == "" {
			err = fmt.Errorf("no SIDL type %q", args[0])
			break
		}
		fmt.Printf("%s %s\n", kind, args[0])
		if iface, ok := tbl.Interfaces[args[0]]; ok {
			for _, m := range iface.Methods {
				fmt.Printf("  %s %s  (from %s)\n", m.Decl.Name, m.Decl.Signature(), m.Owner)
			}
		}
	case "create":
		if len(args) != 2 {
			err = fmt.Errorf("usage: create <instance> <type>")
			break
		}
		err = sh.app.Create(args[0], args[1])
	case "matrix":
		err = sh.matrix(args)
	case "connect":
		if len(args) != 4 {
			err = fmt.Errorf("usage: connect <user> <uses> <provider> <provides>")
			break
		}
		var id cca.ConnectionID
		id, err = sh.app.Connect(args[0], args[1], args[2], args[3])
		if err == nil {
			fmt.Println(" ", id)
		}
	case "autoconnect":
		if len(args) != 2 {
			err = fmt.Errorf("usage: autoconnect <user> <provider>")
			break
		}
		var id cca.ConnectionID
		id, err = sh.app.Builder.AutoConnect(args[0], args[1])
		if err == nil {
			fmt.Println(" ", id)
		}
	case "disconnect":
		if len(args) != 4 {
			err = fmt.Errorf("usage: disconnect <user> <uses> <provider> <provides>")
			break
		}
		err = sh.app.Fw.Disconnect(cca.ConnectionID{
			User: args[0], UsesPort: args[1], Provider: args[2], ProvidesPort: args[3],
		})
	case "components":
		for _, n := range sh.app.Fw.ComponentNames() {
			fmt.Println(" ", n)
		}
	case "connections":
		for _, id := range sh.app.Fw.Connections() {
			fmt.Println(" ", id)
		}
	case "ports":
		if len(args) != 1 {
			err = fmt.Errorf("usage: ports <instance>")
			break
		}
		svc, ok := sh.app.Fw.Services(args[0])
		if !ok {
			err = fmt.Errorf("no instance %q", args[0])
			break
		}
		for _, n := range svc.ProvidesPortNames() {
			info, _ := svc.PortInfo(n)
			fmt.Printf("  provides %-14s %s\n", n, info.Type)
		}
		for _, n := range svc.UsesPortNames() {
			info, _ := svc.PortInfo(n)
			fmt.Printf("  uses     %-14s %s\n", n, info.Type)
		}
	case "solve":
		err = sh.solve(args)
	case "export":
		err = sh.export(args)
	case "remote":
		err = sh.remote(args)
	case "health":
		if len(args) != 2 {
			err = fmt.Errorf("usage: health <instance> <port>")
			break
		}
		var h cca.Health
		if h, err = sh.app.Fw.PortHealth(args[0], args[1]); err == nil {
			fmt.Printf("  %s.%s: %s\n", args[0], args[1], h)
		}
	case "checkpoint":
		err = sh.checkpoint(args)
	case "restore":
		err = sh.restore(args)
	case "swap":
		err = sh.swap(args)
	case "stats":
		sh.stats(args)
	case "trace":
		err = sh.trace(args)
	case "remove":
		if len(args) != 1 {
			err = fmt.Errorf("usage: remove <instance>")
			break
		}
		err = sh.app.Fw.Remove(args[0])
	case "save":
		if len(args) != 1 {
			err = fmt.Errorf("usage: save <file>")
			break
		}
		var f *os.File
		if f, err = os.Create(args[0]); err != nil {
			break
		}
		err = sh.app.Repo.Save(f)
		if cerr := f.Close(); err == nil {
			err = cerr
		}
	case "load":
		if len(args) < 1 {
			err = fmt.Errorf("usage: load <file.json> | load <file.ccl> [K=V ...]")
			break
		}
		if strings.HasSuffix(args[0], ".ccl") {
			err = sh.loadCCL(args)
			break
		}
		if len(args) != 1 {
			err = fmt.Errorf("usage: load <file>")
			break
		}
		var f *os.File
		if f, err = os.Open(args[0]); err != nil {
			break
		}
		err = sh.app.Repo.Load(f)
		f.Close()
	case "pull":
		err = sh.pull(args)
	case "events":
		for _, e := range sh.app.Builder.Events() {
			switch {
			case e.Connection != (cca.ConnectionID{}):
				fmt.Printf("  %-18s %s\n", e.Kind, e.Connection)
			default:
				fmt.Printf("  %-18s %s\n", e.Kind, e.Component)
			}
		}
	default:
		err = fmt.Errorf("unknown command %q", cmd)
	}
	if err != nil {
		fmt.Fprintln(os.Stderr, "ccafe:", err)
	}
	return false
}

// matrix installs an OperatorComponent wrapping a built-in model problem.
func (sh *shell) matrix(args []string) error {
	if len(args) < 3 {
		return fmt.Errorf("usage: matrix <instance> poisson|advdiff|laplace1d <n> [vx vy]")
	}
	n, err := strconv.Atoi(args[2])
	if err != nil || n < 1 {
		return fmt.Errorf("bad size %q", args[2])
	}
	var m *linalg.CSR
	switch args[1] {
	case "poisson":
		m = linalg.Poisson2D(n, n)
	case "advdiff":
		vx, vy := 8.0, 4.0
		if len(args) >= 5 {
			if vx, err = strconv.ParseFloat(args[3], 64); err != nil {
				return err
			}
			if vy, err = strconv.ParseFloat(args[4], 64); err != nil {
				return err
			}
		}
		m = linalg.AdvDiff2D(n, n, vx, vy)
	case "laplace1d":
		m = linalg.Laplace1D(n)
	default:
		return fmt.Errorf("unknown matrix kind %q", args[1])
	}
	fmt.Printf("  %s: %dx%d, %d nonzeros\n", args[0], m.NRows, m.NCols, m.NNZ())
	return sh.app.Install(args[0], esi.NewOperatorComponent(m))
}

// solve drives a solver instance with b = A·1.
func (sh *shell) solve(args []string) error {
	if len(args) < 1 {
		return fmt.Errorf("usage: solve <solver-instance> [tol]")
	}
	comp, ok := sh.app.Component(args[0])
	if !ok {
		return fmt.Errorf("no instance %q", args[0])
	}
	solver, ok := comp.(esi.EsiSolver)
	if !ok {
		return fmt.Errorf("%q does not provide esi.Solver", args[0])
	}
	if len(args) >= 2 {
		tol, err := strconv.ParseFloat(args[1], 64)
		if err != nil {
			return err
		}
		solver.SetTolerance(tol)
	}
	aport, err := sh.app.Port(args[0], "A")
	if err != nil {
		return fmt.Errorf("solver has no connected operator: %w", err)
	}
	op := aport.(esi.EsiOperator)
	nrows := int(op.Rows())
	ones := linalg.Ones(nrows)
	b := make([]float64, nrows)
	if err := op.Apply(ones, &b); err != nil {
		return err
	}
	x := make([]float64, nrows)
	iters, err := solver.Solve(b, &x)
	if err != nil {
		return err
	}
	maxErr := 0.0
	for _, v := range x {
		if d := v - 1; d > maxErr {
			maxErr = d
		} else if -d > maxErr {
			maxErr = -d
		}
	}
	fmt.Printf("  converged=%v iters=%d relres=%.3e max|x-1|=%.3e\n",
		solver.Converged(), iters, solver.FinalResidual(), maxErr)
	return nil
}

// checkpointable fetches an instance that implements the optional
// cca.Checkpointable port interface.
func (sh *shell) checkpointable(instance string) (cca.Checkpointable, error) {
	comp, ok := sh.app.Component(instance)
	if !ok {
		return nil, fmt.Errorf("no instance %q", instance)
	}
	c, ok := comp.(cca.Checkpointable)
	if !ok {
		return nil, fmt.Errorf("%q (%T) is not Checkpointable", instance, comp)
	}
	return c, nil
}

// checkpoint saves an instance's state to a checkpoint file.
func (sh *shell) checkpoint(args []string) error {
	if len(args) != 2 {
		return fmt.Errorf("usage: checkpoint <instance> <file>")
	}
	c, err := sh.checkpointable(args[0])
	if err != nil {
		return err
	}
	if err := ckpt.SaveTo(args[1], c); err != nil {
		return err
	}
	fi, err := os.Stat(args[1])
	if err != nil {
		return err
	}
	fmt.Printf("  checkpointed %s to %s (%d bytes)\n", args[0], args[1], fi.Size())
	return nil
}

// restore replays a checkpoint file into an instance.
func (sh *shell) restore(args []string) error {
	if len(args) != 2 {
		return fmt.Errorf("usage: restore <instance> <file>")
	}
	c, err := sh.checkpointable(args[0])
	if err != nil {
		return err
	}
	if err := ckpt.LoadInto(args[1], c); err != nil {
		return err
	}
	fmt.Printf("  restored %s from %s\n", args[0], args[1])
	return nil
}

// swap hot-swaps a running instance for a fresh one of a repository type.
func (sh *shell) swap(args []string) error {
	if len(args) != 2 {
		return fmt.Errorf("usage: swap <instance> <type>")
	}
	repl, err := sh.app.Repo.Instantiate(args[1])
	if err != nil {
		return err
	}
	if err := sh.app.Fw.Swap(args[0], repl, framework.SwapOptions{}); err != nil {
		return err
	}
	fmt.Printf("  swapped %s to a fresh %s\n", args[0], args[1])
	return nil
}

// stats dumps the observability registry: counters and gauges as plain
// values, histograms as count/mean/p50/p99 summaries (nanoseconds for the
// duration histograms). An optional prefix filters by metric name.
func (sh *shell) stats(args []string) {
	prefix := ""
	if len(args) > 0 {
		prefix = args[0]
	}
	snap := obs.Default.Snapshot()
	for _, n := range obs.Default.Names() {
		if !strings.HasPrefix(n, prefix) {
			continue
		}
		if v, ok := snap.Counters[n]; ok {
			fmt.Printf("  %-44s %d\n", n, v)
		} else if v, ok := snap.Gauges[n]; ok {
			fmt.Printf("  %-44s %d\n", n, v)
		} else if h, ok := snap.Histograms[n]; ok {
			fmt.Printf("  %-44s n=%d mean=%.0f p50=%d p99=%d\n",
				n, h.Count, h.Mean(), h.Quantile(0.5), h.Quantile(0.99))
		}
	}
}

// trace toggles the span recorder or dumps its ring, newest last.
func (sh *shell) trace(args []string) error {
	n := 16
	if len(args) > 0 {
		switch args[0] {
		case "on":
			obs.Tracer.SetEnabled(true)
			fmt.Println("  tracing on")
			return nil
		case "off":
			obs.Tracer.SetEnabled(false)
			fmt.Println("  tracing off")
			return nil
		default:
			v, err := strconv.Atoi(args[0])
			if err != nil || v < 1 {
				return fmt.Errorf("usage: trace on|off|<n>")
			}
			n = v
		}
	}
	spans := obs.Tracer.Spans()
	if len(spans) > n {
		spans = spans[len(spans)-n:]
	}
	for _, s := range spans {
		name := s.Key
		if s.Method != "" {
			name += "." + s.Method
		}
		fmt.Printf("  %016x %-12s %-24s %9.1fµs %s\n",
			s.Trace, s.Kind, name, float64(s.Dur)/1e3, s.Err)
	}
	fmt.Printf("  %d span(s) recorded, tracing=%v\n",
		obs.Tracer.Recorded(), obs.Tracer.Enabled())
	return nil
}

// loadCCL compiles a declarative assembly into the shell's framework:
// parse, validate, resolve (against the document's repository stanza or
// the local repository), verify or create the lockfile, and lower the
// whole application. Trailing K=V arguments bind ${VAR} interpolations.
func (sh *shell) loadCCL(args []string) error {
	vars := map[string]string{}
	for _, kv := range args[1:] {
		k, v, ok := strings.Cut(kv, "=")
		if !ok || k == "" {
			return fmt.Errorf("variable binding %q is not K=V", kv)
		}
		vars[k] = v
	}
	doc, err := ccl.Load(args[0], vars)
	if err != nil {
		return err
	}
	asm, err := ccl.Compile(doc, ccl.Options{
		App:               sh.app,
		LockPath:          ccl.DefaultLockPath(args[0]),
		DefaultSupervisor: sh.supOpts,
	})
	if err != nil {
		return err
	}
	sh.assemblies = append(sh.assemblies, asm)

	name := doc.Name
	if name == "" {
		name = args[0]
	}
	fmt.Printf("  assembled %s: %d component(s), %d remote(s), %d export(s), %d connection(s)\n",
		name, len(doc.Components), len(doc.Remotes), len(doc.Exports), len(doc.Connects))
	for _, r := range asm.Resolutions {
		fmt.Printf("  resolved %s = %s %s (%s)\n", r.Instance, r.Type, r.Version, r.Source)
	}
	switch {
	case asm.LockCreated:
		fmt.Printf("  lockfile created: %s\n", asm.LockPath)
	default:
		fmt.Printf("  lockfile verified: %s\n", asm.LockPath)
	}
	for _, e := range asm.Exports {
		fmt.Printf("  exported %s at %s\n", e.Key, e.Addr)
	}
	return nil
}

// pull drains one epoch of a connected collective DistArray uses port,
// rank by rank, and prints a per-rank summary.
func (sh *shell) pull(args []string) error {
	if len(args) != 2 {
		return fmt.Errorf("usage: pull <instance> <port>")
	}
	port, err := sh.app.Port(args[0], args[1])
	if err != nil {
		return err
	}
	pull, ok := port.(ccoll.PullPort)
	if !ok {
		return fmt.Errorf("%s.%s (%T) is not a collective pull port", args[0], args[1], port)
	}
	fmt.Printf("  %s.%s: global length %d over %d rank(s)\n",
		args[0], args[1], pull.GlobalLen(), pull.Ranks())
	for r := 0; r < pull.Ranks(); r++ {
		out := make([]float64, pull.LocalLen(r))
		if err := pull.Pull(r, out); err != nil {
			return fmt.Errorf("rank %d: %w", r, err)
		}
		sum := 0.0
		for _, v := range out {
			sum += v
		}
		fmt.Printf("  pulled rank %d: len=%d sum=%.6f\n", r, len(out), sum)
	}
	return nil
}

// export serves an instance's provides port over TCP for remote frameworks.
func (sh *shell) export(args []string) error {
	if len(args) < 2 || len(args) > 3 {
		return fmt.Errorf("usage: export <instance> <port> [addr]")
	}
	addr := "127.0.0.1:0"
	if len(args) == 3 {
		addr = args[2]
	}
	l, err := transport.TCP{}.Listen(addr)
	if err != nil {
		return err
	}
	exp := dist.NewExporter(sh.app.Fw, l)
	key, err := exp.Export(args[0], args[1])
	if err != nil {
		exp.Close()
		return err
	}
	sh.exports = append(sh.exports, exp)
	fmt.Printf("  exported %s at %s\n", key, exp.Addr())
	return nil
}

// remote installs a supervised proxy component for a remotely exported
// port, wired to the shell's --connect-timeout/--retry/--breaker-threshold
// supervision settings. Connection health transitions surface in `events`
// and `health`.
func (sh *shell) remote(args []string) error {
	if len(args) < 3 || len(args) > 4 {
		return fmt.Errorf("usage: remote <instance> <addr> <key> [type]")
	}
	portType := esi.TypeMatrixData
	if len(args) == 4 {
		portType = args[3]
	}
	rp, err := dist.InstallSupervisedRemoteOperator(
		sh.app.Fw, args[0], transport.TCP{}, args[1], args[2], portType, sh.supOpts)
	if err != nil {
		return err
	}
	sh.remotes = append(sh.remotes, rp)
	fmt.Printf("  %s: supervised connection to %s (%s)\n", args[0], args[1], portType)
	return nil
}
