package main

// E15 — multi-process SPMD fabric cost: the same binomial-tree collectives
// measured over the three comm fabrics a cohort can run on — the goroutine
// backend (channels, one address space), and the process backend over tcp
// loopback and over shm rings. The process backends pay the full wire
// path: codec, transport framing, and (for tcp) the kernel socket stack,
// so the spread between columns is the price of leaving the address space
// — and the shm column shows how much of that price is sockets rather
// than process isolation. Allreduce is latency-bound at 8 B (tree depth ×
// per-hop cost) and bandwidth-bound at 1 MiB; Alltoall stresses the mesh
// with p−1 simultaneous pairwise streams per rank.

import (
	"fmt"
	"os"

	"repro/internal/mpi"
)

// e15Backends enumerates the comm fabrics. Each run function forms an
// n-rank world, calls body on every rank, and tears the world down.
func e15Backends() []struct {
	name string
	run  func(n int, body func(c *mpi.Comm))
} {
	return []struct {
		name string
		run  func(n int, body func(c *mpi.Comm))
	}{
		{"goroutine", func(n int, body func(c *mpi.Comm)) {
			mpi.Run(n, body)
		}},
		{"proc-tcp", func(n int, body func(c *mpi.Comm)) {
			check(mpi.RunOver(n, "tcp://127.0.0.1:0", func(c *mpi.Comm, _ *mpi.Proc) { body(c) }))
		}},
		{"proc-shm", func(n int, body func(c *mpi.Comm)) {
			dir, err := os.MkdirTemp("", "bench-e15-*")
			check(err)
			defer os.RemoveAll(dir)
			check(mpi.RunOver(n, "shm://"+dir+"/rv", func(c *mpi.Comm, _ *mpi.Proc) { body(c) }))
		}},
	}
}

func e15() {
	fmt.Printf("%-10s %10s %6s %10s %14s\n", "collective", "backend", "ranks", "bytes", "µs/op")
	sizes := []struct {
		label string
		bytes int
	}{{"8B", 8}, {"32KiB", 32 << 10}, {"1MiB", 1 << 20}}
	var shm8B, tcp8B float64
	for _, p := range []int{2, 4, 8} {
		for _, sz := range sizes {
			floats := sz.bytes / 8
			for _, b := range e15Backends() {
				// Allreduce: every rank contributes a bytes-long vector.
				var allred float64
				b.run(p, func(c *mpi.Comm) {
					data := make([]float64, floats)
					v := measureParallel(c, func() {
						if _, err := c.AllreduceFloat64(data, mpi.Sum); err != nil {
							panic(err)
						}
					})
					if c.Rank() == 0 {
						allred = v
					}
				})
				// Alltoall: every rank sends a bytes-long chunk to each peer
				// — p·bytes on the wire per rank, p·(p−1) pairwise streams.
				var a2a float64
				b.run(p, func(c *mpi.Comm) {
					parts := make([]any, p)
					for i := range parts {
						parts[i] = make([]float64, floats)
					}
					v := measureParallel(c, func() {
						if _, err := c.Alltoall(parts); err != nil {
							panic(err)
						}
					})
					if c.Rank() == 0 {
						a2a = v
					}
				})
				record("e15", fmt.Sprintf("allreduce/%s/p=%d/%s", b.name, p, sz.label), allred, -1)
				record("e15", fmt.Sprintf("alltoall/%s/p=%d/%s", b.name, p, sz.label), a2a, -1)
				fmt.Printf("%-10s %10s %6d %10d %14.1f\n", "allreduce", b.name, p, sz.bytes, allred/1e3)
				fmt.Printf("%-10s %10s %6d %10d %14.1f\n", "alltoall", b.name, p, sz.bytes, a2a/1e3)
				if p == 4 && sz.bytes == 8 {
					switch b.name {
					case "proc-shm":
						shm8B = allred
					case "proc-tcp":
						tcp8B = allred
					}
				}
			}
		}
	}
	fmt.Printf("\nsmall-message latency (8 B allreduce, 4 ranks): shm %.1f µs vs tcp %.1f µs (%.2fx)\n",
		shm8B/1e3, tcp8B/1e3, tcp8B/shm8B)
	if shm8B >= tcp8B {
		fmt.Println("WARNING: shm did not beat tcp on small-message latency")
	}
}
