// Command bench is the reproduction's experiment harness: it runs the
// experiments of DESIGN.md's per-experiment index (E1–E11) with wall-clock
// timing loops and prints one table per experiment — the rows EXPERIMENTS.md
// records. Unlike the testing.B benchmarks in bench_test.go (which are the
// precise per-op measurements), this binary is the "reproduce the paper's
// evaluation in one command" entry point.
//
// Usage:
//
//	bench                  run every experiment
//	bench -run e1,e4       run selected experiments
//	bench -ablation        include the design-choice ablations
//	bench -quick           shorter timing loops
//	bench -json out.json   also write machine-readable results
package main

import (
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"math"
	"os"
	"runtime"
	"sort"
	"strings"
	"sync"
	"testing"
	"time"

	"repro/internal/array"
	"repro/internal/beans"
	"repro/internal/cca"
	"repro/internal/cca/collective"
	"repro/internal/cca/framework"
	dcollective "repro/internal/dist/collective"
	"repro/internal/esi"
	"repro/internal/linalg"
	"repro/internal/mpi"
	"repro/internal/obs"
	"repro/internal/orb"
	"repro/internal/sidl"
	"repro/internal/sidl/codegen"
	"repro/internal/sidl/sreflect"
	"repro/internal/transport"
)

var (
	ablation = flag.Bool("ablation", false, "include design-choice ablations")
	quick    = flag.Bool("quick", false, "shorter timing loops")
	jsonPath = flag.String("json", "", "write machine-readable results to this path")
)

// benchResult is one measurement row of the -json output; the envelope and
// field meanings are documented in EXPERIMENTS.md.
type benchResult struct {
	Experiment  string  `json:"experiment"`
	Name        string  `json:"name"`
	NsPerOp     float64 `json:"ns_per_op"`
	AllocsPerOp float64 `json:"allocs_per_op"` // -1 when not measured (multi-rank runs)
}

var results []benchResult

// record captures one row for -json output; a no-op without the flag.
func record(experiment, name string, ns, allocs float64) {
	if *jsonPath == "" {
		return
	}
	results = append(results, benchResult{Experiment: experiment, Name: name, NsPerOp: ns, AllocsPerOp: allocs})
}

func writeJSON(path string) error {
	env := struct {
		Schema     string        `json:"schema"`
		Timestamp  string        `json:"timestamp"`
		GoVersion  string        `json:"go_version"`
		GOMAXPROCS int           `json:"gomaxprocs"`
		Quick      bool          `json:"quick"`
		Results    []benchResult `json:"results"`
	}{
		Schema:     "repro-bench/1",
		Timestamp:  time.Now().UTC().Format(time.RFC3339),
		GoVersion:  runtime.Version(),
		GOMAXPROCS: runtime.GOMAXPROCS(0),
		Quick:      *quick,
		Results:    results,
	}
	if env.Results == nil {
		env.Results = []benchResult{} // emit [] rather than null
	}
	b, err := json.MarshalIndent(env, "", "  ")
	if err != nil {
		return err
	}
	return os.WriteFile(path, append(b, '\n'), 0o644)
}

func main() {
	runList := flag.String("run", "", "comma-separated experiment ids (e1..e15, e7b); empty = all")
	testing.Init() // registers test.* flags; measureAllocs runs testing.Benchmark
	flag.Parse()
	// Point the stdlib benchmark harness at the same time budget the
	// hand-rolled measurement loops use.
	check(flag.Set("test.benchtime", budget().String()))

	wanted := map[string]bool{}
	if *runList != "" {
		for _, id := range strings.Split(*runList, ",") {
			wanted[strings.TrimSpace(strings.ToLower(id))] = true
		}
	}
	all := []struct {
		id   string
		name string
		fn   func()
	}{
		{"e1", "E1 — §6.2 connection-mechanism call overhead (claims C1, C2)", e1},
		{"e2", "E2 — §3.3 in-process ORB vs direct port (claim C3)", e2},
		{"e3", "E3 — §3.2 event delivery vs port fan-out (claim C4)", e3},
		{"e4", "E4 — §6.3 collective-port redistribution (claim C5)", e4},
		{"e6", "E6 — §6.1 connection mechanics (Figure 3)", e6},
		{"e7", "E7 — §5 SIDL toolchain", e7},
		{"e7b", "E7b — §6.1 supervision overhead (happy path)", e7b},
		{"e8", "E8 — §2.2 ESI solver swap", e8},
		{"e9", "E9 — MPI collective scaling", e9},
		{"e10", "E10 — observability overhead (metrics + tracing vs dark)", e10},
		{"e11", "E11 — §6.3 cross-process collective pull over the ORB", e11},
		{"e12", "E12 — same-host transport matrix (inproc/shm/tcp) + SIMD kernels", e12},
		{"e13", "E13 — high-fan-out serving tier (epoch cache + admission control)", e13},
		{"e14", "E14 — recovery: checkpoint/restore latency + hot-swap window under load", e14},
		{"e15", "E15 — SPMD fabric: collectives over goroutine vs process (tcp/shm) backends", e15},
	}
	for _, exp := range all {
		if len(wanted) > 0 && !wanted[exp.id] {
			continue
		}
		fmt.Printf("\n== %s ==\n", exp.name)
		exp.fn()
	}
	if len(wanted) == 0 || wanted["e5"] {
		fmt.Println("\n== E5 — Figure 1 pipeline (ports vs monolith) ==")
		fmt.Println("E5 needs testing.B statistics; run:")
		fmt.Println("  go test -bench=BenchmarkE5 -benchtime=1000x .")
	}
	if *jsonPath != "" {
		check(writeJSON(*jsonPath))
		fmt.Printf("\nwrote %d results to %s\n", len(results), *jsonPath)
	}
}

// budget returns the per-measurement time budget.
func budget() time.Duration {
	if *quick {
		return 20 * time.Millisecond
	}
	return 150 * time.Millisecond
}

// measure runs f repeatedly until the budget elapses and reports ns/op.
func measure(f func()) float64 {
	ns, _ := measureAllocs(f)
	return ns
}

// measureAllocs is measure plus a heap-allocation count per op. It runs f
// under the stdlib benchmark harness (testing.Benchmark honors the
// test.benchtime value main derives from the budget), so allocs/op comes
// from BenchmarkResult.AllocsPerOp — an integer, computed the same way
// `go test -benchmem` computes it. Earlier versions divided raw MemStats
// deltas by the iteration count, which leaked fractional artifacts like
// 2.0003 into the -json output whenever a background goroutine allocated
// during the timing window.
func measureAllocs(f func()) (nsPerOp, allocsPerOp float64) {
	f() // warm up outside the timed region
	r := testing.Benchmark(func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			f()
		}
	})
	ns := float64(r.T.Nanoseconds()) / float64(r.N)
	return ns, float64(r.AllocsPerOp())
}

// measureConcurrent times callers goroutines running f concurrently until
// the budget elapses. It reports aggregate ns/op (wall time over total
// completed ops — the throughput view, which is what concurrency improves)
// and process-wide allocs/op (client and server share the process here, so
// the figure covers both sides of each call).
func measureConcurrent(callers int, f func()) (nsPerOp, allocsPerOp float64) {
	f() // warm up
	per := 1
	var m0, m1 runtime.MemStats
	for {
		runtime.ReadMemStats(&m0)
		start := time.Now()
		var wg sync.WaitGroup
		for i := 0; i < callers; i++ {
			wg.Add(1)
			go func() {
				defer wg.Done()
				for j := 0; j < per; j++ {
					f()
				}
			}()
		}
		wg.Wait()
		el := time.Since(start)
		total := callers * per
		if el >= budget() {
			runtime.ReadMemStats(&m1)
			// Report whole allocations per op, matching measureAllocs:
			// the Mallocs delta includes stray background allocations, and
			// a fractional count is measurement noise, not a result.
			return float64(el.Nanoseconds()) / float64(total),
				math.Floor(float64(m1.Mallocs-m0.Mallocs)/float64(total) + 0.5)
		}
		if el <= 0 {
			per *= 1000
			continue
		}
		scale := float64(budget()) / float64(el) * 1.3
		if scale < 2 {
			scale = 2
		}
		per = int(float64(per) * scale)
	}
}

// measureParallel measures a collective operation in lock-step across the
// communicator: rank 0 chooses iteration counts and broadcasts them, so
// every rank executes the same number of collective calls (anything else
// deadlocks a collective benchmark).
func measureParallel(c *mpi.Comm, f func()) float64 {
	f() // warm up (collective: all ranks run it once)
	n := 1
	for {
		nv, err := c.Bcast(0, n)
		if err != nil {
			panic(err)
		}
		n = nv.(int)
		if n == 0 {
			return 0 // only non-root ranks take this path
		}
		if err := c.Barrier(); err != nil {
			panic(err)
		}
		start := time.Now()
		for i := 0; i < n; i++ {
			f()
		}
		if err := c.Barrier(); err != nil {
			panic(err)
		}
		if c.Rank() != 0 {
			continue
		}
		el := time.Since(start)
		if el >= budget() {
			// Tell the others we are done, then report.
			if _, err := c.Bcast(0, 0); err != nil {
				panic(err)
			}
			return float64(el.Nanoseconds()) / float64(n)
		}
		scale := float64(budget()) / float64(el+1) * 1.3
		if scale < 2 {
			scale = 2
		}
		if scale > 1000 {
			scale = 1000
		}
		n = int(float64(n) * scale)
	}
}

// --- E1 ---

type e1Op struct{}

func (e1Op) TypeName() string { return "bench.Op" }
func (e1Op) Rows() int32      { return 4 }
func (e1Op) Apply(x []float64, y *[]float64) error {
	out := *y
	for i := range out {
		out[i] = 2 * x[i]
	}
	return nil
}

func e1() {
	x := []float64{1, 2, 3, 4}
	y := make([]float64, 4)

	var direct esi.EsiOperator = e1Op{}
	stub := esi.NewEsiOperatorStub(e1Op{})
	double := esi.NewEsiOperatorStub(esi.NewEsiOperatorStub(e1Op{}))

	// Direct-connect through a real framework.
	fw := framework.New(framework.Options{})
	check(fw.Install("p", provider{}))
	u := &user{}
	check(fw.Install("u", u))
	_, err := fw.Connect("u", "op", "p", "op")
	check(err)
	port, err := u.svc.GetPort("op")
	check(err)
	connected := port.(esi.EsiOperator)

	info, _ := sreflect.Global.Lookup("esi.Operator")
	dmi, err := sreflect.NewObject(info, e1Op{})
	check(err)

	rows := []struct {
		name string
		fn   func()
	}{
		{"direct Go call", func() { direct.Apply(x, &y) }},
		{"direct-connect port", func() { connected.Apply(x, &y) }},
		{"SIDL stub (1 binding)", func() { stub.Apply(x, &y) }},
		{"SIDL stub (2 bindings)", func() { double.Apply(x, &y) }},
		{"reflection DMI", func() { dmi.Call("apply", x, &y) }},
	}
	base := 0.0
	fmt.Printf("%-24s %12s %8s\n", "mechanism", "ns/call", "×direct")
	for i, r := range rows {
		ns, allocs := measureAllocs(r.fn)
		if i == 0 {
			base = ns
		}
		record("e1", r.name, ns, allocs)
		fmt.Printf("%-24s %12.2f %8.2f\n", r.name, ns, ns/base)
	}
	fmt.Println("paper claim C1: port ≈ direct; C2: SIDL binding ≈ 2-3 extra calls")
}

type provider struct{}

func (provider) SetServices(svc cca.Services) error {
	return svc.AddProvidesPort(e1Op{}, cca.PortInfo{Name: "op", Type: esi.TypeOperator})
}

type user struct{ svc cca.Services }

func (u *user) SetServices(svc cca.Services) error {
	u.svc = svc
	return svc.RegisterUsesPort(cca.PortInfo{Name: "op", Type: esi.TypeOperator})
}

// --- E2 ---

type e2Sum struct{}

func (e2Sum) Sum(xs []float64) float64 {
	var s float64
	for _, v := range xs {
		s += v
	}
	return s
}

// BindSkeleton gives the ORB a direct func binding (Babel-skeleton
// style), keeping reflect method values — and their per-call receiver
// allocation — out of the measured dispatch path.
func (s e2Sum) BindSkeleton(bind func(string, any)) { bind("sum", s.Sum) }

func e2() {
	f, err := sidl.Parse(`package bench { interface Sum { double sum(in array<double,1> xs); } }`)
	check(err)
	tbl, err := sidl.Resolve(f)
	check(err)
	var info *sreflect.TypeInfo
	for _, ti := range sreflect.FromTable(tbl) {
		if ti.QName == "bench.Sum" {
			info = ti
		}
	}
	o := orb.NewInProcessORB()
	check(o.OA.Register("sum", info, e2Sum{}))
	proxy := o.Proxy("sum")

	fmt.Printf("%-12s %14s %14s %10s\n", "payload", "port ns/call", "ORB ns/call", "slowdown")
	for _, n := range []int{1, 16, 256, 4096, 65536} {
		xs := make([]float64, n)
		var srv e2Sum
		dn, dAllocs := measureAllocs(func() { _ = srv.Sum(xs) })
		on, oAllocs := measureAllocs(func() {
			if _, err := proxy.Invoke("sum", xs); err != nil {
				panic(err)
			}
		})
		record("e2", fmt.Sprintf("port/%dB", 8*n), dn, dAllocs)
		record("e2", fmt.Sprintf("orb/%dB", 8*n), on, oAllocs)
		fmt.Printf("%-12s %14.1f %14.1f %9.0f×\n", fmt.Sprintf("%dB", 8*n), dn, on, on/dn)
	}
	fmt.Println("paper claim C3: same-address-space ORB calls are far too inefficient")
	e2Remote(info)
}

// e2Remote measures the genuinely remote half of E2: one TCP connection,
// 1/4/16 concurrent in-flight callers. "serial" recreates the
// pre-multiplexing client — one outstanding request per connection — by
// wrapping Invoke in a mutex; "mux" lets the pipelined client correlate
// concurrent calls on the wire, so N callers share round trips instead of
// paying N of them.
func e2Remote(info *sreflect.TypeInfo) {
	oa := orb.NewObjectAdapter()
	check(oa.Register("sum", info, e2Sum{}))
	l, err := transport.TCP{}.Listen("127.0.0.1:0")
	check(err)
	srv := orb.Serve(oa, l)
	defer srv.Stop()
	c, err := orb.DialClient(transport.TCP{}, srv.Addr())
	check(err)
	defer c.Close()

	fmt.Printf("\nremote TCP, concurrent in-flight callers on one connection:\n")
	fmt.Printf("%-10s %8s %14s %14s %9s %12s\n",
		"payload", "callers", "serial ns/op", "mux ns/op", "speedup", "mux allocs")
	var serialMu sync.Mutex
	for _, n := range []int{1, 4096} {
		xs := make([]float64, n)
		invoke := func() {
			if _, err := c.Invoke("sum", "sum", xs); err != nil {
				panic(err)
			}
		}
		for _, callers := range []int{1, 4, 16} {
			sn, sAllocs := measureConcurrent(callers, func() {
				serialMu.Lock()
				invoke()
				serialMu.Unlock()
			})
			mn, mAllocs := measureConcurrent(callers, invoke)
			record("e2", fmt.Sprintf("remote-serial/c=%d/%dB", callers, 8*n), sn, sAllocs)
			record("e2", fmt.Sprintf("remote-mux/c=%d/%dB", callers, 8*n), mn, mAllocs)
			fmt.Printf("%-10s %8d %14.1f %14.1f %8.1f× %12.1f\n",
				fmt.Sprintf("%dB", 8*n), callers, sn, mn, sn/mn, mAllocs)
		}
	}
	fmt.Println("mux: correlation-ID pipelining; serial: one outstanding call per connection")
}

// --- E3 ---

func e3() {
	fmt.Printf("%-10s %16s %16s %8s\n", "listeners", "events ns/fire", "ports ns/fire", "ratio")
	for _, fan := range []int{1, 4, 16, 64} {
		bean := beans.NewBean("src")
		var acc float64
		for i := 0; i < fan; i++ {
			bean.AddListener("tick", beans.ListenerFunc(func(e beans.Event) {
				acc += e.Payload.(float64)
			}))
		}
		en, eAllocs := measureAllocs(func() { bean.Fire("tick", 1.5) })

		sinks := make([]*tickSink, fan)
		for i := range sinks {
			sinks[i] = &tickSink{}
		}
		pn, pAllocs := measureAllocs(func() {
			for _, s := range sinks {
				s.Tick(1.5)
			}
		})
		record("e3", fmt.Sprintf("events/fan=%d", fan), en, eAllocs)
		record("e3", fmt.Sprintf("ports/fan=%d", fan), pn, pAllocs)
		fmt.Printf("%-10d %16.1f %16.1f %7.1f×\n", fan, en, pn, en/pn)
	}
}

type tickSink struct{ acc float64 }

func (t *tickSink) Tick(v float64) { t.acc += v }

// --- E4 ---

func e4() {
	ranks := func(lo, n int) []int {
		out := make([]int, n)
		for i := range out {
			out[i] = lo + i
		}
		return out
	}
	type caseT struct {
		name  string
		world int
		src   collective.Side
		dst   collective.Side
	}
	const n = 100000
	cases := []caseT{
		{"matched 4→4 (fast path)", 4, collective.Block(n, ranks(0, 4)), collective.Block(n, ranks(0, 4))},
		{"block 4→cyclic 4", 8, collective.Block(n, ranks(0, 4)), collective.Cyclic(n, 64, ranks(4, 4))},
		{"scatter 1→4", 5, collective.Serial(n, 0), collective.Block(n, ranks(1, 4))},
		{"gather 4→1", 5, collective.Block(n, ranks(0, 4)), collective.Serial(n, 4)},
		{"block 2→8", 10, collective.Block(n, ranks(0, 2)), collective.Block(n, ranks(2, 8))},
	}
	fmt.Printf("%-26s %6s %10s %12s\n", "pattern", "msgs", "µs/xfer", "MB/s")
	for _, c := range cases {
		plan, err := collective.NewPlan(c.src, c.dst)
		check(err)
		ns := measureTransfer(plan, c.world, false)
		record("e4", c.name, ns, -1)
		fmt.Printf("%-26s %6d %10.1f %12.0f\n", c.name, plan.Messages(), ns/1e3, 8*float64(n)/ns*1e3)
		if *ablation && plan.Matched() {
			nsF := measureTransfer(plan, c.world, true)
			record("e4", c.name+" (fast path disabled)", nsF, -1)
			fmt.Printf("%-26s %6s %10.1f %12.0f\n", "  └ fast path disabled", "-", nsF/1e3, 8*float64(n)/nsF*1e3)
		}
	}
	fmt.Println("paper claim C5: matched maps need no redistribution; serial↔parallel ≈ scatter/gather")
}

func measureTransfer(plan *collective.Plan, world int, forced bool) float64 {
	var ns float64
	mpi.Run(world, func(c *mpi.Comm) {
		local := make([]float64, plan.SrcLocalLen(c.Rank()))
		out := make([]float64, plan.DstLocalLen(c.Rank()))
		body := func() {
			var err error
			if forced {
				err = plan.TransferForced(c, local, out)
			} else {
				err = plan.Transfer(c, local, out)
			}
			if err != nil {
				panic(err)
			}
		}
		v := measureParallel(c, body)
		if c.Rank() == 0 {
			ns = v
		}
	})
	return ns
}

// --- E6 ---

func e6() {
	fw := framework.New(framework.Options{})
	check(fw.Install("p", provider{}))
	u := &user{}
	check(fw.Install("u", u))

	connDisc, cdAllocs := measureAllocs(func() {
		id, err := fw.Connect("u", "op", "p", "op")
		if err != nil {
			panic(err)
		}
		if err := fw.Disconnect(id); err != nil {
			panic(err)
		}
	})
	_, err := fw.Connect("u", "op", "p", "op")
	check(err)
	getPort, gpAllocs := measureAllocs(func() {
		if _, err := u.svc.GetPort("op"); err != nil {
			panic(err)
		}
		u.svc.ReleasePort("op")
	})
	record("e6", "connect+disconnect", connDisc, cdAllocs)
	record("e6", "getPort+release", getPort, gpAllocs)
	fmt.Printf("connect+disconnect: %8.1f ns (%.2fM ops/s)\n", connDisc, 1e3/connDisc)
	fmt.Printf("getPort+release:    %8.1f ns (%.2fM ops/s)\n", getPort, 1e3/getPort)
}

// --- E7 ---

func e7() {
	esiSrc, portsSrc := esi.Sources()
	src := esiSrc + "\n" + portsSrc
	parsed, err := sidl.Parse(src)
	check(err)
	tbl, err := sidl.Resolve(parsed)
	check(err)

	lex := measure(func() {
		if _, err := sidl.Lex(src); err != nil {
			panic(err)
		}
	})
	parse := measure(func() {
		if _, err := sidl.Parse(src); err != nil {
			panic(err)
		}
	})
	resolve := measure(func() {
		if _, err := sidl.Resolve(parsed); err != nil {
			panic(err)
		}
	})
	gen := measure(func() {
		if _, err := codegen.Generate(tbl, codegen.Options{PackageName: "x", Reflection: true}); err != nil {
			panic(err)
		}
	})
	kb := float64(len(src)) / 1024
	fmt.Printf("corpus: %.1f KiB, %d types\n", kb, len(tbl.Order))
	fmt.Printf("%-10s %10s %12s\n", "stage", "µs/pass", "MiB/s")
	for _, row := range []struct {
		name string
		ns   float64
	}{{"lex", lex}, {"parse", parse}, {"resolve", resolve}, {"codegen", gen}} {
		record("e7", row.name, row.ns, -1)
		fmt.Printf("%-10s %10.1f %12.1f\n", row.name, row.ns/1e3, kb/1024/(row.ns/1e9))
	}
}

// e7b measures what supervision costs on the happy path: the same remote
// call over one TCP connection, through the bare multiplexed client and
// through the Supervised wrapper (classification, idempotent retry
// bookkeeping, circuit-breaker check, heartbeat timer armed). The
// robustness machinery must not erode claim C1 — the target is staying
// within 5% of the unsupervised path. (Its own experiment ID: these rows
// once recorded under "e7" and collided with the SIDL toolchain rows.)
func e7b() {
	f, err := sidl.Parse(`package bench { interface Sum { double sum(in array<double,1> xs); } }`)
	check(err)
	tbl, err := sidl.Resolve(f)
	check(err)
	var info *sreflect.TypeInfo
	for _, ti := range sreflect.FromTable(tbl) {
		if ti.QName == "bench.Sum" {
			info = ti
		}
	}
	oa := orb.NewObjectAdapter()
	check(oa.Register("sum", info, e2Sum{}))
	l, err := transport.TCP{}.Listen("127.0.0.1:0")
	check(err)
	srv := orb.Serve(oa, l)
	defer srv.Stop()

	bare, err := orb.DialClient(transport.TCP{}, srv.Addr())
	check(err)
	defer bare.Close()
	sup, err := orb.DialSupervised(transport.TCP{}, srv.Addr(), orb.SupervisorOptions{
		Idempotent: orb.AllIdempotent,
		Heartbeat:  time.Second,
	})
	check(err)
	defer sup.Close()

	fmt.Printf("\nsupervision overhead, remote TCP happy path:\n")
	fmt.Printf("%-10s %14s %16s %10s\n", "payload", "bare ns/call", "superv. ns/call", "overhead")
	for _, n := range []int{1, 4096} {
		xs := make([]float64, n)
		bn, bAllocs := measureAllocs(func() {
			if _, err := bare.Invoke("sum", "sum", xs); err != nil {
				panic(err)
			}
		})
		sn, sAllocs := measureAllocs(func() {
			if _, err := sup.Invoke("sum", "sum", xs); err != nil {
				panic(err)
			}
		})
		record("e7b", fmt.Sprintf("remote-bare/%dB", 8*n), bn, bAllocs)
		record("e7b", fmt.Sprintf("remote-supervised/%dB", 8*n), sn, sAllocs)
		fmt.Printf("%-10s %14.1f %16.1f %9.1f%%\n",
			fmt.Sprintf("%dB", 8*n), bn, sn, 100*(sn-bn)/bn)
	}
	fmt.Println("target: supervised within 5% of bare (robustness must not erode C1)")
}

// --- E8 ---

func e8() {
	const grid = 64
	a := linalg.Poisson2D(grid, grid)
	rhs := make([]float64, a.NRows)
	check(a.Apply(linalg.Ones(a.NCols), rhs))
	fmt.Printf("system: 2-D Poisson %d² = %d unknowns\n", grid, a.NRows)
	fmt.Printf("%-10s %-8s %8s %12s %12s\n", "solver", "prec", "iters", "relres", "ms/solve")

	type result struct {
		method, prec string
		iters        int32
		res          float64
		ms           float64
	}
	var rows []result
	for _, method := range []string{"cg", "gmres", "bicgstab"} {
		for _, prec := range []string{"none", "jacobi", "sor", "ilu0"} {
			fw := framework.New(framework.Options{TypeCheck: esi.TypeChecker()})
			check(fw.Install("op", esi.NewOperatorComponent(a)))
			check(fw.Install("solver", esi.NewSolverComponent(method)))
			check(fw.Install("prec", esi.NewPreconditionerComponent(prec)))
			for _, c := range [][4]string{{"solver", "A", "op", "A"}, {"prec", "A", "op", "A"}, {"solver", "M", "prec", "M"}} {
				_, err := fw.Connect(c[0], c[1], c[2], c[3])
				check(err)
			}
			comp, _ := fw.Component("solver")
			solver := comp.(esi.EsiSolver)
			solver.SetTolerance(1e-8)
			var iters int32
			ns := measure(func() {
				x := make([]float64, a.NRows)
				it, err := solver.Solve(rhs, &x)
				if err != nil {
					panic(err)
				}
				iters = it
			})
			rows = append(rows, result{method, prec, iters, solver.FinalResidual(), ns / 1e6})
		}
	}
	sort.Slice(rows, func(i, j int) bool { return rows[i].ms < rows[j].ms })
	for _, r := range rows {
		record("e8", r.method+"/"+r.prec, r.ms*1e6, -1)
		fmt.Printf("%-10s %-8s %8d %12.3e %12.2f\n", r.method, r.prec, r.iters, r.res, r.ms)
	}
}

// --- E9 ---

func e9() {
	fmt.Printf("%-12s %6s %10s %14s\n", "collective", "ranks", "floats", "µs/op")
	for _, p := range []int{2, 4, 8} {
		for _, n := range []int{1, 1024, 131072} {
			var bcast, allred float64
			mpi.Run(p, func(c *mpi.Comm) {
				data := make([]float64, n)
				v := measureParallel(c, func() {
					var in []float64
					if c.Rank() == 0 {
						in = data
					}
					if _, err := c.BcastFloat64(0, in); err != nil {
						panic(err)
					}
				})
				if c.Rank() == 0 {
					bcast = v
				}
			})
			mpi.Run(p, func(c *mpi.Comm) {
				data := make([]float64, n)
				v := measureParallel(c, func() {
					if _, err := c.AllreduceFloat64(data, mpi.Sum); err != nil {
						panic(err)
					}
				})
				if c.Rank() == 0 {
					allred = v
				}
			})
			record("e9", fmt.Sprintf("bcast/p=%d/n=%d", p, n), bcast, -1)
			record("e9", fmt.Sprintf("allreduce/p=%d/n=%d", p, n), allred, -1)
			fmt.Printf("%-12s %6d %10d %14.1f\n", "bcast", p, n, bcast/1e3)
			fmt.Printf("%-12s %6d %10d %14.1f\n", "allreduce", p, n, allred/1e3)
		}
	}
}

// --- E10 ---

// e10 measures what the observability layer costs where it matters: the
// remote TCP hot path (per-method RED metrics and, when enabled, span
// recording per call) and the direct-connect GetPort path (one gated
// sharded-counter increment after the existing atomic claim). Three
// configurations: everything dark, metrics on (the shipping default), and
// metrics + tracing. Claim C1's budget applies — the default must stay
// within 5% of the dark path, and GetPort must stay at ~0%.
func e10() {
	f, err := sidl.Parse(`package bench { interface Sum { double sum(in array<double,1> xs); } }`)
	check(err)
	tbl, err := sidl.Resolve(f)
	check(err)
	var info *sreflect.TypeInfo
	for _, ti := range sreflect.FromTable(tbl) {
		if ti.QName == "bench.Sum" {
			info = ti
		}
	}
	oa := orb.NewObjectAdapter()
	check(oa.Register("sum", info, e2Sum{}))
	l, err := transport.TCP{}.Listen("127.0.0.1:0")
	check(err)
	srv := orb.Serve(oa, l)
	defer srv.Stop()
	c, err := orb.DialClient(transport.TCP{}, srv.Addr())
	check(err)
	defer c.Close()

	configure := func(metrics, tracing bool) {
		obs.SetMetricsEnabled(metrics)
		obs.Tracer.SetEnabled(tracing)
	}
	defer configure(true, false) // restore the shipping defaults

	// TCP round trips are noisy relative to the effect being measured, so
	// the configurations are timed round-robin several times and the
	// per-config minimum kept — the standard noise-robust latency
	// estimator, with interleaving so slow drift hits every config alike.
	const reps = 25
	cfgs := [3][2]bool{{false, false}, {true, false}, {true, true}} // dark, metrics, metrics+trace
	minOver := func(fn func()) (best, bestAllocs [3]float64) {
		for r := 0; r < reps; r++ {
			for i, cfg := range cfgs {
				configure(cfg[0], cfg[1])
				ns, allocs := measureAllocs(fn)
				if r == 0 || ns < best[i] {
					best[i], bestAllocs[i] = ns, allocs
				}
			}
		}
		return best, bestAllocs
	}

	fmt.Printf("remote TCP, one call per round trip (min of %d interleaved runs):\n", reps)
	fmt.Printf("%-10s %13s %15s %15s %9s %9s\n",
		"payload", "dark ns/call", "metrics ns/call", "m+trace ns/call", "metrics", "m+trace")
	for _, n := range []int{1, 4096} {
		xs := make([]float64, n)
		invoke := func() {
			if _, err := c.Invoke("sum", "sum", xs); err != nil {
				panic(err)
			}
		}
		ns, allocs := minOver(invoke)
		dark, met, tra := ns[0], ns[1], ns[2]
		record("e10", fmt.Sprintf("remote-dark/%dB", 8*n), dark, allocs[0])
		record("e10", fmt.Sprintf("remote-metrics/%dB", 8*n), met, allocs[1])
		record("e10", fmt.Sprintf("remote-metrics+trace/%dB", 8*n), tra, allocs[2])
		fmt.Printf("%-10s %13.1f %15.1f %15.1f %8.1f%% %8.1f%%\n",
			fmt.Sprintf("%dB", 8*n), dark, met, tra,
			100*(met-dark)/dark, 100*(tra-dark)/dark)
	}

	// Direct-connect GetPort: the C1-critical framework path.
	fw := framework.New(framework.Options{})
	check(fw.Install("p", provider{}))
	u := &user{}
	check(fw.Install("u", u))
	_, err = fw.Connect("u", "op", "p", "op")
	check(err)
	get := func() {
		if _, err := u.svc.GetPort("op"); err != nil {
			panic(err)
		}
		u.svc.ReleasePort("op")
	}
	gpNs, _ := minOver(get)
	gpDark, gpMet := gpNs[0], gpNs[1]
	record("e10", "getport-dark", gpDark, -1)
	record("e10", "getport-metrics", gpMet, -1)
	fmt.Printf("\ngetPort+release: dark %.1f ns, metrics %.1f ns (%+.1f%%)\n",
		gpDark, gpMet, 100*(gpMet-gpDark)/gpDark)
	fmt.Println("target: metrics (the default) within 5% of dark remotely, ~0% on GetPort")
}

// --- E11 ---

// benchDistPort is a static in-memory DistArrayPort for the E11 provider
// cohort.
type benchDistPort struct {
	side collective.Side
	data []float64
}

func (p *benchDistPort) Side() collective.Side { return p.side }
func (p *benchDistPort) LocalData() []float64  { return p.data }

// Snapshot implements collective.SnapshotPort: the bench data is static,
// so the publisher may retain it without copying.
func (p *benchDistPort) Snapshot() []float64 { return p.data }

// e11 measures the distributed collective port: an N-rank consumer cohort
// pulling a block-distributed array from an M-rank provider cohort over
// TCP loopback (both cohorts in this process — the transport path is the
// real cross-process path, only the scheduler's world is synthetic). Four
// reference rows calibrate each size: a single memcpy of the payload; the
// memcpy-equivalent floor of a cross-process transfer (four unavoidable
// passes over the bytes: pack, user→kernel send, kernel→user receive,
// scatter); the raw framed transport streaming the same bytes (the wire
// floor the chunked pull chases); and the in-process E4 transfer for the
// same block→cyclic geometry.
func e11() {
	combos := [][2]int{{1, 1}, {1, 2}, {1, 4}, {2, 1}, {2, 2}, {2, 4}, {4, 1}, {4, 2}, {4, 4}}
	for _, gl := range []int{1_000, 1_000_000} {
		bytes := 8 * float64(gl)
		fmt.Printf("\n%d doubles (%.1f MiB):\n", gl, bytes/(1<<20))
		fmt.Printf("%-24s %10s %12s\n", "case", "µs/pull", "MB/s")

		// One user-space pass over the payload, and the four passes any
		// cross-process path must make.
		srcBuf := make([]float64, gl)
		dstBuf := make([]float64, gl)
		cpNs := measure(func() { copy(dstBuf, srcBuf) })
		record("e11", fmt.Sprintf("memcpy/%d", gl), cpNs, -1)
		fmt.Printf("%-24s %10.1f %12.0f\n", "memcpy (1 pass)", cpNs/1e3, bytes/cpNs*1e3)
		floorNs := measure(func() {
			copy(dstBuf, srcBuf)
			copy(srcBuf, dstBuf)
			copy(dstBuf, srcBuf)
			copy(srcBuf, dstBuf)
		})
		record("e11", fmt.Sprintf("copyfloor/%d", gl), floorNs, -1)
		fmt.Printf("%-24s %10.1f %12.0f\n", "copy floor (4 passes)", floorNs/1e3, bytes/floorNs*1e3)

		// Wire floor: the framed transport blasting the same bytes with no
		// ORB, no chunk protocol, no scatter.
		wireNs := measureE11Stream(gl)
		record("e11", fmt.Sprintf("tcpstream/%d", gl), wireNs, -1)
		fmt.Printf("%-24s %10.1f %12.0f\n", "raw TCP stream", wireNs/1e3, bytes/wireNs*1e3)

		// In-process comparison: E4's scheduler over shared memory, same
		// block 2 → cyclic 2 geometry.
		srcSide := collective.Block(gl, []int{0, 1})
		dstSide := collective.Cyclic(gl, 64, []int{2, 3})
		plan, err := collective.NewPlan(srcSide, dstSide)
		check(err)
		ipNs := measureTransfer(plan, 4, false)
		record("e11", fmt.Sprintf("inproc-2to2/%d", gl), ipNs, -1)
		fmt.Printf("%-24s %10.1f %12.0f\n", "in-process 2→2 (E4)", ipNs/1e3, bytes/ipNs*1e3)

		for _, c := range combos {
			m, n := c[0], c[1]
			ns := measureE11Pull(gl, m, n)
			name := fmt.Sprintf("remote-%dto%d/%d", m, n, gl)
			record("e11", name, ns, -1)
			fmt.Printf("%-24s %10.1f %12.0f   (vs floor %.1fx, vs wire %.1fx)\n",
				fmt.Sprintf("remote %d→%d", m, n), ns/1e3, bytes/ns*1e3, ns/floorNs, ns/wireNs)
		}
	}
	fmt.Println("\ntarget at 1e6 doubles: remote pull within 2x of the 4-pass memcpy-equivalent floor")
}

// measureE11Stream times the framed transport carrying 8·gl bytes of
// 256 KiB frames over TCP loopback to a draining peer: what the socket
// path costs before any collective machinery is layered on it.
func measureE11Stream(gl int) float64 {
	l, err := transport.TCP{}.Listen("127.0.0.1:0")
	check(err)
	done := make(chan struct{})
	go func() {
		defer close(done)
		c, err := l.Accept()
		if err != nil {
			return
		}
		for {
			if _, err := c.Recv(); err != nil {
				return
			}
		}
	}()
	c, err := transport.TCP{}.Dial(l.Addr())
	check(err)
	frame := make([]byte, 256<<10)
	total := 8 * gl
	ns := measure(func() {
		for s := 0; s < total; s += len(frame) {
			n := total - s
			if n > len(frame) {
				n = len(frame)
			}
			if err := c.Send(frame[:n]); err != nil {
				panic(err)
			}
		}
	})
	c.Close() //nolint:errcheck
	l.Close() //nolint:errcheck
	<-done
	return ns
}

// measureE11Pull times one full PullAll — plan reuse, one epoch, chunked
// streaming, scatter — of a block(m)→cyclic(n) redistribution over TCP.
func measureE11Pull(gl, m, n int) float64 {
	srcMap := array.NewBlockMap(gl, m)
	ports := make([]collective.DistArrayPort, m)
	for r := 0; r < m; r++ {
		ports[r] = &benchDistPort{
			side: collective.Side{Map: srcMap},
			data: make([]float64, srcMap.LocalLen(r)),
		}
	}
	oa := orb.NewObjectAdapter()
	l, err := transport.TCP{}.Listen("127.0.0.1:0")
	check(err)
	srv := orb.Serve(oa, l)
	defer srv.Stop()
	_, err = dcollective.Publish(oa, "bench", ports)
	check(err)

	dstMap := array.NewCyclicMap(gl, n, 64)
	imp, err := dcollective.Attach(transport.TCP{}, srv.Addr(), "bench", dstMap, dcollective.Options{})
	check(err)
	defer imp.Close()

	outs := make([][]float64, n)
	for r := 0; r < n; r++ {
		outs[r] = make([]float64, dstMap.LocalLen(r))
	}
	ctx := context.Background()
	return measure(func() {
		if err := imp.PullAllInto(ctx, outs); err != nil {
			panic(err)
		}
	})
}

func check(err error) {
	if err != nil {
		fmt.Fprintln(os.Stderr, "bench:", err)
		os.Exit(1)
	}
}
