package main

import (
	"fmt"
	"os"
	"path/filepath"
	"sync"

	"repro/internal/orb"
	"repro/internal/sidl"
	"repro/internal/sidl/arena"
	"repro/internal/sidl/sreflect"
	"repro/internal/simd"
	"repro/internal/transport"
)

// E12 — same-host transport matrix and kernel backends.
//
// The paper's performance posture (§6.2) is that the component
// architecture must impose "virtually no overhead" once a call leaves
// the same address space; this experiment quantifies what "same host"
// costs under each transport the ORB can ride: the in-process loopback
// (upper bound), the shared-memory rings (same host, different process —
// no kernel in the data path), and TCP loopback (the general case). The
// grid crosses payload size with concurrent in-flight callers, then adds
// the zero-allocation InvokeArena path and the SIMD kernel
// asm-vs-fallback ratios that PR 6 introduced.

type e12Backend struct {
	name    string
	tr      transport.Transport
	addr    string
	cleanup func()
}

func e12Backends() []e12Backend {
	dir, err := os.MkdirTemp("", "bench-shm-")
	check(err)
	return []e12Backend{
		{"inproc", &transport.InProc{}, "e12", func() {}},
		{"shm", transport.SHM{}, filepath.Join(dir, "ep"), func() { os.RemoveAll(dir) }},
		{"tcp", transport.TCP{}, "127.0.0.1:0", func() {}},
	}
}

func e12SumInfo() *sreflect.TypeInfo {
	f, err := sidl.Parse(`package bench { interface Sum { double sum(in array<double,1> xs); } }`)
	check(err)
	tbl, err := sidl.Resolve(f)
	check(err)
	for _, ti := range sreflect.FromTable(tbl) {
		if ti.QName == "bench.Sum" {
			return ti
		}
	}
	panic("bench.Sum not found")
}

func e12() {
	info := e12SumInfo()
	fmt.Printf("%-8s %-10s %8s %14s %10s\n", "backend", "payload", "callers", "ns/op", "allocs/op")
	for _, b := range e12Backends() {
		func() {
			defer b.cleanup()
			oa := orb.NewObjectAdapter()
			check(oa.Register("sum", info, e2Sum{}))
			l, err := b.tr.Listen(b.addr)
			check(err)
			srv := orb.Serve(oa, l)
			defer srv.Stop()
			c, err := orb.DialClient(b.tr, l.Addr())
			check(err)
			defer c.Close()

			for _, n := range []int{1, 4096, 1_000_000} {
				xs := make([]float64, n)
				invoke := func() {
					if _, err := c.Invoke("sum", "sum", xs); err != nil {
						panic(err)
					}
				}
				for _, callers := range []int{1, 4, 16} {
					ns, allocs := measureConcurrent(callers, invoke)
					record("e12", fmt.Sprintf("%s/invoke/c=%d/%dB", b.name, callers, 8*n), ns, allocs)
					fmt.Printf("%-8s %-10s %8d %14.1f %10.0f\n",
						b.name, fmt.Sprintf("%dB", 8*n), callers, ns, allocs)
				}
			}

			// Zero-allocation path: per-caller arenas from a pool, results
			// decoded into arena storage, reset once per call. The 8B shm
			// row is the PR's acceptance figure: sub-microsecond with 0
			// allocs/op at steady state.
			arenas := sync.Pool{New: func() any { return new(arena.Arena) }}
			outs := sync.Pool{New: func() any { s := make([]any, 0, 4); return &s }}
			for _, n := range []int{1, 4096} {
				xs := make([]float64, n)
				args := []any{xs}
				invokeArena := func() {
					ar := arenas.Get().(*arena.Arena)
					outp := outs.Get().(*[]any)
					out, err := c.InvokeArena(ar, (*outp)[:0], "sum", "sum", args)
					if err != nil {
						panic(err)
					}
					if len(out) != 1 {
						panic("bad result arity")
					}
					*outp = out[:0]
					outs.Put(outp)
					ar.Reset()
					arenas.Put(ar)
				}
				for _, callers := range []int{1, 4, 16} {
					ns, allocs := measureConcurrent(callers, invokeArena)
					record("e12", fmt.Sprintf("%s/arena/c=%d/%dB", b.name, callers, 8*n), ns, allocs)
					fmt.Printf("%-8s %-10s %8d %14.1f %10.0f\n",
						b.name, fmt.Sprintf("%dB-arena", 8*n), callers, ns, allocs)
				}
			}
		}()
	}
	e12Rtt()
	e12Kernels()
	fmt.Println("arena rows use Client.InvokeArena; 1e6-double frames exceed the shm ring and stream through it")
}

// e12Rtt measures the transports without the ORB on top: an 8-byte
// ping-pong against an echo goroutine, isolating what each backend
// charges for one same-host round trip. On a single-CPU host this is
// two scheduler handoffs; the ORB rows above add its encode/dispatch
// machinery and two more goroutine hops (dispatch worker, reply demux).
func e12Rtt() {
	fmt.Printf("\nraw transport round trip, 8B echo (no ORB):\n")
	for _, b := range e12Backends() {
		func() {
			defer b.cleanup()
			l, err := b.tr.Listen(b.addr)
			check(err)
			defer l.Close()
			go func() {
				c, err := l.Accept()
				if err != nil {
					return
				}
				for {
					f, err := c.Recv()
					if err != nil {
						return
					}
					if c.Send(f) != nil {
						return
					}
					transport.ReleaseFrame(f)
				}
			}()
			c, err := b.tr.Dial(l.Addr())
			check(err)
			defer c.Close()
			msg := make([]byte, 8)
			ns, allocs := measureAllocs(func() {
				if err := c.Send(msg); err != nil {
					panic(err)
				}
				f, err := c.Recv()
				if err != nil {
					panic(err)
				}
				transport.ReleaseFrame(f)
			})
			record("e12", fmt.Sprintf("%s/rtt-raw/8B", b.name), ns, allocs)
			fmt.Printf("  %-8s %12.1f ns/rt %10.0f allocs\n", b.name, ns, allocs)
		}()
	}
}

// e12Kernels records the SIMD kernel dispatch against the portable
// fallbacks at the acceptance size (65536 doubles). With -tags noasm (or
// off amd64) both rows run the same Go code and the ratio is ~1.
func e12Kernels() {
	const n = 65536
	x := make([]float64, n)
	y := make([]float64, n)
	for i := range x {
		x[i] = float64(i%17) * 0.25
		y[i] = float64(i%13) * 0.5
	}
	// Near-diagonal column pattern, as CSR rows from stencil/mesh
	// discretizations have: the gather stays within a few cache lines.
	cols := make([]int, n)
	for i := range cols {
		c := i + i%9 - 4
		if c < 0 {
			c = 0
		} else if c >= n {
			c = n - 1
		}
		cols[i] = c
	}
	buf := make([]byte, 8*n)
	fmt.Printf("\nSIMD kernels (backend=%s), %d doubles:\n", simd.Backend(), n)
	var sink float64
	rows := []struct {
		name string
		asm  func()
		ref  func()
	}{
		{"dot", func() { sink = simd.Dot(x, y) }, func() { sink = simd.DotGo(x, y) }},
		{"spmv-row", func() { sink = simd.SpMVRow(x, cols, y) }, func() { sink = simd.SpMVRowGo(x, cols, y) }},
		{"pack", func() { simd.PackF64LE(buf, x) }, func() { simd.PackF64LEGo(buf, x) }},
		{"unpack", func() { simd.UnpackF64LE(x, buf) }, func() { simd.UnpackF64LEGo(x, buf) }},
	}
	for _, r := range rows {
		an, _ := measureAllocs(r.asm)
		gn, _ := measureAllocs(r.ref)
		record("e12", fmt.Sprintf("kernel/%s/%s", r.name, simd.Backend()), an, 0)
		record("e12", fmt.Sprintf("kernel/%s/go", r.name), gn, 0)
		fmt.Printf("  %-10s %12.0f ns dispatch %12.0f ns go %8.2f×\n", r.name, an, gn, gn/an)
	}
	_ = sink
}
