package main

import (
	"context"
	"fmt"
	"sort"
	"time"

	"repro/internal/array"
	"repro/internal/cca/collective"
	dcollective "repro/internal/dist/collective"
	"repro/internal/obs"
	"repro/internal/orb"
	"repro/internal/transport"
)

// E13 — high-fan-out serving tier: epoch snapshot cache, broadcast
// fan-out, and admission control.
//
// The paper's attach scenario (§2.2) has a handful of viz tools pulling a
// running simulation's field; this experiment pushes that to serving-tier
// scale: a thousand standing supervised subscribers pulling the
// 1e6-double array through the epoch cache. Three phases:
//
//  1. baseline — 16 subscribers, per-pull latency distribution;
//  2. fan-out — `subs` standing supervised connections pulling in a
//     bounded window (16 concurrent, the baseline's concurrency) across
//     generations, so the p99 comparison isolates serving-tier overhead
//     from raw queueing; the frame-cache hit rate over the phase is
//     asserted > 90%;
//  3. overload — a MaxInflight-throttled server under unpaced concurrent
//     pulls: the typed ErrOverloaded shed and the supervised clients'
//     backoff-without-redial are asserted through the obs counters.
//
// Acceptance: fan-out p99 within 2× of the 16-subscriber p99, hit rate
// > 90%, sheds > 0 and overload backoffs > 0 with every pull completing.

func e13() {
	gl, subs := 1_000_000, 1000
	if *quick {
		gl, subs = 100_000, 96
	}
	const window = 16

	srcMap := array.NewBlockMap(gl, 2)
	ports := make([]collective.DistArrayPort, srcMap.Ranks())
	for r := range ports {
		data := make([]float64, srcMap.LocalLen(r))
		for i := range data {
			data[i] = float64(r*1000 + i%97)
		}
		ports[r] = &benchDistPort{side: collective.Side{Map: srcMap}, data: data}
	}
	oa := orb.NewObjectAdapter()
	l, err := transport.TCP{}.Listen("127.0.0.1:0")
	check(err)
	srv := orb.Serve(oa, l)
	defer srv.Stop()
	pub, err := dcollective.Publish(oa, "field", ports, dcollective.WithEpochCache())
	check(err)
	defer pub.Close()

	// Pull buffers are shared through a pool sized to the concurrency
	// window — a thousand private 8 MB buffers would dwarf the tier
	// under test.
	bufs := make(chan []float64, window)
	for i := 0; i < window; i++ {
		bufs <- make([]float64, gl)
	}

	waves := 3
	fmt.Printf("array: %d doubles (%.1f MiB), window=%d, waves=%d\n",
		gl, 8*float64(gl)/(1<<20), window, waves)

	// Phase 1 — baseline: 16 supervised subscribers.
	base := e13Attach(srv.Addr(), gl, window)
	e13Wave(base, bufs, window) // warm: plan exchange + first epoch pack
	var baseLat []time.Duration
	for w := 0; w < waves; w++ {
		pub.Advance()
		baseLat = append(baseLat, e13Wave(base, bufs, window)...)
	}
	b50, b99 := e13Quantiles(baseLat)
	record("e13", fmt.Sprintf("baseline/subs=%d/p50", window), float64(b50.Nanoseconds()), -1)
	record("e13", fmt.Sprintf("baseline/subs=%d/p99", window), float64(b99.Nanoseconds()), -1)
	fmt.Printf("%-34s p50 %8.2f ms   p99 %8.2f ms\n",
		fmt.Sprintf("baseline %d subscribers", window), ms(b50), ms(b99))

	// Phase 2 — fan-out: `subs` standing supervised connections.
	t0 := time.Now()
	fan := e13Attach(srv.Addr(), gl, subs)
	attachDur := time.Since(t0)
	record("e13", fmt.Sprintf("fanout/subs=%d/attach", subs), float64(attachDur.Nanoseconds()), -1)
	fmt.Printf("%-34s %8.2f ms\n", fmt.Sprintf("attach %d subscribers", subs), ms(attachDur))

	pub.Advance()
	e13Wave(fan, bufs, window) // warm the new generation
	before := obs.Default.Snapshot().Counters
	var fanLat []time.Duration
	for w := 0; w < waves; w++ {
		pub.Advance()
		fanLat = append(fanLat, e13Wave(fan, bufs, window)...)
	}
	after := obs.Default.Snapshot().Counters
	f50, f99 := e13Quantiles(fanLat)
	ratio := float64(f99) / float64(b99)
	record("e13", fmt.Sprintf("fanout/subs=%d/p50", subs), float64(f50.Nanoseconds()), -1)
	record("e13", fmt.Sprintf("fanout/subs=%d/p99", subs), float64(f99.Nanoseconds()), -1)
	record("e13", fmt.Sprintf("fanout/subs=%d/p99-vs-16", subs), ratio, -1)
	fmt.Printf("%-34s p50 %8.2f ms   p99 %8.2f ms   (p99 %.2fx of baseline)\n",
		fmt.Sprintf("fan-out %d subscribers", subs), ms(f50), ms(f99), ratio)

	hits := after["collective.frame_cache_hits"] - before["collective.frame_cache_hits"]
	misses := after["collective.frame_cache_misses"] - before["collective.frame_cache_misses"]
	hitRate := 100 * float64(hits) / float64(hits+misses)
	record("e13", "fanout/frame_cache_hit_pct", hitRate, -1)
	fmt.Printf("%-34s %8.1f %%   (%d hits / %d misses)\n", "frame cache hit rate", hitRate, hits, misses)
	if hitRate <= 90 {
		check(fmt.Errorf("e13: frame cache hit rate %.1f%% under the 90%% floor", hitRate))
	}
	for _, imp := range fan {
		imp.Close()
	}
	for _, imp := range base {
		imp.Close()
	}

	// Phase 3 — overload injection on a throttled server.
	e13Overload()
	fmt.Println("\ntarget: fan-out p99 within 2x of the 16-subscriber p99; hit rate > 90%")
}

// e13Attach dials n standing supervised subscribers of the whole array.
func e13Attach(addr string, gl, n int) []*dcollective.Import {
	imps := make([]*dcollective.Import, n)
	cmap := array.NewSerialMap(gl)
	for i := range imps {
		imp, err := dcollective.Attach(transport.TCP{}, addr, "field", cmap, dcollective.Options{})
		check(err)
		imps[i] = imp
	}
	return imps
}

// e13Wave has every subscriber pull the current epoch once, at most
// `window` concurrently, and returns each pull's service latency
// (measured from window admission, so queue wait is excluded — the
// comparison is per-pull serving cost, not closed-loop sojourn time).
func e13Wave(imps []*dcollective.Import, bufs chan []float64, window int) []time.Duration {
	lat := make([]time.Duration, len(imps))
	done := make(chan int, len(imps))
	for i, imp := range imps {
		go func(i int, imp *dcollective.Import) {
			buf := <-bufs
			t0 := time.Now()
			if err := imp.PullContext(context.Background(), 0, buf); err != nil {
				panic(fmt.Sprintf("e13 pull: %v", err))
			}
			lat[i] = time.Since(t0)
			bufs <- buf
			done <- i
		}(i, imp)
	}
	for range imps {
		<-done
	}
	return lat
}

// e13Overload saturates a MaxInflight=2 server with 16 unpaced
// subscribers and asserts the shed/backoff machinery end to end: typed
// refusals on the server, backoff-without-redial on the clients, and
// every pull completing anyway.
func e13Overload() {
	const gl, subs = 4096, 16
	srcMap := array.NewBlockMap(gl, 2)
	ports := make([]collective.DistArrayPort, srcMap.Ranks())
	for r := range ports {
		ports[r] = &benchDistPort{side: collective.Side{Map: srcMap}, data: make([]float64, srcMap.LocalLen(r))}
	}
	oa := orb.NewObjectAdapter()
	l, err := transport.TCP{}.Listen("127.0.0.1:0")
	check(err)
	srv := orb.ServeWith(oa, l, orb.ServeOptions{MaxInflight: 2})
	defer srv.Stop()
	pub, err := dcollective.Publish(oa, "field", ports, dcollective.WithEpochCache())
	check(err)
	defer pub.Close()

	opts := dcollective.Options{Supervisor: orb.SupervisorOptions{
		RetryBase:   time.Millisecond,
		RetryCap:    20 * time.Millisecond,
		MaxAttempts: 20,
	}}
	imps := make([]*dcollective.Import, subs)
	for i := range imps {
		imp, err := dcollective.Attach(transport.TCP{}, srv.Addr(), "field", array.NewSerialMap(gl), opts)
		check(err)
		defer imp.Close()
		imps[i] = imp
	}

	before := obs.Default.Snapshot().Counters
	done := make(chan error, subs)
	for _, imp := range imps {
		go func(imp *dcollective.Import) {
			buf := make([]float64, gl)
			deadline := time.Now().Add(30 * time.Second)
			for {
				err := imp.PullContext(context.Background(), 0, buf)
				if err == nil || !orb.IsOverloaded(err) || time.Now().After(deadline) {
					done <- err
					return
				}
				// Attempt budget exhausted while shed: keep going — the
				// point is that overload is retryable, not fatal.
			}
		}(imp)
	}
	for range imps {
		check(<-done)
	}
	after := obs.Default.Snapshot().Counters
	sheds := after["orb.server.shed"] - before["orb.server.shed"]
	backoffs := after["orb.supervised.overload_backoffs"] - before["orb.supervised.overload_backoffs"]
	redials := after["orb.supervised.redials"] - before["orb.supervised.redials"]
	record("e13", "overload/sheds", float64(sheds), -1)
	record("e13", "overload/backoffs", float64(backoffs), -1)
	record("e13", "overload/redials", float64(redials), -1)
	fmt.Printf("%-34s sheds %d   backoffs %d   redials %d   (all %d pulls completed)\n",
		"overload (MaxInflight=2, unpaced)", sheds, backoffs, redials, subs)
	if sheds == 0 || backoffs == 0 {
		check(fmt.Errorf("e13: overload injection did not fire (sheds=%d backoffs=%d)", sheds, backoffs))
	}
	if redials != 0 {
		check(fmt.Errorf("e13: overload caused %d redials; shed must keep the connection", redials))
	}
}

func ms(d time.Duration) float64 { return float64(d.Nanoseconds()) / 1e6 }

func e13Quantiles(lat []time.Duration) (p50, p99 time.Duration) {
	s := append([]time.Duration(nil), lat...)
	sort.Slice(s, func(i, j int) bool { return s[i] < s[j] })
	q := func(p float64) time.Duration {
		i := int(p * float64(len(s)-1))
		return s[i]
	}
	return q(0.50), q(0.99)
}
