package main

// E14 — live recovery: checkpoint/restore latency across payload sizes,
// and the hot-swap window under standing load. The first half prices the
// ckpt wire format (what a RestartPolicy replay or a swap's state transfer
// costs at 8 KiB, 1 MiB, and 64 MiB of solver state); the second half
// measures what callers actually experience during Framework.Swap — the
// quiesce-drain-rewire window, during which new GetPort acquisitions shed
// with the typed retryable cca.ErrPortQuiescing and nothing else.

import (
	"bytes"
	"errors"
	"fmt"
	"io"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/cca"
	"repro/internal/cca/framework"
	"repro/internal/ckpt"
)

// e14Vec is a minimal Checkpointable: one named float64 vector, the shape
// of real solver state.
type e14Vec struct{ data []float64 }

func (v *e14Vec) Checkpoint(w io.Writer) error {
	cw := ckpt.NewWriter(w)
	cw.Float64s("x", v.data)
	return cw.Close()
}

func (v *e14Vec) Restore(r io.Reader) error {
	cr, err := ckpt.NewReader(r)
	if err != nil {
		return err
	}
	v.data, err = cr.Float64s("x")
	return err
}

// e14Adder is the swappable component under load: provides "add", carries
// one float64 of state across swaps.
type e14Adder struct {
	svc  cca.Services
	bias float64
}

func (a *e14Adder) SetServices(svc cca.Services) error {
	a.svc = svc
	return svc.AddProvidesPort(a, cca.PortInfo{Name: "add", Type: "bench.Add"})
}

func (a *e14Adder) Compute(x float64) float64 { return x + a.bias }

func (a *e14Adder) Checkpoint(w io.Writer) error {
	cw := ckpt.NewWriter(w)
	cw.Float64("bias", a.bias)
	return cw.Close()
}

func (a *e14Adder) Restore(r io.Reader) error {
	cr, err := ckpt.NewReader(r)
	if err != nil {
		return err
	}
	a.bias, err = cr.Float64("bias")
	return err
}

type e14User struct{ svc cca.Services }

func (u *e14User) SetServices(svc cca.Services) error {
	u.svc = svc
	return svc.RegisterUsesPort(cca.PortInfo{Name: "add", Type: "bench.Add"})
}

func e14() {
	// Checkpoint/restore latency vs payload size.
	fmt.Printf("%-10s %14s %14s %12s\n", "payload", "ckpt µs", "restore µs", "MB/s (ckpt)")
	for _, sz := range []struct {
		name  string
		bytes int
	}{{"8KiB", 8 << 10}, {"1MiB", 1 << 20}, {"64MiB", 64 << 20}} {
		v := &e14Vec{data: make([]float64, sz.bytes/8)}
		var buf bytes.Buffer
		buf.Grow(sz.bytes + 1024)
		ckNs, ckAllocs := measureAllocs(func() {
			buf.Reset()
			if err := v.Checkpoint(&buf); err != nil {
				panic(err)
			}
		})
		state := append([]byte(nil), buf.Bytes()...)
		into := &e14Vec{}
		reNs, reAllocs := measureAllocs(func() {
			if err := ckpt.Unmarshal(state, into); err != nil {
				panic(err)
			}
		})
		record("e14", "checkpoint/"+sz.name, ckNs, ckAllocs)
		record("e14", "restore/"+sz.name, reNs, reAllocs)
		fmt.Printf("%-10s %14.1f %14.1f %12.0f\n",
			sz.name, ckNs/1e3, reNs/1e3, float64(sz.bytes)/ckNs*1e3)
	}

	// Swap window under standing load: W workers hammer the port while the
	// instance is hot-swapped repeatedly; the only error a worker may ever
	// see is the typed retryable shed.
	const workers = 4
	swaps := 50
	if *quick {
		swaps = 15
	}
	fw := framework.New(framework.Options{})
	check(fw.Install("adder", &e14Adder{bias: 1}))
	u := &e14User{}
	check(fw.Install("load", u))
	_, err := fw.Connect("load", "add", "adder", "add")
	check(err)

	var stop atomic.Bool
	var calls, sheds atomic.Int64
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for !stop.Load() {
				port, err := u.svc.GetPort("add")
				if err != nil {
					if !errors.Is(err, cca.ErrPortQuiescing) {
						panic(fmt.Sprintf("e14: worker saw non-retryable error: %v", err))
					}
					sheds.Add(1)
					continue
				}
				if got := port.(*e14Adder).Compute(1); got < 2 {
					panic(fmt.Sprintf("e14: stale state after swap: %v", got))
				}
				u.svc.ReleasePort("add")
				calls.Add(1)
			}
		}()
	}

	// Interleave for real: each swap waits until the load has made calls
	// since the previous one, so every window is measured against live
	// traffic rather than a not-yet-scheduled worker pool.
	windows := make([]time.Duration, 0, swaps)
	var last int64
	for i := 0; i < swaps; i++ {
		for calls.Load() <= last {
			time.Sleep(50 * time.Microsecond)
		}
		last = calls.Load()
		repl := &e14Adder{}
		start := time.Now()
		if err := fw.Swap("adder", repl, framework.SwapOptions{}); err != nil {
			panic(err)
		}
		windows = append(windows, time.Since(start))
	}
	stop.Store(true)
	wg.Wait()

	p50, p99 := e13Quantiles(windows)
	record("e14", fmt.Sprintf("swap-window/workers=%d/p50", workers), float64(p50.Nanoseconds()), -1)
	record("e14", fmt.Sprintf("swap-window/workers=%d/p99", workers), float64(p99.Nanoseconds()), -1)
	record("e14", "swap-window/sheds", float64(sheds.Load()), -1)
	record("e14", "swap-window/calls", float64(calls.Load()), -1)
	fmt.Printf("\nswap window under load (%d workers, %d swaps, state carried each time):\n",
		workers, swaps)
	fmt.Printf("  p50 %v  p99 %v  calls %d  sheds %d (all typed retryable)\n",
		p50, p99, calls.Load(), sheds.Load())
	if calls.Load() == 0 {
		check(fmt.Errorf("e14: load never completed a call"))
	}
}
