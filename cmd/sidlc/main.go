// Command sidlc is the SIDL compiler of the reproduction: the paper's
// Figure 2 "proxy generator" driven from the command line.
//
// Usage:
//
//	sidlc [flags] file.sidl...
//
// Modes (mutually exclusive):
//
//	-check             parse and semantically resolve only (default)
//	-describe          print a summary of every resolved type
//	-format            pretty-print the parsed files to stdout
//	-gen               generate Go bindings (see -o, -pkg, -reflection)
//
// Generation flags:
//
//	-o file            output path (default stdout)
//	-pkg name          Go package name for generated code (default "bindings")
//	-reflection        also emit reflection-metadata registration
package main

import (
	"flag"
	"fmt"
	"os"

	"repro/internal/sidl"
	"repro/internal/sidl/codegen"
)

func main() {
	var (
		check      = flag.Bool("check", false, "parse and resolve only")
		describe   = flag.Bool("describe", false, "print resolved type summaries")
		format     = flag.Bool("format", false, "pretty-print parsed files")
		gen        = flag.Bool("gen", false, "generate Go bindings")
		out        = flag.String("o", "", "output file (default stdout)")
		pkg        = flag.String("pkg", "bindings", "Go package name for generated code")
		reflection = flag.Bool("reflection", false, "emit reflection registration")
	)
	flag.Parse()
	if flag.NArg() == 0 {
		fmt.Fprintln(os.Stderr, "sidlc: no input files")
		flag.Usage()
		os.Exit(2)
	}

	var files []*sidl.File
	for _, path := range flag.Args() {
		src, err := os.ReadFile(path)
		if err != nil {
			fatal(err)
		}
		f, err := sidl.Parse(string(src))
		if err != nil {
			fatal(fmt.Errorf("%s: %w", path, err))
		}
		files = append(files, f)
	}
	table, err := sidl.Resolve(files...)
	if err != nil {
		fatal(err)
	}

	switch {
	case *describe:
		emit(*out, table.Describe())
	case *format:
		for _, f := range files {
			emit(*out, sidl.Format(f))
		}
	case *gen:
		src, err := codegen.Generate(table, codegen.Options{
			PackageName: *pkg,
			Reflection:  *reflection,
		})
		if err != nil {
			fatal(err)
		}
		emit(*out, src)
	default:
		_ = *check // resolution already happened; report success
		fmt.Fprintf(os.Stderr, "sidlc: %d files OK (%d types)\n", len(files), len(table.Order))
	}
}

func emit(path, content string) {
	if path == "" {
		fmt.Print(content)
		return
	}
	if err := os.WriteFile(path, []byte(content), 0o644); err != nil {
		fatal(err)
	}
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "sidlc:", err)
	os.Exit(1)
}
