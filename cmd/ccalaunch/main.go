// ccalaunch launches an SPMD cohort of N OS processes: it runs the
// rendezvous service, spawns N copies of the given command with their
// rank identity in the CCA_MPI_* environment, and supervises them —
// restarting crashed ranks within the -restarts budget so the cohort can
// re-form (the survivors observe the rank death as a typed error,
// finalize, and re-join).
//
//	ccalaunch -n 4 go run ./examples/spmd -worker
//	ccalaunch -n 4 -rendezvous shm:///tmp/job/rv -restarts 1 ./myrank
//
// The rank processes form their peer mesh over the rendezvous address's
// scheme by default: tcp:// meshes for tcp rendezvous, shm:// rings for
// shm rendezvous.
package main

import (
	"flag"
	"fmt"
	"os"

	"repro/internal/mpi/mpirun"
)

func main() {
	n := flag.Int("n", 4, "number of ranks")
	rendezvous := flag.String("rendezvous", "tcp://127.0.0.1:0", "rendezvous listen address (tcp:// or shm://)")
	restarts := flag.Int("restarts", 0, "per-rank restart budget for crashed ranks")
	quiet := flag.Bool("q", false, "suppress launcher status output")
	flag.Parse()
	if flag.NArg() == 0 {
		fmt.Fprintln(os.Stderr, "usage: ccalaunch [-n N] [-rendezvous ADDR] [-restarts K] command [args...]")
		os.Exit(2)
	}

	l, err := mpirun.New(mpirun.Config{
		Size:        *n,
		Rendezvous:  *rendezvous,
		Command:     flag.Args(),
		MaxRestarts: *restarts,
	})
	if err != nil {
		fmt.Fprintln(os.Stderr, "ccalaunch:", err)
		os.Exit(1)
	}
	if !*quiet {
		fmt.Printf("ccalaunch: %d ranks, rendezvous %s\n", *n, l.RendezvousAddr())
	}
	if err := l.Start(); err != nil {
		fmt.Fprintln(os.Stderr, "ccalaunch:", err)
		l.Close()
		os.Exit(1)
	}
	err = l.Wait()
	gens := l.Rendezvous().Generations()
	l.Close()
	if err != nil {
		fmt.Fprintln(os.Stderr, "ccalaunch:", err)
		os.Exit(1)
	}
	if !*quiet {
		fmt.Printf("ccalaunch: all %d ranks exited cleanly (%d generation(s))\n", *n, gens)
	}
}
