// Command ccarepo inspects, queries, and serves a CCA component
// repository built from the built-in ESI deposits plus any SIDL files
// supplied on the command line — the paper's Repository API ("the
// functionality necessary to search a framework repository for
// components") from the shell, and as a network service.
//
// Usage:
//
//	ccarepo [flags] [extra.sidl ...]
//	ccarepo serve [-addr tcp://127.0.0.1:0] [-addr-file f] [-seed=false] [-import f]
//
// Flags:
//
//	-list                 list deposited components (default)
//	-describe             long listing with ports
//	-remote <addr>        run -list/-describe against a served repository
//	                      instead of the local built-ins
//	-provides <type>      search components providing a port usable as <type>
//	-uses <type>          search components using a port fed by <type>
//	-types                list every SIDL type in the merged table
//	-subtype <sub,super>  test SIDL subtype compatibility
//	-export <file>        save the repository (descriptions) as JSON
//	-import <file>        start from a saved repository instead of the
//	                      built-in ESI deposits
//
// `ccarepo serve` turns the repository into the networked component
// repository: an ORB object answering list/describe/fetch/deposit with
// monotonic versioning, which `ccafe load <file>.ccl` resolves against.
// It prints "serving N entries at ADDR" on stdout (and writes the bare
// address to -addr-file when given), then blocks until stdin closes or
// SIGINT/SIGTERM arrives.
package main

import (
	"flag"
	"fmt"
	"io"
	"os"
	"os/signal"
	"strings"
	"syscall"

	"repro/internal/ccl"
	"repro/internal/core"
	"repro/internal/orb"
	"repro/internal/repo"
)

func main() {
	if len(os.Args) > 1 && os.Args[1] == "serve" {
		serve(os.Args[2:])
		return
	}
	query()
}

// serve runs the repository as a network service until stdin closes or a
// signal arrives.
func serve(args []string) {
	fs := flag.NewFlagSet("ccarepo serve", flag.ExitOnError)
	addr := fs.String("addr", "tcp://127.0.0.1:0", "listen address")
	addrFile := fs.String("addr-file", "", "write the bound address to this file")
	seed := fs.Bool("seed", true, "seed the ESI component suite and the ccl consumer type")
	importPath := fs.String("import", "", "also load a saved repository JSON file")
	fs.Parse(args) //nolint:errcheck

	app, err := core.NewApp(core.Options{WithESI: *seed})
	if err != nil {
		fatal(err)
	}
	if *seed {
		if err := ccl.DepositConsumer(app.Repo); err != nil {
			fatal(err)
		}
	}
	if *importPath != "" {
		f, err := os.Open(*importPath)
		if err != nil {
			fatal(err)
		}
		err = app.Repo.Load(f)
		f.Close()
		if err != nil {
			fatal(err)
		}
	}
	svc, err := repo.NewServiceFrom(app.Repo)
	if err != nil {
		fatal(err)
	}
	oa := orb.NewObjectAdapter()
	svc.Bind(oa)
	l, err := orb.ListenAddr(*addr)
	if err != nil {
		fatal(err)
	}
	srv := orb.Serve(oa, l)
	defer srv.Close()
	if *addrFile != "" {
		if err := os.WriteFile(*addrFile, []byte(srv.Addr()+"\n"), 0o644); err != nil {
			fatal(err)
		}
	}
	fmt.Printf("ccarepo: serving %d entries at %s\n", len(app.Repo.List()), srv.Addr())

	sig := make(chan os.Signal, 1)
	signal.Notify(sig, syscall.SIGINT, syscall.SIGTERM)
	eof := make(chan struct{})
	go func() {
		io.Copy(io.Discard, os.Stdin) //nolint:errcheck
		close(eof)
	}()
	select {
	case <-sig:
	case <-eof:
	}
	fmt.Println("ccarepo: shutting down")
}

func query() {
	list := flag.Bool("list", false, "list deposited components")
	describe := flag.Bool("describe", false, "long listing")
	remote := flag.String("remote", "", "query a served repository at this address")
	provides := flag.String("provides", "", "search by provided port type")
	uses := flag.String("uses", "", "search by used port type")
	types := flag.Bool("types", false, "list SIDL types")
	subtype := flag.String("subtype", "", "test 'sub,super' compatibility")
	export := flag.String("export", "", "save the repository to a JSON file")
	importPath := flag.String("import", "", "load a saved repository JSON file first")
	flag.Parse()

	if *remote != "" {
		client, err := repo.DialService(*remote)
		if err != nil {
			fatal(err)
		}
		defer client.Close() //nolint:errcheck
		switch {
		case *describe:
			text, err := client.Describe()
			if err != nil {
				fatal(err)
			}
			fmt.Print(text)
		default:
			ls, err := client.List()
			if err != nil {
				fatal(err)
			}
			for _, e := range ls {
				fmt.Printf("%-40s %s\n", e.Name, e.Version)
			}
		}
		return
	}

	app, err := core.NewApp(core.Options{WithESI: *importPath == ""})
	if err != nil {
		fatal(err)
	}
	if *importPath != "" {
		f, err := os.Open(*importPath)
		if err != nil {
			fatal(err)
		}
		err = app.Repo.Load(f)
		f.Close()
		if err != nil {
			fatal(err)
		}
	}
	for i, path := range flag.Args() {
		src, err := os.ReadFile(path)
		if err != nil {
			fatal(err)
		}
		if err := app.Repo.Deposit(repo.Entry{
			Name:        fmt.Sprintf("deposit.%d.%s", i, path),
			Description: "command-line SIDL deposit",
			SIDL:        string(src),
		}); err != nil {
			fatal(err)
		}
	}

	if *export != "" {
		f, err := os.Create(*export)
		if err != nil {
			fatal(err)
		}
		err = app.Repo.Save(f)
		if cerr := f.Close(); err == nil {
			err = cerr
		}
		if err != nil {
			fatal(err)
		}
		fmt.Fprintf(os.Stderr, "ccarepo: exported %d entries to %s\n", len(app.Repo.List()), *export)
	}

	switch {
	case *describe:
		fmt.Print(app.Repo.Describe())
	case *provides != "":
		for _, e := range app.Repo.Search(repo.Query{ProvidesType: *provides}) {
			fmt.Println(e.Name)
		}
	case *uses != "":
		for _, e := range app.Repo.Search(repo.Query{UsesType: *uses}) {
			fmt.Println(e.Name)
		}
	case *types:
		tbl := app.Repo.Table()
		for _, q := range tbl.Order {
			fmt.Printf("%-10s %s\n", tbl.Lookup(q), q)
		}
	case *subtype != "":
		parts := strings.SplitN(*subtype, ",", 2)
		if len(parts) != 2 {
			fatal(fmt.Errorf("want -subtype sub,super"))
		}
		ok := app.Repo.Table().IsSubtype(parts[0], parts[1])
		fmt.Printf("%s usable as %s: %v\n", parts[0], parts[1], ok)
	default:
		_ = list
		for _, n := range app.Repo.List() {
			fmt.Println(n)
		}
	}
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "ccarepo:", err)
	os.Exit(1)
}
