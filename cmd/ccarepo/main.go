// Command ccarepo inspects and queries a CCA component repository built
// from the built-in ESI deposits plus any SIDL files supplied on the
// command line — the paper's Repository API ("the functionality necessary
// to search a framework repository for components") from the shell.
//
// Usage:
//
//	ccarepo [flags] [extra.sidl ...]
//
// Flags:
//
//	-list                 list deposited components (default)
//	-describe             long listing with ports
//	-provides <type>      search components providing a port usable as <type>
//	-uses <type>          search components using a port fed by <type>
//	-types                list every SIDL type in the merged table
//	-subtype <sub,super>  test SIDL subtype compatibility
//	-export <file>        save the repository (descriptions) as JSON
//	-import <file>        start from a saved repository instead of the
//	                      built-in ESI deposits
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"

	"repro/internal/core"
	"repro/internal/repo"
)

func main() {
	list := flag.Bool("list", false, "list deposited components")
	describe := flag.Bool("describe", false, "long listing")
	provides := flag.String("provides", "", "search by provided port type")
	uses := flag.String("uses", "", "search by used port type")
	types := flag.Bool("types", false, "list SIDL types")
	subtype := flag.String("subtype", "", "test 'sub,super' compatibility")
	export := flag.String("export", "", "save the repository to a JSON file")
	importPath := flag.String("import", "", "load a saved repository JSON file first")
	flag.Parse()

	app, err := core.NewApp(core.Options{WithESI: *importPath == ""})
	if err != nil {
		fatal(err)
	}
	if *importPath != "" {
		f, err := os.Open(*importPath)
		if err != nil {
			fatal(err)
		}
		err = app.Repo.Load(f)
		f.Close()
		if err != nil {
			fatal(err)
		}
	}
	for i, path := range flag.Args() {
		src, err := os.ReadFile(path)
		if err != nil {
			fatal(err)
		}
		if err := app.Repo.Deposit(repo.Entry{
			Name:        fmt.Sprintf("deposit.%d.%s", i, path),
			Description: "command-line SIDL deposit",
			SIDL:        string(src),
		}); err != nil {
			fatal(err)
		}
	}

	if *export != "" {
		f, err := os.Create(*export)
		if err != nil {
			fatal(err)
		}
		err = app.Repo.Save(f)
		if cerr := f.Close(); err == nil {
			err = cerr
		}
		if err != nil {
			fatal(err)
		}
		fmt.Fprintf(os.Stderr, "ccarepo: exported %d entries to %s\n", len(app.Repo.List()), *export)
	}

	switch {
	case *describe:
		fmt.Print(app.Repo.Describe())
	case *provides != "":
		for _, e := range app.Repo.Search(repo.Query{ProvidesType: *provides}) {
			fmt.Println(e.Name)
		}
	case *uses != "":
		for _, e := range app.Repo.Search(repo.Query{UsesType: *uses}) {
			fmt.Println(e.Name)
		}
	case *types:
		tbl := app.Repo.Table()
		for _, q := range tbl.Order {
			fmt.Printf("%-10s %s\n", tbl.Lookup(q), q)
		}
	case *subtype != "":
		parts := strings.SplitN(*subtype, ",", 2)
		if len(parts) != 2 {
			fatal(fmt.Errorf("want -subtype sub,super"))
		}
		ok := app.Repo.Table().IsSubtype(parts[0], parts[1])
		fmt.Printf("%s usable as %s: %v\n", parts[0], parts[1], ok)
	default:
		_ = list
		for _, n := range app.Repo.List() {
			fmt.Println(n)
		}
	}
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "ccarepo:", err)
	os.Exit(1)
}
