// Package repro is a Go reproduction of "Toward a Common Component
// Architecture for High-Performance Scientific Computing" (Armstrong,
// Gannon, Geist, Keahey, Kohn, McInnes, Parker, Smolinski; HPDC 1999).
//
// The library implements the full architecture the paper specifies — the
// SIDL compiler toolchain (lexer, parser, resolver, Go code generator,
// reflection/DMI runtime), the provides/uses ports model with
// direct-connect and collective extensions, the reference framework with
// its CCAServices, repository, and builder/configuration APIs — together
// with every substrate its motivating application needs: an MPI-like
// message-passing layer, scientific arrays and distributed-data maps, an
// unstructured-mesh gather/scatter layer, sparse Krylov solvers, a
// CHAD-like semi-implicit flow mini-app, visualization components, and the
// CORBA-like and JavaBeans-like baselines the paper argues against.
//
// See DESIGN.md for the system inventory and the experiment index, and
// EXPERIMENTS.md for paper-claim-versus-measured results. The top-level
// bench_test.go holds one benchmark family per experiment (E1–E9); the
// cmd/bench harness additionally runs E2b, E7b, E10, and E11.
package repro
