package repro

// Exec-level smoke tests for the command-line tools and examples: each
// binary is run through `go run` and its observable output checked. They
// guard the executables the same way package tests guard the libraries.

import (
	"os"
	"os/exec"
	"path/filepath"
	"strings"
	"testing"
)

// runTool executes `go run ./<pkg> args...` in the repository root.
func runTool(t *testing.T, pkg string, stdin string, args ...string) string {
	t.Helper()
	if testing.Short() {
		t.Skip("tool smoke tests skipped in -short mode")
	}
	cmd := exec.Command("go", append([]string{"run", "./" + pkg}, args...)...)
	cmd.Dir = "."
	if stdin != "" {
		cmd.Stdin = strings.NewReader(stdin)
	}
	out, err := cmd.CombinedOutput()
	if err != nil {
		t.Fatalf("go run ./%s %v: %v\n%s", pkg, args, err, out)
	}
	return string(out)
}

func TestSidlcCheckAndDescribe(t *testing.T) {
	out := runTool(t, "cmd/sidlc", "", "-describe",
		"internal/esi/esi.sidl", "internal/esi/ports.sidl")
	for _, want := range []string{"interface esi.Solver", "enum esi.Reason", "interface cca.ports.DistArray"} {
		if !strings.Contains(out, want) {
			t.Errorf("describe missing %q:\n%s", want, out)
		}
	}
}

func TestSidlcGenerateCompilesElsewhere(t *testing.T) {
	// Generate bindings into a temp file and check the output parses as a
	// complete binding set (package clause + a stub constructor).
	dir := t.TempDir()
	out := filepath.Join(dir, "gen.go")
	runTool(t, "cmd/sidlc", "", "-gen", "-pkg", "tmpbind", "-o", out,
		"internal/esi/esi.sidl")
	src, err := os.ReadFile(out)
	if err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{"package tmpbind", "func NewEsiSolverStub"} {
		if !strings.Contains(string(src), want) {
			t.Errorf("generated file missing %q", want)
		}
	}
}

func TestSidlcFormatRoundTrip(t *testing.T) {
	out := runTool(t, "cmd/sidlc", "", "-format", "internal/esi/esi.sidl")
	if !strings.Contains(out, "interface Solver") {
		t.Errorf("format output:\n%s", out)
	}
	// The formatted output must itself be valid SIDL.
	tmp := filepath.Join(t.TempDir(), "fmt.sidl")
	if err := os.WriteFile(tmp, []byte(out), 0o644); err != nil {
		t.Fatal(err)
	}
	check := runTool(t, "cmd/sidlc", "", "-check", tmp)
	_ = check // -check reports to stderr; success == exit 0
}

func TestCcarepoQueries(t *testing.T) {
	out := runTool(t, "cmd/ccarepo", "", "-provides", "esi.Operator")
	if !strings.Contains(out, "esi.SolverComponent") && !strings.Contains(out, "esi.PreconditionerComponent") {
		// Only operator-providing components match; with the default
		// deposits none provide esi.Operator except via subtypes.
		_ = out
	}
	out = runTool(t, "cmd/ccarepo", "", "-subtype", "esi.MatrixData,esi.Object")
	if !strings.Contains(out, "true") {
		t.Errorf("subtype output: %s", out)
	}
	out = runTool(t, "cmd/ccarepo", "", "-types")
	if !strings.Contains(out, "interface  esi.Solver") {
		t.Errorf("types output:\n%s", out)
	}
}

func TestCcafeScriptedSession(t *testing.T) {
	script := strings.Join([]string{
		"matrix A poisson 12",
		"create solver esi.SolverComponent.cg",
		"connect solver A A A",
		"solve solver 1e-9",
		"components",
		"quit",
	}, "\n")
	dir := t.TempDir()
	path := filepath.Join(dir, "session")
	if err := os.WriteFile(path, []byte(script), 0o644); err != nil {
		t.Fatal(err)
	}
	out := runTool(t, "cmd/ccafe", "", "-f", path)
	for _, want := range []string{"converged=true", "solver"} {
		if !strings.Contains(out, want) {
			t.Errorf("ccafe output missing %q:\n%s", want, out)
		}
	}
}

func TestCcafeStatsAndTrace(t *testing.T) {
	// The observability commands: tracing toggles, and a solve moves the
	// framework GetPort counter visible through `stats`.
	script := strings.Join([]string{
		"trace on",
		"matrix A poisson 8",
		"create solver esi.SolverComponent.cg",
		"connect solver A A A",
		"solve solver 1e-8",
		"stats cca.",
		"trace 8",
		"trace off",
		"quit",
	}, "\n")
	path := filepath.Join(t.TempDir(), "session")
	if err := os.WriteFile(path, []byte(script), 0o644); err != nil {
		t.Fatal(err)
	}
	out := runTool(t, "cmd/ccafe", "", "-f", path)
	for _, want := range []string{"tracing on", "cca.getport_calls",
		"span(s) recorded", "tracing off"} {
		if !strings.Contains(out, want) {
			t.Errorf("ccafe stats/trace output missing %q:\n%s", want, out)
		}
	}
}

func TestCcafeCheckpointRestoreSwap(t *testing.T) {
	// The recovery commands: hot-swap a running solver for another method
	// (connections re-wired live), and checkpoint/restore a Checkpointable
	// instance through the atomic file path.
	dir := t.TempDir()
	ck := filepath.Join(dir, "isolver.ckpt")
	script := strings.Join([]string{
		"matrix A poisson 12",
		"create solver esi.SolverComponent.cg",
		"connect solver A A A",
		"solve solver 1e-9",
		"swap solver esi.SolverComponent.gmres",
		"solve solver 1e-9",
		"create isolver esi.IterativeSolverComponent.cg",
		"connect isolver A A A",
		"checkpoint isolver " + ck,
		"restore isolver " + ck,
		"quit",
	}, "\n")
	path := filepath.Join(dir, "session")
	if err := os.WriteFile(path, []byte(script), 0o644); err != nil {
		t.Fatal(err)
	}
	out := runTool(t, "cmd/ccafe", "", "-f", path)
	for _, want := range []string{
		"swapped solver to a fresh esi.SolverComponent.gmres",
		"checkpointed isolver",
		"restored isolver",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("ccafe output missing %q:\n%s", want, out)
		}
	}
	if got := strings.Count(out, "converged=true"); got != 2 {
		t.Errorf("want 2 converged solves (before and after swap), got %d:\n%s", got, out)
	}
	if _, err := os.Stat(ck); err != nil {
		t.Errorf("checkpoint file missing: %v", err)
	}
}

func TestQuickstartExample(t *testing.T) {
	out := runTool(t, "examples/quickstart", "")
	if !strings.Contains(out, "3.1415926536") {
		t.Errorf("quickstart output:\n%s", out)
	}
}

func TestCollectiveExample(t *testing.T) {
	out := runTool(t, "examples/collective", "", "-m", "2", "-n", "2", "-len", "8", "-block", "2")
	for _, want := range []string{"matched", "fast path: true", "gather"} {
		if !strings.Contains(out, want) {
			t.Errorf("collective output missing %q:\n%s", want, out)
		}
	}
}

func TestChadExampleRuns(t *testing.T) {
	out := runTool(t, "examples/chad", "", "-p", "2", "-grid", "8", "-steps", "4", "-attach", "2")
	for _, want := range []string{"viz attached at step 2", "step="} {
		if !strings.Contains(out, want) {
			t.Errorf("chad output missing %q:\n%s", want, out)
		}
	}
}

func TestBenchHarnessQuick(t *testing.T) {
	out := runTool(t, "cmd/bench", "", "-quick", "-run", "e1")
	for _, want := range []string{"direct Go call", "SIDL stub", "reflection DMI"} {
		if !strings.Contains(out, want) {
			t.Errorf("bench output missing %q:\n%s", want, out)
		}
	}
}

func TestSolverswapExample(t *testing.T) {
	out := runTool(t, "examples/solverswap", "", "-n", "16")
	for _, want := range []string{
		// part one: the classic solver × preconditioner sweep
		"gmres", "bicgstab", "ilu0",
		// part two: two live hot-swaps mid-solve with carried state
		"swap 1 at iteration",
		"swap 2 at iteration",
		"state carried into fresh instance",
		"converged=true",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("solverswap output missing %q:\n%s", want, out)
		}
	}
}

func TestRemoteExample(t *testing.T) {
	out := runTool(t, "examples/remote", "", "-n", "10")
	for _, want := range []string{"exported op/A", "remote (TCP)", "direct"} {
		if !strings.Contains(out, want) {
			t.Errorf("remote output missing %q:\n%s", want, out)
		}
	}
}

func TestDistvizExample(t *testing.T) {
	// The two-process collective demo: a viz cohort in a child OS process
	// pulls a block-distributed array from the simulation cohort over TCP,
	// surviving one injected sever with a degraded→restored event pair.
	out := runTool(t, "examples/distviz", "", "-len", "20000", "-frames", "3")
	for _, want := range []string{
		"sim: publishing wave",
		"viz: attached",
		"connection-degraded",
		"connection-restored",
		"viz: done",
		"sim: viz exited cleanly",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("distviz output missing %q:\n%s", want, out)
		}
	}
	// Every frame must verify: any placement or torn-epoch failure aborts
	// before "done", but check a frame line made it out too.
	if !strings.Contains(out, "frame 2 rank 2 consistent") {
		t.Errorf("distviz missing final frame:\n%s", out)
	}
}

func TestCcafeLoadDeclarativeAssembly(t *testing.T) {
	// The declarative path end-to-end from the shell: `load` compiles the
	// checked-in solverswap assembly (resolving its typed components
	// against the local repository and verifying the committed lockfile),
	// and the assembled solver then solves through the wired ports.
	script := strings.Join([]string{
		"load examples/solverswap/solverswap.ccl",
		"solve solver 1e-8",
		"quit",
	}, "\n")
	path := filepath.Join(t.TempDir(), "session")
	if err := os.WriteFile(path, []byte(script), 0o644); err != nil {
		t.Fatal(err)
	}
	out := runTool(t, "cmd/ccafe", "", "-f", path)
	for _, want := range []string{
		"assembled solverswap",
		"resolved solver = esi.SolverComponent.bicgstab 1.0.0 (local)",
		"resolved prec = esi.PreconditionerComponent.ilu0 1.0.0 (local)",
		"lockfile verified: examples/solverswap/solverswap.ccl.lock",
		"converged=true",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("ccafe load output missing %q:\n%s", want, out)
		}
	}
}

func TestCcarepoExportImport(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "repo.json")
	runTool(t, "cmd/ccarepo", "", "-export", path)
	out := runTool(t, "cmd/ccarepo", "", "-import", path, "-subtype", "esi.Solver,esi.Object")
	if !strings.Contains(out, "true") {
		t.Errorf("import/subtype output: %s", out)
	}
}
