// Package par is the reproduction's shared intra-process parallel-kernel
// substrate. The paper's Figure 1 pipeline is a set of *parallel*
// components — mesh, discretization, preconditioner, Krylov solver —
// cooperating over collective ports, and its §6.2 performance claims only
// matter if the kernels behind those ports actually use the hardware. This
// package gives every numeric layer (linalg SpMV and vector ops, the
// collective-port pack/unpack path) one chunked parallel-for over a single
// persistent worker pool, so nested use across components cannot
// oversubscribe the machine.
//
// Design:
//
//   - one process-wide pool of runtime.GOMAXPROCS(0) workers, started
//     lazily on first parallel call and kept for the process lifetime;
//   - For(n, grain, body) splits [0,n) into contiguous chunks of ~grain
//     elements; below one grain — or on a single-worker pool (GOMAXPROCS=1)
//     — it degenerates to a plain serial call, so small problems and
//     single-core machines pay nothing;
//   - the caller participates in its own loop (it is the guaranteed
//     executor), helpers are enqueued best-effort: if the pool is
//     saturated — e.g. nested parallel-for inside an SPMD cohort — the
//     caller simply does more of the work itself, and no configuration of
//     callers can deadlock the pool;
//   - chunk boundaries depend only on (n, grain), never on worker count or
//     scheduling, so ReduceFloat64's partial sums combine in a fixed order
//     and parallel reductions are bitwise deterministic run-to-run.
package par

import (
	"runtime"
	"sync"
	"sync/atomic"
)

// DefaultGrain is the serial-fallback threshold used when a caller passes
// grain <= 0: loops shorter than this run inline with zero synchronization.
// The value is a compromise between SpMV rows (cheap per element) and
// dot-product elements (very cheap per element); hot callers pass their own
// grain.
const DefaultGrain = 4096

// pool is the process-wide worker set.
type workerPool struct {
	jobs    chan func()
	workers int
}

var (
	poolOnce sync.Once
	pool     *workerPool
)

// getPool starts the persistent workers on first use, sized by
// runtime.GOMAXPROCS at that moment.
func getPool() *workerPool {
	poolOnce.Do(func() {
		w := runtime.GOMAXPROCS(0)
		if w < 1 {
			w = 1
		}
		p := &workerPool{jobs: make(chan func(), 4*w), workers: w}
		for i := 0; i < w; i++ {
			go p.worker()
		}
		pool = p
	})
	return pool
}

func (p *workerPool) worker() {
	for f := range p.jobs {
		f()
	}
}

// Workers reports the size of the persistent pool (started if necessary).
func Workers() int { return getPool().workers }

// For runs body over the half-open range [0, n) in parallel chunks of
// roughly grain elements (grain <= 0 selects DefaultGrain). body is called
// with disjoint [lo, hi) subranges covering [0, n) exactly once; calls may
// run concurrently, so body must not share mutable state across chunks.
// When n <= grain the body runs inline on the caller's goroutine.
//
// For returns only after every chunk has completed. A panic in any chunk is
// re-raised on the calling goroutine.
func For(n, grain int, body func(lo, hi int)) {
	if n <= 0 {
		return
	}
	if grain <= 0 {
		grain = DefaultGrain
	}
	if n <= grain {
		body(0, n)
		return
	}
	p := getPool()
	if p.workers == 1 {
		// A one-worker pool adds coordination but no concurrency; run
		// inline. One covering call is a valid chunking, and reductions
		// stay deterministic because their chunk boundaries are computed
		// by the caller (ReduceFloat64), not here.
		body(0, n)
		return
	}
	chunks := (n + grain - 1) / grain
	size := (n + chunks - 1) / chunks

	var (
		next     atomic.Int64
		wg       sync.WaitGroup
		panicked atomic.Pointer[any]
	)
	wg.Add(chunks)
	run := func(recovering bool) {
		if recovering {
			defer func() {
				if r := recover(); r != nil {
					v := any(r)
					panicked.CompareAndSwap(nil, &v)
					// The claimed chunk's Done already ran via the inner
					// defer; remaining chunks stay claimable by others.
				}
			}()
		}
		for {
			c := int(next.Add(1)) - 1
			if c >= chunks {
				return
			}
			lo := c * size
			hi := lo + size
			if hi > n {
				hi = n
			}
			func() {
				defer wg.Done()
				body(lo, hi)
			}()
		}
	}
	// Enqueue up to workers helpers without ever blocking: a full queue
	// means the pool is busy and the caller absorbs the work. wg counts
	// chunk completions (not helpers), so helpers that start late — or
	// never — cannot stall the wait below.
	helpers := p.workers
	if helpers > chunks-1 {
		helpers = chunks - 1
	}
	for i := 0; i < helpers; i++ {
		select {
		case p.jobs <- func() { run(true) }:
		default:
			i = helpers // queue full: stop enqueueing
		}
	}
	run(false) // the caller is the guaranteed executor
	wg.Wait()
	if pv := panicked.Load(); pv != nil {
		panic(*pv)
	}
}

// ReduceFloat64 computes a chunked parallel reduction: chunk(lo, hi)
// produces one partial per ~grain-sized subrange of [0, n), and the
// partials are summed in ascending chunk order. Because chunk boundaries
// depend only on (n, grain), the float64 result is identical run-to-run and
// independent of worker count — serial-vs-parallel differences are pure
// reassociation rounding, bounded by the usual O(n·eps) summation error.
func ReduceFloat64(n, grain int, chunk func(lo, hi int) float64) float64 {
	if n <= 0 {
		return 0
	}
	if grain <= 0 {
		grain = DefaultGrain
	}
	if n <= grain {
		return chunk(0, n)
	}
	chunks := (n + grain - 1) / grain
	size := (n + chunks - 1) / chunks
	partials := make([]float64, chunks)
	For(chunks, 1, func(clo, chi int) {
		for c := clo; c < chi; c++ {
			lo := c * size
			hi := lo + size
			if hi > n {
				hi = n
			}
			partials[c] = chunk(lo, hi)
		}
	})
	var s float64
	for _, v := range partials {
		s += v
	}
	return s
}
