package par

import (
	"math"
	"sync/atomic"
	"testing"
)

// TestForCoversRangeExactlyOnce checks every index is visited exactly once
// across sizes straddling the serial/parallel cutoff.
func TestForCoversRangeExactlyOnce(t *testing.T) {
	for _, n := range []int{0, 1, 7, 100, DefaultGrain - 1, DefaultGrain, DefaultGrain + 1, 3*DefaultGrain + 17} {
		counts := make([]int32, n)
		For(n, 0, func(lo, hi int) {
			if lo < 0 || hi > n || lo > hi {
				t.Errorf("n=%d: bad chunk [%d,%d)", n, lo, hi)
			}
			for i := lo; i < hi; i++ {
				atomic.AddInt32(&counts[i], 1)
			}
		})
		for i, c := range counts {
			if c != 1 {
				t.Fatalf("n=%d: index %d visited %d times", n, i, c)
			}
		}
	}
}

// TestForSmallGrain forces many chunks so helpers genuinely run.
func TestForSmallGrain(t *testing.T) {
	const n = 10000
	var sum atomic.Int64
	For(n, 16, func(lo, hi int) {
		var local int64
		for i := lo; i < hi; i++ {
			local += int64(i)
		}
		sum.Add(local)
	})
	want := int64(n) * int64(n-1) / 2
	if got := sum.Load(); got != want {
		t.Fatalf("sum = %d, want %d", got, want)
	}
}

// TestForNested exercises a parallel-for issued from inside a parallel-for,
// the shape an SPMD cohort produces (rank goroutines each running parallel
// kernels). Must not deadlock even with the pool saturated.
func TestForNested(t *testing.T) {
	var total atomic.Int64
	For(64, 1, func(lo, hi int) {
		for i := lo; i < hi; i++ {
			For(1000, 50, func(l, h int) {
				total.Add(int64(h - l))
			})
		}
	})
	if got := total.Load(); got != 64*1000 {
		t.Fatalf("nested total = %d, want %d", got, 64*1000)
	}
}

// TestReduceDeterministic: the chunked reduction must give bit-identical
// results across repeated runs (fixed chunk boundaries, ordered combine).
func TestReduceDeterministic(t *testing.T) {
	const n = 100003
	xs := make([]float64, n)
	for i := range xs {
		xs[i] = math.Sin(float64(i)) * 1e-3
	}
	chunk := func(lo, hi int) float64 {
		var s float64
		for i := lo; i < hi; i++ {
			s += xs[i]
		}
		return s
	}
	first := ReduceFloat64(n, 1024, chunk)
	for trial := 0; trial < 20; trial++ {
		if got := ReduceFloat64(n, 1024, chunk); got != first {
			t.Fatalf("trial %d: %v != %v (nondeterministic reduction)", trial, got, first)
		}
	}
	// And it must agree with the serial sum within reassociation error.
	serial := chunk(0, n)
	if d := math.Abs(first - serial); d > 1e-9*math.Abs(serial)+1e-12 {
		t.Fatalf("parallel %v vs serial %v: diff %v", first, serial, d)
	}
}

// TestForPanicPropagates: a panic in a chunk must surface on the caller.
func TestForPanicPropagates(t *testing.T) {
	defer func() {
		if r := recover(); r == nil {
			t.Fatal("panic did not propagate")
		}
	}()
	For(10*DefaultGrain, 0, func(lo, hi int) {
		if lo == 0 {
			panic("boom")
		}
	})
}

func BenchmarkForOverheadSerial(b *testing.B) {
	// Below the grain: must cost ~a function call.
	for i := 0; i < b.N; i++ {
		For(64, 0, func(lo, hi int) {})
	}
}

func BenchmarkForOverheadParallel(b *testing.B) {
	for i := 0; i < b.N; i++ {
		For(8*DefaultGrain, 0, func(lo, hi int) {})
	}
}
