// Package viz provides the loosely coupled visualization and analysis
// components of the paper's Figure 1 lower half: "components for
// visualization, which can often be more loosely coupled and differently
// distributed than the numerical components", attachable to an ongoing
// simulation — §2.2: "a researcher may wish to visualize flow fields on a
// local workstation by dynamically attaching a visualization tool to an
// ongoing simulation that is running on a remote parallel machine."
//
// Three components are provided: StatsMonitor (a MonitorPort listener fed
// by the flow component's fan-out), an ASCII contour renderer, and a binary
// PGM image writer; Attachment pulls a parallel component's distributed
// field onto a single rank through a collective port connection.
package viz

import (
	"context"
	"fmt"
	"io"
	"math"
	"strings"
	"sync"

	"repro/internal/array"
	"repro/internal/cca"
	"repro/internal/cca/collective"
	dcoll "repro/internal/dist/collective"
	"repro/internal/hydro"
	"repro/internal/mpi"
	"repro/internal/transport"
)

// StatsMonitor is a monitor component recording (and optionally printing)
// per-step statistics. It provides a "monitor" port that FlowComponent's
// uses-port fans out to.
type StatsMonitor struct {
	// Out, when non-nil, receives one line per observation.
	Out io.Writer

	mu      sync.Mutex
	history []hydro.Stats
}

var (
	_ cca.Component     = (*StatsMonitor)(nil)
	_ hydro.MonitorPort = (*StatsMonitor)(nil)
)

// SetServices implements cca.Component.
func (s *StatsMonitor) SetServices(svc cca.Services) error {
	return svc.AddProvidesPort(s, cca.PortInfo{Name: "monitor", Type: hydro.TypeMonitor})
}

// Observe implements hydro.MonitorPort.
func (s *StatsMonitor) Observe(step int, st hydro.Stats) {
	s.mu.Lock()
	s.history = append(s.history, st)
	s.mu.Unlock()
	if s.Out != nil {
		fmt.Fprintf(s.Out, "%s\n", st)
	}
}

// History returns a snapshot of the observations.
func (s *StatsMonitor) History() []hydro.Stats {
	s.mu.Lock()
	defer s.mu.Unlock()
	return append([]hydro.Stats(nil), s.history...)
}

// RenderASCII bins scattered node values onto a w×h character grid
// (averaging samples per cell) and maps normalized magnitude onto a
// density ramp. Rows print top-to-bottom with y increasing upward.
func RenderASCII(coords [][2]float64, values []float64, w, h int) string {
	const ramp = " .:-=+*#%@"
	grid, minV, maxV := binToGrid(coords, values, w, h)
	span := maxV - minV
	var b strings.Builder
	for row := h - 1; row >= 0; row-- {
		for col := 0; col < w; col++ {
			c := grid[row][col]
			if c.n == 0 {
				b.WriteByte(' ')
				continue
			}
			v := c.sum / float64(c.n)
			t := 0.0
			if span > 0 {
				t = (v - minV) / span
			}
			idx := int(t * float64(len(ramp)-1))
			if idx < 0 {
				idx = 0
			}
			if idx >= len(ramp) {
				idx = len(ramp) - 1
			}
			b.WriteByte(ramp[idx])
		}
		b.WriteByte('\n')
	}
	return b.String()
}

// EncodePGM renders the field into a binary (P5) PGM image of size w×h.
func EncodePGM(coords [][2]float64, values []float64, w, h int) []byte {
	grid, minV, maxV := binToGrid(coords, values, w, h)
	span := maxV - minV
	var b strings.Builder
	fmt.Fprintf(&b, "P5\n%d %d\n255\n", w, h)
	out := []byte(b.String())
	for row := h - 1; row >= 0; row-- {
		for col := 0; col < w; col++ {
			c := grid[row][col]
			var pix byte
			if c.n > 0 {
				v := c.sum / float64(c.n)
				t := 0.0
				if span > 0 {
					t = (v - minV) / span
				}
				pix = byte(math.Round(t * 255))
			}
			out = append(out, pix)
		}
	}
	return out
}

type cell struct {
	sum float64
	n   int
}

func binToGrid(coords [][2]float64, values []float64, w, h int) (grid [][]cell, minV, maxV float64) {
	if w < 1 {
		w = 1
	}
	if h < 1 {
		h = 1
	}
	minX, maxX := math.Inf(1), math.Inf(-1)
	minY, maxY := math.Inf(1), math.Inf(-1)
	for _, c := range coords {
		minX, maxX = math.Min(minX, c[0]), math.Max(maxX, c[0])
		minY, maxY = math.Min(minY, c[1]), math.Max(maxY, c[1])
	}
	grid = make([][]cell, h)
	for i := range grid {
		grid[i] = make([]cell, w)
	}
	minV, maxV = math.Inf(1), math.Inf(-1)
	for i, c := range coords {
		if i >= len(values) {
			break
		}
		col, row := 0, 0
		if maxX > minX {
			col = int((c[0] - minX) / (maxX - minX) * float64(w-1))
		}
		if maxY > minY {
			row = int((c[1] - minY) / (maxY - minY) * float64(h-1))
		}
		grid[row][col].sum += values[i]
		grid[row][col].n++
		minV = math.Min(minV, values[i])
		maxV = math.Max(maxV, values[i])
	}
	if minV > maxV { // no samples
		minV, maxV = 0, 0
	}
	return grid, minV, maxV
}

// Attachment is a serial tool's live connection to a parallel component's
// collective DistArray port: the dynamic-attach scenario of §2.2.
type Attachment struct {
	Conn *collective.Connection
	// WorldRank is the rank the data lands on.
	WorldRank int
	buf       []float64
}

// Attach plans a collective connection pulling the provider's distributed
// field onto worldRank.
func Attach(provider collective.DistArrayPort, worldRank int) (*Attachment, error) {
	side := provider.Side()
	if side.Map == nil {
		return nil, fmt.Errorf("viz: provider side is unbound (initialize the component first)")
	}
	conn, err := collective.Connect(provider, collective.Serial(side.Map.GlobalLen(), worldRank))
	if err != nil {
		return nil, err
	}
	return &Attachment{Conn: conn, WorldRank: worldRank}, nil
}

// Snapshot pulls the current field; collective over every rank in either
// side. Only the attachment's world rank receives data (others get nil).
func (a *Attachment) Snapshot(comm *mpi.Comm) ([]float64, error) {
	var out []float64
	if comm.Rank() == a.WorldRank {
		if a.buf == nil {
			a.buf = make([]float64, a.Conn.Plan.GlobalLen())
		}
		out = a.buf
	}
	if err := a.Conn.Pull(comm, out); err != nil {
		return nil, err
	}
	return out, nil
}

// RemoteAttachment is the cross-process form of Attachment: a serial viz
// tool pulling a published distributed array over the ORB serving tier
// (repro/internal/dist/collective) instead of an in-process collective
// connection. The pull buffer is allocated once and reused across epochs,
// so a steady-state frame loop allocates nothing — the renderer reads
// each frame before pulling the next.
type RemoteAttachment struct {
	imp *dcoll.Import
	buf []float64
}

// AttachRemote dials a published collective port (see dcoll.Publish) and
// plans the whole globalLen-element array onto this process as one serial
// rank. The connection is supervised: severed links heal with backoff,
// and opts.Supervisor observes health transitions.
func AttachRemote(tr transport.Transport, addr, name string, globalLen int, opts dcoll.Options) (*RemoteAttachment, error) {
	imp, err := dcoll.Attach(tr, addr, name, array.NewSerialMap(globalLen), opts)
	if err != nil {
		return nil, err
	}
	return &RemoteAttachment{imp: imp}, nil
}

// Snapshot pulls one epoch-consistent frame into the reused buffer. The
// returned slice aliases the attachment's buffer: it is valid until the
// next Snapshot call.
func (a *RemoteAttachment) Snapshot(ctx context.Context) ([]float64, error) {
	if a.buf == nil {
		a.buf = make([]float64, a.imp.GlobalLen())
	}
	if err := a.imp.PullContext(ctx, 0, a.buf); err != nil {
		return nil, err
	}
	return a.buf, nil
}

// Import exposes the underlying consumer attachment (supervision state,
// provider cohort size).
func (a *RemoteAttachment) Import() *dcoll.Import { return a.imp }

// Close releases the supervised connection.
func (a *RemoteAttachment) Close() error { return a.imp.Close() }
