package viz

// Tests for RemoteAttachment: several serial viz consumers concurrently
// pulling one published distributed array through the epoch-cache serving
// tier, and the buffer-reuse contract of Snapshot.

import (
	"context"
	"errors"
	"sync"
	"testing"

	"repro/internal/array"
	"repro/internal/cca/collective"
	dcoll "repro/internal/dist/collective"
	"repro/internal/orb"
	"repro/internal/transport"
)

// vizPort is one provider rank of an in-memory distributed array.
type vizPort struct {
	side collective.Side
	data []float64
}

func (p *vizPort) Side() collective.Side { return p.side }
func (p *vizPort) LocalData() []float64  { return p.data }

func vizCohort(m array.DataMap, global []float64) []collective.DistArrayPort {
	ports := make([]collective.DistArrayPort, m.Ranks())
	for r := range ports {
		ports[r] = &vizPort{side: collective.Side{Map: m}, data: make([]float64, m.LocalLen(r))}
	}
	for _, run := range m.Runs() {
		dst := ports[run.Rank].(*vizPort).data
		for k := 0; k < run.Global.Len(); k++ {
			dst[run.Local+k] = global[run.Global.Lo+k]
		}
	}
	return ports
}

var (
	errShortSnapshot = errors.New("snapshot length wrong")
	errTornSnapshot  = errors.New("snapshot torn or stale")
	errBufNotReused  = errors.New("snapshot buffer reallocated across epochs")
)

// TestRemoteAttachmentsConcurrent attaches several viz consumers to one
// cached publisher and snapshots concurrently: every consumer must see
// the full untorn field each frame, and each attachment must reuse its
// pull buffer across epochs.
func TestRemoteAttachmentsConcurrent(t *testing.T) {
	const gl = 4096
	global := make([]float64, gl)
	for i := range global {
		global[i] = float64(i) * 0.125
	}
	oa := orb.NewObjectAdapter()
	l, err := transport.TCP{}.Listen("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	srv := orb.Serve(oa, l)
	defer srv.Stop()
	ports := vizCohort(array.NewBlockMap(gl, 2), global)
	pub, err := dcoll.Publish(oa, "field", ports, dcoll.WithEpochCache())
	if err != nil {
		t.Fatal(err)
	}
	defer pub.Close()

	const consumers = 6
	const frames = 4
	var wg sync.WaitGroup
	errs := make(chan error, consumers)
	fail := func(err error) { errs <- err }
	for i := 0; i < consumers; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			a, err := AttachRemote(transport.TCP{}, srv.Addr(), "field", gl, dcoll.Options{})
			if err != nil {
				fail(err)
				return
			}
			defer a.Close()
			var prev []float64
			for f := 0; f < frames; f++ {
				out, err := a.Snapshot(context.Background())
				if err != nil {
					fail(err)
					return
				}
				if len(out) != gl {
					fail(errShortSnapshot)
					return
				}
				for j := range out {
					if out[j] != global[j] {
						fail(errTornSnapshot)
						return
					}
				}
				if prev != nil && &out[0] != &prev[0] {
					fail(errBufNotReused)
					return
				}
				prev = out
			}
		}()
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Fatal(err)
	}
}
