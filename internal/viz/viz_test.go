package viz

import (
	"bytes"
	"math"
	"strings"
	"testing"

	"repro/internal/cca"
	"repro/internal/cca/collective"
	"repro/internal/cca/framework"
	"repro/internal/hydro"
	"repro/internal/mesh"
	"repro/internal/mpi"
)

func TestStatsMonitorRecordsAndPrints(t *testing.T) {
	var buf bytes.Buffer
	m := &StatsMonitor{Out: &buf}
	f := framework.New(framework.Options{})
	if err := f.Install("mon", m); err != nil {
		t.Fatal(err)
	}
	m.Observe(1, hydro.Stats{Step: 1, Max: 0.5})
	m.Observe(2, hydro.Stats{Step: 2, Max: 0.4})
	h := m.History()
	if len(h) != 2 || h[1].Step != 2 {
		t.Fatalf("history = %+v", h)
	}
	if !strings.Contains(buf.String(), "step=1") {
		t.Errorf("output = %q", buf.String())
	}
}

func TestRenderASCIIShape(t *testing.T) {
	// A peak in the center must render the densest character centrally.
	var coords [][2]float64
	var vals []float64
	for iy := 0; iy <= 10; iy++ {
		for ix := 0; ix <= 10; ix++ {
			x, y := float64(ix)/10, float64(iy)/10
			coords = append(coords, [2]float64{x, y})
			dx, dy := x-0.5, y-0.5
			vals = append(vals, math.Exp(-20*(dx*dx+dy*dy)))
		}
	}
	out := RenderASCII(coords, vals, 11, 11)
	lines := strings.Split(strings.TrimRight(out, "\n"), "\n")
	if len(lines) != 11 {
		t.Fatalf("%d lines", len(lines))
	}
	if lines[5][5] != '@' {
		t.Errorf("center char = %q\n%s", string(lines[5][5]), out)
	}
	if lines[0][0] == '@' {
		t.Errorf("corner is densest\n%s", out)
	}
}

func TestRenderASCIIDegenerate(t *testing.T) {
	// Constant field and empty input must not panic.
	if out := RenderASCII(nil, nil, 4, 2); len(strings.Split(strings.TrimRight(out, "\n"), "\n")) != 2 {
		t.Errorf("empty render = %q", out)
	}
	coords := [][2]float64{{0, 0}, {1, 1}}
	out := RenderASCII(coords, []float64{3, 3}, 2, 2)
	if !strings.Contains(out, " ") && len(out) == 0 {
		t.Errorf("constant render = %q", out)
	}
}

func TestEncodePGMHeaderAndSize(t *testing.T) {
	coords := [][2]float64{{0, 0}, {1, 0}, {0, 1}, {1, 1}}
	vals := []float64{0, 1, 0.5, 0.25}
	img := EncodePGM(coords, vals, 8, 4)
	if !bytes.HasPrefix(img, []byte("P5\n8 4\n255\n")) {
		t.Fatalf("header = %q", img[:12])
	}
	if len(img) != len("P5\n8 4\n255\n")+8*4 {
		t.Errorf("image size = %d", len(img))
	}
}

// TestDynamicAttachDuringRun reproduces §2.2's flagship scenario: a serial
// visualization tool attaches, via a collective port, to a parallel
// simulation that is already stepping, on a rank outside the simulation
// cohort — Figure 1's differently distributed connection.
func TestDynamicAttachDuringRun(t *testing.T) {
	const flowRanks = 3
	const vizRank = 3
	m := mesh.StructuredQuad(10, 10)

	mpi.Run(flowRanks+1, func(world *mpi.Comm) {
		// Split: flow cohort = ranks 0..2; viz = rank 3.
		color := 0
		if world.Rank() == vizRank {
			color = 1
		}
		sub, err := world.Split(color, world.Rank())
		if err != nil {
			t.Errorf("split: %v", err)
			return
		}

		var flow *hydro.FlowComponent
		if world.Rank() != vizRank {
			c := framework.NewCohort(sub, framework.Options{})
			if err := c.InstallParallel("mesh", func(rank int) cca.Component {
				mc, err := hydro.NewMeshComponent(m, "rcb", flowRanks, rank)
				if err != nil {
					t.Errorf("mesh: %v", err)
				}
				return mc
			}); err != nil {
				t.Errorf("install mesh: %v", err)
				return
			}
			if err := c.InstallParallel("flow", func(rank int) cca.Component {
				fc, err := hydro.NewFlowComponent(sub, hydro.Config{Nu: 1, Tol: 1e-10})
				if err != nil {
					t.Errorf("flow: %v", err)
				}
				flow = fc
				return fc
			}); err != nil {
				t.Errorf("install flow: %v", err)
				return
			}
			if _, err := c.ConnectParallel("flow", "mesh", "mesh", "mesh"); err != nil {
				t.Errorf("connect: %v", err)
				return
			}
			// Run two steps BEFORE the viz attaches.
			for i := 0; i < 2; i++ {
				if _, err := flow.Step(0.02); err != nil {
					t.Errorf("pre-attach step: %v", err)
					return
				}
			}
		}

		// The attach point: all ranks must agree on the provider's side.
		// Flow ranks publish their real component; the viz rank builds
		// the plan from the (deterministically recomputed) side metadata.
		var provider collective.DistArrayPort
		if flow != nil {
			provider = flow
		} else {
			part := mesh.RCB{}.PartitionNodes(m, flowRanks)
			d, err := mesh.Decompose(m, part, flowRanks, 0)
			if err != nil {
				t.Errorf("viz decompose: %v", err)
				return
			}
			side, err := hydro.SideOf(d, nil)
			if err != nil {
				t.Errorf("viz side: %v", err)
				return
			}
			provider = &sideOnly{side: side}
		}
		att, err := Attach(provider, vizRank)
		if err != nil {
			t.Errorf("attach: %v", err)
			return
		}

		// Interleave stepping with snapshots.
		for i := 0; i < 2; i++ {
			if flow != nil {
				if _, err := flow.Step(0.02); err != nil {
					t.Errorf("post-attach step: %v", err)
					return
				}
			}
			snap, err := att.Snapshot(world)
			if err != nil {
				t.Errorf("snapshot: %v", err)
				return
			}
			if world.Rank() == vizRank {
				if len(snap) != m.NumNodes() {
					t.Errorf("snapshot length %d", len(snap))
					return
				}
				// Field must look like a decayed centered bump: positive
				// peak near center, ~0 at boundary.
				maxV := 0.0
				for _, v := range snap {
					if v > maxV {
						maxV = v
					}
				}
				if maxV <= 0 || maxV > 1 {
					t.Errorf("snapshot max = %v", maxV)
				}
				ascii := RenderASCII(m.Coords, snap, 21, 11)
				if !strings.ContainsAny(ascii, "@%#") {
					t.Errorf("render lacks a peak:\n%s", ascii)
				}
			}
		}
	})
}

// sideOnly is the consumer-side placeholder for the provider's port: it
// carries the side metadata the planner needs but never supplies data (the
// viz rank is not in the source side).
type sideOnly struct {
	side collective.Side
}

func (s *sideOnly) Side() collective.Side { return s.side }
func (s *sideOnly) LocalData() []float64  { return nil }
