// Package beans implements a JavaBeans-flavoured event/listener component
// model — the comparison baseline of the paper's §3.2 and §6: "In the
// JavaBeans model, components notify other listener components by
// generating events. Components that wish to be notified of events register
// themselves as listeners with the target components."
//
// The package is the negative space around the repository-and-assembly
// story. A bean exposes no SIDL-described contract, so there is nothing a
// component repository (repro/internal/repo) could type-check, search by
// port compatibility, or version — and nothing a declarative assembly
// (repro/internal/ccl) could name and wire: composition happens by
// registering listeners in code, with payloads boxed as `any` and checked
// only at delivery time. That gap is the paper's argument for
// provides/uses ports, where the connection graph is framework data a
// builder, a repository query, or a checked-in .ccl document can all
// manipulate.
//
// Experiment E3 measures the delivery styles against each other: an event
// delivery boxes its payload into an Event value and fans it out to every
// registered listener, where a port call is a single typed dynamic
// dispatch.
package beans

import (
	"errors"
	"fmt"
	"sync"
)

// ErrNoListener reports removal of an unregistered listener.
var ErrNoListener = errors.New("beans: listener not registered")

// Event is a JavaBeans-style notification: a named occurrence on a source
// bean with an arbitrary boxed payload.
type Event struct {
	Source  string
	Name    string
	Payload any
}

// Listener receives events.
type Listener interface {
	Notify(e Event)
}

// ListenerFunc adapts a function to Listener.
type ListenerFunc func(e Event)

// Notify implements Listener.
func (f ListenerFunc) Notify(e Event) { f(e) }

// Registration identifies one listener registration so it can be removed
// later (listener values themselves — e.g. ListenerFunc — need not be
// comparable).
type Registration struct {
	event string
	id    int
}

type registered struct {
	id int
	l  Listener
}

// Bean is an event source: listeners register per event name (or "*" for
// all events).
type Bean struct {
	name   string
	mu     sync.RWMutex
	nextID int
	// listeners[eventName] in registration order.
	listeners map[string][]registered
}

// NewBean creates a named event source.
func NewBean(name string) *Bean {
	return &Bean{name: name, listeners: map[string][]registered{}}
}

// Name returns the bean's name.
func (b *Bean) Name() string { return b.name }

// AddListener registers l for the named event ("*" matches every event)
// and returns a handle for removal.
func (b *Bean) AddListener(event string, l Listener) Registration {
	b.mu.Lock()
	b.nextID++
	reg := Registration{event: event, id: b.nextID}
	b.listeners[event] = append(b.listeners[event], registered{id: reg.id, l: l})
	b.mu.Unlock()
	return reg
}

// RemoveListener unregisters a previously added listener.
func (b *Bean) RemoveListener(reg Registration) error {
	b.mu.Lock()
	defer b.mu.Unlock()
	ls := b.listeners[reg.event]
	for i := range ls {
		if ls[i].id == reg.id {
			b.listeners[reg.event] = append(ls[:i:i], ls[i+1:]...)
			return nil
		}
	}
	return fmt.Errorf("%w: %s/%s#%d", ErrNoListener, b.name, reg.event, reg.id)
}

// ListenerCount reports how many listeners observe the named event
// (excluding wildcards).
func (b *Bean) ListenerCount(event string) int {
	b.mu.RLock()
	defer b.mu.RUnlock()
	return len(b.listeners[event])
}

// Fire synchronously delivers an event to every listener registered for its
// name and for "*", in registration order, and reports the delivery count.
func (b *Bean) Fire(event string, payload any) int {
	e := Event{Source: b.name, Name: event, Payload: payload}
	b.mu.RLock()
	named := b.listeners[event]
	wild := b.listeners["*"]
	// Copy under lock so listeners may mutate registrations reentrantly.
	ls := make([]Listener, 0, len(named)+len(wild))
	for _, r := range named {
		ls = append(ls, r.l)
	}
	for _, r := range wild {
		ls = append(ls, r.l)
	}
	b.mu.RUnlock()
	for _, l := range ls {
		l.Notify(e)
	}
	return len(ls)
}

// PropertyChange is the classic bound-property notification payload.
type PropertyChange struct {
	Property string
	Old, New any
}

// PropertySupport adds JavaBeans bound-property semantics to a Bean:
// SetProperty fires a "propertyChange" event when the value changes.
type PropertySupport struct {
	Bean  *Bean
	mu    sync.Mutex
	props map[string]any
}

// NewPropertySupport wraps a bean with bound-property storage.
func NewPropertySupport(b *Bean) *PropertySupport {
	return &PropertySupport{Bean: b, props: map[string]any{}}
}

// SetProperty stores the value, firing propertyChange on modification.
func (p *PropertySupport) SetProperty(name string, value any) {
	p.mu.Lock()
	old, had := p.props[name]
	p.props[name] = value
	p.mu.Unlock()
	if !had || old != value {
		p.Bean.Fire("propertyChange", PropertyChange{Property: name, Old: old, New: value})
	}
}

// Property reads a stored property.
func (p *PropertySupport) Property(name string) (any, bool) {
	p.mu.Lock()
	defer p.mu.Unlock()
	v, ok := p.props[name]
	return v, ok
}
