package beans

import (
	"errors"
	"sync"
	"testing"
)

func TestFireDeliversInOrder(t *testing.T) {
	b := NewBean("src")
	var got []int
	for i := 0; i < 3; i++ {
		i := i
		b.AddListener("tick", ListenerFunc(func(e Event) { got = append(got, i) }))
	}
	n := b.Fire("tick", nil)
	if n != 3 || len(got) != 3 {
		t.Fatalf("delivered %d, got %v", n, got)
	}
	for i, v := range got {
		if v != i {
			t.Errorf("order %v", got)
			break
		}
	}
}

func TestFirePayloadAndMetadata(t *testing.T) {
	b := NewBean("sensor")
	var seen Event
	b.AddListener("reading", ListenerFunc(func(e Event) { seen = e }))
	b.Fire("reading", 42.5)
	if seen.Source != "sensor" || seen.Name != "reading" || seen.Payload.(float64) != 42.5 {
		t.Errorf("event = %+v", seen)
	}
}

func TestWildcardListener(t *testing.T) {
	b := NewBean("b")
	count := 0
	b.AddListener("*", ListenerFunc(func(e Event) { count++ }))
	b.Fire("a", nil)
	b.Fire("b", nil)
	if count != 2 {
		t.Errorf("wildcard saw %d", count)
	}
}

func TestFireNoListeners(t *testing.T) {
	if n := NewBean("b").Fire("quiet", nil); n != 0 {
		t.Errorf("delivered %d", n)
	}
}

func TestRemoveListener(t *testing.T) {
	b := NewBean("b")
	count := 0
	reg := b.AddListener("e", ListenerFunc(func(e Event) { count++ }))
	if b.ListenerCount("e") != 1 {
		t.Fatalf("count = %d", b.ListenerCount("e"))
	}
	if err := b.RemoveListener(reg); err != nil {
		t.Fatal(err)
	}
	b.Fire("e", nil)
	if count != 0 {
		t.Error("removed listener still notified")
	}
	if err := b.RemoveListener(reg); !errors.Is(err, ErrNoListener) {
		t.Errorf("err = %v", err)
	}
}

func TestConcurrentFireAndRegister(t *testing.T) {
	b := NewBean("b")
	var wg sync.WaitGroup
	var mu sync.Mutex
	total := 0
	wg.Add(2)
	go func() {
		defer wg.Done()
		for i := 0; i < 100; i++ {
			b.AddListener("e", ListenerFunc(func(e Event) {
				mu.Lock()
				total++
				mu.Unlock()
			}))
		}
	}()
	go func() {
		defer wg.Done()
		for i := 0; i < 100; i++ {
			b.Fire("e", i)
		}
	}()
	wg.Wait()
	if b.ListenerCount("e") != 100 {
		t.Errorf("count = %d", b.ListenerCount("e"))
	}
}

func TestPropertySupport(t *testing.T) {
	b := NewBean("cfg")
	ps := NewPropertySupport(b)
	var changes []PropertyChange
	b.AddListener("propertyChange", ListenerFunc(func(e Event) {
		changes = append(changes, e.Payload.(PropertyChange))
	}))
	ps.SetProperty("tol", 1e-6)
	ps.SetProperty("tol", 1e-6) // unchanged: no event
	ps.SetProperty("tol", 1e-8)
	if len(changes) != 2 {
		t.Fatalf("changes = %+v", changes)
	}
	if changes[1].Old.(float64) != 1e-6 || changes[1].New.(float64) != 1e-8 {
		t.Errorf("change = %+v", changes[1])
	}
	v, ok := ps.Property("tol")
	if !ok || v.(float64) != 1e-8 {
		t.Errorf("property = %v %v", v, ok)
	}
	if _, ok := ps.Property("missing"); ok {
		t.Error("phantom property")
	}
}
