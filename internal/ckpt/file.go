package ckpt

import (
	"bufio"
	"bytes"
	"fmt"
	"io"
	"os"
	"path/filepath"
)

// Checkpointer is the writing half of cca.Checkpointable, restated locally
// so this package stays dependency-free; any component implementing the
// port interface satisfies it structurally.
type Checkpointer interface {
	Checkpoint(w io.Writer) error
}

// Restorer is the reading half of cca.Checkpointable.
type Restorer interface {
	Restore(r io.Reader) error
}

// SaveFile writes a checkpoint stream produced by fn to path atomically:
// the stream is written to a temporary file in path's directory, synced,
// and renamed over path only after the trailer is down. A crash at any
// point leaves either the previous checkpoint or a stray ".ckpt-*" temp
// file — never a partial file under path.
func SaveFile(path string, fn func(*Writer) error) (err error) {
	dir := filepath.Dir(path)
	tmp, err := os.CreateTemp(dir, ".ckpt-*")
	if err != nil {
		return fmt.Errorf("ckpt: save %s: %w", path, err)
	}
	defer func() {
		if err != nil {
			tmp.Close()
			os.Remove(tmp.Name())
		}
	}()
	bw := bufio.NewWriter(tmp)
	w := NewWriter(bw)
	if err = fn(w); err != nil {
		return fmt.Errorf("ckpt: save %s: %w", path, err)
	}
	if err = w.Close(); err != nil {
		return fmt.Errorf("ckpt: save %s: %w", path, err)
	}
	if err = bw.Flush(); err != nil {
		return fmt.Errorf("ckpt: save %s: %w", path, err)
	}
	if err = tmp.Sync(); err != nil {
		return fmt.Errorf("ckpt: save %s: %w", path, err)
	}
	if err = tmp.Close(); err != nil {
		return fmt.Errorf("ckpt: save %s: %w", path, err)
	}
	if err = os.Rename(tmp.Name(), path); err != nil {
		os.Remove(tmp.Name())
		return fmt.Errorf("ckpt: save %s: %w", path, err)
	}
	return nil
}

// LoadFile opens, fully verifies, and hands the checkpoint at path to fn.
func LoadFile(path string, fn func(*Reader) error) error {
	f, err := os.Open(path)
	if err != nil {
		return fmt.Errorf("ckpt: load %s: %w", path, err)
	}
	defer f.Close()
	r, err := NewReader(bufio.NewReader(f))
	if err != nil {
		return fmt.Errorf("ckpt: load %s: %w", path, err)
	}
	return fn(r)
}

// SaveTo checkpoints a component to path under the atomic file contract.
func SaveTo(path string, c Checkpointer) (err error) {
	dir := filepath.Dir(path)
	tmp, err := os.CreateTemp(dir, ".ckpt-*")
	if err != nil {
		return fmt.Errorf("ckpt: save %s: %w", path, err)
	}
	defer func() {
		if err != nil {
			tmp.Close()
			os.Remove(tmp.Name())
		}
	}()
	bw := bufio.NewWriter(tmp)
	if err = c.Checkpoint(bw); err != nil {
		return fmt.Errorf("ckpt: save %s: %w", path, err)
	}
	if err = bw.Flush(); err != nil {
		return fmt.Errorf("ckpt: save %s: %w", path, err)
	}
	if err = tmp.Sync(); err != nil {
		return fmt.Errorf("ckpt: save %s: %w", path, err)
	}
	if err = tmp.Close(); err != nil {
		return fmt.Errorf("ckpt: save %s: %w", path, err)
	}
	if err = os.Rename(tmp.Name(), path); err != nil {
		os.Remove(tmp.Name())
		return fmt.Errorf("ckpt: save %s: %w", path, err)
	}
	return nil
}

// LoadInto restores a component from the checkpoint at path.
func LoadInto(path string, c Restorer) error {
	f, err := os.Open(path)
	if err != nil {
		return fmt.Errorf("ckpt: load %s: %w", path, err)
	}
	defer f.Close()
	if err := c.Restore(bufio.NewReader(f)); err != nil {
		return fmt.Errorf("ckpt: load %s: %w", path, err)
	}
	return nil
}

// Marshal captures a component's checkpoint as bytes — the form the
// framework's Swap carries between components and orb's RestartPolicy
// replays over the wire.
func Marshal(c Checkpointer) ([]byte, error) {
	var buf bytes.Buffer
	if err := c.Checkpoint(&buf); err != nil {
		return nil, err
	}
	return buf.Bytes(), nil
}

// Unmarshal restores a component from a Marshal'd checkpoint.
func Unmarshal(state []byte, c Restorer) error {
	return c.Restore(bytes.NewReader(state))
}
