// Package ckpt implements the checkpoint wire format behind the
// cca.Checkpointable port interface: a versioned, length-prefixed,
// CRC-guarded binary stream of named sections, plus the atomic file
// contract (temp file + rename) and the collective helpers that move
// distributed-array state through the redistribution pack/unpack path.
//
// # Wire format
//
// A checkpoint stream is
//
//	magic   "RCK1"                      4 bytes
//	version uint16 LE                   (current: Version)
//	flags   uint16 LE                   (reserved, zero)
//	section*                            zero or more
//	end     uint16 LE = 0xFFFF          mandatory trailer
//
// and each section is
//
//	nameLen uint16 LE                   (0xFFFF reserved for the trailer)
//	name    nameLen bytes               UTF-8, unique per stream
//	payLen  uint64 LE
//	payload payLen bytes
//	crc     uint32 LE                   IEEE CRC-32 over name+payload
//
// The reader refuses streams whose version is newer than it understands
// (ErrVersion), whose sections fail their CRC (ErrCRC), or that end before
// the trailer (ErrTruncated) — a stream cut at any byte, including exactly
// on a section boundary, is detected. Sections a reader does not recognize
// are skipped, which is what makes the format versionable: a newer writer
// may add sections without breaking an older reader of the same version.
//
// # Atomic files
//
// SaveTo writes through a temporary file in the destination directory and
// renames it over the target only after the stream (including the trailer)
// has been flushed and synced. A crash mid-Checkpoint therefore leaves
// either the previous complete checkpoint or a stray temp file — never a
// partial file under the checkpoint's name. LoadFrom verifies the trailer,
// so even a partial file planted under the real name is rejected with a
// typed error instead of restoring half a state.
//
// # Distributed arrays
//
// Gather and Scatter are the collective bridge: every cohort rank calls
// them with its local chunk and the side's distribution, and the global
// array flows through a collective.Plan — the same pack/send/recv/unpack
// schedule the PR 5 redistribution path uses — to or from the checkpoint
// root. Float64s payloads store raw IEEE-754 bits, so a gather/scatter
// round trip is bit-identical.
package ckpt
