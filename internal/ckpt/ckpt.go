package ckpt

import (
	"encoding/binary"
	"errors"
	"fmt"
	"hash/crc32"
	"io"
	"math"
)

// Version is the stream version this package writes. Readers accept any
// version up to and including it and refuse newer streams with ErrVersion.
const Version = 1

// magic identifies a checkpoint stream.
var magic = [4]byte{'R', 'C', 'K', '1'}

// endMarker is the reserved nameLen value that terminates a stream.
const endMarker = 0xFFFF

// maxSectionLen bounds a single section payload (1 GiB): a corrupt length
// prefix fails typed instead of driving a giant allocation.
const maxSectionLen = 1 << 30

// Typed corruption errors. Every decode failure wraps exactly one of
// these, so callers can distinguish "file from a newer build" from "file
// damaged in flight" from "file cut short".
var (
	ErrMagic     = errors.New("ckpt: bad magic (not a checkpoint stream)")
	ErrVersion   = errors.New("ckpt: stream version is newer than this reader")
	ErrCRC       = errors.New("ckpt: section CRC mismatch")
	ErrTruncated = errors.New("ckpt: stream truncated before trailer")
	ErrFormat    = errors.New("ckpt: malformed stream")
	ErrNoSection = errors.New("ckpt: no such section")
)

// Writer emits a checkpoint stream. Methods record the first error and make
// every later call a no-op returning it; Close reports the sticky error, so
// straight-line Section/Close sequences need only check Close.
type Writer struct {
	w      io.Writer
	err    error
	opened bool
	closed bool
	names  map[string]bool
	scratch []byte
}

// NewWriter starts a checkpoint stream on w. The header is written on the
// first Section (or Close), so construction itself cannot fail.
func NewWriter(w io.Writer) *Writer {
	return &Writer{w: w, names: map[string]bool{}}
}

func (w *Writer) open() {
	if w.opened || w.err != nil {
		return
	}
	w.opened = true
	var hdr [8]byte
	copy(hdr[:4], magic[:])
	binary.LittleEndian.PutUint16(hdr[4:6], Version)
	// hdr[6:8] flags, reserved zero.
	_, w.err = w.w.Write(hdr[:])
}

// Section appends one named, CRC-guarded record.
func (w *Writer) Section(name string, payload []byte) error {
	w.open()
	if w.err != nil {
		return w.err
	}
	if w.closed {
		w.err = fmt.Errorf("%w: section %q after Close", ErrFormat, name)
		return w.err
	}
	if len(name) == 0 || len(name) >= endMarker {
		w.err = fmt.Errorf("%w: section name length %d", ErrFormat, len(name))
		return w.err
	}
	if w.names[name] {
		w.err = fmt.Errorf("%w: duplicate section %q", ErrFormat, name)
		return w.err
	}
	if len(payload) > maxSectionLen {
		w.err = fmt.Errorf("%w: section %q payload %d bytes", ErrFormat, name, len(payload))
		return w.err
	}
	w.names[name] = true
	var nameLen [2]byte
	binary.LittleEndian.PutUint16(nameLen[:], uint16(len(name)))
	var payLen [8]byte
	binary.LittleEndian.PutUint64(payLen[:], uint64(len(payload)))
	crc := crc32.ChecksumIEEE([]byte(name))
	crc = crc32.Update(crc, crc32.IEEETable, payload)
	var tail [4]byte
	binary.LittleEndian.PutUint32(tail[:], crc)
	for _, b := range [][]byte{nameLen[:], []byte(name), payLen[:], payload, tail[:]} {
		if _, w.err = w.w.Write(b); w.err != nil {
			return w.err
		}
	}
	return nil
}

// Uint64 writes a single unsigned integer section.
func (w *Writer) Uint64(name string, v uint64) error {
	var buf [8]byte
	binary.LittleEndian.PutUint64(buf[:], v)
	return w.Section(name, buf[:])
}

// Float64 writes a single scalar section, preserving the exact bits.
func (w *Writer) Float64(name string, v float64) error {
	return w.Uint64(name, math.Float64bits(v))
}

// Float64s writes a vector section: uint64 count followed by the raw
// IEEE-754 bits of each element — the bit-identical representation the
// distributed-array round trip depends on.
func (w *Writer) Float64s(name string, v []float64) error {
	buf := w.scratch
	need := 8 + 8*len(v)
	if cap(buf) < need {
		buf = make([]byte, 0, need)
	}
	buf = buf[:0]
	buf = binary.LittleEndian.AppendUint64(buf, uint64(len(v)))
	for _, x := range v {
		buf = binary.LittleEndian.AppendUint64(buf, math.Float64bits(x))
	}
	w.scratch = buf
	return w.Section(name, buf)
}

// Close writes the trailer and reports any error recorded along the way.
// It does not close the underlying writer.
func (w *Writer) Close() error {
	w.open()
	if w.err != nil {
		return w.err
	}
	if w.closed {
		return nil
	}
	w.closed = true
	var end [2]byte
	binary.LittleEndian.PutUint16(end[:], endMarker)
	_, w.err = w.w.Write(end[:])
	return w.err
}

// Reader parses and verifies a complete checkpoint stream up front —
// header, every section CRC, and the trailer — then serves sections by
// name. Eager verification means a Restore never begins applying state
// from a stream whose tail is corrupt.
type Reader struct {
	version  uint16
	sections map[string][]byte
	order    []string
}

// NewReader consumes r to the stream trailer and verifies it.
func NewReader(r io.Reader) (*Reader, error) {
	var hdr [8]byte
	if _, err := io.ReadFull(r, hdr[:]); err != nil {
		return nil, fmt.Errorf("%w: header: %v", ErrTruncated, err)
	}
	if [4]byte(hdr[:4]) != magic {
		return nil, fmt.Errorf("%w: %q", ErrMagic, hdr[:4])
	}
	version := binary.LittleEndian.Uint16(hdr[4:6])
	if version > Version {
		return nil, fmt.Errorf("%w: stream v%d, reader v%d", ErrVersion, version, Version)
	}
	rd := &Reader{version: version, sections: map[string][]byte{}}
	for {
		var pre [2]byte
		if _, err := io.ReadFull(r, pre[:]); err != nil {
			return nil, fmt.Errorf("%w: %v", ErrTruncated, err)
		}
		nameLen := binary.LittleEndian.Uint16(pre[:])
		if nameLen == endMarker {
			return rd, nil
		}
		if nameLen == 0 {
			return nil, fmt.Errorf("%w: zero-length section name", ErrFormat)
		}
		var lenBuf [8]byte
		name := make([]byte, nameLen)
		if _, err := io.ReadFull(r, name); err != nil {
			return nil, fmt.Errorf("%w: section name: %v", ErrTruncated, err)
		}
		if _, err := io.ReadFull(r, lenBuf[:]); err != nil {
			return nil, fmt.Errorf("%w: section %q length: %v", ErrTruncated, name, err)
		}
		payLen := binary.LittleEndian.Uint64(lenBuf[:])
		if payLen > maxSectionLen {
			return nil, fmt.Errorf("%w: section %q claims %d bytes", ErrFormat, name, payLen)
		}
		payload := make([]byte, payLen)
		if _, err := io.ReadFull(r, payload); err != nil {
			return nil, fmt.Errorf("%w: section %q payload: %v", ErrTruncated, name, err)
		}
		var crcBuf [4]byte
		if _, err := io.ReadFull(r, crcBuf[:]); err != nil {
			return nil, fmt.Errorf("%w: section %q crc: %v", ErrTruncated, name, err)
		}
		crc := crc32.ChecksumIEEE(name)
		crc = crc32.Update(crc, crc32.IEEETable, payload)
		if got := binary.LittleEndian.Uint32(crcBuf[:]); got != crc {
			return nil, fmt.Errorf("%w: section %q: stored %08x, computed %08x", ErrCRC, name, got, crc)
		}
		if _, dup := rd.sections[string(name)]; dup {
			return nil, fmt.Errorf("%w: duplicate section %q", ErrFormat, name)
		}
		rd.sections[string(name)] = payload
		rd.order = append(rd.order, string(name))
	}
}

// Version reports the stream's written version.
func (r *Reader) Version() uint16 { return r.version }

// Names lists the stream's sections in written order.
func (r *Reader) Names() []string { return append([]string(nil), r.order...) }

// Bytes returns a section's raw payload.
func (r *Reader) Bytes(name string) ([]byte, error) {
	p, ok := r.sections[name]
	if !ok {
		return nil, fmt.Errorf("%w: %q", ErrNoSection, name)
	}
	return p, nil
}

// Uint64 decodes a Writer.Uint64 section.
func (r *Reader) Uint64(name string) (uint64, error) {
	p, err := r.Bytes(name)
	if err != nil {
		return 0, err
	}
	if len(p) != 8 {
		return 0, fmt.Errorf("%w: section %q is %d bytes, want 8", ErrFormat, name, len(p))
	}
	return binary.LittleEndian.Uint64(p), nil
}

// Float64 decodes a Writer.Float64 section.
func (r *Reader) Float64(name string) (float64, error) {
	v, err := r.Uint64(name)
	if err != nil {
		return 0, err
	}
	return math.Float64frombits(v), nil
}

// Float64s decodes a Writer.Float64s section.
func (r *Reader) Float64s(name string) ([]float64, error) {
	p, err := r.Bytes(name)
	if err != nil {
		return nil, err
	}
	if len(p) < 8 {
		return nil, fmt.Errorf("%w: section %q is %d bytes", ErrFormat, name, len(p))
	}
	n := binary.LittleEndian.Uint64(p)
	// Divide rather than multiply: 8*n wraps for a crafted n ≥ 2⁶¹, which
	// would pass the check and panic in make() instead of returning the
	// package's typed ErrFormat.
	if (len(p)-8)%8 != 0 || n != uint64(len(p)-8)/8 {
		return nil, fmt.Errorf("%w: section %q counts %d elements in %d bytes", ErrFormat, name, n, len(p)-8)
	}
	out := make([]float64, n)
	for i := range out {
		out[i] = math.Float64frombits(binary.LittleEndian.Uint64(p[8+8*i:]))
	}
	return out, nil
}
