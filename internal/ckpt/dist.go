package ckpt

import (
	"fmt"

	"repro/internal/cca/collective"
	"repro/internal/mpi"
)

// Gather checkpoints a distributed array: every cohort rank of side calls
// it collectively with its local chunk, and the global array is routed
// through a collective redistribution plan — the same pack/send/unpack
// schedule a cross-distribution Transfer uses — to the side's first world
// rank, which writes it as a Float64s section on w. Only that root rank
// needs (or uses) a non-nil Writer; the call returns the gathered global
// array on the root and nil elsewhere.
func Gather(w *Writer, name string, comm *mpi.Comm, side collective.Side, local []float64) ([]float64, error) {
	if len(side.WorldRanks) == 0 {
		return nil, fmt.Errorf("%w: empty side", ErrFormat)
	}
	root := side.WorldRanks[0]
	plan, err := collective.NewPlan(side, collective.Serial(side.Map.GlobalLen(), root))
	if err != nil {
		return nil, err
	}
	var out []float64
	if n := plan.DstLocalLen(comm.Rank()); n > 0 {
		out = make([]float64, n)
	}
	if err := plan.Transfer(comm, local, out); err != nil {
		return nil, err
	}
	if comm.Rank() != root {
		return nil, nil
	}
	if w == nil {
		return out, nil
	}
	return out, w.Float64s(name, out)
}

// Scatter restores a distributed array: the side's first world rank reads
// the named Float64s section from r and the global array flows back
// through the redistribution plan to every cohort rank's out chunk. Ranks
// other than the root pass a nil Reader. out must be sized to the rank's
// local chunk of side.
func Scatter(r *Reader, name string, comm *mpi.Comm, side collective.Side, out []float64) error {
	if len(side.WorldRanks) == 0 {
		return fmt.Errorf("%w: empty side", ErrFormat)
	}
	root := side.WorldRanks[0]
	plan, err := collective.NewPlan(collective.Serial(side.Map.GlobalLen(), root), side)
	if err != nil {
		return err
	}
	var global []float64
	if comm.Rank() == root {
		if r == nil {
			return fmt.Errorf("%w: root rank %d needs a reader", ErrFormat, root)
		}
		global, err = r.Float64s(name)
		if err != nil {
			return err
		}
		if len(global) != side.Map.GlobalLen() {
			return fmt.Errorf("%w: section %q has %d elements, side wants %d",
				ErrFormat, name, len(global), side.Map.GlobalLen())
		}
	}
	return plan.Transfer(comm, global, out)
}
