package ckpt

// Golden checkpoint vectors: byte-exact fixtures for the RCK1 stream
// layout. A checkpoint written by one build must restore under every later
// build, so these bytes are a compatibility contract exactly like the orb
// wire vectors. Regenerate with
//
//	go test ./internal/ckpt -run Golden -update
//
// ONLY when the change is an intentional, version-bumped format change.

import (
	"bytes"
	"encoding/hex"
	"flag"
	"fmt"
	"math"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

var update = flag.Bool("update", false, "rewrite golden checkpoint fixtures")

func goldenVectors(t *testing.T) []struct {
	name  string
	bytes []byte
} {
	t.Helper()
	return []struct {
		name  string
		bytes []byte
	}{
		// Header + trailer only: the shortest legal stream.
		{"empty", writeStream(t, func(*Writer) {})},
		// One section of each helper encoding.
		{"scalars", writeStream(t, func(w *Writer) {
			w.Uint64("it", 17)
			w.Float64("tol", 1e-9)
		})},
		// Vector sections, including the IEEE edge values whose bits a
		// restore must reproduce exactly.
		{"vectors", writeStream(t, func(w *Writer) {
			w.Float64s("x", []float64{1, -2.5, math.Pi})
			w.Float64s("edge", []float64{math.Inf(1), math.Inf(-1), math.Copysign(0, -1), math.MaxFloat64})
			w.Float64s("empty", nil)
		})},
		// Raw named payload.
		{"raw", writeStream(t, func(w *Writer) {
			w.Section("blob", []byte{0x00, 0x01, 0xFE, 0xFF})
		})},
	}
}

func goldenPath(name string) string {
	return filepath.Join("testdata", "golden", "ckpt", name+".hex")
}

func readGolden(t *testing.T, name string) []byte {
	t.Helper()
	raw, err := os.ReadFile(goldenPath(name))
	if err != nil {
		t.Fatalf("missing golden fixture (run with -update to create): %v", err)
	}
	var sb strings.Builder
	for _, line := range strings.Split(string(raw), "\n") {
		if i := strings.IndexByte(line, '#'); i >= 0 {
			line = line[:i]
		}
		sb.WriteString(strings.Map(func(r rune) rune {
			if r == ' ' || r == '\t' || r == '\r' {
				return -1
			}
			return r
		}, line))
	}
	b, err := hex.DecodeString(sb.String())
	if err != nil {
		t.Fatalf("corrupt golden fixture %s: %v", name, err)
	}
	return b
}

func writeGolden(t *testing.T, name string, b []byte) {
	t.Helper()
	var sb strings.Builder
	fmt.Fprintf(&sb, "# golden checkpoint vector %q — regenerate only on an intentional format bump\n", name)
	for i := 0; i < len(b); i += 16 {
		end := i + 16
		if end > len(b) {
			end = len(b)
		}
		fmt.Fprintf(&sb, "%x\n", b[i:end])
	}
	if err := os.MkdirAll(filepath.Dir(goldenPath(name)), 0o755); err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(goldenPath(name), []byte(sb.String()), 0o644); err != nil {
		t.Fatal(err)
	}
}

// TestGoldenCheckpointVectors pins today's Writer output to the fixtures.
func TestGoldenCheckpointVectors(t *testing.T) {
	for _, v := range goldenVectors(t) {
		t.Run(v.name, func(t *testing.T) {
			if *update {
				writeGolden(t, v.name, v.bytes)
				return
			}
			want := readGolden(t, v.name)
			if !bytes.Equal(v.bytes, want) {
				t.Fatalf("checkpoint format changed for %s:\n got %x\nwant %x\n"+
					"If intentional, bump Version and regenerate with -update.",
					v.name, v.bytes, want)
			}
		})
	}
}

// TestGoldenCheckpointsStillRestore reads the pinned bytes through the real
// Reader: old checkpoints must not just match, they must still restore.
func TestGoldenCheckpointsStillRestore(t *testing.T) {
	if *update {
		t.Skip("fixtures being rewritten")
	}
	r, err := NewReader(bytes.NewReader(readGolden(t, "scalars")))
	if err != nil {
		t.Fatal(err)
	}
	if v, err := r.Uint64("it"); err != nil || v != 17 {
		t.Errorf("it = %d, %v", v, err)
	}
	if v, err := r.Float64("tol"); err != nil || v != 1e-9 {
		t.Errorf("tol = %v, %v", v, err)
	}
	r, err = NewReader(bytes.NewReader(readGolden(t, "vectors")))
	if err != nil {
		t.Fatal(err)
	}
	edge, err := r.Float64s("edge")
	if err != nil || len(edge) != 4 {
		t.Fatalf("edge = %v, %v", edge, err)
	}
	if !math.IsInf(edge[0], 1) || !math.IsInf(edge[1], -1) ||
		math.Float64bits(edge[2]) != math.Float64bits(math.Copysign(0, -1)) ||
		edge[3] != math.MaxFloat64 {
		t.Errorf("edge values = %v", edge)
	}
	r, err = NewReader(bytes.NewReader(readGolden(t, "raw")))
	if err != nil {
		t.Fatal(err)
	}
	if b, err := r.Bytes("blob"); err != nil || !bytes.Equal(b, []byte{0x00, 0x01, 0xFE, 0xFF}) {
		t.Errorf("blob = %x, %v", b, err)
	}
}
