package ckpt

import (
	"bytes"
	"math"
	"math/rand"
	"sync"
	"testing"

	"repro/internal/cca/collective"
	"repro/internal/mpi"
)

// chunksOf splits a global array into per-cohort-rank chunks of a side.
func chunksOf(side collective.Side, global []float64) [][]float64 {
	chunks := make([][]float64, len(side.WorldRanks))
	for i := range chunks {
		chunks[i] = make([]float64, side.Map.LocalLen(i))
	}
	for _, run := range side.Map.Runs() {
		copy(chunks[run.Rank][run.Local:], global[run.Global.Lo:run.Global.Hi])
	}
	return chunks
}

// gatherScatterRoundTrip checkpoints a distributed array through Gather,
// restores it through Scatter onto a different set of chunks, and asserts
// every element comes back bit-identical.
func gatherScatterRoundTrip(t *testing.T, nRanks int, side collective.Side, global []float64) {
	t.Helper()
	in := chunksOf(side, global)

	var mu sync.Mutex
	var stream bytes.Buffer
	var rootGathered []float64
	mpi.Run(nRanks, func(c *mpi.Comm) {
		var w *Writer
		if c.Rank() == side.WorldRanks[0] {
			w = NewWriter(&stream)
		}
		var local []float64
		if cr := cohortRank(side, c.Rank()); cr >= 0 {
			local = in[cr]
		}
		out, err := Gather(w, "v", c, side, local)
		if err != nil {
			t.Errorf("rank %d gather: %v", c.Rank(), err)
			return
		}
		if c.Rank() == side.WorldRanks[0] {
			if err := w.Close(); err != nil {
				t.Error(err)
			}
			mu.Lock()
			rootGathered = out
			mu.Unlock()
		} else if out != nil {
			t.Errorf("rank %d: non-root got gathered array", c.Rank())
		}
	})
	if t.Failed() {
		return
	}
	if len(rootGathered) != len(global) {
		t.Fatalf("gathered %d elements, want %d", len(rootGathered), len(global))
	}

	restored := make([][]float64, len(in))
	for i := range restored {
		restored[i] = make([]float64, len(in[i]))
	}
	mpi.Run(nRanks, func(c *mpi.Comm) {
		var r *Reader
		if c.Rank() == side.WorldRanks[0] {
			var err error
			if r, err = NewReader(bytes.NewReader(stream.Bytes())); err != nil {
				t.Error(err)
				return
			}
		}
		var out []float64
		if cr := cohortRank(side, c.Rank()); cr >= 0 {
			out = restored[cr]
		}
		if err := Scatter(r, "v", c, side, out); err != nil {
			t.Errorf("rank %d scatter: %v", c.Rank(), err)
		}
	})
	if t.Failed() {
		return
	}
	for i := range in {
		for j := range in[i] {
			if math.Float64bits(restored[i][j]) != math.Float64bits(in[i][j]) {
				t.Fatalf("rank %d element %d: %x != %x — round trip not bit-identical",
					i, j, math.Float64bits(restored[i][j]), math.Float64bits(in[i][j]))
			}
		}
	}
}

func cohortRank(side collective.Side, worldRank int) int {
	for i, w := range side.WorldRanks {
		if w == worldRank {
			return i
		}
	}
	return -1
}

func TestGatherScatterBlock(t *testing.T) {
	const n = 1000
	rng := rand.New(rand.NewSource(1))
	global := make([]float64, n)
	for i := range global {
		global[i] = rng.NormFloat64()
	}
	gatherScatterRoundTrip(t, 4, collective.Block(n, []int{0, 1, 2, 3}), global)
}

func TestGatherScatterCyclicSubsetCohort(t *testing.T) {
	// The side occupies world ranks 1 and 3 of a 4-rank world, cyclically:
	// the plan must route chunks to the right owners even when cohort rank
	// and world rank differ and some world ranks hold nothing.
	const n = 257 // odd, not divisible: exercises ragged chunks
	rng := rand.New(rand.NewSource(2))
	global := make([]float64, n)
	for i := range global {
		global[i] = rng.NormFloat64()
	}
	gatherScatterRoundTrip(t, 4, collective.Cyclic(n, 8, []int{1, 3}), global)
}

func TestGatherScatter64MiB(t *testing.T) {
	// Acceptance criterion: a 64 MiB distributed array (8 Mi float64)
	// round-trips bit-identically through the redistribution path.
	if testing.Short() {
		t.Skip("64 MiB round trip skipped in -short")
	}
	const n = 8 << 20
	rng := rand.New(rand.NewSource(3))
	global := make([]float64, n)
	for i := range global {
		global[i] = rng.NormFloat64()
	}
	gatherScatterRoundTrip(t, 4, collective.Block(n, []int{0, 1, 2, 3}), global)
}

func TestGatherScatterErrors(t *testing.T) {
	mpi.Run(1, func(c *mpi.Comm) {
		if _, err := Gather(nil, "v", c, collective.Side{}, nil); err == nil {
			t.Error("gather on empty side succeeded")
		}
		if err := Scatter(nil, "v", c, collective.Side{}, nil); err == nil {
			t.Error("scatter on empty side succeeded")
		}
		// Root rank without a reader is a contract violation, not a hang.
		side := collective.Serial(4, 0)
		if err := Scatter(nil, "v", c, side, make([]float64, 4)); err == nil {
			t.Error("rootless scatter succeeded")
		}
	})

	// A section whose length disagrees with the side is refused before any
	// rank unpacks a byte.
	raw := writeStream(t, func(w *Writer) { w.Float64s("v", []float64{1, 2}) })
	mpi.Run(1, func(c *mpi.Comm) {
		r, err := NewReader(bytes.NewReader(raw))
		if err != nil {
			t.Fatal(err)
		}
		side := collective.Serial(4, 0)
		if err := Scatter(r, "v", c, side, make([]float64, 4)); err == nil {
			t.Error("wrong-length scatter succeeded")
		}
	})
}
