package ckpt

import (
	"bytes"
	"encoding/binary"
	"errors"
	"io"
	"math"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

// writeStream builds a small checkpoint stream in memory.
func writeStream(t *testing.T, fn func(w *Writer)) []byte {
	t.Helper()
	var buf bytes.Buffer
	w := NewWriter(&buf)
	fn(w)
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}
	return buf.Bytes()
}

func TestRoundTrip(t *testing.T) {
	vec := []float64{1, 2.5, -3, math.Pi, math.Inf(1), math.Copysign(0, -1)}
	raw := writeStream(t, func(w *Writer) {
		w.Uint64("it", 42)
		w.Float64("tol", 1e-9)
		w.Float64s("x", vec)
		w.Section("blob", []byte("opaque"))
		w.Float64s("empty", nil)
	})
	r, err := NewReader(bytes.NewReader(raw))
	if err != nil {
		t.Fatal(err)
	}
	if r.Version() != Version {
		t.Errorf("version = %d, want %d", r.Version(), Version)
	}
	if got := r.Names(); len(got) != 5 || got[0] != "it" || got[4] != "empty" {
		t.Errorf("names = %v", got)
	}
	if v, err := r.Uint64("it"); err != nil || v != 42 {
		t.Errorf("it = %d, %v", v, err)
	}
	if v, err := r.Float64("tol"); err != nil || v != 1e-9 {
		t.Errorf("tol = %v, %v", v, err)
	}
	x, err := r.Float64s("x")
	if err != nil || len(x) != len(vec) {
		t.Fatalf("x = %v, %v", x, err)
	}
	for i := range vec {
		// Bit comparison: ±Inf, negative zero, and every mantissa must
		// survive exactly.
		if math.Float64bits(x[i]) != math.Float64bits(vec[i]) {
			t.Errorf("x[%d] = %x, want %x", i, math.Float64bits(x[i]), math.Float64bits(vec[i]))
		}
	}
	if b, err := r.Bytes("blob"); err != nil || string(b) != "opaque" {
		t.Errorf("blob = %q, %v", b, err)
	}
	if v, err := r.Float64s("empty"); err != nil || len(v) != 0 {
		t.Errorf("empty = %v, %v", v, err)
	}
	if _, err := r.Bytes("ghost"); !errors.Is(err, ErrNoSection) {
		t.Errorf("missing section error = %v", err)
	}
}

func TestEmptyStream(t *testing.T) {
	raw := writeStream(t, func(*Writer) {})
	r, err := NewReader(bytes.NewReader(raw))
	if err != nil {
		t.Fatal(err)
	}
	if len(r.Names()) != 0 {
		t.Errorf("names = %v", r.Names())
	}
}

func TestWriterRejects(t *testing.T) {
	var buf bytes.Buffer
	w := NewWriter(&buf)
	if err := w.Section("dup", []byte{1}); err != nil {
		t.Fatal(err)
	}
	if err := w.Section("dup", []byte{2}); !errors.Is(err, ErrFormat) {
		t.Errorf("duplicate section error = %v", err)
	}
	// The error is sticky: every later call reports it, including Close.
	if err := w.Section("other", nil); !errors.Is(err, ErrFormat) {
		t.Errorf("post-error section = %v", err)
	}
	if err := w.Close(); !errors.Is(err, ErrFormat) {
		t.Errorf("close after error = %v", err)
	}

	w = NewWriter(&buf)
	if err := w.Section("", nil); !errors.Is(err, ErrFormat) {
		t.Errorf("empty name error = %v", err)
	}
	w = NewWriter(&buf)
	if err := w.Section(strings.Repeat("n", endMarker), nil); !errors.Is(err, ErrFormat) {
		t.Errorf("long name error = %v", err)
	}
	w = NewWriter(&buf)
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}
	if err := w.Section("late", nil); !errors.Is(err, ErrFormat) {
		t.Errorf("section after close = %v", err)
	}
	if err := w.Close(); !errors.Is(err, ErrFormat) {
		t.Errorf("second close reports sticky error = %v", err)
	}
}

// failAfter errors once n bytes have been written — an io-level crash.
type failAfter struct {
	n int
}

func (f *failAfter) Write(p []byte) (int, error) {
	if f.n <= 0 {
		return 0, errors.New("disk full")
	}
	if len(p) > f.n {
		n := f.n
		f.n = 0
		return n, errors.New("disk full")
	}
	f.n -= len(p)
	return len(p), nil
}

func TestWriterIOErrorIsSticky(t *testing.T) {
	w := NewWriter(&failAfter{n: 10})
	err := w.Float64s("x", make([]float64, 100))
	if err == nil {
		t.Fatal("write through failing writer succeeded")
	}
	if cerr := w.Close(); cerr == nil {
		t.Fatal("Close after io error succeeded")
	}
}

func TestReaderCorruption(t *testing.T) {
	good := writeStream(t, func(w *Writer) {
		w.Uint64("it", 7)
		w.Float64s("x", []float64{1, 2, 3})
	})

	check := func(name string, raw []byte, want error) {
		t.Helper()
		if _, err := NewReader(bytes.NewReader(raw)); !errors.Is(err, want) {
			t.Errorf("%s: error = %v, want %v", name, err, want)
		}
	}

	check("empty input", nil, ErrTruncated)
	check("bad magic", append([]byte("NOPE"), good[4:]...), ErrMagic)

	future := append([]byte(nil), good...)
	binary.LittleEndian.PutUint16(future[4:6], Version+1)
	check("version from the future", future, ErrVersion)

	// Truncations at every interesting boundary: inside the header, inside
	// a section name, inside a payload, and — the case the trailer exists
	// for — a clean cut right at a section boundary.
	check("cut header", good[:6], ErrTruncated)
	check("cut in first section", good[:12], ErrTruncated)
	check("cut at section boundary", good[:len(good)-2], ErrTruncated)
	trailerless := good[:len(good)-2]
	check("missing trailer", trailerless, ErrTruncated)

	flipped := append([]byte(nil), good...)
	flipped[len(flipped)-10] ^= 0x40 // a payload byte of "x"
	check("bad payload CRC", flipped, ErrCRC)

	nameFlip := append([]byte(nil), good...)
	nameFlip[10] ^= 0x01 // first byte of the "it" section name
	check("bad name CRC", nameFlip, ErrCRC)

	zeroName := append([]byte(nil), good[:8]...)
	zeroName = append(zeroName, 0, 0)
	check("zero-length name", zeroName, ErrFormat)

	huge := append([]byte(nil), good[:8]...)
	huge = append(huge, 1, 0, 'q')
	huge = binary.LittleEndian.AppendUint64(huge, maxSectionLen+1)
	check("oversized section claim", huge, ErrFormat)

	// A duplicated section is corruption, not a merge.
	section := good[8 : len(good)-2]
	dup := append([]byte(nil), good[:8]...)
	dup = append(dup, section...)
	dup = append(dup, section...)
	dup = append(dup, good[len(good)-2:]...)
	check("duplicate section", dup, ErrFormat)
}

func TestReaderSectionShapeErrors(t *testing.T) {
	raw := writeStream(t, func(w *Writer) {
		w.Section("short", []byte{1, 2, 3})
		w.Section("badvec", append(binary.LittleEndian.AppendUint64(nil, 5), 1, 2, 3))
	})
	r, err := NewReader(bytes.NewReader(raw))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := r.Uint64("short"); !errors.Is(err, ErrFormat) {
		t.Errorf("Uint64 on 3-byte section = %v", err)
	}
	if _, err := r.Float64s("short"); !errors.Is(err, ErrFormat) {
		t.Errorf("Float64s on 3-byte section = %v", err)
	}
	if _, err := r.Float64s("badvec"); !errors.Is(err, ErrFormat) {
		t.Errorf("Float64s with lying count = %v", err)
	}
}

func TestFloat64sCountOverflow(t *testing.T) {
	// A crafted (CRC-valid) section whose count makes 8*n wrap past 2⁶⁴
	// must fail with the typed ErrFormat, not slip through a multiplied
	// length check and panic in make().
	raw := writeStream(t, func(w *Writer) {
		w.Section("wrap", binary.LittleEndian.AppendUint64(nil, 1<<61))
		w.Section("ragged", append(binary.LittleEndian.AppendUint64(nil, 1), 1, 2, 3, 4, 5, 6, 7, 8, 9))
	})
	r, err := NewReader(bytes.NewReader(raw))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := r.Float64s("wrap"); !errors.Is(err, ErrFormat) {
		t.Errorf("Float64s with wrapping count = %v, want ErrFormat", err)
	}
	if _, err := r.Float64s("ragged"); !errors.Is(err, ErrFormat) {
		t.Errorf("Float64s with ragged payload = %v, want ErrFormat", err)
	}
}

// memComponent is a minimal Checkpointable for the file and byte contracts.
type memComponent struct {
	v    []float64
	seq  uint64
	fail bool
}

func (m *memComponent) Checkpoint(wr io.Writer) error {
	if m.fail {
		return errors.New("component refused")
	}
	w := NewWriter(wr)
	w.Uint64("seq", m.seq)
	w.Float64s("v", m.v)
	return w.Close()
}

func (m *memComponent) Restore(rd io.Reader) error {
	r, err := NewReader(rd)
	if err != nil {
		return err
	}
	if m.seq, err = r.Uint64("seq"); err != nil {
		return err
	}
	m.v, err = r.Float64s("v")
	return err
}

func TestMarshalUnmarshal(t *testing.T) {
	src := &memComponent{v: []float64{4, 5, 6}, seq: 9}
	state, err := Marshal(src)
	if err != nil {
		t.Fatal(err)
	}
	var dst memComponent
	if err := Unmarshal(state, &dst); err != nil {
		t.Fatal(err)
	}
	if dst.seq != 9 || len(dst.v) != 3 || dst.v[2] != 6 {
		t.Errorf("restored = %+v", dst)
	}
	if err := Unmarshal(state[:len(state)-3], &dst); !errors.Is(err, ErrTruncated) {
		t.Errorf("truncated unmarshal = %v", err)
	}
}

func TestSaveLoadFile(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "solver.ckpt")
	if err := SaveFile(path, func(w *Writer) error {
		return w.Uint64("gen", 1)
	}); err != nil {
		t.Fatal(err)
	}
	var gen uint64
	if err := LoadFile(path, func(r *Reader) (err error) {
		gen, err = r.Uint64("gen")
		return
	}); err != nil || gen != 1 {
		t.Fatalf("load: gen=%d err=%v", gen, err)
	}
}

func TestSaveFileAtomicOnError(t *testing.T) {
	// A failing checkpoint must leave the previous file untouched and no
	// temp debris — the mid-Checkpoint-crash half of the atomic contract.
	dir := t.TempDir()
	path := filepath.Join(dir, "solver.ckpt")
	if err := SaveTo(path, &memComponent{seq: 1}); err != nil {
		t.Fatal(err)
	}
	before, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}

	if err := SaveTo(path, &memComponent{seq: 2, fail: true}); err == nil {
		t.Fatal("failing checkpoint reported success")
	}
	if err := SaveFile(path, func(w *Writer) error {
		w.Uint64("gen", 3)
		return errors.New("crash mid-checkpoint")
	}); err == nil {
		t.Fatal("failing SaveFile reported success")
	}

	after, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(before, after) {
		t.Error("failed checkpoint modified the previous file")
	}
	entries, err := os.ReadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	for _, e := range entries {
		if e.Name() != "solver.ckpt" {
			t.Errorf("stray file after failed save: %s", e.Name())
		}
	}

	var got memComponent
	if err := LoadInto(path, &got); err != nil || got.seq != 1 {
		t.Errorf("previous checkpoint unreadable: seq=%d err=%v", got.seq, err)
	}
}

func TestLoadFilePartial(t *testing.T) {
	// A partial file under the real path (simulating a non-atomic writer or
	// torn copy) is detected as truncation, never half-applied.
	dir := t.TempDir()
	path := filepath.Join(dir, "torn.ckpt")
	raw := writeStream(t, func(w *Writer) {
		w.Float64s("x", []float64{1, 2, 3, 4})
	})
	if err := os.WriteFile(path, raw[:len(raw)-7], 0o644); err != nil {
		t.Fatal(err)
	}
	victim := &memComponent{seq: 77, v: []float64{9}}
	if err := LoadInto(path, victim); !errors.Is(err, ErrTruncated) {
		t.Errorf("torn file load = %v", err)
	}
	if victim.seq != 77 || len(victim.v) != 1 {
		t.Errorf("torn load mutated component: %+v", victim)
	}
	if err := LoadFile(filepath.Join(dir, "missing.ckpt"), func(*Reader) error { return nil }); err == nil {
		t.Error("missing file load succeeded")
	}
}
