// Package sreflect is the SIDL runtime's reflection and dynamic-method-
// invocation support, modeled — as the paper specifies in §5 — "based on
// the design of the Java library classes in java.lang and
// java.lang.reflect": "Interface information for dynamically loaded
// components is often unavailable at compile time; thus, components and the
// associated composition tools and frameworks must discover, query, and
// execute methods at run time."
//
// TypeInfo metadata is registered either by generated code (codegen's
// Reflection option) or directly from a resolved sidl.Table via FromTable.
// Invoke performs dynamic method invocation against any Go implementation
// using the standard reflect package.
package sreflect

import (
	"errors"
	"fmt"
	"reflect"
	"sort"
	"sync"

	"repro/internal/sidl"
)

// Errors reported by the reflection runtime.
var (
	ErrNoType     = errors.New("sreflect: unknown type")
	ErrNoMethod   = errors.New("sreflect: unknown method")
	ErrBadArgs    = errors.New("sreflect: argument mismatch")
	ErrNotBound   = errors.New("sreflect: object does not implement method")
	ErrRegistered = errors.New("sreflect: type already registered")
)

// ParamInfo describes one parameter of a SIDL method.
type ParamInfo struct {
	Name string
	Type string // SIDL type spelling, e.g. "array<double,1>"
	Mode string // "in", "out", or "inout"
}

// MethodInfo describes one method of a SIDL interface.
type MethodInfo struct {
	Name   string // SIDL name ("solve")
	GoName string // Go binding name ("Solve")
	Ret    string // SIDL return type spelling
	Owner  string // qualified name of the declaring interface
	Params []ParamInfo
	Static bool
}

// TypeInfo is the reflection record of one SIDL type.
type TypeInfo struct {
	QName   string
	Kind    string // "interface", "class", or "enum"
	Extends []string
	Methods []MethodInfo
}

// Method finds a method by SIDL name.
func (t *TypeInfo) Method(name string) (*MethodInfo, bool) {
	for i := range t.Methods {
		if t.Methods[i].Name == name {
			return &t.Methods[i], true
		}
	}
	return nil, false
}

// Registry holds reflection metadata for a set of SIDL types. The zero
// value is unusable; use NewRegistry. Global is the process-wide registry
// that generated bindings register into.
type Registry struct {
	mu    sync.RWMutex
	types map[string]*TypeInfo
}

// Global is the process-wide registry used by generated code.
var Global = NewRegistry()

// NewRegistry creates an empty registry.
func NewRegistry() *Registry {
	return &Registry{types: map[string]*TypeInfo{}}
}

// Register adds a type record. Re-registering an identical QName replaces
// the record (generated files may be re-initialized in tests).
func (r *Registry) Register(t *TypeInfo) {
	r.mu.Lock()
	r.types[t.QName] = t
	r.mu.Unlock()
}

// Lookup finds a type record by qualified name.
func (r *Registry) Lookup(qname string) (*TypeInfo, bool) {
	r.mu.RLock()
	defer r.mu.RUnlock()
	t, ok := r.types[qname]
	return t, ok
}

// Types lists registered qualified names, sorted.
func (r *Registry) Types() []string {
	r.mu.RLock()
	defer r.mu.RUnlock()
	out := make([]string, 0, len(r.types))
	for q := range r.types {
		out = append(out, q)
	}
	sort.Strings(out)
	return out
}

// IsSubtype reports whether sub extends super transitively within the
// registered metadata (both names inclusive).
func (r *Registry) IsSubtype(sub, super string) bool {
	if sub == super {
		return true
	}
	r.mu.RLock()
	defer r.mu.RUnlock()
	return r.isSubtypeLocked(sub, super, map[string]bool{})
}

func (r *Registry) isSubtypeLocked(sub, super string, seen map[string]bool) bool {
	if sub == super {
		return true
	}
	if seen[sub] {
		return false
	}
	seen[sub] = true
	t, ok := r.types[sub]
	if !ok {
		return false
	}
	for _, e := range t.Extends {
		if r.isSubtypeLocked(e, super, seen) {
			return true
		}
	}
	return false
}

// FromTable converts a resolved SIDL table into reflection records — the
// compiler-side path for tools that have the table in hand (repository,
// ccafe) rather than generated init functions.
func FromTable(t *sidl.Table) []*TypeInfo {
	var out []*TypeInfo
	for _, q := range t.Order {
		switch t.Lookup(q) {
		case "interface":
			iface := t.Interfaces[q]
			ti := &TypeInfo{QName: q, Kind: "interface"}
			for _, e := range iface.Extends {
				ti.Extends = append(ti.Extends, e.QName)
			}
			for _, m := range iface.Methods {
				ti.Methods = append(ti.Methods, methodInfo(m))
			}
			out = append(out, ti)
		case "class":
			cls := t.Classes[q]
			ti := &TypeInfo{QName: q, Kind: "class"}
			if cls.Base != nil {
				ti.Extends = append(ti.Extends, cls.Base.QName)
			}
			for _, i := range cls.Implements {
				ti.Extends = append(ti.Extends, i.QName)
			}
			for _, m := range cls.Methods {
				ti.Methods = append(ti.Methods, methodInfo(m))
			}
			out = append(out, ti)
		case "enum":
			out = append(out, &TypeInfo{QName: q, Kind: "enum"})
		}
	}
	return out
}

func methodInfo(m *sidl.Method) MethodInfo {
	mi := MethodInfo{
		Name:   m.Decl.Name,
		GoName: goExport(m.Decl.Name),
		Ret:    m.Decl.Ret.String(),
		Owner:  m.Owner,
		Static: m.Decl.Static,
	}
	for _, p := range m.Decl.Params {
		mi.Params = append(mi.Params, ParamInfo{Name: p.Name, Type: p.Type.String(), Mode: p.Mode.String()})
	}
	return mi
}

func goExport(s string) string {
	if s == "" {
		return s
	}
	return string(s[0]&^0x20) + s[1:]
}

// RegisterTable registers every type of a resolved table.
func (r *Registry) RegisterTable(t *sidl.Table) {
	for _, ti := range FromTable(t) {
		r.Register(ti)
	}
}

// errorType is the reflect.Type of the error interface.
var errorType = reflect.TypeOf((*error)(nil)).Elem()

// ErrInvoke wraps an error raised by the invoked implementation (the SIDL
// throws path surfaced through dynamic invocation).
var ErrInvoke = errors.New("sreflect: invocation raised")

// Invoke performs dynamic method invocation: it calls the Go method named
// m.GoName on obj with the given arguments and returns the results. This is
// the §5 DMI path — slower than the generated stub (measured by experiment
// E7) but requiring no compile-time knowledge of the interface.
//
// Two SIDL conventions are honoured so DMI works across marshaling
// boundaries (the ORB and distributed ports):
//
//   - inout parameters: when a formal parameter is *T and the supplied
//     argument is a T value, a fresh pointer is passed and the final
//     pointee is appended to the results (by-value inout round trip);
//   - throws clauses: a trailing error return is stripped from the
//     results; a non-nil error aborts the invocation with ErrInvoke.
func Invoke(obj any, m *MethodInfo, args ...any) ([]any, error) {
	v := reflect.ValueOf(obj)
	meth := v.MethodByName(m.GoName)
	if !meth.IsValid() {
		return nil, fmt.Errorf("%w: %T has no method %s", ErrNotBound, obj, m.GoName)
	}
	return invokeMethod(meth, m, args)
}

// invokeMethod is the call half of Invoke, operating on an already-resolved
// method value — Object caches these, since MethodByName rebuilds the
// method wrapper (a reflect.FuncOf construction) on every lookup.
func invokeMethod(meth reflect.Value, m *MethodInfo, args []any) ([]any, error) {
	mt := meth.Type()
	if mt.NumIn() != len(args) && !mt.IsVariadic() {
		return nil, fmt.Errorf("%w: %s takes %d arguments, got %d", ErrBadArgs, m.GoName, mt.NumIn(), len(args))
	}
	in := make([]reflect.Value, len(args))
	var inoutPtrs []reflect.Value
	for i, a := range args {
		want := mt.In(i)
		if a == nil {
			zero := reflect.Zero(want)
			if want.Kind() == reflect.Ptr {
				// nil inout: pass a fresh pointer so implementations can
				// always write through it, and return the result.
				p := reflect.New(want.Elem())
				in[i] = p
				inoutPtrs = append(inoutPtrs, p)
				continue
			}
			in[i] = zero
			continue
		}
		av := reflect.ValueOf(a)
		switch {
		case av.Type().AssignableTo(want):
			in[i] = av
		case want.Kind() == reflect.Ptr && av.Type().AssignableTo(want.Elem()):
			// inout by value: box into a pointer and report back.
			p := reflect.New(want.Elem())
			p.Elem().Set(av)
			in[i] = p
			inoutPtrs = append(inoutPtrs, p)
		case av.Type().ConvertibleTo(want):
			in[i] = av.Convert(want)
		default:
			return nil, fmt.Errorf("%w: %s argument %d: have %s, want %s", ErrBadArgs, m.GoName, i, av.Type(), want)
		}
	}
	outs := meth.Call(in)
	// Trailing error return = SIDL throws.
	if n := mt.NumOut(); n > 0 && mt.Out(n-1).Implements(errorType) {
		last := outs[n-1]
		if !last.IsNil() {
			return nil, fmt.Errorf("%w: %s: %v", ErrInvoke, m.GoName, last.Interface())
		}
		outs = outs[:n-1]
	}
	res := make([]any, 0, len(outs)+len(inoutPtrs))
	for _, o := range outs {
		res = append(res, o.Interface())
	}
	for _, p := range inoutPtrs {
		res = append(res, p.Elem().Interface())
	}
	return res, nil
}

// Object binds an implementation to its reflection record for repeated
// dynamic calls — the runtime handle composition tools hold for a
// dynamically loaded component.
type Object struct {
	Info *TypeInfo
	Impl any
	// meths caches the bound method values by SIDL method name: resolving a
	// method through MethodByName costs a linear scan plus a fresh wrapper
	// construction per call, which dominates hot dispatch paths.
	meths map[string]reflect.Value
	// funcs caches each bound method extracted as a plain func value, so
	// Call can monomorphize common signatures (see fastCall) instead of
	// paying reflect.Value.Call's per-invocation frame allocation.
	funcs map[string]any
}

// Skeleton is an optional interface a servant implements to hand the
// runtime direct func values for its hottest methods — the moral
// equivalent of Babel's generated IOR skeletons in the CCA toolchain,
// with reflection as the fallback for everything unbound. BindSkeleton
// is called once, at NewObject time; each fn must have one of the
// fastCall signatures and replaces the reflect method value for that
// SIDL method in both Call and CallSink dispatch. The difference is not
// just speed: a reflect-made method value allocates a receiver frame on
// every invocation, so a servant that wants to sit under the ORB's
// zero-allocation path (Client.InvokeArena) must bind skeletons.
type Skeleton interface {
	BindSkeleton(bind func(sidlName string, fn any))
}

// NewObject validates that impl is invocable for every method of the type
// (arity-level check) and returns the dynamic handle with every method
// value pre-resolved.
func NewObject(info *TypeInfo, impl any) (*Object, error) {
	v := reflect.ValueOf(impl)
	meths := make(map[string]reflect.Value, len(info.Methods))
	funcs := make(map[string]any, len(info.Methods))
	for i := range info.Methods {
		m := &info.Methods[i]
		mv := v.MethodByName(m.GoName)
		if !mv.IsValid() {
			return nil, fmt.Errorf("%w: %T lacks %s (for %s.%s)", ErrNotBound, impl, m.GoName, info.QName, m.Name)
		}
		meths[m.Name] = mv
		funcs[m.Name] = mv.Interface()
	}
	if sk, ok := impl.(Skeleton); ok {
		sk.BindSkeleton(func(name string, fn any) {
			// Only methods that passed validation above may be rebound;
			// a typo in a skeleton name silently keeping reflect dispatch
			// would be miserable to debug, so unknown names panic.
			if _, known := funcs[name]; !known {
				panic(fmt.Sprintf("sreflect: skeleton binds unknown method %q on %s", name, info.QName))
			}
			funcs[name] = fn
		})
	}
	return &Object{Info: info, Impl: impl, meths: meths, funcs: funcs}, nil
}

// ResultSink receives the results of a dynamic invocation one typed value
// at a time, so a caller that marshals results (the ORB's reply encoder)
// can take them without an []any allocation or interface boxing. Methods
// are named for the result type they accept.
type ResultSink interface {
	ResultFloat64(float64)
	ResultInt32(int32)
	ResultString(string)
}

// CallSink invokes a method by SIDL name, delivering results directly to
// sink. It handles exactly the monomorphic signatures fastCall does —
// handled reports whether the call ran; when it is false nothing was
// invoked and the caller should fall back to Call. A handled call with
// these signatures cannot fail, so err is reserved for future error-
// returning fast paths.
func (o *Object) CallSink(method string, args []any, sink ResultSink) (handled bool, err error) {
	f, ok := o.funcs[method]
	if !ok {
		return false, nil
	}
	switch fn := f.(type) {
	case func():
		if len(args) == 0 {
			fn()
			return true, nil
		}
	case func() float64:
		if len(args) == 0 {
			sink.ResultFloat64(fn())
			return true, nil
		}
	case func(float64) float64:
		if len(args) == 1 {
			if a, ok := args[0].(float64); ok {
				sink.ResultFloat64(fn(a))
				return true, nil
			}
		}
	case func(float64, float64) float64:
		if len(args) == 2 {
			a, ok1 := args[0].(float64)
			b, ok2 := args[1].(float64)
			if ok1 && ok2 {
				sink.ResultFloat64(fn(a, b))
				return true, nil
			}
		}
	case func([]float64) float64:
		if len(args) == 1 {
			if xs, ok := args[0].([]float64); ok {
				sink.ResultFloat64(fn(xs))
				return true, nil
			}
		}
	case func([]float64):
		if len(args) == 1 {
			if xs, ok := args[0].([]float64); ok {
				fn(xs)
				return true, nil
			}
		}
	case func(int32, []float64):
		if len(args) == 2 {
			a, ok1 := args[0].(int32)
			xs, ok2 := args[1].([]float64)
			if ok1 && ok2 {
				fn(a, xs)
				return true, nil
			}
		}
	case func(string) string:
		if len(args) == 1 {
			if s, ok := args[0].(string); ok {
				sink.ResultString(fn(s))
				return true, nil
			}
		}
	case func(int32) int32:
		if len(args) == 1 {
			if a, ok := args[0].(int32); ok {
				sink.ResultInt32(fn(a))
				return true, nil
			}
		}
	}
	return false, nil
}

// Call invokes a method by SIDL name.
func (o *Object) Call(method string, args ...any) ([]any, error) {
	m, ok := o.Info.Method(method)
	if !ok {
		return nil, fmt.Errorf("%w: %s.%s", ErrNoMethod, o.Info.QName, method)
	}
	if f, ok := o.funcs[method]; ok {
		if out, handled, err := fastCall(f, args); handled {
			return out, err
		}
	}
	if mv, ok := o.meths[method]; ok {
		return invokeMethod(mv, m, args)
	}
	return Invoke(o.Impl, m, args...)
}

// fastCall dispatches methods whose Go signature matches one of the common
// scalar/array shapes of SIDL interfaces through a direct typed call —
// a monomorphic thunk, skipping reflect.Value.Call and its per-invocation
// argument frame. Signatures outside the set report handled == false and
// take the generic reflect path; a fast path is only taken when every
// argument matches the formal type exactly, so the reflect path's
// conversion and inout conventions are unaffected.
func fastCall(f any, args []any) (out []any, handled bool, err error) {
	switch fn := f.(type) {
	case func():
		if len(args) == 0 {
			fn()
			return nil, true, nil
		}
	case func() float64:
		if len(args) == 0 {
			return []any{fn()}, true, nil
		}
	case func(float64) float64:
		if len(args) == 1 {
			if a, ok := args[0].(float64); ok {
				return []any{fn(a)}, true, nil
			}
		}
	case func(float64, float64) float64:
		if len(args) == 2 {
			a, ok1 := args[0].(float64)
			b, ok2 := args[1].(float64)
			if ok1 && ok2 {
				return []any{fn(a, b)}, true, nil
			}
		}
	case func([]float64) float64:
		if len(args) == 1 {
			if xs, ok := args[0].([]float64); ok {
				return []any{fn(xs)}, true, nil
			}
		}
	case func([]float64):
		if len(args) == 1 {
			if xs, ok := args[0].([]float64); ok {
				fn(xs)
				return nil, true, nil
			}
		}
	case func(int32, []float64):
		if len(args) == 2 {
			a, ok1 := args[0].(int32)
			xs, ok2 := args[1].([]float64)
			if ok1 && ok2 {
				fn(a, xs)
				return nil, true, nil
			}
		}
	case func(string) string:
		if len(args) == 1 {
			if s, ok := args[0].(string); ok {
				return []any{fn(s)}, true, nil
			}
		}
	case func(int32) int32:
		if len(args) == 1 {
			if a, ok := args[0].(int32); ok {
				return []any{fn(a)}, true, nil
			}
		}
	}
	return nil, false, nil
}
