package sreflect

import (
	"errors"
	"testing"

	"repro/internal/sidl"
)

const corpus = `
package esi {
  interface Object { string typeName(); }
  interface Vector extends Object {
    int length();
    double dot(in array<double,1> other);
  }
  class VecImpl implements-all Vector {}
  enum Norm { One, Two }
}
`

func table(t *testing.T) *sidl.Table {
	t.Helper()
	f, err := sidl.Parse(corpus)
	if err != nil {
		t.Fatal(err)
	}
	tbl, err := sidl.Resolve(f)
	if err != nil {
		t.Fatal(err)
	}
	return tbl
}

func TestFromTableShapes(t *testing.T) {
	infos := FromTable(table(t))
	byName := map[string]*TypeInfo{}
	for _, ti := range infos {
		byName[ti.QName] = ti
	}
	vec := byName["esi.Vector"]
	if vec == nil || vec.Kind != "interface" {
		t.Fatalf("esi.Vector = %+v", vec)
	}
	if len(vec.Methods) != 3 { // typeName, length, dot
		t.Fatalf("vector methods = %+v", vec.Methods)
	}
	m, ok := vec.Method("dot")
	if !ok || m.GoName != "Dot" || m.Ret != "double" {
		t.Errorf("dot = %+v", m)
	}
	if len(m.Params) != 1 || m.Params[0].Type != "array<double,1>" || m.Params[0].Mode != "in" {
		t.Errorf("dot params = %+v", m.Params)
	}
	if byName["esi.Norm"].Kind != "enum" {
		t.Errorf("norm kind = %s", byName["esi.Norm"].Kind)
	}
	cls := byName["esi.VecImpl"]
	if cls.Kind != "class" || len(cls.Extends) != 1 || cls.Extends[0] != "esi.Vector" {
		t.Errorf("class = %+v", cls)
	}
}

func TestRegistrySubtype(t *testing.T) {
	r := NewRegistry()
	r.RegisterTable(table(t))
	cases := []struct {
		sub, super string
		want       bool
	}{
		{"esi.Vector", "esi.Object", true},
		{"esi.Vector", "esi.Vector", true},
		{"esi.VecImpl", "esi.Object", true},
		{"esi.Object", "esi.Vector", false},
		{"esi.Missing", "esi.Object", false},
	}
	for _, tc := range cases {
		if got := r.IsSubtype(tc.sub, tc.super); got != tc.want {
			t.Errorf("IsSubtype(%s,%s) = %v", tc.sub, tc.super, got)
		}
	}
	if got := r.Types(); len(got) != 4 {
		t.Errorf("Types() = %v", got)
	}
}

// vecImpl is a Go implementation to invoke dynamically.
type vecImpl struct {
	data []float64
}

func (v *vecImpl) TypeName() string { return "esi.VecImpl" }
func (v *vecImpl) Length() int32    { return int32(len(v.data)) }
func (v *vecImpl) Dot(other []float64) float64 {
	var s float64
	for i, x := range v.data {
		s += x * other[i]
	}
	return s
}

func TestInvoke(t *testing.T) {
	r := NewRegistry()
	r.RegisterTable(table(t))
	info, ok := r.Lookup("esi.Vector")
	if !ok {
		t.Fatal("esi.Vector not registered")
	}
	obj, err := NewObject(info, &vecImpl{data: []float64{1, 2, 3}})
	if err != nil {
		t.Fatal(err)
	}
	res, err := obj.Call("dot", []float64{4, 5, 6})
	if err != nil {
		t.Fatal(err)
	}
	if len(res) != 1 || res[0].(float64) != 32 {
		t.Errorf("dot = %v", res)
	}
	res, err = obj.Call("length")
	if err != nil || res[0].(int32) != 3 {
		t.Errorf("length = %v, %v", res, err)
	}
	res, err = obj.Call("typeName")
	if err != nil || res[0].(string) != "esi.VecImpl" {
		t.Errorf("typeName = %v, %v", res, err)
	}
}

func TestInvokeErrors(t *testing.T) {
	r := NewRegistry()
	r.RegisterTable(table(t))
	info, _ := r.Lookup("esi.Vector")
	obj, err := NewObject(info, &vecImpl{})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := obj.Call("nonesuch"); !errors.Is(err, ErrNoMethod) {
		t.Errorf("err = %v", err)
	}
	if _, err := obj.Call("dot"); !errors.Is(err, ErrBadArgs) {
		t.Errorf("missing arg err = %v", err)
	}
	if _, err := obj.Call("dot", "wrong type"); !errors.Is(err, ErrBadArgs) {
		t.Errorf("bad type err = %v", err)
	}
	// Implementation missing a method.
	if _, err := NewObject(info, struct{}{}); !errors.Is(err, ErrNotBound) {
		t.Errorf("unbound err = %v", err)
	}
}

func TestInvokeConvertsCompatibleArgs(t *testing.T) {
	r := NewRegistry()
	r.RegisterTable(table(t))
	info, _ := r.Lookup("esi.Vector")
	obj, err := NewObject(info, &vecImpl{data: []float64{2}})
	if err != nil {
		t.Fatal(err)
	}
	// Pass an int where float64 elements are expected — not convertible.
	if _, err := obj.Call("dot", 5); !errors.Is(err, ErrBadArgs) {
		t.Errorf("err = %v", err)
	}
}

func TestInvokeNilArg(t *testing.T) {
	r := NewRegistry()
	r.RegisterTable(table(t))
	info, _ := r.Lookup("esi.Vector")
	obj, _ := NewObject(info, &vecImpl{})
	res, err := obj.Call("dot", nil)
	if err != nil || res[0].(float64) != 0 {
		t.Errorf("dot(nil) = %v, %v", res, err)
	}
}

// inoutImpl exercises the inout-by-value and throws conventions.
type inoutImpl struct{}

func (inoutImpl) Scale(factor float64, v *[]float64) error {
	if factor == 0 {
		return errors.New("zero factor")
	}
	for i := range *v {
		(*v)[i] *= factor
	}
	return nil
}

func TestInvokeInoutByValue(t *testing.T) {
	mi := &MethodInfo{Name: "scale", GoName: "Scale"}
	// Pass the inout argument BY VALUE (as a marshaling boundary would):
	// the final pointee must come back as an extra result.
	res, err := Invoke(inoutImpl{}, mi, 2.0, []float64{1, 2, 3})
	if err != nil {
		t.Fatal(err)
	}
	if len(res) != 1 {
		t.Fatalf("results = %v", res)
	}
	got := res[0].([]float64)
	if got[0] != 2 || got[2] != 6 {
		t.Errorf("scaled = %v", got)
	}
}

func TestInvokeInoutByPointer(t *testing.T) {
	mi := &MethodInfo{Name: "scale", GoName: "Scale"}
	v := []float64{1, 2}
	res, err := Invoke(inoutImpl{}, mi, 3.0, &v)
	if err != nil {
		t.Fatal(err)
	}
	// Direct pointer: no extra result, mutation in place.
	if len(res) != 0 || v[1] != 6 {
		t.Errorf("res=%v v=%v", res, v)
	}
}

func TestInvokeTrailingErrorBecomesErrInvoke(t *testing.T) {
	mi := &MethodInfo{Name: "scale", GoName: "Scale"}
	_, err := Invoke(inoutImpl{}, mi, 0.0, []float64{1})
	if !errors.Is(err, ErrInvoke) {
		t.Fatalf("err = %v, want ErrInvoke", err)
	}
}

func TestInvokeNilInoutGetsFreshPointer(t *testing.T) {
	mi := &MethodInfo{Name: "scale", GoName: "Scale"}
	res, err := Invoke(inoutImpl{}, mi, 2.0, nil)
	if err != nil {
		t.Fatal(err)
	}
	if len(res) != 1 {
		t.Fatalf("results = %v", res)
	}
	if got := res[0].([]float64); len(got) != 0 {
		t.Errorf("pointee = %v", got)
	}
}
