package sidl

import (
	"errors"
	"fmt"
	"sort"
)

// Semantic errors.
var (
	ErrSemantic  = errors.New("sidl: semantic error")
	ErrRedefined = errors.New("sidl: type redefined")
	ErrUnknown   = errors.New("sidl: unknown type")
	ErrCycle     = errors.New("sidl: inheritance cycle")
	ErrOverload  = errors.New("sidl: method overloading is not allowed")
	ErrOverride  = errors.New("sidl: invalid override")
	ErrAbstract  = errors.New("sidl: unimplemented interface methods")
)

func semErrf(base error, pos Pos, format string, args ...any) error {
	return fmt.Errorf("%w: %s: %s", base, pos, fmt.Sprintf(format, args...))
}

// Method is a resolved method: its declaration plus the fully qualified
// name of the type that declared it.
type Method struct {
	Decl  *MethodDecl
	Owner string
}

// Interface is a resolved SIDL interface.
type Interface struct {
	QName   string
	Pkg     string
	Decl    *InterfaceDecl
	Extends []*Interface
	// Methods is the complete, linearized method set: inherited methods
	// first (in extends order, depth-first, deduplicated), then own
	// methods, each name appearing once. This ordering is the interface's
	// entry-point vector (EPV) layout used by codegen and reflection.
	Methods []*Method
}

// Class is a resolved SIDL class.
type Class struct {
	QName    string
	Pkg      string
	Decl     *ClassDecl
	Base     *Class
	Abstract bool
	// Implements lists directly implemented interfaces (both implements
	// and implements-all clauses).
	Implements []*Interface
	// AllInterfaces is the transitive closure of implemented interfaces,
	// including those of base classes, sorted by qualified name.
	AllInterfaces []*Interface
	// Methods is the class's concrete method table: base-class methods
	// (possibly overridden) then own methods, each name once.
	Methods []*Method
	// AutoImplemented marks method names satisfied by an implements-all
	// clause (generated glue) rather than a declared method.
	AutoImplemented map[string]bool
}

// Enum is a resolved enumeration.
type Enum struct {
	QName string
	Pkg   string
	Decl  *EnumDecl
}

// Package is a resolved SIDL package.
type Package struct {
	Name    string
	Version string
	// TypeNames lists the package's types in declaration order.
	TypeNames []string
}

// Table is the resolved symbol table for a set of SIDL files: the paper's
// repository contents for a component's interface description.
type Table struct {
	Interfaces map[string]*Interface
	Classes    map[string]*Class
	Enums      map[string]*Enum
	Packages   map[string]*Package
	// Order lists all fully qualified type names in a stable order
	// (package declaration order, then declaration order).
	Order []string
}

// Lookup reports the kind ("interface", "class", "enum") of a qualified
// name, or "" when absent.
func (t *Table) Lookup(qname string) string {
	if _, ok := t.Interfaces[qname]; ok {
		return "interface"
	}
	if _, ok := t.Classes[qname]; ok {
		return "class"
	}
	if _, ok := t.Enums[qname]; ok {
		return "enum"
	}
	return ""
}

// IsSubtype reports whether sub is type-compatible with super under SIDL's
// object model: a type is a subtype of itself, of any interface it extends
// (transitively), of any interface it implements (for classes, including
// via base classes), and of any base class. This is the port-compatibility
// relation the paper's §4 defines: "port compatibility is defined as
// object-oriented type compatibility of the port interfaces, as can be
// described in the SIDL."
func (t *Table) IsSubtype(sub, super string) bool {
	if sub == super {
		return true
	}
	if iface, ok := t.Interfaces[sub]; ok {
		for _, e := range iface.Extends {
			if t.IsSubtype(e.QName, super) {
				return true
			}
		}
		return false
	}
	if cls, ok := t.Classes[sub]; ok {
		for _, i := range cls.AllInterfaces {
			if i.QName == super || t.IsSubtype(i.QName, super) {
				return true
			}
		}
		for b := cls.Base; b != nil; b = b.Base {
			if b.QName == super {
				return true
			}
		}
	}
	return false
}

// Resolve semantically analyzes one or more parsed files into a Table.
func Resolve(files ...*File) (*Table, error) {
	r := &resolver{
		t: &Table{
			Interfaces: map[string]*Interface{},
			Classes:    map[string]*Class{},
			Enums:      map[string]*Enum{},
			Packages:   map[string]*Package{},
		},
		declOf: map[string]Decl{},
		pkgOf:  map[string]string{},
	}
	if err := r.collect(files); err != nil {
		return nil, err
	}
	if err := r.resolveAll(); err != nil {
		return nil, err
	}
	return r.t, nil
}

type resolver struct {
	t      *Table
	declOf map[string]Decl
	pkgOf  map[string]string
	// state for cycle detection: 0 unvisited, 1 in progress, 2 done.
	ifaceState map[string]int
	classState map[string]int
}

func (r *resolver) collect(files []*File) error {
	for _, f := range files {
		for _, pkg := range f.Packages {
			p := r.t.Packages[pkg.Name]
			if p == nil {
				p = &Package{Name: pkg.Name, Version: pkg.Version}
				r.t.Packages[pkg.Name] = p
			} else if pkg.Version != "" && p.Version != "" && pkg.Version != p.Version {
				return semErrf(ErrSemantic, pkg.Pos, "package %s declared with versions %s and %s", pkg.Name, p.Version, pkg.Version)
			} else if p.Version == "" {
				p.Version = pkg.Version
			}
			for _, d := range pkg.Decls {
				q := pkg.Name + "." + d.declName()
				if _, dup := r.declOf[q]; dup {
					return semErrf(ErrRedefined, d.declPos(), "%s", q)
				}
				r.declOf[q] = d
				r.pkgOf[q] = pkg.Name
				p.TypeNames = append(p.TypeNames, q)
				r.t.Order = append(r.t.Order, q)
			}
		}
	}
	return nil
}

// lookupName resolves a type name from within package pkg: unqualified
// names resolve in the same package first, then as a global qualified name.
func (r *resolver) lookupName(pkg string, n TypeName) (string, error) {
	name := n.String()
	if len(n.Parts) == 1 {
		if _, ok := r.declOf[pkg+"."+name]; ok {
			return pkg + "." + name, nil
		}
	}
	if _, ok := r.declOf[name]; ok {
		return name, nil
	}
	return "", semErrf(ErrUnknown, n.Pos, "%s (from package %s)", name, pkg)
}

func (r *resolver) resolveAll() error {
	r.ifaceState = map[string]int{}
	r.classState = map[string]int{}
	// Enums first (no dependencies).
	for q, d := range r.declOf {
		if e, ok := d.(*EnumDecl); ok {
			if err := checkEnum(e); err != nil {
				return err
			}
			r.t.Enums[q] = &Enum{QName: q, Pkg: r.pkgOf[q], Decl: e}
		}
	}
	// Interfaces (recursive over extends).
	for _, q := range r.t.Order {
		if _, ok := r.declOf[q].(*InterfaceDecl); ok {
			if _, err := r.resolveInterface(q); err != nil {
				return err
			}
		}
	}
	// Classes (recursive over extends).
	for _, q := range r.t.Order {
		if _, ok := r.declOf[q].(*ClassDecl); ok {
			if _, err := r.resolveClass(q); err != nil {
				return err
			}
		}
	}
	return nil
}

func checkEnum(d *EnumDecl) error {
	seenName := map[string]bool{}
	seenVal := map[int]string{}
	for _, m := range d.Members {
		if seenName[m.Name] {
			return semErrf(ErrSemantic, m.Pos, "enum %s repeats member %s", d.Name, m.Name)
		}
		seenName[m.Name] = true
		if prev, dup := seenVal[m.Value]; dup {
			return semErrf(ErrSemantic, m.Pos, "enum %s: %s and %s share value %d", d.Name, prev, m.Name, m.Value)
		}
		seenVal[m.Value] = m.Name
	}
	return nil
}

// checkMethodTypes resolves every type referenced by a method.
func (r *resolver) checkMethodTypes(pkg string, m *MethodDecl) error {
	check := func(t TypeRef) error {
		for t.Array != nil {
			t = t.Array.Elem
		}
		if t.Named != nil {
			if _, err := r.lookupName(pkg, *t.Named); err != nil {
				return err
			}
		}
		return nil
	}
	if err := check(m.Ret); err != nil {
		return err
	}
	names := map[string]bool{}
	for _, p := range m.Params {
		if names[p.Name] {
			return semErrf(ErrSemantic, p.Pos, "method %s repeats parameter %s", m.Name, p.Name)
		}
		names[p.Name] = true
		if err := check(p.Type); err != nil {
			return err
		}
	}
	for _, th := range m.Throws {
		q, err := r.lookupName(pkg, th)
		if err != nil {
			return err
		}
		switch r.declOf[q].(type) {
		case *ClassDecl, *InterfaceDecl:
		default:
			return semErrf(ErrSemantic, th.Pos, "throws %s is not a class or interface", th)
		}
	}
	return nil
}

func (r *resolver) resolveInterface(q string) (*Interface, error) {
	if iface, done := r.t.Interfaces[q]; done {
		return iface, nil
	}
	switch r.ifaceState[q] {
	case 1:
		return nil, semErrf(ErrCycle, r.declOf[q].declPos(), "interface %s", q)
	}
	r.ifaceState[q] = 1
	d := r.declOf[q].(*InterfaceDecl)
	pkg := r.pkgOf[q]
	iface := &Interface{QName: q, Pkg: pkg, Decl: d}

	// No overloading within the declaration.
	own := map[string]*MethodDecl{}
	for _, m := range d.Methods {
		if _, dup := own[m.Name]; dup {
			return nil, semErrf(ErrOverload, m.Pos, "%s.%s", q, m.Name)
		}
		own[m.Name] = m
		if err := r.checkMethodTypes(pkg, m); err != nil {
			return nil, err
		}
	}

	// Resolve parents, merging their method tables.
	merged := []*Method{}
	index := map[string]int{}
	addInherited := func(m *Method, from string) error {
		if i, seen := index[m.Decl.Name]; seen {
			if merged[i].Decl.Signature() != m.Decl.Signature() {
				return semErrf(ErrOverride, d.Pos,
					"%s inherits %s with conflicting signatures from %s and %s",
					q, m.Decl.Name, merged[i].Owner, m.Owner)
			}
			return nil // diamond: same method reachable twice
		}
		index[m.Decl.Name] = len(merged)
		merged = append(merged, m)
		return nil
	}
	for _, en := range d.Extends {
		pq, err := r.lookupName(pkg, en)
		if err != nil {
			return nil, err
		}
		if _, isIface := r.declOf[pq].(*InterfaceDecl); !isIface {
			return nil, semErrf(ErrSemantic, en.Pos, "interface %s extends non-interface %s", q, pq)
		}
		parent, err := r.resolveInterface(pq)
		if err != nil {
			return nil, err
		}
		iface.Extends = append(iface.Extends, parent)
		for _, m := range parent.Methods {
			if err := addInherited(m, pq); err != nil {
				return nil, err
			}
		}
	}
	// Own methods: may override inherited ones with an identical signature
	// (SIDL: method overriding with multiple inheritance), unless final.
	for _, m := range d.Methods {
		if i, seen := index[m.Name]; seen {
			prev := merged[i]
			if prev.Decl.Final {
				return nil, semErrf(ErrOverride, m.Pos, "%s.%s overrides final method of %s", q, m.Name, prev.Owner)
			}
			if prev.Decl.Signature() != m.Signature() {
				return nil, semErrf(ErrOverride, m.Pos,
					"%s.%s signature %s differs from inherited %s",
					q, m.Name, m.Signature(), prev.Decl.Signature())
			}
			merged[i] = &Method{Decl: m, Owner: q}
			continue
		}
		index[m.Name] = len(merged)
		merged = append(merged, &Method{Decl: m, Owner: q})
	}
	iface.Methods = merged

	r.ifaceState[q] = 2
	r.t.Interfaces[q] = iface
	return iface, nil
}

func (r *resolver) resolveClass(q string) (*Class, error) {
	if cls, done := r.t.Classes[q]; done {
		return cls, nil
	}
	if r.classState[q] == 1 {
		return nil, semErrf(ErrCycle, r.declOf[q].declPos(), "class %s", q)
	}
	r.classState[q] = 1
	d := r.declOf[q].(*ClassDecl)
	pkg := r.pkgOf[q]
	cls := &Class{QName: q, Pkg: pkg, Decl: d, Abstract: d.Abstract, AutoImplemented: map[string]bool{}}

	own := map[string]*MethodDecl{}
	for _, m := range d.Methods {
		if _, dup := own[m.Name]; dup {
			return nil, semErrf(ErrOverload, m.Pos, "%s.%s", q, m.Name)
		}
		own[m.Name] = m
		if err := r.checkMethodTypes(pkg, m); err != nil {
			return nil, err
		}
	}

	// Single implementation inheritance.
	merged := []*Method{}
	index := map[string]int{}
	if d.Extends != nil {
		bq, err := r.lookupName(pkg, *d.Extends)
		if err != nil {
			return nil, err
		}
		if _, isClass := r.declOf[bq].(*ClassDecl); !isClass {
			return nil, semErrf(ErrSemantic, d.Extends.Pos, "class %s extends non-class %s", q, bq)
		}
		base, err := r.resolveClass(bq)
		if err != nil {
			return nil, err
		}
		cls.Base = base
		for _, m := range base.Methods {
			index[m.Decl.Name] = len(merged)
			merged = append(merged, m)
		}
		for name := range base.AutoImplemented {
			cls.AutoImplemented[name] = true
		}
	}

	// Interfaces: implements + implements-all.
	addIface := func(names []TypeName, auto bool) error {
		for _, in := range names {
			iq, err := r.lookupName(pkg, in)
			if err != nil {
				return err
			}
			if _, isIface := r.declOf[iq].(*InterfaceDecl); !isIface {
				return semErrf(ErrSemantic, in.Pos, "class %s implements non-interface %s", q, iq)
			}
			iface, err := r.resolveInterface(iq)
			if err != nil {
				return err
			}
			cls.Implements = append(cls.Implements, iface)
			if auto {
				for _, m := range iface.Methods {
					cls.AutoImplemented[m.Decl.Name] = true
				}
			}
		}
		return nil
	}
	if err := addIface(d.Implements, false); err != nil {
		return nil, err
	}
	if err := addIface(d.ImplementsAll, true); err != nil {
		return nil, err
	}

	// Own methods with override checks against the base class.
	for _, m := range d.Methods {
		if i, seen := index[m.Name]; seen {
			prev := merged[i]
			if prev.Decl.Final {
				return nil, semErrf(ErrOverride, m.Pos, "%s.%s overrides final method of %s", q, m.Name, prev.Owner)
			}
			if prev.Decl.Static != m.Static {
				return nil, semErrf(ErrOverride, m.Pos, "%s.%s changes staticness", q, m.Name)
			}
			if prev.Decl.Signature() != m.Signature() {
				return nil, semErrf(ErrOverride, m.Pos,
					"%s.%s signature %s differs from inherited %s",
					q, m.Name, m.Signature(), prev.Decl.Signature())
			}
			merged[i] = &Method{Decl: m, Owner: q}
			continue
		}
		index[m.Name] = len(merged)
		merged = append(merged, &Method{Decl: m, Owner: q})
	}
	cls.Methods = merged

	// Interface-conformance: methods declared by implemented interfaces
	// must exist (same signature) or be auto-implemented, unless the
	// class is abstract.
	closure := map[string]*Interface{}
	var addClosure func(i *Interface)
	addClosure = func(i *Interface) {
		if _, ok := closure[i.QName]; ok {
			return
		}
		closure[i.QName] = i
		for _, p := range i.Extends {
			addClosure(p)
		}
	}
	for _, i := range cls.Implements {
		addClosure(i)
	}
	for c := cls.Base; c != nil; c = c.Base {
		for _, i := range c.Implements {
			addClosure(i)
		}
	}
	for _, name := range sortedKeys(closure) {
		cls.AllInterfaces = append(cls.AllInterfaces, closure[name])
	}
	if !cls.Abstract {
		for _, iface := range cls.AllInterfaces {
			for _, im := range iface.Methods {
				if cls.AutoImplemented[im.Decl.Name] {
					continue
				}
				i, ok := index[im.Decl.Name]
				if !ok {
					return nil, semErrf(ErrAbstract, d.Pos, "class %s misses %s.%s", q, iface.QName, im.Decl.Name)
				}
				if merged[i].Decl.Signature() != im.Decl.Signature() {
					return nil, semErrf(ErrOverride, merged[i].Decl.Pos,
						"class %s implements %s.%s with signature %s, want %s",
						q, iface.QName, im.Decl.Name, merged[i].Decl.Signature(), im.Decl.Signature())
				}
			}
		}
	}

	r.classState[q] = 2
	r.t.Classes[q] = cls
	return cls, nil
}

func sortedKeys[V any](m map[string]V) []string {
	out := make([]string, 0, len(m))
	for k := range m {
		out = append(out, k)
	}
	sort.Strings(out)
	return out
}
