package sidl

import (
	"fmt"
	"strings"
)

// File is a parsed SIDL source file: one or more package declarations.
type File struct {
	Packages []*PackageDecl
}

// PackageDecl is `package name [version v] { decls }`. Nested packages are
// expressed with dotted names ("gov.cca.ports").
type PackageDecl struct {
	Name    string
	Version string
	Decls   []Decl
	Pos     Pos
}

// Decl is any top-level declaration within a package.
type Decl interface {
	declName() string
	declPos() Pos
}

// InterfaceDecl declares a SIDL interface with multiple inheritance:
// `interface Name extends A, B { methods }`.
type InterfaceDecl struct {
	Name    string
	Extends []TypeName
	Methods []*MethodDecl
	Doc     string
	Pos     Pos
}

func (d *InterfaceDecl) declName() string { return d.Name }
func (d *InterfaceDecl) declPos() Pos     { return d.Pos }

// ClassDecl declares a SIDL class with single implementation inheritance
// and multiple interface implementation:
// `[abstract] class Name extends Base implements A, B implements-all C { }`.
// implements-all marks every method of the named interfaces as implemented
// by generated glue (the Babel convention), so an omitted body is not an
// error.
type ClassDecl struct {
	Name          string
	Abstract      bool
	Extends       *TypeName
	Implements    []TypeName
	ImplementsAll []TypeName
	Methods       []*MethodDecl
	Doc           string
	Pos           Pos
}

func (d *ClassDecl) declName() string { return d.Name }
func (d *ClassDecl) declPos() Pos     { return d.Pos }

// EnumDecl declares an enumeration: `enum Name { A, B = 3, C }`.
type EnumDecl struct {
	Name    string
	Members []EnumMember
	Doc     string
	Pos     Pos
}

func (d *EnumDecl) declName() string { return d.Name }
func (d *EnumDecl) declPos() Pos     { return d.Pos }

// EnumMember is one enum constant, with an optional explicit value.
type EnumMember struct {
	Name     string
	Value    int
	Explicit bool
	Pos      Pos
}

// MethodDecl declares a method.
type MethodDecl struct {
	Name   string
	Static bool
	Final  bool
	Oneway bool
	Ret    TypeRef
	Params []Param
	Throws []TypeName
	Doc    string
	Pos    Pos
}

// Signature renders the method's type signature (without its name) for
// override-compatibility comparison: modes, parameter types, return type,
// and throws clause must all match.
func (m *MethodDecl) Signature() string {
	var b strings.Builder
	b.WriteString(m.Ret.String())
	b.WriteString("(")
	for i, p := range m.Params {
		if i > 0 {
			b.WriteString(",")
		}
		b.WriteString(p.Mode.String())
		b.WriteString(" ")
		b.WriteString(p.Type.String())
	}
	b.WriteString(")")
	if len(m.Throws) > 0 {
		names := make([]string, len(m.Throws))
		for i, t := range m.Throws {
			names[i] = t.String()
		}
		b.WriteString(" throws ")
		b.WriteString(strings.Join(names, ","))
	}
	return b.String()
}

// Mode is a parameter passing mode (in / out / inout).
type Mode int

// Parameter modes.
const (
	ModeIn Mode = iota
	ModeOut
	ModeInOut
)

func (m Mode) String() string {
	switch m {
	case ModeIn:
		return "in"
	case ModeOut:
		return "out"
	case ModeInOut:
		return "inout"
	default:
		return fmt.Sprintf("mode(%d)", int(m))
	}
}

// Param is one method parameter.
type Param struct {
	Mode Mode
	Type TypeRef
	Name string
	Pos  Pos
}

// TypeName is a possibly-qualified type reference ("esi.Vector", "Solver").
type TypeName struct {
	Parts []string
	Pos   Pos
}

func (t TypeName) String() string { return strings.Join(t.Parts, ".") }

// Primitive enumerates SIDL's built-in types (§5: including complex numbers
// and the usual scalar types).
type Primitive int

// SIDL primitive types.
const (
	PrimInvalid Primitive = iota
	PrimVoid
	PrimBool
	PrimChar
	PrimInt
	PrimLong
	PrimFloat
	PrimDouble
	PrimFComplex
	PrimDComplex
	PrimString
	PrimOpaque
)

var primNames = map[string]Primitive{
	"void": PrimVoid, "bool": PrimBool, "char": PrimChar, "int": PrimInt,
	"long": PrimLong, "float": PrimFloat, "double": PrimDouble,
	"fcomplex": PrimFComplex, "dcomplex": PrimDComplex,
	"string": PrimString, "opaque": PrimOpaque,
}

var primStrings = func() map[Primitive]string {
	m := make(map[Primitive]string, len(primNames))
	for s, p := range primNames {
		m[p] = s
	}
	return m
}()

func (p Primitive) String() string {
	if s, ok := primStrings[p]; ok {
		return s
	}
	return fmt.Sprintf("primitive(%d)", int(p))
}

// LookupPrimitive resolves a primitive type name; PrimInvalid when unknown.
func LookupPrimitive(name string) Primitive { return primNames[name] }

// TypeRef references a type in a declaration: exactly one of Prim, Array,
// or Named is set.
type TypeRef struct {
	Prim  Primitive
	Array *ArrayRef
	Named *TypeName
	Pos   Pos
}

// ArrayRef is the SIDL array type `array<elem, rank [, order]>` — the
// paper's dynamically dimensioned multidimensional array primitive.
type ArrayRef struct {
	Elem TypeRef
	Rank int
	// Order is "", "row-major", or "column-major".
	Order string
}

// IsVoid reports whether the reference is the void type.
func (t TypeRef) IsVoid() bool { return t.Prim == PrimVoid }

func (t TypeRef) String() string {
	switch {
	case t.Array != nil:
		if t.Array.Order != "" {
			return fmt.Sprintf("array<%s,%d,%s>", t.Array.Elem, t.Array.Rank, t.Array.Order)
		}
		return fmt.Sprintf("array<%s,%d>", t.Array.Elem, t.Array.Rank)
	case t.Named != nil:
		return t.Named.String()
	default:
		return t.Prim.String()
	}
}
