package codegen

import (
	"errors"
	"go/parser"
	"go/token"
	"strings"
	"testing"

	"repro/internal/sidl"
)

const corpus = `
package esi version 1.0 {
  interface Object {
    string typeName();
  }
  interface Operator extends Object {
    void apply(in array<double,1> x, out array<double,1> y) throws esi.SolveError;
  }
  interface Solver extends Operator {
    void solve(in array<double,1> b, inout array<double,1> x, out int iters) throws esi.SolveError;
    void setTolerance(in double tol);
  }
  class SolveError { string message(); }
  enum Norm { One, Two = 5, Infinity }
}
`

func generate(t *testing.T, src string, opts Options) string {
	t.Helper()
	f, err := sidl.Parse(src)
	if err != nil {
		t.Fatal(err)
	}
	tbl, err := sidl.Resolve(f)
	if err != nil {
		t.Fatal(err)
	}
	out, err := Generate(tbl, opts)
	if err != nil {
		t.Fatal(err)
	}
	return out
}

// parseGo checks the generated source is syntactically valid Go.
func parseGo(t *testing.T, src string) {
	t.Helper()
	fset := token.NewFileSet()
	if _, err := parser.ParseFile(fset, "gen.go", src, 0); err != nil {
		t.Fatalf("generated code does not parse: %v\n---\n%s", err, src)
	}
}

func TestGenerateParses(t *testing.T) {
	out := generate(t, corpus, Options{PackageName: "esibind"})
	parseGo(t, out)
	if !strings.Contains(out, "package esibind") {
		t.Error("package clause missing")
	}
}

func TestGenerateInterfaceShape(t *testing.T) {
	out := generate(t, corpus, Options{})
	// Interface with embedded parent.
	for _, want := range []string{
		"type EsiSolver interface {",
		"EsiOperator\n",
		"Solve(b []float64, x *[]float64) (int32, error)",
		"SetTolerance(tol float64)",
		"type EsiSolverEPV struct {",
		"type EsiSolverIOR struct {",
		"type EsiSolverStub struct {",
		"func NewEsiSolverStub(impl EsiSolver) EsiSolver {",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("generated code missing %q", want)
		}
	}
}

func TestGenerateStubIsThreeLayer(t *testing.T) {
	out := generate(t, corpus, Options{})
	// Call 1: stub method forwards into the EPV.
	if !strings.Contains(out, "s.IOR.EPV.FSolve(s.IOR.Obj, b, x)") {
		t.Error("stub does not dispatch through the EPV")
	}
	// Call 3: skeleton closure downcasts and calls the impl.
	if !strings.Contains(out, "obj.(EsiSolver).Solve(b, x)") {
		t.Error("skeleton does not call the implementation")
	}
}

func TestGenerateEnum(t *testing.T) {
	out := generate(t, corpus, Options{})
	parseGo(t, out)
	for _, want := range []string{
		"type EsiNorm int32",
		"EsiNormOne EsiNorm = 0",
		"EsiNormTwo EsiNorm = 5",
		"EsiNormInfinity EsiNorm = 6",
		"func (v EsiNorm) String() string",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("generated enum missing %q", want)
		}
	}
}

func TestGenerateArrayTypes(t *testing.T) {
	src := `package p {
	  interface A {
	    void f(in array<double,2> m, in array<dcomplex,3> z, in array<int,1> idx);
	  }
	}`
	out := generate(t, src, Options{})
	parseGo(t, out)
	for _, want := range []string{"m *array.Array", "z *array.ComplexArray", "idx []int32", "repro/internal/array"} {
		if !strings.Contains(out, want) {
			t.Errorf("missing %q", want)
		}
	}
}

func TestGenerateUnsupportedArray(t *testing.T) {
	src := `package p { interface A { void f(in array<string,3> s); } }`
	f, err := sidl.Parse(src)
	if err != nil {
		t.Fatal(err)
	}
	tbl, err := sidl.Resolve(f)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := Generate(tbl, Options{}); !errors.Is(err, ErrUnsupported) {
		t.Errorf("err = %v, want ErrUnsupported", err)
	}
}

func TestGenerateOnewayAndVoid(t *testing.T) {
	src := `package p { interface A { oneway void ping(in int n); void quiet(); } }`
	out := generate(t, src, Options{})
	parseGo(t, out)
	if !strings.Contains(out, "Ping(n int32)") {
		t.Error("oneway method missing")
	}
	if strings.Contains(out, "Ping(n int32) ") && strings.Contains(out, "Ping(n int32) error") {
		t.Error("oneway method must not return")
	}
}

func TestGenerateReflectionRegistration(t *testing.T) {
	out := generate(t, corpus, Options{Reflection: true})
	parseGo(t, out)
	for _, want := range []string{
		"sreflect.Global.Register(&sreflect.TypeInfo{",
		`QName: "esi.Solver"`,
		`{Name: "solve", GoName: "Solve"`,
		`Extends: []string{"esi.Operator"}`,
		"repro/internal/sidl/sreflect",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("reflection output missing %q", want)
		}
	}
}

func TestGenerateModes(t *testing.T) {
	src := `package p { interface A { double f(in double a, inout double b, out double c); } }`
	out := generate(t, src, Options{})
	parseGo(t, out)
	if !strings.Contains(out, "F(a float64, b *float64) (float64, float64)") {
		t.Errorf("mode mapping wrong:\n%s", out)
	}
}

func TestGenerateDiamondInterface(t *testing.T) {
	src := `package p {
	  interface Root { void ping(); }
	  interface L extends Root { void left(); }
	  interface R extends Root { void right(); }
	  interface D extends L, R { void both(); }
	}`
	out := generate(t, src, Options{})
	// Go forbids duplicate methods arriving through multiple embedded
	// interfaces only if signatures conflict; identical ones are legal
	// since Go 1.14. Verify it parses and D embeds both parents.
	parseGo(t, out)
	if !strings.Contains(out, "PL\n") || !strings.Contains(out, "PR\n") {
		t.Errorf("diamond embedding missing:\n%s", out)
	}
}

func TestGoNameMapping(t *testing.T) {
	cases := map[string]string{
		"esi.Solver":    "EsiSolver",
		"gov.cca.Ports": "GovCcaPorts",
		"x":             "X",
	}
	for in, want := range cases {
		if got := goName(in); got != want {
			t.Errorf("goName(%q) = %q, want %q", in, got, want)
		}
	}
}

func TestGenerateCarriesDocComments(t *testing.T) {
	src := `package p {
	  // Solver iterates until convergence.
	  interface Solver {
	    // solve runs the iteration.
	    void solve(in double tol);
	  }
	}`
	out := generate(t, src, Options{})
	parseGo(t, out)
	if !strings.Contains(out, "// Solver iterates until convergence.") {
		t.Error("interface doc lost")
	}
	if !strings.Contains(out, "\t// solve runs the iteration.") {
		t.Error("method doc lost")
	}
}

func TestGenerateFanOutTypes(t *testing.T) {
	src := `package p {
	  interface Mon {
	    oneway void observe(in int step, in array<double,1> data);
	    void reset();
	    int count();
	  }
	}`
	out := generate(t, src, Options{})
	parseGo(t, out)
	for _, want := range []string{
		"type PMonFanOut []PMon",
		"func (f PMonFanOut) Observe(step int32, data []float64) {",
		"func (f PMonFanOut) Reset() {",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("fan-out missing %q", want)
		}
	}
	// Valued method must NOT fan out.
	if strings.Contains(out, "func (f PMonFanOut) Count(") {
		t.Error("valued method fanned out")
	}
}
