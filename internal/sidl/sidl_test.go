package sidl

import (
	"errors"
	"strings"
	"testing"
)

const esiCorpus = `
// The ESI-flavoured solver interfaces used across the reproduction.
package esi version 1.0 {
  interface Object {
    string typeName();
  }

  interface Vector extends Object {
    int length();
    double dot(in array<double,1> other);
    void axpy(in double alpha, in array<double,1> x);
  }

  interface Operator extends Object {
    void apply(in array<double,1> x, out array<double,1> y) throws esi.SolveError;
  }

  interface Preconditioner extends Operator {
    void setup();
  }

  /* Multiple interface inheritance with method overriding, as the ESI
     standard requires. */
  interface Solver extends Operator, Preconditioner {
    string typeName();
    void solve(in array<double,1> b, inout array<double,1> x, out int iters) throws esi.SolveError;
  }

  class SolveError {
    string message();
  }

  abstract class SolverBase implements Solver {
    string typeName();
  }

  class CGSolver extends SolverBase implements-all Solver {
  }

  enum Norm {
    One,
    Two = 5,
    Infinity
  }
}

package chad version 0.3 {
  interface Mesh {
    int numNodes();
    void coordinates(out array<double,2> xy);
    oneway void refine(in int level);
  }
  interface Field extends Mesh {
    void values(out array<dcomplex,1> v);
  }
}
`

func mustResolve(t *testing.T, src string) *Table {
	t.Helper()
	f, err := Parse(src)
	if err != nil {
		t.Fatal(err)
	}
	tbl, err := Resolve(f)
	if err != nil {
		t.Fatal(err)
	}
	return tbl
}

func TestLexBasics(t *testing.T) {
	toks, err := Lex(`package a { interface B { void f(in int x); } }`)
	if err != nil {
		t.Fatal(err)
	}
	kinds := []Kind{TokPackage, TokIdent, TokLBrace, TokInterface, TokIdent,
		TokLBrace, TokIdent, TokIdent, TokLParen, TokIn, TokIdent, TokIdent,
		TokRParen, TokSemi, TokRBrace, TokRBrace, TokEOF}
	if len(toks) != len(kinds) {
		t.Fatalf("got %d tokens, want %d: %v", len(toks), len(kinds), toks)
	}
	for i, k := range kinds {
		if toks[i].Kind != k {
			t.Errorf("token %d = %v, want %v", i, toks[i], k)
		}
	}
}

func TestLexComments(t *testing.T) {
	toks, err := Lex("// line\n/* block\nspanning */ package")
	if err != nil {
		t.Fatal(err)
	}
	if len(toks) != 2 || toks[0].Kind != TokPackage {
		t.Errorf("tokens = %v", toks)
	}
	if _, err := Lex("/* unterminated"); !errors.Is(err, ErrSyntax) {
		t.Errorf("err = %v", err)
	}
}

func TestLexHyphenatedKeywords(t *testing.T) {
	toks, err := Lex("implements-all row-major")
	if err != nil {
		t.Fatal(err)
	}
	if toks[0].Kind != TokImplementsAll {
		t.Errorf("tok0 = %v", toks[0])
	}
	if toks[1].Kind != TokIdent || toks[1].Text != "row-major" {
		t.Errorf("tok1 = %v", toks[1])
	}
}

func TestLexVersionVsInt(t *testing.T) {
	toks, err := Lex("1 1.0 1.0.2")
	if err != nil {
		t.Fatal(err)
	}
	if toks[0].Kind != TokInt || toks[1].Kind != TokVersion || toks[2].Kind != TokVersion {
		t.Errorf("tokens = %v", toks)
	}
}

func TestLexPositions(t *testing.T) {
	toks, err := Lex("package\n  x")
	if err != nil {
		t.Fatal(err)
	}
	if toks[0].Pos.Line != 1 || toks[1].Pos.Line != 2 || toks[1].Pos.Col != 3 {
		t.Errorf("positions: %v %v", toks[0].Pos, toks[1].Pos)
	}
}

func TestLexBadChar(t *testing.T) {
	if _, err := Lex("package @"); !errors.Is(err, ErrSyntax) {
		t.Errorf("err = %v", err)
	}
}

func TestParseCorpus(t *testing.T) {
	f, err := Parse(esiCorpus)
	if err != nil {
		t.Fatal(err)
	}
	if len(f.Packages) != 2 {
		t.Fatalf("packages = %d", len(f.Packages))
	}
	esi := f.Packages[0]
	if esi.Name != "esi" || esi.Version != "1.0" {
		t.Errorf("pkg = %s v%s", esi.Name, esi.Version)
	}
	if len(esi.Decls) != 9 {
		t.Errorf("esi decls = %d", len(esi.Decls))
	}
}

func TestParseMethodDetails(t *testing.T) {
	f, err := Parse(`package p {
	  interface I {
	    static final double f(in array<double,2,row-major> a, out dcomplex z, inout long n) throws p.E;
	  }
	  class E { string message(); }
	}`)
	if err != nil {
		t.Fatal(err)
	}
	m := f.Packages[0].Decls[0].(*InterfaceDecl).Methods[0]
	if !m.Static || !m.Final || m.Oneway {
		t.Errorf("modifiers: %+v", m)
	}
	if m.Ret.Prim != PrimDouble {
		t.Errorf("ret = %v", m.Ret)
	}
	if len(m.Params) != 3 {
		t.Fatalf("params = %d", len(m.Params))
	}
	if m.Params[0].Mode != ModeIn || m.Params[0].Type.Array == nil ||
		m.Params[0].Type.Array.Rank != 2 || m.Params[0].Type.Array.Order != "row-major" {
		t.Errorf("param0 = %+v", m.Params[0])
	}
	if m.Params[1].Mode != ModeOut || m.Params[1].Type.Prim != PrimDComplex {
		t.Errorf("param1 = %+v", m.Params[1])
	}
	if m.Params[2].Mode != ModeInOut || m.Params[2].Type.Prim != PrimLong {
		t.Errorf("param2 = %+v", m.Params[2])
	}
	if len(m.Throws) != 1 || m.Throws[0].String() != "p.E" {
		t.Errorf("throws = %v", m.Throws)
	}
}

func TestParseErrors(t *testing.T) {
	cases := []string{
		``,                                       // empty
		`interface I {}`,                         // no package
		`package p { interface I { void f() } }`, // missing semicolon
		`package p { interface I { void f(in void x); } }`,                 // void param
		`package p { interface I { oneway int f(); } }`,                    // oneway non-void
		`package p { interface I { void f(in array<double,0> a); } }`,      // rank 0
		`package p { interface I { void f(in array<double,2,diag> a); } }`, // bad order
		`package p { enum E { } }`,                                         // empty enum
		`package p { widget W {} }`,                                        // unknown decl
	}
	for _, src := range cases {
		if _, err := Parse(src); !errors.Is(err, ErrSyntax) {
			t.Errorf("Parse(%q) err = %v, want syntax error", src, err)
		}
	}
}

func TestParseEnumValues(t *testing.T) {
	f, err := Parse(`package p { enum E { A, B = 7, C, D = 2 } }`)
	if err != nil {
		t.Fatal(err)
	}
	e := f.Packages[0].Decls[0].(*EnumDecl)
	want := []int{0, 7, 8, 2}
	for i, m := range e.Members {
		if m.Value != want[i] {
			t.Errorf("member %s = %d, want %d", m.Name, m.Value, want[i])
		}
	}
}

func TestResolveCorpus(t *testing.T) {
	tbl := mustResolve(t, esiCorpus)
	if len(tbl.Interfaces) != 7 || len(tbl.Classes) != 3 || len(tbl.Enums) != 1 {
		t.Fatalf("counts: %d interfaces, %d classes, %d enums",
			len(tbl.Interfaces), len(tbl.Classes), len(tbl.Enums))
	}
	solver := tbl.Interfaces["esi.Solver"]
	if solver == nil {
		t.Fatal("esi.Solver missing")
	}
	// Linearized methods: typeName (overridden by Solver), apply (from
	// Operator), setup (from Preconditioner), solve (own). The diamond
	// through Operator must not duplicate apply or typeName.
	names := map[string]string{}
	for _, m := range solver.Methods {
		if _, dup := names[m.Decl.Name]; dup {
			t.Fatalf("duplicated method %s", m.Decl.Name)
		}
		names[m.Decl.Name] = m.Owner
	}
	if len(solver.Methods) != 4 {
		t.Fatalf("solver has %d methods: %v", len(solver.Methods), names)
	}
	if names["typeName"] != "esi.Solver" {
		t.Errorf("typeName owned by %s, want esi.Solver (override)", names["typeName"])
	}
	if names["apply"] != "esi.Operator" || names["setup"] != "esi.Preconditioner" {
		t.Errorf("owners: %v", names)
	}
}

func TestResolveClassConformance(t *testing.T) {
	tbl := mustResolve(t, esiCorpus)
	cg := tbl.Classes["esi.CGSolver"]
	if cg == nil {
		t.Fatal("esi.CGSolver missing")
	}
	if cg.Base == nil || cg.Base.QName != "esi.SolverBase" {
		t.Errorf("base = %v", cg.Base)
	}
	if !cg.AutoImplemented["solve"] || !cg.AutoImplemented["apply"] {
		t.Errorf("auto-implemented = %v", cg.AutoImplemented)
	}
	// AllInterfaces includes the transitive closure.
	var ifaceNames []string
	for _, i := range cg.AllInterfaces {
		ifaceNames = append(ifaceNames, i.QName)
	}
	joined := strings.Join(ifaceNames, ",")
	for _, want := range []string{"esi.Solver", "esi.Operator", "esi.Preconditioner", "esi.Object"} {
		if !strings.Contains(joined, want) {
			t.Errorf("AllInterfaces %v missing %s", ifaceNames, want)
		}
	}
}

func TestIsSubtype(t *testing.T) {
	tbl := mustResolve(t, esiCorpus)
	cases := []struct {
		sub, super string
		want       bool
	}{
		{"esi.Solver", "esi.Solver", true},
		{"esi.Solver", "esi.Operator", true},
		{"esi.Solver", "esi.Object", true},
		{"esi.Operator", "esi.Solver", false},
		{"esi.CGSolver", "esi.Solver", true},
		{"esi.CGSolver", "esi.SolverBase", true},
		{"esi.CGSolver", "esi.Object", true},
		{"esi.CGSolver", "chad.Mesh", false},
		{"chad.Field", "chad.Mesh", true},
		{"esi.Vector", "esi.Operator", false},
	}
	for _, tc := range cases {
		if got := tbl.IsSubtype(tc.sub, tc.super); got != tc.want {
			t.Errorf("IsSubtype(%s, %s) = %v, want %v", tc.sub, tc.super, got, tc.want)
		}
	}
}

func TestResolveErrors(t *testing.T) {
	cases := []struct {
		src  string
		want error
	}{
		{`package p { interface I {} interface I {} }`, ErrRedefined},
		{`package p { interface I extends Missing {} }`, ErrUnknown},
		{`package p { interface A extends B {} interface B extends A {} }`, ErrCycle},
		{`package p { class A extends B {} class B extends A {} }`, ErrCycle},
		{`package p { interface I { void f(); int f(in int x); } }`, ErrOverload},
		{`package p { class C {} interface I extends C {} }`, ErrSemantic},
		{`package p { interface I {} class C extends I {} }`, ErrSemantic},
		{`package p { interface I { void f(); } class C implements I {} }`, ErrAbstract},
		{`package p { interface I { void f(in int a, in int a); } }`, ErrSemantic},
		{`package p { enum E { A, B = 0 } }`, ErrSemantic},
		{`package p { interface A { final void f(); } interface B extends A { void f(); } }`, ErrOverride},
		{`package p { interface A { void f(in int x); } interface B { void f(in double x); } interface C extends A, B {} }`, ErrOverride},
		{`package p { interface A { void f(in int x); } class C implements A { void f(in double x); } }`, ErrOverride},
		{`package p { interface I { void f() throws p.E; } enum E { A } }`, ErrSemantic},
	}
	for _, tc := range cases {
		f, err := Parse(tc.src)
		if err != nil {
			t.Errorf("Parse(%q): %v", tc.src, err)
			continue
		}
		if _, err := Resolve(f); !errors.Is(err, tc.want) {
			t.Errorf("Resolve(%q) err = %v, want %v", tc.src, err, tc.want)
		}
	}
}

func TestResolveAbstractClassMaySkipMethods(t *testing.T) {
	mustResolve(t, `package p {
	  interface I { void f(); }
	  abstract class C implements I {}
	}`)
}

func TestResolveDiamondDedup(t *testing.T) {
	tbl := mustResolve(t, `package p {
	  interface Root { void ping(); }
	  interface L extends Root {}
	  interface R extends Root {}
	  interface D extends L, R {}
	}`)
	d := tbl.Interfaces["p.D"]
	if len(d.Methods) != 1 || d.Methods[0].Owner != "p.Root" {
		t.Errorf("diamond methods = %+v", d.Methods)
	}
}

func TestPackageMergeAcrossFiles(t *testing.T) {
	f1, err := Parse(`package p version 1.0 { interface A {} }`)
	if err != nil {
		t.Fatal(err)
	}
	f2, err := Parse(`package p { interface B extends A {} }`)
	if err != nil {
		t.Fatal(err)
	}
	tbl, err := Resolve(f1, f2)
	if err != nil {
		t.Fatal(err)
	}
	if tbl.Packages["p"].Version != "1.0" || len(tbl.Packages["p"].TypeNames) != 2 {
		t.Errorf("merged package = %+v", tbl.Packages["p"])
	}
	// Conflicting versions rejected.
	f3, _ := Parse(`package p version 2.0 { interface C {} }`)
	if _, err := Resolve(f1, f3); !errors.Is(err, ErrSemantic) {
		t.Errorf("version conflict err = %v", err)
	}
}

func TestFormatRoundTrip(t *testing.T) {
	f1, err := Parse(esiCorpus)
	if err != nil {
		t.Fatal(err)
	}
	text := Format(f1)
	f2, err := Parse(text)
	if err != nil {
		t.Fatalf("reparse of formatted output: %v\n%s", err, text)
	}
	if Format(f2) != text {
		t.Error("Format is not a fixed point")
	}
	// Both ASTs must resolve to the same type set.
	t1, err := Resolve(f1)
	if err != nil {
		t.Fatal(err)
	}
	t2, err := Resolve(f2)
	if err != nil {
		t.Fatal(err)
	}
	if len(t1.Order) != len(t2.Order) {
		t.Fatalf("order lengths differ: %v vs %v", t1.Order, t2.Order)
	}
	for i := range t1.Order {
		if t1.Order[i] != t2.Order[i] {
			t.Errorf("order[%d]: %s vs %s", i, t1.Order[i], t2.Order[i])
		}
	}
}

func TestDescribe(t *testing.T) {
	tbl := mustResolve(t, esiCorpus)
	desc := tbl.Describe()
	for _, want := range []string{"interface esi.Solver (4 methods", "abstract class esi.SolverBase", "enum esi.Norm (3 members)"} {
		if !strings.Contains(desc, want) {
			t.Errorf("Describe missing %q:\n%s", want, desc)
		}
	}
}

func TestSignatureDistinguishesModesAndThrows(t *testing.T) {
	f, err := Parse(`package p {
	  interface A { void f(in int x); }
	  interface B { void f(out int x); }
	  class E { string message(); }
	  interface C { void g(); }
	  interface D { void g() throws p.E; }
	}`)
	if err != nil {
		t.Fatal(err)
	}
	decls := f.Packages[0].Decls
	a := decls[0].(*InterfaceDecl).Methods[0]
	b := decls[1].(*InterfaceDecl).Methods[0]
	if a.Signature() == b.Signature() {
		t.Error("in/out modes not distinguished")
	}
	c := decls[3].(*InterfaceDecl).Methods[0]
	d := decls[4].(*InterfaceDecl).Methods[0]
	if c.Signature() == d.Signature() {
		t.Error("throws clause not distinguished")
	}
}

func TestDocCommentsAttached(t *testing.T) {
	f, err := Parse(`package p {
	  // Vector is a mathematical vector.
	  // Second line.
	  interface Vector {
	    // dot computes an inner product.
	    double dot(in array<double,1> other);

	    // detachedByBlankLine should NOT document this method...

	    void undocumented();
	  }

	  /* Block comment documentation
	     for the class. */
	  class Impl implements-all Vector {}

	  // Kind selects a thing.
	  enum Kind { A }
	}`)
	if err != nil {
		t.Fatal(err)
	}
	decls := f.Packages[0].Decls
	iface := decls[0].(*InterfaceDecl)
	if iface.Doc != "Vector is a mathematical vector.\nSecond line." {
		t.Errorf("interface doc = %q", iface.Doc)
	}
	if iface.Methods[0].Doc != "dot computes an inner product." {
		t.Errorf("method doc = %q", iface.Methods[0].Doc)
	}
	if iface.Methods[1].Doc != "" {
		t.Errorf("blank-line-detached doc = %q", iface.Methods[1].Doc)
	}
	cls := decls[1].(*ClassDecl)
	if !strings.Contains(cls.Doc, "Block comment documentation") {
		t.Errorf("class doc = %q", cls.Doc)
	}
	enum := decls[2].(*EnumDecl)
	if enum.Doc != "Kind selects a thing." {
		t.Errorf("enum doc = %q", enum.Doc)
	}
}
