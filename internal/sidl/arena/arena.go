// Package arena provides the per-call scratch allocator behind the ORB's
// zero-allocation decode path. A CDR decoder attached to an Arena carves
// every decoded value — array payloads, strings, and the interface boxes
// that carry them — out of reusable typed slabs instead of the heap. After
// the call completes, Reset truncates the slabs in O(1) and the next call
// reuses the same memory, so the steady-state remote-call path performs
// zero allocations (verified by AllocsPerRun tests in internal/orb).
//
// Lifetime contract: everything an Arena returns — slices, strings, and
// any-boxed values — is valid only until Reset. Holders must copy what
// they keep. The ORB's dispatch path already imposes exactly this contract
// on servants ("must not retain args past the call"), which is what makes
// arena-backed arguments safe to hand them.
//
// An Arena is not safe for concurrent use; the ORB pools one per dispatch.
package arena

import "unsafe"

// Arena is a bump allocator over typed slabs. The zero value is ready to
// use; slabs are allocated on first demand and retained across Reset, so
// allocation cost amortizes to zero once the slabs have grown to the
// workload's high-water mark.
type Arena struct {
	f64  []float64
	i32  []int32
	i64  []int64
	ints []int
	byt  []byte

	// Header slabs back the interface boxes: an eface's data word must
	// point at a stable copy of the value, and these arrays are where
	// those copies live. Growth via append abandons the old array to the
	// efaces already pointing into it (kept alive by them), so handed-out
	// boxes stay valid until Reset even across growth.
	f64h [][]float64
	i32h [][]int32
	byth [][]byte
	strs []string
}

// Reset recycles every slab. All values previously returned by this arena
// become invalid: their storage will be overwritten by subsequent use.
func (a *Arena) Reset() {
	a.f64 = a.f64[:0]
	a.i32 = a.i32[:0]
	a.i64 = a.i64[:0]
	a.ints = a.ints[:0]
	a.byt = a.byt[:0]
	a.f64h = a.f64h[:0]
	a.i32h = a.i32h[:0]
	a.byth = a.byth[:0]
	a.strs = a.strs[:0]
}

// Slab sizing: start big enough that typical calls never grow, double
// thereafter. A slab that cannot fit n elements is replaced; the old slab
// stays alive through the slices already handed out of it.
const minSlab = 1024

func grown(have, need int) int {
	n := 2 * have
	if n < minSlab {
		n = minSlab
	}
	for n < need {
		n *= 2
	}
	return n
}

// Float64s returns an uninitialized n-element slice from the slab.
func (a *Arena) Float64s(n int) []float64 {
	if len(a.f64)+n > cap(a.f64) {
		a.f64 = make([]float64, 0, grown(cap(a.f64), n))
	}
	l := len(a.f64)
	a.f64 = a.f64[:l+n]
	return a.f64[l : l+n : l+n]
}

// Int32s returns an uninitialized n-element slice from the slab.
func (a *Arena) Int32s(n int) []int32 {
	if len(a.i32)+n > cap(a.i32) {
		a.i32 = make([]int32, 0, grown(cap(a.i32), n))
	}
	l := len(a.i32)
	a.i32 = a.i32[:l+n]
	return a.i32[l : l+n : l+n]
}

// Bytes returns an uninitialized n-byte slice from the slab.
func (a *Arena) Bytes(n int) []byte {
	if len(a.byt)+n > cap(a.byt) {
		a.byt = make([]byte, 0, grown(cap(a.byt), n))
	}
	l := len(a.byt)
	a.byt = a.byt[:l+n]
	return a.byt[l : l+n : l+n]
}

// Boxing. Converting a value to `any` normally heap-allocates the value
// copy the interface's data word points at. These helpers place that copy
// in a slab instead and splice its address into an eface whose type word
// is taken from a package-level prototype, so the conversion itself
// allocates nothing. The layout assumption — interface{} is (type, data)
// pointer pair, with non-pointer-shaped values held indirectly — is the
// one the runtime has had since Go 1.4 and the same one package reflect
// depends on.

type eface struct {
	typ, data unsafe.Pointer
}

var (
	protoF64      any = float64(0)
	protoI32      any = int32(0)
	protoI64      any = int64(0)
	protoInt      any = int(0)
	protoStr      any = ""
	protoF64Slice any = []float64(nil)
	protoI32Slice any = []int32(nil)
	protoBytes    any = []byte(nil)

	boxTrue  any = true
	boxFalse any = false
	emptyStr any = ""
)

func box(proto any, data unsafe.Pointer) any {
	a := proto
	(*eface)(unsafe.Pointer(&a)).data = data
	return a
}

// AnyBool boxes a bool (statically — booleans never allocate).
func (a *Arena) AnyBool(v bool) any {
	if v {
		return boxTrue
	}
	return boxFalse
}

// AnyFloat64 boxes v in slab storage.
func (a *Arena) AnyFloat64(v float64) any {
	s := a.Float64s(1)
	s[0] = v
	return box(protoF64, unsafe.Pointer(&s[0]))
}

// AnyInt32 boxes v in slab storage.
func (a *Arena) AnyInt32(v int32) any {
	s := a.Int32s(1)
	s[0] = v
	return box(protoI32, unsafe.Pointer(&s[0]))
}

// AnyInt64 boxes v in slab storage.
func (a *Arena) AnyInt64(v int64) any {
	if len(a.i64) == cap(a.i64) {
		a.i64 = make([]int64, 0, grown(cap(a.i64), 1))
	}
	a.i64 = append(a.i64, v)
	return box(protoI64, unsafe.Pointer(&a.i64[len(a.i64)-1]))
}

// AnyInt boxes v in slab storage.
func (a *Arena) AnyInt(v int) any {
	if len(a.ints) == cap(a.ints) {
		a.ints = make([]int, 0, grown(cap(a.ints), 1))
	}
	a.ints = append(a.ints, v)
	return box(protoInt, unsafe.Pointer(&a.ints[len(a.ints)-1]))
}

// AnyString copies b into the arena and boxes it as a string.
func (a *Arena) AnyString(b []byte) any {
	if len(b) == 0 {
		return emptyStr
	}
	buf := a.Bytes(len(b))
	copy(buf, b)
	a.strs = append(a.strs, unsafe.String(&buf[0], len(buf)))
	return box(protoStr, unsafe.Pointer(&a.strs[len(a.strs)-1]))
}

// AnyFloat64Slice boxes s (itself typically arena storage).
func (a *Arena) AnyFloat64Slice(s []float64) any {
	a.f64h = append(a.f64h, s)
	return box(protoF64Slice, unsafe.Pointer(&a.f64h[len(a.f64h)-1]))
}

// AnyInt32Slice boxes s (itself typically arena storage).
func (a *Arena) AnyInt32Slice(s []int32) any {
	a.i32h = append(a.i32h, s)
	return box(protoI32Slice, unsafe.Pointer(&a.i32h[len(a.i32h)-1]))
}

// AnyBytes copies b into the arena and boxes it as a []byte.
func (a *Arena) AnyBytes(b []byte) any {
	buf := a.Bytes(len(b))
	copy(buf, b)
	a.byth = append(a.byth, buf)
	return box(protoBytes, unsafe.Pointer(&a.byth[len(a.byth)-1]))
}
