package arena

import (
	"runtime"
	"testing"
)

func TestSlabReuseAcrossReset(t *testing.T) {
	a := new(Arena)
	first := a.Float64s(8)
	for i := range first {
		first[i] = float64(i)
	}
	a.Reset()
	second := a.Float64s(8)
	if &first[0] != &second[0] {
		t.Fatal("reset did not recycle slab storage")
	}
	// Distinct requests between resets must not alias.
	third := a.Float64s(4)
	second[0] = 1
	if third[0] == 1 {
		t.Fatal("sibling slices alias")
	}
}

func TestGrowthPreservesEarlierSlices(t *testing.T) {
	a := new(Arena)
	early := a.Float64s(4)
	early[0] = 42
	// Force repeated slab growth; early must stay intact (growth abandons
	// the old slab rather than moving it — live efaces keep it alive).
	for i := 0; i < 64; i++ {
		s := a.Float64s(1024)
		s[0] = float64(i)
	}
	if early[0] != 42 {
		t.Fatalf("early slice corrupted: %v", early[0])
	}
}

func TestBoxedValuesSurviveGC(t *testing.T) {
	a := new(Arena)
	vals := make([]any, 0, 32)
	for i := 0; i < 32; i++ {
		vals = append(vals, a.AnyFloat64(float64(i)*1.5))
	}
	runtime.GC()
	for i, v := range vals {
		if v.(float64) != float64(i)*1.5 {
			t.Fatalf("boxed value %d corrupted: %v", i, v)
		}
	}
}

func TestAnyZeroAlloc(t *testing.T) {
	a := new(Arena)
	// Warm the slabs, then boxing through the arena must not allocate.
	for i := 0; i < 8; i++ {
		a.AnyFloat64(1)
		a.AnyInt32(2)
		a.AnyInt64(3)
		a.Reset()
	}
	var sink any
	if n := testing.AllocsPerRun(100, func() {
		a.Reset()
		sink = a.AnyFloat64(3.14)
		sink = a.AnyInt32(7)
		sink = a.AnyInt64(9)
	}); n != 0 {
		t.Fatalf("allocs per run = %v, want 0", n)
	}
	_ = sink
}

func TestStrings(t *testing.T) {
	a := new(Arena)
	src := []byte("hello arena")
	s := a.AnyString(src)
	src[0] = 'X' // arena string must be a copy, not an alias
	if s.(string) != "hello arena" {
		t.Fatalf("string aliases caller bytes: %q", s)
	}
}
