// Package sidl implements the Scientific Interface Definition Language of
// the CCA paper's §5: a programming-language-neutral IDL with
// "object-oriented semantics with an inheritance model similar to that of
// Java with multiple interface inheritance and single implementation
// inheritance", "IDL primitive data types for complex numbers and
// multidimensional arrays", exceptions for "cross-language error
// reporting", and method overriding for libraries that "exploit
// polymorphism through multiple inheritance" (the ESI standard's usage).
//
// The package provides the front end (lexer, parser, AST) and semantic
// resolution; repro/internal/sidl/ir builds dispatch tables and reflection
// metadata; repro/internal/sidl/codegen emits Go bindings whose stub→IOR→
// skeleton call path reproduces the paper's "approximately 2-3 function
// calls per interface method call" binding cost; and
// repro/internal/sidl/reflect provides runtime reflection and dynamic
// method invocation in the style of java.lang.reflect.
package sidl

import "fmt"

// Kind classifies a token.
type Kind int

// Token kinds.
const (
	TokEOF Kind = iota
	TokIdent
	TokInt
	TokVersion // dotted version literal, e.g. 1.0.2
	TokString

	// Punctuation.
	TokLBrace
	TokRBrace
	TokLParen
	TokRParen
	TokLAngle
	TokRAngle
	TokComma
	TokSemi
	TokDot
	TokAssign

	// Keywords.
	TokPackage
	TokVersionKW
	TokInterface
	TokClass
	TokEnum
	TokExtends
	TokImplements
	TokImplementsAll
	TokAbstract
	TokFinal
	TokStatic
	TokOneway
	TokIn
	TokOut
	TokInout
	TokThrows
	TokArray
)

var kindNames = map[Kind]string{
	TokEOF: "EOF", TokIdent: "identifier", TokInt: "integer", TokVersion: "version",
	TokString: "string",
	TokLBrace: "'{'", TokRBrace: "'}'", TokLParen: "'('", TokRParen: "')'",
	TokLAngle: "'<'", TokRAngle: "'>'", TokComma: "','", TokSemi: "';'",
	TokDot: "'.'", TokAssign: "'='",
	TokPackage: "'package'", TokVersionKW: "'version'", TokInterface: "'interface'",
	TokClass: "'class'", TokEnum: "'enum'", TokExtends: "'extends'",
	TokImplements: "'implements'", TokImplementsAll: "'implements-all'",
	TokAbstract: "'abstract'", TokFinal: "'final'", TokStatic: "'static'",
	TokOneway: "'oneway'", TokIn: "'in'", TokOut: "'out'", TokInout: "'inout'",
	TokThrows: "'throws'", TokArray: "'array'",
}

func (k Kind) String() string {
	if s, ok := kindNames[k]; ok {
		return s
	}
	return fmt.Sprintf("token(%d)", int(k))
}

var keywords = map[string]Kind{
	"package": TokPackage, "version": TokVersionKW, "interface": TokInterface,
	"class": TokClass, "enum": TokEnum, "extends": TokExtends,
	"implements": TokImplements, "implements-all": TokImplementsAll,
	"abstract": TokAbstract, "final": TokFinal, "static": TokStatic,
	"oneway": TokOneway, "in": TokIn, "out": TokOut, "inout": TokInout,
	"throws": TokThrows, "array": TokArray,
}

// Pos is a source position.
type Pos struct {
	Line, Col int
}

func (p Pos) String() string { return fmt.Sprintf("%d:%d", p.Line, p.Col) }

// Token is one lexical unit with its source position. Doc carries the
// comment block immediately preceding the token (no blank line between),
// which the parser attaches to declarations.
type Token struct {
	Kind Kind
	Text string
	Pos  Pos
	Doc  string
}

func (t Token) String() string {
	switch t.Kind {
	case TokIdent, TokInt, TokVersion, TokString:
		return fmt.Sprintf("%s %q", t.Kind, t.Text)
	default:
		return t.Kind.String()
	}
}
