package sidl

import "strconv"

// Parse parses SIDL source text into a File.
//
// Grammar (EBNF):
//
//	file        = { package } EOF .
//	package     = "package" qname [ "version" VERSION|INT ] "{" { decl } "}" .
//	decl        = interface | class | enum .
//	interface   = "interface" IDENT [ "extends" qname { "," qname } ]
//	              "{" { method } "}" .
//	class       = [ "abstract" ] "class" IDENT [ "extends" qname ]
//	              [ "implements" qname { "," qname } ]
//	              [ "implements-all" qname { "," qname } ]
//	              "{" { method } "}" .
//	enum        = "enum" IDENT "{" member { "," member } [","] "}" .
//	member      = IDENT [ "=" INT ] .
//	method      = { "static" | "final" | "oneway" } type IDENT
//	              "(" [ param { "," param } ] ")"
//	              [ "throws" qname { "," qname } ] ";" .
//	param       = [ "in" | "out" | "inout" ] type IDENT .
//	type        = "array" "<" type "," INT [ "," IDENT ] ">" | qname .
//	qname       = IDENT { "." IDENT } .
//
// Primitive names (void, double, dcomplex, ...) lex as identifiers and are
// recognized during type parsing.
func Parse(src string) (*File, error) {
	toks, err := Lex(src)
	if err != nil {
		return nil, err
	}
	p := &parser{toks: toks}
	return p.parseFile()
}

type parser struct {
	toks []Token
	i    int
}

func (p *parser) cur() Token  { return p.toks[p.i] }
func (p *parser) next() Token { t := p.toks[p.i]; p.i++; return t }

func (p *parser) accept(k Kind) (Token, bool) {
	if p.cur().Kind == k {
		return p.next(), true
	}
	return Token{}, false
}

func (p *parser) expect(k Kind) (Token, error) {
	if p.cur().Kind == k {
		return p.next(), nil
	}
	return Token{}, syntaxErrf(p.cur().Pos, "expected %s, found %s", k, p.cur())
}

func (p *parser) parseFile() (*File, error) {
	f := &File{}
	for p.cur().Kind != TokEOF {
		pkg, err := p.parsePackage()
		if err != nil {
			return nil, err
		}
		f.Packages = append(f.Packages, pkg)
	}
	if len(f.Packages) == 0 {
		return nil, syntaxErrf(p.cur().Pos, "empty file: expected at least one package")
	}
	return f, nil
}

func (p *parser) parsePackage() (*PackageDecl, error) {
	kw, err := p.expect(TokPackage)
	if err != nil {
		return nil, err
	}
	name, err := p.parseQName()
	if err != nil {
		return nil, err
	}
	pkg := &PackageDecl{Name: name.String(), Pos: kw.Pos}
	if _, ok := p.accept(TokVersionKW); ok {
		v := p.cur()
		if v.Kind != TokVersion && v.Kind != TokInt {
			return nil, syntaxErrf(v.Pos, "expected version number, found %s", v)
		}
		p.next()
		pkg.Version = v.Text
	}
	if _, err := p.expect(TokLBrace); err != nil {
		return nil, err
	}
	for p.cur().Kind != TokRBrace {
		d, err := p.parseDecl()
		if err != nil {
			return nil, err
		}
		pkg.Decls = append(pkg.Decls, d)
	}
	if _, err := p.expect(TokRBrace); err != nil {
		return nil, err
	}
	return pkg, nil
}

func (p *parser) parseDecl() (Decl, error) {
	switch p.cur().Kind {
	case TokInterface:
		return p.parseInterface()
	case TokClass, TokAbstract:
		return p.parseClass()
	case TokEnum:
		return p.parseEnum()
	default:
		return nil, syntaxErrf(p.cur().Pos, "expected interface, class, or enum, found %s", p.cur())
	}
}

func (p *parser) parseInterface() (*InterfaceDecl, error) {
	kw := p.next() // interface
	name, err := p.expect(TokIdent)
	if err != nil {
		return nil, err
	}
	d := &InterfaceDecl{Name: name.Text, Pos: kw.Pos, Doc: kw.Doc}
	if _, ok := p.accept(TokExtends); ok {
		d.Extends, err = p.parseQNameList()
		if err != nil {
			return nil, err
		}
	}
	if _, err := p.expect(TokLBrace); err != nil {
		return nil, err
	}
	for p.cur().Kind != TokRBrace {
		m, err := p.parseMethod()
		if err != nil {
			return nil, err
		}
		d.Methods = append(d.Methods, m)
	}
	p.next() // }
	return d, nil
}

func (p *parser) parseClass() (*ClassDecl, error) {
	d := &ClassDecl{Pos: p.cur().Pos, Doc: p.cur().Doc}
	if _, ok := p.accept(TokAbstract); ok {
		d.Abstract = true
	}
	if _, err := p.expect(TokClass); err != nil {
		return nil, err
	}
	name, err := p.expect(TokIdent)
	if err != nil {
		return nil, err
	}
	d.Name = name.Text
	if _, ok := p.accept(TokExtends); ok {
		base, err := p.parseQName()
		if err != nil {
			return nil, err
		}
		d.Extends = &base
	}
	for {
		if _, ok := p.accept(TokImplements); ok {
			list, err := p.parseQNameList()
			if err != nil {
				return nil, err
			}
			d.Implements = append(d.Implements, list...)
			continue
		}
		if _, ok := p.accept(TokImplementsAll); ok {
			list, err := p.parseQNameList()
			if err != nil {
				return nil, err
			}
			d.ImplementsAll = append(d.ImplementsAll, list...)
			continue
		}
		break
	}
	if _, err := p.expect(TokLBrace); err != nil {
		return nil, err
	}
	for p.cur().Kind != TokRBrace {
		m, err := p.parseMethod()
		if err != nil {
			return nil, err
		}
		d.Methods = append(d.Methods, m)
	}
	p.next() // }
	return d, nil
}

func (p *parser) parseEnum() (*EnumDecl, error) {
	kw := p.next() // enum
	name, err := p.expect(TokIdent)
	if err != nil {
		return nil, err
	}
	d := &EnumDecl{Name: name.Text, Pos: kw.Pos, Doc: kw.Doc}
	if _, err := p.expect(TokLBrace); err != nil {
		return nil, err
	}
	nextVal := 0
	for p.cur().Kind != TokRBrace {
		id, err := p.expect(TokIdent)
		if err != nil {
			return nil, err
		}
		mem := EnumMember{Name: id.Text, Pos: id.Pos}
		if _, ok := p.accept(TokAssign); ok {
			v, err := p.expect(TokInt)
			if err != nil {
				return nil, err
			}
			n, err := strconv.Atoi(v.Text)
			if err != nil {
				return nil, syntaxErrf(v.Pos, "bad enum value %q", v.Text)
			}
			mem.Value = n
			mem.Explicit = true
			nextVal = n + 1
		} else {
			mem.Value = nextVal
			nextVal++
		}
		d.Members = append(d.Members, mem)
		if _, ok := p.accept(TokComma); !ok {
			break
		}
	}
	if _, err := p.expect(TokRBrace); err != nil {
		return nil, err
	}
	if len(d.Members) == 0 {
		return nil, syntaxErrf(d.Pos, "enum %s has no members", d.Name)
	}
	return d, nil
}

func (p *parser) parseMethod() (*MethodDecl, error) {
	m := &MethodDecl{Pos: p.cur().Pos, Doc: p.cur().Doc}
	for {
		switch p.cur().Kind {
		case TokStatic:
			p.next()
			m.Static = true
			continue
		case TokFinal:
			p.next()
			m.Final = true
			continue
		case TokOneway:
			p.next()
			m.Oneway = true
			continue
		}
		break
	}
	ret, err := p.parseType()
	if err != nil {
		return nil, err
	}
	m.Ret = ret
	name, err := p.expect(TokIdent)
	if err != nil {
		return nil, err
	}
	m.Name = name.Text
	if _, err := p.expect(TokLParen); err != nil {
		return nil, err
	}
	if p.cur().Kind != TokRParen {
		for {
			prm, err := p.parseParam()
			if err != nil {
				return nil, err
			}
			m.Params = append(m.Params, prm)
			if _, ok := p.accept(TokComma); !ok {
				break
			}
		}
	}
	if _, err := p.expect(TokRParen); err != nil {
		return nil, err
	}
	if _, ok := p.accept(TokThrows); ok {
		m.Throws, err = p.parseQNameList()
		if err != nil {
			return nil, err
		}
	}
	if _, err := p.expect(TokSemi); err != nil {
		return nil, err
	}
	if m.Oneway && !m.Ret.IsVoid() {
		return nil, syntaxErrf(m.Pos, "oneway method %s must return void", m.Name)
	}
	return m, nil
}

func (p *parser) parseParam() (Param, error) {
	prm := Param{Mode: ModeIn, Pos: p.cur().Pos}
	switch p.cur().Kind {
	case TokIn:
		p.next()
	case TokOut:
		p.next()
		prm.Mode = ModeOut
	case TokInout:
		p.next()
		prm.Mode = ModeInOut
	}
	t, err := p.parseType()
	if err != nil {
		return Param{}, err
	}
	if t.IsVoid() {
		return Param{}, syntaxErrf(prm.Pos, "void parameter")
	}
	prm.Type = t
	name, err := p.expect(TokIdent)
	if err != nil {
		return Param{}, err
	}
	prm.Name = name.Text
	return prm, nil
}

func (p *parser) parseType() (TypeRef, error) {
	pos := p.cur().Pos
	if _, ok := p.accept(TokArray); ok {
		if _, err := p.expect(TokLAngle); err != nil {
			return TypeRef{}, err
		}
		elem, err := p.parseType()
		if err != nil {
			return TypeRef{}, err
		}
		if elem.IsVoid() || elem.Array != nil {
			return TypeRef{}, syntaxErrf(pos, "invalid array element type %s", elem)
		}
		if _, err := p.expect(TokComma); err != nil {
			return TypeRef{}, err
		}
		rk, err := p.expect(TokInt)
		if err != nil {
			return TypeRef{}, err
		}
		rank, err := strconv.Atoi(rk.Text)
		if err != nil || rank < 1 || rank > 7 {
			return TypeRef{}, syntaxErrf(rk.Pos, "array rank %q outside [1,7]", rk.Text)
		}
		order := ""
		if _, ok := p.accept(TokComma); ok {
			o, err := p.expect(TokIdent)
			if err != nil {
				return TypeRef{}, err
			}
			switch o.Text {
			case "row-major", "column-major":
				order = o.Text
			default:
				return TypeRef{}, syntaxErrf(o.Pos, "array order %q (want row-major or column-major)", o.Text)
			}
		}
		if _, err := p.expect(TokRAngle); err != nil {
			return TypeRef{}, err
		}
		return TypeRef{Array: &ArrayRef{Elem: elem, Rank: rank, Order: order}, Pos: pos}, nil
	}
	name, err := p.parseQName()
	if err != nil {
		return TypeRef{}, err
	}
	if len(name.Parts) == 1 {
		if prim := LookupPrimitive(name.Parts[0]); prim != PrimInvalid {
			return TypeRef{Prim: prim, Pos: pos}, nil
		}
	}
	return TypeRef{Named: &name, Pos: pos}, nil
}

func (p *parser) parseQName() (TypeName, error) {
	first, err := p.expect(TokIdent)
	if err != nil {
		return TypeName{}, err
	}
	name := TypeName{Parts: []string{first.Text}, Pos: first.Pos}
	for p.cur().Kind == TokDot {
		p.next()
		part, err := p.expect(TokIdent)
		if err != nil {
			return TypeName{}, err
		}
		name.Parts = append(name.Parts, part.Text)
	}
	return name, nil
}

func (p *parser) parseQNameList() ([]TypeName, error) {
	var out []TypeName
	for {
		n, err := p.parseQName()
		if err != nil {
			return nil, err
		}
		out = append(out, n)
		if _, ok := p.accept(TokComma); !ok {
			return out, nil
		}
	}
}
