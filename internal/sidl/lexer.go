package sidl

import (
	"errors"
	"fmt"
	"strings"
	"unicode"
)

// ErrSyntax is the base error for lexical and parse failures.
var ErrSyntax = errors.New("sidl: syntax error")

// SyntaxError wraps a lexical or parse failure with its position.
type SyntaxError struct {
	Pos Pos
	Msg string
}

func (e *SyntaxError) Error() string { return fmt.Sprintf("sidl: %s: %s", e.Pos, e.Msg) }

// Unwrap lets errors.Is(err, ErrSyntax) match any SyntaxError.
func (e *SyntaxError) Unwrap() error { return ErrSyntax }

func syntaxErrf(pos Pos, format string, args ...any) error {
	return &SyntaxError{Pos: pos, Msg: fmt.Sprintf(format, args...)}
}

// lexer scans SIDL source into tokens. It handles //-comments, /* */
// comments, identifiers (with '-' allowed inside to form the
// 'implements-all' keyword), integers, dotted version literals, and
// punctuation.
type lexer struct {
	src  string
	off  int
	line int
	col  int
	// pendingDoc accumulates the comment block immediately preceding the
	// next token; a blank line breaks the association (Go doc-comment
	// convention, which SIDL inherits here).
	pendingDoc  []string
	lastComment int // line the last comment ended on
}

func newLexer(src string) *lexer { return &lexer{src: src, line: 1, col: 1} }

func (l *lexer) pos() Pos { return Pos{Line: l.line, Col: l.col} }

func (l *lexer) peek() byte {
	if l.off >= len(l.src) {
		return 0
	}
	return l.src[l.off]
}

func (l *lexer) peek2() byte {
	if l.off+1 >= len(l.src) {
		return 0
	}
	return l.src[l.off+1]
}

func (l *lexer) advance() byte {
	c := l.src[l.off]
	l.off++
	if c == '\n' {
		l.line++
		l.col = 1
	} else {
		l.col++
	}
	return c
}

func (l *lexer) skipSpaceAndComments() error {
	for l.off < len(l.src) {
		c := l.peek()
		switch {
		case c == ' ' || c == '\t' || c == '\r' || c == '\n':
			if c == '\n' && len(l.pendingDoc) > 0 && l.line > l.lastComment {
				// A blank line after the comment block detaches it.
				l.pendingDoc = nil
			}
			l.advance()
		case c == '/' && l.peek2() == '/':
			start := l.off
			for l.off < len(l.src) && l.peek() != '\n' {
				l.advance()
			}
			text := strings.TrimPrefix(l.src[start:l.off], "//")
			l.pendingDoc = append(l.pendingDoc, strings.TrimSpace(text))
			l.lastComment = l.line
		case c == '/' && l.peek2() == '*':
			start := l.pos()
			bodyStart := l.off + 2
			l.advance()
			l.advance()
			closed := false
			for l.off < len(l.src) {
				if l.peek() == '*' && l.peek2() == '/' {
					body := l.src[bodyStart:l.off]
					for _, line := range strings.Split(body, "\n") {
						l.pendingDoc = append(l.pendingDoc, strings.TrimSpace(line))
					}
					l.lastComment = l.line
					l.advance()
					l.advance()
					closed = true
					break
				}
				l.advance()
			}
			if !closed {
				return syntaxErrf(start, "unterminated block comment")
			}
		default:
			return nil
		}
	}
	return nil
}

// takeDoc consumes the pending doc-comment block.
func (l *lexer) takeDoc() string {
	if len(l.pendingDoc) == 0 {
		return ""
	}
	doc := strings.Join(l.pendingDoc, "\n")
	l.pendingDoc = nil
	return strings.TrimSpace(doc)
}

func isIdentStart(c byte) bool {
	return c == '_' || unicode.IsLetter(rune(c))
}

func isIdentPart(c byte) bool {
	return c == '_' || unicode.IsLetter(rune(c)) || unicode.IsDigit(rune(c))
}

// next returns the next token, carrying any immediately preceding doc
// comment in Token.Doc.
func (l *lexer) next() (Token, error) {
	if err := l.skipSpaceAndComments(); err != nil {
		return Token{}, err
	}
	doc := l.takeDoc()
	tok, err := l.scanToken()
	if err != nil {
		return tok, err
	}
	tok.Doc = doc
	return tok, nil
}

// scanToken lexes one token at the current offset.
func (l *lexer) scanToken() (Token, error) {
	pos := l.pos()
	if l.off >= len(l.src) {
		return Token{Kind: TokEOF, Pos: pos}, nil
	}
	c := l.peek()
	switch {
	case isIdentStart(c):
		start := l.off
		l.advance()
		for l.off < len(l.src) && isIdentPart(l.peek()) {
			l.advance()
		}
		// Allow '-' joining identifier parts: SIDL has no arithmetic, and
		// hyphenated words appear as the 'implements-all' keyword and the
		// 'row-major' / 'column-major' array orders.
		for l.off < len(l.src) && l.peek() == '-' && l.off+1 < len(l.src) && isIdentStart(l.peek2()) {
			l.advance() // '-'
			for l.off < len(l.src) && isIdentPart(l.peek()) {
				l.advance()
			}
		}
		text := l.src[start:l.off]
		if k, ok := keywords[text]; ok {
			return Token{Kind: k, Text: text, Pos: pos}, nil
		}
		return Token{Kind: TokIdent, Text: text, Pos: pos}, nil

	case unicode.IsDigit(rune(c)):
		start := l.off
		l.advance()
		dots := 0
		for l.off < len(l.src) && (unicode.IsDigit(rune(l.peek())) || (l.peek() == '.' && unicode.IsDigit(rune(l.peek2())))) {
			if l.peek() == '.' {
				dots++
			}
			l.advance()
		}
		text := l.src[start:l.off]
		if dots > 0 {
			return Token{Kind: TokVersion, Text: text, Pos: pos}, nil
		}
		return Token{Kind: TokInt, Text: text, Pos: pos}, nil

	case c == '"':
		l.advance()
		var sb strings.Builder
		for l.off < len(l.src) && l.peek() != '"' {
			if l.peek() == '\n' {
				return Token{}, syntaxErrf(pos, "unterminated string literal")
			}
			sb.WriteByte(l.advance())
		}
		if l.off >= len(l.src) {
			return Token{}, syntaxErrf(pos, "unterminated string literal")
		}
		l.advance()
		return Token{Kind: TokString, Text: sb.String(), Pos: pos}, nil
	}

	l.advance()
	switch c {
	case '{':
		return Token{Kind: TokLBrace, Text: "{", Pos: pos}, nil
	case '}':
		return Token{Kind: TokRBrace, Text: "}", Pos: pos}, nil
	case '(':
		return Token{Kind: TokLParen, Text: "(", Pos: pos}, nil
	case ')':
		return Token{Kind: TokRParen, Text: ")", Pos: pos}, nil
	case '<':
		return Token{Kind: TokLAngle, Text: "<", Pos: pos}, nil
	case '>':
		return Token{Kind: TokRAngle, Text: ">", Pos: pos}, nil
	case ',':
		return Token{Kind: TokComma, Text: ",", Pos: pos}, nil
	case ';':
		return Token{Kind: TokSemi, Text: ";", Pos: pos}, nil
	case '.':
		return Token{Kind: TokDot, Text: ".", Pos: pos}, nil
	case '=':
		return Token{Kind: TokAssign, Text: "=", Pos: pos}, nil
	}
	return Token{}, syntaxErrf(pos, "unexpected character %q", string(rune(c)))
}

// Lex scans the entire source, returning the token stream (ending in EOF).
func Lex(src string) ([]Token, error) {
	l := newLexer(src)
	var out []Token
	for {
		t, err := l.next()
		if err != nil {
			return nil, err
		}
		out = append(out, t)
		if t.Kind == TokEOF {
			return out, nil
		}
	}
}
