package sidl

import (
	"fmt"
	"strings"
)

// Format renders a parsed File back to canonical SIDL text. Parsing the
// output reproduces an equivalent AST (round-trip property, tested).
func Format(f *File) string {
	var b strings.Builder
	for i, pkg := range f.Packages {
		if i > 0 {
			b.WriteString("\n")
		}
		formatPackage(&b, pkg)
	}
	return b.String()
}

func formatPackage(b *strings.Builder, pkg *PackageDecl) {
	fmt.Fprintf(b, "package %s", pkg.Name)
	if pkg.Version != "" {
		fmt.Fprintf(b, " version %s", pkg.Version)
	}
	b.WriteString(" {\n")
	for i, d := range pkg.Decls {
		if i > 0 {
			b.WriteString("\n")
		}
		switch d := d.(type) {
		case *InterfaceDecl:
			formatInterface(b, d)
		case *ClassDecl:
			formatClass(b, d)
		case *EnumDecl:
			formatEnum(b, d)
		}
	}
	b.WriteString("}\n")
}

func formatDoc(b *strings.Builder, indent, doc string) {
	if doc == "" {
		return
	}
	for _, line := range strings.Split(doc, "\n") {
		if line == "" {
			fmt.Fprintf(b, "%s//\n", indent)
		} else {
			fmt.Fprintf(b, "%s// %s\n", indent, line)
		}
	}
}

func formatInterface(b *strings.Builder, d *InterfaceDecl) {
	formatDoc(b, "  ", d.Doc)
	fmt.Fprintf(b, "  interface %s", d.Name)
	if len(d.Extends) > 0 {
		fmt.Fprintf(b, " extends %s", joinNames(d.Extends))
	}
	b.WriteString(" {\n")
	for _, m := range d.Methods {
		formatMethod(b, m)
	}
	b.WriteString("  }\n")
}

func formatClass(b *strings.Builder, d *ClassDecl) {
	formatDoc(b, "  ", d.Doc)
	b.WriteString("  ")
	if d.Abstract {
		b.WriteString("abstract ")
	}
	fmt.Fprintf(b, "class %s", d.Name)
	if d.Extends != nil {
		fmt.Fprintf(b, " extends %s", d.Extends.String())
	}
	if len(d.Implements) > 0 {
		fmt.Fprintf(b, " implements %s", joinNames(d.Implements))
	}
	if len(d.ImplementsAll) > 0 {
		fmt.Fprintf(b, " implements-all %s", joinNames(d.ImplementsAll))
	}
	b.WriteString(" {\n")
	for _, m := range d.Methods {
		formatMethod(b, m)
	}
	b.WriteString("  }\n")
}

func formatEnum(b *strings.Builder, d *EnumDecl) {
	formatDoc(b, "  ", d.Doc)
	fmt.Fprintf(b, "  enum %s {\n", d.Name)
	for i, m := range d.Members {
		b.WriteString("    ")
		b.WriteString(m.Name)
		if m.Explicit {
			fmt.Fprintf(b, " = %d", m.Value)
		}
		if i < len(d.Members)-1 {
			b.WriteString(",")
		}
		b.WriteString("\n")
	}
	b.WriteString("  }\n")
}

func formatMethod(b *strings.Builder, m *MethodDecl) {
	formatDoc(b, "    ", m.Doc)
	b.WriteString("    ")
	if m.Static {
		b.WriteString("static ")
	}
	if m.Final {
		b.WriteString("final ")
	}
	if m.Oneway {
		b.WriteString("oneway ")
	}
	fmt.Fprintf(b, "%s %s(", m.Ret, m.Name)
	for i, p := range m.Params {
		if i > 0 {
			b.WriteString(", ")
		}
		fmt.Fprintf(b, "%s %s %s", p.Mode, p.Type, p.Name)
	}
	b.WriteString(")")
	if len(m.Throws) > 0 {
		fmt.Fprintf(b, " throws %s", joinNames(m.Throws))
	}
	b.WriteString(";\n")
}

func joinNames(ns []TypeName) string {
	parts := make([]string, len(ns))
	for i, n := range ns {
		parts[i] = n.String()
	}
	return strings.Join(parts, ", ")
}

// Describe renders a one-line summary of each resolved type — used by the
// sidlc tool's -describe mode and the repository listings.
func (t *Table) Describe() string {
	var b strings.Builder
	for _, q := range t.Order {
		switch t.Lookup(q) {
		case "interface":
			i := t.Interfaces[q]
			fmt.Fprintf(&b, "interface %s (%d methods", q, len(i.Methods))
			if len(i.Extends) > 0 {
				names := make([]string, len(i.Extends))
				for k, e := range i.Extends {
					names[k] = e.QName
				}
				fmt.Fprintf(&b, "; extends %s", strings.Join(names, ", "))
			}
			b.WriteString(")\n")
		case "class":
			c := t.Classes[q]
			kind := "class"
			if c.Abstract {
				kind = "abstract class"
			}
			fmt.Fprintf(&b, "%s %s (%d methods, %d interfaces)\n", kind, q, len(c.Methods), len(c.AllInterfaces))
		case "enum":
			e := t.Enums[q]
			fmt.Fprintf(&b, "enum %s (%d members)\n", q, len(e.Decl.Members))
		}
	}
	return b.String()
}
