//go:build !amd64 || noasm

package simd

// HasAVX2 reports whether the assembler kernels are active: never, on a
// noasm or non-amd64 build.
func HasAVX2() bool { return false }

// Backend names the active kernel implementation, for bench row labels.
func Backend() string { return "go" }

// Dot returns the dot product over min(len(x), len(y)) elements.
func Dot(x, y []float64) float64 { return DotGo(x, y) }

// SpMVRow returns the dot product of a CSR row's stored values with the
// gathered entries of x. Every cols value must be a valid index into x.
func SpMVRow(vals []float64, cols []int, x []float64) float64 {
	return SpMVRowGo(vals, cols, x)
}

// PackF64LE writes src as little-endian bytes into dst (8*len(src)
// bytes); panics if dst is too short.
func PackF64LE(dst []byte, src []float64) {
	if len(dst) < 8*len(src) {
		panic("simd: PackF64LE: dst shorter than 8*len(src)")
	}
	PackF64LEGo(dst, src)
}

// UnpackF64LE fills dst from little-endian bytes in src (8*len(dst)
// bytes); panics if src is too short.
func UnpackF64LE(dst []float64, src []byte) {
	if len(src) < 8*len(dst) {
		panic("simd: UnpackF64LE: src shorter than 8*len(dst)")
	}
	UnpackF64LEGo(dst, src)
}
