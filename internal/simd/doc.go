// Package simd holds the hand-vectorized compute kernels behind the
// numerical hot paths: Dot (vector inner product), SpMVRow (one CSR row of
// a sparse matrix-vector product), and PackF64LE/UnpackF64LE (the
// little-endian byte transcoding under PairStream and the CDR float64
// array codec).
//
// Every kernel exists twice:
//
//   - a portable pure-Go form (DotGo, SpMVRowGo, ...), always compiled on
//     every platform, which defines the reference semantics; and
//   - an AVX2 assembler form (amd64 only), selected at runtime when the
//     CPU and OS support it.
//
// The exported entry points (Dot, SpMVRow, PackF64LE, UnpackF64LE)
// dispatch between the two. Building with the `noasm` tag — or for any
// non-amd64 GOARCH — compiles only the Go forms, so the fallback path is
// a first-class, CI-exercised configuration rather than dead code.
//
// Bit-identical results are a hard contract, not an aspiration: callers
// such as internal/par's deterministic chunk reduction and the
// linalg equivalence tests assert that a computation yields the same bits
// regardless of backend. The assembler therefore mirrors the Go kernels'
// floating-point evaluation order exactly: Dot accumulates into four
// independent lanes and combines them as (s0+s2)+(s1+s3) — precisely the
// horizontal reduction VEXTRACTF128/VADDPD/VHADDPD performs — and no FMA
// contraction is used anywhere (separate multiply and add round twice,
// like the Go code). The Go forms are written in the same lane order so
// the two backends agree to the last ulp, which the parity property tests
// in this package verify on every CI run, with and without `noasm`.
package simd
