//go:build amd64 && !noasm

package simd

import "unsafe"

// useAVX2 is resolved once at init: AVX2 in CPUID, AVX+OSXSAVE, and the
// OS saving X/Y register state across context switches (XCR0 bits 1-2).
var useAVX2 = hasAVX2()

// HasAVX2 reports whether the assembler kernels are active in this
// process.
func HasAVX2() bool { return useAVX2 }

// Backend names the active kernel implementation, for bench row labels.
func Backend() string {
	if useAVX2 {
		return "avx2"
	}
	return "go"
}

//go:noescape
func dotAVX2(x, y *float64, n int) float64

//go:noescape
func spmvRowAVX2(vals *float64, cols *int, x *float64, n int) float64

//go:noescape
func memcpy8(dst, src unsafe.Pointer, n int)

// minVecLen is the shortest input routed to the assembler: below one full
// 8-lane pass the call overhead exceeds the vector win and the kernels
// would run their scalar tails anyway.
const minVecLen = 8

// Dot returns the dot product over min(len(x), len(y)) elements,
// bit-identical to DotGo.
func Dot(x, y []float64) float64 {
	n := len(x)
	if len(y) < n {
		n = len(y)
	}
	if !useAVX2 || n < minVecLen {
		return DotGo(x, y)
	}
	return dotAVX2(&x[0], &y[0], n)
}

// SpMVRow returns the dot product of a CSR row's stored values with the
// gathered entries of x, bit-identical to SpMVRowGo. Every cols value
// must be a valid index into x.
func SpMVRow(vals []float64, cols []int, x []float64) float64 {
	n := len(vals)
	if len(cols) < n {
		n = len(cols)
	}
	if !useAVX2 || n < minVecLen {
		return SpMVRowGo(vals, cols, x)
	}
	return spmvRowAVX2(&vals[0], &cols[0], &x[0], n)
}

// PackF64LE writes src as little-endian bytes into dst (8*len(src)
// bytes); panics if dst is too short.
func PackF64LE(dst []byte, src []float64) {
	n := len(src)
	if len(dst) < 8*n {
		panic("simd: PackF64LE: dst shorter than 8*len(src)")
	}
	if !useAVX2 || n < minVecLen {
		PackF64LEGo(dst, src)
		return
	}
	memcpy8(unsafe.Pointer(&dst[0]), unsafe.Pointer(&src[0]), n)
}

// UnpackF64LE fills dst from little-endian bytes in src (8*len(dst)
// bytes); panics if src is too short.
func UnpackF64LE(dst []float64, src []byte) {
	n := len(dst)
	if len(src) < 8*n {
		panic("simd: UnpackF64LE: src shorter than 8*len(dst)")
	}
	if !useAVX2 || n < minVecLen {
		UnpackF64LEGo(dst, src)
		return
	}
	memcpy8(unsafe.Pointer(&dst[0]), unsafe.Pointer(&src[0]), n)
}
