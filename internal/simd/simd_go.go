package simd

import (
	"encoding/binary"
	"math"
)

// The Go kernels below are always compiled, on every GOARCH, with or
// without the noasm tag. They define the reference semantics the AVX2
// kernels must reproduce bit-for-bit, and they are exported so the parity
// tests (and honest fallback benchmarks) can reach them even on a build
// where the dispatchers resolve to the assembler.
//
// Lane discipline: each reduction kernel accumulates into eight
// independent lanes, elements strided by eight, and combines them as
//
//	((a0+a4) + (a2+a6)) + ((a1+a5) + (a3+a7))
//
// which is exactly the order a two-register AVX2 accumulator reduces in:
// VADDPD folds lanes 4..7 onto 0..3, VEXTRACTF128+VADDPD folds 2,3 onto
// 0,1, and VHADDPD adds the final pair. Remaining elements are added
// sequentially. No fused multiply-add anywhere: the assembler uses
// separate VMULPD/VADDPD so both backends round twice per term.

// DotGo is the portable dot-product kernel over min(len(x), len(y))
// elements.
func DotGo(x, y []float64) float64 {
	n := len(x)
	if len(y) < n {
		n = len(y)
	}
	var a0, a1, a2, a3, a4, a5, a6, a7 float64
	i := 0
	for ; i+8 <= n; i += 8 {
		a0 += x[i] * y[i]
		a1 += x[i+1] * y[i+1]
		a2 += x[i+2] * y[i+2]
		a3 += x[i+3] * y[i+3]
		a4 += x[i+4] * y[i+4]
		a5 += x[i+5] * y[i+5]
		a6 += x[i+6] * y[i+6]
		a7 += x[i+7] * y[i+7]
	}
	s := ((a0 + a4) + (a2 + a6)) + ((a1 + a5) + (a3 + a7))
	for ; i < n; i++ {
		s += x[i] * y[i]
	}
	return s
}

// SpMVRowGo is the portable CSR row kernel: the dot product of a row's
// stored values with the gathered entries of x, over
// min(len(vals), len(cols)) elements. Every cols value must be a valid
// index into x (CSR validates this at construction); out-of-range
// indices panic here and are undefined behaviour in the assembler.
func SpMVRowGo(vals []float64, cols []int, x []float64) float64 {
	n := len(vals)
	if len(cols) < n {
		n = len(cols)
	}
	var a0, a1, a2, a3, a4, a5, a6, a7 float64
	i := 0
	for ; i+8 <= n; i += 8 {
		a0 += vals[i] * x[cols[i]]
		a1 += vals[i+1] * x[cols[i+1]]
		a2 += vals[i+2] * x[cols[i+2]]
		a3 += vals[i+3] * x[cols[i+3]]
		a4 += vals[i+4] * x[cols[i+4]]
		a5 += vals[i+5] * x[cols[i+5]]
		a6 += vals[i+6] * x[cols[i+6]]
		a7 += vals[i+7] * x[cols[i+7]]
	}
	s := ((a0 + a4) + (a2 + a6)) + ((a1 + a5) + (a3 + a7))
	for ; i < n; i++ {
		s += vals[i] * x[cols[i]]
	}
	return s
}

// PackF64LEGo writes src as little-endian IEEE-754 bytes into dst,
// 8*len(src) bytes total, independent of host endianness.
func PackF64LEGo(dst []byte, src []float64) {
	for i, v := range src {
		binary.LittleEndian.PutUint64(dst[8*i:], math.Float64bits(v))
	}
}

// UnpackF64LEGo fills dst from 8*len(dst) little-endian IEEE-754 bytes
// in src, independent of host endianness.
func UnpackF64LEGo(dst []float64, src []byte) {
	for i := range dst {
		dst[i] = math.Float64frombits(binary.LittleEndian.Uint64(src[8*i:]))
	}
}
