package simd

import (
	"math/rand"
	"testing"
)

// Benchmarks at the acceptance size (65536 elements) plus a small and a
// cache-spilling size. The *Go rows are the honest fallback baseline the
// ≥1.5× claim in EXPERIMENTS.md E12 is measured against.

func benchVecs(n int) ([]float64, []float64) {
	r := rand.New(rand.NewSource(7))
	return randSlice(r, n), randSlice(r, n)
}

func benchDot(b *testing.B, n int, f func(x, y []float64) float64) {
	x, y := benchVecs(n)
	b.SetBytes(int64(16 * n))
	b.ResetTimer()
	var s float64
	for i := 0; i < b.N; i++ {
		s = f(x, y)
	}
	sinkF64 = s
}

var sinkF64 float64

func BenchmarkDot1k(b *testing.B)    { benchDot(b, 1024, Dot) }
func BenchmarkDotGo1k(b *testing.B)  { benchDot(b, 1024, DotGo) }
func BenchmarkDot64k(b *testing.B)   { benchDot(b, 65536, Dot) }
func BenchmarkDotGo64k(b *testing.B) { benchDot(b, 65536, DotGo) }
func BenchmarkDot1M(b *testing.B)    { benchDot(b, 1<<20, Dot) }
func BenchmarkDotGo1M(b *testing.B)  { benchDot(b, 1<<20, DotGo) }

func benchSpMV(b *testing.B, n int, f func(vals []float64, cols []int, x []float64) float64) {
	r := rand.New(rand.NewSource(8))
	vals := randSlice(r, n)
	x := randSlice(r, n)
	cols := make([]int, n)
	for i := range cols {
		// Banded access pattern: near-diagonal like a stencil matrix row.
		c := i + r.Intn(9) - 4
		if c < 0 {
			c = 0
		}
		if c >= n {
			c = n - 1
		}
		cols[i] = c
	}
	b.SetBytes(int64(24 * n))
	b.ResetTimer()
	var s float64
	for i := 0; i < b.N; i++ {
		s = f(vals, cols, x)
	}
	sinkF64 = s
}

func BenchmarkSpMVRow64k(b *testing.B)   { benchSpMV(b, 65536, SpMVRow) }
func BenchmarkSpMVRowGo64k(b *testing.B) { benchSpMV(b, 65536, SpMVRowGo) }

func benchPack(b *testing.B, n int, f func(dst []byte, src []float64)) {
	r := rand.New(rand.NewSource(9))
	src := randSlice(r, n)
	dst := make([]byte, 8*n)
	b.SetBytes(int64(8 * n))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		f(dst, src)
	}
}

func BenchmarkPack64k(b *testing.B)   { benchPack(b, 65536, PackF64LE) }
func BenchmarkPackGo64k(b *testing.B) { benchPack(b, 65536, PackF64LEGo) }

func benchUnpack(b *testing.B, n int, f func(dst []float64, src []byte)) {
	r := rand.New(rand.NewSource(10))
	src := make([]byte, 8*n)
	PackF64LEGo(src, randSlice(r, n))
	dst := make([]float64, n)
	b.SetBytes(int64(8 * n))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		f(dst, src)
	}
}

func BenchmarkUnpack64k(b *testing.B)   { benchUnpack(b, 65536, UnpackF64LE) }
func BenchmarkUnpackGo64k(b *testing.B) { benchUnpack(b, 65536, UnpackF64LEGo) }
