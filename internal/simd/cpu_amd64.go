//go:build amd64 && !noasm

package simd

// cpuid executes CPUID with the given leaf/subleaf.
func cpuid(leaf, sub uint32) (eax, ebx, ecx, edx uint32)

// xgetbv reads XCR0 (extended control register 0).
func xgetbv() (eax, edx uint32)

// hasAVX2 checks, in order: the CPU reports OSXSAVE and AVX (CPUID.1
// ECX bits 27/28), the OS saves XMM and YMM state across context
// switches (XCR0 bits 1-2), and the CPU reports AVX2 (CPUID.7.0 EBX
// bit 5). All three are required before a single VEX.256 instruction may
// execute.
func hasAVX2() bool {
	maxID, _, _, _ := cpuid(0, 0)
	if maxID < 7 {
		return false
	}
	_, _, c, _ := cpuid(1, 0)
	const osxsaveAVX = 1<<27 | 1<<28
	if c&osxsaveAVX != osxsaveAVX {
		return false
	}
	xcr0, _ := xgetbv()
	if xcr0&0x6 != 0x6 { // SSE and AVX state enabled
		return false
	}
	_, b, _, _ := cpuid(7, 0)
	return b&(1<<5) != 0 // AVX2
}
