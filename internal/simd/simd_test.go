package simd

import (
	"math"
	"math/rand"
	"testing"
)

// randSlice fills odd lengths and magnitudes spanning many exponents, so
// parity failures from reassociation or FMA contraction cannot hide
// behind benign rounding.
func randSlice(r *rand.Rand, n int) []float64 {
	s := make([]float64, n)
	for i := range s {
		s[i] = (r.Float64() - 0.5) * math.Pow(10, float64(r.Intn(13)-6))
		if r.Intn(32) == 0 {
			s[i] = 0 // exact zeros exercise the ±0 paths
		}
	}
	return s
}

// TestDotParity asserts the dispatched Dot is bit-identical to the
// portable reference at every length through several vector widths and
// at misaligned offsets (subslices never 32-byte aligned).
func TestDotParity(t *testing.T) {
	t.Logf("backend: %s", Backend())
	r := rand.New(rand.NewSource(1))
	for n := 0; n <= 67; n++ {
		x, y := randSlice(r, n+3), randSlice(r, n+3)
		for off := 0; off < 3; off++ {
			got := Dot(x[off:off+n], y[off:off+n])
			want := DotGo(x[off:off+n], y[off:off+n])
			if math.Float64bits(got) != math.Float64bits(want) {
				t.Fatalf("n=%d off=%d: Dot=%x DotGo=%x", n, off,
					math.Float64bits(got), math.Float64bits(want))
			}
		}
	}
	// Unequal lengths truncate to the shorter.
	x, y := randSlice(r, 40), randSlice(r, 23)
	if got, want := Dot(x, y), DotGo(x[:23], y); math.Float64bits(got) != math.Float64bits(want) {
		t.Fatalf("unequal lengths: got %x want %x", math.Float64bits(got), math.Float64bits(want))
	}
}

// TestDotParityLarge crosses the cache-resident sizes the benchmarks
// use, where the assembler runs thousands of vector iterations.
func TestDotParityLarge(t *testing.T) {
	r := rand.New(rand.NewSource(2))
	for _, n := range []int{1021, 4096, 65536, 65537} {
		x, y := randSlice(r, n), randSlice(r, n)
		got, want := Dot(x, y), DotGo(x, y)
		if math.Float64bits(got) != math.Float64bits(want) {
			t.Fatalf("n=%d: Dot=%x DotGo=%x", n, math.Float64bits(got), math.Float64bits(want))
		}
	}
}

func TestSpMVRowParity(t *testing.T) {
	r := rand.New(rand.NewSource(3))
	x := randSlice(r, 257)
	for n := 0; n <= 67; n++ {
		vals := randSlice(r, n)
		cols := make([]int, n)
		for i := range cols {
			cols[i] = r.Intn(len(x))
		}
		got := SpMVRow(vals, cols, x)
		want := SpMVRowGo(vals, cols, x)
		if math.Float64bits(got) != math.Float64bits(want) {
			t.Fatalf("n=%d: SpMVRow=%x SpMVRowGo=%x", n,
				math.Float64bits(got), math.Float64bits(want))
		}
	}
	// Duplicate and out-of-order column indices are legal CSR-adjacent
	// shapes (e.g. unsorted rows); the gather must not care.
	vals := randSlice(r, 24)
	cols := make([]int, 24)
	for i := range cols {
		cols[i] = (i * 7) % 5
	}
	if got, want := SpMVRow(vals, cols, x), SpMVRowGo(vals, cols, x); math.Float64bits(got) != math.Float64bits(want) {
		t.Fatalf("dup cols: got %x want %x", math.Float64bits(got), math.Float64bits(want))
	}
}

func TestSpMVRowParityLarge(t *testing.T) {
	r := rand.New(rand.NewSource(4))
	x := randSlice(r, 1<<16)
	for _, n := range []int{1021, 65536, 65543} {
		vals := randSlice(r, n)
		cols := make([]int, n)
		for i := range cols {
			cols[i] = r.Intn(len(x))
		}
		got, want := SpMVRow(vals, cols, x), SpMVRowGo(vals, cols, x)
		if math.Float64bits(got) != math.Float64bits(want) {
			t.Fatalf("n=%d: got %x want %x", n, math.Float64bits(got), math.Float64bits(want))
		}
	}
}

func TestPackUnpackParity(t *testing.T) {
	r := rand.New(rand.NewSource(5))
	for _, n := range []int{0, 1, 3, 7, 8, 9, 15, 16, 17, 63, 64, 65, 1000, 65536} {
		src := randSlice(r, n)
		src = append(src, math.Inf(1), math.Inf(-1), math.Copysign(0, -1), 5e-324)
		n = len(src)
		got := make([]byte, 8*n+5)
		want := make([]byte, 8*n+5)
		PackF64LE(got[:8*n], src)
		PackF64LEGo(want[:8*n], src)
		for i := range got {
			if got[i] != want[i] {
				t.Fatalf("n=%d: pack byte %d: got %#x want %#x", n, i, got[i], want[i])
			}
		}
		back := make([]float64, n)
		UnpackF64LE(back, got[:8*n])
		for i := range back {
			if math.Float64bits(back[i]) != math.Float64bits(src[i]) {
				t.Fatalf("n=%d: round-trip elem %d: got %x want %x", n, i,
					math.Float64bits(back[i]), math.Float64bits(src[i]))
			}
		}
		backGo := make([]float64, n)
		UnpackF64LEGo(backGo, got[:8*n])
		for i := range backGo {
			if math.Float64bits(backGo[i]) != math.Float64bits(back[i]) {
				t.Fatalf("n=%d: unpack parity elem %d", n, i)
			}
		}
	}
}

func TestPackBoundsPanic(t *testing.T) {
	for name, f := range map[string]func(){
		"pack":   func() { PackF64LE(make([]byte, 15), make([]float64, 2)) },
		"unpack": func() { UnpackF64LE(make([]float64, 2), make([]byte, 15)) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("%s: short buffer did not panic", name)
				}
			}()
			f()
		}()
	}
}

// TestDeterministicRepeat: the dispatched kernels are pure functions of
// their inputs — repeated evaluation yields identical bits. Combined
// with par's fixed chunk boundaries this is the deterministic-reduction
// guarantee linalg's equivalence tests lean on.
func TestDeterministicRepeat(t *testing.T) {
	r := rand.New(rand.NewSource(6))
	x, y := randSlice(r, 10007), randSlice(r, 10007)
	first := math.Float64bits(Dot(x, y))
	for i := 0; i < 10; i++ {
		if got := math.Float64bits(Dot(x, y)); got != first {
			t.Fatalf("run %d: %x != %x", i, got, first)
		}
	}
}

// FuzzDotParity drives unaligned, odd-length, arbitrary-bit-pattern
// inputs through both backends. NaN payload propagation is the one
// place scalar and vector x86 semantics can legitimately differ, so
// NaNs compare as NaN-equal rather than bit-equal.
func FuzzDotParity(f *testing.F) {
	f.Add([]byte{1, 2, 3, 4, 5, 6, 7, 8, 9, 10, 11, 12, 13, 14, 15, 16, 17}, uint8(1))
	f.Add(make([]byte, 8*9), uint8(0))
	f.Add([]byte{0xff, 0xf8, 0, 0, 0, 0, 0, 1, 0x40, 0x09, 0x21, 0xfb, 0x54, 0x44, 0x2d, 0x18}, uint8(0))
	f.Fuzz(func(t *testing.T, raw []byte, off uint8) {
		n := len(raw) / 16
		x := make([]float64, n)
		y := make([]float64, n)
		UnpackF64LEGo(x, raw)
		UnpackF64LEGo(y, raw[8*n:])
		o := int(off) % (n + 1)
		got := Dot(x[o:], y[o:])
		want := DotGo(x[o:], y[o:])
		if math.IsNaN(got) && math.IsNaN(want) {
			return
		}
		if math.Float64bits(got) != math.Float64bits(want) {
			t.Fatalf("n=%d off=%d: Dot=%x DotGo=%x", n, o,
				math.Float64bits(got), math.Float64bits(want))
		}
	})
}

// FuzzPackParity round-trips arbitrary byte patterns (every one a valid
// float64, including NaN payloads — byte-level comparison keeps even
// those exact).
func FuzzPackParity(f *testing.F) {
	f.Add([]byte{0, 1, 2, 3, 4, 5, 6, 7, 8})
	f.Add(make([]byte, 257))
	f.Fuzz(func(t *testing.T, raw []byte) {
		n := len(raw) / 8
		vals := make([]float64, n)
		UnpackF64LE(vals, raw)
		out := make([]byte, 8*n)
		PackF64LE(out, vals)
		ref := make([]byte, 8*n)
		PackF64LEGo(ref, vals)
		for i := range out {
			if out[i] != ref[i] {
				t.Fatalf("byte %d: got %#x want %#x", i, out[i], ref[i])
			}
		}
	})
}
