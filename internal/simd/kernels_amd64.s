//go:build !noasm

#include "textflag.h"

// The three AVX2 kernels. Shared rules, enforced so results match the Go
// reference kernels in simd_go.go bit-for-bit:
//
//   - two ymm accumulators (eight float64 lanes), elements strided by 8;
//   - reduction order VADDPD(Y0,Y1) -> VEXTRACTF128/VADDPD -> VHADDPD,
//     i.e. ((a0+a4)+(a2+a6)) + ((a1+a5)+(a3+a7));
//   - no FMA: separate VMULPD and VADDPD, two roundings per term, exactly
//     like the Go code;
//   - scalar tails run sequentially in input order, matching the Go tail
//     loop.
//
// VZEROUPPER before every RET: the surrounding Go code is compiled with
// SSE encodings, and leaving the upper ymm halves dirty would stall it.

// func dotAVX2(x, y *float64, n int) float64
TEXT ·dotAVX2(SB), NOSPLIT, $0-32
	MOVQ x+0(FP), SI
	MOVQ y+8(FP), DX
	MOVQ n+16(FP), CX
	VXORPD Y0, Y0, Y0 // lanes 0-3
	VXORPD Y1, Y1, Y1 // lanes 4-7
	XORQ AX, AX
	MOVQ CX, BX
	ANDQ $-8, BX      // vector end: n &^ 7

dotloop:
	CMPQ AX, BX
	JGE  dotreduce
	VMOVUPD (SI)(AX*8), Y2
	VMOVUPD 32(SI)(AX*8), Y3
	VMOVUPD (DX)(AX*8), Y4
	VMOVUPD 32(DX)(AX*8), Y5
	VMULPD  Y4, Y2, Y2
	VMULPD  Y5, Y3, Y3
	VADDPD  Y2, Y0, Y0
	VADDPD  Y3, Y1, Y1
	ADDQ $8, AX
	JMP  dotloop

dotreduce:
	VADDPD Y1, Y0, Y0        // {a0+a4, a1+a5, a2+a6, a3+a7}
	VEXTRACTF128 $1, Y0, X1  // {a2+a6, a3+a7}
	VADDPD X1, X0, X0        // {(a0+a4)+(a2+a6), (a1+a5)+(a3+a7)}
	VHADDPD X0, X0, X0       // lane0 = full vector sum

dottail:
	CMPQ AX, CX
	JGE  dotdone
	VMOVSD (SI)(AX*8), X2
	VMULSD (DX)(AX*8), X2, X2
	VADDSD X2, X0, X0
	INCQ AX
	JMP  dottail

dotdone:
	VMOVSD X0, ret+24(FP)
	VZEROUPPER
	RET

// func spmvRowAVX2(vals *float64, cols *int, x *float64, n int) float64
//
// cols values must all be valid indices into x; the gathers read
// x[cols[i]] unchecked.
TEXT ·spmvRowAVX2(SB), NOSPLIT, $0-40
	MOVQ vals+0(FP), SI
	MOVQ cols+8(FP), DI
	MOVQ x+16(FP), DX
	MOVQ n+24(FP), CX
	VXORPD Y0, Y0, Y0 // lanes 0-3
	VXORPD Y1, Y1, Y1 // lanes 4-7
	XORQ AX, AX
	MOVQ CX, BX
	ANDQ $-8, BX

spmvloop:
	CMPQ AX, BX
	JGE  spmvreduce
	VMOVDQU (DI)(AX*8), Y2      // cols[i..i+3] as int64
	VMOVDQU 32(DI)(AX*8), Y3    // cols[i+4..i+7]
	VPCMPEQQ Y4, Y4, Y4         // gather masks: all lanes on
	VPCMPEQQ Y5, Y5, Y5         // (gathers consume their mask)
	VXORPD Y6, Y6, Y6
	VXORPD Y7, Y7, Y7
	VGATHERQPD Y4, (DX)(Y2*8), Y6 // x[cols[i..i+3]]
	VGATHERQPD Y5, (DX)(Y3*8), Y7 // x[cols[i+4..i+7]]
	VMULPD (SI)(AX*8), Y6, Y6
	VMULPD 32(SI)(AX*8), Y7, Y7
	VADDPD Y6, Y0, Y0
	VADDPD Y7, Y1, Y1
	ADDQ $8, AX
	JMP  spmvloop

spmvreduce:
	VADDPD Y1, Y0, Y0
	VEXTRACTF128 $1, Y0, X1
	VADDPD X1, X0, X0
	VHADDPD X0, X0, X0

spmvtail:
	CMPQ AX, CX
	JGE  spmvdone
	MOVQ (DI)(AX*8), R8
	VMOVSD (SI)(AX*8), X2
	VMULSD (DX)(R8*8), X2, X2
	VADDSD X2, X0, X0
	INCQ AX
	JMP  spmvtail

spmvdone:
	VMOVSD X0, ret+32(FP)
	VZEROUPPER
	RET

// func memcpy8(dst, src unsafe.Pointer, n int)
//
// Copies n 8-byte quantities between non-overlapping buffers: the
// PackF64LE/UnpackF64LE transcoding on a little-endian host, where the
// wire format and the in-memory layout coincide.
TEXT ·memcpy8(SB), NOSPLIT, $0-24
	MOVQ dst+0(FP), DI
	MOVQ src+8(FP), SI
	MOVQ n+16(FP), CX
	SHLQ $3, CX       // total bytes
	XORQ AX, AX
	MOVQ CX, BX
	ANDQ $-64, BX     // 64B (two ymm) main loop

cpy64:
	CMPQ AX, BX
	JGE  cpy32
	VMOVDQU (SI)(AX*1), Y0
	VMOVDQU 32(SI)(AX*1), Y1
	VMOVDQU Y0, (DI)(AX*1)
	VMOVDQU Y1, 32(DI)(AX*1)
	ADDQ $64, AX
	JMP  cpy64

cpy32:
	MOVQ CX, BX
	ANDQ $-32, BX
	CMPQ AX, BX
	JGE  cpy8
	VMOVDQU (SI)(AX*1), Y0
	VMOVDQU Y0, (DI)(AX*1)
	ADDQ $32, AX

cpy8:
	CMPQ AX, CX
	JGE  cpydone
	MOVQ (SI)(AX*1), R8
	MOVQ R8, (DI)(AX*1)
	ADDQ $8, AX
	JMP  cpy8

cpydone:
	VZEROUPPER
	RET
