package mpi

// Wire codec tests: round-trip fidelity for the closed payload type set,
// fail-fast on untransferable types, and — because a crashed or hostile
// peer can hand the decoder any bytes — graceful ErrWire on every
// truncation and corruption, never a panic or an absurd allocation.

import (
	"errors"
	"math"
	"reflect"
	"testing"
)

func encodeEnvelope(t *testing.T, e envelope) []byte {
	t.Helper()
	b, err := encodeMsg(nil, e)
	if err != nil {
		t.Fatalf("encode %T: %v", e.payload, err)
	}
	return b
}

func TestWireRoundTrip(t *testing.T) {
	payloads := []any{
		nil,
		[]byte{},
		[]byte{1, 2, 3, 0xff},
		[]float64{},
		[]float64{1.5, -0.0, math.Inf(1), math.SmallestNonzeroFloat64},
		[]int{},
		[]int{0, -1, math.MaxInt64, math.MinInt64},
		[]complex128{complex(-1.25, 3e200)},
		int(0),
		int(-1 << 60),
		float64(2.5),
		"",
		"ünïcode",
		true,
		false,
		[]any{},
		[]any{int(1), "two", []float64{3}, nil, []any{true}},
	}
	for _, p := range payloads {
		b := encodeEnvelope(t, envelope{source: 3, tag: internalTagBase + 17, payload: p})
		if b[0] != kMsg {
			t.Fatalf("frame kind = %d", b[0])
		}
		e, err := decodeMsg(b[1:])
		if err != nil {
			t.Errorf("decode %T: %v", p, err)
			continue
		}
		if e.source != 3 || e.tag != internalTagBase+17 {
			t.Errorf("header (%d,%d) after round-trip", e.source, e.tag)
		}
		if !reflect.DeepEqual(e.payload, p) {
			t.Errorf("payload: got %#v (%T), want %#v (%T)", e.payload, e.payload, p, p)
		}
	}
}

func TestWireNaNPreservesBits(t *testing.T) {
	// A signalling NaN's payload bits must survive the codec: values move
	// as IEEE 754 bit patterns, not through any float parse.
	snan := math.Float64frombits(0x7ff0dead_beef0001)
	b := encodeEnvelope(t, envelope{payload: []float64{snan}})
	e, err := decodeMsg(b[1:])
	if err != nil {
		t.Fatal(err)
	}
	got := e.payload.([]float64)[0]
	if math.Float64bits(got) != 0x7ff0dead_beef0001 {
		t.Errorf("NaN bits = %#x", math.Float64bits(got))
	}
}

func TestWireUntransferableTypes(t *testing.T) {
	for _, p := range []any{
		struct{ X int }{1},
		[]string{"a"},
		map[string]int{"a": 1},
		float32(1),
		int32(1),
		&struct{}{},
		[]any{int(1), []string{"nested bad"}}, // failure inside a nested value
	} {
		if _, err := encodeMsg(nil, envelope{payload: p}); !errors.Is(err, ErrPayloadType) {
			t.Errorf("encode %T = %v, want ErrPayloadType", p, err)
		}
	}
}

func TestWireTruncationNeverPanics(t *testing.T) {
	// Every strict prefix of every valid encoding must decode to ErrWire.
	payloads := []any{
		[]byte{1, 2, 3},
		[]float64{1, 2},
		[]int{-5, 5},
		[]complex128{complex(1, 2)},
		int(300),
		float64(1.5),
		"abc",
		true,
		[]any{int(1), "x"},
	}
	for _, p := range payloads {
		full := encodeEnvelope(t, envelope{source: 1, tag: 2, payload: p})[1:]
		for cut := 0; cut < len(full); cut++ {
			if _, err := decodeMsg(full[:cut]); !errors.Is(err, ErrWire) {
				t.Fatalf("%T truncated at %d/%d: err = %v, want ErrWire", p, cut, len(full), err)
			}
		}
	}
}

func TestWireCorruptFrames(t *testing.T) {
	cases := []struct {
		name string
		b    []byte
	}{
		{"unknown type tag", []byte{1, 2, 99}},
		{"trailing bytes", append(encodeEnvelope(t, envelope{payload: int(1)})[1:], 0xaa)},
		// Length prefix far beyond the frame: must fail the bounds check,
		// not attempt a multi-gigabyte make().
		{"huge bytes count", []byte{1, 2, tBytes, 0xff, 0xff, 0xff, 0xff, 0x0f}},
		{"huge f64 count", []byte{1, 2, tF64s, 0xff, 0xff, 0xff, 0xff, 0x0f}},
		{"huge anys count", []byte{1, 2, tAnys, 0xff, 0xff, 0xff, 0xff, 0x0f}},
		{"int element truncated", []byte{1, 2, tInts, 2, 0x80}},
	}
	for _, tc := range cases {
		if _, err := decodeMsg(tc.b); !errors.Is(err, ErrWire) {
			t.Errorf("%s: err = %v, want ErrWire", tc.name, err)
		}
	}
}

func TestWireHelloAndRendezvousKindsDisjoint(t *testing.T) {
	// Mesh frame kinds and rendezvous frame kinds must never overlap: a
	// crossed wire (a rank dialing the rendezvous port, or vice versa)
	// has to fail parsing instead of being misinterpreted.
	mesh := []byte{kHello, kMsg, kBye}
	rv := []byte{rvJoin, rvWorld, rvReady, rvGo, rvCtxReq, rvCtxRep, rvBye, rvErr}
	for _, m := range mesh {
		for _, r := range rv {
			if m == r {
				t.Fatalf("frame kind %d used by both mesh and rendezvous", m)
			}
		}
	}
}
