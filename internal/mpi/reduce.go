package mpi

import "fmt"

// Op is a reduction operator for Reduce/Allreduce/Scan. The built-in ops
// (Sum, Prod, Max, Min, LAnd, LOr) operate elementwise on []float64, []int,
// and the scalar types float64 and int; user code can define custom ops via
// MakeOp.
type Op struct {
	name string
	// f64 combines b into a elementwise and returns a; a is owned by the
	// reduction (already cloned), b must not be modified.
	f64 func(a, b []float64) []float64
	i   func(a, b []int) []int
}

func (o Op) String() string { return o.name }

// MakeOp builds a custom reduction operator from elementwise combiners.
// Either combiner may be nil if that payload type is never reduced.
func MakeOp(name string, f64 func(a, b []float64) []float64, i func(a, b []int) []int) Op {
	return Op{name: name, f64: f64, i: i}
}

// Built-in reduction operators, mirroring MPI_SUM and friends.
var (
	Sum = MakeOp("sum",
		func(a, b []float64) []float64 {
			for i := range a {
				a[i] += b[i]
			}
			return a
		},
		func(a, b []int) []int {
			for i := range a {
				a[i] += b[i]
			}
			return a
		})
	Prod = MakeOp("prod",
		func(a, b []float64) []float64 {
			for i := range a {
				a[i] *= b[i]
			}
			return a
		},
		func(a, b []int) []int {
			for i := range a {
				a[i] *= b[i]
			}
			return a
		})
	Max = MakeOp("max",
		func(a, b []float64) []float64 {
			for i := range a {
				if b[i] > a[i] {
					a[i] = b[i]
				}
			}
			return a
		},
		func(a, b []int) []int {
			for i := range a {
				if b[i] > a[i] {
					a[i] = b[i]
				}
			}
			return a
		})
	Min = MakeOp("min",
		func(a, b []float64) []float64 {
			for i := range a {
				if b[i] < a[i] {
					a[i] = b[i]
				}
			}
			return a
		},
		func(a, b []int) []int {
			for i := range a {
				if b[i] < a[i] {
					a[i] = b[i]
				}
			}
			return a
		})
	// LAnd and LOr treat nonzero as true, following MPI_LAND/MPI_LOR.
	LAnd = MakeOp("land", nil,
		func(a, b []int) []int {
			for i := range a {
				if a[i] != 0 && b[i] != 0 {
					a[i] = 1
				} else {
					a[i] = 0
				}
			}
			return a
		})
	LOr = MakeOp("lor", nil,
		func(a, b []int) []int {
			for i := range a {
				if a[i] != 0 || b[i] != 0 {
					a[i] = 1
				} else {
					a[i] = 0
				}
			}
			return a
		})
)

// clone copies a contribution so reductions never mutate caller data.
// Scalars are promoted to one-element slices internally.
func (o Op) clone(p any) any {
	switch v := p.(type) {
	case []float64:
		return append([]float64(nil), v...)
	case []int:
		return append([]int(nil), v...)
	case float64:
		return []float64{v}
	case int:
		return []int{v}
	case nil:
		return nil
	default:
		return p
	}
}

// combine folds contribution b into accumulator a (a is owned).
func (o Op) combine(a, b any) (any, error) {
	if a == nil && b == nil {
		return nil, nil
	}
	switch av := a.(type) {
	case []float64:
		bv, err := asFloat64s(b)
		if err != nil {
			return nil, err
		}
		if len(av) != len(bv) {
			return nil, fmt.Errorf("%w: reduce %d vs %d elements", ErrCountMatch, len(av), len(bv))
		}
		if o.f64 == nil {
			return nil, fmt.Errorf("mpi: op %s does not support float64", o.name)
		}
		return o.f64(av, bv), nil
	case []int:
		bv, err := asInts(b)
		if err != nil {
			return nil, err
		}
		if len(av) != len(bv) {
			return nil, fmt.Errorf("%w: reduce %d vs %d elements", ErrCountMatch, len(av), len(bv))
		}
		if o.i == nil {
			return nil, fmt.Errorf("mpi: op %s does not support int", o.name)
		}
		return o.i(av, bv), nil
	default:
		return nil, fmt.Errorf("%w: cannot reduce %T", ErrTypeMatch, a)
	}
}

func asFloat64s(p any) ([]float64, error) {
	switch v := p.(type) {
	case []float64:
		return v, nil
	case float64:
		return []float64{v}, nil
	default:
		return nil, fmt.Errorf("%w: got %T, want []float64", ErrTypeMatch, p)
	}
}

func asInts(p any) ([]int, error) {
	switch v := p.(type) {
	case []int:
		return v, nil
	case int:
		return []int{v}, nil
	default:
		return nil, fmt.Errorf("%w: got %T, want []int", ErrTypeMatch, p)
	}
}
