package mpirun

// Launcher tests with real OS processes: the test binary re-execs itself
// as rank workers (TestMain routes on MPIRUN_TEST_MODE), so every test
// here exercises the full path — env-var identity, rendezvous over a real
// transport, cross-process mesh, collectives over the wire, and crash
// supervision with generational re-formation.

import (
	"errors"
	"fmt"
	"os"
	"testing"
	"time"

	"repro/internal/mpi"
)

const modeEnv = "MPIRUN_TEST_MODE"

func TestMain(m *testing.M) {
	if mode := os.Getenv(modeEnv); mode != "" {
		workerMain(mode)
		return
	}
	os.Exit(m.Run())
}

// workerMain is one rank process. Modes: "clean" runs rounds and exits 0;
// "crash-rank3" additionally exits nonzero on rank 3's first generation,
// so the launcher must respawn it and the survivors must re-form.
func workerMain(mode string) {
	for attempt := 0; attempt < 4; attempt++ {
		comm, proc, err := mpi.Join()
		if err != nil {
			fmt.Fprintln(os.Stderr, "worker join:", err)
			os.Exit(1)
		}
		if mode == "crash-rank3" && comm.Rank() == 3 && proc.Generation() == 1 {
			os.Exit(3) // simulated crash right after world formation
		}
		err = workerRounds(comm)
		if err != nil {
			var dead *mpi.RankDeadError
			if errors.As(err, &dead) {
				proc.Close()
				continue // re-join the next generation
			}
			fmt.Fprintln(os.Stderr, "worker:", err)
			os.Exit(1)
		}
		proc.Close()
		os.Exit(0)
	}
	fmt.Fprintln(os.Stderr, "worker: gave up re-joining")
	os.Exit(1)
}

func workerRounds(comm *mpi.Comm) error {
	for i := 0; i < 10; i++ {
		got, err := comm.AllreduceScalar(float64(comm.Rank()), mpi.Sum)
		if err != nil {
			return err
		}
		n := comm.Size()
		if want := float64(n * (n - 1) / 2); got != want {
			return fmt.Errorf("round %d allreduce = %v, want %v", i, got, want)
		}
		time.Sleep(5 * time.Millisecond)
	}
	return nil
}

func newTestLauncher(t *testing.T, rendezvous, mode string, size, restarts int, extraEnv ...string) *Launcher {
	t.Helper()
	l, err := New(Config{
		Size:        size,
		Rendezvous:  rendezvous,
		Command:     []string{os.Args[0]},
		Env:         append([]string{modeEnv + "=" + mode}, extraEnv...),
		MaxRestarts: restarts,
	})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(l.Close)
	return l
}

func TestLauncherConfigValidation(t *testing.T) {
	if _, err := New(Config{Size: 0, Command: []string{"x"}}); err == nil {
		t.Error("size 0 accepted")
	}
	if _, err := New(Config{Size: 2}); err == nil {
		t.Error("empty command accepted")
	}
	if _, err := New(Config{Size: 2, Command: []string{"x"}, Rendezvous: "bogus://y"}); err == nil {
		t.Error("unknown scheme accepted")
	}
}

func TestLauncherRunsCohortTCP(t *testing.T) {
	l := newTestLauncher(t, "tcp://127.0.0.1:0", "clean", 4, 0)
	if err := l.Start(); err != nil {
		t.Fatal(err)
	}
	if err := l.Wait(); err != nil {
		t.Fatalf("cohort failed: %v", err)
	}
	if g := l.Rendezvous().Generations(); g != 1 {
		t.Errorf("generations = %d, want 1", g)
	}
	for r := 0; r < 4; r++ {
		if l.Restarts(r) != 0 {
			t.Errorf("rank %d restarted %d times in a clean run", r, l.Restarts(r))
		}
	}
}

func TestLauncherRunsCohortSHM(t *testing.T) {
	l := newTestLauncher(t, "shm://"+t.TempDir()+"/rv", "clean", 4, 0)
	if err := l.Start(); err != nil {
		t.Fatal(err)
	}
	if err := l.Wait(); err != nil {
		t.Fatalf("cohort failed: %v", err)
	}
	if g := l.Rendezvous().Generations(); g != 1 {
		t.Errorf("generations = %d, want 1", g)
	}
}

func TestLauncherRestartsCrashedRank(t *testing.T) {
	// Rank 3 crashes after generation 1 forms; the launcher respawns it,
	// the survivors observe the death and re-join, and generation 2
	// completes cleanly — the §2.2 long-running-simulation recovery story
	// at launcher level.
	l := newTestLauncher(t, "tcp://127.0.0.1:0", "crash-rank3", 4, 1)
	if err := l.Start(); err != nil {
		t.Fatal(err)
	}
	if err := l.Wait(); err != nil {
		t.Fatalf("cohort did not recover: %v", err)
	}
	if g := l.Rendezvous().Generations(); g != 2 {
		t.Errorf("generations = %d, want 2", g)
	}
	if l.Restarts(3) != 1 {
		t.Errorf("rank 3 restarts = %d, want 1", l.Restarts(3))
	}
}

func TestLauncherKillExhaustsBudget(t *testing.T) {
	// With no restart budget, a crashed rank is a cohort failure: the
	// survivors' re-joins hit the formation timeout instead of hanging on
	// a world that can never re-form, and Wait reports the failures.
	l := newTestLauncher(t, "tcp://127.0.0.1:0", "crash-rank3", 4, 0,
		mpi.EnvTimeout+"=1s")
	if err := l.Start(); err != nil {
		t.Fatal(err)
	}
	if err := l.Wait(); err == nil {
		t.Fatal("Wait reported success although rank 3 crashed with no budget")
	}
}
