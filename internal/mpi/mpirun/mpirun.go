// Package mpirun launches and supervises a multi-process SPMD cohort: it
// runs the rendezvous service in the launcher process, spawns one OS
// process per rank with its identity in the CCA_MPI_* environment, and
// restarts ranks that die within a configured budget — the survivors
// re-join the rendezvous and the cohort re-forms as the next generation.
//
// cmd/ccalaunch is the CLI front end; examples/spmd uses the package
// directly (self-exec) to run the paper's Figure 1 pipeline as real
// processes.
package mpirun

import (
	"errors"
	"fmt"
	"io"
	"os"
	"os/exec"
	"sync"
	"time"

	"repro/internal/mpi"
	"repro/internal/transport"
)

// Config describes a cohort launch.
type Config struct {
	// Size is the number of ranks (one OS process each).
	Size int
	// Rendezvous is the scheme-qualified address the rendezvous service
	// listens on; empty means "tcp://127.0.0.1:0". With an shm:// or
	// tcp:// address, the ranks' peer meshes default to the same scheme
	// (see mpi.ProcConfig.Listen).
	Rendezvous string
	// Command is the argv each rank runs. The rank's identity is passed in
	// the environment, so all ranks share one argv.
	Command []string
	// Env holds extra environment entries appended after the inherited
	// environment and the CCA_MPI_* variables.
	Env []string
	// MaxRestarts is the per-rank respawn budget: a rank process that
	// exits nonzero (or is killed) is relaunched at most this many times.
	MaxRestarts int
	// Stdout and Stderr receive the ranks' combined output; nil means the
	// launcher's own.
	Stdout, Stderr io.Writer
}

// Launcher supervises one cohort.
type Launcher struct {
	cfg  Config
	rv   *mpi.Rendezvous
	addr string

	mu       sync.Mutex
	cmds     []*exec.Cmd
	restarts []int
	closing  bool
	errs     []error
	wg       sync.WaitGroup
}

// New starts the rendezvous service and prepares a launcher. Call Start
// to spawn the ranks and Wait to supervise them to completion.
func New(cfg Config) (*Launcher, error) {
	if cfg.Size <= 0 {
		return nil, fmt.Errorf("mpirun: nonpositive cohort size %d", cfg.Size)
	}
	if len(cfg.Command) == 0 {
		return nil, errors.New("mpirun: empty command")
	}
	if cfg.Rendezvous == "" {
		cfg.Rendezvous = "tcp://127.0.0.1:0"
	}
	if cfg.Stdout == nil {
		cfg.Stdout = os.Stdout
	}
	if cfg.Stderr == nil {
		cfg.Stderr = os.Stderr
	}
	tr, rest, err := transport.ForScheme(cfg.Rendezvous)
	if err != nil {
		return nil, err
	}
	l, err := tr.Listen(rest)
	if err != nil {
		return nil, fmt.Errorf("mpirun: rendezvous listen %s: %w", cfg.Rendezvous, err)
	}
	scheme, _, _ := splitScheme(cfg.Rendezvous)
	return &Launcher{
		cfg:      cfg,
		rv:       mpi.NewRendezvous(l, cfg.Size),
		addr:     scheme + "://" + l.Addr(),
		cmds:     make([]*exec.Cmd, cfg.Size),
		restarts: make([]int, cfg.Size),
		errs:     make([]error, cfg.Size),
	}, nil
}

func splitScheme(addr string) (string, string, bool) {
	for i := 0; i+2 < len(addr); i++ {
		if addr[i] == ':' && addr[i+1] == '/' && addr[i+2] == '/' {
			return addr[:i], addr[i+3:], true
		}
	}
	return "tcp", addr, false
}

// RendezvousAddr returns the dialable scheme-qualified address of the
// rendezvous service.
func (l *Launcher) RendezvousAddr() string { return l.addr }

// Rendezvous exposes the underlying service (formation notifications for
// tests and chaos hooks).
func (l *Launcher) Rendezvous() *mpi.Rendezvous { return l.rv }

// Start spawns all Size rank processes and begins supervising them.
func (l *Launcher) Start() error {
	for r := 0; r < l.cfg.Size; r++ {
		if err := l.spawn(r); err != nil {
			l.Close()
			return err
		}
		l.wg.Add(1)
		go l.monitor(r)
	}
	return nil
}

// spawn launches rank r's process and records it.
func (l *Launcher) spawn(r int) error {
	cmd := exec.Command(l.cfg.Command[0], l.cfg.Command[1:]...)
	cmd.Env = append(os.Environ(),
		mpi.EnvRendezvous+"="+l.addr,
		fmt.Sprintf("%s=%d", mpi.EnvRank, r),
		fmt.Sprintf("%s=%d", mpi.EnvSize, l.cfg.Size),
	)
	cmd.Env = append(cmd.Env, l.cfg.Env...)
	cmd.Stdout = l.cfg.Stdout
	cmd.Stderr = l.cfg.Stderr
	if err := cmd.Start(); err != nil {
		return fmt.Errorf("mpirun: rank %d: %w", r, err)
	}
	l.mu.Lock()
	l.cmds[r] = cmd
	l.mu.Unlock()
	return nil
}

// monitor waits on rank r's process, respawning it on abnormal exit while
// budget remains. A clean exit (status 0) ends supervision of the rank.
func (l *Launcher) monitor(r int) {
	defer l.wg.Done()
	for {
		l.mu.Lock()
		cmd := l.cmds[r]
		l.mu.Unlock()
		err := cmd.Wait()
		if err == nil {
			return
		}
		l.mu.Lock()
		if l.closing {
			l.mu.Unlock()
			return
		}
		if l.restarts[r] >= l.cfg.MaxRestarts {
			l.errs[r] = fmt.Errorf("mpirun: rank %d: %w", r, err)
			l.mu.Unlock()
			return
		}
		l.restarts[r]++
		l.mu.Unlock()
		if err := l.spawn(r); err != nil {
			l.mu.Lock()
			l.errs[r] = err
			l.mu.Unlock()
			return
		}
	}
}

// Wait blocks until every rank has exited cleanly or exhausted its
// restart budget, then returns the joined per-rank failures (nil on full
// success).
func (l *Launcher) Wait() error {
	l.wg.Wait()
	l.mu.Lock()
	defer l.mu.Unlock()
	return errors.Join(l.errs...)
}

// Kill hard-kills rank r's current process — the chaos hook. The monitor
// observes the abnormal exit and respawns within budget.
func (l *Launcher) Kill(r int) error {
	if r < 0 || r >= l.cfg.Size {
		return fmt.Errorf("mpirun: kill rank %d out of range", r)
	}
	l.mu.Lock()
	cmd := l.cmds[r]
	l.mu.Unlock()
	if cmd == nil || cmd.Process == nil {
		return fmt.Errorf("mpirun: rank %d not running", r)
	}
	return cmd.Process.Kill()
}

// Restarts reports how many times rank r has been respawned.
func (l *Launcher) Restarts(r int) int {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.restarts[r]
}

// Close stops supervision, kills any live rank processes, and shuts the
// rendezvous down. Safe after Wait (no-ops on exited ranks).
func (l *Launcher) Close() {
	l.mu.Lock()
	l.closing = true
	cmds := append([]*exec.Cmd(nil), l.cmds...)
	l.mu.Unlock()
	for _, cmd := range cmds {
		if cmd != nil && cmd.Process != nil {
			_ = cmd.Process.Kill()
		}
	}
	l.rv.Close()
	// Reap so no zombies outlive the launcher; monitors may be gone
	// already when Close runs after Wait.
	done := make(chan struct{})
	go func() { l.wg.Wait(); close(done) }()
	select {
	case <-done:
	case <-time.After(2 * time.Second):
	}
}
