package mpi

// Cross-backend MPI conformance suite: one table of semantic checks —
// point-to-point matching, nonblocking requests, every collective,
// communicator management, payload edge cases — executed identically over
// the goroutine backend (Run) and the process backend (RunOver) on each
// transport scheme. The process backend must be indistinguishable from
// the goroutine backend at this interface; a check that needs a backend
// special case is a bug in the backend, not in the check. Mirrors the
// transport conformance pattern from the zero-alloc shm PR.
//
// Rank bodies run on non-test goroutines, so they report with t.Errorf
// (never t.Fatal) and use panics only for unreachable states.

import (
	"fmt"
	"math"
	"reflect"
	"sync/atomic"
	"testing"
	"time"
)

// confBackend runs an SPMD body over one Comm implementation.
type confBackend struct {
	name string
	run  func(t *testing.T, n int, body func(c *Comm))
}

var confAddrSeq int64

// confBackends is the conformance matrix: the goroutine backend plus the
// process backend over every transport scheme (inproc exercises the wire
// codec and mesh without sockets; tcp and shm are the deployment paths).
func confBackends() []confBackend {
	over := func(addr func(t *testing.T) string) func(*testing.T, int, func(*Comm)) {
		return func(t *testing.T, n int, body func(c *Comm)) {
			t.Helper()
			if err := RunOver(n, addr(t), func(c *Comm, _ *Proc) { body(c) }); err != nil {
				t.Fatalf("RunOver: %v", err)
			}
		}
	}
	return []confBackend{
		{"goroutine", func(t *testing.T, n int, body func(c *Comm)) {
			t.Helper()
			Run(n, body)
		}},
		{"proc-inproc", over(func(t *testing.T) string {
			return fmt.Sprintf("inproc://conformance-%d", atomic.AddInt64(&confAddrSeq, 1))
		})},
		{"proc-tcp", over(func(t *testing.T) string { return "tcp://127.0.0.1:0" })},
		{"proc-shm", over(func(t *testing.T) string { return "shm://" + t.TempDir() + "/rv" })},
	}
}

// eachBackend runs body as an n-rank SPMD job over every backend.
func eachBackend(t *testing.T, n int, body func(t *testing.T, c *Comm)) {
	t.Helper()
	for _, b := range confBackends() {
		t.Run(b.name, func(t *testing.T) {
			b.run(t, n, func(c *Comm) { body(t, c) })
		})
	}
}

func TestConformanceSendRecvTagMatching(t *testing.T) {
	// Every nonzero rank sends one message per tag; rank 0 drains them in
	// an order unrelated to arrival (by source descending, tag ascending),
	// so matching must hold messages for later selective receives.
	tags := []int{7, 9, 11}
	eachBackend(t, 4, func(t *testing.T, c *Comm) {
		if c.Rank() != 0 {
			for _, tag := range tags {
				if err := c.Send(0, tag, []float64{float64(c.Rank()), float64(tag)}); err != nil {
					t.Errorf("rank %d send tag %d: %v", c.Rank(), tag, err)
				}
			}
			return
		}
		for src := c.Size() - 1; src >= 1; src-- {
			for _, tag := range tags {
				got, st, err := c.RecvFloat64(src, tag)
				if err != nil {
					t.Errorf("recv (%d,%d): %v", src, tag, err)
					continue
				}
				if st.Source != src || st.Tag != tag || st.Count() != 2 {
					t.Errorf("status = %+v, want source %d tag %d count 2", st, src, tag)
				}
				if got[0] != float64(src) || got[1] != float64(tag) {
					t.Errorf("payload (%d,%d) = %v", src, tag, got)
				}
			}
		}
	})
}

func TestConformanceWildcards(t *testing.T) {
	eachBackend(t, 4, func(t *testing.T, c *Comm) {
		const tag = 3
		if c.Rank() != 0 {
			if err := c.Send(0, tag, c.Rank()); err != nil {
				t.Errorf("send: %v", err)
			}
			if err := c.Send(0, 100+c.Rank(), "x"); err != nil {
				t.Errorf("send: %v", err)
			}
			return
		}
		// AnySource with a fixed tag: one message per peer, any order.
		seen := make(map[int]bool)
		for i := 1; i < c.Size(); i++ {
			p, st, err := c.Recv(AnySource, tag)
			if err != nil {
				t.Errorf("recv anysource: %v", err)
				return
			}
			if p.(int) != st.Source || seen[st.Source] {
				t.Errorf("anysource payload %v from %d (seen %v)", p, st.Source, seen)
			}
			seen[st.Source] = true
		}
		// Fixed source with AnyTag: the per-peer tag comes back in Status.
		for src := 1; src < c.Size(); src++ {
			p, st, err := c.Recv(src, AnyTag)
			if err != nil {
				t.Errorf("recv anytag: %v", err)
				return
			}
			if st.Tag != 100+src || p.(string) != "x" {
				t.Errorf("anytag from %d: payload %v tag %d, want tag %d", src, p, st.Tag, 100+src)
			}
		}
	})
}

func TestConformanceOutOfOrderTags(t *testing.T) {
	// The sender queues tag 5 before tag 3; the receiver asks for tag 3
	// first. Matching must skip over the queued tag-5 message and then
	// still deliver it — and FIFO order must hold within one tag.
	eachBackend(t, 2, func(t *testing.T, c *Comm) {
		switch c.Rank() {
		case 1:
			for _, v := range []struct {
				tag int
				val float64
			}{{5, 50}, {3, 30}, {5, 51}} {
				if err := c.Send(0, v.tag, []float64{v.val}); err != nil {
					t.Errorf("send: %v", err)
				}
			}
		case 0:
			want := []struct {
				tag int
				val float64
			}{{3, 30}, {5, 50}, {5, 51}}
			for _, w := range want {
				got, _, err := c.RecvFloat64(1, w.tag)
				if err != nil {
					t.Errorf("recv tag %d: %v", w.tag, err)
					return
				}
				if got[0] != w.val {
					t.Errorf("recv tag %d = %v, want %v", w.tag, got[0], w.val)
				}
			}
		}
	})
}

func TestConformanceIsendIrecvWait(t *testing.T) {
	// Nonblocking ring shift: everyone posts the receive first, then the
	// send, then waits — the ordering that deadlocks with blocking calls.
	eachBackend(t, 4, func(t *testing.T, c *Comm) {
		n, r := c.Size(), c.Rank()
		rreq, err := c.Irecv((r+n-1)%n, 4)
		if err != nil {
			t.Errorf("irecv: %v", err)
			return
		}
		sreq, err := c.Isend((r+1)%n, 4, []float64{float64(r)})
		if err != nil {
			t.Errorf("isend: %v", err)
			return
		}
		if err := WaitAll(sreq); err != nil {
			t.Errorf("wait send: %v", err)
		}
		p, st, err := rreq.WaitRecv()
		if err != nil {
			t.Errorf("wait recv: %v", err)
			return
		}
		if want := (r + n - 1) % n; st.Source != want || p.([]float64)[0] != float64(want) {
			t.Errorf("ring recv = %v from %d, want from %d", p, st.Source, want)
		}
		if !rreq.Test() {
			t.Error("Test() false after WaitRecv")
		}
	})
}

func TestConformanceSendrecvExchange(t *testing.T) {
	// Pairwise simultaneous exchange — the pattern that deadlocks as
	// Send-then-Recv on an unbuffered fabric.
	eachBackend(t, 4, func(t *testing.T, c *Comm) {
		peer := c.Rank() ^ 1
		p, st, err := c.Sendrecv(peer, 8, []float64{float64(c.Rank())}, peer, 8)
		if err != nil {
			t.Errorf("sendrecv: %v", err)
			return
		}
		if st.Source != peer || p.([]float64)[0] != float64(peer) {
			t.Errorf("exchange got %v from %d, want from %d", p, st.Source, peer)
		}
	})
}

func TestConformanceProbeIprobe(t *testing.T) {
	eachBackend(t, 2, func(t *testing.T, c *Comm) {
		const tag = 12
		switch c.Rank() {
		case 1:
			// Wait for the go-signal so rank 0's negative Iprobe below is
			// deterministic, then send.
			if _, _, err := c.Recv(0, 1); err != nil {
				t.Errorf("go-signal: %v", err)
				return
			}
			if err := c.Send(0, tag, []float64{1, 2, 3}); err != nil {
				t.Errorf("send: %v", err)
			}
		case 0:
			if _, ok := c.Iprobe(1, tag); ok {
				t.Error("Iprobe true before the message was sent")
			}
			if err := c.Send(1, 1, nil); err != nil {
				t.Errorf("go-signal: %v", err)
				return
			}
			st, err := c.Probe(1, tag)
			if err != nil {
				t.Errorf("probe: %v", err)
				return
			}
			if st.Source != 1 || st.Tag != tag || st.Count() != 3 {
				t.Errorf("probe status %+v, want source 1 tag %d count 3", st, tag)
			}
			// Probe must not consume: the receive still matches.
			if _, ok := c.Iprobe(1, tag); !ok {
				t.Error("Iprobe false after Probe returned")
			}
			if got, _, err := c.RecvFloat64(1, tag); err != nil || len(got) != 3 {
				t.Errorf("recv after probe = %v, %v", got, err)
			}
		}
	})
}

func TestConformanceBarrierStaggered(t *testing.T) {
	// Ranks enter each barrier at staggered times; the job must neither
	// deadlock nor let a rank escape early enough to corrupt the paired
	// Allreduce that follows every round.
	eachBackend(t, 4, func(t *testing.T, c *Comm) {
		for round := 0; round < 10; round++ {
			if c.Rank() == round%c.Size() {
				time.Sleep(time.Millisecond)
			}
			if err := c.Barrier(); err != nil {
				t.Errorf("barrier round %d: %v", round, err)
				return
			}
			sum, err := c.AllreduceScalar(1, Sum)
			if err != nil || sum != float64(c.Size()) {
				t.Errorf("allreduce after barrier %d = %v, %v", round, sum, err)
				return
			}
		}
	})
}

func TestConformanceBcastAllRoots(t *testing.T) {
	eachBackend(t, 4, func(t *testing.T, c *Comm) {
		for root := 0; root < c.Size(); root++ {
			var in any
			if c.Rank() == root {
				in = []float64{float64(root), 1.5}
			}
			out, err := c.Bcast(root, in)
			if err != nil {
				t.Errorf("bcast root %d: %v", root, err)
				return
			}
			if v := out.([]float64); v[0] != float64(root) || v[1] != 1.5 {
				t.Errorf("bcast root %d on rank %d = %v", root, c.Rank(), v)
			}
			// Non-slice payloads cross backends too.
			s, err := c.Bcast(root, map[bool]string{true: fmt.Sprintf("r%d", root)}[c.Rank() == root])
			if err != nil {
				t.Errorf("bcast string root %d: %v", root, err)
				return
			}
			if s.(string) != fmt.Sprintf("r%d", root) {
				t.Errorf("bcast string = %q", s)
			}
		}
	})
}

func TestConformanceReduceAllreduceOps(t *testing.T) {
	eachBackend(t, 4, func(t *testing.T, c *Comm) {
		n, r := c.Size(), c.Rank()
		// Reduce to every root: sum of rank-valued vectors.
		for root := 0; root < n; root++ {
			out, err := c.Reduce(root, []float64{float64(r), float64(2 * r)}, Sum)
			if err != nil {
				t.Errorf("reduce root %d: %v", root, err)
				return
			}
			if r == root {
				want := float64(n * (n - 1) / 2)
				if v := out.([]float64); v[0] != want || v[1] != 2*want {
					t.Errorf("reduce root %d = %v, want [%v %v]", root, v, want, 2*want)
				}
			} else if out != nil {
				t.Errorf("non-root reduce result = %v, want nil", out)
			}
		}
		// Allreduce over []int with Max/Min and the logical ops.
		mx, err := c.Allreduce([]int{r, -r}, Max)
		if err != nil || mx.([]int)[0] != n-1 || mx.([]int)[1] != 0 {
			t.Errorf("allreduce max = %v, %v", mx, err)
		}
		mn, err := c.Allreduce([]int{r}, Min)
		if err != nil || mn.([]int)[0] != 0 {
			t.Errorf("allreduce min = %v, %v", mn, err)
		}
		land, err := c.Allreduce([]int{1, boolToInt(r != 0)}, LAnd)
		if err != nil || land.([]int)[0] != 1 || land.([]int)[1] != 0 {
			t.Errorf("allreduce land = %v, %v", land, err)
		}
		lor, err := c.Allreduce([]int{0, boolToInt(r == 1)}, LOr)
		if err != nil || lor.([]int)[0] != 0 || lor.([]int)[1] != 1 {
			t.Errorf("allreduce lor = %v, %v", lor, err)
		}
	})
}

func boolToInt(b bool) int {
	if b {
		return 1
	}
	return 0
}

func TestConformanceGathervScatterv(t *testing.T) {
	// Ragged variable-count gather/scatter: 11 elements over 4 ranks gives
	// per-rank chunks of unequal length (the v-variant semantics).
	const total = 11
	eachBackend(t, 4, func(t *testing.T, c *Comm) {
		n, r := c.Size(), c.Rank()
		var data []float64
		if r == 0 {
			data = make([]float64, total)
			for i := range data {
				data[i] = float64(i) * 1.25
			}
		}
		chunk, offset, err := c.ScatterFloat64(0, data)
		if err != nil {
			t.Errorf("scatterv: %v", err)
			return
		}
		lo, hi := BlockRange(total, n, r)
		if offset != lo || len(chunk) != hi-lo {
			t.Errorf("rank %d chunk [%d,+%d), want [%d,%d)", r, offset, len(chunk), lo, hi)
			return
		}
		for i, v := range chunk {
			if v != float64(lo+i)*1.25 {
				t.Errorf("chunk[%d] = %v", i, v)
			}
		}
		// Transform locally, gather back, verify the reassembled whole.
		out := make([]float64, len(chunk))
		for i, v := range chunk {
			out[i] = v + 1000
		}
		all, err := c.GatherFloat64(0, out)
		if err != nil {
			t.Errorf("gatherv: %v", err)
			return
		}
		if r == 0 {
			if len(all) != total {
				t.Errorf("gathered %d elements, want %d", len(all), total)
				return
			}
			for i, v := range all {
				if v != float64(i)*1.25+1000 {
					t.Errorf("all[%d] = %v", i, v)
				}
			}
		}
	})
}

func TestConformanceGatherScatterAny(t *testing.T) {
	eachBackend(t, 3, func(t *testing.T, c *Comm) {
		n, r := c.Size(), c.Rank()
		var parts []any
		if r == 1 {
			parts = make([]any, n)
			for i := range parts {
				parts[i] = fmt.Sprintf("part-%d", i)
			}
		}
		got, err := c.Scatter(1, parts)
		if err != nil || got.(string) != fmt.Sprintf("part-%d", r) {
			t.Errorf("scatter = %v, %v", got, err)
			return
		}
		all, err := c.Gather(1, got.(string)+"!")
		if err != nil {
			t.Errorf("gather: %v", err)
			return
		}
		if r == 1 {
			for i, p := range all {
				if p.(string) != fmt.Sprintf("part-%d!", i) {
					t.Errorf("gathered[%d] = %v", i, p)
				}
			}
		} else if all != nil {
			t.Errorf("non-root gather = %v, want nil", all)
		}
	})
}

func TestConformanceAllgatherAlltoall(t *testing.T) {
	eachBackend(t, 4, func(t *testing.T, c *Comm) {
		n, r := c.Size(), c.Rank()
		all, err := c.Allgather([]int{r, r * r})
		if err != nil {
			t.Errorf("allgather: %v", err)
			return
		}
		for i := 0; i < n; i++ {
			if v := all[i].([]int); v[0] != i || v[1] != i*i {
				t.Errorf("allgather[%d] = %v", i, v)
			}
		}
		// Alltoall: parts[j] = 100*me + j; received[i] must be 100*i + me.
		parts := make([]any, n)
		for j := range parts {
			parts[j] = 100*r + j
		}
		recv, err := c.Alltoall(parts)
		if err != nil {
			t.Errorf("alltoall: %v", err)
			return
		}
		for i := 0; i < n; i++ {
			if recv[i].(int) != 100*i+r {
				t.Errorf("alltoall[%d] = %v, want %d", i, recv[i], 100*i+r)
			}
		}
	})
}

func TestConformanceScan(t *testing.T) {
	eachBackend(t, 4, func(t *testing.T, c *Comm) {
		r := c.Rank()
		out, err := c.Scan([]float64{float64(r + 1)}, Sum)
		if err != nil {
			t.Errorf("scan: %v", err)
			return
		}
		want := float64((r + 1) * (r + 2) / 2) // inclusive prefix of 1..r+1
		if v := out.([]float64); v[0] != want {
			t.Errorf("scan rank %d = %v, want %v", r, v[0], want)
		}
	})
}

func TestConformanceSplitDup(t *testing.T) {
	eachBackend(t, 4, func(t *testing.T, c *Comm) {
		r := c.Rank()
		// Evens and odds; rank 3 opts out with Undefined.
		color := r % 2
		if r == 3 {
			color = Undefined
		}
		sub, err := c.Split(color, -r) // negative key reverses rank order
		if err != nil {
			t.Errorf("split: %v", err)
			return
		}
		if r == 3 {
			if sub != nil {
				t.Error("Undefined color returned a communicator")
			}
		} else {
			wantSize := 2 // evens {0,2}, odds {1} — but 3 left, so odds {1} size 1
			if color == 1 {
				wantSize = 1
			}
			if sub.Size() != wantSize {
				t.Errorf("sub size = %d, want %d", sub.Size(), wantSize)
			}
			// Key -r orders descending by old rank.
			if color == 0 {
				wantRank := map[int]int{2: 0, 0: 1}[r]
				if sub.Rank() != wantRank {
					t.Errorf("rank %d got sub rank %d, want %d", r, sub.Rank(), wantRank)
				}
			}
			sum, err := sub.AllreduceScalar(float64(r), Sum)
			if err != nil {
				t.Errorf("sub allreduce: %v", err)
				return
			}
			want := map[int]float64{0: 2, 1: 1}[color]
			if sum != want {
				t.Errorf("sub allreduce = %v, want %v", sum, want)
			}
		}
		// Everyone (including rank 3) must still agree on the parent comm.
		if got, err := c.AllreduceScalar(1, Sum); err != nil || got != 4 {
			t.Errorf("parent allreduce after split = %v, %v", got, err)
		}

		// Dup isolates traffic: the same tag on parent and dup carries
		// different payloads and each receive matches its own context.
		dup, err := c.Dup()
		if err != nil {
			t.Errorf("dup: %v", err)
			return
		}
		if dup.Rank() != r || dup.Size() != c.Size() {
			t.Errorf("dup identity = (%d,%d)", dup.Rank(), dup.Size())
		}
		const tag = 21
		peer := r ^ 1
		if err := c.Send(peer, tag, "parent"); err != nil {
			t.Errorf("send parent: %v", err)
		}
		if err := dup.Send(peer, tag, "dup"); err != nil {
			t.Errorf("send dup: %v", err)
		}
		if p, _, err := dup.Recv(peer, tag); err != nil || p.(string) != "dup" {
			t.Errorf("dup recv = %v, %v", p, err)
		}
		if p, _, err := c.Recv(peer, tag); err != nil || p.(string) != "parent" {
			t.Errorf("parent recv = %v, %v", p, err)
		}
	})
}

func TestConformanceZeroLength(t *testing.T) {
	eachBackend(t, 2, func(t *testing.T, c *Comm) {
		peer := c.Rank() ^ 1
		// Zero-length and nil payloads are distinct, both legal.
		if err := c.Send(peer, 1, []float64{}); err != nil {
			t.Errorf("send empty: %v", err)
		}
		if err := c.Send(peer, 2, nil); err != nil {
			t.Errorf("send nil: %v", err)
		}
		got, st, err := c.RecvFloat64(peer, 1)
		if err != nil || len(got) != 0 || st.Count() != 0 {
			t.Errorf("recv empty = %v (count %d), %v", got, st.Count(), err)
		}
		p, st, err := c.Recv(peer, 2)
		if err != nil || p != nil || st.Count() != 0 {
			t.Errorf("recv nil = %v (count %d), %v", p, st.Count(), err)
		}
		// Zero-length collectives.
		out, err := c.Bcast(0, map[bool]any{true: []float64{}, false: nil}[c.Rank() == 0])
		if err != nil || len(out.([]float64)) != 0 {
			t.Errorf("bcast empty = %v, %v", out, err)
		}
		red, err := c.Allreduce([]float64{}, Sum)
		if err != nil || len(red.([]float64)) != 0 {
			t.Errorf("allreduce empty = %v, %v", red, err)
		}
	})
}

func TestConformanceLargePayload(t *testing.T) {
	// 48k float64s = 384 KiB — larger than the 256 KiB shm ring, so the
	// shm path must stream the frame through the ring in pieces; larger
	// than any coalescing buffer on tcp. Checksummed ring pass plus a
	// broadcast.
	if testing.Short() {
		t.Skip("large payloads in -short mode")
	}
	const elems = 48 << 10
	eachBackend(t, 4, func(t *testing.T, c *Comm) {
		n, r := c.Size(), c.Rank()
		payload := make([]float64, elems)
		for i := range payload {
			payload[i] = float64(r*elems + i)
		}
		req, err := c.Isend((r+1)%n, 6, payload)
		if err != nil {
			t.Errorf("isend large: %v", err)
			return
		}
		got, _, err := c.RecvFloat64((r+n-1)%n, 6)
		if err != nil {
			t.Errorf("recv large: %v", err)
			return
		}
		if err := req.Wait(); err != nil {
			t.Errorf("wait large: %v", err)
			return
		}
		prev := (r + n - 1) % n
		if len(got) != elems || got[0] != float64(prev*elems) || got[elems-1] != float64(prev*elems+elems-1) {
			t.Errorf("large ring recv corrupted: len %d ends %v,%v", len(got), got[0], got[elems-1])
		}
		bc, err := c.BcastFloat64(0, map[bool][]float64{true: payload, false: nil}[r == 0])
		if err != nil || len(bc) != elems || bc[elems-1] != float64(elems-1) {
			t.Errorf("large bcast: len %d, %v", len(bc), err)
		}
	})
}

func TestConformanceTypeFidelity(t *testing.T) {
	// Every payload kind in the wire set round-trips with its Go type and
	// value intact — by reference in-process, through the codec across
	// processes. NaN is checked by bit pattern, not equality.
	payloads := []any{
		nil,
		[]byte{0, 1, 255, 128},
		[]float64{0, -0.0, 1.5, math.Inf(1), math.Inf(-1)},
		[]int{0, -1, 1 << 40, -(1 << 40)},
		[]complex128{complex(1, -2), complex(math.Inf(-1), 0.5)},
		int(-42),
		float64(6.25e-3),
		"héllo wörld",
		true,
		false,
		[]any{int(7), "nested", []float64{1, 2}, []any{false}},
	}
	eachBackend(t, 2, func(t *testing.T, c *Comm) {
		peer := c.Rank() ^ 1
		for i, p := range payloads {
			if err := c.Send(peer, i, p); err != nil {
				t.Errorf("send %T: %v", p, err)
			}
		}
		if err := c.Send(peer, len(payloads), math.NaN()); err != nil {
			t.Errorf("send NaN: %v", err)
		}
		for i, want := range payloads {
			got, st, err := c.Recv(peer, i)
			if err != nil {
				t.Errorf("recv %T: %v", want, err)
				continue
			}
			if !reflect.DeepEqual(got, want) {
				t.Errorf("payload %d: got %#v (%T), want %#v (%T)", i, got, got, want, want)
			}
			if st.Tag != i {
				t.Errorf("payload %d: tag %d", i, st.Tag)
			}
		}
		if got, _, err := c.Recv(peer, len(payloads)); err != nil || !math.IsNaN(got.(float64)) {
			t.Errorf("NaN round-trip = %v, %v", got, err)
		}
	})
}

// TestCollTagWindowWraparound drives more collectives through a 3-rank
// communicator than the collective tag window holds, on both backends.
// After wraparound, collective k and collective k+collTagWindow share a
// tag; per-pair FIFO ordering is what keeps them from aliasing, and any
// ordering bug shows up as a value from the wrong round.
func TestCollTagWindowWraparound(t *testing.T) {
	if testing.Short() {
		t.Skip("wraparound sweep in -short mode")
	}
	rounds := collTagWindow + 130 // past the wraparound point with margin
	body := func(t *testing.T, c *Comm) {
		for i := 0; i < rounds; i++ {
			switch i % 3 {
			case 0:
				got, err := c.AllreduceScalar(float64(c.Rank()+i), Sum)
				want := float64(3*i + 3) // 0+1+2 ranks + 3i
				if err != nil || got != want {
					t.Errorf("round %d allreduce = %v, %v (want %v)", i, got, err, want)
					return
				}
			case 1:
				root := i % c.Size()
				var in any
				if c.Rank() == root {
					in = i
				}
				got, err := c.Bcast(root, in)
				if err != nil || got.(int) != i {
					t.Errorf("round %d bcast = %v, %v", i, got, err)
					return
				}
			case 2:
				if err := c.Barrier(); err != nil {
					t.Errorf("round %d barrier: %v", i, err)
					return
				}
			}
		}
	}
	t.Run("goroutine", func(t *testing.T) { Run(3, func(c *Comm) { body(t, c) }) })
	t.Run("proc", func(t *testing.T) {
		addr := fmt.Sprintf("inproc://wraparound-%d", atomic.AddInt64(&confAddrSeq, 1))
		if err := RunOver(3, addr, func(c *Comm, _ *Proc) { body(t, c) }); err != nil {
			t.Fatal(err)
		}
	})
}
