package mpi

// Property tests for the process backend's arithmetic fidelity: collective
// reductions over the wire must produce bit-identical results — first
// against the serial reference fold on exact integer-valued data (where
// every combine order is exact, so any wire-introduced perturbation is a
// bug), then against the goroutine backend on arbitrary doubles (both
// backends run the same binomial tree, so even the rounding must agree
// bit-for-bit; a difference means the codec altered a payload).

import (
	"fmt"
	"math"
	"math/rand"
	"sync/atomic"
	"testing"
)

// serialFold is the reference reduction: a left-to-right fold of the
// per-rank contributions, the same reference the goroutine backend's
// par-vs-serial tests use.
func serialFold(t *testing.T, contribs [][]float64, op Op) []float64 {
	t.Helper()
	acc := op.clone(contribs[0]).([]float64)
	for _, c := range contribs[1:] {
		out, err := op.combine(acc, c)
		if err != nil {
			t.Fatalf("serial combine: %v", err)
		}
		acc = out.([]float64)
	}
	return acc
}

func bitsEqual(a, b []float64) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if math.Float64bits(a[i]) != math.Float64bits(b[i]) {
			return false
		}
	}
	return true
}

// runProc runs body as an n-rank job on the process backend (inproc
// scheme: real wire codec and mesh, no sockets).
func runProc(t *testing.T, n int, body func(c *Comm)) {
	t.Helper()
	addr := fmt.Sprintf("inproc://prop-%d", atomic.AddInt64(&confAddrSeq, 1))
	if err := RunOver(n, addr, func(c *Comm, _ *Proc) { body(c) }); err != nil {
		t.Fatal(err)
	}
}

func TestProcCollectivesBitIdenticalToSerial(t *testing.T) {
	const n, vec = 4, 33
	rng := rand.New(rand.NewSource(99))
	contribs := make([][]float64, n)
	for r := range contribs {
		contribs[r] = make([]float64, vec)
		for i := range contribs[r] {
			// Small integers: sums and 4-way products stay exactly
			// representable, so the fold order cannot matter.
			contribs[r][i] = float64(rng.Intn(17) - 8)
		}
	}
	for _, op := range []Op{Sum, Prod, Max, Min} {
		want := serialFold(t, contribs, op)

		// Allreduce: every rank must hold the serial answer.
		results := make([][]float64, n)
		runProc(t, n, func(c *Comm) {
			out, err := c.AllreduceFloat64(contribs[c.Rank()], op)
			if err != nil {
				t.Errorf("%s allreduce: %v", op, err)
				return
			}
			results[c.Rank()] = out
		})
		for r, got := range results {
			if !bitsEqual(got, want) {
				t.Errorf("%s allreduce rank %d: %v, want %v", op, r, got, want)
			}
		}

		// Reduce to a non-zero root.
		var rootGot []float64
		runProc(t, n, func(c *Comm) {
			out, err := c.Reduce(2, contribs[c.Rank()], op)
			if err != nil {
				t.Errorf("%s reduce: %v", op, err)
				return
			}
			if c.Rank() == 2 {
				rootGot = out.([]float64)
			}
		})
		if !bitsEqual(rootGot, want) {
			t.Errorf("%s reduce root: %v, want %v", op, rootGot, want)
		}

		// Scan: rank r holds the serial fold of contributions 0..r.
		scans := make([][]float64, n)
		runProc(t, n, func(c *Comm) {
			out, err := c.Scan(contribs[c.Rank()], op)
			if err != nil {
				t.Errorf("%s scan: %v", op, err)
				return
			}
			scans[c.Rank()] = out.([]float64)
		})
		for r := 0; r < n; r++ {
			prefix := serialFold(t, contribs[:r+1], op)
			if !bitsEqual(scans[r], prefix) {
				t.Errorf("%s scan rank %d: %v, want %v", op, r, scans[r], prefix)
			}
		}
	}
}

func TestProcCollectivesBitIdenticalToGoroutine(t *testing.T) {
	// Arbitrary doubles, including values whose sum depends on combine
	// order. Both backends execute the same tree, so the process backend
	// must reproduce the goroutine backend's rounding exactly; this fails
	// if the wire codec perturbs so much as one mantissa bit.
	const n, vec = 5, 41
	rng := rand.New(rand.NewSource(2026))
	contribs := make([][]float64, n)
	for r := range contribs {
		contribs[r] = make([]float64, vec)
		for i := range contribs[r] {
			contribs[r][i] = (rng.Float64() - 0.5) * math.Pow(10, float64(rng.Intn(13)-6))
		}
	}
	collect := func(run func(t *testing.T, n int, body func(c *Comm))) [][]float64 {
		results := make([][]float64, n)
		run(t, n, func(c *Comm) {
			out, err := c.AllreduceFloat64(contribs[c.Rank()], Sum)
			if err != nil {
				t.Errorf("allreduce: %v", err)
				return
			}
			results[c.Rank()] = out
		})
		return results
	}
	goResults := collect(func(t *testing.T, n int, body func(c *Comm)) { Run(n, body) })
	procResults := collect(runProc)
	for r := 0; r < n; r++ {
		if !bitsEqual(goResults[r], procResults[r]) {
			t.Errorf("rank %d: goroutine and process backends disagree:\n  go:   %v\n  proc: %v",
				r, goResults[r], procResults[r])
		}
	}
}
