package mpi

import "fmt"

// Collective tag management. Collectives on a communicator must be invoked
// in the same order by every rank (the standard MPI requirement); each rank
// then advances its local sequence number identically, so a sequence-derived
// tag is globally consistent without extra communication. The window bounds
// the tag range; reuse after collTagWindow collectives is safe because
// point-to-point ordering guarantees all traffic of collective k has been
// matched before collective k+collTagWindow starts between any pair.
const (
	collTagFirst  = internalTagBase + 16
	collTagWindow = 8192
)

func (c *Comm) nextCollTag() int {
	t := collTagFirst + c.collSeq%collTagWindow
	c.collSeq++
	return t
}

// Barrier blocks until every rank of the communicator has entered it.
// Implemented as a binomial-tree reduce to rank 0 followed by a
// binomial-tree release.
func (c *Comm) Barrier() error {
	tag := c.nextCollTag()
	n, r := c.Size(), c.rank
	// Reduce phase: children report in.
	for mask := 1; mask < n; mask <<= 1 {
		if r&mask != 0 {
			if err := c.sendInternal(r-mask, tag, nil); err != nil {
				return err
			}
			break
		}
		if r+mask < n {
			if _, _, err := c.recvInternal(r+mask, tag); err != nil {
				return err
			}
		}
	}
	// Release phase: binomial broadcast from rank 0. Each rank receives
	// once from its parent (rank minus its lowest set bit), then forwards
	// to its children.
	lowbit := 1
	if r != 0 {
		for r&lowbit == 0 {
			lowbit <<= 1
		}
		if _, _, err := c.recvInternal(r-lowbit, tag); err != nil {
			return err
		}
	} else {
		for lowbit < n {
			lowbit <<= 1
		}
	}
	for mask := lowbit >> 1; mask >= 1; mask >>= 1 {
		if r+mask < n {
			if err := c.sendInternal(r+mask, tag, nil); err != nil {
				return err
			}
		}
	}
	return nil
}

// Bcast broadcasts root's payload to every rank using a binomial tree and
// returns the payload on every rank. Non-root callers pass nil (their
// argument is ignored). Payloads are shared by reference: receivers must not
// mutate a broadcast slice.
func (c *Comm) Bcast(root int, payload any) (any, error) {
	if err := c.checkRank(root); err != nil {
		return nil, err
	}
	tag := c.nextCollTag()
	n := c.Size()
	if n == 1 {
		return payload, nil
	}
	// Work in root-relative rank space so any root uses the same tree.
	vr := (c.rank - root + n) % n
	// Receive from parent (the rank that differs in my lowest set bit).
	if vr != 0 {
		mask := 1
		for vr&mask == 0 {
			mask <<= 1
		}
		parent := ((vr - mask) + root) % n
		p, _, err := c.recvInternal(parent, tag)
		if err != nil {
			return nil, err
		}
		payload = p
	}
	// Forward to children.
	lowbit := 1
	if vr != 0 {
		for vr&lowbit == 0 {
			lowbit <<= 1
		}
	} else {
		highest := 1
		for highest < n {
			highest <<= 1
		}
		lowbit = highest
	}
	for mask := lowbit >> 1; mask >= 1; mask >>= 1 {
		child := vr + mask
		if child < n {
			if err := c.sendInternal((child+root)%n, tag, payload); err != nil {
				return nil, err
			}
		}
	}
	return payload, nil
}

// BcastFloat64 is a typed convenience wrapper around Bcast.
func (c *Comm) BcastFloat64(root int, data []float64) ([]float64, error) {
	p, err := c.Bcast(root, data)
	if err != nil {
		return nil, err
	}
	if p == nil {
		return nil, nil
	}
	v, ok := p.([]float64)
	if !ok {
		return nil, fmt.Errorf("%w: got %T, want []float64", ErrTypeMatch, p)
	}
	return v, nil
}

// Reduce combines each rank's contribution with op and delivers the result
// to root; other ranks receive nil. The contribution is not mutated.
// Implemented as a binomial tree in root-relative rank space.
func (c *Comm) Reduce(root int, contrib any, op Op) (any, error) {
	if err := c.checkRank(root); err != nil {
		return nil, err
	}
	tag := c.nextCollTag()
	n := c.Size()
	acc := op.clone(contrib)
	vr := (c.rank - root + n) % n
	for mask := 1; mask < n; mask <<= 1 {
		if vr&mask != 0 {
			parent := ((vr - mask) + root) % n
			return nil, c.sendInternal(parent, tag, acc)
		}
		if vr+mask < n {
			p, _, err := c.recvInternal((vr+mask+root)%n, tag)
			if err != nil {
				return nil, err
			}
			acc, err = op.combine(acc, p)
			if err != nil {
				return nil, err
			}
		}
	}
	return acc, nil
}

// Allreduce combines every rank's contribution and returns the result on all
// ranks (Reduce to 0 + Bcast).
func (c *Comm) Allreduce(contrib any, op Op) (any, error) {
	acc, err := c.Reduce(0, contrib, op)
	if err != nil {
		return nil, err
	}
	return c.Bcast(0, acc)
}

// AllreduceFloat64 is a typed convenience wrapper around Allreduce for the
// ubiquitous vector case.
func (c *Comm) AllreduceFloat64(contrib []float64, op Op) ([]float64, error) {
	p, err := c.Allreduce(contrib, op)
	if err != nil {
		return nil, err
	}
	v, ok := p.([]float64)
	if !ok {
		return nil, fmt.Errorf("%w: got %T, want []float64", ErrTypeMatch, p)
	}
	return v, nil
}

// AllreduceScalar reduces a single float64 across ranks; the workhorse of
// dot products and residual norms in the solver components.
func (c *Comm) AllreduceScalar(x float64, op Op) (float64, error) {
	p, err := c.Allreduce([]float64{x}, op)
	if err != nil {
		return 0, err
	}
	return p.([]float64)[0], nil
}

// Gather collects each rank's payload at root, returning a slice indexed by
// rank on root and nil elsewhere.
func (c *Comm) Gather(root int, payload any) ([]any, error) {
	if err := c.checkRank(root); err != nil {
		return nil, err
	}
	tag := c.nextCollTag()
	if c.rank != root {
		return nil, c.sendInternal(root, tag, payload)
	}
	out := make([]any, c.Size())
	out[c.rank] = payload
	for i := 0; i < c.Size()-1; i++ {
		p, st, err := c.recvInternal(AnySource, tag)
		if err != nil {
			return nil, err
		}
		out[st.Source] = p
	}
	return out, nil
}

// GatherFloat64 gathers per-rank []float64 chunks at root and concatenates
// them in rank order (MPI_Gatherv with implicit counts).
func (c *Comm) GatherFloat64(root int, chunk []float64) ([]float64, error) {
	parts, err := c.Gather(root, chunk)
	if err != nil || parts == nil {
		return nil, err
	}
	var total int
	typed := make([][]float64, len(parts))
	for i, p := range parts {
		v, ok := p.([]float64)
		if !ok {
			return nil, fmt.Errorf("%w: rank %d sent %T", ErrTypeMatch, i, p)
		}
		typed[i] = v
		total += len(v)
	}
	out := make([]float64, 0, total)
	for _, v := range typed {
		out = append(out, v...)
	}
	return out, nil
}

// Allgather collects every rank's payload on every rank.
func (c *Comm) Allgather(payload any) ([]any, error) {
	parts, err := c.Gather(0, payload)
	if err != nil {
		return nil, err
	}
	p, err := c.Bcast(0, parts)
	if err != nil {
		return nil, err
	}
	return p.([]any), nil
}

// Scatter distributes parts[i] from root to rank i and returns the local
// part on every rank. Non-root callers pass nil for parts.
func (c *Comm) Scatter(root int, parts []any) (any, error) {
	if err := c.checkRank(root); err != nil {
		return nil, err
	}
	tag := c.nextCollTag()
	if c.rank == root {
		if len(parts) != c.Size() {
			return nil, fmt.Errorf("%w: scatter with %d parts for %d ranks", ErrCountMatch, len(parts), c.Size())
		}
		for i, p := range parts {
			if i == root {
				continue
			}
			if err := c.sendInternal(i, tag, p); err != nil {
				return nil, err
			}
		}
		return parts[root], nil
	}
	p, _, err := c.recvInternal(root, tag)
	return p, err
}

// ScatterFloat64 splits data on root into Size() near-equal contiguous
// chunks (block distribution) and scatters them; it returns the local chunk
// on every rank along with its global offset.
func (c *Comm) ScatterFloat64(root int, data []float64) (chunk []float64, offset int, err error) {
	var parts []any
	var offsets []int
	if c.rank == root {
		n := c.Size()
		parts = make([]any, n)
		offsets = make([]int, n)
		for i := 0; i < n; i++ {
			lo, hi := BlockRange(len(data), n, i)
			parts[i] = data[lo:hi]
			offsets[i] = lo
		}
	}
	p, err := c.Scatter(root, parts)
	if err != nil {
		return nil, 0, err
	}
	op, err := c.Scatter(root, intsToAnys(offsets, c.rank == root, c.Size()))
	if err != nil {
		return nil, 0, err
	}
	chunk, ok := p.([]float64)
	if !ok {
		return nil, 0, fmt.Errorf("%w: got %T, want []float64", ErrTypeMatch, p)
	}
	return chunk, op.(int), nil
}

func intsToAnys(xs []int, isRoot bool, n int) []any {
	if !isRoot {
		return nil
	}
	out := make([]any, n)
	for i, x := range xs {
		out[i] = x
	}
	return out
}

// Alltoall exchanges parts[i] of every rank with rank i; returns the slice
// of payloads received, indexed by source rank.
func (c *Comm) Alltoall(parts []any) ([]any, error) {
	if len(parts) != c.Size() {
		return nil, fmt.Errorf("%w: alltoall with %d parts for %d ranks", ErrCountMatch, len(parts), c.Size())
	}
	tag := c.nextCollTag()
	out := make([]any, c.Size())
	out[c.rank] = parts[c.rank]
	for i := 0; i < c.Size(); i++ {
		if i == c.rank {
			continue
		}
		if err := c.sendInternal(i, tag, parts[i]); err != nil {
			return nil, err
		}
	}
	for i := 0; i < c.Size()-1; i++ {
		p, st, err := c.recvInternal(AnySource, tag)
		if err != nil {
			return nil, err
		}
		out[st.Source] = p
	}
	return out, nil
}

// Scan computes the inclusive prefix reduction: rank r receives
// op(contrib_0, ..., contrib_r). Linear pipeline implementation.
func (c *Comm) Scan(contrib any, op Op) (any, error) {
	tag := c.nextCollTag()
	acc := op.clone(contrib)
	if c.rank > 0 {
		p, _, err := c.recvInternal(c.rank-1, tag)
		if err != nil {
			return nil, err
		}
		acc, err = op.combine(op.clone(p), contrib)
		if err != nil {
			return nil, err
		}
	}
	if c.rank < c.Size()-1 {
		if err := c.sendInternal(c.rank+1, tag, acc); err != nil {
			return nil, err
		}
	}
	return acc, nil
}

// BlockRange returns the half-open global index range [lo, hi) owned by
// rank r under the standard near-equal block distribution of n items over p
// ranks (the first n%p ranks receive one extra item).
func BlockRange(n, p, r int) (lo, hi int) {
	base := n / p
	rem := n % p
	if r < rem {
		lo = r * (base + 1)
		hi = lo + base + 1
		return lo, hi
	}
	lo = rem*(base+1) + (r-rem)*base
	return lo, lo + base
}
