package mpi

// Process-backend lifecycle tests: rendezvous validation and generations,
// rank death surfacing as typed errors, finalize semantics, and the env
// entry point. The conformance suite proves semantic equivalence with the
// goroutine backend; this file proves the parts that only exist across
// processes — joining, leaving, and dying.

import (
	"errors"
	"fmt"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"repro/internal/transport"
)

var procAddrSeq int64

// newTestRendezvous starts a rendezvous for the given size on a fresh
// inproc address and returns the scheme-qualified address.
func newTestRendezvous(t *testing.T, size int) (*Rendezvous, string) {
	t.Helper()
	rest := fmt.Sprintf("proc-test-%d", atomic.AddInt64(&procAddrSeq, 1))
	tr, _, err := transport.ForScheme("inproc://x")
	if err != nil {
		t.Fatal(err)
	}
	l, err := tr.Listen(rest)
	if err != nil {
		t.Fatal(err)
	}
	rv := NewRendezvous(l, size)
	t.Cleanup(func() { rv.Close() })
	return rv, "inproc://" + rest
}

// joinAll joins n ranks concurrently and returns their comms and procs.
func joinAll(t *testing.T, n int, addr string) ([]*Comm, []*Proc) {
	t.Helper()
	comms := make([]*Comm, n)
	procs := make([]*Proc, n)
	errs := make([]error, n)
	var wg sync.WaitGroup
	for r := 0; r < n; r++ {
		wg.Add(1)
		go func(r int) {
			defer wg.Done()
			comms[r], procs[r], errs[r] = JoinConfig(ProcConfig{
				Rendezvous: addr, Rank: r, Size: n, Timeout: 10 * time.Second,
			})
		}(r)
	}
	wg.Wait()
	for r, err := range errs {
		if err != nil {
			t.Fatalf("rank %d join: %v", r, err)
		}
	}
	return comms, procs
}

func TestJoinConfigValidation(t *testing.T) {
	if _, _, err := JoinConfig(ProcConfig{Rendezvous: "inproc://x", Rank: 0, Size: 0}); err == nil {
		t.Error("size 0 accepted")
	}
	if _, _, err := JoinConfig(ProcConfig{Rendezvous: "inproc://x", Rank: 5, Size: 2}); !errors.Is(err, ErrRankRange) {
		t.Errorf("rank 5 of 2 = %v, want ErrRankRange", err)
	}
	if _, _, err := JoinConfig(ProcConfig{Rendezvous: "bogus://x", Rank: 0, Size: 2}); err == nil {
		t.Error("unknown rendezvous scheme accepted")
	}
}

func TestJoinEnvMissing(t *testing.T) {
	t.Setenv(EnvRendezvous, "")
	if _, _, err := Join(); err == nil {
		t.Error("Join without environment succeeded")
	}
}

func TestRendezvousRejectsBadJoins(t *testing.T) {
	_, addr := newTestRendezvous(t, 2)

	// Size mismatch is rejected by the service with a typed rvErr reply.
	_, _, err := JoinConfig(ProcConfig{Rendezvous: addr, Rank: 0, Size: 3, Timeout: 5 * time.Second})
	if err == nil {
		t.Fatal("size-3 join against size-2 rendezvous succeeded")
	}

	// Raw control frames: server-side validation must answer rvErr for a
	// rank outside the world and for a non-join opening frame.
	tr, _, _ := transport.ForScheme("inproc://x")
	rest := addr[len("inproc://"):]
	for _, tc := range []struct {
		name  string
		frame []byte
	}{
		{"rank out of range", appendString(appendUvarint(appendUvarint([]byte{rvJoin}, 7), 2), "inproc://nowhere")},
		{"not a join", []byte{rvCtxReq}},
	} {
		c, err := tr.Dial(rest)
		if err != nil {
			t.Fatal(err)
		}
		if err := c.Send(tc.frame); err != nil {
			t.Fatalf("%s: send: %v", tc.name, err)
		}
		f, err := c.Recv()
		if err != nil || len(f) == 0 || f[0] != rvErr {
			t.Errorf("%s: reply = %v, %v, want rvErr", tc.name, f, err)
		}
		transport.ReleaseFrame(f)
		c.Close()
	}

	// Duplicate rank: the second join of rank 0 is refused, and after a
	// correct rank-1 join the first one still completes the world.
	type joinRes struct {
		comm *Comm
		proc *Proc
		err  error
	}
	first := make(chan joinRes, 1)
	go func() {
		c, p, err := JoinConfig(ProcConfig{Rendezvous: addr, Rank: 0, Size: 2})
		first <- joinRes{c, p, err}
	}()
	time.Sleep(50 * time.Millisecond) // let the first join register
	if _, _, err := JoinConfig(ProcConfig{Rendezvous: addr, Rank: 0, Size: 2, Timeout: 5 * time.Second}); err == nil {
		t.Error("duplicate rank 0 join succeeded")
	}
	c1, p1, err := JoinConfig(ProcConfig{Rendezvous: addr, Rank: 1, Size: 2})
	if err != nil {
		t.Fatalf("rank 1 join: %v", err)
	}
	r0 := <-first
	if r0.err != nil {
		t.Fatalf("rank 0 join after duplicate was refused: %v", r0.err)
	}
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		if got, err := r0.comm.AllreduceScalar(1, Sum); err != nil || got != 2 {
			t.Errorf("rank 0 allreduce on formed world = %v, %v", got, err)
		}
		r0.proc.Close()
	}()
	if got, err := c1.AllreduceScalar(1, Sum); err != nil || got != 2 {
		t.Errorf("allreduce on formed world = %v, %v", got, err)
	}
	p1.Close()
	wg.Wait()
}

func TestRendezvousGenerations(t *testing.T) {
	rv, addr := newTestRendezvous(t, 2)
	for gen := uint64(1); gen <= 3; gen++ {
		comms, procs := joinAll(t, 2, addr)
		for r, p := range procs {
			if p.Generation() != gen {
				t.Fatalf("rank %d generation = %d, want %d", r, p.Generation(), gen)
			}
			if p.Rank() != r || p.Size() != 2 {
				t.Fatalf("proc identity = (%d,%d)", p.Rank(), p.Size())
			}
		}
		// Derived communicators exercise the cross-generation ctx RPC.
		var wg sync.WaitGroup
		for r, c := range comms {
			wg.Add(1)
			go func(r int, c *Comm) {
				defer wg.Done()
				sub, err := c.Dup()
				if err != nil {
					t.Errorf("gen %d dup: %v", gen, err)
					return
				}
				if got, err := sub.AllreduceScalar(float64(r), Sum); err != nil || got != 1 {
					t.Errorf("gen %d dup allreduce = %v, %v", gen, got, err)
				}
			}(r, c)
		}
		wg.Wait()
		for _, p := range procs {
			wg.Add(1)
			go func(p *Proc) { defer wg.Done(); p.Close() }(p)
		}
		wg.Wait()
		if g := rv.Generations(); g != gen {
			t.Fatalf("Generations() = %d, want %d", g, gen)
		}
	}
}

func TestProcKillSurfacesRankDeath(t *testing.T) {
	_, addr := newTestRendezvous(t, 3)
	comms, procs := joinAll(t, 3, addr)

	// Everyone synchronizes, then rank 2 dies without the finalize
	// handshake — the crash path, not the Close path.
	var wg sync.WaitGroup
	for r := 0; r < 3; r++ {
		wg.Add(1)
		go func(r int) {
			defer wg.Done()
			if err := comms[r].Barrier(); err != nil {
				t.Errorf("rank %d barrier: %v", r, err)
			}
		}(r)
	}
	wg.Wait()
	procs[2].Kill()

	for _, r := range []int{0, 1} {
		// A blocked receive from the dead rank fails typed instead of
		// hanging.
		_, _, err := comms[r].Recv(2, 1)
		var dead *RankDeadError
		if !errors.As(err, &dead) {
			t.Fatalf("rank %d recv from dead peer = %v, want RankDeadError", r, err)
		}
		if dead.Rank != 2 {
			t.Errorf("dead rank = %d, want 2", dead.Rank)
		}
		// The error unwraps to a connection-level transport failure, the
		// contract orb.Classify's retryable class is built on.
		if !errors.Is(err, transport.ErrClosed) {
			t.Errorf("rank %d death error %v does not unwrap to transport.ErrClosed", r, err)
		}
		// The whole proc is poisoned: Done fires, Err reports, collectives
		// fail fast, and late death callbacks fire immediately.
		select {
		case <-procs[r].Done():
		case <-time.After(5 * time.Second):
			t.Fatalf("rank %d Done() did not fire", r)
		}
		if err := procs[r].Err(); err == nil {
			t.Errorf("rank %d Err() = nil after death", r)
		}
		if _, err := comms[r].AllreduceScalar(1, Sum); !errors.As(err, &dead) {
			t.Errorf("rank %d collective after death = %v, want RankDeadError", r, err)
		}
		fired := make(chan int, 1)
		procs[r].OnRankDeath(func(rank int, err error) { fired <- rank })
		select {
		case rank := <-fired:
			if rank != 2 {
				t.Errorf("OnRankDeath rank = %d", rank)
			}
		case <-time.After(time.Second):
			t.Errorf("rank %d OnRankDeath did not fire for a past death", r)
		}
	}
	// Close after a peer death must not hang on the missing bye.
	for _, r := range []int{0, 1} {
		done := make(chan struct{})
		go func(r int) { procs[r].Close(); close(done) }(r)
		select {
		case <-done:
		case <-time.After(10 * time.Second):
			t.Fatalf("rank %d Close hung after peer death", r)
		}
	}
}

func TestProcCloseFinalizes(t *testing.T) {
	_, addr := newTestRendezvous(t, 2)
	comms, procs := joinAll(t, 2, addr)
	var wg sync.WaitGroup
	for r := 0; r < 2; r++ {
		wg.Add(1)
		go func(r int) {
			defer wg.Done()
			if got, err := comms[r].AllreduceScalar(1, Sum); err != nil || got != 2 {
				t.Errorf("allreduce = %v, %v", got, err)
			}
			// Graceful close: the bye handshake, not a death. Idempotent.
			if err := procs[r].Close(); err != nil {
				t.Errorf("rank %d close: %v", r, err)
			}
			if err := procs[r].Close(); err != nil {
				t.Errorf("rank %d re-close: %v", r, err)
			}
			if err := procs[r].Err(); err != nil {
				t.Errorf("rank %d Err() after clean close = %v", r, err)
			}
			// The communicator is revoked, not dead: operations fail with
			// ErrCommRevoked.
			if err := comms[r].Send(1-r, 1, nil); !errors.Is(err, ErrCommRevoked) {
				t.Errorf("send after close = %v, want ErrCommRevoked", err)
			}
		}(r)
	}
	wg.Wait()
}

func TestRunOverPanicPropagates(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("panic did not propagate out of RunOver")
		}
	}()
	addr := fmt.Sprintf("inproc://panic-%d", atomic.AddInt64(&procAddrSeq, 1))
	_ = RunOver(2, addr, func(c *Comm, _ *Proc) {
		if c.Rank() == 1 {
			panic("rank 1 exploded")
		}
		// Rank 0 blocks on the panicking rank; the kill must unblock it.
		_, _, _ = c.Recv(1, 1)
	})
}
