package mpi

import (
	"fmt"
	"sync"
	"time"

	"repro/internal/obs"
	"repro/internal/transport"
)

// Per-rank observability counters for the process backend. Each OS process
// owns its registry, so these are naturally per-rank figures.
var (
	cProcSendFrames = obs.NewCounter("mpi.proc.send_frames")
	cProcSendBytes  = obs.NewCounter("mpi.proc.send_bytes")
	cProcRecvFrames = obs.NewCounter("mpi.proc.recv_frames")
	cProcRecvBytes  = obs.NewCounter("mpi.proc.recv_bytes")
	cProcSelfSends  = obs.NewCounter("mpi.proc.self_sends")
	cProcRankDeaths = obs.NewCounter("mpi.proc.rank_deaths")
	cProcCtxAllocs  = obs.NewCounter("mpi.proc.ctx_allocs")
	cProcJoins      = obs.NewCounter("mpi.proc.joins")
)

// procWorld is the process backend's engine: one OS process's membership
// in a cohort. Peers are reached over a full mesh of transport
// connections; incoming frames are demultiplexed into the same mailbox
// structure the goroutine backend uses, so matching semantics (FIFO per
// (source, tag), wildcards, non-overtaking) are identical by construction.
type procWorld struct {
	rank, size int
	gen        uint64
	box        *mailbox
	peers      []transport.Conn // by world rank; nil at self
	listener   transport.Listener

	ctlMu sync.Mutex // serializes allocCtx round trips
	ctl   transport.Conn

	mu       sync.Mutex
	closing  bool
	byeSeen  []bool
	deathFns []func(rank int, err error)
	deadErr  error
	done     chan struct{}
	byeCond  *sync.Cond

	loopWG sync.WaitGroup
}

// writeDrainer matches the TCP coalescer's write-side barrier; other
// backends complete sends synchronously.
type writeDrainer interface{ DrainWrites() }

func (p *procWorld) send(dest int, e envelope) error {
	if dest == p.rank {
		cProcSelfSends.Inc()
		return p.box.put(e)
	}
	conn := p.peers[dest]
	bufp := wireBufs.Get().(*[]byte)
	buf, err := encodeMsg((*bufp)[:0], e)
	if err != nil {
		wireBufs.Put(bufp)
		return err
	}
	err = conn.Send(buf)
	*bufp = buf[:0]
	wireBufs.Put(bufp)
	if err != nil {
		p.mu.Lock()
		closing, bye := p.closing, p.byeSeen[dest]
		p.mu.Unlock()
		if closing || bye {
			return ErrCommRevoked
		}
		return &RankDeadError{Rank: dest, Err: err}
	}
	cProcSendFrames.Inc()
	cProcSendBytes.Add(uint64(len(buf)))
	return nil
}

func (p *procWorld) recv(source, efftag int) (envelope, error) {
	return p.box.take(source, efftag)
}

func (p *procWorld) probeWait(source, efftag int) (Status, error) {
	return p.box.probeWait(source, efftag)
}

func (p *procWorld) iprobe(source, efftag int) (Status, bool) {
	return p.box.probe(source, efftag)
}

// allocCtx asks the rendezvous service for a globally unique communicator
// context: Split may run concurrently on disjoint subcommunicators whose
// leaders are different processes, so no local counter can be safe.
func (p *procWorld) allocCtx() (int, error) {
	p.ctlMu.Lock()
	defer p.ctlMu.Unlock()
	if err := p.ctl.Send([]byte{rvCtxReq}); err != nil {
		return 0, fmt.Errorf("mpi: ctx allocation: %w", err)
	}
	f, err := p.ctl.Recv()
	if err != nil {
		return 0, fmt.Errorf("mpi: ctx allocation: %w", err)
	}
	defer transport.ReleaseFrame(f)
	if len(f) < 2 || f[0] != rvCtxRep {
		return 0, fmt.Errorf("%w: bad ctx reply", ErrWire)
	}
	n, m := uvarint(f[1:])
	if m <= 0 {
		return 0, fmt.Errorf("%w: truncated ctx reply", ErrWire)
	}
	cProcCtxAllocs.Inc()
	return int(n) * ctxStride, nil
}

// recvLoop demultiplexes one peer connection into the mailbox. A broken
// connection without the bye handshake is a rank death: the mailbox is
// poisoned with a typed RankDeadError so every blocked and future receive
// on this rank — point-to-point or mid-collective — fails fast.
func (p *procWorld) recvLoop(peer int, conn transport.Conn) {
	defer p.loopWG.Done()
	for {
		f, err := conn.Recv()
		if err != nil {
			p.peerGone(peer, err)
			return
		}
		if len(f) == 0 {
			transport.ReleaseFrame(f)
			p.rankDied(peer, fmt.Errorf("%w: empty frame", ErrWire))
			return
		}
		kind := f[0]
		switch kind {
		case kMsg:
			e, derr := decodeMsg(f[1:])
			cProcRecvFrames.Inc()
			cProcRecvBytes.Add(uint64(len(f)))
			transport.ReleaseFrame(f)
			if derr != nil {
				p.rankDied(peer, derr)
				return
			}
			// A put error means our own box is poisoned; the loop keeps
			// draining so the peer's finalize bye is still observed.
			_ = p.box.put(e)
		case kBye:
			transport.ReleaseFrame(f)
			p.markBye(peer)
			// Keep reading: the conn stays open until the peer closes it,
			// and the close after bye must not count as a death.
			if _, err := conn.Recv(); err != nil {
				return
			}
			p.rankDied(peer, fmt.Errorf("%w: traffic after bye", ErrWire))
			return
		default:
			transport.ReleaseFrame(f)
			p.rankDied(peer, fmt.Errorf("%w: unknown frame kind %d", ErrWire, kind))
			return
		}
	}
}

// peerGone classifies a receive error: expected during finalize (peer sent
// bye, or we are closing), a death otherwise.
func (p *procWorld) peerGone(peer int, err error) {
	p.mu.Lock()
	expected := p.closing || p.byeSeen[peer]
	p.mu.Unlock()
	if !expected {
		p.rankDied(peer, err)
	}
}

// rankDied poisons the world with a typed error and notifies watchers.
// The first death wins; subsequent ones are recorded only as counters.
func (p *procWorld) rankDied(peer int, cause error) {
	err := &RankDeadError{Rank: peer, Err: cause}
	cProcRankDeaths.Inc()
	p.mu.Lock()
	first := p.deadErr == nil
	if first {
		p.deadErr = err
	}
	fns := p.deathFns
	p.mu.Unlock()
	if !first {
		return
	}
	p.box.fail(err)
	close(p.done)
	for _, fn := range fns {
		fn(peer, err)
	}
}

func (p *procWorld) markBye(peer int) {
	p.mu.Lock()
	p.byeSeen[peer] = true
	p.byeCond.Broadcast()
	p.mu.Unlock()
}

// uvarint is binary.Uvarint without the import clutter at call sites.
func uvarint(b []byte) (uint64, int) {
	var x uint64
	var s uint
	for i, c := range b {
		if c < 0x80 {
			if i > 9 || i == 9 && c > 1 {
				return 0, -(i + 1)
			}
			return x | uint64(c)<<s, i + 1
		}
		x |= uint64(c&0x7f) << s
		s += 7
	}
	return 0, 0
}

// Proc is one rank's handle on a process-spanning cohort: lifecycle and
// failure observation for the world Comm returned alongside it by Join.
type Proc struct {
	pw *procWorld
}

// Rank returns this process's world rank.
func (p *Proc) Rank() int { return p.pw.rank }

// Size returns the world size.
func (p *Proc) Size() int { return p.pw.size }

// Generation returns the rendezvous generation this world formed as;
// it increases across cohort re-formations.
func (p *Proc) Generation() uint64 { return p.pw.gen }

// Done returns a channel closed when a peer rank dies.
func (p *Proc) Done() <-chan struct{} { return p.pw.done }

// Err returns the typed RankDeadError after a peer death, nil before.
func (p *Proc) Err() error {
	p.pw.mu.Lock()
	defer p.pw.mu.Unlock()
	return p.pw.deadErr
}

// OnRankDeath registers fn to run (once, on the first death) when a peer
// rank dies. Registration after a death fires fn immediately.
func (p *Proc) OnRankDeath(fn func(rank int, err error)) {
	p.pw.mu.Lock()
	if err := p.pw.deadErr; err != nil {
		p.pw.mu.Unlock()
		var rd *RankDeadError
		if asRankDead(err, &rd) {
			fn(rd.Rank, err)
		}
		return
	}
	p.pw.deathFns = append(p.pw.deathFns, fn)
	p.pw.mu.Unlock()
}

func asRankDead(err error, out **RankDeadError) bool {
	for err != nil {
		if rd, ok := err.(*RankDeadError); ok {
			*out = rd
			return true
		}
		u, ok := err.(interface{ Unwrap() error })
		if !ok {
			return false
		}
		err = u.Unwrap()
	}
	return false
}

// closeTimeout bounds how long Close waits for peers' finalize byes
// before tearing connections down anyway.
const closeTimeout = 5 * time.Second

// Close finalizes this rank's membership: it sends the bye handshake to
// every peer, waits (bounded) until every peer's bye has arrived — so no
// connection teardown can be mistaken for a death — and then releases
// connections, listener, and control channel. Close is collective in the
// MPI_Finalize sense: every rank should call it with no traffic in
// flight. After Close the communicator is revoked.
func (p *Proc) Close() error {
	pw := p.pw
	pw.mu.Lock()
	if pw.closing {
		pw.mu.Unlock()
		return nil
	}
	pw.closing = true
	pw.mu.Unlock()

	// Phase 1: tell every peer we are leaving.
	for r, conn := range pw.peers {
		if conn == nil {
			continue
		}
		_ = conn.Send([]byte{kBye})
		if d, ok := conn.(writeDrainer); ok {
			d.DrainWrites()
		}
		_ = r
	}
	// Phase 2: wait for their byes (or a recorded death) so closing our
	// end cannot be observed as a crash mid-handshake.
	deadline := time.Now().Add(closeTimeout)
	pw.mu.Lock()
	for !pw.allByesLocked() && pw.deadErr == nil && time.Now().Before(deadline) {
		waitCond(pw.byeCond, 10*time.Millisecond)
	}
	pw.mu.Unlock()

	// Phase 3: teardown.
	if pw.listener != nil {
		pw.listener.Close()
	}
	for _, conn := range pw.peers {
		if conn != nil {
			conn.Close()
		}
	}
	pw.ctlMu.Lock()
	if pw.ctl != nil {
		_ = pw.ctl.Send([]byte{rvBye})
		pw.ctl.Close()
	}
	pw.ctlMu.Unlock()
	pw.loopWG.Wait()
	pw.box.fail(ErrCommRevoked)
	return nil
}

// allByesLocked reports whether every live peer finalized.
func (pw *procWorld) allByesLocked() bool {
	for r, conn := range pw.peers {
		if conn == nil {
			continue
		}
		if !pw.byeSeen[r] {
			return false
		}
	}
	return true
}

// waitCond waits on c with an upper bound (sync.Cond has no timed wait;
// the timer wakes the condition so the caller re-checks its deadline).
func waitCond(c *sync.Cond, d time.Duration) {
	t := time.AfterFunc(d, c.Broadcast)
	c.Wait()
	t.Stop()
}

// Kill hard-closes every connection without the finalize handshake — the
// chaos hook that makes this rank look crashed to its peers, exactly as a
// SIGKILL would. The local communicator is revoked.
func (p *Proc) Kill() {
	pw := p.pw
	pw.mu.Lock()
	if pw.closing {
		pw.mu.Unlock()
		return
	}
	pw.closing = true
	pw.mu.Unlock()
	if pw.listener != nil {
		pw.listener.Close()
	}
	for _, conn := range pw.peers {
		if conn != nil {
			conn.Close()
		}
	}
	pw.ctlMu.Lock()
	if pw.ctl != nil {
		pw.ctl.Close()
	}
	pw.ctlMu.Unlock()
	pw.loopWG.Wait()
	pw.box.fail(ErrCommRevoked)
}
