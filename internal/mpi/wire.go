package mpi

import (
	"encoding/binary"
	"errors"
	"fmt"
	"math"
	"sync"

	"repro/internal/simd"
)

// Wire format of the process backend.
//
// Every frame travels over a transport.Conn (the transport owns framing,
// ordering, and delivery-whole semantics) and starts with a one-byte kind:
//
//	frame    := [u8 kind] body
//	hello    := kHello [uvarint rank] [uvarint gen]       dialer's first frame on a mesh conn
//	msg      := kMsg   [uvarint source] [uvarint efftag] value
//	bye      := kBye                                      finalize handshake (graceful close)
//
// The value encoding is a small closed type-tagged set — exactly the
// payload kinds the package's own collectives and the repo's SPMD
// components exchange. []float64 bodies are packed little-endian through
// the SIMD kernels, so the ubiquitous vector payload moves at memcpy
// speed. Unknown Go types fail fast with ErrPayloadType rather than
// falling back to reflection: a payload that silently worked in-process
// but not across processes is precisely the kind of divergence the
// conformance suite exists to rule out.
//
//	value   := [u8 type] data
//	tNil    — no data
//	tBytes  [uvarint n] n bytes
//	tF64s   [uvarint n] n×8 bytes LE (IEEE 754 bits)
//	tInts   [uvarint n] n varints (zigzag)
//	tC128s  [uvarint n] n×16 bytes LE (re, im)
//	tInt    varint
//	tF64    8 bytes LE
//	tString [uvarint n] n bytes
//	tBool   1 byte
//	tAnys   [uvarint n] n values (recursive; nesting for Allgather parts)
const (
	kHello byte = 1
	kMsg   byte = 2
	kBye   byte = 3
)

const (
	tNil byte = iota
	tBytes
	tF64s
	tInts
	tC128s
	tInt
	tF64
	tString
	tBool
	tAnys
)

// ErrPayloadType reports a payload whose Go type the process backend
// cannot serialize. The goroutine backend moves such payloads by
// reference; code meant to run on either backend must stick to the wire
// set (nil, []byte, []float64, []int, []complex128, int, float64, string,
// bool, and []any of these).
var ErrPayloadType = errors.New("mpi: payload type not transferable across processes")

// ErrWire reports a corrupt or truncated process-backend frame.
var ErrWire = errors.New("mpi: malformed wire frame")

// wireBufs recycles encode buffers across sends.
var wireBufs = sync.Pool{New: func() any { b := make([]byte, 0, 512); return &b }}

// appendUvarint / appendVarint are binary.AppendUvarint/AppendVarint —
// named locally to keep call sites short.
func appendUvarint(b []byte, v uint64) []byte { return binary.AppendUvarint(b, v) }
func appendVarint(b []byte, v int64) []byte   { return binary.AppendVarint(b, v) }

// encodeMsg appends a kMsg frame for e to b and returns it.
func encodeMsg(b []byte, e envelope) ([]byte, error) {
	b = append(b, kMsg)
	b = appendUvarint(b, uint64(e.source))
	b = appendUvarint(b, uint64(e.tag))
	return appendValue(b, e.payload)
}

func appendValue(b []byte, p any) ([]byte, error) {
	switch v := p.(type) {
	case nil:
		return append(b, tNil), nil
	case []byte:
		b = append(b, tBytes)
		b = appendUvarint(b, uint64(len(v)))
		return append(b, v...), nil
	case []float64:
		b = append(b, tF64s)
		b = appendUvarint(b, uint64(len(v)))
		off := len(b)
		b = append(b, make([]byte, 8*len(v))...)
		simd.PackF64LE(b[off:], v)
		return b, nil
	case []int:
		b = append(b, tInts)
		b = appendUvarint(b, uint64(len(v)))
		for _, x := range v {
			b = appendVarint(b, int64(x))
		}
		return b, nil
	case []complex128:
		b = append(b, tC128s)
		b = appendUvarint(b, uint64(len(v)))
		for _, x := range v {
			b = binary.LittleEndian.AppendUint64(b, math.Float64bits(real(x)))
			b = binary.LittleEndian.AppendUint64(b, math.Float64bits(imag(x)))
		}
		return b, nil
	case int:
		b = append(b, tInt)
		return appendVarint(b, int64(v)), nil
	case float64:
		b = append(b, tF64)
		return binary.LittleEndian.AppendUint64(b, math.Float64bits(v)), nil
	case string:
		b = append(b, tString)
		b = appendUvarint(b, uint64(len(v)))
		return append(b, v...), nil
	case bool:
		b = append(b, tBool)
		if v {
			return append(b, 1), nil
		}
		return append(b, 0), nil
	case []any:
		b = append(b, tAnys)
		b = appendUvarint(b, uint64(len(v)))
		var err error
		for _, x := range v {
			if b, err = appendValue(b, x); err != nil {
				return nil, err
			}
		}
		return b, nil
	default:
		return nil, fmt.Errorf("%w: %T", ErrPayloadType, p)
	}
}

// decodeMsg parses a kMsg frame body (after the kind byte) into an
// envelope. The returned payload owns fresh storage: the frame buffer may
// be released immediately after return.
func decodeMsg(b []byte) (envelope, error) {
	src, n := binary.Uvarint(b)
	if n <= 0 {
		return envelope{}, fmt.Errorf("%w: truncated source", ErrWire)
	}
	b = b[n:]
	tag, n := binary.Uvarint(b)
	if n <= 0 {
		return envelope{}, fmt.Errorf("%w: truncated tag", ErrWire)
	}
	b = b[n:]
	p, rest, err := decodeValue(b)
	if err != nil {
		return envelope{}, err
	}
	if len(rest) != 0 {
		return envelope{}, fmt.Errorf("%w: %d trailing bytes", ErrWire, len(rest))
	}
	return envelope{source: int(src), tag: int(tag), payload: p}, nil
}

// decodeCount reads a length prefix and validates it against the bytes
// actually present (elemSize > 0), so a corrupt count fails with ErrWire
// instead of a huge make().
func decodeCount(b []byte, elemSize int) (int, []byte, error) {
	v, n := binary.Uvarint(b)
	if n <= 0 {
		return 0, nil, fmt.Errorf("%w: truncated count", ErrWire)
	}
	b = b[n:]
	if elemSize > 0 && v > uint64(len(b)/elemSize) {
		return 0, nil, fmt.Errorf("%w: count %d exceeds frame", ErrWire, v)
	}
	return int(v), b, nil
}

func decodeValue(b []byte) (any, []byte, error) {
	if len(b) == 0 {
		return nil, nil, fmt.Errorf("%w: missing type tag", ErrWire)
	}
	t, b := b[0], b[1:]
	switch t {
	case tNil:
		return nil, b, nil
	case tBytes:
		n, b, err := decodeCount(b, 1)
		if err != nil {
			return nil, nil, err
		}
		out := make([]byte, n)
		copy(out, b[:n])
		return out, b[n:], nil
	case tF64s:
		n, b, err := decodeCount(b, 8)
		if err != nil {
			return nil, nil, err
		}
		out := make([]float64, n)
		simd.UnpackF64LE(out, b[:8*n])
		return out, b[8*n:], nil
	case tInts:
		n, b, err := decodeCount(b, 1) // ≥1 byte per varint
		if err != nil {
			return nil, nil, err
		}
		out := make([]int, n)
		for i := range out {
			v, m := binary.Varint(b)
			if m <= 0 {
				return nil, nil, fmt.Errorf("%w: truncated int element", ErrWire)
			}
			out[i] = int(v)
			b = b[m:]
		}
		return out, b, nil
	case tC128s:
		n, b, err := decodeCount(b, 16)
		if err != nil {
			return nil, nil, err
		}
		out := make([]complex128, n)
		for i := range out {
			re := math.Float64frombits(binary.LittleEndian.Uint64(b))
			im := math.Float64frombits(binary.LittleEndian.Uint64(b[8:]))
			out[i] = complex(re, im)
			b = b[16:]
		}
		return out, b, nil
	case tInt:
		v, n := binary.Varint(b)
		if n <= 0 {
			return nil, nil, fmt.Errorf("%w: truncated int", ErrWire)
		}
		return int(v), b[n:], nil
	case tF64:
		if len(b) < 8 {
			return nil, nil, fmt.Errorf("%w: truncated float64", ErrWire)
		}
		return math.Float64frombits(binary.LittleEndian.Uint64(b)), b[8:], nil
	case tString:
		n, b, err := decodeCount(b, 1)
		if err != nil {
			return nil, nil, err
		}
		return string(b[:n]), b[n:], nil
	case tBool:
		if len(b) < 1 {
			return nil, nil, fmt.Errorf("%w: truncated bool", ErrWire)
		}
		return b[0] != 0, b[1:], nil
	case tAnys:
		n, b, err := decodeCount(b, 0)
		if err != nil {
			return nil, nil, err
		}
		// Each element is at least 1 byte (its type tag).
		if n > len(b) {
			return nil, nil, fmt.Errorf("%w: count %d exceeds frame", ErrWire, n)
		}
		out := make([]any, n)
		for i := range out {
			var v any
			if v, b, err = decodeValue(b); err != nil {
				return nil, nil, err
			}
			out[i] = v
		}
		return out, b, nil
	default:
		return nil, nil, fmt.Errorf("%w: unknown type tag %d", ErrWire, t)
	}
}
