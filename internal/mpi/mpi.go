// Package mpi provides an MPI-like message-passing substrate built on
// goroutines and in-process mailboxes.
//
// The Common Component Architecture paper (HPDC 1999) assumes SPMD parallel
// components whose internal communication is MPI (see Figure 1: "component A
// (a mesh) uses MPI to communicate among the four processes over which it is
// distributed"). This package reproduces the semantics that the CCA's
// collective ports are built on — rank-addressed point-to-point messaging
// with tag matching, communicator groups, and the standard collective
// operations — in a single address space so the whole reproduction runs on a
// laptop. Each "process" is a goroutine; each rank owns a mailbox with
// MPI-style (source, tag) matching, including wildcards.
//
// The API deliberately mirrors the MPI-1 surface that scientific codes such
// as CHAD use: Send/Recv, nonblocking Isend/Irecv with Wait, Barrier, Bcast,
// Reduce, Allreduce, Gather(v), Scatter(v), Allgather, Alltoall, and
// communicator Split/Dup.
package mpi

import (
	"errors"
	"fmt"
	"sync"
	"sync/atomic"
)

// Wildcards for Recv matching, mirroring MPI_ANY_SOURCE and MPI_ANY_TAG.
const (
	AnySource = -1
	AnyTag    = -1
)

// Reserved internal tag space. User tags must be non-negative and below
// internalTagBase; collectives use tags at or above it so user traffic can
// never match collective traffic.
const internalTagBase = 1 << 28

// Common errors returned by communicator operations.
var (
	ErrRankRange   = errors.New("mpi: rank out of range")
	ErrTagRange    = errors.New("mpi: tag out of range")
	ErrTypeMatch   = errors.New("mpi: message payload type mismatch")
	ErrCountMatch  = errors.New("mpi: message length mismatch")
	ErrCommRevoked = errors.New("mpi: communicator revoked")
)

// envelope is a single in-flight message.
type envelope struct {
	source  int
	tag     int
	payload any
}

// mailbox is one rank's incoming message queue with MPI matching semantics:
// messages from the same (source, tag) pair are matched in FIFO order, and a
// receive may use wildcard source and/or tag.
//
// The queue keeps a head index instead of re-slicing on every match so the
// common case — matching the oldest message — is O(1) even when a fast
// sender has queued thousands of eager messages ahead of the receiver (the
// broadcast-loop pattern). Out-of-order matches mark the slot consumed and
// are skipped later; storage is compacted when the consumed prefix grows.
type mailbox struct {
	mu      sync.Mutex
	cond    *sync.Cond
	pending []envelope
	taken   []bool // parallel to pending: slot already consumed
	head    int    // first possibly-live slot
	revoked bool
}

func newMailbox() *mailbox {
	m := &mailbox{}
	m.cond = sync.NewCond(&m.mu)
	return m
}

func (m *mailbox) put(e envelope) error {
	m.mu.Lock()
	defer m.mu.Unlock()
	if m.revoked {
		return ErrCommRevoked
	}
	m.pending = append(m.pending, e)
	m.taken = append(m.taken, false)
	m.cond.Broadcast()
	return nil
}

// compactLocked drops the consumed prefix once it dominates the queue.
func (m *mailbox) compactLocked() {
	if m.head > 64 && m.head*2 > len(m.pending) {
		n := copy(m.pending, m.pending[m.head:])
		copy(m.taken, m.taken[m.head:])
		m.pending = m.pending[:n]
		m.taken = m.taken[:n]
		m.head = 0
	}
}

// take blocks until a message matching (source, tag) is available and
// removes it. Wildcards follow MPI: AnySource and/or AnyTag match anything,
// but among matching messages the earliest-queued wins (non-overtaking for a
// fixed source/tag pair).
func (m *mailbox) take(source, tag int) (envelope, error) {
	m.mu.Lock()
	defer m.mu.Unlock()
	for {
		if m.revoked {
			return envelope{}, ErrCommRevoked
		}
		for i := m.head; i < len(m.pending); i++ {
			if m.taken[i] {
				if i == m.head {
					m.head++
				}
				continue
			}
			e := m.pending[i]
			if (source == AnySource || e.source == source) && (tag == AnyTag || e.tag == tag) {
				m.taken[i] = true
				m.pending[i] = envelope{} // release payload reference
				if i == m.head {
					m.head++
				}
				m.compactLocked()
				return e, nil
			}
		}
		m.cond.Wait()
	}
}

// probe reports whether a matching message is queued without removing it.
func (m *mailbox) probe(source, tag int) (Status, bool) {
	m.mu.Lock()
	defer m.mu.Unlock()
	for i := m.head; i < len(m.pending); i++ {
		if m.taken[i] {
			continue
		}
		e := m.pending[i]
		if (source == AnySource || e.source == source) && (tag == AnyTag || e.tag == tag) {
			return Status{Source: e.source, Tag: e.tag, count: payloadLen(e.payload)}, true
		}
	}
	return Status{}, false
}

func (m *mailbox) revoke() {
	m.mu.Lock()
	m.revoked = true
	m.cond.Broadcast()
	m.mu.Unlock()
}

// payloadLen reports the element count of the common payload kinds; -1 when
// unknown.
func payloadLen(p any) int {
	switch v := p.(type) {
	case []float64:
		return len(v)
	case []int:
		return len(v)
	case []byte:
		return len(v)
	case []complex128:
		return len(v)
	case nil:
		return 0
	default:
		return -1
	}
}

// Status describes a received (or probed) message, mirroring MPI_Status.
type Status struct {
	Source int
	Tag    int
	count  int
}

// Count reports the element count of the message payload, or -1 if the
// payload type has no defined count.
func (s Status) Count() int { return s.count }

// world is the shared state behind a family of communicators.
type world struct {
	boxes      []*mailbox // indexed by world rank
	ctxCounter int64      // allocator for derived-communicator contexts
}

// ctxStride separates the effective-tag ranges of distinct communicator
// contexts. Every tag used on a communicator (user tags < internalTagBase,
// collective tags < internalTagBase+collTagWindow, the split tag) is below
// ctxStride, so contexts at multiples of ctxStride can never cross-deliver.
const ctxStride = 2 * internalTagBase

// Comm is a communicator: an ordered group of ranks that can exchange
// point-to-point messages and participate in collectives. A Comm value is
// per-rank (like an MPI_Comm handle held by one process): Rank reports the
// holder's rank within the group.
type Comm struct {
	w       *world
	rank    int   // my rank in this communicator
	group   []int // communicator rank -> world rank
	ctxTag  int   // communication context offset; isolates comms from each other
	collSeq int   // per-rank collective sequence number (see collectives.go)
}

// Rank returns the calling rank's position in the communicator.
func (c *Comm) Rank() int { return c.rank }

// Size returns the number of ranks in the communicator.
func (c *Comm) Size() int { return len(c.group) }

func (c *Comm) worldRank(r int) int { return c.group[r] }

func (c *Comm) checkRank(r int) error {
	if r < 0 || r >= len(c.group) {
		return fmt.Errorf("%w: %d (size %d)", ErrRankRange, r, len(c.group))
	}
	return nil
}

func (c *Comm) checkTag(tag int) error {
	if tag < 0 || tag >= internalTagBase {
		return fmt.Errorf("%w: %d", ErrTagRange, tag)
	}
	return nil
}

// effective tag folds the communicator context into the tag so two distinct
// communicators over the same ranks never cross-deliver.
func (c *Comm) efftag(tag int) int { return tag + c.ctxTag }

// Send delivers payload to rank dest with the given tag. Payload slices are
// transferred by reference (single address space); receivers must treat
// received slices as read-only or copy them, exactly as a real MPI program
// treats its receive buffer as owned after MPI_Recv returns.
func (c *Comm) Send(dest, tag int, payload any) error {
	if err := c.checkRank(dest); err != nil {
		return err
	}
	if err := c.checkTag(tag); err != nil {
		return err
	}
	return c.w.boxes[c.worldRank(dest)].put(envelope{source: c.rank, tag: c.efftag(tag), payload: payload})
}

// sendInternal bypasses the user tag range check for collective traffic.
func (c *Comm) sendInternal(dest, tag int, payload any) error {
	return c.w.boxes[c.worldRank(dest)].put(envelope{source: c.rank, tag: c.efftag(tag), payload: payload})
}

// Recv blocks until a message matching (source, tag) arrives and returns its
// payload. source may be AnySource and tag may be AnyTag.
func (c *Comm) Recv(source, tag int) (any, Status, error) {
	if source != AnySource {
		if err := c.checkRank(source); err != nil {
			return nil, Status{}, err
		}
	}
	if tag != AnyTag {
		if err := c.checkTag(tag); err != nil {
			return nil, Status{}, err
		}
	}
	return c.recvInternal(source, tag)
}

func (c *Comm) recvInternal(source, tag int) (any, Status, error) {
	et := tag
	if tag != AnyTag {
		et = c.efftag(tag)
	}
	e, err := c.w.boxes[c.worldRank(c.rank)].take(source, et)
	if err != nil {
		return nil, Status{}, err
	}
	userTag := e.tag - c.ctxTag
	return e.payload, Status{Source: e.source, Tag: userTag, count: payloadLen(e.payload)}, nil
}

// RecvFloat64 receives a []float64 payload, enforcing the payload type.
func (c *Comm) RecvFloat64(source, tag int) ([]float64, Status, error) {
	p, st, err := c.Recv(source, tag)
	if err != nil {
		return nil, st, err
	}
	v, ok := p.([]float64)
	if !ok {
		return nil, st, fmt.Errorf("%w: got %T, want []float64", ErrTypeMatch, p)
	}
	return v, st, nil
}

// Probe blocks until a matching message is available and returns its Status
// without consuming it.
func (c *Comm) Probe(source, tag int) (Status, error) {
	et := tag
	if tag != AnyTag {
		if err := c.checkTag(tag); err != nil {
			return Status{}, err
		}
		et = c.efftag(tag)
	}
	box := c.w.boxes[c.worldRank(c.rank)]
	box.mu.Lock()
	defer box.mu.Unlock()
	for {
		if box.revoked {
			return Status{}, ErrCommRevoked
		}
		for i := box.head; i < len(box.pending); i++ {
			if box.taken[i] {
				continue
			}
			e := box.pending[i]
			if (source == AnySource || e.source == source) && (et == AnyTag || e.tag == et) {
				return Status{Source: e.source, Tag: e.tag - c.ctxTag, count: payloadLen(e.payload)}, nil
			}
		}
		box.cond.Wait()
	}
}

// Iprobe is the nonblocking form of Probe.
func (c *Comm) Iprobe(source, tag int) (Status, bool) {
	et := tag
	if tag != AnyTag {
		et = c.efftag(tag)
	}
	st, ok := c.w.boxes[c.worldRank(c.rank)].probe(source, et)
	if ok {
		st.Tag -= c.ctxTag
	}
	return st, ok
}

// Sendrecv performs a combined send and receive, safe against the pairwise
// exchange deadlock that naive Send-then-Recv causes.
func (c *Comm) Sendrecv(dest, sendTag int, payload any, source, recvTag int) (any, Status, error) {
	req, err := c.Isend(dest, sendTag, payload)
	if err != nil {
		return nil, Status{}, err
	}
	p, st, err := c.Recv(source, recvTag)
	if werr := req.Wait(); werr != nil && err == nil {
		err = werr
	}
	return p, st, err
}

// Run starts an SPMD "job" of n ranks over a fresh world communicator and
// runs body on each rank in its own goroutine. It returns after every rank's
// body has returned. Panics in a rank are re-raised on the caller after all
// other ranks are revoked, so a deadlocked collective does not hang the
// test binary.
func Run(n int, body func(c *Comm)) {
	if n <= 0 {
		panic(fmt.Sprintf("mpi: nonpositive world size %d", n))
	}
	w := &world{boxes: make([]*mailbox, n)}
	for i := range w.boxes {
		w.boxes[i] = newMailbox()
	}
	group := make([]int, n)
	for i := range group {
		group[i] = i
	}

	var wg sync.WaitGroup
	panics := make(chan any, n)
	for r := 0; r < n; r++ {
		wg.Add(1)
		go func(rank int) {
			defer wg.Done()
			defer func() {
				if p := recover(); p != nil {
					for _, b := range w.boxes {
						b.revoke()
					}
					panics <- p
				}
			}()
			body(&Comm{w: w, rank: rank, group: group})
		}(r)
	}
	wg.Wait()
	select {
	case p := <-panics:
		panic(p)
	default:
	}
}

// Split partitions the communicator by color, ordering ranks within each new
// communicator by (key, old rank), mirroring MPI_Comm_split. Every rank of c
// must call Split. A color of -1 (Undefined) yields a nil communicator for
// that rank.
const Undefined = -1

// Split is collective over c.
func (c *Comm) Split(color, key int) (*Comm, error) {
	type entry struct{ Color, Key, Rank int }
	type plan struct {
		All []entry
		Ctx int
	}
	mine := entry{color, key, c.rank}

	// Gather all (color,key,rank) triples at rank 0; rank 0 allocates a
	// fresh communication context from the world and broadcasts the plan.
	var all []entry
	var ctx int
	if c.rank == 0 {
		all = make([]entry, c.Size())
		all[0] = mine
		for i := 1; i < c.Size(); i++ {
			p, st, err := c.recvInternal(AnySource, c.splitTag())
			if err != nil {
				return nil, err
			}
			all[st.Source] = p.(entry)
		}
		ctx = int(atomic.AddInt64(&c.w.ctxCounter, 1)) * ctxStride
		for i := 1; i < c.Size(); i++ {
			if err := c.sendInternal(i, c.splitTag(), plan{All: all, Ctx: ctx}); err != nil {
				return nil, err
			}
		}
	} else {
		if err := c.sendInternal(0, c.splitTag(), mine); err != nil {
			return nil, err
		}
		p, _, err := c.recvInternal(0, c.splitTag())
		if err != nil {
			return nil, err
		}
		pl := p.(plan)
		all, ctx = pl.All, pl.Ctx
	}

	if color == Undefined {
		return nil, nil
	}
	// Stable order: key, then old rank.
	var members []entry
	for _, e := range all {
		if e.Color == color {
			members = append(members, e)
		}
	}
	for i := 1; i < len(members); i++ {
		for j := i; j > 0; j-- {
			a, b := members[j-1], members[j]
			if b.Key < a.Key || (b.Key == a.Key && b.Rank < a.Rank) {
				members[j-1], members[j] = b, a
			} else {
				break
			}
		}
	}
	group := make([]int, len(members))
	myNew := -1
	for i, e := range members {
		group[i] = c.worldRank(e.Rank)
		if e.Rank == c.rank {
			myNew = i
		}
	}
	return &Comm{w: c.w, rank: myNew, group: group, ctxTag: ctx}, nil
}

// splitTag is the internal tag used by Split traffic; efftag folds in the
// per-communicator context so concurrent Splits on different communicators
// cannot cross-deliver.
func (c *Comm) splitTag() int { return internalTagBase + 1 }

// Dup returns a communicator with the same group but an isolated
// communication context. Collective over c.
func (c *Comm) Dup() (*Comm, error) {
	return c.Split(0, c.rank)
}
