package mpi

import (
	"errors"
	"fmt"
	"sync"
	"sync/atomic"
)

// Wildcards for Recv matching, mirroring MPI_ANY_SOURCE and MPI_ANY_TAG.
const (
	AnySource = -1
	AnyTag    = -1
)

// Reserved internal tag space. User tags must be non-negative and below
// internalTagBase; collectives use tags at or above it so user traffic can
// never match collective traffic.
const internalTagBase = 1 << 28

// Common errors returned by communicator operations.
var (
	ErrRankRange   = errors.New("mpi: rank out of range")
	ErrTagRange    = errors.New("mpi: tag out of range")
	ErrTypeMatch   = errors.New("mpi: message payload type mismatch")
	ErrCountMatch  = errors.New("mpi: message length mismatch")
	ErrCommRevoked = errors.New("mpi: communicator revoked")
)

// RankDeadError reports that a cohort peer died: its connection to this
// rank broke without the finalize handshake (process crash, kill, network
// partition). It poisons the local rank's mailbox, so every blocked or
// future receive — including those inside collectives — fails with it
// instead of hanging. It unwraps to the underlying transport error, so
// orb.Classify sees a connection-level (retryable) failure.
type RankDeadError struct {
	Rank int // world rank of the dead peer
	Err  error
}

func (e *RankDeadError) Error() string {
	return fmt.Sprintf("mpi: rank %d died: %v", e.Rank, e.Err)
}

func (e *RankDeadError) Unwrap() error { return e.Err }

// engine is the rank-addressed point-to-point substrate a communicator
// runs on. One engine value serves one rank: send addresses peers by world
// rank, and the receive-side methods operate on the owning rank's mailbox.
// The collective algorithms in collectives.go are written purely against
// Comm's send/recv internals, so they run unchanged over every engine:
// the goroutine backend (goEngine, one address space) and the process
// backend (procWorld, frames over the multiplexed transport).
type engine interface {
	// send delivers e to world rank dest. e.source is the sender's rank in
	// the communicator the message belongs to; e.tag is the effective
	// (context-folded) tag.
	send(dest int, e envelope) error
	// recv blocks until a message matching (source, efftag) is in this
	// rank's mailbox and removes it. Wildcards follow mailbox.take.
	recv(source, efftag int) (envelope, error)
	// probeWait blocks until a matching message is queued and returns its
	// status (with the raw effective tag) without consuming it.
	probeWait(source, efftag int) (Status, error)
	// iprobe is the nonblocking probeWait.
	iprobe(source, efftag int) (Status, bool)
	// allocCtx returns a fresh communicator context offset, unique across
	// the whole world for the lifetime of the job.
	allocCtx() (int, error)
}

// envelope is a single in-flight message.
type envelope struct {
	source  int
	tag     int
	payload any
}

// mailbox is one rank's incoming message queue with MPI matching semantics:
// messages from the same (source, tag) pair are matched in FIFO order, and a
// receive may use wildcard source and/or tag.
//
// The queue keeps a head index instead of re-slicing on every match so the
// common case — matching the oldest message — is O(1) even when a fast
// sender has queued thousands of eager messages ahead of the receiver (the
// broadcast-loop pattern). Out-of-order matches mark the slot consumed and
// are skipped later; storage is compacted when the consumed prefix grows.
type mailbox struct {
	mu      sync.Mutex
	cond    *sync.Cond
	pending []envelope
	taken   []bool // parallel to pending: slot already consumed
	head    int    // first possibly-live slot
	failErr error  // sticky: revocation or rank death poisons the box
}

func newMailbox() *mailbox {
	m := &mailbox{}
	m.cond = sync.NewCond(&m.mu)
	return m
}

func (m *mailbox) put(e envelope) error {
	m.mu.Lock()
	defer m.mu.Unlock()
	if m.failErr != nil {
		return m.failErr
	}
	m.pending = append(m.pending, e)
	m.taken = append(m.taken, false)
	m.cond.Broadcast()
	return nil
}

// compactLocked drops the consumed prefix once it dominates the queue.
func (m *mailbox) compactLocked() {
	if m.head > 64 && m.head*2 > len(m.pending) {
		n := copy(m.pending, m.pending[m.head:])
		copy(m.taken, m.taken[m.head:])
		m.pending = m.pending[:n]
		m.taken = m.taken[:n]
		m.head = 0
	}
}

// take blocks until a message matching (source, tag) is available and
// removes it. Wildcards follow MPI: AnySource and/or AnyTag match anything,
// but among matching messages the earliest-queued wins (non-overtaking for a
// fixed source/tag pair).
func (m *mailbox) take(source, tag int) (envelope, error) {
	m.mu.Lock()
	defer m.mu.Unlock()
	for {
		if m.failErr != nil {
			return envelope{}, m.failErr
		}
		for i := m.head; i < len(m.pending); i++ {
			if m.taken[i] {
				if i == m.head {
					m.head++
				}
				continue
			}
			e := m.pending[i]
			if (source == AnySource || e.source == source) && (tag == AnyTag || e.tag == tag) {
				m.taken[i] = true
				m.pending[i] = envelope{} // release payload reference
				if i == m.head {
					m.head++
				}
				m.compactLocked()
				return e, nil
			}
		}
		m.cond.Wait()
	}
}

// probe reports whether a matching message is queued without removing it.
func (m *mailbox) probe(source, tag int) (Status, bool) {
	m.mu.Lock()
	defer m.mu.Unlock()
	for i := m.head; i < len(m.pending); i++ {
		if m.taken[i] {
			continue
		}
		e := m.pending[i]
		if (source == AnySource || e.source == source) && (tag == AnyTag || e.tag == tag) {
			return Status{Source: e.source, Tag: e.tag, count: payloadLen(e.payload)}, true
		}
	}
	return Status{}, false
}

// probeWait blocks until a matching message is queued and returns its
// status with the raw effective tag, without consuming the message.
func (m *mailbox) probeWait(source, tag int) (Status, error) {
	m.mu.Lock()
	defer m.mu.Unlock()
	for {
		if m.failErr != nil {
			return Status{}, m.failErr
		}
		for i := m.head; i < len(m.pending); i++ {
			if m.taken[i] {
				continue
			}
			e := m.pending[i]
			if (source == AnySource || e.source == source) && (tag == AnyTag || e.tag == tag) {
				return Status{Source: e.source, Tag: e.tag, count: payloadLen(e.payload)}, nil
			}
		}
		m.cond.Wait()
	}
}

// fail poisons the mailbox: every pending and future take/probeWait (and
// put) returns err. The first failure wins; later ones are ignored.
func (m *mailbox) fail(err error) {
	m.mu.Lock()
	if m.failErr == nil {
		m.failErr = err
	}
	m.cond.Broadcast()
	m.mu.Unlock()
}

func (m *mailbox) revoke() { m.fail(ErrCommRevoked) }

// payloadLen reports the element count of the common payload kinds; -1 when
// unknown.
func payloadLen(p any) int {
	switch v := p.(type) {
	case []float64:
		return len(v)
	case []int:
		return len(v)
	case []byte:
		return len(v)
	case []complex128:
		return len(v)
	case nil:
		return 0
	default:
		return -1
	}
}

// Status describes a received (or probed) message, mirroring MPI_Status.
type Status struct {
	Source int
	Tag    int
	count  int
}

// Count reports the element count of the message payload, or -1 if the
// payload type has no defined count.
func (s Status) Count() int { return s.count }

// world is the shared state behind the goroutine backend: one mailbox per
// rank plus the context allocator, all in a single address space.
type world struct {
	boxes      []*mailbox // indexed by world rank
	ctxCounter int64      // allocator for derived-communicator contexts
}

// goEngine is one rank's handle on a goroutine-backend world. Delivery is
// a mailbox append; payloads move by reference.
type goEngine struct {
	w    *world
	self int // my world rank
}

func (g *goEngine) send(dest int, e envelope) error { return g.w.boxes[dest].put(e) }

func (g *goEngine) recv(source, efftag int) (envelope, error) {
	return g.w.boxes[g.self].take(source, efftag)
}

func (g *goEngine) probeWait(source, efftag int) (Status, error) {
	return g.w.boxes[g.self].probeWait(source, efftag)
}

func (g *goEngine) iprobe(source, efftag int) (Status, bool) {
	return g.w.boxes[g.self].probe(source, efftag)
}

func (g *goEngine) allocCtx() (int, error) {
	return int(atomic.AddInt64(&g.w.ctxCounter, 1)) * ctxStride, nil
}

// ctxStride separates the effective-tag ranges of distinct communicator
// contexts. Every tag used on a communicator (user tags < internalTagBase,
// collective tags < internalTagBase+collTagWindow, the split tag) is below
// ctxStride, so contexts at multiples of ctxStride can never cross-deliver.
const ctxStride = 2 * internalTagBase

// Comm is a communicator: an ordered group of ranks that can exchange
// point-to-point messages and participate in collectives. A Comm value is
// per-rank (like an MPI_Comm handle held by one process): Rank reports the
// holder's rank within the group.
type Comm struct {
	eng     engine
	rank    int   // my rank in this communicator
	group   []int // communicator rank -> world rank
	ctxTag  int   // communication context offset; isolates comms from each other
	collSeq int   // per-rank collective sequence number (see collectives.go)
}

// Rank returns the calling rank's position in the communicator.
func (c *Comm) Rank() int { return c.rank }

// Size returns the number of ranks in the communicator.
func (c *Comm) Size() int { return len(c.group) }

func (c *Comm) worldRank(r int) int { return c.group[r] }

func (c *Comm) checkRank(r int) error {
	if r < 0 || r >= len(c.group) {
		return fmt.Errorf("%w: %d (size %d)", ErrRankRange, r, len(c.group))
	}
	return nil
}

func (c *Comm) checkTag(tag int) error {
	if tag < 0 || tag >= internalTagBase {
		return fmt.Errorf("%w: %d", ErrTagRange, tag)
	}
	return nil
}

// effective tag folds the communicator context into the tag so two distinct
// communicators over the same ranks never cross-deliver.
func (c *Comm) efftag(tag int) int { return tag + c.ctxTag }

// Send delivers payload to rank dest with the given tag. On the goroutine
// backend payload slices are transferred by reference; on the process
// backend they are serialized over the transport. Either way receivers
// must treat received slices as read-only or copy them, exactly as a real
// MPI program treats its receive buffer as owned after MPI_Recv returns.
func (c *Comm) Send(dest, tag int, payload any) error {
	if err := c.checkRank(dest); err != nil {
		return err
	}
	if err := c.checkTag(tag); err != nil {
		return err
	}
	return c.eng.send(c.worldRank(dest), envelope{source: c.rank, tag: c.efftag(tag), payload: payload})
}

// sendInternal bypasses the user tag range check for collective traffic.
func (c *Comm) sendInternal(dest, tag int, payload any) error {
	return c.eng.send(c.worldRank(dest), envelope{source: c.rank, tag: c.efftag(tag), payload: payload})
}

// Recv blocks until a message matching (source, tag) arrives and returns its
// payload. source may be AnySource and tag may be AnyTag.
func (c *Comm) Recv(source, tag int) (any, Status, error) {
	if source != AnySource {
		if err := c.checkRank(source); err != nil {
			return nil, Status{}, err
		}
	}
	if tag != AnyTag {
		if err := c.checkTag(tag); err != nil {
			return nil, Status{}, err
		}
	}
	return c.recvInternal(source, tag)
}

func (c *Comm) recvInternal(source, tag int) (any, Status, error) {
	et := tag
	if tag != AnyTag {
		et = c.efftag(tag)
	}
	e, err := c.eng.recv(source, et)
	if err != nil {
		return nil, Status{}, err
	}
	userTag := e.tag - c.ctxTag
	return e.payload, Status{Source: e.source, Tag: userTag, count: payloadLen(e.payload)}, nil
}

// RecvFloat64 receives a []float64 payload, enforcing the payload type.
func (c *Comm) RecvFloat64(source, tag int) ([]float64, Status, error) {
	p, st, err := c.Recv(source, tag)
	if err != nil {
		return nil, st, err
	}
	v, ok := p.([]float64)
	if !ok {
		return nil, st, fmt.Errorf("%w: got %T, want []float64", ErrTypeMatch, p)
	}
	return v, st, nil
}

// Probe blocks until a matching message is available and returns its Status
// without consuming it.
func (c *Comm) Probe(source, tag int) (Status, error) {
	et := tag
	if tag != AnyTag {
		if err := c.checkTag(tag); err != nil {
			return Status{}, err
		}
		et = c.efftag(tag)
	}
	st, err := c.eng.probeWait(source, et)
	if err != nil {
		return Status{}, err
	}
	st.Tag -= c.ctxTag
	return st, nil
}

// Iprobe is the nonblocking form of Probe.
func (c *Comm) Iprobe(source, tag int) (Status, bool) {
	et := tag
	if tag != AnyTag {
		et = c.efftag(tag)
	}
	st, ok := c.eng.iprobe(source, et)
	if ok {
		st.Tag -= c.ctxTag
	}
	return st, ok
}

// Sendrecv performs a combined send and receive, safe against the pairwise
// exchange deadlock that naive Send-then-Recv causes.
func (c *Comm) Sendrecv(dest, sendTag int, payload any, source, recvTag int) (any, Status, error) {
	req, err := c.Isend(dest, sendTag, payload)
	if err != nil {
		return nil, Status{}, err
	}
	p, st, err := c.Recv(source, recvTag)
	if werr := req.Wait(); werr != nil && err == nil {
		err = werr
	}
	return p, st, err
}

// Run starts an SPMD "job" of n ranks over a fresh world communicator and
// runs body on each rank in its own goroutine. It returns after every rank's
// body has returned. Panics in a rank are re-raised on the caller after all
// other ranks are revoked, so a deadlocked collective does not hang the
// test binary.
func Run(n int, body func(c *Comm)) {
	if n <= 0 {
		panic(fmt.Sprintf("mpi: nonpositive world size %d", n))
	}
	w := &world{boxes: make([]*mailbox, n)}
	for i := range w.boxes {
		w.boxes[i] = newMailbox()
	}
	group := make([]int, n)
	for i := range group {
		group[i] = i
	}

	var wg sync.WaitGroup
	panics := make(chan any, n)
	for r := 0; r < n; r++ {
		wg.Add(1)
		go func(rank int) {
			defer wg.Done()
			defer func() {
				if p := recover(); p != nil {
					for _, b := range w.boxes {
						b.revoke()
					}
					panics <- p
				}
			}()
			body(&Comm{eng: &goEngine{w: w, self: rank}, rank: rank, group: group})
		}(r)
	}
	wg.Wait()
	select {
	case p := <-panics:
		panic(p)
	default:
	}
}

// Split partitions the communicator by color, ordering ranks within each new
// communicator by (key, old rank), mirroring MPI_Comm_split. Every rank of c
// must call Split. A color of -1 (Undefined) yields a nil communicator for
// that rank.
const Undefined = -1

// Split is collective over c.
func (c *Comm) Split(color, key int) (*Comm, error) {
	// The exchange uses flat []int payloads — [color, key, rank] triples —
	// so the same code serializes over the process backend's wire codec.
	mine := []int{color, key, c.rank}

	// Gather all (color,key,rank) triples at rank 0; rank 0 allocates a
	// fresh communication context from the world and broadcasts the plan
	// as [ctx, c0,k0,r0, c1,k1,r1, ...].
	var all []int // 3 ints per member, indexed by arrival
	var ctx int
	if c.rank == 0 {
		all = make([]int, 0, 3*c.Size())
		all = append(all, mine...)
		for i := 1; i < c.Size(); i++ {
			p, _, err := c.recvInternal(AnySource, c.splitTag())
			if err != nil {
				return nil, err
			}
			all = append(all, p.([]int)...)
		}
		var err error
		if ctx, err = c.eng.allocCtx(); err != nil {
			return nil, err
		}
		plan := append([]int{ctx}, all...)
		for i := 1; i < c.Size(); i++ {
			if err := c.sendInternal(i, c.splitTag(), plan); err != nil {
				return nil, err
			}
		}
	} else {
		if err := c.sendInternal(0, c.splitTag(), mine); err != nil {
			return nil, err
		}
		p, _, err := c.recvInternal(0, c.splitTag())
		if err != nil {
			return nil, err
		}
		plan := p.([]int)
		ctx, all = plan[0], plan[1:]
	}

	if color == Undefined {
		return nil, nil
	}
	// Stable order: key, then old rank.
	type entry struct{ Color, Key, Rank int }
	var members []entry
	for i := 0; i+2 < len(all); i += 3 {
		e := entry{all[i], all[i+1], all[i+2]}
		if e.Color == color {
			members = append(members, e)
		}
	}
	for i := 1; i < len(members); i++ {
		for j := i; j > 0; j-- {
			a, b := members[j-1], members[j]
			if b.Key < a.Key || (b.Key == a.Key && b.Rank < a.Rank) {
				members[j-1], members[j] = b, a
			} else {
				break
			}
		}
	}
	group := make([]int, len(members))
	myNew := -1
	for i, e := range members {
		group[i] = c.worldRank(e.Rank)
		if e.Rank == c.rank {
			myNew = i
		}
	}
	return &Comm{eng: c.eng, rank: myNew, group: group, ctxTag: ctx}, nil
}

// splitTag is the internal tag used by Split traffic; efftag folds in the
// per-communicator context so concurrent Splits on different communicators
// cannot cross-deliver.
func (c *Comm) splitTag() int { return internalTagBase + 1 }

// Dup returns a communicator with the same group but an isolated
// communication context. Collective over c.
func (c *Comm) Dup() (*Comm, error) {
	return c.Split(0, c.rank)
}
