package mpi

import (
	"encoding/binary"
	"errors"
	"fmt"
	"os"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/transport"
)

// Environment variables through which a launcher (cmd/ccalaunch) hands a
// spawned rank its identity. Join reads them; JoinConfig takes the same
// values programmatically.
const (
	EnvRendezvous = "CCA_MPI_RENDEZVOUS"
	EnvRank       = "CCA_MPI_RANK"
	EnvSize       = "CCA_MPI_SIZE"
	EnvListen     = "CCA_MPI_LISTEN"
	EnvTimeout    = "CCA_MPI_TIMEOUT"
)

// ProcConfig describes one rank's membership in a process-spanning cohort.
type ProcConfig struct {
	// Rendezvous is the scheme-qualified address of the rendezvous
	// service, e.g. "tcp://127.0.0.1:7077" or "shm:///tmp/job/rv".
	Rendezvous string
	// Rank and Size are this process's world rank and the world size.
	Rank, Size int
	// Listen is the scheme-qualified address this rank's peer listener
	// binds; empty derives a default from the rendezvous scheme
	// ("tcp://127.0.0.1:0" for tcp). Non-tcp addresses are suffixed with a
	// per-attempt nonce so re-joins after a failure never collide with a
	// stale endpoint.
	Listen string
	// Timeout bounds rendezvous dialing, world formation, and mesh
	// construction. Zero means 10s.
	Timeout time.Duration
}

// joinSeq distinguishes join attempts within one process (nonce component
// of derived listen addresses).
var joinSeq int64

func schemeOf(addr string) string {
	if s, _, ok := strings.Cut(addr, "://"); ok {
		return s
	}
	return "tcp"
}

// listenAddr picks and uniquifies the peer-mesh listen address for one
// join attempt.
func (cfg *ProcConfig) listenAddr() string {
	addr := cfg.Listen
	if addr == "" {
		switch schemeOf(cfg.Rendezvous) {
		case "tcp":
			return "tcp://127.0.0.1:0"
		default:
			// shm dirs and inproc names derive from the rendezvous address.
			addr = cfg.Rendezvous + ".ranks"
		}
	}
	if schemeOf(addr) == "tcp" {
		// Port 0 is already collision-free.
		return addr
	}
	n := atomic.AddInt64(&joinSeq, 1)
	return fmt.Sprintf("%s/r%d-p%d-a%d", addr, cfg.Rank, os.Getpid(), n)
}

// Join forms (or re-forms) this process's membership in the cohort
// described by the CCA_MPI_* environment variables and returns the world
// communicator plus the lifecycle handle. It blocks until all Size ranks
// have joined the rendezvous and the full peer mesh is connected.
func Join() (*Comm, *Proc, error) {
	rendezvous := os.Getenv(EnvRendezvous)
	if rendezvous == "" {
		return nil, nil, fmt.Errorf("mpi: %s not set (not launched under ccalaunch?)", EnvRendezvous)
	}
	rank, err := strconv.Atoi(os.Getenv(EnvRank))
	if err != nil {
		return nil, nil, fmt.Errorf("mpi: bad %s: %w", EnvRank, err)
	}
	size, err := strconv.Atoi(os.Getenv(EnvSize))
	if err != nil {
		return nil, nil, fmt.Errorf("mpi: bad %s: %w", EnvSize, err)
	}
	var timeout time.Duration
	if v := os.Getenv(EnvTimeout); v != "" {
		if timeout, err = time.ParseDuration(v); err != nil {
			return nil, nil, fmt.Errorf("mpi: bad %s: %w", EnvTimeout, err)
		}
	}
	return JoinConfig(ProcConfig{
		Rendezvous: rendezvous,
		Rank:       rank,
		Size:       size,
		Listen:     os.Getenv(EnvListen),
		Timeout:    timeout,
	})
}

// JoinConfig is Join with explicit configuration. On success the returned
// Comm spans all Size processes; collective and point-to-point traffic
// moves over the transport mesh. The caller must Close the Proc to leave
// gracefully.
func JoinConfig(cfg ProcConfig) (*Comm, *Proc, error) {
	if cfg.Size <= 0 {
		return nil, nil, fmt.Errorf("mpi: nonpositive world size %d", cfg.Size)
	}
	if cfg.Rank < 0 || cfg.Rank >= cfg.Size {
		return nil, nil, fmt.Errorf("%w: join rank %d (size %d)", ErrRankRange, cfg.Rank, cfg.Size)
	}
	timeout := cfg.Timeout
	if timeout == 0 {
		timeout = 10 * time.Second
	}

	// Peer listener first: the address must be live before it is announced.
	laddr := cfg.listenAddr()
	ltr, lrest, err := transport.ForScheme(laddr)
	if err != nil {
		return nil, nil, err
	}
	l, err := ltr.Listen(lrest)
	if err != nil {
		return nil, nil, fmt.Errorf("mpi: rank %d listen %s: %w", cfg.Rank, laddr, err)
	}
	selfAddr := schemeOf(laddr) + "://" + l.Addr()

	// Register with the rendezvous and wait for the world map.
	rtr, rrest, err := transport.ForScheme(cfg.Rendezvous)
	if err != nil {
		l.Close()
		return nil, nil, err
	}
	ctl, err := transport.DialRetry(rtr, rrest, timeout)
	if err != nil {
		l.Close()
		return nil, nil, fmt.Errorf("mpi: rank %d rendezvous dial: %w", cfg.Rank, err)
	}
	join := appendUvarint([]byte{rvJoin}, uint64(cfg.Rank))
	join = appendUvarint(join, uint64(cfg.Size))
	join = appendString(join, selfAddr)
	if err := ctl.Send(join); err != nil {
		ctl.Close()
		l.Close()
		return nil, nil, fmt.Errorf("mpi: rank %d join: %w", cfg.Rank, err)
	}
	gen, addrs, err := recvWorldTimeout(ctl, timeout)
	if err != nil {
		ctl.Close()
		l.Close()
		return nil, nil, fmt.Errorf("mpi: rank %d world formation: %w", cfg.Rank, err)
	}
	if len(addrs) != cfg.Size {
		ctl.Close()
		l.Close()
		return nil, nil, fmt.Errorf("%w: world has %d addrs, size %d", ErrWire, len(addrs), cfg.Size)
	}

	// Full mesh: accept from higher ranks while dialing lower ranks — the
	// two directions must overlap or middle ranks deadlock on each other.
	peers, err := formMesh(l, cfg.Rank, cfg.Size, gen, addrs, timeout)
	if err != nil {
		ctl.Close()
		l.Close()
		return nil, nil, fmt.Errorf("mpi: rank %d mesh: %w", cfg.Rank, err)
	}

	pw := &procWorld{
		rank:     cfg.Rank,
		size:     cfg.Size,
		gen:      gen,
		box:      newMailbox(),
		peers:    peers,
		listener: l,
		ctl:      ctl,
		byeSeen:  make([]bool, cfg.Size),
		done:     make(chan struct{}),
	}
	pw.byeCond = sync.NewCond(&pw.mu)
	for r, conn := range peers {
		if conn == nil {
			continue
		}
		pw.loopWG.Add(1)
		go pw.recvLoop(r, conn)
	}

	// Ready/go barrier: no rank proceeds until every rank's receive loops
	// are live, so no early send can race a half-built peer.
	if err := ctl.Send([]byte{rvReady}); err != nil {
		proc := &Proc{pw: pw}
		proc.Kill()
		return nil, nil, fmt.Errorf("mpi: rank %d ready: %w", cfg.Rank, err)
	}
	if err := recvGoTimeout(ctl, timeout); err != nil {
		proc := &Proc{pw: pw}
		proc.Kill()
		return nil, nil, fmt.Errorf("mpi: rank %d go barrier: %w", cfg.Rank, err)
	}

	cProcJoins.Inc()
	group := make([]int, cfg.Size)
	for i := range group {
		group[i] = i
	}
	return &Comm{eng: pw, rank: cfg.Rank, group: group}, &Proc{pw: pw}, nil
}

// ErrFormationTimeout reports a cohort that failed to assemble within the
// join timeout: not every rank reached the rendezvous (or the formation
// barrier), so waiting longer cannot help — a crashed peer with no restart
// budget would otherwise hang the survivors' re-joins forever.
var ErrFormationTimeout = errors.New("mpi: world formation timeout")

// recvWorldTimeout is recvWorld bounded by d: on expiry the control
// connection is closed (unblocking the pending receive) and
// ErrFormationTimeout returns.
func recvWorldTimeout(ctl transport.Conn, d time.Duration) (uint64, []string, error) {
	type reply struct {
		gen   uint64
		addrs []string
		err   error
	}
	ch := make(chan reply, 1)
	go func() {
		gen, addrs, err := recvWorld(ctl)
		ch <- reply{gen, addrs, err}
	}()
	tm := time.NewTimer(d)
	defer tm.Stop()
	select {
	case r := <-ch:
		return r.gen, r.addrs, r.err
	case <-tm.C:
		ctl.Close()
		<-ch
		return 0, nil, fmt.Errorf("%w after %s", ErrFormationTimeout, d)
	}
}

// recvGoTimeout bounds the formation barrier the same way.
func recvGoTimeout(ctl transport.Conn, d time.Duration) error {
	ch := make(chan error, 1)
	go func() { ch <- recvGo(ctl) }()
	tm := time.NewTimer(d)
	defer tm.Stop()
	select {
	case err := <-ch:
		return err
	case <-tm.C:
		ctl.Close()
		<-ch
		return fmt.Errorf("%w after %s (go barrier)", ErrFormationTimeout, d)
	}
}

// recvWorld reads control frames until the world map (or an rvErr) arrives.
func recvWorld(ctl transport.Conn) (uint64, []string, error) {
	for {
		f, err := ctl.Recv()
		if err != nil {
			return 0, nil, err
		}
		if len(f) == 0 {
			transport.ReleaseFrame(f)
			return 0, nil, fmt.Errorf("%w: empty control frame", ErrWire)
		}
		switch f[0] {
		case rvWorld:
			b := f[1:]
			gen, n := binary.Uvarint(b)
			if n <= 0 {
				transport.ReleaseFrame(f)
				return 0, nil, fmt.Errorf("%w: truncated world gen", ErrWire)
			}
			b = b[n:]
			sz, n := binary.Uvarint(b)
			if n <= 0 || sz > uint64(len(b)) {
				transport.ReleaseFrame(f)
				return 0, nil, fmt.Errorf("%w: truncated world size", ErrWire)
			}
			b = b[n:]
			addrs := make([]string, sz)
			for i := range addrs {
				if addrs[i], b, err = readString(b); err != nil {
					transport.ReleaseFrame(f)
					return 0, nil, err
				}
			}
			transport.ReleaseFrame(f)
			return gen, addrs, nil
		case rvErr:
			msg, _, merr := readString(f[1:])
			transport.ReleaseFrame(f)
			if merr != nil {
				msg = "unreadable rendezvous error"
			}
			return 0, nil, errors.New(msg)
		default:
			transport.ReleaseFrame(f)
			return 0, nil, fmt.Errorf("%w: unexpected control frame %d", ErrWire, f[0])
		}
	}
}

// recvGo waits for the formation barrier release.
func recvGo(ctl transport.Conn) error {
	f, err := ctl.Recv()
	if err != nil {
		return err
	}
	defer transport.ReleaseFrame(f)
	if len(f) == 0 || f[0] != rvGo {
		if len(f) > 0 && f[0] == rvErr {
			msg, _, merr := readString(f[1:])
			if merr == nil {
				return errors.New(msg)
			}
		}
		return fmt.Errorf("%w: expected go frame", ErrWire)
	}
	return nil
}

// formMesh builds this rank's size-1 peer connections: dial every lower
// rank (sending a hello that names us and the generation), accept one
// connection from every higher rank (validating its hello). Stale dials
// from an earlier generation are rejected by the gen check.
func formMesh(l transport.Listener, rank, size int, gen uint64, addrs []string, timeout time.Duration) ([]transport.Conn, error) {
	peers := make([]transport.Conn, size)
	expect := size - 1 - rank

	type acceptResult struct {
		conns []transport.Conn // by rank, entries > rank
		err   error
	}
	acceptCh := make(chan acceptResult, 1)
	go func() {
		got := make([]transport.Conn, size)
		n := 0
		for n < expect {
			c, err := l.Accept()
			if err != nil {
				acceptCh <- acceptResult{err: err}
				return
			}
			f, err := c.Recv()
			if err != nil {
				c.Close()
				continue
			}
			ok := len(f) > 1 && f[0] == kHello
			var peerRank, peerGen uint64
			if ok {
				b := f[1:]
				var m int
				peerRank, m = binary.Uvarint(b)
				if m <= 0 {
					ok = false
				} else {
					peerGen, m = binary.Uvarint(b[m:])
					ok = m > 0
				}
			}
			transport.ReleaseFrame(f)
			if !ok || peerGen != gen || peerRank <= uint64(rank) || peerRank >= uint64(size) || got[peerRank] != nil {
				c.Close()
				continue
			}
			got[peerRank] = c
			n++
		}
		acceptCh <- acceptResult{conns: got}
	}()

	var dialErr error
	for j := 0; j < rank; j++ {
		tr, rest, err := transport.ForScheme(addrs[j])
		if err == nil {
			var c transport.Conn
			if c, err = transport.DialRetry(tr, rest, timeout); err == nil {
				hello := appendUvarint([]byte{kHello}, uint64(rank))
				hello = appendUvarint(hello, gen)
				if err = c.Send(hello); err != nil {
					c.Close()
				} else {
					peers[j] = c
				}
			}
		}
		if err != nil && dialErr == nil {
			dialErr = fmt.Errorf("dial rank %d at %s: %w", j, addrs[j], err)
		}
	}

	var acceptErr error
	if expect > 0 {
		select {
		case res := <-acceptCh:
			if res.err != nil {
				acceptErr = res.err
			} else {
				for r := rank + 1; r < size; r++ {
					peers[r] = res.conns[r]
				}
			}
		case <-time.After(timeout):
			acceptErr = fmt.Errorf("timeout accepting %d peer connections", expect)
		}
	}

	if dialErr != nil || acceptErr != nil {
		for _, c := range peers {
			if c != nil {
				c.Close()
			}
		}
		if dialErr != nil {
			return nil, dialErr
		}
		return nil, acceptErr
	}
	return peers, nil
}

// RunOver is the process-backend analogue of Run for tests and benchmarks:
// it starts an in-process rendezvous on rendezvousAddr (any transport
// scheme), joins n member goroutines through the full wire path — codec,
// transport mesh, rendezvous barriers — and runs body on each rank.
// Members finalize with the real bye handshake when body returns. Panics
// in a rank kill that member (peers observe a rank death) and are
// re-raised on the caller.
func RunOver(n int, rendezvousAddr string, body func(c *Comm, p *Proc)) error {
	tr, rest, err := transport.ForScheme(rendezvousAddr)
	if err != nil {
		return err
	}
	l, err := tr.Listen(rest)
	if err != nil {
		return fmt.Errorf("mpi: rendezvous listen %s: %w", rendezvousAddr, err)
	}
	rv := NewRendezvous(l, n)
	defer rv.Close()
	rvAddr := schemeOf(rendezvousAddr) + "://" + l.Addr()

	var wg sync.WaitGroup
	panics := make(chan any, n)
	errs := make([]error, n)
	for r := 0; r < n; r++ {
		wg.Add(1)
		go func(rank int) {
			defer wg.Done()
			comm, proc, err := JoinConfig(ProcConfig{Rendezvous: rvAddr, Rank: rank, Size: n})
			if err != nil {
				errs[rank] = err
				return
			}
			defer func() {
				if p := recover(); p != nil {
					proc.Kill()
					panics <- p
					return
				}
				proc.Close()
			}()
			body(comm, proc)
		}(r)
	}
	wg.Wait()
	select {
	case p := <-panics:
		panic(p)
	default:
	}
	return errors.Join(errs...)
}
