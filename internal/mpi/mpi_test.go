package mpi

import (
	"errors"
	"math"
	"reflect"
	"sync/atomic"
	"testing"
	"testing/quick"
)

func TestRunSingleRank(t *testing.T) {
	ran := false
	Run(1, func(c *Comm) {
		if c.Rank() != 0 || c.Size() != 1 {
			t.Errorf("rank/size = %d/%d, want 0/1", c.Rank(), c.Size())
		}
		ran = true
	})
	if !ran {
		t.Fatal("body did not run")
	}
}

func TestRunAllRanksExecute(t *testing.T) {
	const n = 8
	var count int64
	Run(n, func(c *Comm) {
		atomic.AddInt64(&count, 1)
	})
	if count != n {
		t.Fatalf("ran %d ranks, want %d", count, n)
	}
}

func TestSendRecvBasic(t *testing.T) {
	Run(2, func(c *Comm) {
		if c.Rank() == 0 {
			if err := c.Send(1, 7, []float64{1, 2, 3}); err != nil {
				t.Errorf("send: %v", err)
			}
		} else {
			v, st, err := c.RecvFloat64(0, 7)
			if err != nil {
				t.Errorf("recv: %v", err)
				return
			}
			if st.Source != 0 || st.Tag != 7 || st.Count() != 3 {
				t.Errorf("status = %+v", st)
			}
			if !reflect.DeepEqual(v, []float64{1, 2, 3}) {
				t.Errorf("payload = %v", v)
			}
		}
	})
}

func TestRecvWildcardSource(t *testing.T) {
	Run(4, func(c *Comm) {
		if c.Rank() == 0 {
			seen := map[int]bool{}
			for i := 0; i < 3; i++ {
				_, st, err := c.Recv(AnySource, 1)
				if err != nil {
					t.Errorf("recv: %v", err)
					return
				}
				seen[st.Source] = true
			}
			if len(seen) != 3 {
				t.Errorf("saw sources %v, want 3 distinct", seen)
			}
		} else {
			if err := c.Send(0, 1, c.Rank()); err != nil {
				t.Errorf("send: %v", err)
			}
		}
	})
}

func TestRecvWildcardTag(t *testing.T) {
	Run(2, func(c *Comm) {
		if c.Rank() == 0 {
			for _, tag := range []int{5, 9} {
				if err := c.Send(1, tag, tag); err != nil {
					t.Errorf("send: %v", err)
				}
			}
		} else {
			got := map[int]bool{}
			for i := 0; i < 2; i++ {
				p, st, err := c.Recv(0, AnyTag)
				if err != nil {
					t.Errorf("recv: %v", err)
					return
				}
				if p.(int) != st.Tag {
					t.Errorf("payload %v under tag %d", p, st.Tag)
				}
				got[st.Tag] = true
			}
			if !got[5] || !got[9] {
				t.Errorf("tags received: %v", got)
			}
		}
	})
}

// Messages from one source with one tag must arrive in send order even when
// a wildcard receive is used (MPI non-overtaking rule).
func TestNonOvertaking(t *testing.T) {
	Run(2, func(c *Comm) {
		const n = 100
		if c.Rank() == 0 {
			for i := 0; i < n; i++ {
				if err := c.Send(1, 3, i); err != nil {
					t.Errorf("send: %v", err)
				}
			}
		} else {
			for i := 0; i < n; i++ {
				p, _, err := c.Recv(AnySource, AnyTag)
				if err != nil {
					t.Errorf("recv: %v", err)
					return
				}
				if p.(int) != i {
					t.Errorf("message %d arrived out of order (got %v)", i, p)
					return
				}
			}
		}
	})
}

func TestTagSelectivity(t *testing.T) {
	Run(2, func(c *Comm) {
		if c.Rank() == 0 {
			// Send tag 2 first, then tag 1; receiver asks for tag 1 first.
			if err := c.Send(1, 2, "second"); err != nil {
				t.Errorf("send: %v", err)
			}
			if err := c.Send(1, 1, "first"); err != nil {
				t.Errorf("send: %v", err)
			}
		} else {
			p1, _, err := c.Recv(0, 1)
			if err != nil || p1.(string) != "first" {
				t.Errorf("tag-1 recv = %v, %v", p1, err)
			}
			p2, _, err := c.Recv(0, 2)
			if err != nil || p2.(string) != "second" {
				t.Errorf("tag-2 recv = %v, %v", p2, err)
			}
		}
	})
}

func TestSendErrors(t *testing.T) {
	Run(1, func(c *Comm) {
		if err := c.Send(5, 0, nil); !errors.Is(err, ErrRankRange) {
			t.Errorf("bad rank: err = %v", err)
		}
		if err := c.Send(0, -3, nil); !errors.Is(err, ErrTagRange) {
			t.Errorf("bad tag: err = %v", err)
		}
		if err := c.Send(0, internalTagBase, nil); !errors.Is(err, ErrTagRange) {
			t.Errorf("internal tag leaked into user space: err = %v", err)
		}
	})
}

func TestRecvTypeMismatch(t *testing.T) {
	Run(2, func(c *Comm) {
		if c.Rank() == 0 {
			c.Send(1, 0, "not floats")
		} else {
			_, _, err := c.RecvFloat64(0, 0)
			if !errors.Is(err, ErrTypeMatch) {
				t.Errorf("err = %v, want ErrTypeMatch", err)
			}
		}
	})
}

func TestSendrecvExchange(t *testing.T) {
	Run(2, func(c *Comm) {
		other := 1 - c.Rank()
		p, st, err := c.Sendrecv(other, 4, c.Rank()*10, other, 4)
		if err != nil {
			t.Errorf("sendrecv: %v", err)
			return
		}
		if p.(int) != other*10 || st.Source != other {
			t.Errorf("rank %d got %v from %d", c.Rank(), p, st.Source)
		}
	})
}

func TestIsendIrecv(t *testing.T) {
	Run(2, func(c *Comm) {
		if c.Rank() == 0 {
			req, err := c.Isend(1, 0, []float64{42})
			if err != nil {
				t.Errorf("isend: %v", err)
				return
			}
			if err := req.Wait(); err != nil {
				t.Errorf("wait: %v", err)
			}
		} else {
			req, err := c.Irecv(0, 0)
			if err != nil {
				t.Errorf("irecv: %v", err)
				return
			}
			p, st, err := req.WaitRecv()
			if err != nil {
				t.Errorf("waitrecv: %v", err)
				return
			}
			if st.Source != 0 || p.([]float64)[0] != 42 {
				t.Errorf("got %v from %d", p, st.Source)
			}
			if !req.Test() {
				t.Error("Test() false after completion")
			}
		}
	})
}

func TestProbeAndIprobe(t *testing.T) {
	Run(2, func(c *Comm) {
		if c.Rank() == 0 {
			c.Send(1, 6, []float64{1, 2})
		} else {
			st, err := c.Probe(0, 6)
			if err != nil {
				t.Errorf("probe: %v", err)
				return
			}
			if st.Source != 0 || st.Tag != 6 || st.Count() != 2 {
				t.Errorf("probe status %+v", st)
			}
			// Message must still be there.
			if _, ok := c.Iprobe(0, 6); !ok {
				t.Error("iprobe lost the message")
			}
			if _, _, err := c.Recv(0, 6); err != nil {
				t.Errorf("recv after probe: %v", err)
			}
			if _, ok := c.Iprobe(AnySource, AnyTag); ok {
				t.Error("iprobe found a message after it was consumed")
			}
		}
	})
}

func TestBarrierOrdering(t *testing.T) {
	for _, n := range []int{1, 2, 3, 4, 7, 8, 16} {
		var before, after int64
		Run(n, func(c *Comm) {
			atomic.AddInt64(&before, 1)
			if err := c.Barrier(); err != nil {
				t.Errorf("barrier: %v", err)
				return
			}
			if atomic.LoadInt64(&before) != int64(n) {
				t.Errorf("n=%d: rank %d passed barrier before all entered", n, c.Rank())
			}
			atomic.AddInt64(&after, 1)
		})
		if after != int64(n) {
			t.Fatalf("n=%d: %d ranks exited", n, after)
		}
	}
}

func TestBcastAllRootsAllSizes(t *testing.T) {
	for _, n := range []int{1, 2, 3, 5, 8} {
		for root := 0; root < n; root++ {
			Run(n, func(c *Comm) {
				var in []float64
				if c.Rank() == root {
					in = []float64{float64(root), 2, 3}
				}
				out, err := c.BcastFloat64(root, in)
				if err != nil {
					t.Errorf("n=%d root=%d: %v", n, root, err)
					return
				}
				want := []float64{float64(root), 2, 3}
				if !reflect.DeepEqual(out, want) {
					t.Errorf("n=%d root=%d rank=%d: got %v", n, root, c.Rank(), out)
				}
			})
		}
	}
}

func TestReduceSum(t *testing.T) {
	for _, n := range []int{1, 2, 3, 4, 6, 8} {
		for root := 0; root < n; root++ {
			Run(n, func(c *Comm) {
				contrib := []float64{float64(c.Rank()), 1}
				out, err := c.Reduce(root, contrib, Sum)
				if err != nil {
					t.Errorf("reduce: %v", err)
					return
				}
				if c.Rank() == root {
					wantSum := float64(n*(n-1)) / 2
					got := out.([]float64)
					if got[0] != wantSum || got[1] != float64(n) {
						t.Errorf("n=%d root=%d: got %v", n, root, got)
					}
				} else if out != nil {
					t.Errorf("non-root got %v", out)
				}
				// Contribution must not be mutated.
				if contrib[0] != float64(c.Rank()) || contrib[1] != 1 {
					t.Errorf("reduce mutated contribution: %v", contrib)
				}
			})
		}
	}
}

func TestAllreduceOps(t *testing.T) {
	const n = 5
	Run(n, func(c *Comm) {
		r := float64(c.Rank())
		cases := []struct {
			op   Op
			want float64
		}{
			{Sum, 0 + 1 + 2 + 3 + 4},
			{Prod, 0},
			{Max, 4},
			{Min, 0},
		}
		for _, tc := range cases {
			got, err := c.AllreduceScalar(r, tc.op)
			if err != nil {
				t.Errorf("%s: %v", tc.op, err)
				continue
			}
			if got != tc.want {
				t.Errorf("%s = %v, want %v", tc.op, got, tc.want)
			}
		}
	})
}

func TestAllreduceIntLogicalOps(t *testing.T) {
	Run(4, func(c *Comm) {
		// LAnd of [1,1,1,0]-ish pattern: rank 3 contributes 0.
		x := 1
		if c.Rank() == 3 {
			x = 0
		}
		got, err := c.Allreduce([]int{x}, LAnd)
		if err != nil {
			t.Errorf("land: %v", err)
			return
		}
		if got.([]int)[0] != 0 {
			t.Errorf("land = %v, want 0", got)
		}
		got, err = c.Allreduce([]int{x}, LOr)
		if err != nil {
			t.Errorf("lor: %v", err)
			return
		}
		if got.([]int)[0] != 1 {
			t.Errorf("lor = %v, want 1", got)
		}
	})
}

func TestGatherScatterRoundTrip(t *testing.T) {
	const n = 4
	Run(n, func(c *Comm) {
		data := make([]float64, 10)
		if c.Rank() == 0 {
			for i := range data {
				data[i] = float64(i)
			}
		}
		var root []float64
		if c.Rank() == 0 {
			root = data
		}
		chunk, off, err := c.ScatterFloat64(0, root)
		if err != nil {
			t.Errorf("scatter: %v", err)
			return
		}
		lo, hi := BlockRange(10, n, c.Rank())
		if off != lo || len(chunk) != hi-lo {
			t.Errorf("rank %d: offset %d len %d, want %d %d", c.Rank(), off, len(chunk), lo, hi-lo)
		}
		back, err := c.GatherFloat64(0, chunk)
		if err != nil {
			t.Errorf("gather: %v", err)
			return
		}
		if c.Rank() == 0 {
			for i := range back {
				if back[i] != float64(i) {
					t.Errorf("round trip mismatch at %d: %v", i, back[i])
					break
				}
			}
		}
	})
}

func TestAllgather(t *testing.T) {
	Run(3, func(c *Comm) {
		parts, err := c.Allgather(c.Rank() * 2)
		if err != nil {
			t.Errorf("allgather: %v", err)
			return
		}
		for i, p := range parts {
			if p.(int) != i*2 {
				t.Errorf("parts[%d] = %v", i, p)
			}
		}
	})
}

func TestAlltoall(t *testing.T) {
	const n = 4
	Run(n, func(c *Comm) {
		parts := make([]any, n)
		for i := range parts {
			parts[i] = c.Rank()*100 + i
		}
		got, err := c.Alltoall(parts)
		if err != nil {
			t.Errorf("alltoall: %v", err)
			return
		}
		for i, p := range got {
			if p.(int) != i*100+c.Rank() {
				t.Errorf("rank %d got[%d] = %v, want %d", c.Rank(), i, p, i*100+c.Rank())
			}
		}
	})
}

func TestScanInclusivePrefix(t *testing.T) {
	const n = 6
	Run(n, func(c *Comm) {
		out, err := c.Scan([]int{1}, Sum)
		if err != nil {
			t.Errorf("scan: %v", err)
			return
		}
		if out.([]int)[0] != c.Rank()+1 {
			t.Errorf("rank %d scan = %v, want %d", c.Rank(), out, c.Rank()+1)
		}
	})
}

func TestSplitColors(t *testing.T) {
	Run(6, func(c *Comm) {
		color := c.Rank() % 2
		sub, err := c.Split(color, c.Rank())
		if err != nil {
			t.Errorf("split: %v", err)
			return
		}
		if sub.Size() != 3 {
			t.Errorf("sub size = %d", sub.Size())
		}
		if sub.Rank() != c.Rank()/2 {
			t.Errorf("world rank %d: sub rank %d, want %d", c.Rank(), sub.Rank(), c.Rank()/2)
		}
		// Collectives on the subcommunicator must stay inside the color.
		got, err := sub.AllreduceScalar(float64(c.Rank()), Sum)
		if err != nil {
			t.Errorf("sub allreduce: %v", err)
			return
		}
		want := 0.0
		for r := color; r < 6; r += 2 {
			want += float64(r)
		}
		if got != want {
			t.Errorf("color %d sum = %v, want %v", color, got, want)
		}
	})
}

func TestSplitUndefined(t *testing.T) {
	Run(4, func(c *Comm) {
		color := 0
		if c.Rank() == 3 {
			color = Undefined
		}
		sub, err := c.Split(color, 0)
		if err != nil {
			t.Errorf("split: %v", err)
			return
		}
		if c.Rank() == 3 {
			if sub != nil {
				t.Error("undefined color got a communicator")
			}
			return
		}
		if sub.Size() != 3 {
			t.Errorf("sub size = %d, want 3", sub.Size())
		}
	})
}

func TestSplitKeyOrdering(t *testing.T) {
	Run(4, func(c *Comm) {
		// Reverse the ordering via keys.
		sub, err := c.Split(0, -c.Rank())
		if err != nil {
			t.Errorf("split: %v", err)
			return
		}
		if sub.Rank() != 3-c.Rank() {
			t.Errorf("world %d -> sub %d, want %d", c.Rank(), sub.Rank(), 3-c.Rank())
		}
	})
}

func TestDupIsolatesTraffic(t *testing.T) {
	Run(2, func(c *Comm) {
		dup, err := c.Dup()
		if err != nil {
			t.Errorf("dup: %v", err)
			return
		}
		if c.Rank() == 0 {
			// Same tag on both communicators; payloads differ.
			c.Send(1, 5, "parent")
			dup.Send(1, 5, "dup")
		} else {
			// Receive from dup first: must not see the parent's message.
			p, _, err := dup.Recv(0, 5)
			if err != nil || p.(string) != "dup" {
				t.Errorf("dup recv = %v, %v", p, err)
			}
			p, _, err = c.Recv(0, 5)
			if err != nil || p.(string) != "parent" {
				t.Errorf("parent recv = %v, %v", p, err)
			}
		}
	})
}

func TestCollectivesBackToBackDoNotInterleave(t *testing.T) {
	// Stress tag sequencing: many different collectives in a row.
	Run(4, func(c *Comm) {
		for i := 0; i < 50; i++ {
			s, err := c.AllreduceScalar(1, Sum)
			if err != nil || s != 4 {
				t.Errorf("iter %d allreduce = %v, %v", i, s, err)
				return
			}
			out, err := c.BcastFloat64(i%4, []float64{float64(i)})
			if err != nil || out[0] != float64(i) {
				t.Errorf("iter %d bcast = %v, %v", i, out, err)
				return
			}
			if err := c.Barrier(); err != nil {
				t.Errorf("iter %d barrier: %v", i, err)
				return
			}
		}
	})
}

func TestRunPanicPropagates(t *testing.T) {
	defer func() {
		if r := recover(); r == nil {
			t.Fatal("panic did not propagate")
		}
	}()
	Run(3, func(c *Comm) {
		if c.Rank() == 1 {
			panic("rank 1 died")
		}
		// Other ranks block in a collective; revocation must unblock them.
		_ = c.Barrier()
	})
}

// Property: BlockRange partitions [0,n) exactly — ranges are contiguous,
// non-overlapping, cover everything, and sizes differ by at most one.
func TestBlockRangeProperty(t *testing.T) {
	f := func(nRaw, pRaw uint8) bool {
		n := int(nRaw)
		p := int(pRaw)%16 + 1
		prev := 0
		minSz, maxSz := math.MaxInt, 0
		for r := 0; r < p; r++ {
			lo, hi := BlockRange(n, p, r)
			if lo != prev || hi < lo {
				return false
			}
			sz := hi - lo
			if sz < minSz {
				minSz = sz
			}
			if sz > maxSz {
				maxSz = sz
			}
			prev = hi
		}
		return prev == n && maxSz-minSz <= 1
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

// Property: Allreduce(Sum) over random per-rank vectors equals the serial
// elementwise sum.
func TestAllreduceSumProperty(t *testing.T) {
	f := func(seed int64, width uint8) bool {
		w := int(width)%32 + 1
		const n = 4
		inputs := make([][]float64, n)
		x := seed
		for r := range inputs {
			inputs[r] = make([]float64, w)
			for i := range inputs[r] {
				x = x*6364136223846793005 + 1442695040888963407
				inputs[r][i] = float64(x % 1000)
			}
		}
		want := make([]float64, w)
		for _, in := range inputs {
			for i, v := range in {
				want[i] += v
			}
		}
		ok := true
		Run(n, func(c *Comm) {
			got, err := c.AllreduceFloat64(inputs[c.Rank()], Sum)
			if err != nil || !reflect.DeepEqual(got, want) {
				ok = false
			}
		})
		return ok
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 25}); err != nil {
		t.Fatal(err)
	}
}

// Property: Scatter/Gather of a random vector is the identity.
func TestScatterGatherIdentityProperty(t *testing.T) {
	f := func(vals []float64) bool {
		const n = 3
		ok := true
		Run(n, func(c *Comm) {
			var root []float64
			if c.Rank() == 0 {
				root = vals
			}
			chunk, _, err := c.ScatterFloat64(0, root)
			if err != nil {
				ok = false
				return
			}
			back, err := c.GatherFloat64(0, chunk)
			if err != nil {
				ok = false
				return
			}
			if c.Rank() == 0 && !reflect.DeepEqual(back, vals) && !(len(vals) == 0 && len(back) == 0) {
				ok = false
			}
		})
		return ok
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Fatal(err)
	}
}

func TestCustomReductionOp(t *testing.T) {
	// A user-defined op: elementwise max-magnitude with sign preserved.
	maxMag := MakeOp("maxmag", func(a, b []float64) []float64 {
		for i := range a {
			if math.Abs(b[i]) > math.Abs(a[i]) {
				a[i] = b[i]
			}
		}
		return a
	}, nil)
	Run(4, func(c *Comm) {
		contrib := []float64{float64(c.Rank()) - 2.5} // -2.5, -1.5, -0.5, 0.5
		out, err := c.Allreduce(contrib, maxMag)
		if err != nil {
			t.Errorf("allreduce: %v", err)
			return
		}
		if got := out.([]float64)[0]; got != -2.5 {
			t.Errorf("maxmag = %v, want -2.5", got)
		}
	})
	// Ops without an int combiner reject int payloads. (Tested directly on
	// the combiner: inside a collective, a local op failure on one rank
	// strands its peers — the standard MPI erroneous-program condition.)
	if _, err := maxMag.combine([]int{1}, []int{2}); err == nil {
		t.Error("int reduce with float-only op accepted")
	}
}

func TestReduceLengthMismatch(t *testing.T) {
	Run(2, func(c *Comm) {
		contrib := []float64{1}
		if c.Rank() == 1 {
			contrib = []float64{1, 2}
		}
		_, err := c.Reduce(0, contrib, Sum)
		if c.Rank() == 0 && !errors.Is(err, ErrCountMatch) {
			t.Errorf("err = %v", err)
		}
	})
}
