package mpi

import "sync"

// Request represents an outstanding nonblocking operation, mirroring
// MPI_Request. Wait blocks for completion; Test polls.
type Request struct {
	mu      sync.Mutex
	done    bool
	doneCh  chan struct{}
	err     error
	payload any
	status  Status
}

func newRequest() *Request {
	return &Request{doneCh: make(chan struct{})}
}

func (r *Request) complete(payload any, st Status, err error) {
	r.mu.Lock()
	if !r.done {
		r.done = true
		r.payload = payload
		r.status = st
		r.err = err
		close(r.doneCh)
	}
	r.mu.Unlock()
}

// Wait blocks until the operation completes and returns its error, if any.
func (r *Request) Wait() error {
	<-r.doneCh
	return r.err
}

// WaitRecv blocks until completion and returns the received payload and
// status. For send requests the payload is nil.
func (r *Request) WaitRecv() (any, Status, error) {
	<-r.doneCh
	return r.payload, r.status, r.err
}

// Test reports whether the operation has completed without blocking.
func (r *Request) Test() bool {
	select {
	case <-r.doneCh:
		return true
	default:
		return false
	}
}

// Isend starts a nonblocking send. Because delivery into the destination
// mailbox never blocks, the request completes eagerly; the Request exists so
// SPMD code keeps the familiar Isend/Wait structure.
func (c *Comm) Isend(dest, tag int, payload any) (*Request, error) {
	if err := c.checkRank(dest); err != nil {
		return nil, err
	}
	if err := c.checkTag(tag); err != nil {
		return nil, err
	}
	r := newRequest()
	err := c.sendInternal(dest, tag, payload)
	r.complete(nil, Status{}, err)
	return r, err
}

// Irecv starts a nonblocking receive serviced by a helper goroutine.
func (c *Comm) Irecv(source, tag int) (*Request, error) {
	if source != AnySource {
		if err := c.checkRank(source); err != nil {
			return nil, err
		}
	}
	if tag != AnyTag {
		if err := c.checkTag(tag); err != nil {
			return nil, err
		}
	}
	r := newRequest()
	go func() {
		p, st, err := c.recvInternal(source, tag)
		r.complete(p, st, err)
	}()
	return r, nil
}

// WaitAll waits on every request and returns the first error encountered.
func WaitAll(reqs ...*Request) error {
	var first error
	for _, r := range reqs {
		if err := r.Wait(); err != nil && first == nil {
			first = err
		}
	}
	return first
}
