// Package mpi provides an MPI-like message-passing substrate with two
// interchangeable backends: goroutine ranks in one address space, and
// process ranks spanning OS processes and machines over the multiplexed
// transport layer.
//
// The Common Component Architecture paper (HPDC 1999) assumes SPMD parallel
// components whose internal communication is MPI (see Figure 1: "component A
// (a mesh) uses MPI to communicate among the four processes over which it is
// distributed"). This package reproduces the semantics the CCA's collective
// ports are built on — rank-addressed point-to-point messaging with MPI
// (source, tag) matching including wildcards, communicator groups, and the
// standard collective operations.
//
// The API deliberately mirrors the MPI-1 surface that scientific codes such
// as CHAD use: Send/Recv, nonblocking Isend/Irecv with Wait, Barrier, Bcast,
// Reduce, Allreduce, Gather(v), Scatter(v), Allgather, Alltoall, Scan, and
// communicator Split/Dup.
//
// # Backends
//
// A Comm is backed by an engine — the rank-addressed p2p substrate it runs
// on. The collective algorithms (binomial trees, window-cycled tags; see
// collectives.go) are written purely against the engine interface, so one
// implementation serves both backends and a conformance suite executes the
// same semantic table over each:
//
//   - Goroutine backend ([Run]): every rank is a goroutine, delivery is a
//     mailbox append, payloads move by reference. This is the fast path for
//     tests and single-process SPMD components.
//
//   - Process backend ([Join], [JoinConfig], [RunOver]): every rank is an OS
//     process (or an isolated in-process member in tests). Ranks form a full
//     mesh of transport connections — tcp:// across hosts, shm:// same-host
//     rings — and exchange rank-addressed frames ([source, effective tag,
//     typed payload]; see wire.go). Cohort formation goes through a
//     rendezvous service (rendezvous.go) that assigns the rank↔address map,
//     barriers on world formation, and allocates derived-communicator
//     contexts so Split/Dup stay globally collision-free.
//
// Rank death on the process backend is not silent: a broken peer connection
// without the finalize handshake poisons the local mailbox with a typed
// [RankDeadError], so every rank blocked in a collective fails fast instead
// of hanging, and the dist layer can surface the failure through the
// framework's connection-health events.
package mpi
