package mpi

import (
	"encoding/binary"
	"fmt"
	"sync"

	"repro/internal/transport"
)

// Rendezvous control-channel frame kinds. The rendezvous service speaks
// the same transport framing as the rank mesh but a disjoint kind range,
// so a crossed wire fails loudly instead of parsing.
//
//	join   := rvJoin  [uvarint rank] [uvarint size] [string addr]
//	world  := rvWorld [uvarint gen] [uvarint size] size × [string addr]
//	ready  := rvReady
//	go     := rvGo
//	ctxreq := rvCtxReq
//	ctxrep := rvCtxRep [uvarint ctx]
//	bye    := rvBye
//	err    := rvErr   [string message]
//
// strings are [uvarint n][n bytes].
const (
	rvJoin   byte = 16
	rvWorld  byte = 17
	rvReady  byte = 18
	rvGo     byte = 19
	rvCtxReq byte = 20
	rvCtxRep byte = 21
	rvBye    byte = 22
	rvErr    byte = 23
)

func appendString(b []byte, s string) []byte {
	b = appendUvarint(b, uint64(len(s)))
	return append(b, s...)
}

func readString(b []byte) (string, []byte, error) {
	n, m := binary.Uvarint(b)
	if m <= 0 || n > uint64(len(b)-m) {
		return "", nil, fmt.Errorf("%w: truncated string", ErrWire)
	}
	return string(b[m : m+int(n)]), b[m+int(n):], nil
}

// rvMember is one rank's control connection within the rendezvous.
type rvMember struct {
	rank int
	addr string
	conn transport.Conn
	form *rvFormation
}

// rvFormation is one complete generation of the world: size members that
// were announced to each other and are barriering toward rvGo.
type rvFormation struct {
	gen     uint64
	members []*rvMember
	ready   int
}

// Rendezvous is the cohort-formation service: ranks join with their listen
// address, the service broadcasts the rank↔address map once all Size ranks
// of a generation are present, barriers them through ready/go, and then
// stays available on the same control connections to allocate globally
// unique derived-communicator contexts (Split/Dup) and to observe rank
// departure.
//
// Formation is generational: after a cohort forms, a fresh set of Size
// joins — for example the survivors of a rank death plus its relaunched
// replacement — forms the next generation. The context allocator is global
// across generations, so communicators of a dead world can never collide
// with the new one.
type Rendezvous struct {
	l    transport.Listener
	size int

	mu      sync.Mutex
	joining map[int]*rvMember // forming generation, by rank
	gen     uint64            // completed formations
	ctx     int64             // context allocator (shared by all generations)
	closed  bool

	formedCh chan uint64 // signaled (non-blocking) per completed formation
}

// NewRendezvous starts a rendezvous service for cohorts of the given size
// on l. Close the returned service to release the listener.
func NewRendezvous(l transport.Listener, size int) *Rendezvous {
	r := &Rendezvous{l: l, size: size, joining: make(map[int]*rvMember), formedCh: make(chan uint64, 16)}
	go r.acceptLoop()
	return r
}

// Addr returns the address ranks dial, without scheme (as reported by the
// listener).
func (r *Rendezvous) Addr() string { return r.l.Addr() }

// Formed returns a channel that receives the generation number each time a
// world forms — test and launcher instrumentation.
func (r *Rendezvous) Formed() <-chan uint64 { return r.formedCh }

// Generations reports how many worlds have formed so far.
func (r *Rendezvous) Generations() uint64 {
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.gen
}

// Close shuts the service down. Live cohorts keep running — only
// formation of new generations and context allocation stop.
func (r *Rendezvous) Close() error {
	r.mu.Lock()
	r.closed = true
	r.mu.Unlock()
	return r.l.Close()
}

func (r *Rendezvous) acceptLoop() {
	for {
		c, err := r.l.Accept()
		if err != nil {
			return
		}
		go r.serve(c)
	}
}

// serve handles one control connection for its whole life: join,
// formation, then ctx allocation until bye or disconnect.
func (r *Rendezvous) serve(c transport.Conn) {
	m, err := r.handleJoin(c)
	if err != nil {
		reply := appendString([]byte{rvErr}, err.Error())
		_ = c.Send(reply)
		c.Close()
		return
	}
	for {
		f, err := c.Recv()
		if err != nil {
			r.drop(m)
			c.Close()
			return
		}
		kind := byte(0)
		if len(f) > 0 {
			kind = f[0]
		}
		transport.ReleaseFrame(f)
		switch kind {
		case rvReady:
			r.markReady(m)
		case rvCtxReq:
			r.mu.Lock()
			r.ctx++
			ctx := r.ctx
			r.mu.Unlock()
			if err := c.Send(appendUvarint([]byte{rvCtxRep}, uint64(ctx))); err != nil {
				r.drop(m)
				c.Close()
				return
			}
		case rvBye:
			r.drop(m)
			c.Close()
			return
		default:
			r.drop(m)
			c.Close()
			return
		}
	}
}

// handleJoin validates a join frame and registers the member; when the
// member completes a generation, the world map is broadcast to all of it.
func (r *Rendezvous) handleJoin(c transport.Conn) (*rvMember, error) {
	f, err := c.Recv()
	if err != nil {
		return nil, err
	}
	defer transport.ReleaseFrame(f)
	if len(f) < 1 || f[0] != rvJoin {
		return nil, fmt.Errorf("%w: expected join frame", ErrWire)
	}
	b := f[1:]
	rank, n := binary.Uvarint(b)
	if n <= 0 {
		return nil, fmt.Errorf("%w: truncated join rank", ErrWire)
	}
	b = b[n:]
	size, n := binary.Uvarint(b)
	if n <= 0 {
		return nil, fmt.Errorf("%w: truncated join size", ErrWire)
	}
	b = b[n:]
	addr, _, err := readString(b)
	if err != nil {
		return nil, err
	}
	if int(size) != r.size {
		return nil, fmt.Errorf("mpi: rendezvous expects world size %d, rank joined with %d", r.size, size)
	}
	if rank >= uint64(r.size) {
		return nil, fmt.Errorf("%w: join rank %d (size %d)", ErrRankRange, rank, r.size)
	}

	m := &rvMember{rank: int(rank), addr: addr, conn: c}
	r.mu.Lock()
	if r.closed {
		r.mu.Unlock()
		return nil, ErrCommRevoked
	}
	if _, taken := r.joining[m.rank]; taken {
		r.mu.Unlock()
		return nil, fmt.Errorf("mpi: rank %d already joined this generation", m.rank)
	}
	r.joining[m.rank] = m
	var form *rvFormation
	if len(r.joining) == r.size {
		r.gen++
		form = &rvFormation{gen: r.gen, members: make([]*rvMember, r.size)}
		for rk, mem := range r.joining {
			form.members[rk] = mem
			mem.form = form
		}
		r.joining = make(map[int]*rvMember)
	}
	r.mu.Unlock()

	if form != nil {
		world := appendUvarint([]byte{rvWorld}, form.gen)
		world = appendUvarint(world, uint64(r.size))
		for _, mem := range form.members {
			world = appendString(world, mem.addr)
		}
		for _, mem := range form.members {
			if err := mem.conn.Send(world); err != nil {
				// The member's own serve loop observes the broken conn and
				// drops it; peers fail mesh formation and rejoin.
				continue
			}
		}
		select {
		case r.formedCh <- form.gen:
		default:
		}
	}
	return m, nil
}

// markReady counts the formation barrier; the last ready releases everyone
// with rvGo.
func (r *Rendezvous) markReady(m *rvMember) {
	r.mu.Lock()
	form := m.form
	if form == nil {
		r.mu.Unlock()
		return
	}
	form.ready++
	fire := form.ready == len(form.members)
	r.mu.Unlock()
	if fire {
		for _, mem := range form.members {
			_ = mem.conn.Send([]byte{rvGo})
		}
	}
}

// drop unregisters a member whose control connection ended. If its
// generation was still forming, the rank slot frees for a rejoin.
func (r *Rendezvous) drop(m *rvMember) {
	r.mu.Lock()
	if r.joining[m.rank] == m {
		delete(r.joining, m.rank)
	}
	r.mu.Unlock()
}
