package obs

import (
	"time"
	_ "unsafe" // for go:linkname
)

// Nanotime returns the runtime's monotonic clock in nanoseconds; only
// differences between readings are meaningful. time.Now costs ~65ns where
// no vDSO fast path is available; the direct monotonic read roughly
// halves that, and Mono (TSC-backed on amd64, this clock elsewhere)
// halves it again — the instrumented hot paths read Mono, and Nanotime is
// the calibration reference and fallback (benchmarked in E10).
// runtime.nanotime is on the linker's legacy allowlist, so this pull-style
// linkname keeps working under the Go 1.23+ linkname restrictions.
func Nanotime() int64 { return nanotime() }

//go:linkname nanotime runtime.nanotime
func nanotime() int64

// wallBase anchors the monotonic clock to the wall clock once at process
// start, so span timestamps can be derived from a single monotonic read.
var wallBase = time.Now().UnixNano() - nanotime()

// MonoToWall converts a Nanotime reading into Unix nanoseconds using the
// process-start anchor. The result ignores wall-clock adjustments (NTP
// steps) made after startup — fine for trace timestamps, which only need
// to line up with each other; not a substitute for time.Now where absolute
// accuracy matters.
func MonoToWall(mono int64) int64 { return wallBase + mono }

// WallNow is MonoToWall(Nanotime()): a current wall-clock estimate at
// roughly half the cost of time.Now where no vDSO fast path exists.
func WallNow() int64 { return wallBase + nanotime() }
