package obs

import (
	"encoding/json"
	"net"
	"net/http"
	"net/http/pprof"
	"strconv"
)

// httpView is the JSON document the endpoint serves: the expvar idiom (one
// flat JSON object, GET-only, no auth — bind it to loopback) over the
// Default registry and Tracer.
type httpView struct {
	Counters   map[string]uint64   `json:"counters"`
	Gauges     map[string]int64    `json:"gauges"`
	Histograms map[string]histView `json:"histograms"`
	Tracing    traceView           `json:"tracing"`
	Spans      []Span              `json:"spans,omitempty"`
}

// histView flattens a HistSnapshot into the numbers a human wants first.
type histView struct {
	Count uint64        `json:"count"`
	Sum   uint64        `json:"sum"`
	Mean  float64       `json:"mean"`
	P50   uint64        `json:"p50"`
	P90   uint64        `json:"p90"`
	P99   uint64        `json:"p99"`
	Hist  []BucketCount `json:"buckets,omitempty"`
}

type traceView struct {
	Enabled  bool   `json:"enabled"`
	Recorded uint64 `json:"recorded"`
}

// view builds the endpoint document. spans ≤ 0 omits span bodies.
func view(r *Registry, t *Recorder, spans int) httpView {
	snap := r.Snapshot()
	v := httpView{
		Counters:   snap.Counters,
		Gauges:     snap.Gauges,
		Histograms: make(map[string]histView, len(snap.Histograms)),
		Tracing:    traceView{Enabled: t.Enabled(), Recorded: t.Recorded()},
	}
	for name, h := range snap.Histograms {
		v.Histograms[name] = histView{
			Count: h.Count, Sum: h.Sum, Mean: h.Mean(),
			P50: h.Quantile(0.50), P90: h.Quantile(0.90), P99: h.Quantile(0.99),
			Hist: h.Buckets,
		}
	}
	if spans > 0 {
		all := t.Spans()
		if len(all) > spans {
			all = all[len(all)-spans:]
		}
		v.Spans = all
	}
	return v
}

// HandlerFor serves a registry and recorder as indented JSON. Query
// parameter spans=N appends the last N retained trace spans.
func HandlerFor(r *Registry, t *Recorder) http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, req *http.Request) {
		spans := 0
		if s := req.URL.Query().Get("spans"); s != "" {
			if n, err := strconv.Atoi(s); err == nil && n > 0 {
				spans = n
			}
		}
		w.Header().Set("Content-Type", "application/json; charset=utf-8")
		enc := json.NewEncoder(w)
		enc.SetIndent("", "  ")
		enc.Encode(view(r, t, spans)) //nolint:errcheck // best-effort endpoint
	})
}

// Handler serves the process-wide Default registry and Tracer.
func Handler() http.Handler { return HandlerFor(Default, Tracer) }

// ServeOptions configures the metrics endpoint.
type ServeOptions struct {
	// Pprof additionally mounts net/http/pprof's profile handlers under
	// /debug/pprof/, so fan-out hot spots can be profiled in-situ
	// (`go tool pprof http://<addr>/debug/pprof/profile`). Off by
	// default: the profile endpoints can pause the process, so they must
	// be an explicit opt-in even on loopback.
	Pprof bool
}

// Serve exposes Handler on addr (e.g. "127.0.0.1:0") in a background
// goroutine. It returns the bound address — useful with port 0 — and a
// closer that shuts the listener down.
func Serve(addr string) (bound string, closer func() error, err error) {
	return ServeWith(addr, ServeOptions{})
}

// ServeWith is Serve with explicit options; the metrics document stays at
// "/" either way.
func ServeWith(addr string, opts ServeOptions) (bound string, closer func() error, err error) {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return "", nil, err
	}
	mux := http.NewServeMux()
	mux.Handle("/", Handler())
	if opts.Pprof {
		// Mount explicitly on our own mux instead of relying on the
		// DefaultServeMux side-effect registration, so the flag really
		// gates exposure.
		mux.HandleFunc("/debug/pprof/", pprof.Index)
		mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
		mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
		mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
		mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
	}
	srv := &http.Server{Handler: mux}
	go srv.Serve(ln) //nolint:errcheck // exits on Close
	return ln.Addr().String(), srv.Close, nil
}
