//go:build amd64

package obs

import (
	"math/bits"
	"sync/atomic"
	"time"
)

// On amd64 the monotonic reads behind spans and sampled durations come
// straight from the CPU cycle counter: RDTSC is ~10ns where even the
// vDSO-less runtime.nanotime costs ~36ns, and the instrumented hot path
// reads the clock up to five times per traced round trip. Cycles convert
// to nanoseconds with a fixed-point rate calibrated against nanotime
// shortly after startup; until that calibration lands, Mono falls back to
// nanotime, and both clocks share the same timeline (the calibration
// anchors cycles to a nanotime reading), so readings from before and
// after the switch still subtract meaningfully.
//
// Using the TSC as a timebase assumes it ticks at a constant rate and
// stays synchronized across cores (constant_tsc/nonstop_tsc — every
// x86-64 CPU from the last decade; the kernel only selects the "tsc"
// clocksource when its own checks pass). Calibration guards against the
// pathological case anyway: a nonsensical measured rate leaves the
// fallback in place.

// rdtsc reads the CPU timestamp counter (implemented in tsc_amd64.s).
func rdtsc() uint64

// tscMult is the fixed-point cycles→ns rate (ns per cycle, 20 fractional
// bits); 0 means "not calibrated, use nanotime". tscBase/tscBaseNano are
// the anchor pair, written before the tscMult release-store that
// publishes them.
var (
	tscMult     atomic.Uint64
	tscBase     uint64
	tscBaseNano int64
)

func init() {
	c0, n0 := rdtsc(), nanotime()
	// The anchor is written here, before any reader can observe a nonzero
	// tscMult; calibrations only ever publish the rate.
	tscBase, tscBaseNano = c0, n0
	calibrate := func(minElapsed int64) {
		for nanotime()-n0 < minElapsed {
			time.Sleep(time.Duration(minElapsed))
		}
		c1, n1 := rdtsc(), nanotime()
		dc, dn := c1-c0, uint64(n1-n0)
		if dc == 0 || dn == 0 || dn>>44 >= dc {
			return
		}
		mult, _ := bits.Div64(dn>>44, dn<<20, dc)
		if mult == 0 || mult > 100<<20 {
			return // >100ns/cycle: not a sane TSC, keep the fallback
		}
		tscMult.Store(mult)
	}
	go func() {
		// A first calibration over ~20ms gets the fast clock on line
		// shortly after startup with ~0.01% rate error; a second pass
		// over a ~500ms baseline shrinks the endpoint-jitter error to
		// ~2ppm so long-lived processes don't drift against nanotime.
		// Each refinement can step the timeline by at most the previous
		// rate error times the elapsed time (≈50µs here); duration math
		// spanning that instant is clamped non-negative by callers.
		calibrate(20e6)
		calibrate(500e6)
	}()
}

// Mono returns monotonic nanoseconds on the nanotime timeline, reading
// the TSC when calibrated. Only differences are meaningful.
func Mono() int64 {
	m := tscMult.Load()
	if m == 0 {
		return nanotime()
	}
	hi, lo := bits.Mul64(rdtsc()-tscBase, m)
	return tscBaseNano + int64(hi<<44|lo>>20)
}
