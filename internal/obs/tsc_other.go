//go:build !amd64

package obs

// Mono returns monotonic nanoseconds. Without a TSC fast path it is
// simply the runtime's monotonic clock.
func Mono() int64 { return nanotime() }
