#include "textflag.h"

// func rdtsc() uint64
// EDX:EAX = cycles since reset; no serialization — out-of-order skew is
// a few ns, well under the µs scales spans measure.
TEXT ·rdtsc(SB), NOSPLIT, $0-8
	RDTSC
	SHLQ $32, DX
	ORQ  DX, AX
	MOVQ AX, ret+0(FP)
	RET
