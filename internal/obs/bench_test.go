package obs

import "testing"

// Primitive costs: these bound what instrumentation can add to the hot
// paths (C1 budget math in EXPERIMENTS.md E10).

func BenchmarkCounterInc(b *testing.B) {
	c := NewCounter("bench.counter.inc")
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		c.Inc()
	}
}

func BenchmarkCounterIncDark(b *testing.B) {
	c := NewCounter("bench.counter.dark")
	SetMetricsEnabled(false)
	defer SetMetricsEnabled(true)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		c.Inc()
	}
}

func BenchmarkCounterIncParallel(b *testing.B) {
	c := NewCounter("bench.counter.par")
	b.RunParallel(func(pb *testing.PB) {
		for pb.Next() {
			c.Inc()
		}
	})
}

func BenchmarkGaugeAdd(b *testing.B) {
	g := NewGauge("bench.gauge")
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		g.Add(1)
	}
}

func BenchmarkHistogramObserve(b *testing.B) {
	h := NewHistogram("bench.hist")
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		h.Observe(uint64(i))
	}
}

func BenchmarkNanotime(b *testing.B) {
	for i := 0; i < b.N; i++ {
		_ = Nanotime()
	}
}

func BenchmarkMono(b *testing.B) {
	for i := 0; i < b.N; i++ {
		_ = Mono()
	}
}
