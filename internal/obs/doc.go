// Package obs is the reproduction's zero-dependency observability
// substrate: lock-free counters, gauges, and fixed-bucket latency
// histograms, plus a ring-buffer trace recorder (trace.go) and an
// expvar-style HTTP endpoint (http.go).
//
// The design constraint is the paper's claim C1: instrumentation rides on
// hot paths that are themselves benchmarked against "no more than a direct
// function call", so every record operation must stay in the
// few-nanosecond range and must never take a lock. Counters are sharded
// across padded cells so parallel hot paths (GetPort under
// BenchmarkE6_GetPortParallel, concurrent ORB callers) do not bounce one
// cache line; histograms index by the value's bit length, turning bucket
// selection into a single instruction; and the whole metrics layer sits
// behind one atomic gate so a run can measure its own overhead.
//
// Experiment E10 (cmd/bench -run e10) is the guard: it measures the
// remote hot path and the GetPort/ReleasePort pair dark vs metrics vs
// metrics+tracing, and EXPERIMENTS.md E10 records the budget (<5%) and
// the techniques that meet it. Consumers emit under layer-prefixed names
// (cca.*, orb.client.*, orb.server.*, transport.*, orb.supervised.*,
// collective.*); the ccafe shell's stats/trace commands and the HTTP
// endpoint read the same registry snapshot.
package obs
