package obs

import (
	"math/bits"
	"sort"
	"sync"
	"sync/atomic"
	"unsafe"
)

// metricsOn gates every Counter.Add and Histogram.Observe. Metrics are on
// by default: the E10 benchmark shows the cost is inside the C1 budget.
// Gauges are NOT gated — they track live state (in-flight calls, breaker
// states) whose increments and decrements must stay balanced across a
// toggle, and a pair of atomic adds on an uncontended line is already as
// cheap as the gate check itself.
var metricsOn atomic.Bool

func init() { metricsOn.Store(true) }

// SetMetricsEnabled turns counter and histogram recording on or off
// process-wide. Off turns every record call into a single atomic load.
func SetMetricsEnabled(on bool) { metricsOn.Store(on) }

// MetricsEnabled reports whether counters and histograms record.
func MetricsEnabled() bool { return metricsOn.Load() }

// counterShards spreads one logical counter over this many padded cells.
// Power of two so the shard pick is a mask, sized past the core counts the
// repo targets so concurrent incrementers rarely collide on a cell.
const counterShards = 32

// cell is one counter shard, padded to its own cache line so neighboring
// shards never false-share.
type cell struct {
	v atomic.Uint64
	_ [56]byte
}

// Counter is a monotonically increasing sharded counter. Add costs one
// atomic load (the gate), a shift, and one atomic add on a line the
// caller rarely shares.
type Counter struct {
	name   string
	shards [counterShards]cell
}

// Name reports the registered name.
func (c *Counter) Name() string { return c.name }

// Add increments the counter by n. No-op while metrics are disabled.
func (c *Counter) Add(n uint64) {
	if !metricsOn.Load() {
		return
	}
	// Shard by the address of a stack local: goroutine stacks sit at
	// least a kilobyte apart, so concurrent incrementers land on distinct
	// cells, and the pick costs a shift and a mask where a random draw
	// would cost several nanoseconds more (measured in bench_test.go).
	// The pointer never escapes — it is consumed as an integer here.
	var probe byte
	i := (uintptr(unsafe.Pointer(&probe)) >> 10) & (counterShards - 1)
	c.shards[i].v.Add(n)
}

// Inc increments the counter by one.
func (c *Counter) Inc() { c.Add(1) }

// Value sums the shards. The sum is not a point-in-time snapshot under
// concurrent writers, but it is never less than the true count at the
// start of the call — the usual counter contract.
func (c *Counter) Value() uint64 {
	var total uint64
	for i := range c.shards {
		total += c.shards[i].v.Load()
	}
	return total
}

// Gauge is an instantaneous signed value: in-flight calls, connections in
// a health state. Unlike counters, gauges are not gated (see metricsOn).
type Gauge struct {
	name string
	v    atomic.Int64
}

// Name reports the registered name.
func (g *Gauge) Name() string { return g.name }

// Add moves the gauge by delta (negative to decrement).
func (g *Gauge) Add(delta int64) { g.v.Add(delta) }

// Set pins the gauge to v.
func (g *Gauge) Set(v int64) { g.v.Store(v) }

// Value reads the gauge.
func (g *Gauge) Value() int64 { return g.v.Load() }

// histBuckets covers observed values up to 2⁶³−1 in power-of-two buckets:
// bucket i holds values whose bit length is i (i.e. [2^(i-1), 2^i−1]),
// with bucket 0 holding zero. For nanosecond latencies that spans sub-ns
// to ~292 years — every duration this repo can produce.
const histBuckets = 64

// Histogram is a fixed-bucket latency histogram. Observe costs the gate
// load, a bits.Len64, and two atomic adds — the observation count is not
// stored separately but derived from the buckets at snapshot time.
type Histogram struct {
	name    string
	sum     atomic.Uint64
	buckets [histBuckets]atomic.Uint64
}

// Name reports the registered name.
func (h *Histogram) Name() string { return h.name }

// Observe records one value (for latencies: nanoseconds). No-op while
// metrics are disabled.
func (h *Histogram) Observe(v uint64) {
	if !metricsOn.Load() {
		return
	}
	idx := bits.Len64(v)
	if idx >= histBuckets {
		idx = histBuckets - 1 // values ≥ 2⁶³ clamp into the top bucket
	}
	h.buckets[idx].Add(1)
	h.sum.Add(v)
}

// Snapshot copies the histogram's current state. Count is the bucket sum,
// so under concurrent writers it may trail Sum by in-flight observations —
// the usual snapshot-consistency caveat, harmless for monitoring.
func (h *Histogram) Snapshot() HistSnapshot {
	s := HistSnapshot{Sum: h.sum.Load()}
	for i := range h.buckets {
		if n := h.buckets[i].Load(); n > 0 {
			s.Count += n
			s.Buckets = append(s.Buckets, BucketCount{Le: bucketUpper(i), N: n})
		}
	}
	return s
}

// bucketUpper is the largest value bucket i can hold.
func bucketUpper(i int) uint64 {
	if i == 0 {
		return 0
	}
	return 1<<uint(i) - 1
}

// BucketCount is one non-empty histogram bucket: N observations ≤ Le.
type BucketCount struct {
	Le uint64 `json:"le"`
	N  uint64 `json:"n"`
}

// HistSnapshot is a point-in-time copy of a histogram.
type HistSnapshot struct {
	Count   uint64        `json:"count"`
	Sum     uint64        `json:"sum"`
	Buckets []BucketCount `json:"buckets,omitempty"`
}

// Mean reports the average observed value, 0 when empty.
func (s HistSnapshot) Mean() float64 {
	if s.Count == 0 {
		return 0
	}
	return float64(s.Sum) / float64(s.Count)
}

// Quantile estimates the q-quantile (q in [0,1]) as the upper bound of the
// bucket where the cumulative count crosses q·Count — an overestimate by
// at most 2×, which is enough to tell 10 µs from 10 ms on a dashboard.
func (s HistSnapshot) Quantile(q float64) uint64 {
	if s.Count == 0 || len(s.Buckets) == 0 {
		return 0
	}
	target := q * float64(s.Count)
	var cum float64
	for _, b := range s.Buckets {
		cum += float64(b.N)
		if cum >= target {
			return b.Le
		}
	}
	return s.Buckets[len(s.Buckets)-1].Le
}

// Registry holds named metrics. Metric constructors are get-or-create and
// safe for concurrent use; the instruments they return are cached by the
// caller and never looked up on the hot path.
type Registry struct {
	mu       sync.RWMutex
	counters map[string]*Counter
	gauges   map[string]*Gauge
	hists    map[string]*Histogram
	funcs    map[string][]func() uint64
}

// NewRegistry creates an empty registry.
func NewRegistry() *Registry {
	return &Registry{
		counters: map[string]*Counter{},
		gauges:   map[string]*Gauge{},
		hists:    map[string]*Histogram{},
		funcs:    map[string][]func() uint64{},
	}
}

// Default is the process-wide registry every layer of the stack registers
// into; ccafe stats and the HTTP endpoint read it.
var Default = NewRegistry()

// Counter returns the named counter, creating it on first use.
func (r *Registry) Counter(name string) *Counter {
	r.mu.RLock()
	c := r.counters[name]
	r.mu.RUnlock()
	if c != nil {
		return c
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	if c = r.counters[name]; c == nil {
		c = &Counter{name: name}
		r.counters[name] = c
	}
	return c
}

// Gauge returns the named gauge, creating it on first use.
func (r *Registry) Gauge(name string) *Gauge {
	r.mu.RLock()
	g := r.gauges[name]
	r.mu.RUnlock()
	if g != nil {
		return g
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	if g = r.gauges[name]; g == nil {
		g = &Gauge{name: name}
		r.gauges[name] = g
	}
	return g
}

// Histogram returns the named histogram, creating it on first use.
func (r *Registry) Histogram(name string) *Histogram {
	r.mu.RLock()
	h := r.hists[name]
	r.mu.RUnlock()
	if h != nil {
		return h
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	if h = r.hists[name]; h == nil {
		h = &Histogram{name: name}
		r.hists[name] = h
	}
	return h
}

// AddCounterFunc registers a sampled counter: fn is called at snapshot
// time and its result added to the named counter's reading. Multiple
// registrations under one name sum, so several producers (e.g. every live
// Framework) each contribute a share. This is the zero-overhead counting
// path for hot loops that already maintain a count in their own state and
// cannot afford even one extra atomic RMW per call — the packed GetPort
// acquisition count is the canonical producer. fn must be safe to call
// from any goroutine and must not call back into this registry.
func (r *Registry) AddCounterFunc(name string, fn func() uint64) {
	r.mu.Lock()
	r.funcs[name] = append(r.funcs[name], fn)
	r.mu.Unlock()
}

// NewCounter registers a counter in the Default registry.
func NewCounter(name string) *Counter { return Default.Counter(name) }

// NewGauge registers a gauge in the Default registry.
func NewGauge(name string) *Gauge { return Default.Gauge(name) }

// NewHistogram registers a histogram in the Default registry.
func NewHistogram(name string) *Histogram { return Default.Histogram(name) }

// AddCounterFunc registers a sampled counter in the Default registry.
func AddCounterFunc(name string, fn func() uint64) { Default.AddCounterFunc(name, fn) }

// Snapshot is a point-in-time copy of a registry's metrics.
type Snapshot struct {
	Counters   map[string]uint64       `json:"counters"`
	Gauges     map[string]int64        `json:"gauges"`
	Histograms map[string]HistSnapshot `json:"histograms"`
}

// Snapshot copies every metric's current value.
func (r *Registry) Snapshot() Snapshot {
	r.mu.RLock()
	cs := make([]*Counter, 0, len(r.counters))
	for _, c := range r.counters {
		cs = append(cs, c)
	}
	gs := make([]*Gauge, 0, len(r.gauges))
	for _, g := range r.gauges {
		gs = append(gs, g)
	}
	hs := make([]*Histogram, 0, len(r.hists))
	for _, h := range r.hists {
		hs = append(hs, h)
	}
	type namedFuncs struct {
		name string
		fns  []func() uint64
	}
	fs := make([]namedFuncs, 0, len(r.funcs))
	for n, fns := range r.funcs {
		fs = append(fs, namedFuncs{n, fns})
	}
	r.mu.RUnlock()
	s := Snapshot{
		Counters:   make(map[string]uint64, len(cs)),
		Gauges:     make(map[string]int64, len(gs)),
		Histograms: make(map[string]HistSnapshot, len(hs)),
	}
	for _, c := range cs {
		s.Counters[c.name] = c.Value()
	}
	// Sampled counters are called outside the registry lock (they may take
	// their producer's lock) and add into any same-named stored counter.
	for _, nf := range fs {
		for _, fn := range nf.fns {
			s.Counters[nf.name] += fn()
		}
	}
	for _, g := range gs {
		s.Gauges[g.name] = g.Value()
	}
	for _, h := range hs {
		s.Histograms[h.name] = h.Snapshot()
	}
	return s
}

// Names lists every registered metric name, sorted — the `ccafe stats`
// listing order.
func (r *Registry) Names() []string {
	r.mu.RLock()
	defer r.mu.RUnlock()
	seen := make(map[string]struct{}, len(r.counters)+len(r.gauges)+len(r.hists)+len(r.funcs))
	for n := range r.counters {
		seen[n] = struct{}{}
	}
	for n := range r.gauges {
		seen[n] = struct{}{}
	}
	for n := range r.hists {
		seen[n] = struct{}{}
	}
	for n := range r.funcs {
		seen[n] = struct{}{}
	}
	names := make([]string, 0, len(seen))
	for n := range seen {
		names = append(names, n)
	}
	sort.Strings(names)
	return names
}
