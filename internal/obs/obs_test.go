package obs

import (
	"encoding/json"
	"fmt"
	"net"
	"net/http"
	"sync"
	"testing"
	"time"
)

func TestCounterConcurrentSum(t *testing.T) {
	r := NewRegistry()
	c := r.Counter("test.calls")
	const workers, per = 16, 10_000
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < per; i++ {
				c.Inc()
			}
		}()
	}
	wg.Wait()
	if got := c.Value(); got != workers*per {
		t.Fatalf("counter = %d, want %d", got, workers*per)
	}
}

func TestCounterGate(t *testing.T) {
	defer SetMetricsEnabled(true)
	c := NewRegistry().Counter("gated")
	SetMetricsEnabled(false)
	c.Add(100)
	if got := c.Value(); got != 0 {
		t.Fatalf("disabled counter recorded %d", got)
	}
	SetMetricsEnabled(true)
	c.Add(3)
	if got := c.Value(); got != 3 {
		t.Fatalf("re-enabled counter = %d, want 3", got)
	}
}

func TestGaugeUngated(t *testing.T) {
	defer SetMetricsEnabled(true)
	g := NewRegistry().Gauge("inflight")
	SetMetricsEnabled(false)
	g.Add(2)
	g.Add(-1)
	if got := g.Value(); got != 1 {
		t.Fatalf("gauge = %d, want 1 (gauges must not be gated)", got)
	}
	g.Set(-7)
	if got := g.Value(); got != -7 {
		t.Fatalf("gauge = %d, want -7", got)
	}
}

func TestHistogramBuckets(t *testing.T) {
	h := NewRegistry().Histogram("lat")
	for _, v := range []uint64{0, 1, 2, 3, 1000, 1 << 40, ^uint64(0)} {
		h.Observe(v)
	}
	s := h.Snapshot()
	if s.Count != 7 {
		t.Fatalf("count = %d, want 7", s.Count)
	}
	wantSum := uint64(0 + 1 + 2 + 3 + 1000 + 1<<40)
	wantSum += ^uint64(0) // wraps: the histogram sum is modular by design
	if s.Sum != wantSum {
		t.Fatalf("sum = %d, want %d", s.Sum, wantSum)
	}
	// 0→bucket 0 (le 0); 1→le 1; 2,3→le 3; 1000→le 1023; 2^40→le 2^41−1;
	// max uint64 clamps into the top bucket (le 2^63−1).
	want := map[uint64]uint64{0: 1, 1: 1, 3: 2, 1023: 1, 1<<41 - 1: 1, 1<<63 - 1: 1}
	if len(s.Buckets) != len(want) {
		t.Fatalf("buckets = %+v, want %v", s.Buckets, want)
	}
	for _, b := range s.Buckets {
		if want[b.Le] != b.N {
			t.Fatalf("bucket le=%d n=%d, want n=%d", b.Le, b.N, want[b.Le])
		}
	}
	if q := s.Quantile(0.5); q != 3 {
		t.Fatalf("p50 = %d, want 3", q)
	}
	if q := s.Quantile(1); q != 1<<63-1 {
		t.Fatalf("p100 = %d, want top bucket", q)
	}
	if m := s.Mean(); m <= 0 {
		t.Fatalf("mean = %v, want > 0", m)
	}
}

func TestRegistryIdempotentAndNames(t *testing.T) {
	r := NewRegistry()
	if r.Counter("a") != r.Counter("a") {
		t.Fatal("Counter not idempotent")
	}
	if r.Gauge("b") != r.Gauge("b") {
		t.Fatal("Gauge not idempotent")
	}
	if r.Histogram("c") != r.Histogram("c") {
		t.Fatal("Histogram not idempotent")
	}
	names := r.Names()
	if len(names) != 3 || names[0] != "a" || names[1] != "b" || names[2] != "c" {
		t.Fatalf("names = %v, want [a b c]", names)
	}
	r.Counter("a").Add(5)
	r.Gauge("b").Set(-2)
	r.Histogram("c").Observe(9)
	s := r.Snapshot()
	if s.Counters["a"] != 5 || s.Gauges["b"] != -2 || s.Histograms["c"].Count != 1 {
		t.Fatalf("snapshot = %+v", s)
	}
}

func TestRecorderRingWrap(t *testing.T) {
	rec := NewRecorder(4)
	rec.Record(Span{Trace: 99}) // disabled: dropped
	if rec.Recorded() != 0 {
		t.Fatal("disabled recorder recorded a span")
	}
	rec.SetEnabled(true)
	for i := 1; i <= 6; i++ {
		rec.Record(Span{Trace: uint64(i), Kind: SpanClientCall})
	}
	if rec.Recorded() != 6 {
		t.Fatalf("recorded = %d, want 6", rec.Recorded())
	}
	spans := rec.Spans()
	if len(spans) != 4 {
		t.Fatalf("retained %d spans, want 4", len(spans))
	}
	for i, s := range spans {
		if want := uint64(i + 3); s.Trace != want {
			t.Fatalf("span[%d].Trace = %d, want %d (oldest-first)", i, s.Trace, want)
		}
	}
	rec.Reset()
	if rec.Recorded() != 0 || len(rec.Spans()) != 0 {
		t.Fatal("Reset did not clear the ring")
	}
}

func TestTraceIDs(t *testing.T) {
	rec := Tracer
	was := rec.Enabled()
	defer rec.SetEnabled(was)
	rec.SetEnabled(false)
	if id := ActiveTraceID(); id != 0 {
		t.Fatalf("ActiveTraceID with tracing off = %d, want 0", id)
	}
	rec.SetEnabled(true)
	a, b := ActiveTraceID(), ActiveTraceID()
	if a == 0 || b == 0 || a == b {
		t.Fatalf("trace IDs not fresh nonzero: %d, %d", a, b)
	}
}

// TestMonoTracksNanotime pins the TSC fast clock to the runtime clock: on
// amd64 the two must advance at the same rate once calibration lands (on
// other architectures Mono IS nanotime, and this trivially holds).
func TestMonoTracksNanotime(t *testing.T) {
	time.Sleep(30 * time.Millisecond) // let the first TSC calibration land
	d0 := Mono() - Nanotime()
	time.Sleep(50 * time.Millisecond)
	d1 := Mono() - Nanotime()
	if drift := d1 - d0; drift < -5e6 || drift > 5e6 {
		t.Fatalf("Mono drifted %dns from nanotime over 50ms", drift)
	}
	prev := Mono()
	for i := 0; i < 1000; i++ {
		cur := Mono()
		if cur < prev {
			t.Fatalf("Mono went backwards: %d -> %d", prev, cur)
		}
		prev = cur
	}
}

func TestSpanKindStrings(t *testing.T) {
	for k, want := range map[SpanKind]string{
		SpanClientCall: "client-call", SpanOneway: "oneway",
		SpanDispatch: "dispatch", SpanKind(200): "span(?)",
	} {
		if k.String() != want {
			t.Fatalf("%d.String() = %q, want %q", k, k.String(), want)
		}
	}
}

func TestHTTPEndpoint(t *testing.T) {
	r := NewRegistry()
	r.Counter("http.hits").Add(2)
	r.Histogram("http.lat").Observe(1500)
	rec := NewRecorder(8)
	rec.SetEnabled(true)
	rec.Record(Span{Trace: 7, Kind: SpanDispatch, Key: "calc", Method: "add", Dur: 5 * time.Microsecond})

	mux := http.NewServeMux()
	mux.Handle("/metrics", HandlerFor(r, rec))
	srv := &http.Server{Handler: mux}
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	go srv.Serve(ln) //nolint:errcheck
	defer srv.Close()

	resp, err := http.Get(fmt.Sprintf("http://%s/metrics?spans=10", ln.Addr()))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var doc struct {
		Counters   map[string]uint64 `json:"counters"`
		Histograms map[string]struct {
			Count uint64 `json:"count"`
			P99   uint64 `json:"p99"`
		} `json:"histograms"`
		Tracing struct {
			Enabled  bool   `json:"enabled"`
			Recorded uint64 `json:"recorded"`
		} `json:"tracing"`
		Spans []Span `json:"spans"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&doc); err != nil {
		t.Fatal(err)
	}
	if doc.Counters["http.hits"] != 2 {
		t.Fatalf("counters = %v", doc.Counters)
	}
	if h := doc.Histograms["http.lat"]; h.Count != 1 || h.P99 < 1500 {
		t.Fatalf("histogram view = %+v", h)
	}
	if !doc.Tracing.Enabled || doc.Tracing.Recorded != 1 || len(doc.Spans) != 1 {
		t.Fatalf("tracing view = %+v spans=%d", doc.Tracing, len(doc.Spans))
	}
	if doc.Spans[0].Method != "add" || doc.Spans[0].Kind != SpanDispatch {
		t.Fatalf("span = %+v", doc.Spans[0])
	}
}

func TestServeBindsAndCloses(t *testing.T) {
	addr, closer, err := Serve("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	resp, err := http.Get("http://" + addr)
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status = %d", resp.StatusCode)
	}
	if err := closer(); err != nil {
		t.Fatal(err)
	}
}
