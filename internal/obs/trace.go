package obs

import (
	"sort"
	"sync"
	"sync/atomic"
	"time"
	"unsafe"
)

// Tracing follows one remote port call across processes. The ORB's v2
// frames carry an 8-byte trace ID next to the correlation ID; a client
// call with tracing enabled draws a fresh nonzero ID, stamps it into the
// request frame, and the server echoes it into the reply — so the spans a
// call leaves behind (client-call on the caller, dispatch — with its
// queueing delay — on the callee) share one trace ID and can be joined
// into a timeline.
// Trace ID 0 means "untraced": the wire format always has room for the ID,
// but no span is recorded for it anywhere.
//
// Recording is off by default — unlike the counters, a span captures two
// strings and a timestamp per hop, which is real work on a hot path — and
// flips on with Tracer.SetEnabled(true) (or `ccafe trace on`). Spans land
// in a fixed-size ring: the recorder never allocates after construction
// and never blocks a caller longer than one ring-slot copy under a mutex.

// SpanKind says which hop of a call a span describes.
type SpanKind uint8

// Span kinds, in the order a two-way call produces them.
const (
	// SpanClientCall covers the full client-side round trip: encode, send,
	// and wait for the matching reply.
	SpanClientCall SpanKind = iota
	// SpanOneway covers a fire-and-forget send (no reply, so its duration
	// is the local encode+enqueue cost only).
	SpanOneway
	// SpanDispatch covers the server-side work: decode, servant lookup,
	// dynamic invocation, reply encode. Its Queue field carries the time
	// the frame spent between the read loop and a dispatch slot.
	SpanDispatch
)

func (k SpanKind) String() string {
	switch k {
	case SpanClientCall:
		return "client-call"
	case SpanOneway:
		return "oneway"
	case SpanDispatch:
		return "dispatch"
	default:
		return "span(?)"
	}
}

// Span is one recorded hop of a traced call.
type Span struct {
	Trace  uint64        `json:"trace"`
	Kind   SpanKind      `json:"kind"`
	Key    string        `json:"key,omitempty"`
	Method string        `json:"method,omitempty"`
	Start  int64         `json:"start_unix_ns"`
	Dur    time.Duration `json:"dur_ns"`
	// Queue is the time a server-side frame waited between its arrival in
	// the read loop and the start of its dispatch (dispatch spans only) —
	// the server's internal queueing delay, split out from Dur.
	Queue time.Duration `json:"queue_ns,omitempty"`
	Err   string        `json:"err,omitempty"`
}

// traceStripes is the number of independent rings a Recorder spreads
// recording goroutines across. A traced call records spans from three
// different goroutines (caller, server read loop, dispatch worker); with a
// single ring those three serialize on one mutex whose cache line bounces
// between cores on every hop. Stripes keep each goroutine on its own
// mutex+ring (selected by a stack-address hash, so a goroutine sticks to
// one stripe) at the cost of merging on read — the right trade for a
// write-often read-rarely debugging aid.
const traceStripes = 4

type traceStripe struct {
	mu   sync.Mutex
	ring []Span
	n    uint64 // total spans ever recorded here; ring cursor is n % len
	_    [64]byte
}

// Recorder is a fixed-capacity span ring, striped for concurrent
// recording. The zero value is unusable; use NewRecorder.
type Recorder struct {
	on      atomic.Bool
	stripes [traceStripes]traceStripe
}

// NewRecorder creates a disabled recorder. Each stripe retains the last
// `size` spans recorded through it, so a single recording goroutine always
// sees its `size` most recent spans and the recorder as a whole holds at
// most traceStripes*size.
func NewRecorder(size int) *Recorder {
	if size < 1 {
		size = 1
	}
	r := &Recorder{}
	for i := range r.stripes {
		r.stripes[i].ring = make([]Span, size)
	}
	return r
}

// Tracer is the process-wide recorder the ORB records into.
var Tracer = NewRecorder(4096)

// SetEnabled turns span recording (and trace-ID stamping) on or off.
func (r *Recorder) SetEnabled(on bool) { r.on.Store(on) }

// Enabled reports whether spans are being recorded.
func (r *Recorder) Enabled() bool { return r.on.Load() }

// Record stores a span in the recording goroutine's stripe, overwriting
// the oldest once that ring is full. No-op while the recorder is disabled.
func (r *Recorder) Record(s Span) {
	if !r.on.Load() {
		return
	}
	// Stripe by goroutine stack address (same trick as Counter.Add): a
	// goroutine's locals sit on its own stack, so each recording goroutine
	// consistently hits one stripe and the mutexes never bounce between
	// the hops of a traced call.
	var probe byte
	st := &r.stripes[(uintptr(unsafe.Pointer(&probe))>>10)%traceStripes]
	st.mu.Lock()
	st.ring[st.n%uint64(len(st.ring))] = s
	st.n++
	st.mu.Unlock()
}

// Recorded reports how many spans have ever been recorded (including ones
// the rings have since overwritten).
func (r *Recorder) Recorded() uint64 {
	var total uint64
	for i := range r.stripes {
		st := &r.stripes[i]
		st.mu.Lock()
		total += st.n
		st.mu.Unlock()
	}
	return total
}

// Spans copies out the retained spans in timeline order (by Start; spans
// recorded through one stripe keep their recording order when Starts tie,
// so single-goroutine traces come back exactly as recorded).
func (r *Recorder) Spans() []Span {
	var out []Span
	for i := range r.stripes {
		st := &r.stripes[i]
		st.mu.Lock()
		size := uint64(len(st.ring))
		kept := st.n
		if kept > size {
			kept = size
		}
		for j := st.n - kept; j < st.n; j++ {
			out = append(out, st.ring[j%size])
		}
		st.mu.Unlock()
	}
	sort.SliceStable(out, func(i, j int) bool { return out[i].Start < out[j].Start })
	return out
}

// Reset drops every retained span (the enabled state is unchanged).
func (r *Recorder) Reset() {
	for i := range r.stripes {
		st := &r.stripes[i]
		st.mu.Lock()
		clear(st.ring)
		st.n = 0
		st.mu.Unlock()
	}
}

// traceSeq hands out trace IDs. Seeded from the clock so IDs from
// processes started at different times rarely collide — good enough for
// joining spans by eye or script; this is a debugging aid, not a
// distributed-uniqueness guarantee.
var traceSeq atomic.Uint64

func init() { traceSeq.Store(uint64(time.Now().UnixNano()) << 16) }

// NextTraceID draws a fresh nonzero trace ID.
func NextTraceID() uint64 {
	for {
		if id := traceSeq.Add(1); id != 0 {
			return id
		}
	}
}

// ActiveTraceID draws a trace ID when the process-wide Tracer is enabled,
// and returns 0 (untraced) otherwise — the one call sites make per call.
func ActiveTraceID() uint64 {
	if !Tracer.Enabled() {
		return 0
	}
	return NextTraceID()
}
