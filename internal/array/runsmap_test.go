package array

// Tests for NewRunsMap: the decode side of a wire-serialized DataMap.

import (
	"errors"
	"testing"
)

func TestNewRunsMapRoundTrip(t *testing.T) {
	maps := []DataMap{
		NewBlockMap(17, 3),
		NewCyclicMap(20, 4, 3),
		NewSerialMap(9),
	}
	for _, src := range maps {
		m, err := NewRunsMap(src.GlobalLen(), src.Runs())
		if err != nil {
			t.Fatalf("%s: %v", src, err)
		}
		if m.GlobalLen() != src.GlobalLen() || m.Ranks() != src.Ranks() {
			t.Fatalf("%s: reconstructed %s", src, m)
		}
		for r := 0; r < src.Ranks(); r++ {
			if m.LocalLen(r) != src.LocalLen(r) {
				t.Errorf("%s: rank %d local %d != %d", src, r, m.LocalLen(r), src.LocalLen(r))
			}
		}
		// The reconstruction must be canonical: identical run lists mean the
		// collective planner computes the identical schedule on both sides.
		a, b := src.Runs(), m.Runs()
		if len(a) != len(b) {
			t.Fatalf("%s: %d runs != %d", src, len(a), len(b))
		}
		for i := range a {
			if a[i] != b[i] {
				t.Errorf("%s: run %d %+v != %+v", src, i, b[i], a[i])
			}
		}
	}
}

func TestNewRunsMapUnsortedInput(t *testing.T) {
	// Wire order is not trusted; runs arriving shuffled must still build.
	m, err := NewRunsMap(10, []Run{
		{Global: IndexRange{5, 10}, Rank: 1, Local: 0},
		{Global: IndexRange{0, 5}, Rank: 0, Local: 0},
	})
	if err != nil {
		t.Fatal(err)
	}
	if m.Ranks() != 2 || m.LocalLen(0) != 5 || m.LocalLen(1) != 5 {
		t.Errorf("reconstructed %s", m)
	}
}

func TestNewRunsMapRejectsInvalid(t *testing.T) {
	cases := []struct {
		name string
		n    int
		runs []Run
	}{
		{"gap", 10, []Run{
			{Global: IndexRange{0, 4}, Rank: 0, Local: 0},
			{Global: IndexRange{5, 10}, Rank: 1, Local: 0},
		}},
		{"overlap", 10, []Run{
			{Global: IndexRange{0, 6}, Rank: 0, Local: 0},
			{Global: IndexRange{5, 10}, Rank: 1, Local: 0},
		}},
		{"short-cover", 10, []Run{
			{Global: IndexRange{0, 8}, Rank: 0, Local: 0},
		}},
		{"negative-rank", 10, []Run{
			{Global: IndexRange{0, 10}, Rank: -1, Local: 0},
		}},
		{"negative-local", 10, []Run{
			{Global: IndexRange{0, 10}, Rank: 0, Local: -3},
		}},
		{"local-gap", 10, []Run{
			{Global: IndexRange{0, 5}, Rank: 0, Local: 0},
			{Global: IndexRange{5, 10}, Rank: 0, Local: 7},
		}},
		{"inverted", 4, []Run{
			{Global: IndexRange{0, 4}, Rank: 0, Local: 0},
			{Global: IndexRange{4, 2}, Rank: 0, Local: 4},
		}},
		{"empty-nonzero-n", 5, nil},
	}
	for _, tc := range cases {
		if _, err := NewRunsMap(tc.n, tc.runs); !errors.Is(err, ErrMap) {
			t.Errorf("%s: err = %v, want ErrMap", tc.name, err)
		}
	}
}

func TestNewRunsMapEmpty(t *testing.T) {
	m, err := NewRunsMap(0, nil)
	if err != nil {
		t.Fatal(err)
	}
	if m.GlobalLen() != 0 || m.Ranks() != 1 || m.LocalLen(0) != 0 {
		t.Errorf("empty map = %s", m)
	}
}
