package array

import (
	"errors"
	"strings"
	"testing"
	"testing/quick"
)

func TestNewZeroFilled(t *testing.T) {
	a := New(RowMajor, 2, 3)
	if a.Rank() != 2 || a.Len() != 6 {
		t.Fatalf("rank=%d len=%d", a.Rank(), a.Len())
	}
	for i := 0; i < 2; i++ {
		for j := 0; j < 3; j++ {
			if a.At(i, j) != 0 {
				t.Fatalf("a[%d,%d] = %v", i, j, a.At(i, j))
			}
		}
	}
}

func TestSetAtRoundTrip(t *testing.T) {
	for _, order := range []Order{RowMajor, ColMajor} {
		a := New(order, 3, 4, 2)
		v := 0.0
		for i := 0; i < 3; i++ {
			for j := 0; j < 4; j++ {
				for k := 0; k < 2; k++ {
					a.Set(v, i, j, k)
					v++
				}
			}
		}
		v = 0.0
		for i := 0; i < 3; i++ {
			for j := 0; j < 4; j++ {
				for k := 0; k < 2; k++ {
					if a.At(i, j, k) != v {
						t.Fatalf("%s: a[%d,%d,%d] = %v, want %v", order, i, j, k, a.At(i, j, k), v)
					}
					v++
				}
			}
		}
	}
}

func TestStorageOrderLayout(t *testing.T) {
	// Row-major: last index fastest. Col-major: first index fastest.
	rm := New(RowMajor, 2, 2)
	rm.Set(1, 0, 0)
	rm.Set(2, 0, 1)
	rm.Set(3, 1, 0)
	rm.Set(4, 1, 1)
	if got := rm.Data(); got[0] != 1 || got[1] != 2 || got[2] != 3 || got[3] != 4 {
		t.Errorf("row-major layout = %v", got)
	}
	cm := New(ColMajor, 2, 2)
	cm.Set(1, 0, 0)
	cm.Set(2, 0, 1)
	cm.Set(3, 1, 0)
	cm.Set(4, 1, 1)
	if got := cm.Data(); got[0] != 1 || got[1] != 3 || got[2] != 2 || got[3] != 4 {
		t.Errorf("col-major layout = %v", got)
	}
}

func TestWrapChecksLength(t *testing.T) {
	if _, err := Wrap([]float64{1, 2, 3}, RowMajor, 2, 2); !errors.Is(err, ErrShape) {
		t.Errorf("err = %v, want ErrShape", err)
	}
	a, err := Wrap([]float64{1, 2, 3, 4}, RowMajor, 2, 2)
	if err != nil {
		t.Fatal(err)
	}
	if a.At(1, 0) != 3 {
		t.Errorf("wrapped a[1,0] = %v", a.At(1, 0))
	}
}

func TestAtPanicsOutOfBounds(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("no panic on out-of-bounds index")
		}
	}()
	New(RowMajor, 2, 2).At(2, 0)
}

func TestSliceView(t *testing.T) {
	a := New(RowMajor, 4, 4)
	for i := 0; i < 4; i++ {
		for j := 0; j < 4; j++ {
			a.Set(float64(10*i+j), i, j)
		}
	}
	v, err := a.Slice([]int{1, 1}, []int{3, 4})
	if err != nil {
		t.Fatal(err)
	}
	if d := v.Dims(); d[0] != 2 || d[1] != 3 {
		t.Fatalf("view dims = %v", d)
	}
	if v.At(0, 0) != 11 || v.At(1, 2) != 23 {
		t.Errorf("view values: %v %v", v.At(0, 0), v.At(1, 2))
	}
	// Views share storage.
	v.Set(-1, 0, 0)
	if a.At(1, 1) != -1 {
		t.Error("view write did not reach parent")
	}
	if v.IsContiguous() {
		t.Error("interior view claims to be contiguous")
	}
}

func TestSliceBoundsErrors(t *testing.T) {
	a := New(RowMajor, 3, 3)
	if _, err := a.Slice([]int{0}, []int{1}); !errors.Is(err, ErrShape) {
		t.Errorf("rank mismatch err = %v", err)
	}
	if _, err := a.Slice([]int{0, 2}, []int{1, 5}); !errors.Is(err, ErrBounds) {
		t.Errorf("bounds err = %v", err)
	}
	if _, err := a.Slice([]int{2, 0}, []int{1, 1}); !errors.Is(err, ErrBounds) {
		t.Errorf("inverted err = %v", err)
	}
}

func TestCopyCompactsViews(t *testing.T) {
	a := New(RowMajor, 4, 4)
	for i := range a.Data() {
		a.Data()[i] = float64(i)
	}
	v, _ := a.Slice([]int{0, 1}, []int{4, 3})
	c := v.Copy()
	if !c.IsContiguous() {
		t.Error("copy is not contiguous")
	}
	if !c.EqualApprox(v, 0) {
		t.Error("copy differs from view")
	}
	c.Set(-99, 0, 0)
	if v.At(0, 0) == -99 {
		t.Error("copy shares storage with view")
	}
}

func TestFillAndScaleThroughView(t *testing.T) {
	a := New(ColMajor, 3, 3)
	v, _ := a.Slice([]int{1, 1}, []int{3, 3})
	v.Fill(2)
	v.Scale(3)
	for i := 0; i < 3; i++ {
		for j := 0; j < 3; j++ {
			want := 0.0
			if i >= 1 && j >= 1 {
				want = 6
			}
			if a.At(i, j) != want {
				t.Fatalf("a[%d,%d] = %v, want %v", i, j, a.At(i, j), want)
			}
		}
	}
}

func TestReshape(t *testing.T) {
	a := New(RowMajor, 2, 6)
	for i := range a.Data() {
		a.Data()[i] = float64(i)
	}
	b, err := a.Reshape(3, 4)
	if err != nil {
		t.Fatal(err)
	}
	if b.At(2, 3) != 11 {
		t.Errorf("b[2,3] = %v", b.At(2, 3))
	}
	if _, err := a.Reshape(5); !errors.Is(err, ErrShape) {
		t.Errorf("count mismatch err = %v", err)
	}
	v, _ := a.Slice([]int{0, 1}, []int{2, 5})
	if _, err := v.Reshape(8); !errors.Is(err, ErrShape) {
		t.Errorf("non-contiguous reshape err = %v", err)
	}
}

func TestEqualApproxAcrossOrders(t *testing.T) {
	rm := New(RowMajor, 2, 3)
	cm := New(ColMajor, 2, 3)
	v := 1.0
	for i := 0; i < 2; i++ {
		for j := 0; j < 3; j++ {
			rm.Set(v, i, j)
			cm.Set(v, i, j)
			v++
		}
	}
	if !rm.EqualApprox(cm, 0) {
		t.Error("logically equal arrays with different orders compare unequal")
	}
	cm.Set(99, 1, 2)
	if rm.EqualApprox(cm, 0) {
		t.Error("different arrays compare equal")
	}
}

func TestStringForms(t *testing.T) {
	small := New(RowMajor, 2)
	small.Set(1.5, 0)
	if s := small.String(); !strings.Contains(s, "1.5") {
		t.Errorf("small String() = %q", s)
	}
	big := New(RowMajor, 100)
	if s := big.String(); !strings.Contains(s, "100 elements") {
		t.Errorf("big String() = %q", s)
	}
}

func TestComplexArrayBasics(t *testing.T) {
	a := NewComplex(RowMajor, 2, 2)
	a.Set(complex(1, 2), 0, 1)
	if a.At(0, 1) != complex(1, 2) {
		t.Fatalf("At = %v", a.At(0, 1))
	}
	re, im := a.Real(), a.Imag()
	if re.At(0, 1) != 1 || im.At(0, 1) != 2 {
		t.Errorf("Real/Imag: %v %v", re.At(0, 1), im.At(0, 1))
	}
	a.Conj()
	if a.At(0, 1) != complex(1, -2) {
		t.Errorf("Conj: %v", a.At(0, 1))
	}
}

func TestComplexWrapAndEqual(t *testing.T) {
	data := []complex128{1, 2i, 3, 4}
	a, err := WrapComplex(data, ColMajor, 2, 2)
	if err != nil {
		t.Fatal(err)
	}
	b := NewComplex(ColMajor, 2, 2)
	copy(b.Data(), data)
	if !a.EqualApprox(b, 0) {
		t.Error("equal complex arrays compare unequal")
	}
	if _, err := WrapComplex(data, ColMajor, 3, 2); !errors.Is(err, ErrShape) {
		t.Errorf("err = %v", err)
	}
}

// Property: Flatten of a Copy equals Flatten of the original for random
// shapes and values.
func TestCopyFlattenProperty(t *testing.T) {
	f := func(vals []float64, d1Raw, d2Raw uint8) bool {
		d1 := int(d1Raw)%5 + 1
		d2 := int(d2Raw)%5 + 1
		n := d1 * d2
		data := make([]float64, n)
		for i := range data {
			if len(vals) > 0 {
				data[i] = vals[i%len(vals)]
			}
		}
		a, err := Wrap(data, RowMajor, d1, d2)
		if err != nil {
			return false
		}
		c := a.Copy()
		af, cf := a.Flatten(), c.Flatten()
		for i := range af {
			if af[i] != cf[i] && !(af[i] != af[i] && cf[i] != cf[i]) { // NaN-safe
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}
