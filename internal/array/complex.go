package array

import (
	"fmt"
	"math/cmplx"
)

// ComplexArray is the SIDL `array<dcomplex, N>` type: a dense, dynamically
// dimensioned array of complex128. It mirrors Array's API; the two types are
// kept separate (rather than generic) because the SIDL type system treats
// double and dcomplex as distinct primitive types with distinct language
// bindings.
type ComplexArray struct {
	data    []complex128
	dims    []int
	strides []int
	order   Order
}

// NewComplex allocates a zero-filled complex array.
func NewComplex(order Order, dims ...int) *ComplexArray {
	n := checkDims(dims)
	a := &ComplexArray{data: make([]complex128, n), dims: append([]int(nil), dims...), order: order}
	a.strides = contiguousStrides(a.dims, order)
	return a
}

// WrapComplex builds a complex array over existing storage without copying.
func WrapComplex(data []complex128, order Order, dims ...int) (*ComplexArray, error) {
	n := checkDims(dims)
	if len(data) != n {
		return nil, fmt.Errorf("%w: %d elements for dims %v (need %d)", ErrShape, len(data), dims, n)
	}
	a := &ComplexArray{data: data, dims: append([]int(nil), dims...), order: order}
	a.strides = contiguousStrides(a.dims, order)
	return a, nil
}

// Rank returns the number of dimensions.
func (a *ComplexArray) Rank() int { return len(a.dims) }

// Dims returns a copy of the dimension extents.
func (a *ComplexArray) Dims() []int { return append([]int(nil), a.dims...) }

// Order returns the storage order.
func (a *ComplexArray) Order() Order { return a.order }

// Len returns the total element count.
func (a *ComplexArray) Len() int {
	n := 1
	for _, d := range a.dims {
		n *= d
	}
	return n
}

// Data exposes the backing storage.
func (a *ComplexArray) Data() []complex128 { return a.data }

func (a *ComplexArray) offset(idx []int) int {
	if len(idx) != len(a.dims) {
		panic(fmt.Sprintf("array: %d indices for rank-%d complex array", len(idx), len(a.dims)))
	}
	off := 0
	for i, x := range idx {
		if x < 0 || x >= a.dims[i] {
			panic(fmt.Sprintf("array: index %d out of range [0,%d) in dim %d", x, a.dims[i], i))
		}
		off += x * a.strides[i]
	}
	return off
}

// At returns the element at the given multi-index.
func (a *ComplexArray) At(idx ...int) complex128 { return a.data[a.offset(idx)] }

// Set stores v at the given multi-index.
func (a *ComplexArray) Set(v complex128, idx ...int) { a.data[a.offset(idx)] = v }

// Fill sets every element to v.
func (a *ComplexArray) Fill(v complex128) {
	for i := range a.data {
		a.data[i] = v
	}
}

// Conj conjugates every element in place.
func (a *ComplexArray) Conj() {
	for i := range a.data {
		a.data[i] = cmplx.Conj(a.data[i])
	}
}

// Real extracts the real parts into a new float64 Array of the same shape.
func (a *ComplexArray) Real() *Array {
	out := New(a.order, a.dims...)
	for i, v := range a.data {
		out.data[i] = real(v)
	}
	return out
}

// Imag extracts the imaginary parts into a new float64 Array.
func (a *ComplexArray) Imag() *Array {
	out := New(a.order, a.dims...)
	for i, v := range a.data {
		out.data[i] = imag(v)
	}
	return out
}

// EqualApprox reports whether both arrays have the same shape and elements
// within tol (in modulus).
func (a *ComplexArray) EqualApprox(b *ComplexArray, tol float64) bool {
	if len(a.dims) != len(b.dims) || a.order != b.order {
		return false
	}
	for i := range a.dims {
		if a.dims[i] != b.dims[i] {
			return false
		}
	}
	for i := range a.data {
		if cmplx.Abs(a.data[i]-b.data[i]) > tol {
			return false
		}
	}
	return true
}
