package array

import (
	"errors"
	"fmt"
	"math"
	"strings"
)

// Order selects the storage layout of a multidimensional array.
type Order int

const (
	// RowMajor is C-style: the last index varies fastest.
	RowMajor Order = iota
	// ColMajor is Fortran-style: the first index varies fastest. This is
	// the layout CHAD-era Fortran 90 codes exchange with solvers.
	ColMajor
)

func (o Order) String() string {
	if o == ColMajor {
		return "col-major"
	}
	return "row-major"
}

// Errors reported by array operations.
var (
	ErrShape  = errors.New("array: shape mismatch")
	ErrBounds = errors.New("array: index out of bounds")
)

// Array is a dense, dynamically dimensioned array of float64 — the SIDL
// `array<double, N>` type. The zero value is an empty scalar-free array;
// use New or Wrap to construct a usable one. An Array may be a view into
// another array's storage (see Slice); Copy produces compact storage.
type Array struct {
	data    []float64
	dims    []int
	strides []int
	order   Order
}

// New allocates a zero-filled array with the given dimensions.
func New(order Order, dims ...int) *Array {
	n := checkDims(dims)
	a := &Array{data: make([]float64, n), dims: append([]int(nil), dims...), order: order}
	a.strides = contiguousStrides(a.dims, order)
	return a
}

// Wrap builds an array over existing storage without copying. len(data)
// must equal the product of dims.
func Wrap(data []float64, order Order, dims ...int) (*Array, error) {
	n := checkDims(dims)
	if len(data) != n {
		return nil, fmt.Errorf("%w: %d elements for dims %v (need %d)", ErrShape, len(data), dims, n)
	}
	a := &Array{data: data, dims: append([]int(nil), dims...), order: order}
	a.strides = contiguousStrides(a.dims, order)
	return a, nil
}

func checkDims(dims []int) int {
	n := 1
	for _, d := range dims {
		if d < 0 {
			panic(fmt.Sprintf("array: negative dimension %d", d))
		}
		n *= d
	}
	return n
}

func contiguousStrides(dims []int, order Order) []int {
	s := make([]int, len(dims))
	if order == RowMajor {
		acc := 1
		for i := len(dims) - 1; i >= 0; i-- {
			s[i] = acc
			acc *= dims[i]
		}
	} else {
		acc := 1
		for i := 0; i < len(dims); i++ {
			s[i] = acc
			acc *= dims[i]
		}
	}
	return s
}

// Rank returns the number of dimensions.
func (a *Array) Rank() int { return len(a.dims) }

// Dims returns a copy of the dimension extents.
func (a *Array) Dims() []int { return append([]int(nil), a.dims...) }

// Dim returns the extent of dimension i.
func (a *Array) Dim(i int) int { return a.dims[i] }

// Order returns the storage order.
func (a *Array) Order() Order { return a.order }

// Len returns the total element count.
func (a *Array) Len() int {
	n := 1
	for _, d := range a.dims {
		n *= d
	}
	return n
}

// Data exposes the backing storage. For views this includes elements outside
// the view; prefer Copy when a compact buffer is needed.
func (a *Array) Data() []float64 { return a.data }

// IsContiguous reports whether the array's elements are stored densely in
// its natural order (true for New/Wrap arrays, often false for views).
func (a *Array) IsContiguous() bool {
	want := contiguousStrides(a.dims, a.order)
	for i := range want {
		if a.dims[i] > 1 && a.strides[i] != want[i] {
			return false
		}
	}
	return true
}

func (a *Array) offset(idx []int) int {
	if len(idx) != len(a.dims) {
		panic(fmt.Sprintf("array: %d indices for rank-%d array", len(idx), len(a.dims)))
	}
	off := 0
	for i, x := range idx {
		if x < 0 || x >= a.dims[i] {
			panic(fmt.Sprintf("array: index %d out of range [0,%d) in dim %d", x, a.dims[i], i))
		}
		off += x * a.strides[i]
	}
	return off
}

// At returns the element at the given multi-index.
func (a *Array) At(idx ...int) float64 { return a.data[a.offset(idx)] }

// Set stores v at the given multi-index.
func (a *Array) Set(v float64, idx ...int) { a.data[a.offset(idx)] = v }

// Fill sets every element of the array (including through views) to v.
func (a *Array) Fill(v float64) {
	a.each(func(off int) { a.data[off] = v })
}

// Scale multiplies every element by s.
func (a *Array) Scale(s float64) {
	a.each(func(off int) { a.data[off] *= s })
}

// each visits the storage offset of every element in natural order.
func (a *Array) each(f func(off int)) {
	if len(a.dims) == 0 {
		f(0)
		return
	}
	idx := make([]int, len(a.dims))
	for {
		off := 0
		for i, x := range idx {
			off += x * a.strides[i]
		}
		f(off)
		// Increment the fastest-varying index per storage order.
		carry := true
		if a.order == RowMajor {
			for i := len(idx) - 1; i >= 0 && carry; i-- {
				idx[i]++
				if idx[i] < a.dims[i] {
					carry = false
				} else {
					idx[i] = 0
				}
			}
		} else {
			for i := 0; i < len(idx) && carry; i++ {
				idx[i]++
				if idx[i] < a.dims[i] {
					carry = false
				} else {
					idx[i] = 0
				}
			}
		}
		if carry {
			return
		}
	}
}

// Copy returns a compact (contiguous) deep copy with the same shape and
// order.
func (a *Array) Copy() *Array {
	out := New(a.order, a.dims...)
	i := 0
	a.each(func(off int) {
		out.data[i] = a.data[off]
		i++
	})
	return out
}

// Flatten returns the elements in natural storage order as a fresh slice.
func (a *Array) Flatten() []float64 {
	out := make([]float64, 0, a.Len())
	a.each(func(off int) { out = append(out, a.data[off]) })
	return out
}

// Slice returns a view of the half-open hyper-rectangle [lo[i], hi[i]) in
// each dimension. The view shares storage with a.
func (a *Array) Slice(lo, hi []int) (*Array, error) {
	if len(lo) != len(a.dims) || len(hi) != len(a.dims) {
		return nil, fmt.Errorf("%w: slice bounds rank %d/%d for rank-%d array", ErrShape, len(lo), len(hi), len(a.dims))
	}
	base := 0
	dims := make([]int, len(a.dims))
	for i := range a.dims {
		if lo[i] < 0 || hi[i] > a.dims[i] || lo[i] > hi[i] {
			return nil, fmt.Errorf("%w: [%d,%d) in dim %d of extent %d", ErrBounds, lo[i], hi[i], i, a.dims[i])
		}
		base += lo[i] * a.strides[i]
		dims[i] = hi[i] - lo[i]
	}
	return &Array{
		data:    a.data[base:],
		dims:    dims,
		strides: append([]int(nil), a.strides...),
		order:   a.order,
	}, nil
}

// Reshape returns a view with new dimensions. The array must be contiguous
// and the element count must match.
func (a *Array) Reshape(dims ...int) (*Array, error) {
	if !a.IsContiguous() {
		return nil, fmt.Errorf("%w: reshape of non-contiguous view", ErrShape)
	}
	if checkDims(dims) != a.Len() {
		return nil, fmt.Errorf("%w: reshape %v -> %v", ErrShape, a.dims, dims)
	}
	out := &Array{data: a.data, dims: append([]int(nil), dims...), order: a.order}
	out.strides = contiguousStrides(out.dims, a.order)
	return out, nil
}

// EqualApprox reports whether two arrays have identical shape and elements
// within tol.
func (a *Array) EqualApprox(b *Array, tol float64) bool {
	if len(a.dims) != len(b.dims) {
		return false
	}
	for i := range a.dims {
		if a.dims[i] != b.dims[i] {
			return false
		}
	}
	af, bf := a.Flatten(), b.Flatten()
	// Note: Flatten order differs between RowMajor and ColMajor arrays;
	// compare in a's index order by re-flattening b into a's order.
	if a.order != b.order {
		bf = b.Copy().transposeOrderTo(a.order).Flatten()
	}
	for i := range af {
		if math.Abs(af[i]-bf[i]) > tol {
			return false
		}
	}
	return true
}

// transposeOrderTo returns a contiguous copy holding the same logical
// elements but stored in the requested order.
func (a *Array) transposeOrderTo(order Order) *Array {
	out := New(order, a.dims...)
	idx := make([]int, len(a.dims))
	n := a.Len()
	for k := 0; k < n; k++ {
		out.Set(a.At(idx...), idx...)
		for i := len(idx) - 1; i >= 0; i-- {
			idx[i]++
			if idx[i] < a.dims[i] {
				break
			}
			idx[i] = 0
		}
	}
	return out
}

// String renders small arrays for debugging; large arrays render a summary.
func (a *Array) String() string {
	if a.Len() > 64 {
		return fmt.Sprintf("Array(dims=%v, %s, %d elements)", a.dims, a.order, a.Len())
	}
	var b strings.Builder
	fmt.Fprintf(&b, "Array(dims=%v, %s)[", a.dims, a.order)
	for i, v := range a.Flatten() {
		if i > 0 {
			b.WriteString(" ")
		}
		fmt.Fprintf(&b, "%g", v)
	}
	b.WriteString("]")
	return b.String()
}
