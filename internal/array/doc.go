// Package array provides the scientific data types the CCA paper's SIDL
// requires (§5): dynamically dimensioned multidimensional arrays with
// Fortran- or C-style storage order, complex-number arrays, and the
// distributed-array descriptors that collective ports (§6.3) use to
// describe how data is laid out across the ranks of a parallel component.
//
// The paper singles out "Fortran-style dynamic multidimensional arrays and
// complex numbers" as the abstractions missing from COM/CORBA/JavaBeans;
// this package is the Go realization of those IDL primitive types.
//
// The DataMap descriptors (dist.go) — block, cyclic, block-cyclic,
// serial, and the validated irregular run-list form (NewRunsMap) that
// cross-process plan exchange decodes from the wire — are what the
// collective-port planner intersects into message schedules. Experiment
// E4 exercises them in-process and experiment E11 across processes
// (cmd/bench -run e4,e11); the N-d array and complex types are exercised
// by the SIDL toolchain experiments (E1, E7).
package array
