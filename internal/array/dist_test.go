package array

import (
	"errors"
	"testing"
	"testing/quick"
)

func TestBlockMapRanges(t *testing.T) {
	m := NewBlockMap(10, 4)
	wantRanges := []IndexRange{{0, 3}, {3, 6}, {6, 8}, {8, 10}}
	for r, want := range wantRanges {
		if got := m.Range(r); got != want {
			t.Errorf("rank %d range = %v, want %v", r, got, want)
		}
		if m.LocalLen(r) != want.Len() {
			t.Errorf("rank %d local len = %d", r, m.LocalLen(r))
		}
	}
	if err := Validate(m); err != nil {
		t.Errorf("validate: %v", err)
	}
}

func TestBlockMapMoreRanksThanElements(t *testing.T) {
	m := NewBlockMap(2, 5)
	if err := Validate(m); err != nil {
		t.Errorf("validate: %v", err)
	}
	total := 0
	for r := 0; r < 5; r++ {
		total += m.LocalLen(r)
	}
	if total != 2 {
		t.Errorf("total owned = %d", total)
	}
}

func TestCyclicMapPureCyclic(t *testing.T) {
	m := NewCyclicMap(7, 3, 1)
	if err := Validate(m); err != nil {
		t.Fatalf("validate: %v", err)
	}
	// Elements 0..6 dealt to ranks 0,1,2,0,1,2,0.
	wantOwners := []int{0, 1, 2, 0, 1, 2, 0}
	for g, want := range wantOwners {
		rank, _, err := Owner(m, g)
		if err != nil {
			t.Fatal(err)
		}
		if rank != want {
			t.Errorf("owner(%d) = %d, want %d", g, rank, want)
		}
	}
	if m.LocalLen(0) != 3 || m.LocalLen(1) != 2 || m.LocalLen(2) != 2 {
		t.Errorf("local lens = %d %d %d", m.LocalLen(0), m.LocalLen(1), m.LocalLen(2))
	}
}

func TestCyclicMapBlockCyclic(t *testing.T) {
	m := NewCyclicMap(10, 2, 3)
	if err := Validate(m); err != nil {
		t.Fatalf("validate: %v", err)
	}
	// Blocks: [0,3)->0, [3,6)->1, [6,9)->0, [9,10)->1
	cases := []struct{ g, rank, local int }{
		{0, 0, 0}, {2, 0, 2}, {3, 1, 0}, {5, 1, 2},
		{6, 0, 3}, {8, 0, 5}, {9, 1, 3},
	}
	for _, tc := range cases {
		rank, local, err := Owner(m, tc.g)
		if err != nil {
			t.Fatal(err)
		}
		if rank != tc.rank || local != tc.local {
			t.Errorf("owner(%d) = (%d,%d), want (%d,%d)", tc.g, rank, local, tc.rank, tc.local)
		}
	}
}

func TestSerialMap(t *testing.T) {
	m := NewSerialMap(5)
	if err := Validate(m); err != nil {
		t.Fatalf("validate: %v", err)
	}
	rank, local, err := Owner(m, 4)
	if err != nil || rank != 0 || local != 4 {
		t.Errorf("owner = (%d,%d,%v)", rank, local, err)
	}
	if Validate(NewSerialMap(0)) != nil {
		t.Error("empty serial map should validate")
	}
}

func TestOwnerBounds(t *testing.T) {
	m := NewBlockMap(4, 2)
	if _, _, err := Owner(m, -1); !errors.Is(err, ErrBounds) {
		t.Errorf("err = %v", err)
	}
	if _, _, err := Owner(m, 4); !errors.Is(err, ErrBounds) {
		t.Errorf("err = %v", err)
	}
}

func TestIrregularMap(t *testing.T) {
	// Rank 0 owns [0,2) and [5,7); rank 1 owns [2,5).
	m, err := NewIrregularMap(7, [][]IndexRange{
		{{0, 2}, {5, 7}},
		{{2, 5}},
	})
	if err != nil {
		t.Fatal(err)
	}
	if m.LocalLen(0) != 4 || m.LocalLen(1) != 3 {
		t.Errorf("local lens %d %d", m.LocalLen(0), m.LocalLen(1))
	}
	rank, local, _ := Owner(m, 6)
	if rank != 0 || local != 3 {
		t.Errorf("owner(6) = (%d,%d), want (0,3)", rank, local)
	}
}

func TestIrregularMapRejectsGaps(t *testing.T) {
	_, err := NewIrregularMap(5, [][]IndexRange{{{0, 2}}, {{3, 5}}})
	if !errors.Is(err, ErrMap) {
		t.Errorf("gap err = %v", err)
	}
	_, err = NewIrregularMap(5, [][]IndexRange{{{0, 3}}, {{2, 5}}})
	if !errors.Is(err, ErrMap) {
		t.Errorf("overlap err = %v", err)
	}
}

func TestIntersect(t *testing.T) {
	cases := []struct{ a, b, want IndexRange }{
		{IndexRange{0, 5}, IndexRange{3, 8}, IndexRange{3, 5}},
		{IndexRange{0, 5}, IndexRange{5, 8}, IndexRange{5, 5}},
		{IndexRange{0, 2}, IndexRange{4, 8}, IndexRange{4, 4}},
		{IndexRange{0, 10}, IndexRange{2, 3}, IndexRange{2, 3}},
	}
	for _, tc := range cases {
		if got := tc.a.Intersect(tc.b); got.Len() != tc.want.Len() || (got.Len() > 0 && got != tc.want) {
			t.Errorf("%v ∩ %v = %v, want %v", tc.a, tc.b, got, tc.want)
		}
	}
}

// Property: every standard map validates and its runs' owners agree with
// Owner() for all indices.
func TestMapsSelfConsistentProperty(t *testing.T) {
	f := func(nRaw, pRaw, bRaw uint8) bool {
		n := int(nRaw) % 64
		p := int(pRaw)%8 + 1
		b := int(bRaw)%5 + 1
		maps := []DataMap{NewBlockMap(n, p), NewCyclicMap(n, p, b), NewSerialMap(n)}
		for _, m := range maps {
			if Validate(m) != nil {
				return false
			}
			for _, run := range m.Runs() {
				for g := run.Global.Lo; g < run.Global.Hi; g++ {
					rank, local, err := Owner(m, g)
					if err != nil || rank != run.Rank || local != run.Local+(g-run.Global.Lo) {
						return false
					}
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

// Property: total local lengths equal the global length.
func TestMapLocalLenSumProperty(t *testing.T) {
	f := func(nRaw, pRaw, bRaw uint8) bool {
		n := int(nRaw)
		p := int(pRaw)%16 + 1
		b := int(bRaw)%7 + 1
		for _, m := range []DataMap{NewBlockMap(n, p), NewCyclicMap(n, p, b)} {
			total := 0
			for r := 0; r < m.Ranks(); r++ {
				total += m.LocalLen(r)
			}
			if total != n {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}
