package array

import (
	"errors"
	"fmt"
	"sort"
)

// This file implements distributed-data descriptors: the "mapping of data
// (or processes participating)" that §6.3 of the CCA paper says a programmer
// must specify when creating a collective port. A DataMap describes how a
// 1-D global index space of length N is partitioned over P ranks. (Multi-
// dimensional arrays distribute their flattened natural order; the hydro and
// collective-port code uses this convention throughout.)
//
// All maps reduce to a canonical run-length form (Runs) that the collective
// port redistribution planner intersects pairwise, so arbitrary source and
// destination distributions compose — "collective ports are defined
// generally enough to allow data to be distributed arbitrarily in the
// connected components."

// ErrMap reports an invalid distribution descriptor.
var ErrMap = errors.New("array: invalid data map")

// IndexRange is a half-open range [Lo, Hi) of global indices.
type IndexRange struct{ Lo, Hi int }

// Len returns the number of indices in the range.
func (r IndexRange) Len() int { return r.Hi - r.Lo }

// Intersect returns the overlap of two ranges (possibly empty).
func (r IndexRange) Intersect(o IndexRange) IndexRange {
	lo, hi := r.Lo, r.Hi
	if o.Lo > lo {
		lo = o.Lo
	}
	if o.Hi < hi {
		hi = o.Hi
	}
	if hi < lo {
		hi = lo
	}
	return IndexRange{lo, hi}
}

// Run maps a contiguous global range to a contiguous local range on a rank:
// global index Global.Lo+k lives at local index Local+k on Rank.
type Run struct {
	Global IndexRange
	Rank   int
	Local  int
}

// DataMap describes a distribution of a global index space over ranks.
type DataMap interface {
	// GlobalLen returns the global element count N.
	GlobalLen() int
	// Ranks returns the number of participating ranks P.
	Ranks() int
	// LocalLen returns the number of elements owned by rank r.
	LocalLen(r int) int
	// Runs returns the full distribution in canonical run form: sorted by
	// Global.Lo, non-overlapping, exactly covering [0, N).
	Runs() []Run
	// String describes the map for diagnostics.
	String() string
}

// Validate checks that a DataMap's runs exactly tile [0,N) and respect rank
// and local-length invariants. It is used by tests and by the collective
// port planner to reject malformed custom maps.
func Validate(m DataMap) error {
	runs := m.Runs()
	n, p := m.GlobalLen(), m.Ranks()
	if p <= 0 {
		return fmt.Errorf("%w: %d ranks", ErrMap, p)
	}
	next := 0
	type localIval struct{ lo, hi int }
	perRank := make([][]localIval, p)
	for i, r := range runs {
		if r.Global.Lo != next {
			return fmt.Errorf("%w: run %d starts at %d, want %d", ErrMap, i, r.Global.Lo, next)
		}
		if r.Global.Hi < r.Global.Lo {
			return fmt.Errorf("%w: run %d is inverted", ErrMap, i)
		}
		if r.Rank < 0 || r.Rank >= p {
			return fmt.Errorf("%w: run %d names rank %d of %d", ErrMap, i, r.Rank, p)
		}
		if r.Local < 0 {
			return fmt.Errorf("%w: run %d has negative local offset", ErrMap, i)
		}
		perRank[r.Rank] = append(perRank[r.Rank], localIval{r.Local, r.Local + r.Global.Len()})
		next = r.Global.Hi
	}
	if next != n {
		return fmt.Errorf("%w: runs cover [0,%d), want [0,%d)", ErrMap, next, n)
	}
	// Per rank, the local intervals must exactly tile [0, LocalLen(r)) in
	// some order (local ordering is free to permute global ordering).
	for r := 0; r < p; r++ {
		ivals := perRank[r]
		sort.Slice(ivals, func(i, j int) bool { return ivals[i].lo < ivals[j].lo })
		at := 0
		for _, iv := range ivals {
			if iv.lo != at {
				return fmt.Errorf("%w: rank %d local storage has gap/overlap at %d", ErrMap, r, iv.lo)
			}
			at = iv.hi
		}
		if at != m.LocalLen(r) {
			return fmt.Errorf("%w: rank %d owns %d in runs but LocalLen=%d", ErrMap, r, at, m.LocalLen(r))
		}
	}
	return nil
}

// Owner locates the rank and local index owning a global index under m.
func Owner(m DataMap, g int) (rank, local int, err error) {
	if g < 0 || g >= m.GlobalLen() {
		return 0, 0, fmt.Errorf("%w: global index %d of %d", ErrBounds, g, m.GlobalLen())
	}
	runs := m.Runs()
	i := sort.Search(len(runs), func(i int) bool { return runs[i].Global.Hi > g })
	r := runs[i]
	return r.Rank, r.Local + (g - r.Global.Lo), nil
}

// BlockMap distributes N elements over P ranks in near-equal contiguous
// blocks: the standard distribution of the CCA paper's parallel numerical
// components.
type BlockMap struct {
	N, P int
}

// NewBlockMap constructs a block distribution.
func NewBlockMap(n, p int) BlockMap { return BlockMap{N: n, P: p} }

// GlobalLen implements DataMap.
func (m BlockMap) GlobalLen() int { return m.N }

// Ranks implements DataMap.
func (m BlockMap) Ranks() int { return m.P }

// Range returns the global range owned by rank r.
func (m BlockMap) Range(r int) IndexRange {
	base, rem := m.N/m.P, m.N%m.P
	var lo int
	if r < rem {
		lo = r * (base + 1)
		return IndexRange{lo, lo + base + 1}
	}
	lo = rem*(base+1) + (r-rem)*base
	return IndexRange{lo, lo + base}
}

// LocalLen implements DataMap.
func (m BlockMap) LocalLen(r int) int { return m.Range(r).Len() }

// Runs implements DataMap.
func (m BlockMap) Runs() []Run {
	runs := make([]Run, 0, m.P)
	for r := 0; r < m.P; r++ {
		g := m.Range(r)
		if g.Len() == 0 {
			continue
		}
		runs = append(runs, Run{Global: g, Rank: r, Local: 0})
	}
	return runs
}

func (m BlockMap) String() string { return fmt.Sprintf("block(n=%d,p=%d)", m.N, m.P) }

// CyclicMap distributes N elements over P ranks in blocks of size B dealt
// round-robin (block-cyclic; B=1 is pure cyclic). ScaLAPACK-style.
type CyclicMap struct {
	N, P, B int
}

// NewCyclicMap constructs a block-cyclic distribution with block size b.
func NewCyclicMap(n, p, b int) CyclicMap {
	if b <= 0 {
		b = 1
	}
	return CyclicMap{N: n, P: p, B: b}
}

// GlobalLen implements DataMap.
func (m CyclicMap) GlobalLen() int { return m.N }

// Ranks implements DataMap.
func (m CyclicMap) Ranks() int { return m.P }

// LocalLen implements DataMap.
func (m CyclicMap) LocalLen(r int) int {
	full := m.N / (m.P * m.B) // complete rounds
	n := full * m.B
	rem := m.N - full*m.P*m.B // leftover elements in the final partial round
	start := r * m.B
	if rem > start {
		extra := rem - start
		if extra > m.B {
			extra = m.B
		}
		n += extra
	}
	return n
}

// Runs implements DataMap.
func (m CyclicMap) Runs() []Run {
	var runs []Run
	local := make([]int, m.P)
	for lo := 0; lo < m.N; lo += m.B {
		hi := lo + m.B
		if hi > m.N {
			hi = m.N
		}
		r := (lo / m.B) % m.P
		runs = append(runs, Run{Global: IndexRange{lo, hi}, Rank: r, Local: local[r]})
		local[r] += hi - lo
	}
	return runs
}

func (m CyclicMap) String() string { return fmt.Sprintf("cyclic(n=%d,p=%d,b=%d)", m.N, m.P, m.B) }

// SerialMap places all N elements on a single rank: the descriptor of a
// serial component's side of a serial↔parallel collective connection, whose
// semantics §6.3 likens to broadcast/gather/scatter.
type SerialMap struct {
	N int
}

// NewSerialMap constructs a single-rank distribution.
func NewSerialMap(n int) SerialMap { return SerialMap{N: n} }

// GlobalLen implements DataMap.
func (m SerialMap) GlobalLen() int { return m.N }

// Ranks implements DataMap.
func (m SerialMap) Ranks() int { return 1 }

// LocalLen implements DataMap.
func (m SerialMap) LocalLen(r int) int { return m.N }

// Runs implements DataMap.
func (m SerialMap) Runs() []Run {
	if m.N == 0 {
		return nil
	}
	return []Run{{Global: IndexRange{0, m.N}, Rank: 0, Local: 0}}
}

func (m SerialMap) String() string { return fmt.Sprintf("serial(n=%d)", m.N) }

// IrregularMap is an explicit distribution: rank r owns the global index
// sets described by its ranges, in order. It describes mesh-partitioned
// data where ownership follows a partitioner rather than a formula.
type IrregularMap struct {
	n      int
	p      int
	runs   []Run
	locals []int
}

// NewIrregularMap builds a map from per-rank ordered global ranges.
// ranges[r] lists the global ranges owned by rank r, concatenated in local
// order. The ranges must exactly tile [0, n) across all ranks.
func NewIrregularMap(n int, ranges [][]IndexRange) (*IrregularMap, error) {
	p := len(ranges)
	m := &IrregularMap{n: n, p: p, locals: make([]int, p)}
	for r, rs := range ranges {
		local := 0
		for _, g := range rs {
			m.runs = append(m.runs, Run{Global: g, Rank: r, Local: local})
			local += g.Len()
		}
		m.locals[r] = local
	}
	sort.Slice(m.runs, func(i, j int) bool { return m.runs[i].Global.Lo < m.runs[j].Global.Lo })
	if err := Validate(m); err != nil {
		return nil, err
	}
	return m, nil
}

// NewRunsMap reconstructs a map directly from canonical runs. It is the
// decode side of a wire-serialized DataMap: a distribution crosses a
// process boundary as its run list (the only thing the collective planner
// consumes), and the receiver rebuilds a map whose canonical form — hence
// whose redistribution schedule — is identical to the sender's. The rank
// count is the largest rank named plus one; the runs are validated as an
// exact tiling of [0, n).
func NewRunsMap(n int, runs []Run) (*IrregularMap, error) {
	p := 0
	for _, r := range runs {
		if r.Rank >= p {
			p = r.Rank + 1
		}
	}
	if p == 0 {
		p = 1 // an empty map still needs one (empty) rank
	}
	m := &IrregularMap{n: n, p: p, runs: append([]Run(nil), runs...), locals: make([]int, p)}
	sort.Slice(m.runs, func(i, j int) bool { return m.runs[i].Global.Lo < m.runs[j].Global.Lo })
	for _, r := range m.runs {
		if r.Rank >= 0 && r.Rank < p {
			m.locals[r.Rank] += r.Global.Len()
		}
	}
	if err := Validate(m); err != nil {
		return nil, err
	}
	return m, nil
}

// GlobalLen implements DataMap.
func (m *IrregularMap) GlobalLen() int { return m.n }

// Ranks implements DataMap.
func (m *IrregularMap) Ranks() int { return m.p }

// LocalLen implements DataMap.
func (m *IrregularMap) LocalLen(r int) int { return m.locals[r] }

// Runs implements DataMap.
func (m *IrregularMap) Runs() []Run { return m.runs }

func (m *IrregularMap) String() string {
	return fmt.Sprintf("irregular(n=%d,p=%d,runs=%d)", m.n, m.p, len(m.runs))
}
