//go:build chaos

package dist

// Heavy chaos scenarios: the examples/remote topology over real TCP with
// long stalls, sustained frame loss, and kill/restart cycles concurrent
// with an in-flight solve. Too slow for tier-1; CI runs them under
// `go test -race -tags chaos -run TestChaosHeavy ./internal/dist/`.

import (
	"fmt"
	"math"
	"testing"
	"time"

	"repro/internal/orb"
	"repro/internal/transport"
)

// heavyOpts allows long stalls (CallTimeout must exceed the 200ms injected
// delay or every stalled frame would be misread as a loss) and a deep retry
// budget so multi-hundred-ms outages are ridden out.
func heavyOpts() orb.SupervisorOptions {
	o := chaosOpts()
	o.CallTimeout = 500 * time.Millisecond
	o.MaxAttempts = 12
	return o
}

func TestChaosHeavyStalls200ms(t *testing.T) {
	// 5% of frames stall for 200ms — the ISSUE's slow-network scenario.
	// Stalls stay under CallTimeout, so they cost latency, never retries,
	// and never the answer.
	c := newChaosTopologyOn(t, transport.TCP{}, "127.0.0.1:0",
		transport.Faults{Seed: 42, DelayProb: 0.05, Delay: 200 * time.Millisecond}, 8, heavyOpts())
	c.solveAndCheck()
	if st := c.tr.Stats(); st.Delays == 0 {
		t.Error("no frames delayed: scenario did not exercise the fault plan")
	}
}

func TestChaosHeavyFrameDrop1Percent(t *testing.T) {
	// Sustained 1% loss over TCP across a larger solve.
	c := newChaosTopologyOn(t, transport.TCP{}, "127.0.0.1:0",
		transport.Faults{Seed: 42, DropProb: 0.01}, 16, heavyOpts())
	for i := 0; i < 3; i++ {
		c.solveAndCheck()
	}
	if st := c.tr.Stats(); st.Drops == 0 {
		t.Error("no frames dropped: scenario did not exercise the fault plan")
	}
}

func TestChaosHeavyKillRestartDuringSolve(t *testing.T) {
	// The server process dies and comes back — twice — while a solve is in
	// flight. Every frame is also slowed slightly so the solve is long
	// enough to straddle the outages. The solver must converge to the
	// clean answer with no visible failure.
	c := newChaosTopologyOn(t, transport.TCP{}, "127.0.0.1:0",
		transport.Faults{Seed: 9, DelayProb: 1, Delay: 2 * time.Millisecond}, 16, heavyOpts())

	errc := make(chan error, 1)
	go func() {
		x := make([]float64, c.m.NRows)
		if _, err := c.solver.Solve(c.b, &x); err != nil {
			errc <- fmt.Errorf("solve during outages: %w", err)
			return
		}
		for i, v := range x {
			if math.Abs(v-1) > 1e-6 {
				errc <- fmt.Errorf("x[%d] = %v: chaos changed the answer", i, v)
				return
			}
		}
		errc <- nil
	}()

	for cycle := 0; cycle < 2; cycle++ {
		time.Sleep(80 * time.Millisecond)
		c.killServer()
		time.Sleep(120 * time.Millisecond)
		c.startServer()
	}
	select {
	case err := <-errc:
		if err != nil {
			t.Fatal(err)
		}
	case <-time.After(60 * time.Second):
		t.Fatal("solve did not finish after kill/restart cycles")
	}
	// A clean re-solve after the chaos confirms the topology healed fully.
	c.solveAndCheck()
}

func TestChaosHeavySoak(t *testing.T) {
	// Everything at once, repeatedly: drops, stalls, and periodic severs
	// under continuous solving.
	c := newChaosTopologyOn(t, transport.TCP{}, "127.0.0.1:0", transport.Faults{
		Seed:      5,
		DropProb:  0.02,
		DelayProb: 0.05,
		Delay:     10 * time.Millisecond,
	}, 10, heavyOpts())
	for i := 0; i < 5; i++ {
		c.solveAndCheck()
		if i == 2 {
			c.tr.SeverAll()
		}
	}
}
