package dist

import (
	"errors"
	"fmt"

	"repro/internal/cca"
	"repro/internal/cca/framework"
	"repro/internal/esi"
	"repro/internal/obs"
	"repro/internal/orb"
	"repro/internal/sidl/sreflect"
	"repro/internal/transport"
)

// ErrDist reports distributed-connection failures.
var ErrDist = errors.New("dist: distributed connection error")

// Distributed-topology counters: how many ports this process has exported
// and how many remote proxies it has installed.
var (
	cExports        = obs.NewCounter("dist.exports")
	cRemoteInstalls = obs.NewCounter("dist.remote_installs")
)

// exportServer is the serving surface an Exporter publishes through —
// a single *orb.Server or an *orb.ServerPool shard group.
type exportServer interface {
	Addr() string
	Stop()
}

// Exporter publishes provides ports from a framework over a transport.
type Exporter struct {
	FW     *framework.Framework
	OA     *orb.ObjectAdapter
	server exportServer
}

// NewExporter creates an exporter for fw and starts serving on l.
func NewExporter(fw *framework.Framework, l transport.Listener) *Exporter {
	oa := orb.NewObjectAdapter()
	return &Exporter{FW: fw, OA: oa, server: orb.Serve(oa, l)}
}

// NewExporterShards creates an exporter serving a shard group at a
// scheme-qualified address (orb.ServeShards): Addr returns the
// comma-separated shard list clients hand to orb.DialAddr, which
// rendezvous-hashes object keys across the shards.
func NewExporterShards(fw *framework.Framework, addr string, shards int) (*Exporter, error) {
	oa := orb.NewObjectAdapter()
	pool, err := orb.ServeShards(oa, addr, shards, orb.ServeOptions{})
	if err != nil {
		return nil, err
	}
	return &Exporter{FW: fw, OA: oa, server: pool}, nil
}

// Addr reports the served address for clients to dial.
func (e *Exporter) Addr() string { return e.server.Addr() }

// Close stops serving.
func (e *Exporter) Close() { e.server.Stop() }

// Export publishes component's provides port under the object key
// "component/port". The port's SIDL type must be registered in the global
// reflection registry (generated bindings do this automatically).
func (e *Exporter) Export(component, port string) (key string, err error) {
	svc, ok := e.FW.Services(component)
	if !ok {
		return "", fmt.Errorf("%w: no component %q", ErrDist, component)
	}
	info, ok := svc.PortInfo(port)
	if !ok {
		return "", fmt.Errorf("%w: %s has no port %q", ErrDist, component, port)
	}
	ti, ok := sreflect.Global.Lookup(info.Type)
	if !ok {
		return "", fmt.Errorf("%w: no reflection metadata for port type %q", ErrDist, info.Type)
	}
	// Fetch the provider's registered value through a scratch uses port on
	// a probe component — the framework is the only sanctioned path to a
	// provides port (§6.1).
	probe := &probeComponent{portType: info.Type}
	probeName := "dist.probe." + component + "." + port
	if err := e.FW.Install(probeName, probe); err != nil {
		return "", err
	}
	defer e.FW.Remove(probeName) //nolint:errcheck // best-effort cleanup
	id, err := e.FW.Connect(probeName, "target", component, port)
	if err != nil {
		return "", err
	}
	defer e.FW.Disconnect(id) //nolint:errcheck
	impl, err := probe.svc.GetPort("target")
	if err != nil {
		return "", err
	}
	key = component + "/" + port
	if err := e.OA.Register(key, ti, impl); err != nil {
		return "", err
	}
	cExports.Inc()
	return key, nil
}

// probeComponent is the exporter's internal uses-port holder.
type probeComponent struct {
	portType string
	svc      cca.Services
}

func (p *probeComponent) SetServices(svc cca.Services) error {
	p.svc = svc
	return svc.RegisterUsesPort(cca.PortInfo{Name: "target", Type: p.portType})
}

// Caller is the ORB client surface a RemotePort forwards through. Both the
// bare *orb.Client and the supervised *orb.Supervised satisfy it, so every
// typed adapter works identically over an unsupervised or a self-healing
// connection.
type Caller interface {
	Invoke(key, method string, args ...any) ([]any, error)
	InvokeOneway(key, method string, args ...any) error
	Close() error
}

var (
	_ Caller = (*orb.Client)(nil)
	_ Caller = (*orb.Supervised)(nil)
)

// RemotePort is a generic dynamic proxy for an exported port: Call forwards
// a method by SIDL name through the ORB. Typed adapters (RemoteOperator,
// RemoteMatrixData) wrap it with compile-time interfaces.
type RemotePort struct {
	Client Caller
	Key    string
	Type   string
}

// Dial connects to an exporter and binds an exported key.
func Dial(tr transport.Transport, addr, key, portType string) (*RemotePort, error) {
	c, err := orb.DialClient(tr, addr)
	if err != nil {
		return nil, err
	}
	return &RemotePort{Client: c, Key: key, Type: portType}, nil
}

// DialSupervised connects to an exporter under supervision: the connection
// redials with backoff after loss, idempotent methods retry transparently,
// and a circuit breaker sheds calls from a dead peer. The ESI operator
// surface is read-only, so every method is marked idempotent by default
// when opts.Idempotent is nil.
func DialSupervised(tr transport.Transport, addr, key, portType string, opts orb.SupervisorOptions) (*RemotePort, error) {
	if opts.Idempotent == nil {
		opts.Idempotent = orb.AllIdempotent
	}
	s, err := orb.DialSupervised(tr, addr, opts)
	if err != nil {
		return nil, err
	}
	return &RemotePort{Client: s, Key: key, Type: portType}, nil
}

// Call invokes a remote method by SIDL method name.
func (r *RemotePort) Call(method string, args ...any) ([]any, error) {
	return r.Client.Invoke(r.Key, method, args...)
}

// Close releases the client connection.
func (r *RemotePort) Close() error { return r.Client.Close() }

// --- typed ESI adapters ---

// RemoteOperator adapts a RemotePort to the generated EsiOperator
// interface, so a SolverComponent can be connected to a matrix living in
// another framework (possibly another machine) without modification.
type RemoteOperator struct {
	R *RemotePort
}

var _ esi.EsiOperator = (*RemoteOperator)(nil)

// TypeName implements EsiObject.
func (o *RemoteOperator) TypeName() string {
	res, err := o.R.Call("typeName")
	if err != nil || len(res) != 1 {
		return "remote:" + o.R.Key
	}
	s, _ := res[0].(string)
	return s
}

// Rows implements EsiOperator.
func (o *RemoteOperator) Rows() int32 {
	res, err := o.R.Call("rows")
	if err != nil || len(res) != 1 {
		return 0
	}
	n, _ := res[0].(int32)
	return n
}

// Apply implements EsiOperator. The inout y crosses the wire by value:
// marshaled out, result marshaled back — the honest cost of a distributed
// connection.
func (o *RemoteOperator) Apply(x []float64, y *[]float64) error {
	if y == nil {
		return fmt.Errorf("%w: nil output", ErrDist)
	}
	res, err := o.R.Call("apply", x, *y)
	if err != nil {
		return err
	}
	if len(res) != 1 {
		return fmt.Errorf("%w: apply returned %d values", ErrDist, len(res))
	}
	out, ok := res[0].([]float64)
	if !ok {
		return fmt.Errorf("%w: apply returned %T", ErrDist, res[0])
	}
	*y = out
	return nil
}

// RemoteMatrixData extends RemoteOperator with the MatrixData queries.
type RemoteMatrixData struct {
	RemoteOperator
}

var _ esi.EsiMatrixData = (*RemoteMatrixData)(nil)

// Nonzeros implements EsiMatrixData.
func (m *RemoteMatrixData) Nonzeros() int32 {
	res, err := m.R.Call("nonzeros")
	if err != nil || len(res) != 1 {
		return 0
	}
	n, _ := res[0].(int32)
	return n
}

// Diagonal implements EsiMatrixData.
func (m *RemoteMatrixData) Diagonal(d *[]float64) error {
	if d == nil {
		return fmt.Errorf("%w: nil output", ErrDist)
	}
	res, err := m.R.Call("diagonal", *d)
	if err != nil {
		return err
	}
	if len(res) != 1 {
		return fmt.Errorf("%w: diagonal returned %d values", ErrDist, len(res))
	}
	out, ok := res[0].([]float64)
	if !ok {
		return fmt.Errorf("%w: diagonal returned %T", ErrDist, res[0])
	}
	*d = out
	return nil
}

// ProxyComponent installs a remote port into a local framework as an
// ordinary provides port: the §6.1 "proxy intermediary". The local using
// component connects to it exactly as it would to a direct provider.
type ProxyComponent struct {
	PortName string
	PortType string
	Port     cca.Port
}

// SetServices implements cca.Component.
func (p *ProxyComponent) SetServices(svc cca.Services) error {
	return svc.AddProvidesPort(p.Port, cca.PortInfo{
		Name: p.PortName,
		Type: p.PortType,
		Properties: map[string]string{
			"distributed": "true",
		},
	})
}

// RequiredFlavor declares the distributed compliance requirement.
func (p *ProxyComponent) RequiredFlavor() cca.Flavor { return cca.FlavorDistributed }

// InstallRemoteOperator dials an exported esi.Operator/esi.MatrixData port
// and installs a proxy component named instance providing it locally as
// port "A".
func InstallRemoteOperator(fw *framework.Framework, instance string, tr transport.Transport, addr, key, portType string) (*RemotePort, error) {
	rp, err := Dial(tr, addr, key, portType)
	if err != nil {
		return nil, err
	}
	var port cca.Port
	switch portType {
	case esi.TypeMatrixData:
		port = &RemoteMatrixData{RemoteOperator{R: rp}}
	case esi.TypeOperator:
		port = &RemoteOperator{R: rp}
	default:
		rp.Close()
		return nil, fmt.Errorf("%w: no typed adapter for %q", ErrDist, portType)
	}
	if err := fw.Install(instance, &ProxyComponent{PortName: "A", PortType: portType, Port: port}); err != nil {
		rp.Close()
		return nil, err
	}
	cRemoteInstalls.Inc()
	return rp, nil
}

// HealthFor maps supervised connection states onto the configuration API's
// connection health values. Remote-port installers — both the scalar ones
// here and the collective one in repro/internal/dist/collective — use it to
// bridge orb.SupervisorOptions.OnState transitions to framework health
// events, so every remote flavor reports link health identically.
func HealthFor(s orb.ConnState) cca.Health {
	switch s {
	case orb.StateDegraded:
		return cca.HealthDegraded
	case orb.StateBroken:
		return cca.HealthBroken
	default:
		return cca.HealthHealthy
	}
}

// InstallSupervisedRemoteOperator is InstallRemoteOperator over a
// supervised connection: the proxy component's provides port redials,
// retries, and circuit-breaks per opts, and every supervision state change
// is surfaced through the framework's event mechanism as a
// ConnectionDegraded / ConnectionBroken / ConnectionRestored event on the
// proxy's port — so builders and tools observe remote-link health through
// the same configuration API they already use (§5).
func InstallSupervisedRemoteOperator(fw *framework.Framework, instance string, tr transport.Transport, addr, key, portType string, opts orb.SupervisorOptions) (*RemotePort, error) {
	// Bridge supervision transitions to framework health events. The
	// supervisor may fire before Install completes (initial dial retries);
	// SetPortHealth on a not-yet-installed component is a harmless error.
	if opts.OnState == nil {
		opts.OnState = func(s orb.ConnState, cause error) {
			_ = fw.SetPortHealth(instance, "A", HealthFor(s), cause)
		}
	}
	rp, err := DialSupervised(tr, addr, key, portType, opts)
	if err != nil {
		return nil, err
	}
	var port cca.Port
	switch portType {
	case esi.TypeMatrixData:
		port = &RemoteMatrixData{RemoteOperator{R: rp}}
	case esi.TypeOperator:
		port = &RemoteOperator{R: rp}
	default:
		rp.Close()
		return nil, fmt.Errorf("%w: no typed adapter for %q", ErrDist, portType)
	}
	if err := fw.Install(instance, &ProxyComponent{PortName: "A", PortType: portType, Port: port}); err != nil {
		rp.Close()
		return nil, err
	}
	cRemoteInstalls.Inc()
	return rp, nil
}

// RemoteMonitor adapts an exported cca.ports.Monitor provides port: Observe
// is forwarded as a oneway (fire-and-forget) invocation, matching the SIDL
// declaration `oneway void observe(...)` — the paper's loosely coupled
// monitoring channel, where the simulation must never block on a slow
// visualization consumer.
type RemoteMonitor struct {
	R *RemotePort
}

// Observe forwards one frame without awaiting completion.
func (m *RemoteMonitor) Observe(step int32, data []float64) {
	// Errors are deliberately dropped: oneway semantics.
	_ = m.R.Client.InvokeOneway(m.R.Key, "observe", step, data)
}
