package dist

// Cohort death bridge: a rank dying inside an SPMD cohort is the same
// failure, from a component's point of view, as a severed distributed
// connection — a peer the port depends on is gone. GuardCohort routes
// mpi rank-death notifications into the framework's port-health surface
// so builders and monitors observe cohort failures through the identical
// configuration API (ConnectionBroken events, PortHealth, typed GetPort
// errors) that dist supervision already uses for remote links.

import (
	"repro/internal/cca"
	"repro/internal/cca/framework"
	"repro/internal/mpi"
	"repro/internal/orb"
)

// CohortCallError wraps a cohort communication failure in the orb error
// taxonomy. Rank death unwraps to transport.ErrClosed and classifies
// retryable — the launcher can respawn the rank and the cohort re-forms —
// while a revoked communicator (used after finalize) is a programming
// error and classifies fatal. Nil maps to nil.
func CohortCallError(err error) *orb.CallError {
	if err == nil {
		return nil
	}
	return &orb.CallError{Class: orb.Classify(err), Err: err}
}

// GuardCohort arranges for the death of any peer rank in proc's cohort to
// mark the component's provides port Broken, with the classified death
// error as cause. The registration is immediate-past-inclusive: if a rank
// already died, the port breaks now. Returns an error if the component or
// port does not exist.
func GuardCohort(fw *framework.Framework, proc *mpi.Proc, component, port string) error {
	if _, err := fw.PortHealth(component, port); err != nil {
		return err
	}
	proc.OnRankDeath(func(rank int, err error) {
		// CohortCallError returns a typed *orb.CallError; callers probing
		// the event cause can recover both the class and the dead rank.
		_ = fw.SetPortHealth(component, port, cca.HealthBroken, CohortCallError(err))
	})
	return nil
}
