package dist

// Chaos suite: the examples/remote topology (a solver framework connected
// to an operator exported from another framework) driven under a Faulty
// transport. Each scenario asserts the supervised distributed connection
// converges to the same answer a clean run produces — the robustness
// counterpart of claim C1: supervision may add latency, never wrong
// answers. Heavier long-running scenarios live in chaos_heavy_test.go
// behind the `chaos` build tag; this file is deterministic and fast enough
// for tier-1.

import (
	"errors"
	"math"
	"sync"
	"testing"
	"time"

	"repro/internal/cca"
	"repro/internal/cca/framework"
	"repro/internal/esi"
	"repro/internal/linalg"
	"repro/internal/mpi"
	"repro/internal/orb"
	"repro/internal/transport"
)

// chaosOpts is the supervision tuning the chaos scenarios run under: tight
// backoff so tests are fast, per-attempt call timeouts so dropped frames
// turn into retries, a low breaker threshold so Broken is reachable.
func chaosOpts() orb.SupervisorOptions {
	return orb.SupervisorOptions{
		ConnectTimeout:   5 * time.Second,
		RetryBase:        time.Millisecond,
		RetryCap:         25 * time.Millisecond,
		MaxAttempts:      8,
		CallTimeout:      100 * time.Millisecond,
		BreakerThreshold: 3,
		BreakerCooldown:  15 * time.Millisecond,
	}
}

// eventTrap records framework configuration events and lets tests wait for
// a specific kind.
type eventTrap struct {
	mu     sync.Mutex
	events []cca.Event
	ch     chan cca.EventKind
}

func newEventTrap() *eventTrap { return &eventTrap{ch: make(chan cca.EventKind, 256)} }

func (e *eventTrap) OnEvent(ev cca.Event) {
	e.mu.Lock()
	e.events = append(e.events, ev)
	e.mu.Unlock()
	select {
	case e.ch <- ev.Kind:
	default:
	}
}

func (e *eventTrap) wait(t *testing.T, kind cca.EventKind) {
	t.Helper()
	deadline := time.After(10 * time.Second)
	for {
		select {
		case k := <-e.ch:
			if k == kind {
				return
			}
		case <-deadline:
			t.Fatalf("timed out waiting for %v event (saw %v)", kind, e.kinds())
		}
	}
}

func (e *eventTrap) kinds() []cca.EventKind {
	e.mu.Lock()
	defer e.mu.Unlock()
	out := make([]cca.EventKind, len(e.events))
	for i, ev := range e.events {
		out[i] = ev.Kind
	}
	return out
}

// chaosTopology builds the examples/remote topology under a Faulty
// transport: server framework exporting a matrix, client framework with a
// supervised proxy component and an unmodified CG solver connected to it.
type chaosTopology struct {
	t      *testing.T
	tr     *transport.Faulty
	addr   string
	m      *linalg.CSR
	server *framework.Framework
	exp    *Exporter
	key    string
	client *framework.Framework
	trap   *eventTrap
	rp     *RemotePort
	solver esi.EsiSolver
	b      []float64
}

func newChaosTopology(t *testing.T, addr string, faults transport.Faults, n int) *chaosTopology {
	t.Helper()
	return newChaosTopologyOn(t, &transport.InProc{}, addr, faults, n, chaosOpts())
}

// newChaosTopologyOn builds the topology over any inner transport (the
// heavy tagged suite uses TCP).
func newChaosTopologyOn(t *testing.T, inner transport.Transport, addr string, faults transport.Faults, n int, opts orb.SupervisorOptions) *chaosTopology {
	t.Helper()
	c := &chaosTopology{
		t:    t,
		tr:   transport.NewFaulty(inner, faults),
		addr: addr,
		m:    linalg.Poisson2D(n, n),
	}
	c.server = framework.New(framework.Options{})
	if err := c.server.Install("op", esi.NewOperatorComponent(c.m)); err != nil {
		t.Fatal(err)
	}
	c.startServer()

	c.client = framework.New(framework.Options{
		Flavor:    cca.FlavorInProcess | cca.FlavorDistributed,
		TypeCheck: esi.TypeChecker(),
	})
	c.trap = newEventTrap()
	c.client.AddEventListener(c.trap)
	rp, err := InstallSupervisedRemoteOperator(c.client, "remoteA", c.tr, c.addr, c.key, esi.TypeMatrixData, opts)
	if err != nil {
		t.Fatal(err)
	}
	c.rp = rp
	if err := c.client.Install("solver", esi.NewSolverComponent("cg")); err != nil {
		t.Fatal(err)
	}
	if _, err := c.client.Connect("solver", "A", "remoteA", "A"); err != nil {
		t.Fatal(err)
	}
	comp, _ := c.client.Component("solver")
	c.solver = comp.(esi.EsiSolver)
	c.solver.SetTolerance(1e-9)
	c.b = make([]float64, c.m.NRows)
	if err := c.m.Apply(linalg.Ones(c.m.NCols), c.b); err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() {
		rp.Close()
		if c.exp != nil {
			c.exp.Close()
		}
	})
	return c
}

// startServer (re)exports the operator on the topology's address — the
// "restart" half of kill-and-restart.
func (c *chaosTopology) startServer() {
	c.t.Helper()
	l, err := c.tr.Listen(c.addr)
	if err != nil {
		c.t.Fatalf("listen %s: %v", c.addr, err)
	}
	c.exp = NewExporter(c.server, l)
	// Pin the concrete address (TCP "127.0.0.1:0" resolves to a real
	// port) so restarts rebind and the client redials the same endpoint.
	c.addr = c.exp.Addr()
	key, err := c.exp.Export("op", "A")
	if err != nil {
		c.t.Fatal(err)
	}
	c.key = key
}

// killServer stops the exporter, severing every live connection.
func (c *chaosTopology) killServer() {
	c.exp.Close()
	c.exp = nil
	c.tr.SeverAll()
}

// solveAndCheck runs the CG solve and asserts it converges to the all-ones
// solution — the same answer a clean (fault-free) run produces.
func (c *chaosTopology) solveAndCheck() {
	c.t.Helper()
	x := make([]float64, c.m.NRows)
	iters, err := c.solver.Solve(c.b, &x)
	if err != nil {
		c.t.Fatalf("solve under chaos: %v", err)
	}
	if iters == 0 {
		c.t.Fatal("no iterations")
	}
	for i, v := range x {
		if math.Abs(v-1) > 1e-6 {
			c.t.Fatalf("x[%d] = %v: chaos changed the answer", i, v)
		}
	}
}

func TestChaosSolveUnderFrameDrop(t *testing.T) {
	// Frames vanish at random. Every ESI method is idempotent, so each
	// dropped request or reply costs one CallTimeout and a transparent
	// retry; the solve must still converge to the clean answer.
	c := newChaosTopology(t, "chaos-drop", transport.Faults{Seed: 42, DropProb: 0.05}, 8)
	c.solveAndCheck()
	if st := c.tr.Stats(); st.Drops == 0 {
		t.Error("no frames dropped: scenario did not exercise the fault plan")
	}
}

func TestChaosSolveUnderStalls(t *testing.T) {
	// A third of frames stall. Slow frames are not failures: no retry
	// fires (the delay is under CallTimeout) and the answer is unchanged.
	c := newChaosTopology(t, "chaos-stall",
		transport.Faults{Seed: 42, DelayProb: 0.3, Delay: 2 * time.Millisecond}, 8)
	c.solveAndCheck()
	if st := c.tr.Stats(); st.Delays == 0 {
		t.Error("no frames delayed: scenario did not exercise the fault plan")
	}
}

func TestChaosKillAndRestartServer(t *testing.T) {
	// The full supervised lifecycle, observed through the framework's
	// configuration API: kill the server mid-session (Degraded, then
	// Broken once the breaker trips), verify getPort sheds with a typed
	// error instead of hanging, restart the server (Restored), and solve
	// again to the same answer.
	c := newChaosTopology(t, "chaos-kill", transport.Faults{Seed: 7}, 6)
	c.solveAndCheck()

	c.killServer()
	c.trap.wait(t, cca.EventConnectionDegraded)
	c.trap.wait(t, cca.EventConnectionBroken)

	// Broken connection: the framework-mediated path fails fast and typed.
	svc, ok := c.client.Services("solver")
	if !ok {
		t.Fatal("no solver services")
	}
	if _, err := svc.GetPort("A"); !errors.Is(err, cca.ErrConnectionBroken) {
		t.Errorf("GetPort on broken connection = %v, want ErrConnectionBroken", err)
	}
	if h, err := c.client.PortHealth("remoteA", "A"); err != nil || h != cca.HealthBroken {
		t.Errorf("PortHealth = %v, %v, want broken", h, err)
	}

	c.startServer()
	c.trap.wait(t, cca.EventConnectionRestored)
	if _, err := svc.GetPort("A"); err != nil {
		t.Errorf("GetPort after restore: %v", err)
	}
	c.solveAndCheck()
}

// startCohortChaos forms an n-rank process-backend cohort over an inproc
// rendezvous and returns its comms and procs (test-owned; close what the
// scenario does not kill).
func startCohortChaos(t *testing.T, n int, addr string) ([]*mpi.Comm, []*mpi.Proc) {
	t.Helper()
	tr, rest, err := transport.ForScheme(addr)
	if err != nil {
		t.Fatal(err)
	}
	l, err := tr.Listen(rest)
	if err != nil {
		t.Fatal(err)
	}
	rv := mpi.NewRendezvous(l, n)
	t.Cleanup(func() { rv.Close() })
	comms := make([]*mpi.Comm, n)
	procs := make([]*mpi.Proc, n)
	errs := make([]error, n)
	var wg sync.WaitGroup
	for r := 0; r < n; r++ {
		wg.Add(1)
		go func(r int) {
			defer wg.Done()
			comms[r], procs[r], errs[r] = mpi.JoinConfig(mpi.ProcConfig{
				Rendezvous: addr, Rank: r, Size: n, Timeout: 10 * time.Second,
			})
		}(r)
	}
	wg.Wait()
	for r, err := range errs {
		if err != nil {
			t.Fatalf("rank %d join: %v", r, err)
		}
	}
	return comms, procs
}

func TestChaosRankDeathMidAllreduce(t *testing.T) {
	// A 4-rank SPMD cohort where each rank runs a framework guarding a
	// provides port on cohort liveness. Rank 3 is killed while the
	// survivors are blocked inside an Allreduce: the collective must fail
	// typed (RankDeadError, retryable under orb.Classify, unwrapping to
	// transport.ErrClosed) instead of hanging, and the failure must surface
	// through the configuration API as ConnectionBroken + PortHealth just
	// like a severed remote link. Using a revoked communicator afterwards
	// is the fatal half of the taxonomy.
	const n = 4
	comms, procs := startCohortChaos(t, n, "inproc://chaos-cohort")

	fws := make([]*framework.Framework, n)
	traps := make([]*eventTrap, n)
	for r := 0; r < n; r++ {
		fws[r] = framework.New(framework.Options{})
		traps[r] = newEventTrap()
		fws[r].AddEventListener(traps[r])
		if err := fws[r].Install("op", esi.NewOperatorComponent(linalg.Poisson2D(4, 4))); err != nil {
			t.Fatal(err)
		}
		if err := GuardCohort(fws[r], procs[r], "op", "A"); err != nil {
			t.Fatal(err)
		}
	}
	if err := GuardCohort(fws[0], procs[0], "op", "nope"); err == nil {
		t.Error("GuardCohort accepted an unknown port")
	}

	// Lockstep rounds: rank 3 leaves after round 3, so every survivor is
	// blocked inside round 4's Allreduce when the kill lands.
	const lastFullRound = 3
	survivorErr := make([]error, n)
	rank3Done := make(chan struct{})
	var wg sync.WaitGroup
	for r := 0; r < n; r++ {
		wg.Add(1)
		go func(r int) {
			defer wg.Done()
			for round := 1; ; round++ {
				got, err := comms[r].AllreduceScalar(1, mpi.Sum)
				if err != nil {
					survivorErr[r] = err
					return
				}
				if got != n {
					t.Errorf("rank %d round %d allreduce = %v, want %d", r, round, got, n)
				}
				if r == 3 && round == lastFullRound {
					close(rank3Done)
					return
				}
			}
		}(r)
	}
	<-rank3Done
	time.Sleep(20 * time.Millisecond) // survivors enter round 4 and block
	procs[3].Kill()
	wg.Wait()

	for _, r := range []int{0, 1, 2} {
		err := survivorErr[r]
		var dead *mpi.RankDeadError
		if !errors.As(err, &dead) {
			t.Fatalf("rank %d mid-allreduce death = %v, want RankDeadError", r, err)
		}
		if dead.Rank != 3 {
			t.Errorf("rank %d saw dead rank %d, want 3", r, dead.Rank)
		}
		if !errors.Is(err, transport.ErrClosed) {
			t.Errorf("rank %d death error does not unwrap to transport.ErrClosed: %v", r, err)
		}
		if c := orb.Classify(err); c != orb.ClassRetryable {
			t.Errorf("rank %d death classified %v, want retryable", r, c)
		}
		// The guarded port broke, observable exactly like a severed remote
		// connection: the event fires and PortHealth reports Broken with a
		// classified cause.
		traps[r].wait(t, cca.EventConnectionBroken)
		if h, err := fws[r].PortHealth("op", "A"); err != nil || h != cca.HealthBroken {
			t.Errorf("rank %d PortHealth = %v, %v, want broken", r, h, err)
		}
	}

	// Fatal half: a finalized communicator is revoked, which is a caller
	// bug, not a recoverable fault.
	procs[0].Close()
	if err := comms[0].Send(1, 1, nil); !errors.Is(err, mpi.ErrCommRevoked) {
		t.Fatalf("send on revoked comm = %v, want ErrCommRevoked", err)
	} else if c := orb.Classify(err); c != orb.ClassFatal {
		t.Errorf("revoked comm classified %v, want fatal", c)
	}
	if ce := CohortCallError(survivorErr[1]); ce == nil || ce.Class != orb.ClassRetryable {
		t.Errorf("CohortCallError(death) = %+v, want retryable CallError", ce)
	}
	if CohortCallError(nil) != nil {
		t.Error("CohortCallError(nil) != nil")
	}
	procs[1].Close()
	procs[2].Close()
}

func TestChaosSeveredMidSolveRecovers(t *testing.T) {
	// Connections are severed every 6 sends — several times within one
	// solve. The supervisor redials and retries inside the solver's Apply
	// calls; the solver never notices.
	c := newChaosTopology(t, "chaos-midsolve",
		transport.Faults{Seed: 13, SeverAfterSends: 6}, 8)
	c.solveAndCheck()
	if st := c.tr.Stats(); st.Severs == 0 {
		t.Error("no connections severed: scenario did not exercise the fault plan")
	}
}
