package dist

import (
	"errors"
	"math"
	"strings"
	"sync"
	"testing"

	"repro/internal/cca"
	"repro/internal/cca/framework"
	"repro/internal/esi"
	"repro/internal/linalg"
	"repro/internal/transport"
)

// exportOperator builds a "server" framework hosting an OperatorComponent,
// exports its A port, and returns the exporter.
func exportOperator(t *testing.T, tr transport.Transport, addr string, m *linalg.CSR) (*Exporter, string) {
	t.Helper()
	server := framework.New(framework.Options{})
	if err := server.Install("op", esi.NewOperatorComponent(m)); err != nil {
		t.Fatal(err)
	}
	l, err := tr.Listen(addr)
	if err != nil {
		t.Fatal(err)
	}
	exp := NewExporter(server, l)
	key, err := exp.Export("op", "A")
	if err != nil {
		t.Fatal(err)
	}
	if key != "op/A" {
		t.Fatalf("key = %q", key)
	}
	return exp, key
}

func TestRemoteOperatorRoundTrip(t *testing.T) {
	tr := &transport.InProc{}
	m := linalg.Laplace1D(6)
	exp, key := exportOperator(t, tr, "srv", m)
	defer exp.Close()

	rp, err := Dial(tr, "srv", key, esi.TypeMatrixData)
	if err != nil {
		t.Fatal(err)
	}
	defer rp.Close()
	remote := &RemoteMatrixData{RemoteOperator{R: rp}}

	if remote.Rows() != 6 || remote.Nonzeros() != int32(m.NNZ()) {
		t.Errorf("rows=%d nnz=%d", remote.Rows(), remote.Nonzeros())
	}
	if got := remote.TypeName(); got != "esi.OperatorComponent" {
		t.Errorf("typeName = %q", got)
	}
	x := linalg.Ones(6)
	var y []float64
	if err := remote.Apply(x, &y); err != nil {
		t.Fatal(err)
	}
	want := make([]float64, 6)
	if err := m.Apply(x, want); err != nil {
		t.Fatal(err)
	}
	for i := range want {
		if y[i] != want[i] {
			t.Fatalf("y[%d] = %v, want %v", i, y[i], want[i])
		}
	}
	var d []float64
	if err := remote.Diagonal(&d); err != nil || len(d) != 6 || d[0] != 2 {
		t.Errorf("diagonal = %v, %v", d, err)
	}
}

// TestSolveAgainstRemoteOperator is the paper's distributed-connection
// scenario: an unmodified SolverComponent solves against an operator living
// in another framework, connected through a proxy component — "without the
// components being aware of the connection type."
func TestSolveAgainstRemoteOperator(t *testing.T) {
	tr := &transport.InProc{}
	m := linalg.Poisson2D(10, 10)
	exp, key := exportOperator(t, tr, "srv2", m)
	defer exp.Close()

	client := framework.New(framework.Options{
		Flavor:    cca.FlavorInProcess | cca.FlavorDistributed,
		TypeCheck: esi.TypeChecker(),
	})
	rp, err := InstallRemoteOperator(client, "remoteA", tr, "srv2", key, esi.TypeMatrixData)
	if err != nil {
		t.Fatal(err)
	}
	defer rp.Close()
	if err := client.Install("solver", esi.NewSolverComponent("cg")); err != nil {
		t.Fatal(err)
	}
	if _, err := client.Connect("solver", "A", "remoteA", "A"); err != nil {
		t.Fatal(err)
	}
	comp, _ := client.Component("solver")
	solver := comp.(esi.EsiSolver)
	solver.SetTolerance(1e-9)
	b := make([]float64, m.NRows)
	if err := m.Apply(linalg.Ones(m.NCols), b); err != nil {
		t.Fatal(err)
	}
	x := make([]float64, m.NRows)
	iters, err := solver.Solve(b, &x)
	if err != nil {
		t.Fatalf("remote solve: %v", err)
	}
	if iters == 0 {
		t.Error("no iterations")
	}
	for i, v := range x {
		if math.Abs(v-1) > 1e-6 {
			t.Fatalf("x[%d] = %v", i, v)
		}
	}
}

func TestRemoteSolveOverTCP(t *testing.T) {
	m := linalg.Laplace1D(20)
	exp, key := exportOperator(t, transport.TCP{}, "127.0.0.1:0", m)
	defer exp.Close()

	rp, err := Dial(transport.TCP{}, exp.Addr(), key, esi.TypeOperator)
	if err != nil {
		t.Fatal(err)
	}
	defer rp.Close()
	remote := &RemoteOperator{R: rp}
	x := linalg.Ones(20)
	var y []float64
	if err := remote.Apply(x, &y); err != nil {
		t.Fatal(err)
	}
	if y[0] != 1 || y[1] != 0 { // Laplace1D row sums: 1 at ends, 0 inside
		t.Errorf("y = %v", y[:3])
	}
}

func TestProxyFlavorRequirement(t *testing.T) {
	tr := &transport.InProc{}
	m := linalg.Laplace1D(4)
	exp, key := exportOperator(t, tr, "srv3", m)
	defer exp.Close()

	// A framework without the distributed flavor must refuse the proxy.
	plain := framework.New(framework.Options{Flavor: cca.FlavorInProcess})
	if _, err := InstallRemoteOperator(plain, "remoteA", tr, "srv3", key, esi.TypeMatrixData); !errors.Is(err, framework.ErrFlavor) {
		t.Errorf("err = %v, want ErrFlavor", err)
	}
}

func TestExportErrors(t *testing.T) {
	tr := &transport.InProc{}
	fw := framework.New(framework.Options{})
	l, err := tr.Listen("srv4")
	if err != nil {
		t.Fatal(err)
	}
	exp := NewExporter(fw, l)
	defer exp.Close()
	if _, err := exp.Export("ghost", "A"); !errors.Is(err, ErrDist) {
		t.Errorf("no-component err = %v", err)
	}
	if err := fw.Install("op", esi.NewOperatorComponent(linalg.Laplace1D(3))); err != nil {
		t.Fatal(err)
	}
	if _, err := exp.Export("op", "nope"); !errors.Is(err, ErrDist) {
		t.Errorf("no-port err = %v", err)
	}
	// Untyped adapter request.
	if _, err := InstallRemoteOperator(fw, "x", tr, "srv4", "op/A", "weird.Type"); !errors.Is(err, ErrDist) {
		t.Errorf("adapter err = %v", err)
	}
}

func TestRemoteErrorsPropagate(t *testing.T) {
	tr := &transport.InProc{}
	m := linalg.Laplace1D(4)
	exp, key := exportOperator(t, tr, "srv5", m)
	defer exp.Close()
	rp, err := Dial(tr, "srv5", key, esi.TypeOperator)
	if err != nil {
		t.Fatal(err)
	}
	defer rp.Close()
	remote := &RemoteOperator{R: rp}
	// Wrong-length x: the server-side Apply raises a SolveError, which must
	// surface through the wire as an error mentioning the cause.
	var y []float64
	err = remote.Apply([]float64{1, 2}, &y)
	if err == nil || !strings.Contains(err.Error(), "apply") {
		t.Errorf("err = %v", err)
	}
}

// frameStore is a Monitor servant collecting observed frames.
type frameStore struct {
	mu     sync.Mutex
	frames map[int32][]float64
}

func (f *frameStore) Observe(step int32, data []float64) {
	f.mu.Lock()
	if f.frames == nil {
		f.frames = map[int32][]float64{}
	}
	f.frames[step] = data
	f.mu.Unlock()
}

func (f *frameStore) have(step int32) bool {
	f.mu.Lock()
	defer f.mu.Unlock()
	_, ok := f.frames[step]
	return ok
}

func TestRemoteMonitorOneway(t *testing.T) {
	// Server: a framework hosting the monitor servant.
	tr := &transport.InProc{}
	server := framework.New(framework.Options{})
	store := &frameStore{}
	if err := server.Install("viz", &monitorComponent{store: store}); err != nil {
		t.Fatal(err)
	}
	l, err := tr.Listen("mon")
	if err != nil {
		t.Fatal(err)
	}
	exp := NewExporter(server, l)
	defer exp.Close()
	key, err := exp.Export("viz", "monitor")
	if err != nil {
		t.Fatal(err)
	}

	rp, err := Dial(tr, "mon", key, "cca.ports.Monitor")
	if err != nil {
		t.Fatal(err)
	}
	defer rp.Close()
	remote := &RemoteMonitor{R: rp}
	remote.Observe(1, []float64{0.5, 0.25})
	remote.Observe(2, []float64{0.4})
	// Oneway: confirm delivery via a two-way call on the same connection
	// (ordered), then inspect the store.
	if _, err := rp.Call("observe", int32(3), []float64{}); err != nil {
		t.Fatal(err)
	}
	for _, step := range []int32{1, 2, 3} {
		if !store.have(step) {
			t.Errorf("frame %d not delivered", step)
		}
	}
}

// monitorComponent provides the Monitor port backed by a frameStore.
type monitorComponent struct {
	store *frameStore
}

func (m *monitorComponent) SetServices(svc cca.Services) error {
	return svc.AddProvidesPort(m.store, cca.PortInfo{Name: "monitor", Type: "cca.ports.Monitor"})
}
