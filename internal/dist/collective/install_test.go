package collective

// Tests for the framework wiring: InstallRemoteDistArray must expose the
// attachment as an ordinary provides port and surface supervision state
// through the same connection-health events scalar remote ports use.

import (
	"testing"
	"time"

	"repro/internal/array"
	"repro/internal/cca"
	ccoll "repro/internal/cca/collective"
	"repro/internal/cca/framework"
	"repro/internal/transport"
)

// vizComponent is a minimal consumer with one uses port of the pull type.
type vizComponent struct{ svc cca.Services }

func (v *vizComponent) SetServices(svc cca.Services) error {
	v.svc = svc
	return svc.RegisterUsesPort(cca.PortInfo{Name: "in", Type: ccoll.PullPortType})
}

func (v *vizComponent) RequiredFlavor() cca.Flavor { return cca.FlavorDistributed }

func TestInstallRemoteDistArray(t *testing.T) {
	const gl = 120
	global := make([]float64, gl)
	for i := range global {
		global[i] = float64(i) * 2
	}
	src := array.NewBlockMap(gl, 2)
	inner := &transport.InProc{}
	srv, pub := serve(t, inner, "coll-install", "wave", cohort(src, global))
	defer srv.Stop()
	defer pub.Close()

	faulty := transport.NewFaulty(inner, transport.Faults{})
	fw := framework.New(framework.Options{Flavor: cca.FlavorInProcess | cca.FlavorDistributed})
	events := make(chan cca.EventKind, 64)
	fw.AddEventListener(cca.EventListenerFunc(func(e cca.Event) {
		select {
		case events <- e.Kind:
		default:
		}
	}))

	dst := array.NewCyclicMap(gl, 2, 4)
	imp, err := InstallRemoteDistArray(fw, "viz-proxy", faulty, "coll-install", "wave", dst, Options{ChunkBytes: 64})
	if err != nil {
		t.Fatal(err)
	}
	defer imp.Close()

	// The attachment must be reachable only through the configuration API:
	// a using component connects to the proxy's provides port and pulls
	// through the ccoll.PullPort interface, unaware of the process boundary.
	viz := &vizComponent{}
	if err := fw.Install("viz", viz); err != nil {
		t.Fatal(err)
	}
	if _, err := fw.Connect("viz", "in", "viz-proxy", "data"); err != nil {
		t.Fatal(err)
	}
	port, err := viz.svc.GetPort("in")
	if err != nil {
		t.Fatal(err)
	}
	pp, ok := port.(ccoll.PullPort)
	if !ok {
		t.Fatalf("port is %T, want ccoll.PullPort", port)
	}
	if pp.GlobalLen() != gl || pp.Ranks() != 2 {
		t.Fatalf("port geometry %d/%d", pp.GlobalLen(), pp.Ranks())
	}
	out := make([]float64, pp.LocalLen(1))
	if err := pp.Pull(1, out); err != nil {
		t.Fatal(err)
	}
	if want := wantLocal(dst, global, 1); !floatsEqual(out, want) {
		t.Fatal("framework-mediated pull returned wrong data")
	}

	// A severed link must surface as the standard event pair.
	faulty.SeverAll()
	waitEvent(t, events, cca.EventConnectionDegraded)
	waitEvent(t, events, cca.EventConnectionRestored)
	if err := pp.Pull(1, out); err != nil {
		t.Fatalf("pull after heal: %v", err)
	}
}

func waitEvent(t *testing.T, events <-chan cca.EventKind, want cca.EventKind) {
	t.Helper()
	deadline := time.After(5 * time.Second)
	for {
		select {
		case k := <-events:
			if k == want {
				return
			}
		case <-deadline:
			t.Fatalf("timed out waiting for %v", want)
		}
	}
}
