package collective

// Tests for the cross-process M→N redistribution path: correctness against
// the in-process scheduler for assorted geometry, the plan-exchange error
// paths, provider soft-state staleness, and supervised healing through an
// injected sever mid-pull.

import (
	"context"
	"errors"
	"strings"
	"sync"
	"testing"
	"time"

	"repro/internal/array"
	ccoll "repro/internal/cca/collective"
	"repro/internal/orb"
	"repro/internal/transport"
)

// memPort is an in-memory DistArrayPort: one cohort rank's view of a
// distributed array.
type memPort struct {
	side ccoll.Side
	data []float64
}

func (p *memPort) Side() ccoll.Side     { return p.side }
func (p *memPort) LocalData() []float64 { return p.data }

// cohort builds one memPort per rank of m, with rank-local chunks carved
// from global according to the map's runs.
func cohort(m array.DataMap, global []float64) []ccoll.DistArrayPort {
	ports := make([]ccoll.DistArrayPort, m.Ranks())
	for r := range ports {
		ports[r] = &memPort{side: ccoll.Side{Map: m}, data: make([]float64, m.LocalLen(r))}
	}
	for _, run := range m.Runs() {
		dst := ports[run.Rank].(*memPort).data
		for k := 0; k < run.Global.Len(); k++ {
			dst[run.Local+k] = global[run.Global.Lo+k]
		}
	}
	return ports
}

// wantLocal is the consumer rank's expected chunk under m.
func wantLocal(m array.DataMap, global []float64, rank int) []float64 {
	out := make([]float64, m.LocalLen(rank))
	for _, run := range m.Runs() {
		if run.Rank != rank {
			continue
		}
		for k := 0; k < run.Global.Len(); k++ {
			out[run.Local+k] = global[run.Global.Lo+k]
		}
	}
	return out
}

// serve publishes ports under name on a fresh adapter/server over tr.
func serve(t *testing.T, tr transport.Transport, addr, name string, ports []ccoll.DistArrayPort) (*orb.Server, *Publisher) {
	t.Helper()
	oa := orb.NewObjectAdapter()
	l, err := tr.Listen(addr)
	if err != nil {
		t.Fatal(err)
	}
	srv := orb.Serve(oa, l)
	pub, err := Publish(oa, name, ports)
	if err != nil {
		srv.Stop()
		t.Fatal(err)
	}
	return srv, pub
}

func floatsEqual(a, b []float64) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

func TestCrossProcessRedistribution(t *testing.T) {
	const gl = 203
	global := make([]float64, gl)
	for i := range global {
		global[i] = float64(i) + 0.25
	}
	cases := []struct {
		name     string
		src, dst array.DataMap
	}{
		{"block3-to-cyclic2", array.NewBlockMap(gl, 3), array.NewCyclicMap(gl, 2, 5)},
		{"cyclic4-to-block2", array.NewCyclicMap(gl, 4, 3), array.NewBlockMap(gl, 2)},
		{"serial-to-block4", array.NewSerialMap(gl), array.NewBlockMap(gl, 4)},
		{"block3-to-serial", array.NewBlockMap(gl, 3), array.NewSerialMap(gl)},
		{"matched-block2", array.NewBlockMap(gl, 2), array.NewBlockMap(gl, 2)},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			tr := &transport.InProc{}
			srv, pub := serve(t, tr, "coll-"+tc.name, "wave", cohort(tc.src, global))
			defer srv.Stop()
			defer pub.Close()
			// 4-element chunks force every pair message through many chunks.
			imp, err := Attach(tr, "coll-"+tc.name, "wave", tc.dst, Options{ChunkBytes: 32})
			if err != nil {
				t.Fatal(err)
			}
			defer imp.Close()
			if imp.ProviderRanks() != tc.src.Ranks() || imp.Ranks() != tc.dst.Ranks() {
				t.Fatalf("cohort sizes %d→%d", imp.ProviderRanks(), imp.Ranks())
			}
			for r := 0; r < tc.dst.Ranks(); r++ {
				out := make([]float64, imp.LocalLen(r))
				if err := imp.Pull(r, out); err != nil {
					t.Fatalf("pull rank %d: %v", r, err)
				}
				if want := wantLocal(tc.dst, global, r); !floatsEqual(out, want) {
					t.Fatalf("rank %d: got %v…, want %v…", r, out[:4], want[:4])
				}
			}
			outs, err := imp.PullAll(context.Background())
			if err != nil {
				t.Fatal(err)
			}
			for r := range outs {
				if want := wantLocal(tc.dst, global, r); !floatsEqual(outs[r], want) {
					t.Fatalf("PullAll rank %d mismatch", r)
				}
			}
		})
	}
}

func TestRedistributionOverTCP(t *testing.T) {
	const gl = 40007 // odd size, multi-chunk at default sizing too
	global := make([]float64, gl)
	for i := range global {
		global[i] = float64(i)
	}
	src := array.NewBlockMap(gl, 2)
	srv, pub := serve(t, transport.TCP{}, "127.0.0.1:0", "wave", cohort(src, global))
	defer srv.Stop()
	defer pub.Close()
	dst := array.NewCyclicMap(gl, 3, 16)
	imp, err := Attach(transport.TCP{}, srv.Addr(), "wave", dst, Options{})
	if err != nil {
		t.Fatal(err)
	}
	defer imp.Close()
	outs, err := imp.PullAll(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	for r := range outs {
		if want := wantLocal(dst, global, r); !floatsEqual(outs[r], want) {
			t.Fatalf("rank %d mismatch", r)
		}
	}
}

func TestPullSeesFreshData(t *testing.T) {
	// Each pull opens a fresh epoch: mutations to the provider's storage
	// between pulls must be visible.
	const gl = 32
	global := make([]float64, gl)
	src := array.NewBlockMap(gl, 2)
	ports := cohort(src, global)
	tr := &transport.InProc{}
	srv, pub := serve(t, tr, "coll-fresh", "wave", ports)
	defer srv.Stop()
	defer pub.Close()
	imp, err := Attach(tr, "coll-fresh", "wave", array.NewSerialMap(gl), Options{})
	if err != nil {
		t.Fatal(err)
	}
	defer imp.Close()
	out := make([]float64, gl)
	if err := imp.Pull(0, out); err != nil {
		t.Fatal(err)
	}
	if out[5] != 0 {
		t.Fatalf("first epoch saw %v", out[5])
	}
	for _, p := range ports {
		mp := p.(*memPort)
		for i := range mp.data {
			mp.data[i] = 9.5
		}
	}
	if err := imp.Pull(0, out); err != nil {
		t.Fatal(err)
	}
	if out[5] != 9.5 {
		t.Fatalf("second epoch saw %v, want mutated data", out[5])
	}
}

func TestAttachGlobalLenMismatch(t *testing.T) {
	tr := &transport.InProc{}
	srv, pub := serve(t, tr, "coll-mismatch", "wave", cohort(array.NewBlockMap(100, 2), make([]float64, 100)))
	defer srv.Stop()
	defer pub.Close()
	_, err := Attach(tr, "coll-mismatch", "wave", array.NewBlockMap(50, 2), Options{})
	if err == nil || !strings.Contains(err.Error(), "cardinality mismatch") {
		t.Fatalf("err = %v, want cardinality mismatch from provider", err)
	}
}

func TestAttachValidation(t *testing.T) {
	tr := &transport.InProc{}
	if _, err := Attach(tr, "nowhere", "wave", nil, Options{}); err == nil {
		t.Error("nil consumer map accepted")
	}
	// An invalid consumer map is rejected locally, before any dial.
	bad := badMap{array.NewBlockMap(10, 2)}
	if _, err := Attach(tr, "nowhere", "wave", bad, Options{}); !errors.Is(err, array.ErrMap) {
		t.Errorf("invalid map err = %v", err)
	}
}

// badMap breaks its inner map by under-reporting the global length, so its
// runs no longer tile [0, N).
type badMap struct{ array.DataMap }

func (b badMap) GlobalLen() int { return b.DataMap.GlobalLen() - 1 }

func TestPublishValidation(t *testing.T) {
	oa := orb.NewObjectAdapter()
	if _, err := Publish(oa, "w", nil); err == nil {
		t.Error("empty cohort accepted")
	}
	if _, err := Publish(oa, "w", []ccoll.DistArrayPort{&memPort{}}); err == nil {
		t.Error("unbound map accepted")
	}
	// Cohort size must match the map's rank count.
	m := array.NewBlockMap(20, 2)
	one := []ccoll.DistArrayPort{&memPort{side: ccoll.Side{Map: m}, data: make([]float64, 10)}}
	if _, err := Publish(oa, "w", one); err == nil {
		t.Error("short cohort accepted")
	}
	// Every rank must describe the same distribution.
	mixed := cohort(m, make([]float64, 20))
	mixed[1] = &memPort{side: ccoll.Side{Map: array.NewCyclicMap(20, 2, 1)}, data: make([]float64, 10)}
	if _, err := Publish(oa, "w", mixed); err == nil || !strings.Contains(err.Error(), "different distribution") {
		t.Errorf("inconsistent cohort err = %v", err)
	}
}

// rawClient dials an unsupervised client straight at the servant, for
// driving the wire protocol with malformed requests no Import would send.
func rawClient(t *testing.T, tr transport.Transport, addr string) *orb.Client {
	t.Helper()
	c, err := orb.DialClient(tr, addr)
	if err != nil {
		t.Fatal(err)
	}
	return c
}

func TestProtocolRejectsMalformedRequests(t *testing.T) {
	tr := &transport.InProc{}
	srv, pub := serve(t, tr, "coll-proto", "wave", cohort(array.NewBlockMap(24, 2), make([]float64, 24)))
	defer srv.Stop()
	defer pub.Close()
	c := rawClient(t, tr, "coll-proto")
	defer c.Close()
	key := Key("wave")

	for name, call := range map[string]func() error{
		"unknown method": func() error { _, err := c.Invoke(key, "pillage"); return err },
		"exchange arity": func() error { _, err := c.Invoke(key, "exchange", int32(24)); return err },
		"exchange types": func() error { _, err := c.Invoke(key, "exchange", "24", []int32{}); return err },
		"exchange ragged runs": func() error {
			_, err := c.Invoke(key, "exchange", int32(24), []int32{0, 24, 0})
			return err
		},
		"exchange overlapping runs": func() error {
			_, err := c.Invoke(key, "exchange", int32(24), []int32{0, 20, 0, 0, 10, 24, 1, 0})
			return err
		},
		"exchange gap runs": func() error {
			_, err := c.Invoke(key, "exchange", int32(24), []int32{0, 10, 0, 0, 12, 24, 1, 0})
			return err
		},
		"exchange negative n": func() error {
			_, err := c.Invoke(key, "exchange", int32(-3), []int32{})
			return err
		},
		"begin unknown plan": func() error { _, err := c.Invoke(key, "begin", int64(999)); return err },
		"begin types":        func() error { _, err := c.Invoke(key, "begin", "1"); return err },
		"chunk unknown plan": func() error {
			_, err := c.Invoke(key, "chunk", int64(999), int64(1), int32(0), int32(0), int32(0), int32(1))
			return err
		},
		"describe arity": func() error { _, err := c.Invoke(key, "describe", int32(1)); return err },
	} {
		if err := call(); !errors.Is(err, orb.ErrRemote) {
			t.Errorf("%s: err = %v, want remote error", name, err)
		}
	}

	// Unknown plan/epoch errors must carry the stale sentinel, since
	// consumers key their re-exchange off it.
	_, err := c.Invoke(key, "begin", int64(999))
	if !IsStale(err) {
		t.Errorf("unknown plan not stale: %v", err)
	}

	// A live plan with a bad chunk window or pair.
	res, err := c.Invoke(key, "exchange", int32(24), []int32{0, 24, 0, 0})
	if err != nil {
		t.Fatal(err)
	}
	planID := res[0].(int64)
	if _, err := c.Invoke(key, "chunk", planID, int64(999), int32(0), int32(0), int32(0), int32(1)); !IsStale(err) {
		t.Errorf("unknown epoch not stale: %v", err)
	}
	res, err = c.Invoke(key, "begin", planID)
	if err != nil {
		t.Fatal(err)
	}
	epoch := res[0].(int64)
	for name, args := range map[string][]any{
		"chunk negative lo":    {planID, epoch, int32(0), int32(0), int32(-1), int32(1)},
		"chunk negative count": {planID, epoch, int32(0), int32(0), int32(0), int32(-4)},
		"chunk past total":     {planID, epoch, int32(0), int32(0), int32(0), int32(1 << 20)},
		"chunk bad src rank":   {planID, epoch, int32(9), int32(0), int32(0), int32(1)},
		"chunk no such pair":   {planID, epoch, int32(1), int32(5), int32(0), int32(1)},
	} {
		if _, err := c.Invoke(key, "chunk", args...); !errors.Is(err, orb.ErrRemote) {
			t.Errorf("%s: err = %v, want remote error", name, err)
		}
	}
}

func TestBeginRejectsShortLocalData(t *testing.T) {
	m := array.NewBlockMap(20, 2)
	ports := cohort(m, make([]float64, 20))
	ports[1].(*memPort).data = ports[1].(*memPort).data[:3] // rank 1 lies
	tr := &transport.InProc{}
	srv, pub := serve(t, tr, "coll-short", "wave", ports)
	defer srv.Stop()
	defer pub.Close()
	imp, err := Attach(tr, "coll-short", "wave", array.NewSerialMap(20), Options{})
	if err != nil {
		t.Fatal(err)
	}
	defer imp.Close()
	out := make([]float64, 20)
	if err := imp.Pull(0, out); err == nil || !strings.Contains(err.Error(), "holds") {
		t.Fatalf("pull over short provider data: %v", err)
	}
}

// snapPort wraps memPort with the SnapshotPort extension: the publisher
// must retain the snapshot without a defensive copy.
type snapPort struct{ memPort }

func (p *snapPort) Snapshot() []float64 { return p.data }

func TestSnapshotPortServesAndValidates(t *testing.T) {
	const gl = 60
	global := make([]float64, gl)
	for i := range global {
		global[i] = float64(i) + 0.25
	}
	m := array.NewBlockMap(gl, 2)
	ports := make([]ccoll.DistArrayPort, 2)
	for r := 0; r < 2; r++ {
		ports[r] = &snapPort{memPort{side: ccoll.Side{Map: m}, data: wantLocal(m, global, r)}}
	}
	tr := &transport.InProc{}
	srv, pub := serve(t, tr, "coll-snap", "wave", ports)
	defer srv.Stop()
	defer pub.Close()

	dst := array.NewCyclicMap(gl, 2, 4)
	imp, err := Attach(tr, "coll-snap", "wave", dst, Options{ChunkBytes: 64})
	if err != nil {
		t.Fatal(err)
	}
	defer imp.Close()
	for r := 0; r < 2; r++ {
		out := make([]float64, dst.LocalLen(r))
		if err := imp.Pull(r, out); err != nil {
			t.Fatal(err)
		}
		if want := wantLocal(dst, global, r); !floatsEqual(out, want) {
			t.Fatalf("rank %d pulled %v, want %v", r, out, want)
		}
	}

	// A short snapshot must be rejected the same way short LocalData is.
	ports[1].(*snapPort).data = ports[1].(*snapPort).data[:3]
	out := make([]float64, dst.LocalLen(0))
	if err := imp.Pull(0, out); err == nil || !strings.Contains(err.Error(), "holds") {
		t.Fatalf("pull over short snapshot: %v", err)
	}
}

func TestPullBufferValidation(t *testing.T) {
	tr := &transport.InProc{}
	srv, pub := serve(t, tr, "coll-buf", "wave", cohort(array.NewBlockMap(10, 1), make([]float64, 10)))
	defer srv.Stop()
	defer pub.Close()
	imp, err := Attach(tr, "coll-buf", "wave", array.NewBlockMap(10, 2), Options{})
	if err != nil {
		t.Fatal(err)
	}
	defer imp.Close()
	if err := imp.Pull(5, make([]float64, 5)); err == nil {
		t.Error("out-of-range rank accepted")
	}
	if err := imp.Pull(0, make([]float64, 3)); !errors.Is(err, ccoll.ErrBuffer) {
		t.Errorf("short buffer err = %v", err)
	}
}

func TestStalePlanReExchangesAfterRepublish(t *testing.T) {
	const gl = 60
	global := make([]float64, gl)
	for i := range global {
		global[i] = float64(i)
	}
	m := array.NewBlockMap(gl, 2)
	tr := &transport.InProc{}
	oa := orb.NewObjectAdapter()
	l, err := tr.Listen("coll-stale")
	if err != nil {
		t.Fatal(err)
	}
	srv := orb.Serve(oa, l)
	defer srv.Stop()
	pub, err := Publish(oa, "wave", cohort(m, global))
	if err != nil {
		t.Fatal(err)
	}
	dst := array.NewCyclicMap(gl, 2, 4)
	imp, err := Attach(tr, "coll-stale", "wave", dst, Options{ChunkBytes: 32})
	if err != nil {
		t.Fatal(err)
	}
	defer imp.Close()
	out := make([]float64, imp.LocalLen(0))
	if err := imp.Pull(0, out); err != nil {
		t.Fatal(err)
	}

	// "Provider restart": the publisher is replaced, forgetting every plan.
	// The import's next pull hits the stale sentinel and re-exchanges
	// transparently.
	pub.Close()
	pub2, err := Publish(oa, "wave", cohort(m, global))
	if err != nil {
		t.Fatal(err)
	}
	defer pub2.Close()
	if err := imp.Pull(0, out); err != nil {
		t.Fatalf("pull after republish: %v", err)
	}
	if want := wantLocal(dst, global, 0); !floatsEqual(out, want) {
		t.Fatal("post-republish pull returned wrong data")
	}

	// With the publisher gone entirely, the re-exchange itself fails and
	// the error reaches the caller.
	pub2.Close()
	if err := imp.Pull(0, out); err == nil {
		t.Fatal("pull against closed publisher succeeded")
	}
}

func TestEpochEviction(t *testing.T) {
	// More concurrent epochs than the cache holds: the oldest goes stale.
	tr := &transport.InProc{}
	srv, pub := serve(t, tr, "coll-evict", "wave", cohort(array.NewBlockMap(16, 1), make([]float64, 16)))
	defer srv.Stop()
	defer pub.Close()
	c := rawClient(t, tr, "coll-evict")
	defer c.Close()
	key := Key("wave")
	res, err := c.Invoke(key, "exchange", int32(16), []int32{0, 16, 0, 0})
	if err != nil {
		t.Fatal(err)
	}
	planID := res[0].(int64)
	var epochs []int64
	for i := 0; i < maxEpochsPerPlan+2; i++ {
		res, err := c.Invoke(key, "begin", planID)
		if err != nil {
			t.Fatal(err)
		}
		epochs = append(epochs, res[0].(int64))
	}
	if _, err := c.Invoke(key, "chunk", planID, epochs[0], int32(0), int32(0), int32(0), int32(1)); !IsStale(err) {
		t.Errorf("evicted epoch err = %v", err)
	}
	if _, err := c.Invoke(key, "chunk", planID, epochs[len(epochs)-1], int32(0), int32(0), int32(0), int32(1)); err != nil {
		t.Errorf("live epoch err = %v", err)
	}
}

func TestSeverMidPullHealsAndCompletes(t *testing.T) {
	const gl = 20000
	global := make([]float64, gl)
	for i := range global {
		global[i] = float64(i) * 0.5
	}
	src := array.NewBlockMap(gl, 2)
	inner := &transport.InProc{}
	srv, pub := serve(t, inner, "coll-sever", "wave", cohort(src, global))
	defer srv.Stop()
	defer pub.Close()

	// The consumer dials through a faulty wrapper that severs its
	// connection mid-stream; clearing the fault on the first Degraded
	// transition lets the supervised redial heal for good.
	faulty := transport.NewFaulty(inner, transport.Faults{SeverAfterSends: 40})
	states := make(chan orb.ConnState, 16)
	var clearOnce sync.Once
	opts := Options{
		ChunkBytes: 512, // many chunk calls, so the sever lands mid-pull
		Supervisor: orb.SupervisorOptions{
			RetryBase:   time.Millisecond,
			RetryCap:    20 * time.Millisecond,
			MaxAttempts: 8,
			OnState: func(s orb.ConnState, _ error) {
				if s == orb.StateDegraded {
					clearOnce.Do(func() { faulty.SetFaults(transport.Faults{}) })
				}
				select {
				case states <- s:
				default:
				}
			},
		},
	}
	dst := array.NewCyclicMap(gl, 2, 8)
	imp, err := Attach(faulty, "coll-sever", "wave", dst, opts)
	if err != nil {
		t.Fatal(err)
	}
	defer imp.Close()

	outs, err := imp.PullAll(context.Background())
	if err != nil {
		t.Fatalf("pull through sever: %v", err)
	}
	for r := range outs {
		if want := wantLocal(dst, global, r); !floatsEqual(outs[r], want) {
			t.Fatalf("rank %d data corrupted by retry", r)
		}
	}
	if faulty.Stats().Severs == 0 {
		t.Fatal("fault plan never fired; test proved nothing")
	}
	sawDegraded, sawHealthy := false, false
	for {
		select {
		case s := <-states:
			switch s {
			case orb.StateDegraded:
				sawDegraded = true
			case orb.StateHealthy:
				sawHealthy = sawHealthy || sawDegraded
			}
			if sawDegraded && sawHealthy {
				return
			}
		case <-time.After(5 * time.Second):
			t.Fatalf("states: degraded=%v healed=%v", sawDegraded, sawHealthy)
		}
	}
}

func TestOptionsDefaults(t *testing.T) {
	o := Options{}.withDefaults()
	if o.ChunkBytes != 16*transport.CoalesceCutoff {
		t.Errorf("ChunkBytes = %d", o.ChunkBytes)
	}
	if o.WindowBytes != transport.MaxFlushWindow*transport.CoalesceCutoff {
		t.Errorf("WindowBytes = %d", o.WindowBytes)
	}
	if o.ChunkBytes < transport.CoalesceCutoff {
		t.Error("default chunks would miss the zero-copy path")
	}
	if o.Supervisor.Idempotent == nil || !o.Supervisor.Idempotent("chunk") {
		t.Error("protocol methods must default to idempotent")
	}
	if got := (Options{ChunkBytes: 13}).withDefaults().ChunkBytes; got != 8 {
		t.Errorf("tiny chunk rounded to %d, want 8", got)
	}
}

func TestIsStale(t *testing.T) {
	if IsStale(nil) || IsStale(errors.New("boring")) {
		t.Error("false positive")
	}
	if !IsStale(errors.New("orb: remote: collective: unknown plan 7")) {
		t.Error("missed wrapped sentinel")
	}
}
