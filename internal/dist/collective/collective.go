// Package collective implements distributed collective ports: the
// cross-process form of the paper's §6.3 M→N redistribution, and the one
// scenario Figure 1 actually draws — a visualization tool in a *different
// OS process* attaching to the simulation cohort's distributed array.
// It composes the two halves the repo already has: the collective
// scheduler (repro/internal/cca/collective) plans which index runs move
// between which cohort ranks, and the supervised multiplexed ORB
// (repro/internal/orb over repro/internal/transport) moves bytes between
// processes.
//
// # Protocol
//
// A provider process Publishes a cohort's DistArrayPorts on the reserved
// ORB key "collective/<name>" as a dynamic servant. A consumer Attaches by
// dialing a supervised client and performing a plan exchange: it sends its
// own distribution as a canonical run list, the provider answers with its
// run list and a plan ID, and *both* sides construct the identical
// collective.Plan from the two descriptors (cohorts rebased into one
// synthetic world: provider ranks 0..M−1, consumer ranks M..M+N−1). From
// then on the consumer addresses any [lo,hi) element window of any
// (src,dst) pair's packed message — the schedule's offsets are plan
// arithmetic both sides agree on, so no index metadata ever crosses the
// wire with the data.
//
// Each Pull opens an epoch ("begin" snapshots the provider cohort's
// chunks, so a mid-step simulation can't tear a frame), streams the
// intersecting runs as chunked bulk frames — packed straight into the
// reply encoder's payload span on the provider, scattered straight out of
// the raw reply frame on the consumer, one user-space copy per side — and
// closes the epoch with a oneway "end". Chunks default to
// 16·transport.CoalesceCutoff bytes so every chunk frame rides the
// zero-copy writev path, and a credit window (default
// transport.MaxFlushWindow·transport.CoalesceCutoff bytes) bounds the
// bytes in flight per connection while keeping the multiplexed pipeline
// full.
//
// # Failure semantics
//
// The consumer's connection is an orb.Supervised client with every
// protocol method marked idempotent: a severed connection mid-pull
// surfaces as ConnectionDegraded (via Options.Supervisor.OnState, which
// InstallRemoteDistArray bridges to framework health events exactly like
// scalar remote ports), redials with backoff, and the interrupted chunk
// call retries on the healed connection. Provider-side state is
// soft: plans and epochs are bounded LRU caches, and a consumer that
// finds its plan or epoch evicted (or the provider restarted) gets a
// typed "unknown plan"/"unknown epoch" error and transparently
// re-exchanges — at most wasted work, never wrong data.
//
// # Serving many subscribers
//
// By default every begin snapshots afresh, so each consumer observes the
// provider's latest data — right for a handful of attached tools.
// Publishing WithEpochCache turns the provider into a high-fan-out
// serving tier: the publisher owns an explicit generation (Advance opens
// the next one), all subscribers of a generation share one snapshot, the
// same consumer distribution deduplicates onto one plan, and each chunk
// window is packed once into a ref-counted transport.SharedBuf that is
// spliced zero-copy into every subscriber's reply. N subscribers then
// cost one pack plus N writev references instead of N packs and copies.
// Epoch lifetime is governed by generation turnover and the LRU ("end"
// is a no-op in cache mode); eviction still surfaces as the stale
// sentinels above. DESIGN.md §11 documents the tier; experiment E13
// prices it at 1000 standing supervised subscribers.
//
// Experiment E11 (cmd/bench, EXPERIMENTS.md) measures the chunked path
// against a single-memcpy lower bound; the examples/distviz demo runs the
// full two-process scenario including an injected sever.
package collective

import (
	"fmt"
	"strings"

	"repro/internal/array"
	ccoll "repro/internal/cca/collective"
	"repro/internal/obs"
	"repro/internal/orb"
	"repro/internal/transport"
)

// KeyPrefix is the reserved ORB key namespace for published collective
// ports: a distributed array named "wave" is served at "collective/wave".
const KeyPrefix = "collective/"

// Key returns the ORB object key a published name is served under.
func Key(name string) string { return KeyPrefix + name }

// Wire-visible error prefixes. They cross the ORB as exception strings, so
// the consumer recognizes them by prefix (IsStale) — the CDR has no typed
// exceptions, exactly like CORBA minor codes.
const (
	stalePlanMsg  = "collective: unknown plan"
	staleEpochMsg = "collective: unknown epoch"
)

// IsStale reports whether a pull failed because the provider no longer
// holds the consumer's plan or epoch (eviction or provider restart). Pull
// handles this itself by re-exchanging; it is exported for callers driving
// the protocol manually.
func IsStale(err error) bool {
	if err == nil {
		return false
	}
	s := err.Error()
	return strings.Contains(s, stalePlanMsg) || strings.Contains(s, staleEpochMsg)
}

// collective.* observability: bytes and chunks moved, plan-exchange
// latency, and per-pull duration (consumer side); chunks and bytes served
// (provider side).
var (
	cPlanExchanges = obs.NewCounter("collective.plan_exchanges")
	cPulls         = obs.NewCounter("collective.pulls")
	cChunks        = obs.NewCounter("collective.chunks_pulled")
	cBytes         = obs.NewCounter("collective.bytes_pulled")
	cChunksServed  = obs.NewCounter("collective.chunks_served")
	cBytesServed   = obs.NewCounter("collective.bytes_served")
	hExchangeNs    = obs.NewHistogram("collective.plan_exchange_ns")
	hPullNs        = obs.NewHistogram("collective.pull_ns")

	// Serving-tier cache instruments (WithEpochCache publishers): plan
	// dedup hits on exchange, epoch reuse on begin, and packed-frame
	// reuse on chunk. The frame hit rate is the fan-out amortization
	// number — E13 asserts it exceeds 90% at steady state.
	cPlanCacheHits    = obs.NewCounter("collective.plan_cache_hits")
	cEpochCacheHits   = obs.NewCounter("collective.epoch_cache_hits")
	cEpochCacheMisses = obs.NewCounter("collective.epoch_cache_misses")
	cFrameCacheHits   = obs.NewCounter("collective.frame_cache_hits")
	cFrameCacheMisses = obs.NewCounter("collective.frame_cache_misses")
)

// Options tunes a consumer attachment. The zero value is usable.
type Options struct {
	// ChunkBytes is the bulk-frame payload size. Default
	// 16·transport.CoalesceCutoff (64 KiB): comfortably above the
	// coalescer's copy/zero-copy boundary, so every chunk frame is
	// written zero-copy, and small enough that several chunks pipeline
	// inside the credit window.
	ChunkBytes int
	// WindowBytes bounds the chunk bytes in flight per connection — the
	// credit window. Default transport.MaxFlushWindow ·
	// transport.CoalesceCutoff (256 KiB), the volume the coalescer's
	// adaptive flush window is itself sized to batch.
	WindowBytes int
	// Supervisor tunes the underlying self-healing client. Idempotent
	// defaults to orb.AllIdempotent — every protocol method is a read or
	// an idempotent re-registration, so chunk pulls retry transparently
	// across redials. OnState observes connection health transitions.
	Supervisor orb.SupervisorOptions
}

func (o Options) withDefaults() Options {
	if o.ChunkBytes <= 0 {
		o.ChunkBytes = 16 * transport.CoalesceCutoff
	}
	o.ChunkBytes = o.ChunkBytes &^ 7 // whole float64s
	if o.ChunkBytes < 8 {
		o.ChunkBytes = 8
	}
	if o.WindowBytes <= 0 {
		o.WindowBytes = transport.MaxFlushWindow * transport.CoalesceCutoff
	}
	if o.Supervisor.Idempotent == nil {
		o.Supervisor.Idempotent = orb.AllIdempotent
	}
	return o
}

// encodeRuns flattens a map's canonical runs for the wire: stride-4 int32
// tuples (globalLo, globalHi, rank, localOffset). Distributions beyond
// 2³¹ elements would need a wider encoding; the CDR's int32 slice keeps
// the descriptor compact for every realistic map.
func encodeRuns(m array.DataMap) []int32 {
	runs := m.Runs()
	flat := make([]int32, 0, 4*len(runs))
	for _, r := range runs {
		flat = append(flat, int32(r.Global.Lo), int32(r.Global.Hi), int32(r.Rank), int32(r.Local))
	}
	return flat
}

// decodeRuns reconstructs and validates a map from its wire form.
func decodeRuns(n int, flat []int32) (*array.IrregularMap, error) {
	if n < 0 {
		return nil, fmt.Errorf("collective: negative global length %d", n)
	}
	if len(flat)%4 != 0 {
		return nil, fmt.Errorf("collective: run list length %d is not a multiple of 4", len(flat))
	}
	runs := make([]array.Run, len(flat)/4)
	for i := range runs {
		runs[i] = array.Run{
			Global: array.IndexRange{Lo: int(flat[4*i]), Hi: int(flat[4*i+1])},
			Rank:   int(flat[4*i+2]),
			Local:  int(flat[4*i+3]),
		}
	}
	return array.NewRunsMap(n, runs)
}

// sideOf rebases a validated map into the synthetic cross-process world at
// base (see ccoll.Side.Rebased).
func sideOf(m array.DataMap, base int) ccoll.Side {
	return ccoll.Side{Map: m}.Rebased(base)
}
