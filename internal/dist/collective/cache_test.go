package collective

// Tests for the epoch-cache serving tier (Publish ... WithEpochCache):
// plan dedup across subscribers, epoch stability until Advance, the
// frame-cache hit rate asserted through the obs counters, stale-plan
// recovery after LRU eviction, and the chaos case of one subscriber
// severed mid-broadcast while others keep pulling.

import (
	"context"
	"errors"
	"sync"
	"testing"
	"time"

	"repro/internal/array"
	ccoll "repro/internal/cca/collective"
	"repro/internal/obs"
	"repro/internal/orb"
	"repro/internal/transport"
)

// serveCached is serve with the epoch cache turned on.
func serveCached(t *testing.T, tr transport.Transport, addr, name string, ports []ccoll.DistArrayPort) (*orb.Server, *Publisher) {
	t.Helper()
	oa := orb.NewObjectAdapter()
	l, err := tr.Listen(addr)
	if err != nil {
		t.Fatal(err)
	}
	srv := orb.Serve(oa, l)
	pub, err := Publish(oa, name, ports, WithEpochCache())
	if err != nil {
		srv.Stop()
		t.Fatal(err)
	}
	return srv, pub
}

func counters() map[string]uint64 { return obs.Default.Snapshot().Counters }

var errDataCorrupt = errors.New("pulled data corrupted")

// TestCachePlanDedup checks that subscribers announcing the same consumer
// distribution share one provider-side plan (same planID) while a
// different distribution gets its own.
func TestCachePlanDedup(t *testing.T) {
	const gl = 100
	tr := &transport.InProc{}
	srv, pub := serveCached(t, tr, "cache-dedup", "wave", cohort(array.NewBlockMap(gl, 2), make([]float64, gl)))
	defer srv.Stop()
	defer pub.Close()

	before := counters()
	a, err := Attach(tr, "cache-dedup", "wave", array.NewSerialMap(gl), Options{})
	if err != nil {
		t.Fatal(err)
	}
	defer a.Close()
	b, err := Attach(tr, "cache-dedup", "wave", array.NewSerialMap(gl), Options{})
	if err != nil {
		t.Fatal(err)
	}
	defer b.Close()
	if a.planID != b.planID {
		t.Fatalf("identical distributions got plans %d and %d, want shared", a.planID, b.planID)
	}
	c, err := Attach(tr, "cache-dedup", "wave", array.NewBlockMap(gl, 2), Options{})
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	if c.planID == a.planID {
		t.Fatal("distinct distribution shares a plan")
	}
	after := counters()
	if got := after["collective.plan_cache_hits"] - before["collective.plan_cache_hits"]; got < 1 {
		t.Fatalf("plan_cache_hits grew by %d, want >= 1", got)
	}
}

// TestCacheEpochStableUntilAdvance pins the cache-mode contract: pulls
// between Advance calls observe one immutable snapshot even while the
// provider mutates its arrays, and Advance opens the next snapshot.
func TestCacheEpochStableUntilAdvance(t *testing.T) {
	const gl = 64
	global := make([]float64, gl)
	for i := range global {
		global[i] = float64(i)
	}
	m := array.NewBlockMap(gl, 2)
	ports := cohort(m, global)
	tr := &transport.InProc{}
	srv, pub := serveCached(t, tr, "cache-epoch", "wave", ports)
	defer srv.Stop()
	defer pub.Close()

	imp, err := Attach(tr, "cache-epoch", "wave", array.NewSerialMap(gl), Options{})
	if err != nil {
		t.Fatal(err)
	}
	defer imp.Close()
	out := make([]float64, gl)
	if err := imp.Pull(0, out); err != nil {
		t.Fatal(err)
	}
	if !floatsEqual(out, global) {
		t.Fatal("first pull wrong")
	}

	// Mutate every provider rank in place — the published epoch must not
	// see it until Advance.
	for _, p := range ports {
		data := p.(*memPort).data
		for i := range data {
			data[i] += 1000
		}
	}
	before := counters()
	if err := imp.Pull(0, out); err != nil {
		t.Fatal(err)
	}
	if !floatsEqual(out, global) {
		t.Fatal("pull between Advances leaked a mid-generation write")
	}
	after := counters()
	if got := after["collective.epoch_cache_hits"] - before["collective.epoch_cache_hits"]; got < 1 {
		t.Fatalf("epoch_cache_hits grew by %d, want >= 1", got)
	}

	pub.Advance()
	if err := imp.Pull(0, out); err != nil {
		t.Fatal(err)
	}
	for i := range out {
		if out[i] != global[i]+1000 {
			t.Fatalf("post-Advance element %d = %v, want %v", i, out[i], global[i]+1000)
		}
	}
	post := counters()
	if got := post["collective.epoch_cache_misses"] - after["collective.epoch_cache_misses"]; got < 1 {
		t.Fatalf("Advance did not force a fresh snapshot (misses grew by %d)", got)
	}
}

// TestCacheFrameHitRate repeats pulls under one frozen generation and
// asserts the steady-state frame-cache hit rate the serving tier is built
// around: every subscriber after the first pack is served from cache.
func TestCacheFrameHitRate(t *testing.T) {
	const gl = 512
	global := make([]float64, gl)
	for i := range global {
		global[i] = float64(i) * 0.25
	}
	tr := &transport.InProc{}
	srv, pub := serveCached(t, tr, "cache-rate", "wave", cohort(array.NewBlockMap(gl, 2), global))
	defer srv.Stop()
	defer pub.Close()

	// Small chunks so each pull issues several frame requests.
	imp, err := Attach(tr, "cache-rate", "wave", array.NewSerialMap(gl), Options{ChunkBytes: 512})
	if err != nil {
		t.Fatal(err)
	}
	defer imp.Close()

	before := counters()
	out := make([]float64, gl)
	const pulls = 40
	for i := 0; i < pulls; i++ {
		if err := imp.Pull(0, out); err != nil {
			t.Fatalf("pull %d: %v", i, err)
		}
		if !floatsEqual(out, global) {
			t.Fatalf("pull %d corrupted", i)
		}
	}
	after := counters()
	hits := after["collective.frame_cache_hits"] - before["collective.frame_cache_hits"]
	misses := after["collective.frame_cache_misses"] - before["collective.frame_cache_misses"]
	if hits+misses == 0 {
		t.Fatal("no frame-cache traffic recorded")
	}
	if rate := float64(hits) / float64(hits+misses); rate <= 0.9 {
		t.Fatalf("frame cache hit rate %.1f%% (%d hits / %d misses), want > 90%%",
			100*rate, hits, misses)
	}
}

// TestCacheStalePlanAfterEviction evicts a subscriber's plan by churning
// maxPlans distinct distributions through the publisher, then checks the
// subscriber's next pull heals through the stale-plan sentinel: a
// transparent re-exchange onto a fresh plan, correct data, no error.
func TestCacheStalePlanAfterEviction(t *testing.T) {
	const gl = 240
	global := make([]float64, gl)
	for i := range global {
		global[i] = float64(i) + 0.5
	}
	tr := &transport.InProc{}
	srv, pub := serveCached(t, tr, "cache-evict", "wave", cohort(array.NewBlockMap(gl, 2), global))
	defer srv.Stop()
	defer pub.Close()

	imp, err := Attach(tr, "cache-evict", "wave", array.NewSerialMap(gl), Options{})
	if err != nil {
		t.Fatal(err)
	}
	defer imp.Close()
	oldPlan := imp.planID

	// maxPlans+1 distinct consumer distributions push the first plan out
	// of the LRU (and its digest out of the dedup table).
	for r := 2; r <= maxPlans+2; r++ {
		other, err := Attach(tr, "cache-evict", "wave", array.NewBlockMap(gl, r), Options{})
		if err != nil {
			t.Fatalf("churn attach ranks=%d: %v", r, err)
		}
		other.Close()
	}

	out := make([]float64, gl)
	if err := imp.Pull(0, out); err != nil {
		t.Fatalf("pull after plan eviction: %v", err)
	}
	if !floatsEqual(out, global) {
		t.Fatal("post-eviction pull returned wrong data")
	}
	if imp.planID == oldPlan {
		t.Fatalf("pull succeeded without re-exchange; plan %d should have been evicted", oldPlan)
	}
}

// TestCacheSeveredSubscriberDoesNotStallOthers is the chaos case: one
// subscriber's connection is severed mid-broadcast while two healthy
// subscribers keep pulling the same cached epochs. The healthy pulls must
// all complete with intact data, and the severed subscriber must heal
// through its supervisor and finish too.
func TestCacheSeveredSubscriberDoesNotStallOthers(t *testing.T) {
	const gl = 20000
	global := make([]float64, gl)
	for i := range global {
		global[i] = float64(i) * 0.5
	}
	inner := transport.TCP{}
	srv, pub := serveCached(t, inner, "127.0.0.1:0", "wave", cohort(array.NewBlockMap(gl, 2), global))
	defer srv.Stop()
	defer pub.Close()
	addr := srv.Addr()

	faulty := transport.NewFaulty(inner, transport.Faults{SeverAfterSends: 20})
	var clearOnce sync.Once
	victimOpts := Options{
		ChunkBytes: 512, // many chunk calls, so the sever lands mid-pull
		Supervisor: orb.SupervisorOptions{
			RetryBase:   time.Millisecond,
			RetryCap:    20 * time.Millisecond,
			MaxAttempts: 8,
			OnState: func(s orb.ConnState, _ error) {
				if s == orb.StateDegraded {
					clearOnce.Do(func() { faulty.SetFaults(transport.Faults{}) })
				}
			},
		},
	}

	victim, err := Attach(faulty, addr, "wave", array.NewSerialMap(gl), victimOpts)
	if err != nil {
		t.Fatal(err)
	}
	defer victim.Close()

	const healthy = 2
	imps := make([]*Import, healthy)
	for i := range imps {
		imp, err := Attach(inner, addr, "wave", array.NewSerialMap(gl), Options{ChunkBytes: 4096})
		if err != nil {
			t.Fatal(err)
		}
		defer imp.Close()
		imps[i] = imp
	}

	var wg sync.WaitGroup
	errs := make(chan error, healthy+1)
	for _, imp := range imps {
		wg.Add(1)
		go func(imp *Import) {
			defer wg.Done()
			out := make([]float64, gl)
			for i := 0; i < 5; i++ {
				if err := imp.PullContext(context.Background(), 0, out); err != nil {
					errs <- err
					return
				}
				if !floatsEqual(out, global) {
					errs <- errDataCorrupt
					return
				}
			}
		}(imp)
	}
	wg.Add(1)
	go func() {
		defer wg.Done()
		out := make([]float64, gl)
		if err := victim.PullContext(context.Background(), 0, out); err != nil {
			errs <- err
			return
		}
		if !floatsEqual(out, global) {
			errs <- errDataCorrupt
		}
	}()
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Fatal(err)
	}
	if faulty.Stats().Severs == 0 {
		t.Fatal("fault plan never fired; test proved nothing")
	}
}
