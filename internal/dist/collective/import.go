package collective

import (
	"context"
	"fmt"
	"sync"

	"repro/internal/array"
	ccoll "repro/internal/cca/collective"
	"repro/internal/obs"
	"repro/internal/orb"
	"repro/internal/transport"
)

// Import is the consumer half of a cross-process collective connection: a
// supervised attachment to a remote Publisher that implements
// ccoll.PullPort for the local consumer cohort. One Import represents all
// N consumer ranks of this process, exactly as one Publisher represents
// the provider's M.
type Import struct {
	key  string
	sup  *orb.Supervised
	opts Options
	cmap array.DataMap // consumer distribution (N ranks)

	mu     sync.Mutex
	m      int // provider cohort size (learned at exchange)
	plan   *ccoll.Plan
	planID int64
}

var _ ccoll.PullPort = (*Import)(nil)

// Attach dials a published collective port under supervision and performs
// the plan exchange. consumer describes how this process's cohort wants
// the data distributed; it may differ arbitrarily from the provider's
// distribution — redistribution is the point of the connection (§6.3).
func Attach(tr transport.Transport, addr, name string, consumer array.DataMap, opts Options) (*Import, error) {
	if consumer == nil {
		return nil, fmt.Errorf("collective: attach %q with nil consumer map", name)
	}
	if err := array.Validate(consumer); err != nil {
		return nil, err
	}
	opts = opts.withDefaults()
	sup, err := orb.DialSupervised(tr, addr, opts.Supervisor)
	if err != nil {
		return nil, err
	}
	imp := &Import{key: Key(name), sup: sup, opts: opts, cmap: consumer}
	if err := imp.exchange(context.Background()); err != nil {
		sup.Close() //nolint:errcheck
		return nil, err
	}
	return imp, nil
}

// Close releases the supervised connection.
func (imp *Import) Close() error { return imp.sup.Close() }

// Supervised exposes the underlying connection, e.g. to observe State().
func (imp *Import) Supervised() *orb.Supervised { return imp.sup }

// exchange performs (or repeats) the plan exchange and swaps in the new
// plan. Both sides build the Plan from the same pair of canonical run
// lists, so every later chunk offset is agreed arithmetic.
func (imp *Import) exchange(ctx context.Context) error {
	t0 := obs.Mono()
	res, err := imp.sup.InvokeContext(ctx, imp.key, "exchange",
		int32(imp.cmap.GlobalLen()), encodeRuns(imp.cmap))
	if err != nil {
		return err
	}
	if len(res) != 3 {
		return fmt.Errorf("collective: exchange returned %d values, want 3", len(res))
	}
	id, ok0 := res[0].(int64)
	n, ok1 := res[1].(int32)
	flat, ok2 := res[2].([]int32)
	if !ok0 || !ok1 || !ok2 {
		return fmt.Errorf("collective: exchange returned %T,%T,%T", res[0], res[1], res[2])
	}
	pm, err := decodeRuns(int(n), flat)
	if err != nil {
		return fmt.Errorf("collective: provider sent invalid map: %w", err)
	}
	plan, err := ccoll.NewPlan(sideOf(pm, 0), sideOf(imp.cmap, pm.Ranks()))
	if err != nil {
		return err
	}
	imp.mu.Lock()
	imp.m, imp.plan, imp.planID = pm.Ranks(), plan, id
	imp.mu.Unlock()
	cPlanExchanges.Inc()
	hExchangeNs.Observe(uint64(obs.Mono() - t0))
	return nil
}

// GlobalLen implements ccoll.PullPort.
func (imp *Import) GlobalLen() int { return imp.cmap.GlobalLen() }

// Ranks implements ccoll.PullPort (the consumer cohort size N).
func (imp *Import) Ranks() int { return imp.cmap.Ranks() }

// LocalLen implements ccoll.PullPort.
func (imp *Import) LocalLen(rank int) int { return imp.cmap.LocalLen(rank) }

// ProviderRanks returns the remote cohort size M learned at exchange.
func (imp *Import) ProviderRanks() int {
	imp.mu.Lock()
	defer imp.mu.Unlock()
	return imp.m
}

// Pull implements ccoll.PullPort: it redistributes the provider's current
// data into consumer rank's chunk.
func (imp *Import) Pull(rank int, out []float64) error {
	return imp.PullContext(context.Background(), rank, out)
}

// PullContext is Pull under a caller context (deadline/cancellation).
func (imp *Import) PullContext(ctx context.Context, rank int, out []float64) error {
	if rank < 0 || rank >= imp.cmap.Ranks() {
		return fmt.Errorf("collective: pull for rank %d of %d", rank, imp.cmap.Ranks())
	}
	return imp.pull(ctx, []int{rank}, [][]float64{out})
}

// PullAll redistributes one consistent epoch of the provider's data into
// every consumer rank's chunk and returns the cohort's chunks. Unlike N
// separate Pull calls — each of which opens its own epoch — all ranks here
// observe the same provider timestep.
func (imp *Import) PullAll(ctx context.Context) ([][]float64, error) {
	outs := make([][]float64, imp.cmap.Ranks())
	for r := range outs {
		outs[r] = make([]float64, imp.cmap.LocalLen(r))
	}
	if err := imp.PullAllInto(ctx, outs); err != nil {
		return nil, err
	}
	return outs, nil
}

// PullAllInto is PullAll into caller-provided chunks — a steady-state
// consumer (or benchmark) reuses its frame buffers instead of allocating
// the cohort's storage every frame.
func (imp *Import) PullAllInto(ctx context.Context, outs [][]float64) error {
	n := imp.cmap.Ranks()
	if len(outs) != n {
		return fmt.Errorf("%w: %d chunks for %d ranks", ccoll.ErrBuffer, len(outs), n)
	}
	ranks := make([]int, n)
	for r := range ranks {
		ranks[r] = r
	}
	return imp.pull(ctx, ranks, outs)
}

// maxStaleRetries bounds transparent re-exchange after the provider
// evicted (or forgot, across a restart) our plan or epoch.
const maxStaleRetries = 3

// pull runs one epoch's redistribution for the given consumer ranks,
// re-exchanging and retrying when provider state has gone stale.
func (imp *Import) pull(ctx context.Context, ranks []int, outs [][]float64) error {
	for i, r := range ranks {
		if want := imp.cmap.LocalLen(r); len(outs[i]) != want {
			return fmt.Errorf("%w: rank %d buffer has %d elements, want %d", ccoll.ErrBuffer, r, len(outs[i]), want)
		}
	}
	t0 := obs.Mono()
	var err error
	for attempt := 0; attempt <= maxStaleRetries; attempt++ {
		if err = imp.pullEpoch(ctx, ranks, outs); !IsStale(err) {
			break
		}
		if exErr := imp.exchange(ctx); exErr != nil {
			return exErr
		}
	}
	if err == nil {
		cPulls.Inc()
		hPullNs.Observe(uint64(obs.Mono() - t0))
	}
	return err
}

// pullEpoch opens one epoch, streams every (src, dst) pair's packed
// message as credit-windowed chunks, scatters each chunk straight from the
// raw reply frame, and closes the epoch. Chunk calls are issued
// concurrently up to WindowBytes of requested payload — the multiplexed
// client pipelines them on one connection, and the window keeps a slow
// consumer from buffering the whole array in flight.
func (imp *Import) pullEpoch(ctx context.Context, ranks []int, outs [][]float64) error {
	imp.mu.Lock()
	plan, planID, m := imp.plan, imp.planID, imp.m
	imp.mu.Unlock()

	res, err := imp.sup.InvokeContext(ctx, imp.key, "begin", planID)
	if err != nil {
		return err
	}
	if len(res) != 1 {
		return fmt.Errorf("collective: begin returned %d values, want 1", len(res))
	}
	epoch, ok := res[0].(int64)
	if !ok {
		return fmt.Errorf("collective: begin returned %T, want int64", res[0])
	}
	// Epoch snapshots are provider memory; release even on error paths.
	defer imp.sup.InvokeOneway(imp.key, "end", planID, epoch) //nolint:errcheck

	type chunkReq struct {
		src, dst  int // world ranks
		lo, count int // packed-stream window
		out       []float64
	}
	var reqs []chunkReq
	chunkElems := imp.opts.ChunkBytes / 8
	for i, r := range ranks {
		dstWorld := m + r
		// In-process rank-local copies cannot occur here: provider world
		// ranks 0..M−1 and consumer world ranks M.. are disjoint, so the
		// plan routes every element through a pair message.
		for _, src := range plan.RecvFrom(dstWorld) {
			pair, ok := plan.Pair(src, dstWorld)
			if !ok {
				continue
			}
			for lo := 0; lo < pair.Total(); lo += chunkElems {
				count := pair.Total() - lo
				if count > chunkElems {
					count = chunkElems
				}
				reqs = append(reqs, chunkReq{src: src, dst: r, lo: lo, count: count, out: outs[i]})
			}
		}
	}

	inflight := imp.opts.WindowBytes / imp.opts.ChunkBytes
	if inflight < 1 {
		inflight = 1
	}
	cctx, cancel := context.WithCancel(ctx)
	defer cancel()
	sem := make(chan struct{}, inflight)
	var (
		wg       sync.WaitGroup
		errOnce  sync.Once
		firstErr error
	)
	fail := func(e error) {
		errOnce.Do(func() { firstErr = e; cancel() })
	}
	for _, rq := range reqs {
		select {
		case sem <- struct{}{}:
		case <-cctx.Done():
		}
		if cctx.Err() != nil {
			break
		}
		wg.Add(1)
		go func(rq chunkReq) {
			defer wg.Done()
			defer func() { <-sem }()
			if err := imp.pullChunk(cctx, plan, planID, epoch, m, rq.src, rq.dst, rq.lo, rq.count, rq.out); err != nil {
				fail(err)
			}
		}(rq)
	}
	wg.Wait()
	if firstErr != nil {
		return firstErr
	}
	return ctx.Err()
}

// pullChunk fetches one chunk and scatters it into out. The reply frame is
// never decoded into a []float64: RawFloat64s views the payload in place
// and UnpackBytes scatters straight into destination storage — the
// consumer-side single copy matching the provider's pack-into-span.
func (imp *Import) pullChunk(ctx context.Context, plan *ccoll.Plan, planID int64, epoch int64, m, src, dst, lo, count int, out []float64) error {
	rep, err := imp.sup.InvokeRawContext(ctx, imp.key, "chunk",
		planID, epoch, int32(src), int32(dst), int32(lo), int32(count))
	if err != nil {
		return err
	}
	defer rep.Release()
	raw, err := orb.NewDecoder(rep.Results).RawFloat64s()
	if err != nil {
		return err
	}
	if len(raw) != 8*count {
		return fmt.Errorf("collective: chunk [%d,+%d) reply holds %d bytes, want %d", lo, count, len(raw), 8*count)
	}
	pair, ok := plan.Pair(src, m+dst)
	if !ok {
		return fmt.Errorf("collective: no %d→%d pair in plan %d", src, dst, planID)
	}
	if err := pair.UnpackBytes(raw, lo, out); err != nil {
		return err
	}
	cChunks.Inc()
	cBytes.Add(uint64(len(raw)))
	return nil
}
