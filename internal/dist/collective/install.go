package collective

import (
	"repro/internal/array"
	ccoll "repro/internal/cca/collective"
	"repro/internal/cca/framework"
	"repro/internal/dist"
	"repro/internal/orb"
	"repro/internal/transport"
)

// InstallRemoteDistArray attaches to a remote cohort's published
// collective port and installs the attachment into fw as a proxy component
// named instance, providing port "data" of type ccoll.PullPortType. This
// is the collective analogue of dist.InstallSupervisedRemoteOperator: the
// local cohort (a viz tool, a coupled code) connects to "data" through the
// ordinary configuration API, unaware the provider lives in another OS
// process — §6.1's transparency requirement applied to §6.3's collective
// ports.
//
// Supervision state changes are bridged to framework health events on the
// proxy's port, so a severed provider surfaces as ConnectionDegraded /
// ConnectionBroken / ConnectionRestored exactly like a scalar remote port.
func InstallRemoteDistArray(fw *framework.Framework, instance string, tr transport.Transport, addr, name string, consumer array.DataMap, opts Options) (*Import, error) {
	// The supervisor may fire before Install completes (initial dial
	// retries); SetPortHealth on a not-yet-installed component is a
	// harmless error.
	if opts.Supervisor.OnState == nil {
		opts.Supervisor.OnState = func(s orb.ConnState, cause error) {
			_ = fw.SetPortHealth(instance, "data", dist.HealthFor(s), cause)
		}
	}
	imp, err := Attach(tr, addr, name, consumer, opts)
	if err != nil {
		return nil, err
	}
	proxy := &dist.ProxyComponent{PortName: "data", PortType: ccoll.PullPortType, Port: imp}
	if err := fw.Install(instance, proxy); err != nil {
		imp.Close() //nolint:errcheck
		return nil, err
	}
	return imp, nil
}
