package collective

import (
	"fmt"
	"sync"

	ccoll "repro/internal/cca/collective"
	"repro/internal/orb"
)

// Provider-side cache bounds. Plans and epochs are soft state: a consumer
// whose entry was evicted re-exchanges (IsStale), so these caps only bound
// memory against vanished consumers, never correctness.
const (
	maxPlans         = 8
	maxEpochsPerPlan = 4
)

// provPlan is one consumer's exchanged redistribution plan plus its live
// epoch snapshots.
type provPlan struct {
	plan *ccoll.Plan

	nextEpoch int64
	// epochs holds per-provider-rank data snapshots (nil for ranks the
	// plan never reads), keyed by epoch ID; epochOrder is LRU, oldest
	// first.
	epochs     map[int64][][]float64
	epochOrder []int64
}

// Publisher serves a cohort of DistArrayPorts as a dynamic servant on the
// reserved key Key(name): the provider half of a cross-process collective
// connection. One Publisher represents the whole M-rank cohort — ports[i]
// is cohort rank i — mirroring how an SPMD component's port is logically
// one port exposed by every rank (§6.3).
//
// All servant methods are driven by remote consumers; Publisher itself is
// safe for concurrent dispatch.
type Publisher struct {
	name  string
	oa    *orb.ObjectAdapter
	ports []ccoll.DistArrayPort
	side  ccoll.Side // provider side rebased to world ranks 0..M−1
	wire  []int32    // side's canonical runs, wire form

	mu        sync.Mutex
	closed    bool
	nextPlan  int64
	plans     map[int64]*provPlan
	planOrder []int64 // LRU, oldest first
}

// Publish validates the cohort and registers it on oa under Key(name).
// Every port must describe the same distribution (same map, ports[i]
// serving cohort rank i); inconsistent sides — the paper's port-information
// consistency hazard for parallel components — are rejected here rather
// than surfacing as silent data corruption at the first pull.
func Publish(oa *orb.ObjectAdapter, name string, ports []ccoll.DistArrayPort) (*Publisher, error) {
	if len(ports) == 0 {
		return nil, fmt.Errorf("collective: publish %q with empty cohort", name)
	}
	m := ports[0].Side().Map
	if m == nil {
		return nil, fmt.Errorf("collective: publish %q with unbound map", name)
	}
	if m.Ranks() != len(ports) {
		return nil, fmt.Errorf("collective: publish %q: map has %d ranks, cohort has %d ports",
			name, m.Ranks(), len(ports))
	}
	wire := encodeRuns(m)
	for i := 1; i < len(ports); i++ {
		mi := ports[i].Side().Map
		if mi == nil || mi.GlobalLen() != m.GlobalLen() || !int32sEqual(encodeRuns(mi), wire) {
			return nil, fmt.Errorf("collective: publish %q: rank %d describes a different distribution", name, i)
		}
	}
	p := &Publisher{
		name:  name,
		oa:    oa,
		ports: ports,
		side:  sideOf(m, 0),
		wire:  wire,
		plans: make(map[int64]*provPlan),
	}
	oa.RegisterDynamic(Key(name), p.handle)
	return p, nil
}

func int32sEqual(a, b []int32) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

// Ranks returns the provider cohort size M.
func (p *Publisher) Ranks() int { return len(p.ports) }

// Close unregisters the servant and drops all plan/epoch state. In-flight
// consumers observe stale-plan errors on their next call and re-exchange
// against whatever replaces this publisher (or fail if nothing does).
func (p *Publisher) Close() {
	p.mu.Lock()
	defer p.mu.Unlock()
	if p.closed {
		return
	}
	p.closed = true
	p.plans = nil
	p.planOrder = nil
	p.oa.Unregister(Key(p.name))
}

// handle is the dynamic servant: the DSI-style dispatch target for every
// protocol method on Key(name). reply is nil only for the oneway "end".
func (p *Publisher) handle(method string, args []any, reply *orb.Encoder) error {
	switch method {
	case "describe":
		return p.describe(args, reply)
	case "exchange":
		return p.exchange(args, reply)
	case "begin":
		return p.begin(args, reply)
	case "chunk":
		return p.chunk(args, reply)
	case "end":
		return p.end(args)
	default:
		return fmt.Errorf("collective: %q has no method %q", p.name, method)
	}
}

// describe() → (int32 globalLen, []int32 providerRuns). Read-only probe for
// tools that want the provider's distribution without committing to a plan.
func (p *Publisher) describe(args []any, reply *orb.Encoder) error {
	if len(args) != 0 {
		return fmt.Errorf("collective: describe takes no arguments, got %d", len(args))
	}
	reply.Encode(int32(p.side.Map.GlobalLen())) //nolint:errcheck
	reply.Encode(p.wire)                        //nolint:errcheck
	return nil
}

// exchange(int32 globalLen, []int32 consumerRuns) →
// (int64 planID, int32 globalLen, []int32 providerRuns).
//
// The consumer sends its distribution; the provider validates it, builds
// the M→N plan (provider world ranks 0..M−1, consumer M..M+N−1), caches it
// under a fresh ID, and answers with its own distribution so the consumer
// can build the byte-identical plan locally.
func (p *Publisher) exchange(args []any, reply *orb.Encoder) error {
	if len(args) != 2 {
		return fmt.Errorf("collective: exchange wants (globalLen, runs), got %d args", len(args))
	}
	n, ok := args[0].(int32)
	if !ok {
		return fmt.Errorf("collective: exchange globalLen is %T, want int32", args[0])
	}
	flat, ok := args[1].([]int32)
	if !ok {
		return fmt.Errorf("collective: exchange runs are %T, want []int32", args[1])
	}
	cm, err := decodeRuns(int(n), flat)
	if err != nil {
		return err
	}
	plan, err := ccoll.NewPlan(p.side, sideOf(cm, len(p.ports)))
	if err != nil {
		return err
	}
	p.mu.Lock()
	defer p.mu.Unlock()
	if p.closed {
		return fmt.Errorf("%s: publisher %q closed", stalePlanMsg, p.name)
	}
	p.nextPlan++
	id := p.nextPlan
	p.plans[id] = &provPlan{plan: plan, epochs: make(map[int64][][]float64)}
	p.planOrder = append(p.planOrder, id)
	for len(p.planOrder) > maxPlans {
		evict := p.planOrder[0]
		p.planOrder = p.planOrder[1:]
		delete(p.plans, evict)
	}
	reply.Encode(id)                            //nolint:errcheck
	reply.Encode(int32(p.side.Map.GlobalLen())) //nolint:errcheck
	reply.Encode(p.wire)                        //nolint:errcheck
	return nil
}

// lookupPlan fetches a live plan and marks it most-recently-used.
func (p *Publisher) lookupPlan(id int64) (*provPlan, error) {
	pp := p.plans[id]
	if pp == nil {
		return nil, fmt.Errorf("%s %d", stalePlanMsg, id)
	}
	for i, v := range p.planOrder {
		if v == id {
			p.planOrder = append(append(p.planOrder[:i:i], p.planOrder[i+1:]...), id)
			break
		}
	}
	return pp, nil
}

// begin(int64 planID) → (int64 epoch). Snapshots every provider rank's
// chunk the plan reads, so one pull observes a single consistent timestep
// even while the simulation keeps mutating its arrays.
func (p *Publisher) begin(args []any, reply *orb.Encoder) error {
	if len(args) != 1 {
		return fmt.Errorf("collective: begin wants (planID), got %d args", len(args))
	}
	id, ok := args[0].(int64)
	if !ok {
		return fmt.Errorf("collective: begin planID is %T, want int64", args[0])
	}
	p.mu.Lock()
	defer p.mu.Unlock()
	pp, err := p.lookupPlan(id)
	if err != nil {
		return err
	}
	snap := make([][]float64, len(p.ports))
	for r := range p.ports {
		want := pp.plan.SrcLocalLen(r)
		if want == 0 {
			continue
		}
		// A SnapshotPort hands over retain-forever storage; a plain
		// DistArrayPort's chunk may be mutated in place by the next
		// timestep, so it is copied before entering the epoch map.
		var data []float64
		if sp, ok := p.ports[r].(ccoll.SnapshotPort); ok {
			data = sp.Snapshot()
		} else {
			data = append([]float64(nil), p.ports[r].LocalData()...)
		}
		if len(data) < want {
			return fmt.Errorf("collective: %q rank %d holds %d elements, map says %d",
				p.name, r, len(data), want)
		}
		snap[r] = data[:want]
	}
	pp.nextEpoch++
	ep := pp.nextEpoch
	pp.epochs[ep] = snap
	pp.epochOrder = append(pp.epochOrder, ep)
	for len(pp.epochOrder) > maxEpochsPerPlan {
		evict := pp.epochOrder[0]
		pp.epochOrder = pp.epochOrder[1:]
		delete(pp.epochs, evict)
	}
	reply.Encode(ep) //nolint:errcheck
	return nil
}

// chunk(int64 planID, int64 epoch, int32 src, int32 dst, int32 lo,
// int32 count) → []float64.
//
// Serves elements [lo, lo+count) of the (src → dst) pair's packed stream
// from the epoch snapshot. The payload is packed directly into the reply
// encoder's grown span (Float64SliceSpan + PackRangeBytes), so serving a
// chunk is exactly one pass over the data; large chunks then ride the
// transport's zero-copy writev path unmodified.
func (p *Publisher) chunk(args []any, reply *orb.Encoder) error {
	if len(args) != 6 {
		return fmt.Errorf("collective: chunk wants (planID, epoch, src, dst, lo, count), got %d args", len(args))
	}
	id, ok0 := args[0].(int64)
	ep, ok1 := args[1].(int64)
	src, ok2 := args[2].(int32)
	dst, ok3 := args[3].(int32)
	lo, ok4 := args[4].(int32)
	count, ok5 := args[5].(int32)
	if !ok0 || !ok1 || !ok2 || !ok3 || !ok4 || !ok5 {
		return fmt.Errorf("collective: chunk argument types %T,%T,%T,%T,%T,%T", args[0], args[1], args[2], args[3], args[4], args[5])
	}
	p.mu.Lock()
	pp, err := p.lookupPlan(id)
	if err != nil {
		p.mu.Unlock()
		return err
	}
	snap := pp.epochs[ep]
	if snap == nil {
		p.mu.Unlock()
		err := fmt.Errorf("%s %d of plan %d", staleEpochMsg, ep, id)
		return err
	}
	plan := pp.plan
	p.mu.Unlock()
	// Snapshot slices are immutable once published into the epoch map, so
	// packing proceeds outside the lock and chunk calls from a pipelined
	// consumer serve concurrently.
	if src < 0 || int(src) >= len(p.ports) {
		return fmt.Errorf("collective: chunk names provider rank %d of %d", src, len(p.ports))
	}
	pair, ok := plan.Pair(int(src), len(p.ports)+int(dst))
	if !ok {
		return fmt.Errorf("collective: plan %d moves no data %d→%d", id, src, dst)
	}
	if lo < 0 || count < 0 || int(lo)+int(count) > pair.Total() {
		return fmt.Errorf("collective: chunk [%d,%d) of %d-element stream", lo, int(lo)+int(count), pair.Total())
	}
	span := reply.Float64SliceSpan(int(count))
	if err := pair.PackRangeBytes(snap[src], int(lo), int(lo)+int(count), span); err != nil {
		return err
	}
	cChunksServed.Inc()
	cBytesServed.Add(uint64(8 * int(count)))
	return nil
}

// end(int64 planID, int64 epoch) — oneway. Releases the epoch snapshot
// promptly; a lost "end" is harmless because epochs are LRU-evicted.
func (p *Publisher) end(args []any) error {
	if len(args) != 2 {
		return fmt.Errorf("collective: end wants (planID, epoch), got %d args", len(args))
	}
	id, ok0 := args[0].(int64)
	ep, ok1 := args[1].(int64)
	if !ok0 || !ok1 {
		return fmt.Errorf("collective: end argument types %T,%T", args[0], args[1])
	}
	p.mu.Lock()
	defer p.mu.Unlock()
	if pp := p.plans[id]; pp != nil {
		if _, live := pp.epochs[ep]; live {
			delete(pp.epochs, ep)
			for i, v := range pp.epochOrder {
				if v == ep {
					pp.epochOrder = append(pp.epochOrder[:i], pp.epochOrder[i+1:]...)
					break
				}
			}
		}
	}
	return nil
}
