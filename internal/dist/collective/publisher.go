package collective

import (
	"encoding/binary"
	"fmt"
	"sync"

	ccoll "repro/internal/cca/collective"
	"repro/internal/orb"
	"repro/internal/transport"
)

// Provider-side cache bounds. Plans and epochs are soft state: a consumer
// whose entry was evicted re-exchanges (IsStale), so these caps only bound
// memory against vanished consumers, never correctness.
const (
	maxPlans         = 8
	maxEpochsPerPlan = 4
)

// frameKey identifies one packed chunk frame within an epoch: the
// (src,dst) pair plus the [lo, lo+count) element window. Subscribers with
// the same plan and ChunkBytes ask for byte-identical windows, so the key
// is exact — no partial-overlap handling.
type frameKey struct {
	src, dst, lo, count int32
}

// provEpoch is one epoch's snapshot plus (in epoch-cache mode) its packed
// frame cache. snap is immutable once published; frames is guarded by mu
// because concurrent subscribers populate it while others read.
type provEpoch struct {
	snap [][]float64
	gen  int64 // publisher generation at snapshot time (0 in legacy mode)

	mu     sync.Mutex
	frames map[frameKey]*transport.SharedBuf
}

// releaseFrames drops the epoch's cached frame references. In-flight
// sends hold their own references, so eviction never tears a write.
func (e *provEpoch) releaseFrames() {
	e.mu.Lock()
	for _, b := range e.frames {
		b.Release()
	}
	e.frames = nil
	e.mu.Unlock()
}

// provPlan is one exchanged redistribution plan plus its live epoch
// snapshots. In epoch-cache mode the plan is shared by every consumer
// whose distribution digests identically (key), so one epoch serves the
// whole subscriber fleet.
type provPlan struct {
	plan *ccoll.Plan
	key  string // dedup digest; "" in legacy mode

	nextEpoch int64
	// epochs holds snapshots keyed by epoch ID; epochOrder is LRU, oldest
	// first.
	epochs     map[int64]*provEpoch
	epochOrder []int64
}

// Publisher serves a cohort of DistArrayPorts as a dynamic servant on the
// reserved key Key(name): the provider half of a cross-process collective
// connection. One Publisher represents the whole M-rank cohort — ports[i]
// is cohort rank i — mirroring how an SPMD component's port is logically
// one port exposed by every rank (§6.3).
//
// All servant methods are driven by remote consumers; Publisher itself is
// safe for concurrent dispatch.
type Publisher struct {
	name  string
	oa    *orb.ObjectAdapter
	ports []ccoll.DistArrayPort
	side  ccoll.Side // provider side rebased to world ranks 0..M−1
	wire  []int32    // side's canonical runs, wire form
	cache bool       // WithEpochCache: dedup plans, share epochs, cache frames

	mu        sync.Mutex
	closed    bool
	gen       int64 // epoch-cache generation; Advance bumps it
	nextPlan  int64
	plans     map[int64]*provPlan
	planKeys  map[string]int64 // digest → plan ID (epoch-cache mode)
	planOrder []int64          // LRU, oldest first
}

// PublishOption configures a Publisher.
type PublishOption func(*Publisher)

// WithEpochCache turns on the high-fan-out serving tier:
//
//   - plan dedup: consumers presenting the same distribution share one
//     plan ID, so a thousand identical subscribers cost one plan;
//   - epoch sharing: "begin" returns the live epoch of the current
//     generation instead of snapshotting per consumer — every subscriber
//     of a generation sees the same frame;
//   - frame caching: each chunk window is packed once into a
//     reference-counted buffer and spliced zero-copy into every
//     subscriber's reply.
//
// The publisher must call Advance after mutating the underlying arrays;
// between Advances, pulls observe the cached snapshot. Without this
// option every begin snapshots fresh state (one-consumer-one-epoch
// legacy semantics) and Advance is a no-op.
func WithEpochCache() PublishOption {
	return func(p *Publisher) {
		p.cache = true
		p.gen = 1
		p.planKeys = make(map[string]int64)
	}
}

// Publish validates the cohort and registers it on oa under Key(name).
// Every port must describe the same distribution (same map, ports[i]
// serving cohort rank i); inconsistent sides — the paper's port-information
// consistency hazard for parallel components — are rejected here rather
// than surfacing as silent data corruption at the first pull.
func Publish(oa *orb.ObjectAdapter, name string, ports []ccoll.DistArrayPort, opts ...PublishOption) (*Publisher, error) {
	if len(ports) == 0 {
		return nil, fmt.Errorf("collective: publish %q with empty cohort", name)
	}
	m := ports[0].Side().Map
	if m == nil {
		return nil, fmt.Errorf("collective: publish %q with unbound map", name)
	}
	if m.Ranks() != len(ports) {
		return nil, fmt.Errorf("collective: publish %q: map has %d ranks, cohort has %d ports",
			name, m.Ranks(), len(ports))
	}
	wire := encodeRuns(m)
	for i := 1; i < len(ports); i++ {
		mi := ports[i].Side().Map
		if mi == nil || mi.GlobalLen() != m.GlobalLen() || !int32sEqual(encodeRuns(mi), wire) {
			return nil, fmt.Errorf("collective: publish %q: rank %d describes a different distribution", name, i)
		}
	}
	p := &Publisher{
		name:  name,
		oa:    oa,
		ports: ports,
		side:  sideOf(m, 0),
		wire:  wire,
		plans: make(map[int64]*provPlan),
	}
	for _, o := range opts {
		o(p)
	}
	oa.RegisterDynamic(Key(name), p.handle)
	return p, nil
}

func int32sEqual(a, b []int32) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

// Ranks returns the provider cohort size M.
func (p *Publisher) Ranks() int { return len(p.ports) }

// Advance declares the published arrays mutated: the next begin on any
// plan snapshots fresh data instead of serving the live cached epoch.
// Call it once per timestep (after the mutation), not per subscriber —
// it is the epoch cache's only invalidation point. No-op without
// WithEpochCache.
func (p *Publisher) Advance() {
	p.mu.Lock()
	if p.cache {
		p.gen++
	}
	p.mu.Unlock()
}

// Close unregisters the servant and drops all plan/epoch state. In-flight
// consumers observe stale-plan errors on their next call and re-exchange
// against whatever replaces this publisher (or fail if nothing does).
func (p *Publisher) Close() {
	p.mu.Lock()
	defer p.mu.Unlock()
	if p.closed {
		return
	}
	p.closed = true
	for _, pp := range p.plans {
		for _, ep := range pp.epochs {
			ep.releaseFrames()
		}
	}
	p.plans = nil
	p.planKeys = nil
	p.planOrder = nil
	p.oa.Unregister(Key(p.name))
}

// handle is the dynamic servant: the DSI-style dispatch target for every
// protocol method on Key(name). reply is nil only for the oneway "end".
func (p *Publisher) handle(method string, args []any, reply *orb.Encoder) error {
	switch method {
	case "describe":
		return p.describe(args, reply)
	case "exchange":
		return p.exchange(args, reply)
	case "begin":
		return p.begin(args, reply)
	case "chunk":
		return p.chunk(args, reply)
	case "end":
		return p.end(args)
	default:
		return fmt.Errorf("collective: %q has no method %q", p.name, method)
	}
}

// describe() → (int32 globalLen, []int32 providerRuns). Read-only probe for
// tools that want the provider's distribution without committing to a plan.
func (p *Publisher) describe(args []any, reply *orb.Encoder) error {
	if len(args) != 0 {
		return fmt.Errorf("collective: describe takes no arguments, got %d", len(args))
	}
	reply.Encode(int32(p.side.Map.GlobalLen())) //nolint:errcheck
	reply.Encode(p.wire)                        //nolint:errcheck
	return nil
}

// planDigest is the dedup key for an exchanged consumer distribution:
// global length plus the canonical run list, byte-packed. Two consumers
// with equal digests build byte-identical plans, so they can share one.
func planDigest(n int32, flat []int32) string {
	b := make([]byte, 4+4*len(flat))
	binary.LittleEndian.PutUint32(b, uint32(n))
	for i, v := range flat {
		binary.LittleEndian.PutUint32(b[4+4*i:], uint32(v))
	}
	return string(b)
}

// exchange(int32 globalLen, []int32 consumerRuns) →
// (int64 planID, int32 globalLen, []int32 providerRuns).
//
// The consumer sends its distribution; the provider validates it, builds
// the M→N plan (provider world ranks 0..M−1, consumer M..M+N−1), caches it
// under a fresh ID, and answers with its own distribution so the consumer
// can build the byte-identical plan locally. In epoch-cache mode an
// identical distribution resolves to the already-cached plan, so a fleet
// of uniform subscribers shares one plan and one epoch stream.
func (p *Publisher) exchange(args []any, reply *orb.Encoder) error {
	if len(args) != 2 {
		return fmt.Errorf("collective: exchange wants (globalLen, runs), got %d args", len(args))
	}
	n, ok := args[0].(int32)
	if !ok {
		return fmt.Errorf("collective: exchange globalLen is %T, want int32", args[0])
	}
	flat, ok := args[1].([]int32)
	if !ok {
		return fmt.Errorf("collective: exchange runs are %T, want []int32", args[1])
	}
	answer := func(id int64) {
		reply.Encode(id)                            //nolint:errcheck
		reply.Encode(int32(p.side.Map.GlobalLen())) //nolint:errcheck
		reply.Encode(p.wire)                        //nolint:errcheck
	}
	var digest string
	if p.cache {
		digest = planDigest(n, flat)
		p.mu.Lock()
		if !p.closed {
			if id, ok := p.planKeys[digest]; ok {
				if _, err := p.lookupPlan(id); err == nil {
					cPlanCacheHits.Inc()
					answer(id)
					p.mu.Unlock()
					return nil
				}
			}
		}
		p.mu.Unlock()
	}
	cm, err := decodeRuns(int(n), flat)
	if err != nil {
		return err
	}
	plan, err := ccoll.NewPlan(p.side, sideOf(cm, len(p.ports)))
	if err != nil {
		return err
	}
	p.mu.Lock()
	defer p.mu.Unlock()
	if p.closed {
		return fmt.Errorf("%s: publisher %q closed", stalePlanMsg, p.name)
	}
	if p.cache {
		// Re-check under the lock: a concurrent exchange of the same
		// distribution may have won the build race.
		if id, ok := p.planKeys[digest]; ok {
			if _, err := p.lookupPlan(id); err == nil {
				cPlanCacheHits.Inc()
				answer(id)
				return nil
			}
		}
	}
	p.nextPlan++
	id := p.nextPlan
	p.plans[id] = &provPlan{plan: plan, key: digest, epochs: make(map[int64]*provEpoch)}
	if p.cache {
		p.planKeys[digest] = id
	}
	p.planOrder = append(p.planOrder, id)
	for len(p.planOrder) > maxPlans {
		evict := p.planOrder[0]
		p.planOrder = p.planOrder[1:]
		if pp := p.plans[evict]; pp != nil {
			for _, ep := range pp.epochs {
				ep.releaseFrames()
			}
			if pp.key != "" && p.planKeys[pp.key] == evict {
				delete(p.planKeys, pp.key)
			}
		}
		delete(p.plans, evict)
	}
	answer(id)
	return nil
}

// lookupPlan fetches a live plan and marks it most-recently-used.
func (p *Publisher) lookupPlan(id int64) (*provPlan, error) {
	pp := p.plans[id]
	if pp == nil {
		return nil, fmt.Errorf("%s %d", stalePlanMsg, id)
	}
	for i, v := range p.planOrder {
		if v == id {
			p.planOrder = append(append(p.planOrder[:i:i], p.planOrder[i+1:]...), id)
			break
		}
	}
	return pp, nil
}

// begin(int64 planID) → (int64 epoch). Snapshots every provider rank's
// chunk the plan reads, so one pull observes a single consistent timestep
// even while the simulation keeps mutating its arrays. In epoch-cache
// mode, a live epoch of the current generation is returned as-is: the
// snapshot (and its packed frames) amortizes over every subscriber until
// the publisher Advances.
func (p *Publisher) begin(args []any, reply *orb.Encoder) error {
	if len(args) != 1 {
		return fmt.Errorf("collective: begin wants (planID), got %d args", len(args))
	}
	id, ok := args[0].(int64)
	if !ok {
		return fmt.Errorf("collective: begin planID is %T, want int64", args[0])
	}
	p.mu.Lock()
	defer p.mu.Unlock()
	pp, err := p.lookupPlan(id)
	if err != nil {
		return err
	}
	if p.cache {
		for i := len(pp.epochOrder) - 1; i >= 0; i-- {
			ep := pp.epochOrder[i]
			if e := pp.epochs[ep]; e != nil && e.gen == p.gen {
				cEpochCacheHits.Inc()
				reply.Encode(ep) //nolint:errcheck
				return nil
			}
		}
		cEpochCacheMisses.Inc()
	}
	snap := make([][]float64, len(p.ports))
	for r := range p.ports {
		want := pp.plan.SrcLocalLen(r)
		if want == 0 {
			continue
		}
		// A SnapshotPort hands over retain-forever storage; a plain
		// DistArrayPort's chunk may be mutated in place by the next
		// timestep, so it is copied before entering the epoch map.
		var data []float64
		if sp, ok := p.ports[r].(ccoll.SnapshotPort); ok {
			data = sp.Snapshot()
		} else {
			data = append([]float64(nil), p.ports[r].LocalData()...)
		}
		if len(data) < want {
			return fmt.Errorf("collective: %q rank %d holds %d elements, map says %d",
				p.name, r, len(data), want)
		}
		snap[r] = data[:want]
	}
	pp.nextEpoch++
	ep := pp.nextEpoch
	e := &provEpoch{snap: snap}
	if p.cache {
		e.gen = p.gen
		e.frames = make(map[frameKey]*transport.SharedBuf)
	}
	pp.epochs[ep] = e
	pp.epochOrder = append(pp.epochOrder, ep)
	for len(pp.epochOrder) > maxEpochsPerPlan {
		evict := pp.epochOrder[0]
		pp.epochOrder = pp.epochOrder[1:]
		if old := pp.epochs[evict]; old != nil {
			old.releaseFrames()
		}
		delete(pp.epochs, evict)
	}
	reply.Encode(ep) //nolint:errcheck
	return nil
}

// chunk(int64 planID, int64 epoch, int32 src, int32 dst, int32 lo,
// int32 count) → []float64.
//
// Serves elements [lo, lo+count) of the (src → dst) pair's packed stream
// from the epoch snapshot. In legacy mode the payload is packed directly
// into the reply encoder's grown span (Float64SliceSpan + PackRangeBytes),
// so serving a chunk is exactly one pass over the data. In epoch-cache
// mode the window is packed once into a reference-counted shared buffer
// and spliced into every subscriber's reply zero-copy: N subscribers cost
// one pack and N writev references, which is what makes publisher CPU
// sublinear in subscriber count.
func (p *Publisher) chunk(args []any, reply *orb.Encoder) error {
	if len(args) != 6 {
		return fmt.Errorf("collective: chunk wants (planID, epoch, src, dst, lo, count), got %d args", len(args))
	}
	id, ok0 := args[0].(int64)
	ep, ok1 := args[1].(int64)
	src, ok2 := args[2].(int32)
	dst, ok3 := args[3].(int32)
	lo, ok4 := args[4].(int32)
	count, ok5 := args[5].(int32)
	if !ok0 || !ok1 || !ok2 || !ok3 || !ok4 || !ok5 {
		return fmt.Errorf("collective: chunk argument types %T,%T,%T,%T,%T,%T", args[0], args[1], args[2], args[3], args[4], args[5])
	}
	p.mu.Lock()
	pp, err := p.lookupPlan(id)
	if err != nil {
		p.mu.Unlock()
		return err
	}
	epoch := pp.epochs[ep]
	if epoch == nil {
		p.mu.Unlock()
		err := fmt.Errorf("%s %d of plan %d", staleEpochMsg, ep, id)
		return err
	}
	plan := pp.plan
	p.mu.Unlock()
	// Snapshot slices are immutable once published into the epoch map, so
	// packing proceeds outside the lock and chunk calls from a pipelined
	// consumer serve concurrently.
	if src < 0 || int(src) >= len(p.ports) {
		return fmt.Errorf("collective: chunk names provider rank %d of %d", src, len(p.ports))
	}
	pair, ok := plan.Pair(int(src), len(p.ports)+int(dst))
	if !ok {
		return fmt.Errorf("collective: plan %d moves no data %d→%d", id, src, dst)
	}
	if lo < 0 || count < 0 || int(lo)+int(count) > pair.Total() {
		return fmt.Errorf("collective: chunk [%d,%d) of %d-element stream", lo, int(lo)+int(count), pair.Total())
	}
	if p.cache {
		if err := p.chunkShared(epoch, pair, frameKey{src: src, dst: dst, lo: lo, count: count}, reply); err != nil {
			return err
		}
	} else {
		span := reply.Float64SliceSpan(int(count))
		if err := pair.PackRangeBytes(epoch.snap[src], int(lo), int(lo)+int(count), span); err != nil {
			return err
		}
	}
	cChunksServed.Inc()
	cBytesServed.Add(uint64(8 * int(count)))
	return nil
}

// chunkShared serves one chunk window through the epoch's frame cache:
// hit → splice the cached buffer; miss → pack once (outside the cache
// lock), publish, splice. A pack race between concurrent subscribers is
// resolved in favor of the first insert so every reply shares one buffer.
func (p *Publisher) chunkShared(epoch *provEpoch, pair ccoll.PairStream, k frameKey, reply *orb.Encoder) error {
	epoch.mu.Lock()
	if b := epoch.frames[k]; b != nil {
		err := reply.AppendSharedFloat64s(b)
		epoch.mu.Unlock()
		cFrameCacheHits.Inc()
		return err
	}
	epoch.mu.Unlock()
	cFrameCacheMisses.Inc()
	buf := transport.NewSharedBuf(8 * int(k.count))
	if err := pair.PackRangeBytes(epoch.snap[k.src], int(k.lo), int(k.lo)+int(k.count), buf.Bytes()); err != nil {
		buf.Release()
		return err
	}
	epoch.mu.Lock()
	if b := epoch.frames[k]; b != nil {
		// Lost the pack race: serve the winner so subscribers share bytes.
		err := reply.AppendSharedFloat64s(b)
		epoch.mu.Unlock()
		buf.Release()
		return err
	}
	err := reply.AppendSharedFloat64s(buf)
	cached := false
	if err == nil && epoch.frames != nil {
		epoch.frames[k] = buf // the cache keeps our reference
		cached = true
	}
	epoch.mu.Unlock()
	if !cached {
		// Epoch evicted mid-pack (or append failed): the reply still
		// holds its own reference; drop ours.
		buf.Release()
	}
	return err
}

// end(int64 planID, int64 epoch) — oneway. In legacy mode it releases the
// per-consumer epoch snapshot promptly; a lost "end" is harmless because
// epochs are LRU-evicted. In epoch-cache mode the epoch is shared by
// every subscriber, so end is a no-op and generation turnover (Advance)
// plus the LRU governs epoch lifetime.
func (p *Publisher) end(args []any) error {
	if len(args) != 2 {
		return fmt.Errorf("collective: end wants (planID, epoch), got %d args", len(args))
	}
	id, ok0 := args[0].(int64)
	ep, ok1 := args[1].(int64)
	if !ok0 || !ok1 {
		return fmt.Errorf("collective: end argument types %T,%T", args[0], args[1])
	}
	if p.cache {
		return nil
	}
	p.mu.Lock()
	defer p.mu.Unlock()
	if pp := p.plans[id]; pp != nil {
		if e, live := pp.epochs[ep]; live && e != nil {
			e.releaseFrames()
			delete(pp.epochs, ep)
			for i, v := range pp.epochOrder {
				if v == ep {
					pp.epochOrder = append(pp.epochOrder[:i], pp.epochOrder[i+1:]...)
					break
				}
			}
		}
	}
	return nil
}
