// Package dist implements distributed CCA port connections: the paper's
// §6.1 requirement that "loosely coupled distributed connections should be
// available through the very same interface as the tightly coupled direct
// connections, without the components being aware of the connection type."
//
// A provides port is exported from its home framework through an ORB object
// adapter; a remote framework installs a proxy component whose provides
// port implements the same Go interface but forwards each call through
// the ORB client. Because the proxy satisfies the identical port interface,
// the using component cannot tell a remote connection from a direct one —
// only the latency differs (measured in experiment E2; examples/remote is
// the end-to-end scenario).
//
// Generic forwarding uses SIDL reflection metadata (method names and
// CDR-encodable arguments); for the ESI interfaces, typed adapters are
// provided so solver components work unmodified against remote operators.
//
// Remote connections are supervised (DESIGN.md §8): the installers bridge
// orb.Supervised state transitions to framework port health, so severed
// links surface as ConnectionDegraded/Broken/Restored events. Experiment
// E7b prices the supervision overhead and the chaos suite
// (chaos_test.go, heavier scenarios under -tags chaos) proves
// convergence-under-faults. The collective subpackage
// (repro/internal/dist/collective) carries §6.3 M→N redistribution over
// the same machinery, measured by experiment E11.
package dist
