package dist

// Crash-restart chaos: a remote step-wise CG solver is killed
// mid-Krylov-iteration, relaunched at a fresh address by the supervisor's
// RestartPolicy, restored from its last per-iteration checkpoint through
// the reserved orb/restore key, and driven on to convergence. The run must
// reach the same answer a clean run produces, the caller must see only
// retryable (never Fatal) errors, and the framework event stream must show
// the Degraded→Restored window.

import (
	"fmt"
	"math"
	"sync"
	"testing"
	"time"

	"repro/internal/cca"
	"repro/internal/cca/framework"
	"repro/internal/ckpt"
	"repro/internal/esi"
	"repro/internal/linalg"
	"repro/internal/orb"
	"repro/internal/transport"
)

// iterKey is the dynamic-servant key of the exported step-wise solver.
const iterKey = "op/itersolver"

// iterServer is one incarnation of the remote solver process: a framework
// holding the operator and an IterativeSolverComponent, served over a
// dynamic servant that exposes the step loop and the checkpoint surface.
type iterServer struct {
	fw     *framework.Framework
	solver *esi.IterativeSolverComponent
	exp    *Exporter
	addr   string
}

func startIterServer(tr transport.Transport, addr string, m *linalg.CSR) (*iterServer, error) {
	fw := framework.New(framework.Options{TypeCheck: esi.TypeChecker()})
	if err := fw.Install("op", esi.NewOperatorComponent(m)); err != nil {
		return nil, err
	}
	solver := esi.NewIterativeSolverComponent()
	if err := fw.Install("itersolver", solver); err != nil {
		return nil, err
	}
	if _, err := fw.Connect("itersolver", "A", "op", "A"); err != nil {
		return nil, err
	}
	l, err := tr.Listen(addr)
	if err != nil {
		return nil, err
	}
	exp := NewExporter(fw, l)
	registerIterServant(exp.OA, solver)
	// The restore half of the RestartPolicy contract: replayed checkpoint
	// bytes reconstruct the solver before any step call lands.
	orb.RegisterRestore(exp.OA, func(state []byte) error {
		return ckpt.Unmarshal(state, solver)
	})
	return &iterServer{fw: fw, solver: solver, exp: exp, addr: exp.Addr()}, nil
}

// registerIterServant exposes the step-wise solver's wire surface.
func registerIterServant(oa *orb.ObjectAdapter, s *esi.IterativeSolverComponent) {
	oa.RegisterDynamic(iterKey, func(method string, args []any, reply *orb.Encoder) error {
		switch method {
		case "begin":
			b, ok := args[0].([]float64)
			if !ok {
				return fmt.Errorf("begin: arg is %T", args[0])
			}
			if err := s.Begin(b); err != nil {
				return err
			}
			return reply.Encode(true)
		case "step":
			k, ok := args[0].(int64)
			if !ok {
				return fmt.Errorf("step: arg is %T", args[0])
			}
			it, resid, done, err := s.Step(int(k))
			if err != nil {
				return err
			}
			reply.Encode(int64(it)) //nolint:errcheck
			reply.Encode(resid)     //nolint:errcheck
			return reply.Encode(done)
		case "checkpoint":
			state, err := ckpt.Marshal(s)
			if err != nil {
				return err
			}
			return reply.Encode(state)
		case "solution":
			return reply.Encode(s.Solution())
		default:
			return fmt.Errorf("itersolver has no method %q", method)
		}
	})
}

func TestChaosKillMidKrylovRestoreResumes(t *testing.T) {
	tr := transport.NewFaulty(&transport.InProc{}, transport.Faults{Seed: 5})
	m := linalg.Poisson2D(8, 8)
	b := make([]float64, m.NRows)
	if err := m.Apply(linalg.Ones(m.NCols), b); err != nil {
		t.Fatal(err)
	}

	srv, err := startIterServer(tr, "chaos-restart-0", m)
	if err != nil {
		t.Fatal(err)
	}

	// Client side: a framework whose event stream observes the outage, a
	// supervised connection whose RestartPolicy relaunches the solver at a
	// fresh address and replays the last checkpoint.
	clientFW := framework.New(framework.Options{
		Flavor:    cca.FlavorInProcess | cca.FlavorDistributed,
		TypeCheck: esi.TypeChecker(),
	})
	trap := newEventTrap()
	clientFW.AddEventListener(trap)

	var mu sync.Mutex
	var lastCkpt []byte
	relaunches := 0
	opts := chaosOpts()
	opts.Idempotent = orb.AllIdempotent
	opts.OnState = func(st orb.ConnState, cause error) {
		_ = clientFW.SetPortHealth("remoteSolver", "solver", HealthFor(st), cause)
	}
	opts.Restart = &orb.RestartPolicy{
		Relaunch: func(attempt int) (string, error) {
			// A genuinely fresh incarnation: new framework, new solver
			// component (cold state), new address. The address counter is
			// global (not per-outage attempt) so incarnations never collide.
			mu.Lock()
			relaunches++
			n := relaunches
			mu.Unlock()
			next, err := startIterServer(tr, fmt.Sprintf("chaos-restart-%d", n), m)
			if err != nil {
				return "", err
			}
			return next.addr, nil
		},
		Checkpoint: func() []byte {
			mu.Lock()
			defer mu.Unlock()
			return lastCkpt
		},
	}
	sup, err := orb.DialSupervised(tr, srv.addr, opts)
	if err != nil {
		t.Fatal(err)
	}
	defer sup.Close()
	if err := clientFW.Install("remoteSolver", &ProxyComponent{
		PortName: "solver", PortType: esi.TypeIterativeSolver,
		Port: &RemotePort{Client: sup, Key: iterKey, Type: esi.TypeIterativeSolver},
	}); err != nil {
		t.Fatal(err)
	}

	// call retries retryable failures at the application level — the shape
	// of a standing caller riding out a Degraded window. A Fatal error is
	// an immediate test failure (acceptance: callers never see one).
	call := func(method string, args ...any) []any {
		t.Helper()
		deadline := time.Now().Add(15 * time.Second)
		for {
			res, err := sup.Invoke(iterKey, method, args...)
			if err == nil {
				return res
			}
			if orb.Classify(err) == orb.ClassFatal {
				t.Fatalf("fatal error during %s: %v", method, err)
			}
			if time.Now().After(deadline) {
				t.Fatalf("%s never recovered: %v", method, err)
			}
			time.Sleep(2 * time.Millisecond)
		}
	}

	call("begin", b)
	const killAt = 5
	killed := false
	itBeforeKill := int64(0)
	for guard := 0; ; guard++ {
		if guard > 10000 {
			t.Fatal("solve did not converge")
		}
		res := call("step", int64(1))
		it, done := res[0].(int64), res[2].(bool)
		// The decoded []byte aliases the client's pooled frame buffer; copy
		// before retaining it past this call.
		ck := call("checkpoint")
		mu.Lock()
		lastCkpt = append([]byte(nil), ck[0].([]byte)...)
		mu.Unlock()
		if !killed && it >= killAt {
			// Kill the solver mid-Krylov: the loop is live, state exists
			// only in the servant's memory and our checkpoint bytes.
			killed = true
			itBeforeKill = it
			srv.exp.Close()
			tr.SeverAll()
		}
		if done {
			break
		}
	}

	// The supervisor must actually have relaunched (not just redialed the
	// corpse), and the relaunched solver must have resumed from the replayed
	// checkpoint: a cold solver would fail "step before begin" — a Fatal
	// error call() turns into test failure.
	mu.Lock()
	r := relaunches
	mu.Unlock()
	if r == 0 {
		t.Fatal("server was never relaunched")
	}
	if got := call("step", int64(0))[0].(int64); got < itBeforeKill {
		t.Errorf("iteration count went backwards after restore: %d < %d", got, itBeforeKill)
	}

	// Same answer as the clean run: x = ones within tolerance.
	x := call("solution")[0].([]float64)
	if len(x) != m.NRows {
		t.Fatalf("solution has %d entries, want %d", len(x), m.NRows)
	}
	for i, v := range x {
		if math.Abs(v-1) > 1e-6 {
			t.Fatalf("x[%d] = %v: restart changed the answer", i, v)
		}
	}

	// The outage was visible through the configuration API as a
	// Degraded→Restored window on the proxy port.
	trap.wait(t, cca.EventConnectionDegraded)
	trap.wait(t, cca.EventConnectionRestored)
	if h, err := clientFW.PortHealth("remoteSolver", "solver"); err != nil || h != cca.HealthHealthy {
		t.Errorf("post-recovery health = %v, %v", h, err)
	}
}
