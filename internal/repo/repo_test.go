package repo

import (
	"errors"
	"strings"
	"testing"

	"repro/internal/cca"
	"repro/internal/cca/framework"
)

const solverSIDL = `
package esi {
  interface Object { string typeName(); }
  interface Operator extends Object {
    void apply(in array<double,1> x, out array<double,1> y);
  }
  interface Solver extends Operator {
    void solve(in array<double,1> b, inout array<double,1> x);
  }
}
`

const meshSIDL = `
package chad {
  interface Mesh { int numNodes(); }
}
`

// stubComponent is a minimal installable component.
type stubComponent struct {
	provides []cca.PortInfo
	uses     []cca.PortInfo
}

func (s *stubComponent) SetServices(svc cca.Services) error {
	for _, p := range s.provides {
		if err := svc.AddProvidesPort(struct{}{}, p); err != nil {
			return err
		}
	}
	for _, u := range s.uses {
		if err := svc.RegisterUsesPort(u); err != nil {
			return err
		}
	}
	return nil
}

func depositSolverWorld(t *testing.T) *Repository {
	t.Helper()
	r := New()
	if err := r.Deposit(Entry{
		Name: "esi.Interfaces", Version: "1.0",
		Description: "ESI interface standard (no factory)",
		SIDL:        solverSIDL,
	}); err != nil {
		t.Fatal(err)
	}
	if err := r.Deposit(Entry{
		Name: "esi.CGComponent", Version: "0.9",
		Description: "conjugate gradient solver component",
		Provides:    []PortSpec{{Name: "solver", Type: "esi.Solver"}},
		Factory: func() cca.Component {
			return &stubComponent{provides: []cca.PortInfo{{Name: "solver", Type: "esi.Solver"}}}
		},
	}); err != nil {
		t.Fatal(err)
	}
	if err := r.Deposit(Entry{
		Name: "chad.FlowComponent",
		SIDL: meshSIDL,
		Uses: []PortSpec{{Name: "linsolve", Type: "esi.Operator"}},
		Factory: func() cca.Component {
			return &stubComponent{uses: []cca.PortInfo{{Name: "linsolve", Type: "esi.Operator"}}}
		},
	}); err != nil {
		t.Fatal(err)
	}
	return r
}

func TestDepositRetrieveList(t *testing.T) {
	r := depositSolverWorld(t)
	e, err := r.Retrieve("esi.CGComponent")
	if err != nil || e.Version != "0.9" {
		t.Fatalf("retrieve: %+v, %v", e, err)
	}
	if _, err := r.Retrieve("nope"); !errors.Is(err, ErrNotFound) {
		t.Errorf("err = %v", err)
	}
	want := []string{"chad.FlowComponent", "esi.CGComponent", "esi.Interfaces"}
	got := r.List()
	if len(got) != len(want) {
		t.Fatalf("list = %v", got)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Errorf("list[%d] = %s", i, got[i])
		}
	}
}

func TestDepositValidation(t *testing.T) {
	r := New()
	if err := r.Deposit(Entry{}); !errors.Is(err, ErrBadEntry) {
		t.Errorf("empty err = %v", err)
	}
	if err := r.Deposit(Entry{Name: "x", SIDL: "not sidl"}); err == nil {
		t.Error("bad sidl accepted")
	}
	if err := r.Deposit(Entry{Name: "x", Provides: []PortSpec{{Name: "p", Type: "ghost.Type"}}}); !errors.Is(err, ErrUnknownTyp) {
		t.Errorf("unknown type err = %v", err)
	}
	if err := r.Deposit(Entry{Name: "y", SIDL: solverSIDL}); err != nil {
		t.Fatal(err)
	}
	if err := r.Deposit(Entry{Name: "y"}); !errors.Is(err, ErrExists) {
		t.Errorf("dup err = %v", err)
	}
	// Conflicting SIDL rejected atomically: the first deposit stays valid.
	if err := r.Deposit(Entry{Name: "z", SIDL: `package esi { interface Object {} }`}); err == nil {
		t.Error("conflicting SIDL accepted")
	}
	if r.Table().Lookup("esi.Solver") != "interface" {
		t.Error("table corrupted by failed deposit")
	}
}

func TestSearchByProvidedType(t *testing.T) {
	r := depositSolverWorld(t)
	// esi.Solver is a subtype of esi.Operator, so a search for Operator
	// providers must find the CG component.
	hits := r.Search(Query{ProvidesType: "esi.Operator"})
	if len(hits) != 1 || hits[0].Name != "esi.CGComponent" {
		t.Fatalf("hits = %+v", hits)
	}
	if hits := r.Search(Query{ProvidesType: "chad.Mesh"}); len(hits) != 0 {
		t.Errorf("mesh provider hits = %v", hits)
	}
}

func TestSearchByUsesAndName(t *testing.T) {
	r := depositSolverWorld(t)
	hits := r.Search(Query{UsesType: "esi.Solver"})
	// chad.FlowComponent uses esi.Operator; a Solver (subtype) client
	// query matches since Solver is usable where Operator is used.
	if len(hits) != 1 || hits[0].Name != "chad.FlowComponent" {
		t.Fatalf("uses hits = %+v", hits)
	}
	if hits := r.Search(Query{NameContains: "esi"}); len(hits) != 2 {
		t.Errorf("name hits = %d", len(hits))
	}
	if hits := r.Search(Query{}); len(hits) != 3 {
		t.Errorf("match-all hits = %d", len(hits))
	}
}

func TestSearchByFlavor(t *testing.T) {
	r := New()
	if err := r.Deposit(Entry{Name: "par", Flavor: cca.FlavorCollective}); err != nil {
		t.Fatal(err)
	}
	if err := r.Deposit(Entry{Name: "ser", Flavor: cca.FlavorInProcess}); err != nil {
		t.Fatal(err)
	}
	hits := r.Search(Query{Flavor: cca.FlavorInProcess})
	if len(hits) != 1 || hits[0].Name != "ser" {
		t.Errorf("flavor hits = %+v", hits)
	}
}

func TestInstantiate(t *testing.T) {
	r := depositSolverWorld(t)
	c, err := r.Instantiate("esi.CGComponent")
	if err != nil || c == nil {
		t.Fatalf("instantiate: %v", err)
	}
	if _, err := r.Instantiate("esi.Interfaces"); !errors.Is(err, ErrNoFactory) {
		t.Errorf("no-factory err = %v", err)
	}
}

func TestTypeCheckerSubtyping(t *testing.T) {
	r := depositSolverWorld(t)
	check := r.TypeChecker()
	if err := check("esi.Operator", "esi.Solver"); err != nil {
		t.Errorf("solver-as-operator rejected: %v", err)
	}
	if err := check("esi.Solver", "esi.Operator"); !errors.Is(err, cca.ErrTypeMismatch) {
		t.Errorf("operator-as-solver accepted: %v", err)
	}
	if err := check("", "esi.Solver"); err != nil {
		t.Errorf("wildcard rejected: %v", err)
	}
	if err := check("a.B", "c.D"); !errors.Is(err, cca.ErrTypeMismatch) {
		t.Errorf("unknown-type fallthrough: %v", err)
	}
}

func TestRemove(t *testing.T) {
	r := depositSolverWorld(t)
	if err := r.Remove("esi.CGComponent"); err != nil {
		t.Fatal(err)
	}
	if err := r.Remove("esi.CGComponent"); !errors.Is(err, ErrNotFound) {
		t.Errorf("err = %v", err)
	}
	// SIDL world persists after removal.
	if r.Table().Lookup("esi.Solver") != "interface" {
		t.Error("types lost on removal")
	}
}

func TestDescribe(t *testing.T) {
	r := depositSolverWorld(t)
	d := r.Describe()
	for _, want := range []string{"esi.CGComponent v0.9", "provides solver", "uses     linsolve", "conjugate gradient"} {
		if !strings.Contains(d, want) {
			t.Errorf("describe missing %q:\n%s", want, d)
		}
	}
}

func TestBuilderCreateConnect(t *testing.T) {
	r := depositSolverWorld(t)
	f := framework.New(framework.Options{TypeCheck: r.TypeChecker()})
	b := NewBuilder(r, f)
	if err := b.Create("solver1", "esi.CGComponent"); err != nil {
		t.Fatal(err)
	}
	if err := b.Create("flow1", "chad.FlowComponent"); err != nil {
		t.Fatal(err)
	}
	if typ, ok := b.TypeOf("solver1"); !ok || typ != "esi.CGComponent" {
		t.Errorf("TypeOf = %s, %v", typ, ok)
	}
	// Subtype-aware connection: flow uses esi.Operator, solver provides
	// esi.Solver (a subtype).
	id, err := b.AutoConnect("flow1", "solver1")
	if err != nil {
		t.Fatal(err)
	}
	if id.UsesPort != "linsolve" || id.ProvidesPort != "solver" {
		t.Errorf("auto-connected %v", id)
	}
	events := b.Events()
	kinds := map[cca.EventKind]int{}
	for _, e := range events {
		kinds[e.Kind]++
	}
	if kinds[cca.EventComponentAdded] != 2 || kinds[cca.EventConnected] != 1 {
		t.Errorf("events = %v", kinds)
	}
	if err := b.Destroy("flow1"); err != nil {
		t.Fatal(err)
	}
	if _, ok := b.TypeOf("flow1"); ok {
		t.Error("destroyed instance still tracked")
	}
}

func TestBuilderErrors(t *testing.T) {
	r := depositSolverWorld(t)
	f := framework.New(framework.Options{})
	b := NewBuilder(r, f)
	if err := b.Create("x", "ghost.Component"); !errors.Is(err, ErrNotFound) {
		t.Errorf("err = %v", err)
	}
	if _, err := b.AutoConnect("a", "b"); !errors.Is(err, ErrBuilder) {
		t.Errorf("err = %v", err)
	}
	// No compatible ports: two solver providers.
	if err := b.Create("s1", "esi.CGComponent"); err != nil {
		t.Fatal(err)
	}
	if err := b.Create("s2", "esi.CGComponent"); err != nil {
		t.Fatal(err)
	}
	if _, err := b.AutoConnect("s1", "s2"); !errors.Is(err, ErrBuilder) {
		t.Errorf("err = %v", err)
	}
}
