package repo

import (
	"bytes"
	"errors"
	"strings"
	"testing"

	"repro/internal/cca"
)

func TestSaveLoadRoundTrip(t *testing.T) {
	r := depositSolverWorld(t)
	var buf bytes.Buffer
	if err := r.Save(&buf); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), `"formatVersion": 1`) {
		t.Errorf("missing version:\n%s", buf.String())
	}

	r2 := New()
	if err := r2.Load(bytes.NewReader(buf.Bytes())); err != nil {
		t.Fatal(err)
	}
	// Entries and the SIDL world survive.
	if len(r2.List()) != len(r.List()) {
		t.Fatalf("lists differ: %v vs %v", r2.List(), r.List())
	}
	if r2.Table().Lookup("esi.Solver") != "interface" {
		t.Error("SIDL world not rebuilt")
	}
	// Subtype-aware search still works on the loaded repository.
	hits := r2.Search(Query{ProvidesType: "esi.Operator"})
	if len(hits) != 1 || hits[0].Name != "esi.CGComponent" {
		t.Errorf("hits = %+v", hits)
	}
	// Factories are gone until re-bound.
	if _, err := r2.Instantiate("esi.CGComponent"); !errors.Is(err, ErrNoFactory) {
		t.Errorf("err = %v", err)
	}
	if err := r2.BindFactory("esi.CGComponent", func() cca.Component {
		return &stubComponent{}
	}); err != nil {
		t.Fatal(err)
	}
	if _, err := r2.Instantiate("esi.CGComponent"); err != nil {
		t.Errorf("post-bind instantiate: %v", err)
	}
	if err := r2.BindFactory("ghost", nil); !errors.Is(err, ErrNotFound) {
		t.Errorf("bind ghost err = %v", err)
	}
}

func TestLoadRejectsGarbage(t *testing.T) {
	r := New()
	if err := r.Load(strings.NewReader("not json")); err == nil {
		t.Error("garbage accepted")
	}
	if err := r.Load(strings.NewReader(`{"formatVersion": 9}`)); !errors.Is(err, ErrBadEntry) {
		t.Errorf("version err = %v", err)
	}
	// Conflicting deposit inside the stream is rejected atomically.
	var buf bytes.Buffer
	src := depositSolverWorld(t)
	if err := src.Save(&buf); err != nil {
		t.Fatal(err)
	}
	dst := depositSolverWorld(t) // already has the same names
	if err := dst.Load(bytes.NewReader(buf.Bytes())); !errors.Is(err, ErrExists) {
		t.Errorf("duplicate err = %v", err)
	}
}

func TestSaveFlavorRoundTrip(t *testing.T) {
	r := New()
	if err := r.Deposit(Entry{Name: "p", Flavor: cca.FlavorCollective | cca.FlavorInProcess}); err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := r.Save(&buf); err != nil {
		t.Fatal(err)
	}
	r2 := New()
	if err := r2.Load(bytes.NewReader(buf.Bytes())); err != nil {
		t.Fatal(err)
	}
	e, err := r2.Retrieve("p")
	if err != nil {
		t.Fatal(err)
	}
	if e.Flavor != cca.FlavorCollective|cca.FlavorInProcess {
		t.Errorf("flavor = %v", e.Flavor)
	}
}
