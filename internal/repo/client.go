package repo

import (
	"encoding/json"
	"fmt"
	"sync"

	"repro/internal/obs"
	"repro/internal/orb"
)

// Resolver-cache instruments: hits served without touching the network
// body, revalidations that came back "not modified", and full fetches.
var (
	cClientHits        = obs.NewCounter("repo.client.cache_hits")
	cClientRevalidated = obs.NewCounter("repo.client.revalidations")
	cClientFetches     = obs.NewCounter("repo.client.fetches")
)

// Invoker is the client surface a repository Client calls through — both
// *orb.Client and *orb.Supervised satisfy it.
type Invoker interface {
	Invoke(key, method string, args ...any) ([]any, error)
	Close() error
}

// cachedResolution is one remembered (name, constraint) → (version, entry)
// resolution, tagged with the store revision it was made at.
type cachedResolution struct {
	rev int64
	v   Version
	e   *Entry
}

// Client is a connection to a repository Service with an ETag-style
// resolution cache. The consistency model leans on two server guarantees:
// deposits are append-only with per-name monotonic versions, and the
// global revision bumps on every deposit. So a cached resolution is valid
// verbatim while the revision is unchanged (one head() round trip
// revalidates the entire cache), and when the revision has moved the
// client re-fetches with the cached version as an ETag — an unrelated
// deposit costs one small "not modified" reply instead of a body.
type Client struct {
	inv Invoker

	mu    sync.Mutex
	cache map[string]*cachedResolution
}

// DialService connects to a repository service at a scheme-qualified
// address (tcp://host:port, shm:///dir, or a comma-separated shard list).
func DialService(addr string) (*Client, error) {
	c, err := orb.DialAddr(addr)
	if err != nil {
		return nil, err
	}
	return NewClient(c), nil
}

// NewClient wraps an existing ORB connection (bare or supervised).
func NewClient(inv Invoker) *Client {
	return &Client{inv: inv, cache: map[string]*cachedResolution{}}
}

// Close releases the underlying connection.
func (c *Client) Close() error { return c.inv.Close() }

// Head returns the service's current revision.
func (c *Client) Head() (int64, error) {
	res, err := c.inv.Invoke(ServiceKey, "head")
	if err != nil {
		return 0, err
	}
	return oneInt64(res, "head")
}

// Revision is Head under the name the ccl resolver's Source interface
// uses.
func (c *Client) Revision() (int64, error) { return c.Head() }

// List fetches every deposited (name, version) pair.
func (c *Client) List() ([]Listing, error) {
	res, err := c.inv.Invoke(ServiceKey, "list")
	if err != nil {
		return nil, err
	}
	if len(res) != 2 {
		return nil, fmt.Errorf("repo: list returned %d values", len(res))
	}
	body, ok := res[1].(string)
	if !ok {
		return nil, fmt.Errorf("repo: list body is %T", res[1])
	}
	var out []Listing
	if err := json.Unmarshal([]byte(body), &out); err != nil {
		return nil, fmt.Errorf("repo: list: %w", err)
	}
	return out, nil
}

// Describe fetches the service's human-readable listing.
func (c *Client) Describe() (string, error) {
	res, err := c.inv.Invoke(ServiceKey, "describe")
	if err != nil {
		return "", err
	}
	if len(res) != 1 {
		return "", fmt.Errorf("repo: describe returned %d values", len(res))
	}
	s, ok := res[0].(string)
	if !ok {
		return "", fmt.Errorf("repo: describe returned %T", res[0])
	}
	return s, nil
}

// Deposit ships an entry to the service (factory excluded — code does not
// serialize) and returns the post-deposit revision.
func (c *Client) Deposit(e *Entry) (int64, error) {
	raw, err := EncodeEntry(e)
	if err != nil {
		return 0, err
	}
	res, err := c.inv.Invoke(ServiceKey, "deposit", string(raw))
	if err != nil {
		return 0, err
	}
	return oneInt64(res, "deposit")
}

// Resolve returns the highest deposited version of name satisfying the
// constraint, consulting the cache first. The returned entry is shared
// with the cache; callers must not mutate it.
func (c *Client) Resolve(name, constraint string) (*Entry, Version, error) {
	rev, err := c.Head()
	if err != nil {
		return nil, Version{}, err
	}
	key := name + "\x00" + constraint
	c.mu.Lock()
	cached := c.cache[key]
	c.mu.Unlock()
	if cached != nil && cached.rev == rev {
		cClientHits.Inc()
		return cached.e, cached.v, nil
	}
	etag := ""
	if cached != nil {
		etag = cached.v.String()
	}
	res, err := c.inv.Invoke(ServiceKey, "fetch", name, constraint, etag)
	if err != nil {
		return nil, Version{}, err
	}
	if len(res) != 3 {
		return nil, Version{}, fmt.Errorf("repo: fetch returned %d values", len(res))
	}
	fetchRev, ok := res[0].(int64)
	if !ok {
		return nil, Version{}, fmt.Errorf("repo: fetch revision is %T", res[0])
	}
	vs, ok := res[1].(string)
	if !ok {
		return nil, Version{}, fmt.Errorf("repo: fetch version is %T", res[1])
	}
	v, err := ParseVersion(vs)
	if err != nil {
		return nil, Version{}, err
	}
	body, ok := res[2].(string)
	if !ok {
		return nil, Version{}, fmt.Errorf("repo: fetch body is %T", res[2])
	}
	if body == "" {
		// Not modified: the cached entry is still the resolution.
		if cached == nil || cached.v != v {
			return nil, Version{}, fmt.Errorf("repo: fetch returned no body for uncached %s@%s", name, v)
		}
		cClientRevalidated.Inc()
		c.mu.Lock()
		cached.rev = fetchRev
		c.mu.Unlock()
		return cached.e, v, nil
	}
	e, err := DecodeEntry([]byte(body))
	if err != nil {
		return nil, Version{}, err
	}
	cClientFetches.Inc()
	c.mu.Lock()
	c.cache[key] = &cachedResolution{rev: fetchRev, v: v, e: e}
	c.mu.Unlock()
	return e, v, nil
}

// CacheLen reports how many resolutions the client remembers (tests and
// metrics).
func (c *Client) CacheLen() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return len(c.cache)
}

func oneInt64(res []any, method string) (int64, error) {
	if len(res) != 1 {
		return 0, fmt.Errorf("repo: %s returned %d values", method, len(res))
	}
	n, ok := res[0].(int64)
	if !ok {
		return 0, fmt.Errorf("repo: %s returned %T", method, res[0])
	}
	return n, nil
}
