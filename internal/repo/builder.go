package repo

import (
	"errors"
	"fmt"
	"sync"

	"repro/internal/cca"
	"repro/internal/cca/framework"
)

// Builder is the composition tool of the paper's Figure 2: it instantiates
// components out of the repository into a framework, wires their ports, and
// observes the configuration API's event stream ("the CCA Configuration
// API supports interaction between components and various builders").
type Builder struct {
	R *Repository
	F *framework.Framework

	mu     sync.Mutex
	events []cca.Event
	types  map[string]string // instance name -> repository type name
}

// ErrBuilder wraps builder-level failures.
var ErrBuilder = errors.New("repo: builder error")

// NewBuilder attaches a builder to a repository and framework, subscribing
// to the framework's configuration events.
func NewBuilder(r *Repository, f *framework.Framework) *Builder {
	b := &Builder{R: r, F: f, types: map[string]string{}}
	f.AddEventListener(cca.EventListenerFunc(func(e cca.Event) {
		b.mu.Lock()
		b.events = append(b.events, e)
		b.mu.Unlock()
	}))
	return b
}

// Create instantiates the repository component typeName into the framework
// under instanceName.
func (b *Builder) Create(instanceName, typeName string) error {
	comp, err := b.R.Instantiate(typeName)
	if err != nil {
		return err
	}
	if err := b.F.Install(instanceName, comp); err != nil {
		return err
	}
	b.mu.Lock()
	b.types[instanceName] = typeName
	b.mu.Unlock()
	return nil
}

// Destroy removes an instance.
func (b *Builder) Destroy(instanceName string) error {
	if err := b.F.Remove(instanceName); err != nil {
		return err
	}
	b.mu.Lock()
	delete(b.types, instanceName)
	b.mu.Unlock()
	return nil
}

// TypeOf reports the repository type a builder-created instance came from.
func (b *Builder) TypeOf(instanceName string) (string, bool) {
	b.mu.Lock()
	defer b.mu.Unlock()
	t, ok := b.types[instanceName]
	return t, ok
}

// Connect wires two instances by port name, consulting the repository's
// port specifications when the port names are ambiguous.
func (b *Builder) Connect(user, usesPort, provider, providesPort string) (cca.ConnectionID, error) {
	return b.F.Connect(user, usesPort, provider, providesPort)
}

// AutoConnect finds the single compatible (usesPort, providesPort) pairing
// between two instances using their repository port specs and the SIDL
// subtype relation, and connects it. It fails when zero or multiple
// pairings are possible — ambiguity needs an explicit Connect.
func (b *Builder) AutoConnect(user, provider string) (cca.ConnectionID, error) {
	b.mu.Lock()
	userType, uok := b.types[user]
	provType, pok := b.types[provider]
	b.mu.Unlock()
	if !uok || !pok {
		return cca.ConnectionID{}, fmt.Errorf("%w: auto-connect needs builder-created instances", ErrBuilder)
	}
	ue, err := b.R.Retrieve(userType)
	if err != nil {
		return cca.ConnectionID{}, err
	}
	pe, err := b.R.Retrieve(provType)
	if err != nil {
		return cca.ConnectionID{}, err
	}
	tbl := b.R.Table()
	type pair struct{ uses, provides string }
	var pairs []pair
	for _, u := range ue.Uses {
		for _, p := range pe.Provides {
			if tbl.IsSubtype(p.Type, u.Type) {
				pairs = append(pairs, pair{u.Name, p.Name})
			}
		}
	}
	switch len(pairs) {
	case 0:
		return cca.ConnectionID{}, fmt.Errorf("%w: no compatible ports between %s and %s", ErrBuilder, user, provider)
	case 1:
		return b.F.Connect(user, pairs[0].uses, provider, pairs[0].provides)
	default:
		return cca.ConnectionID{}, fmt.Errorf("%w: %d compatible pairings between %s and %s; connect explicitly", ErrBuilder, len(pairs), user, provider)
	}
}

// Events returns a snapshot of the configuration events observed so far.
func (b *Builder) Events() []cca.Event {
	b.mu.Lock()
	defer b.mu.Unlock()
	return append([]cca.Event(nil), b.events...)
}
