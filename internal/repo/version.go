package repo

import (
	"errors"
	"fmt"
	"strconv"
	"strings"
)

// Version-constraint machinery for the networked repository and the CCL
// resolver (repro/internal/ccl): deposited components carry semantic
// versions, assembly documents carry constraints, and the resolver turns a
// constraint into the one concrete version a lockfile records.

// ErrBadVersion reports an unparseable version or constraint.
var ErrBadVersion = errors.New("repo: bad version")

// Version is a semantic version triple. Missing components parse as zero,
// so "1" and "1.0" mean 1.0.0.
type Version struct {
	Major, Minor, Patch int
}

// ParseVersion parses "M", "M.m", or "M.m.p" (an optional leading "v" is
// tolerated).
func ParseVersion(s string) (Version, error) {
	orig := s
	s = strings.TrimPrefix(strings.TrimSpace(s), "v")
	if s == "" {
		return Version{}, fmt.Errorf("%w: empty version", ErrBadVersion)
	}
	parts := strings.Split(s, ".")
	if len(parts) > 3 {
		return Version{}, fmt.Errorf("%w: %q has %d components", ErrBadVersion, orig, len(parts))
	}
	var nums [3]int
	for i, p := range parts {
		n, err := strconv.Atoi(p)
		if err != nil || n < 0 {
			return Version{}, fmt.Errorf("%w: %q", ErrBadVersion, orig)
		}
		nums[i] = n
	}
	return Version{nums[0], nums[1], nums[2]}, nil
}

// String renders the canonical M.m.p form.
func (v Version) String() string {
	return fmt.Sprintf("%d.%d.%d", v.Major, v.Minor, v.Patch)
}

// Compare returns -1, 0, or +1 by semantic-version order.
func (v Version) Compare(o Version) int {
	for _, d := range [3]int{v.Major - o.Major, v.Minor - o.Minor, v.Patch - o.Patch} {
		if d < 0 {
			return -1
		}
		if d > 0 {
			return 1
		}
	}
	return 0
}

// Less reports v < o.
func (v Version) Less(o Version) bool { return v.Compare(o) < 0 }

// constraintOp is one comparison term of a constraint.
type constraintOp struct {
	op string // "", ">=", ">", "<=", "<", "^", "~"
	v  Version
}

func (t constraintOp) match(v Version) bool {
	switch t.op {
	case "", "=", "==":
		return v.Compare(t.v) == 0
	case ">=":
		return v.Compare(t.v) >= 0
	case ">":
		return v.Compare(t.v) > 0
	case "<=":
		return v.Compare(t.v) <= 0
	case "<":
		return v.Compare(t.v) < 0
	case "^":
		// Compatible within the same major version.
		return v.Major == t.v.Major && v.Compare(t.v) >= 0
	case "~":
		// Compatible within the same minor version.
		return v.Major == t.v.Major && v.Minor == t.v.Minor && v.Compare(t.v) >= 0
	}
	return false
}

// Constraint selects an acceptable set of versions. The zero Constraint
// (and the spellings "" and "*") matches every version.
type Constraint struct {
	src   string
	terms []constraintOp
}

// ParseConstraint parses a version constraint: "*" or "" (any), an exact
// version ("1.2.0", "=1.2"), a caret range ("^1.2": same major, at least
// 1.2.0), a tilde range ("~1.2": same minor, at least 1.2.0), a comparison
// (">=1.0", ">1", "<=2", "<2.1"), or a space-separated conjunction of
// comparisons (">=1.0 <2.0").
func ParseConstraint(s string) (Constraint, error) {
	src := strings.TrimSpace(s)
	if src == "" || src == "*" {
		return Constraint{src: "*"}, nil
	}
	c := Constraint{src: src}
	for _, field := range strings.Fields(src) {
		op := ""
		for _, p := range []string{">=", "<=", "==", ">", "<", "^", "~", "="} {
			if strings.HasPrefix(field, p) {
				op = p
				field = field[len(p):]
				break
			}
		}
		v, err := ParseVersion(field)
		if err != nil {
			return Constraint{}, fmt.Errorf("%w: constraint %q", ErrBadVersion, src)
		}
		c.terms = append(c.terms, constraintOp{op: op, v: v})
	}
	return c, nil
}

// String returns the constraint as written ("*" for the any-version form).
func (c Constraint) String() string {
	if c.src == "" {
		return "*"
	}
	return c.src
}

// Any reports whether the constraint matches every version.
func (c Constraint) Any() bool { return len(c.terms) == 0 }

// Match reports whether v satisfies every term of the constraint.
func (c Constraint) Match(v Version) bool {
	for _, t := range c.terms {
		if !t.match(v) {
			return false
		}
	}
	return true
}

// Best returns the highest version in vs matching the constraint, or false
// when none does.
func (c Constraint) Best(vs []Version) (Version, bool) {
	var best Version
	found := false
	for _, v := range vs {
		if !c.Match(v) {
			continue
		}
		if !found || best.Less(v) {
			best, found = v, true
		}
	}
	return best, found
}
