// Package repo implements the CCA Repository API of the paper's Figure 2 —
// "the functionality necessary to search a framework repository for
// components as well as to manipulate components within the repository" —
// in two forms: an in-process Repository embedded in every application
// container, and a networked, versioned Service (`ccarepo serve`) that
// whole teams of frameworks resolve components from.
//
// A repository entry couples a component's SIDL interface description with
// its port specifications and an instantiation factory. Search supports
// name matching and port-type matching with SIDL subtype compatibility, so
// a builder can ask "which deposited components provide something usable
// as esi.Operator?". The Builder (builder.go) is the composition tool that
// instantiates entries into a framework and wires their ports; it is the
// compile target of the declarative assembly language in
// repro/internal/ccl.
//
// The networked half (service.go, client.go) runs the repository as an ORB
// service: deposits are append-only with per-name monotonic semantic
// versions (version.go), the store carries a global revision that bumps on
// every deposit, and clients resolve version constraints ("^1.2", ">=1 <2")
// through an ETag-style cache that one head() round trip revalidates
// wholesale. Factories never cross the wire — code does not serialize —
// so each site re-binds factories (BindFactory) or supplies providers for
// the implementations it holds, exactly as with Save/Load persistence
// (persist.go).
package repo

import (
	"errors"
	"fmt"
	"sort"
	"strings"
	"sync"

	"repro/internal/cca"
	"repro/internal/sidl"
)

// Repository errors.
var (
	ErrExists     = errors.New("repo: component already deposited")
	ErrNotFound   = errors.New("repo: component not found")
	ErrNoFactory  = errors.New("repo: component has no factory")
	ErrBadEntry   = errors.New("repo: invalid entry")
	ErrUnknownTyp = errors.New("repo: port type not described by any deposited SIDL")
)

// PortSpec declares one port a component exposes or consumes.
type PortSpec struct {
	// Name is the port instance name the component registers.
	Name string
	// Type is the SIDL type name of the port interface.
	Type string
}

// Entry is one deposited component description.
type Entry struct {
	// Name is the component's type name (e.g. "esi.CGSolverComponent").
	Name string
	// Version is free-form ("1.0").
	Version string
	// Description is a one-line summary for listings.
	Description string
	// SIDL is the interface definition source deposited alongside the
	// component; it is parsed, resolved, and merged into the repository's
	// symbol table.
	SIDL string
	// Provides and Uses list the component's ports.
	Provides []PortSpec
	Uses     []PortSpec
	// Flavor is the compliance flavor the component requires.
	Flavor cca.Flavor
	// Factory instantiates the component. Entries without factories are
	// interface-only deposits (pure standards, like the ESI interfaces).
	Factory func() cca.Component
}

// Repository stores component descriptions and their merged SIDL world.
type Repository struct {
	mu      sync.RWMutex
	entries map[string]*Entry
	files   []*sidl.File
	table   *sidl.Table
}

// New creates an empty repository.
func New() *Repository {
	tbl, err := sidl.Resolve()
	if err != nil {
		panic("repo: resolving empty table: " + err.Error()) // cannot happen
	}
	return &Repository{entries: map[string]*Entry{}, table: tbl}
}

// Deposit adds a component description. Its SIDL source (if any) is parsed
// and the repository-wide symbol table re-resolved, so a deposit with
// definitions conflicting with earlier deposits is rejected atomically.
func (r *Repository) Deposit(e Entry) error {
	if e.Name == "" {
		return fmt.Errorf("%w: empty name", ErrBadEntry)
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	if _, dup := r.entries[e.Name]; dup {
		return fmt.Errorf("%w: %q", ErrExists, e.Name)
	}
	files := r.files
	if e.SIDL != "" {
		f, err := sidl.Parse(e.SIDL)
		if err != nil {
			return fmt.Errorf("repo: deposit %q: %w", e.Name, err)
		}
		files = append(append([]*sidl.File(nil), r.files...), f)
	}
	table, err := sidl.Resolve(files...)
	if err != nil {
		return fmt.Errorf("repo: deposit %q: %w", e.Name, err)
	}
	// Port types must be described somewhere in the merged SIDL world.
	for _, ps := range append(append([]PortSpec(nil), e.Provides...), e.Uses...) {
		if ps.Type == "" || ps.Name == "" {
			return fmt.Errorf("%w: port %q/%q", ErrBadEntry, ps.Name, ps.Type)
		}
		if table.Lookup(ps.Type) == "" {
			return fmt.Errorf("%w: %q (port %s of %s)", ErrUnknownTyp, ps.Type, ps.Name, e.Name)
		}
	}
	entry := e
	r.entries[e.Name] = &entry
	r.files = files
	r.table = table
	return nil
}

// Remove deletes a deposited component (its SIDL definitions remain merged;
// interface definitions are append-only like a standards body's archive).
func (r *Repository) Remove(name string) error {
	r.mu.Lock()
	defer r.mu.Unlock()
	if _, ok := r.entries[name]; !ok {
		return fmt.Errorf("%w: %q", ErrNotFound, name)
	}
	delete(r.entries, name)
	return nil
}

// Retrieve fetches a deposited entry by exact name.
func (r *Repository) Retrieve(name string) (*Entry, error) {
	r.mu.RLock()
	defer r.mu.RUnlock()
	e, ok := r.entries[name]
	if !ok {
		return nil, fmt.Errorf("%w: %q", ErrNotFound, name)
	}
	return e, nil
}

// List returns all deposited component names, sorted.
func (r *Repository) List() []string {
	r.mu.RLock()
	defer r.mu.RUnlock()
	out := make([]string, 0, len(r.entries))
	for n := range r.entries {
		out = append(out, n)
	}
	sort.Strings(out)
	return out
}

// Table returns the repository's merged SIDL symbol table.
func (r *Repository) Table() *sidl.Table {
	r.mu.RLock()
	defer r.mu.RUnlock()
	return r.table
}

// Query selects components. Zero fields match everything; set fields are
// conjunctive.
type Query struct {
	// NameContains matches a substring of the component name.
	NameContains string
	// ProvidesType matches components providing a port whose type is a
	// SIDL subtype of (usable as) this type.
	ProvidesType string
	// UsesType matches components using a port of exactly this type or a
	// supertype of it.
	UsesType string
	// Flavor, when nonzero, matches components whose required flavor is
	// contained in it (i.e. components runnable on such a framework).
	Flavor cca.Flavor
}

// Search returns matching entries sorted by name.
func (r *Repository) Search(q Query) []*Entry {
	r.mu.RLock()
	defer r.mu.RUnlock()
	var out []*Entry
	for _, e := range r.entries {
		if q.NameContains != "" && !strings.Contains(e.Name, q.NameContains) {
			continue
		}
		if q.ProvidesType != "" {
			found := false
			for _, ps := range e.Provides {
				if r.table.IsSubtype(ps.Type, q.ProvidesType) {
					found = true
					break
				}
			}
			if !found {
				continue
			}
		}
		if q.UsesType != "" {
			found := false
			for _, ps := range e.Uses {
				if r.table.IsSubtype(q.UsesType, ps.Type) {
					found = true
					break
				}
			}
			if !found {
				continue
			}
		}
		if q.Flavor != 0 && !q.Flavor.Contains(e.Flavor) {
			continue
		}
		out = append(out, e)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Name < out[j].Name })
	return out
}

// Instantiate creates a fresh component instance from a deposited factory.
func (r *Repository) Instantiate(name string) (cca.Component, error) {
	e, err := r.Retrieve(name)
	if err != nil {
		return nil, err
	}
	if e.Factory == nil {
		return nil, fmt.Errorf("%w: %q", ErrNoFactory, name)
	}
	return e.Factory(), nil
}

// TypeChecker returns a port-compatibility checker backed by the
// repository's SIDL subtype relation, suitable for framework.Options:
// a uses port of type U may connect to a provides port of type P when P is
// usable as U. Types absent from the table fall back to exact matching;
// empty names are wildcards (untyped ports).
func (r *Repository) TypeChecker() func(usesType, providesType string) error {
	return func(usesType, providesType string) error {
		if usesType == "" || providesType == "" || usesType == providesType {
			return nil
		}
		tbl := r.Table()
		if tbl.Lookup(usesType) != "" && tbl.Lookup(providesType) != "" {
			if tbl.IsSubtype(providesType, usesType) {
				return nil
			}
		}
		return fmt.Errorf("%w: provides %q is not usable as %q", cca.ErrTypeMismatch, providesType, usesType)
	}
}

// Describe renders a human-readable repository listing.
func (r *Repository) Describe() string {
	r.mu.RLock()
	defer r.mu.RUnlock()
	var b strings.Builder
	for _, name := range r.listLocked() {
		e := r.entries[name]
		fmt.Fprintf(&b, "%s", e.Name)
		if e.Version != "" {
			fmt.Fprintf(&b, " v%s", e.Version)
		}
		if e.Description != "" {
			fmt.Fprintf(&b, " — %s", e.Description)
		}
		b.WriteString("\n")
		for _, p := range e.Provides {
			fmt.Fprintf(&b, "  provides %-16s %s\n", p.Name, p.Type)
		}
		for _, u := range e.Uses {
			fmt.Fprintf(&b, "  uses     %-16s %s\n", u.Name, u.Type)
		}
	}
	return b.String()
}

func (r *Repository) listLocked() []string {
	out := make([]string, 0, len(r.entries))
	for n := range r.entries {
		out = append(out, n)
	}
	sort.Strings(out)
	return out
}
