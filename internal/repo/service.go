package repo

import (
	"encoding/json"
	"errors"
	"fmt"
	"sort"
	"strings"
	"sync"

	"repro/internal/orb"
	"repro/internal/sidl"
)

// The networked repository: a Service is the repository run as a versioned
// network service over the ORB (the `ccarepo serve` process), and a Client
// is the resolver-facing connection to one. Unlike the in-process
// Repository — which keys entries by name alone — a Service stores every
// deposited version of a component, enforces monotonic versioning per
// name, and stamps the whole store with a global revision that bumps on
// every deposit. The revision is the cache-consistency token: deposits are
// append-only and (name, version) pairs immutable, so any resolution made
// at revision R stays valid until the revision moves.

// ServiceKey is the reserved object key the repository service answers on.
const ServiceKey = "cca/repo"

// Service errors.
var (
	// ErrVersionOrder rejects a deposit whose version does not exceed every
	// already-deposited version of the same component name.
	ErrVersionOrder = errors.New("repo: deposit version not monotonic")
	// ErrNoMatch reports a constraint no deposited version satisfies.
	ErrNoMatch = errors.New("repo: no deposited version matches constraint")
)

// serviceEntry is one deposited (name, version) pair.
type serviceEntry struct {
	v Version
	e *Entry
}

// Service is a multi-version component store served over the ORB.
type Service struct {
	mu       sync.RWMutex
	revision int64
	entries  map[string][]serviceEntry // per name, ascending by version
	files    []*sidl.File
	table    *sidl.Table
}

// NewService creates an empty repository service.
func NewService() *Service {
	tbl, err := sidl.Resolve()
	if err != nil {
		panic("repo: resolving empty table: " + err.Error()) // cannot happen
	}
	return &Service{entries: map[string][]serviceEntry{}, table: tbl}
}

// NewServiceFrom seeds a service with every entry of an in-process
// repository (the `ccarepo serve -seed` path). Entries deposit as one
// batch in the repository's sorted-name order — SIDL definitions merge
// before any port types validate, so entries may reference interfaces
// deposited by other entries — and the resulting revision is deterministic
// for a given seed set.
func NewServiceFrom(r *Repository) (*Service, error) {
	s := NewService()
	var batch []Entry
	for _, name := range r.List() {
		e, err := r.Retrieve(name)
		if err != nil {
			return nil, err
		}
		batch = append(batch, *e)
	}
	if err := s.DepositAll(batch); err != nil {
		return nil, fmt.Errorf("repo: seeding service: %w", err)
	}
	return s, nil
}

// Revision returns the monotonic store revision (0 when empty). Every
// successful deposit increments it.
func (s *Service) Revision() int64 {
	s.mu.RLock()
	defer s.mu.RUnlock()
	return s.revision
}

// Deposit adds one component version. The entry's Version must parse and
// be strictly greater than every already-deposited version of the same
// name (monotonic versioning — the property that makes client caches
// revalidatable by revision alone). An empty version means 0.0.0; stored
// versions are canonicalized ("1.0" deposits as "1.0.0"). SIDL sources
// merge into the service-wide symbol table exactly as Repository.Deposit
// does.
func (s *Service) Deposit(e Entry) error {
	return s.DepositAll([]Entry{e})
}

// DepositAll deposits a batch atomically: all SIDL sources merge before
// any port type validates, so batch entries may reference interfaces other
// batch entries define (the seeding path needs this — an entry sorted
// before the interface standard it uses must still deposit). On success
// the revision advances by len(entries); on any error nothing is stored.
func (s *Service) DepositAll(entries []Entry) error {
	s.mu.Lock()
	defer s.mu.Unlock()

	// Phase 1: versions. Each entry must exceed the current top for its
	// name, including tops established earlier in the same batch.
	top := map[string]Version{}
	for name, have := range s.entries {
		top[name] = have[len(have)-1].v
	}
	type add struct {
		v Version
		e *Entry
	}
	adds := make([]add, 0, len(entries))
	files := append([]*sidl.File(nil), s.files...)
	for i := range entries {
		e := entries[i] // copy; the stored entry is private to the service
		if e.Name == "" {
			return fmt.Errorf("%w: empty name", ErrBadEntry)
		}
		v := Version{}
		if strings.TrimSpace(e.Version) != "" {
			var err error
			v, err = ParseVersion(e.Version)
			if err != nil {
				return fmt.Errorf("repo: deposit %q: %w", e.Name, err)
			}
		}
		if t, seen := top[e.Name]; seen && !t.Less(v) {
			return fmt.Errorf("%w: %s v%s does not exceed deposited v%s",
				ErrVersionOrder, e.Name, v, t)
		}
		top[e.Name] = v
		e.Version = v.String()
		if e.SIDL != "" {
			f, err := sidl.Parse(e.SIDL)
			if err != nil {
				return fmt.Errorf("repo: deposit %q: %w", e.Name, err)
			}
			files = append(files, f)
		}
		adds = append(adds, add{v: v, e: &e})
	}

	// Phase 2: resolve the merged SIDL world, then validate every port
	// type against it.
	table, err := sidl.Resolve(files...)
	if err != nil {
		return fmt.Errorf("repo: deposit: %w", err)
	}
	for _, a := range adds {
		for _, ps := range append(append([]PortSpec(nil), a.e.Provides...), a.e.Uses...) {
			if ps.Type == "" || ps.Name == "" {
				return fmt.Errorf("%w: port %q/%q", ErrBadEntry, ps.Name, ps.Type)
			}
			if table.Lookup(ps.Type) == "" {
				return fmt.Errorf("%w: %q (port %s of %s)", ErrUnknownTyp, ps.Type, ps.Name, a.e.Name)
			}
		}
	}

	// Commit.
	for _, a := range adds {
		s.entries[a.e.Name] = append(s.entries[a.e.Name], serviceEntry{v: a.v, e: a.e})
		s.revision++
	}
	s.files = files
	s.table = table
	return nil
}

// Listing is one row of a service listing.
type Listing struct {
	Name        string `json:"name"`
	Version     string `json:"version"`
	Description string `json:"description,omitempty"`
	HasFactory  bool   `json:"hasFactory,omitempty"`
}

// List returns every deposited (name, version) pair, sorted by name then
// version.
func (s *Service) List() []Listing {
	s.mu.RLock()
	defer s.mu.RUnlock()
	names := make([]string, 0, len(s.entries))
	for n := range s.entries {
		names = append(names, n)
	}
	sort.Strings(names)
	var out []Listing
	for _, n := range names {
		for _, se := range s.entries[n] {
			out = append(out, Listing{
				Name:        n,
				Version:     se.v.String(),
				Description: se.e.Description,
				HasFactory:  se.e.Factory != nil,
			})
		}
	}
	return out
}

// Describe renders a human-readable listing of every deposited version.
func (s *Service) Describe() string {
	var b strings.Builder
	for _, l := range s.List() {
		fmt.Fprintf(&b, "%s v%s", l.Name, l.Version)
		if l.Description != "" {
			fmt.Fprintf(&b, " — %s", l.Description)
		}
		b.WriteString("\n")
	}
	return b.String()
}

// Resolve returns the highest deposited version of name satisfying the
// constraint, with the store revision the resolution was made at.
func (s *Service) Resolve(name, constraint string) (*Entry, Version, error) {
	c, err := ParseConstraint(constraint)
	if err != nil {
		return nil, Version{}, err
	}
	s.mu.RLock()
	defer s.mu.RUnlock()
	have := s.entries[name]
	if len(have) == 0 {
		return nil, Version{}, fmt.Errorf("%w: %q", ErrNotFound, name)
	}
	// Entries are ascending; scan from the top for the best match.
	for i := len(have) - 1; i >= 0; i-- {
		if c.Match(have[i].v) {
			return have[i].e, have[i].v, nil
		}
	}
	return nil, Version{}, fmt.Errorf("%w: %s has no version matching %q", ErrNoMatch, name, c)
}

// Bind registers the service's wire protocol on an object adapter under
// ServiceKey. The protocol is five methods, all strings and int64s over
// the ordinary CDR surface:
//
//	head()                          -> (revision)
//	list()                          -> (revision, listingsJSON)
//	describe()                      -> (text)
//	fetch(name, constraint, etag)   -> (revision, version, entryJSON)
//	deposit(entryJSON)              -> (revision)
//
// fetch resolves the constraint server-side; when the resolved version
// equals the caller's etag the body comes back empty ("not modified"), so
// revalidating a warm cache costs one small round trip. deposit returns
// the post-deposit revision.
func (s *Service) Bind(oa *orb.ObjectAdapter) {
	oa.RegisterDynamic(ServiceKey, s.handle)
}

func (s *Service) handle(method string, args []any, reply *orb.Encoder) error {
	if reply == nil {
		return fmt.Errorf("repo: service method %q is not oneway", method)
	}
	argStr := func(i int) (string, error) {
		if i >= len(args) {
			return "", fmt.Errorf("repo: %s: missing argument %d", method, i)
		}
		v, ok := args[i].(string)
		if !ok {
			return "", fmt.Errorf("repo: %s: argument %d is %T, want string", method, i, args[i])
		}
		return v, nil
	}
	switch method {
	case "head":
		return reply.Encode(s.Revision())
	case "list":
		body, err := json.Marshal(s.List())
		if err != nil {
			return err
		}
		if err := reply.Encode(s.Revision()); err != nil {
			return err
		}
		return reply.Encode(string(body))
	case "describe":
		return reply.Encode(s.Describe())
	case "fetch":
		name, err := argStr(0)
		if err != nil {
			return err
		}
		constraint, err := argStr(1)
		if err != nil {
			return err
		}
		etag, err := argStr(2)
		if err != nil {
			return err
		}
		s.mu.RLock()
		rev := s.revision
		s.mu.RUnlock()
		e, v, err := s.Resolve(name, constraint)
		if err != nil {
			return err
		}
		body := ""
		if v.String() != etag {
			raw, err := EncodeEntry(e)
			if err != nil {
				return err
			}
			body = string(raw)
		}
		if err := reply.Encode(rev); err != nil {
			return err
		}
		if err := reply.Encode(v.String()); err != nil {
			return err
		}
		return reply.Encode(body)
	case "deposit":
		raw, err := argStr(0)
		if err != nil {
			return err
		}
		e, err := DecodeEntry([]byte(raw))
		if err != nil {
			return err
		}
		if err := s.Deposit(*e); err != nil {
			return err
		}
		return reply.Encode(s.Revision())
	default:
		return fmt.Errorf("repo: service has no method %q", method)
	}
}
