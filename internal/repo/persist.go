package repo

import (
	"encoding/json"
	"fmt"
	"io"

	"repro/internal/cca"
	"repro/internal/sidl"
)

// Persistence: a repository's descriptions (not its factories — code cannot
// be serialized) can be saved to and reloaded from JSON. This realizes the
// paper's repository as a durable artifact: interface definitions and
// component metadata are deposited once and shared across teams, with each
// site re-binding factories for the implementations it has ("the
// functionality necessary to search a framework repository for components
// as well as to manipulate components within the repository").

// persistedEntry is the serializable subset of Entry.
type persistedEntry struct {
	Name        string     `json:"name"`
	Version     string     `json:"version,omitempty"`
	Description string     `json:"description,omitempty"`
	SIDL        string     `json:"sidl,omitempty"`
	Provides    []PortSpec `json:"provides,omitempty"`
	Uses        []PortSpec `json:"uses,omitempty"`
	Flavor      string     `json:"flavor,omitempty"`
	HasFactory  bool       `json:"hasFactory,omitempty"`
}

type persistedRepo struct {
	FormatVersion int              `json:"formatVersion"`
	Entries       []persistedEntry `json:"entries"`
}

// Save writes the repository's entries as JSON. Factories are recorded only
// as a HasFactory marker.
func (r *Repository) Save(w io.Writer) error {
	r.mu.RLock()
	out := persistedRepo{FormatVersion: 1}
	for _, name := range r.listLocked() {
		e := r.entries[name]
		out.Entries = append(out.Entries, persistedEntry{
			Name:        e.Name,
			Version:     e.Version,
			Description: e.Description,
			SIDL:        e.SIDL,
			Provides:    e.Provides,
			Uses:        e.Uses,
			Flavor:      e.Flavor.String(),
			HasFactory:  e.Factory != nil,
		})
	}
	r.mu.RUnlock()
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(out)
}

// Load deposits every entry from a stream produced by Save into the
// repository, atomically: all SIDL sources merge first, then every entry's
// port types are validated against the combined table (entries in a saved
// repository may reference interfaces deposited by other entries, in any
// order). Factories are not restored: callers re-bind them afterwards with
// BindFactory for the component types they can instantiate locally.
func (r *Repository) Load(src io.Reader) error {
	var in persistedRepo
	if err := json.NewDecoder(src).Decode(&in); err != nil {
		return fmt.Errorf("repo: load: %w", err)
	}
	if in.FormatVersion != 1 {
		return fmt.Errorf("%w: unsupported format version %d", ErrBadEntry, in.FormatVersion)
	}

	r.mu.Lock()
	defer r.mu.Unlock()
	files := append([]*sidl.File(nil), r.files...)
	entries := make([]*Entry, 0, len(in.Entries))
	seen := map[string]bool{}
	for _, pe := range in.Entries {
		if pe.Name == "" {
			return fmt.Errorf("%w: unnamed entry in stream", ErrBadEntry)
		}
		if _, dup := r.entries[pe.Name]; dup || seen[pe.Name] {
			return fmt.Errorf("%w: %q", ErrExists, pe.Name)
		}
		seen[pe.Name] = true
		flavor, err := cca.ParseFlavor(pe.Flavor)
		if err != nil {
			return fmt.Errorf("repo: load %s: %w", pe.Name, err)
		}
		if pe.SIDL != "" {
			f, err := sidl.Parse(pe.SIDL)
			if err != nil {
				return fmt.Errorf("repo: load %s: %w", pe.Name, err)
			}
			files = append(files, f)
		}
		entries = append(entries, &Entry{
			Name:        pe.Name,
			Version:     pe.Version,
			Description: pe.Description,
			SIDL:        pe.SIDL,
			Provides:    pe.Provides,
			Uses:        pe.Uses,
			Flavor:      flavor,
		})
	}
	table, err := sidl.Resolve(files...)
	if err != nil {
		return fmt.Errorf("repo: load: %w", err)
	}
	for _, e := range entries {
		for _, ps := range append(append([]PortSpec(nil), e.Provides...), e.Uses...) {
			if ps.Type == "" || ps.Name == "" {
				return fmt.Errorf("%w: port %q/%q of %s", ErrBadEntry, ps.Name, ps.Type, e.Name)
			}
			if table.Lookup(ps.Type) == "" {
				return fmt.Errorf("%w: %q (port %s of %s)", ErrUnknownTyp, ps.Type, ps.Name, e.Name)
			}
		}
	}
	// Commit.
	for _, e := range entries {
		r.entries[e.Name] = e
	}
	r.files = files
	r.table = table
	return nil
}

// BindFactory attaches (or replaces) the instantiation factory of a
// deposited entry — the step a site performs after Load for the component
// implementations it actually has.
func (r *Repository) BindFactory(name string, factory func() cca.Component) error {
	r.mu.Lock()
	defer r.mu.Unlock()
	e, ok := r.entries[name]
	if !ok {
		return fmt.Errorf("%w: %q", ErrNotFound, name)
	}
	e.Factory = factory
	return nil
}
