package repo

import (
	"encoding/json"
	"fmt"
	"io"

	"repro/internal/cca"
	"repro/internal/sidl"
)

// Persistence: a repository's descriptions (not its factories — code cannot
// be serialized) can be saved to and reloaded from JSON. This realizes the
// paper's repository as a durable artifact: interface definitions and
// component metadata are deposited once and shared across teams, with each
// site re-binding factories for the implementations it has ("the
// functionality necessary to search a framework repository for components
// as well as to manipulate components within the repository").

// persistedEntry is the serializable subset of Entry.
type persistedEntry struct {
	Name        string     `json:"name"`
	Version     string     `json:"version,omitempty"`
	Description string     `json:"description,omitempty"`
	SIDL        string     `json:"sidl,omitempty"`
	Provides    []PortSpec `json:"provides,omitempty"`
	Uses        []PortSpec `json:"uses,omitempty"`
	Flavor      string     `json:"flavor,omitempty"`
	HasFactory  bool       `json:"hasFactory,omitempty"`
}

type persistedRepo struct {
	FormatVersion int              `json:"formatVersion"`
	Entries       []persistedEntry `json:"entries"`
}

// toPersisted strips an entry down to its serializable subset.
func toPersisted(e *Entry) persistedEntry {
	return persistedEntry{
		Name:        e.Name,
		Version:     e.Version,
		Description: e.Description,
		SIDL:        e.SIDL,
		Provides:    e.Provides,
		Uses:        e.Uses,
		Flavor:      e.Flavor.String(),
		HasFactory:  e.Factory != nil,
	}
}

// fromPersisted reconstructs an Entry (factory-less; callers re-bind
// factories for implementations they hold locally).
func fromPersisted(pe persistedEntry) (*Entry, error) {
	if pe.Name == "" {
		return nil, fmt.Errorf("%w: unnamed entry", ErrBadEntry)
	}
	flavor, err := cca.ParseFlavor(pe.Flavor)
	if err != nil {
		return nil, fmt.Errorf("repo: entry %s: %w", pe.Name, err)
	}
	return &Entry{
		Name:        pe.Name,
		Version:     pe.Version,
		Description: pe.Description,
		SIDL:        pe.SIDL,
		Provides:    pe.Provides,
		Uses:        pe.Uses,
		Flavor:      flavor,
	}, nil
}

// EncodeEntry marshals one entry in the persisted JSON form — the unit the
// networked repository service (Service) ships over the ORB. Factories are
// recorded only as a HasFactory marker; code does not serialize.
func EncodeEntry(e *Entry) ([]byte, error) {
	return json.Marshal(toPersisted(e))
}

// DecodeEntry unmarshals an entry produced by EncodeEntry. The result has
// no factory; bind one with Repository.BindFactory (or instantiate through
// a ccl provider) for implementations available locally.
func DecodeEntry(data []byte) (*Entry, error) {
	var pe persistedEntry
	if err := json.Unmarshal(data, &pe); err != nil {
		return nil, fmt.Errorf("repo: decode entry: %w", err)
	}
	return fromPersisted(pe)
}

// Save writes the repository's entries as JSON. Factories are recorded only
// as a HasFactory marker.
func (r *Repository) Save(w io.Writer) error {
	r.mu.RLock()
	out := persistedRepo{FormatVersion: 1}
	for _, name := range r.listLocked() {
		out.Entries = append(out.Entries, toPersisted(r.entries[name]))
	}
	r.mu.RUnlock()
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(out)
}

// Load deposits every entry from a stream produced by Save into the
// repository, atomically: all SIDL sources merge first, then every entry's
// port types are validated against the combined table (entries in a saved
// repository may reference interfaces deposited by other entries, in any
// order). Factories are not restored: callers re-bind them afterwards with
// BindFactory for the component types they can instantiate locally.
func (r *Repository) Load(src io.Reader) error {
	var in persistedRepo
	if err := json.NewDecoder(src).Decode(&in); err != nil {
		return fmt.Errorf("repo: load: %w", err)
	}
	if in.FormatVersion != 1 {
		return fmt.Errorf("%w: unsupported format version %d", ErrBadEntry, in.FormatVersion)
	}

	r.mu.Lock()
	defer r.mu.Unlock()
	files := append([]*sidl.File(nil), r.files...)
	entries := make([]*Entry, 0, len(in.Entries))
	seen := map[string]bool{}
	for _, pe := range in.Entries {
		e, err := fromPersisted(pe)
		if err != nil {
			return err
		}
		if _, dup := r.entries[e.Name]; dup || seen[e.Name] {
			return fmt.Errorf("%w: %q", ErrExists, e.Name)
		}
		seen[e.Name] = true
		if e.SIDL != "" {
			f, err := sidl.Parse(e.SIDL)
			if err != nil {
				return fmt.Errorf("repo: load %s: %w", e.Name, err)
			}
			files = append(files, f)
		}
		entries = append(entries, e)
	}
	table, err := sidl.Resolve(files...)
	if err != nil {
		return fmt.Errorf("repo: load: %w", err)
	}
	for _, e := range entries {
		for _, ps := range append(append([]PortSpec(nil), e.Provides...), e.Uses...) {
			if ps.Type == "" || ps.Name == "" {
				return fmt.Errorf("%w: port %q/%q of %s", ErrBadEntry, ps.Name, ps.Type, e.Name)
			}
			if table.Lookup(ps.Type) == "" {
				return fmt.Errorf("%w: %q (port %s of %s)", ErrUnknownTyp, ps.Type, ps.Name, e.Name)
			}
		}
	}
	// Commit.
	for _, e := range entries {
		r.entries[e.Name] = e
	}
	r.files = files
	r.table = table
	return nil
}

// BindFactory attaches (or replaces) the instantiation factory of a
// deposited entry — the step a site performs after Load for the component
// implementations it actually has.
func (r *Repository) BindFactory(name string, factory func() cca.Component) error {
	r.mu.Lock()
	defer r.mu.Unlock()
	e, ok := r.entries[name]
	if !ok {
		return fmt.Errorf("%w: %q", ErrNotFound, name)
	}
	e.Factory = factory
	return nil
}
