package repo

import (
	"errors"
	"strings"
	"sync"
	"testing"

	"repro/internal/cca"
	"repro/internal/obs"
	"repro/internal/orb"
	"repro/internal/transport"
)

// depositVersions fills a service with a version ladder of one component.
func depositVersions(t *testing.T, s *Service, name string, versions ...string) {
	t.Helper()
	for _, v := range versions {
		err := s.Deposit(Entry{
			Name: name, Version: v,
			Description: name + " at " + v,
			SIDL:        "", // the solver world is deposited separately
			Provides:    []PortSpec{{Name: "solver", Type: "esi.Solver"}},
			Factory:     func() cca.Component { return &stubComponent{} },
		})
		if err != nil {
			t.Fatalf("deposit %s v%s: %v", name, v, err)
		}
	}
}

func newSolverService(t *testing.T) *Service {
	t.Helper()
	s := NewService()
	if err := s.Deposit(Entry{Name: "esi.Interfaces", Version: "1.0", SIDL: solverSIDL}); err != nil {
		t.Fatal(err)
	}
	return s
}

func TestServiceMonotonicVersioning(t *testing.T) {
	s := newSolverService(t)
	depositVersions(t, s, "esi.CG", "1.0", "1.1", "2.0")
	if got := s.Revision(); got != 4 {
		t.Fatalf("revision = %d, want 4", got)
	}
	// Equal and lower versions are rejected.
	for _, v := range []string{"2.0", "1.5", "0.9"} {
		err := s.Deposit(Entry{Name: "esi.CG", Version: v})
		if !errors.Is(err, ErrVersionOrder) {
			t.Errorf("deposit v%s: %v, want ErrVersionOrder", v, err)
		}
	}
	if got := s.Revision(); got != 4 {
		t.Fatalf("revision moved on rejected deposits: %d", got)
	}
	// Unparseable versions and unknown port types are rejected.
	if err := s.Deposit(Entry{Name: "x", Version: "nope"}); !errors.Is(err, ErrBadVersion) {
		t.Errorf("bad version: %v", err)
	}
	err := s.Deposit(Entry{
		Name: "y", Version: "1.0",
		Provides: []PortSpec{{Name: "p", Type: "no.Such"}},
	})
	if !errors.Is(err, ErrUnknownTyp) {
		t.Errorf("unknown port type: %v", err)
	}
	if err := s.Deposit(Entry{Name: "", Version: "1.0"}); !errors.Is(err, ErrBadEntry) {
		t.Errorf("empty name: %v", err)
	}
}

func TestServiceResolve(t *testing.T) {
	s := newSolverService(t)
	depositVersions(t, s, "esi.CG", "1.0", "1.2", "1.9", "2.1")
	cases := []struct {
		constraint, want string
	}{
		{"*", "2.1.0"},
		{"", "2.1.0"},
		{"^1.0", "1.9.0"},
		{"~1.2", "1.2.0"},
		{">=1.2 <2", "1.9.0"},
		{"1.0", "1.0.0"},
	}
	for _, c := range cases {
		e, v, err := s.Resolve("esi.CG", c.constraint)
		if err != nil {
			t.Errorf("resolve %q: %v", c.constraint, err)
			continue
		}
		if v.String() != c.want {
			t.Errorf("resolve %q = %s, want %s", c.constraint, v, c.want)
		}
		if e.Name != "esi.CG" {
			t.Errorf("resolve %q returned entry %q", c.constraint, e.Name)
		}
	}
	if _, _, err := s.Resolve("esi.CG", ">=3"); !errors.Is(err, ErrNoMatch) {
		t.Errorf("unsatisfiable constraint: %v", err)
	}
	if _, _, err := s.Resolve("absent", "*"); !errors.Is(err, ErrNotFound) {
		t.Errorf("unknown name: %v", err)
	}
	if _, _, err := s.Resolve("esi.CG", "^x"); !errors.Is(err, ErrBadVersion) {
		t.Errorf("bad constraint: %v", err)
	}
}

func TestServiceListDescribe(t *testing.T) {
	s := newSolverService(t)
	depositVersions(t, s, "esi.CG", "1.0", "1.1")
	ls := s.List()
	if len(ls) != 3 {
		t.Fatalf("list: %d rows, want 3", len(ls))
	}
	if ls[0].Name != "esi.CG" || ls[0].Version != "1.0.0" || !ls[0].HasFactory {
		t.Errorf("listing row: %+v", ls[0])
	}
	d := s.Describe()
	if !strings.Contains(d, "esi.CG v1.1.0") || !strings.Contains(d, "esi.Interfaces v1.0.0") {
		t.Errorf("describe:\n%s", d)
	}
}

func TestNewServiceFrom(t *testing.T) {
	// The solver world includes chad.FlowComponent, whose ports reference
	// esi types deposited later in sorted order, and which carries no
	// version (seeds as 0.0.0) — both must survive batch seeding.
	r := depositSolverWorld(t)
	s, err := NewServiceFrom(r)
	if err != nil {
		t.Fatalf("seed: %v", err)
	}
	if got := int(s.Revision()); got != len(r.List()) {
		t.Fatalf("revision %d after seeding %d entries", s.Revision(), len(r.List()))
	}
}

// startService serves a repository service over a loopback transport and
// returns a connected client.
func startService(t *testing.T, s *Service) *Client {
	t.Helper()
	oa := orb.NewObjectAdapter()
	s.Bind(oa)
	l, err := transport.TCP{}.Listen("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	srv := orb.Serve(oa, l)
	t.Cleanup(srv.Stop)
	c, err := DialService("tcp://" + srv.Addr())
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { c.Close() })
	return c
}

func TestClientResolveAndCache(t *testing.T) {
	s := newSolverService(t)
	depositVersions(t, s, "esi.CG", "1.0", "1.2")
	c := startService(t, s)

	before := obs.Default.Snapshot().Counters

	rev, err := c.Head()
	if err != nil || rev != 3 {
		t.Fatalf("head: %d, %v", rev, err)
	}

	e, v, err := c.Resolve("esi.CG", "^1.0")
	if err != nil {
		t.Fatal(err)
	}
	if v.String() != "1.2.0" || e.Name != "esi.CG" || e.Factory != nil {
		t.Fatalf("resolve: %s %+v", v, e)
	}
	// Second resolve at the same revision: pure cache hit.
	_, v2, err := c.Resolve("esi.CG", "^1.0")
	if err != nil || v2 != v {
		t.Fatalf("cached resolve: %v %v", v2, err)
	}

	// An unrelated deposit moves the revision; the next resolve
	// revalidates by ETag and comes back "not modified".
	depositVersions(t, s, "esi.GMRES", "1.0")
	_, v3, err := c.Resolve("esi.CG", "^1.0")
	if err != nil || v3 != v {
		t.Fatalf("revalidated resolve: %v %v", v3, err)
	}

	// A relevant deposit changes the resolution: full fetch.
	depositVersions(t, s, "esi.CG", "1.9")
	_, v4, err := c.Resolve("esi.CG", "^1.0")
	if err != nil || v4.String() != "1.9.0" {
		t.Fatalf("after deposit: %v %v", v4, err)
	}

	after := obs.Default.Snapshot().Counters
	diff := func(name string) int64 { return int64(after[name] - before[name]) }
	if hits := diff("repo.client.cache_hits"); hits != 1 {
		t.Errorf("cache hits = %d, want 1", hits)
	}
	if revs := diff("repo.client.revalidations"); revs != 1 {
		t.Errorf("revalidations = %d, want 1", revs)
	}
	if fetches := diff("repo.client.fetches"); fetches != 2 {
		t.Errorf("fetches = %d, want 2", fetches)
	}
	if c.CacheLen() != 1 {
		t.Errorf("cache len = %d", c.CacheLen())
	}
}

func TestClientListDepositDescribe(t *testing.T) {
	s := newSolverService(t)
	c := startService(t, s)

	ls, err := c.List()
	if err != nil || len(ls) != 1 {
		t.Fatalf("list: %v %v", ls, err)
	}
	rev, err := c.Deposit(&Entry{
		Name: "esi.CG", Version: "1.0",
		Description: "deposited over the wire",
		Provides:    []PortSpec{{Name: "solver", Type: "esi.Solver"}},
	})
	if err != nil || rev != 2 {
		t.Fatalf("deposit: %d %v", rev, err)
	}
	d, err := c.Describe()
	if err != nil || !strings.Contains(d, "deposited over the wire") {
		t.Fatalf("describe: %q %v", d, err)
	}
	// Wire errors surface typed-ish: a bad deposit is an invoke error.
	if _, err := c.Deposit(&Entry{Name: "esi.CG", Version: "0.1"}); err == nil {
		t.Fatal("non-monotonic deposit over the wire succeeded")
	}
	// Resolve through the wire on a never-cached name errors cleanly.
	if _, _, err := c.Resolve("absent", "*"); err == nil {
		t.Fatal("resolve of absent name succeeded")
	}
}

// TestClientConcurrentResolve hammers one client from many goroutines while
// the service keeps depositing — the cache must stay consistent (never
// serve a version below one already observed for a monotone constraint).
func TestClientConcurrentResolve(t *testing.T) {
	s := newSolverService(t)
	depositVersions(t, s, "esi.CG", "1.0")
	c := startService(t, s)

	stop := make(chan struct{})
	var depositErr error
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		for i := 1; i <= 20; i++ {
			if err := s.Deposit(Entry{
				Name: "esi.CG", Version: Version{1, i, 0}.String(),
				Provides: []PortSpec{{Name: "solver", Type: "esi.Solver"}},
			}); err != nil {
				depositErr = err
				return
			}
		}
		close(stop)
	}()
	var readers sync.WaitGroup
	for g := 0; g < 4; g++ {
		readers.Add(1)
		go func() {
			defer readers.Done()
			last := Version{}
			for {
				select {
				case <-stop:
					return
				default:
				}
				_, v, err := c.Resolve("esi.CG", "^1.0")
				if err != nil {
					t.Errorf("resolve: %v", err)
					return
				}
				if v.Less(last) {
					t.Errorf("resolution went backwards: %v after %v", v, last)
					return
				}
				last = v
			}
		}()
	}
	wg.Wait()
	readers.Wait()
	if depositErr != nil {
		t.Fatal(depositErr)
	}
}
