package repo

import (
	"errors"
	"testing"
)

func TestParseVersion(t *testing.T) {
	cases := []struct {
		in   string
		want Version
		ok   bool
	}{
		{"1.2.3", Version{1, 2, 3}, true},
		{"1.2", Version{1, 2, 0}, true},
		{"1", Version{1, 0, 0}, true},
		{"v2.0.1", Version{2, 0, 1}, true},
		{" 1.0 ", Version{1, 0, 0}, true},
		{"0.0.0", Version{0, 0, 0}, true},
		{"", Version{}, false},
		{"1.2.3.4", Version{}, false},
		{"1.x", Version{}, false},
		{"-1.0", Version{}, false},
		{"a.b.c", Version{}, false},
	}
	for _, c := range cases {
		got, err := ParseVersion(c.in)
		if c.ok != (err == nil) {
			t.Errorf("ParseVersion(%q): err=%v, want ok=%v", c.in, err, c.ok)
			continue
		}
		if c.ok && got != c.want {
			t.Errorf("ParseVersion(%q) = %v, want %v", c.in, got, c.want)
		}
		if !c.ok && !errors.Is(err, ErrBadVersion) {
			t.Errorf("ParseVersion(%q) error %v is not ErrBadVersion", c.in, err)
		}
	}
}

func TestVersionCompare(t *testing.T) {
	order := []Version{{0, 0, 0}, {0, 0, 9}, {0, 1, 0}, {1, 0, 0}, {1, 0, 1}, {1, 2, 0}, {2, 0, 0}}
	for i, a := range order {
		for j, b := range order {
			want := 0
			if i < j {
				want = -1
			} else if i > j {
				want = 1
			}
			if got := a.Compare(b); got != want {
				t.Errorf("%v.Compare(%v) = %d, want %d", a, b, got, want)
			}
			if got := a.Less(b); got != (i < j) {
				t.Errorf("%v.Less(%v) = %v, want %v", a, b, got, i < j)
			}
		}
	}
	if got := (Version{1, 2, 3}).String(); got != "1.2.3" {
		t.Errorf("String: %v", got)
	}
}

// TestConstraintTable is the resolver version-constraint table: each
// spelling of the constraint grammar against a ladder of versions.
func TestConstraintTable(t *testing.T) {
	versions := []string{"0.9.0", "1.0.0", "1.1.0", "1.2.0", "1.2.5", "1.3.0", "2.0.0", "2.1.0"}
	cases := []struct {
		constraint string
		match      []string // subset of versions that must match
		best       string   // highest matching, "" when none
	}{
		{"*", versions, "2.1.0"},
		{"", versions, "2.1.0"},
		{"1.2.0", []string{"1.2.0"}, "1.2.0"},
		{"=1.2", []string{"1.2.0"}, "1.2.0"},
		{"==1.2.5", []string{"1.2.5"}, "1.2.5"},
		{"^1.0", []string{"1.0.0", "1.1.0", "1.2.0", "1.2.5", "1.3.0"}, "1.3.0"},
		{"^1.2", []string{"1.2.0", "1.2.5", "1.3.0"}, "1.3.0"},
		{"^2", []string{"2.0.0", "2.1.0"}, "2.1.0"},
		{"~1.2", []string{"1.2.0", "1.2.5"}, "1.2.5"},
		{"~1.4", nil, ""},
		{">=1.2", []string{"1.2.0", "1.2.5", "1.3.0", "2.0.0", "2.1.0"}, "2.1.0"},
		{">1.2", []string{"1.2.5", "1.3.0", "2.0.0", "2.1.0"}, "2.1.0"},
		{"<=1.2", []string{"0.9.0", "1.0.0", "1.1.0", "1.2.0"}, "1.2.0"},
		{"<1", []string{"0.9.0"}, "0.9.0"},
		{">=1.0 <2.0", []string{"1.0.0", "1.1.0", "1.2.0", "1.2.5", "1.3.0"}, "1.3.0"},
		{">1 <1.3", []string{"1.1.0", "1.2.0", "1.2.5"}, "1.2.5"},
		{">=3", nil, ""},
	}
	for _, c := range cases {
		con, err := ParseConstraint(c.constraint)
		if err != nil {
			t.Errorf("ParseConstraint(%q): %v", c.constraint, err)
			continue
		}
		matchSet := map[string]bool{}
		for _, m := range c.match {
			matchSet[m] = true
		}
		var parsed []Version
		for _, vs := range versions {
			v, err := ParseVersion(vs)
			if err != nil {
				t.Fatal(err)
			}
			parsed = append(parsed, v)
			if got := con.Match(v); got != matchSet[vs] {
				t.Errorf("constraint %q match %s = %v, want %v", c.constraint, vs, got, matchSet[vs])
			}
		}
		best, ok := con.Best(parsed)
		if c.best == "" {
			if ok {
				t.Errorf("constraint %q Best = %v, want none", c.constraint, best)
			}
		} else if !ok || best.String() != c.best {
			t.Errorf("constraint %q Best = %v/%v, want %s", c.constraint, best, ok, c.best)
		}
	}
}

func TestConstraintErrors(t *testing.T) {
	for _, bad := range []string{"^", ">=", "1.2.x", "!= 1.0", "^1.2.3.4"} {
		if _, err := ParseConstraint(bad); !errors.Is(err, ErrBadVersion) {
			t.Errorf("ParseConstraint(%q) = %v, want ErrBadVersion", bad, err)
		}
	}
	c, err := ParseConstraint("  ")
	if err != nil || !c.Any() || c.String() != "*" {
		t.Errorf("blank constraint: %v %v %q", c, err, c.String())
	}
	if got, err := ParseConstraint("^1.2"); err != nil || got.String() != "^1.2" || got.Any() {
		t.Errorf("^1.2: %v %v", got, err)
	}
}
