package orb

// Tests for the multiplexed remote path: many concurrent in-flight calls
// on one connection, out-of-order completion, cancellation, and error
// propagation on connection loss.

import (
	"context"
	"errors"
	"fmt"
	"sync"
	"testing"
	"time"

	"repro/internal/sidl"
	"repro/internal/sidl/sreflect"
	"repro/internal/transport"
)

// slowImpl is a servant whose wait method blocks until released, so tests
// can hold a call in flight deterministically.
type slowImpl struct {
	release chan struct{}
	started chan struct{}
}

func (s *slowImpl) Wait(tag float64) float64 {
	select {
	case s.started <- struct{}{}:
	default:
	}
	<-s.release
	return tag
}

func slowInfo(t testing.TB) *sreflect.TypeInfo {
	t.Helper()
	f, err := sidl.Parse(`package tmux { interface Slow { double wait(in double tag); } }`)
	if err != nil {
		t.Fatal(err)
	}
	tbl, err := sidl.Resolve(f)
	if err != nil {
		t.Fatal(err)
	}
	for _, ti := range sreflect.FromTable(tbl) {
		if ti.QName == "tmux.Slow" {
			return ti
		}
	}
	t.Fatal("tmux.Slow missing")
	return nil
}

// eachORBTransport runs f against a served adapter over both transports.
func eachORBTransport(t *testing.T, oa *ObjectAdapter, f func(t *testing.T, srv *Server, c *Client)) {
	t.Helper()
	t.Run("inproc", func(t *testing.T) {
		tr := &transport.InProc{}
		l, err := tr.Listen("mux")
		if err != nil {
			t.Fatal(err)
		}
		srv := Serve(oa, l)
		defer srv.Stop()
		c, err := DialClient(tr, "mux")
		if err != nil {
			t.Fatal(err)
		}
		defer c.Close()
		f(t, srv, c)
	})
	t.Run("tcp", func(t *testing.T) {
		l, err := transport.TCP{}.Listen("127.0.0.1:0")
		if err != nil {
			t.Fatal(err)
		}
		srv := Serve(oa, l)
		defer srv.Stop()
		c, err := DialClient(transport.TCP{}, srv.Addr())
		if err != nil {
			t.Fatal(err)
		}
		defer c.Close()
		f(t, srv, c)
	})
}

func TestClientConcurrentInvokes(t *testing.T) {
	// 16 goroutines share one client and one connection; every call must
	// see exactly its own reply.
	oa := NewObjectAdapter()
	if err := oa.Register("calc", calcInfo(t), calcImpl{}); err != nil {
		t.Fatal(err)
	}
	eachORBTransport(t, oa, func(t *testing.T, _ *Server, c *Client) {
		const callers, calls = 16, 50
		var wg sync.WaitGroup
		errs := make(chan error, callers)
		for g := 0; g < callers; g++ {
			wg.Add(1)
			go func(g int) {
				defer wg.Done()
				for i := 0; i < calls; i++ {
					a, b := float64(g), float64(i)
					res, err := c.Invoke("calc", "add", a, b)
					if err != nil {
						errs <- fmt.Errorf("caller %d call %d: %w", g, i, err)
						return
					}
					if got := res[0].(float64); got != a+b {
						errs <- fmt.Errorf("caller %d call %d: got %v, want %v", g, i, got, a+b)
						return
					}
				}
			}(g)
		}
		wg.Wait()
		close(errs)
		for err := range errs {
			t.Error(err)
		}
	})
}

func TestClientPipelinesAroundSlowCall(t *testing.T) {
	// A blocked in-flight call must not serialize the connection: a fast
	// call issued afterwards completes while the slow one is still held.
	oa := NewObjectAdapter()
	if err := oa.Register("calc", calcInfo(t), calcImpl{}); err != nil {
		t.Fatal(err)
	}
	eachORBTransport(t, oa, func(t *testing.T, _ *Server, c *Client) {
		// A fresh servant per transport: Register overwrites the key, so
		// each subtest gets its own release channel (sharing one across
		// subtests would race rearming it against late servant reads).
		slow := &slowImpl{release: make(chan struct{}), started: make(chan struct{}, 1)}
		if err := oa.Register("slow", slowInfo(t), slow); err != nil {
			t.Fatal(err)
		}
		slowDone := make(chan error, 1)
		go func() {
			res, err := c.Invoke("slow", "wait", 7.0)
			if err == nil && res[0].(float64) != 7 {
				err = fmt.Errorf("slow result = %v", res)
			}
			slowDone <- err
		}()
		select {
		case <-slow.started:
		case <-time.After(5 * time.Second):
			t.Fatal("slow call never reached the servant")
		}
		// The slow call is now executing server-side and its reply is
		// pending. A fast call on the same connection must overtake it.
		fastDone := make(chan error, 1)
		go func() {
			_, err := c.Invoke("calc", "add", 1.0, 2.0)
			fastDone <- err
		}()
		select {
		case err := <-fastDone:
			if err != nil {
				t.Fatalf("fast call: %v", err)
			}
		case <-time.After(5 * time.Second):
			t.Fatal("fast call blocked behind slow in-flight call")
		}
		close(slow.release)
		if err := <-slowDone; err != nil {
			t.Fatalf("slow call: %v", err)
		}
	})
}

func TestInvokeContextCancel(t *testing.T) {
	oa := NewObjectAdapter()
	if err := oa.Register("calc", calcInfo(t), calcImpl{}); err != nil {
		t.Fatal(err)
	}
	eachORBTransport(t, oa, func(t *testing.T, _ *Server, c *Client) {
		slow := &slowImpl{release: make(chan struct{}), started: make(chan struct{}, 1)}
		if err := oa.Register("slow", slowInfo(t), slow); err != nil {
			t.Fatal(err)
		}
		ctx, cancel := context.WithTimeout(context.Background(), 30*time.Millisecond)
		defer cancel()
		if _, err := c.InvokeContext(ctx, "slow", "wait", 1.0); !errors.Is(err, context.DeadlineExceeded) {
			t.Fatalf("err = %v, want DeadlineExceeded", err)
		}
		// The abandoned call must not leak a pending entry, and the
		// client stays usable: the late reply is discarded by the demux.
		c.mu.Lock()
		pending := len(c.calls)
		c.mu.Unlock()
		if pending != 0 {
			t.Errorf("%d pending calls after cancellation", pending)
		}
		close(slow.release)
		if res, err := c.Invoke("calc", "add", 2.0, 3.0); err != nil || res[0].(float64) != 5 {
			t.Errorf("post-cancel invoke: %v, %v", res, err)
		}
	})
}

func TestConnectionLossFailsPendingCalls(t *testing.T) {
	slow := &slowImpl{release: make(chan struct{}), started: make(chan struct{}, 1)}
	oa := NewObjectAdapter()
	if err := oa.Register("slow", slowInfo(t), slow); err != nil {
		t.Fatal(err)
	}
	tr := &transport.InProc{}
	l, err := tr.Listen("loss")
	if err != nil {
		t.Fatal(err)
	}
	srv := Serve(oa, l)
	c, err := DialClient(tr, "loss")
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	pending := make(chan error, 1)
	go func() {
		_, err := c.Invoke("slow", "wait", 1.0)
		pending <- err
	}()
	select {
	case <-slow.started:
	case <-time.After(5 * time.Second):
		t.Fatal("call never reached the servant")
	}
	close(slow.release) // let the handler finish; Stop waits for workers
	srv.Stop()
	select {
	case err := <-pending:
		if err == nil {
			// The reply may legitimately have won the race with the
			// close — but only if the server flushed it before stopping.
		} else if !errors.Is(err, transport.ErrClosed) {
			t.Errorf("pending call err = %v, want ErrClosed", err)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("pending call did not observe connection loss")
	}
	// After the demux has died every new call fails fast.
	if _, err := c.Invoke("slow", "wait", 2.0); err == nil {
		t.Error("invoke after connection loss succeeded")
	}
}

func TestClientStressParallelMixedCalls(t *testing.T) {
	// Race-detector stress: concurrent two-way and oneway traffic over one
	// multiplexed connection, with payloads spanning the coalescer's
	// zero-copy cutoff.
	oa := NewObjectAdapter()
	obs := &observer{}
	if err := oa.Register("calc", calcInfo(t), calcImpl{}); err != nil {
		t.Fatal(err)
	}
	if err := oa.Register("mon", observerInfo(t), obs); err != nil {
		t.Fatal(err)
	}
	eachORBTransport(t, oa, func(t *testing.T, _ *Server, c *Client) {
		big := make([]float64, 2048) // 16 KiB payload: beyond coalesceCutoff
		for i := range big {
			big[i] = 1
		}
		var wg sync.WaitGroup
		for g := 0; g < 8; g++ {
			wg.Add(1)
			go func(g int) {
				defer wg.Done()
				for i := 0; i < 25; i++ {
					if g%2 == 0 {
						res, err := c.Invoke("calc", "sum", big)
						if err != nil || res[0].(float64) != float64(len(big)) {
							t.Errorf("sum: %v, %v", res, err)
							return
						}
					} else {
						if _, err := c.Invoke("calc", "greet", "w"); err != nil {
							t.Errorf("greet: %v", err)
							return
						}
						if err := c.InvokeOneway("mon", "observe", int32(i), []float64{1}); err != nil {
							t.Errorf("oneway: %v", err)
							return
						}
					}
				}
			}(g)
		}
		wg.Wait()
	})
}
