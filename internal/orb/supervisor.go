package orb

import (
	"context"
	"errors"
	"fmt"
	"math/rand"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/transport"
)

// ErrSupervisorClosed is reported by calls on a Supervised client after
// Close.
var ErrSupervisorClosed = errors.New("orb: supervised client closed")

// ConnState is the supervised connection's externally visible health:
// Healthy (live client), Degraded (connection lost, redial in progress —
// idempotent calls wait and retry, others fail fast with a Retryable
// error), Broken (circuit open: the peer has resisted BreakerThreshold
// consecutive dials, so every call is shed immediately until a half-open
// probe succeeds).
type ConnState int32

// Supervised connection states.
const (
	StateHealthy ConnState = iota
	StateDegraded
	StateBroken
)

func (s ConnState) String() string {
	switch s {
	case StateHealthy:
		return "healthy"
	case StateDegraded:
		return "degraded"
	case StateBroken:
		return "broken"
	default:
		return fmt.Sprintf("state(%d)", int32(s))
	}
}

// Heartbeat wire detail: an idle supervised connection is probed with a
// oneway request (correlation ID 0) to this reserved key/method. The server
// needs no handler — an unknown-key oneway is decoded and dropped — so the
// probe costs one frame and no reply; its purpose is forcing a write, which
// is what surfaces a silently dead transport.
const (
	pingKey    = "orb/supervisor"
	pingMethod = "ping"
)

// SupervisorOptions tunes a Supervised client. The zero value is usable:
// every field has a documented default.
type SupervisorOptions struct {
	// ConnectTimeout bounds the initial DialSupervised: dial attempts are
	// retried with backoff until one succeeds or this budget elapses.
	// Default 5s.
	ConnectTimeout time.Duration
	// RetryBase and RetryCap shape the capped exponential redial/retry
	// backoff: attempt n waits cap(RetryBase·2ⁿ) with jitter drawn in
	// [d/2, d). Defaults 5ms and 1s.
	RetryBase time.Duration
	RetryCap  time.Duration
	// MaxAttempts is the per-call attempt budget for idempotent-marked
	// methods (first try included). Non-idempotent methods always get
	// exactly one attempt. Default 4.
	MaxAttempts int
	// CallTimeout, when nonzero, bounds each attempt of an idempotent call
	// (on top of the caller's context): a lost request or reply frame turns
	// into a timely retry instead of an indefinite hang. Default 0 (off).
	CallTimeout time.Duration
	// BreakerThreshold opens the circuit after this many consecutive
	// failed dials. Default 5.
	BreakerThreshold int
	// BreakerCooldown is how long an open circuit rests before the next
	// half-open probe dial. Default 2s.
	BreakerCooldown time.Duration
	// Heartbeat, when nonzero, probes the connection with a oneway ping
	// after this much idle time, so a silently dead peer is detected (and
	// redial begins) without waiting for the next real call. Default 0.
	Heartbeat time.Duration
	// Idempotent marks methods safe to re-execute; the supervisor
	// transparently retries them across reconnects under the caller's
	// context deadline. Nil marks nothing.
	Idempotent func(method string) bool
	// OnState observes health transitions (the framework bridges these to
	// configuration-API events). Called outside the supervisor lock, but
	// sequentially; it must not call back into the Supervised client.
	OnState func(s ConnState, cause error)
	// Restart, when non-nil, turns Broken from a terminal shed state into
	// crash recovery: once the circuit opens, each half-open probe first
	// relaunches a servant (Restart.Relaunch), redials it, and replays the
	// latest checkpoint through the reserved RestoreKey before adopting
	// the connection. See RestartPolicy.
	Restart *RestartPolicy
	// Seed fixes the jitter RNG for reproducible schedules. Default 1.
	Seed int64
}

// AllIdempotent marks every method idempotent — appropriate for read-only
// port interfaces like the ESI operator surface.
func AllIdempotent(string) bool { return true }

// IdempotentMethods marks exactly the named methods idempotent.
func IdempotentMethods(methods ...string) func(string) bool {
	set := make(map[string]bool, len(methods))
	for _, m := range methods {
		set[m] = true
	}
	return func(m string) bool { return set[m] }
}

func (o SupervisorOptions) withDefaults() SupervisorOptions {
	if o.ConnectTimeout <= 0 {
		o.ConnectTimeout = 5 * time.Second
	}
	if o.RetryBase <= 0 {
		o.RetryBase = 5 * time.Millisecond
	}
	if o.RetryCap <= 0 {
		o.RetryCap = time.Second
	}
	if o.MaxAttempts <= 0 {
		o.MaxAttempts = 4
	}
	if o.BreakerThreshold <= 0 {
		o.BreakerThreshold = 5
	}
	if o.BreakerCooldown <= 0 {
		o.BreakerCooldown = 2 * time.Second
	}
	if o.Seed == 0 {
		o.Seed = 1
	}
	return o
}

// Supervised is a self-healing multiplexed ORB client: the paper's
// framework-interposed proxy made resilient. It wraps Client with a
// supervisor that (1) classifies every failure as Retryable, Timeout, or
// Fatal; (2) redials lost connections with capped exponential backoff plus
// jitter; (3) transparently retries idempotent-marked methods under the
// caller's context deadline; (4) sheds load through a closed → open →
// half-open circuit breaker once the peer looks truly dead; and (5)
// optionally probes idle connections with a oneway heartbeat. All methods
// are safe for concurrent use.
type Supervised struct {
	tr   transport.Transport
	addr string
	opts SupervisorOptions

	mu          sync.Mutex
	cur         *Client       // nil while disconnected
	gen         uint64        // bumped on every adopted connection
	ready       chan struct{} // closed while cur != nil; replaced on loss
	state       ConnState
	consecDials int  // consecutive failed dials (breaker input)
	restarts    int  // RestartPolicy relaunches this outage
	redialing   bool // a redial loop is running
	closed      bool // Close called
	rng         *rand.Rand

	stop     chan struct{} // closed by Close
	wg       sync.WaitGroup
	lastSend atomic.Int64 // unix nanos of the last successful call activity
}

// DialSupervised connects to a served address under supervision. The
// initial dial is retried with backoff until ConnectTimeout elapses, so a
// client may be started slightly before its server.
func DialSupervised(tr transport.Transport, addr string, opts SupervisorOptions) (*Supervised, error) {
	s := &Supervised{
		tr:    tr,
		addr:  addr,
		opts:  opts.withDefaults(),
		ready: make(chan struct{}),
		stop:  make(chan struct{}),
	}
	s.rng = rand.New(rand.NewSource(s.opts.Seed))
	deadline := time.Now().Add(s.opts.ConnectTimeout)
	var lastErr error
	for attempt := 0; ; attempt++ {
		c, err := DialClient(tr, addr)
		if err == nil {
			s.adopt(c)
			break
		}
		lastErr = err
		d := s.backoff(attempt)
		if time.Now().Add(d).After(deadline) {
			return nil, fmt.Errorf("orb: supervised dial %s: %w", addr, lastErr)
		}
		time.Sleep(d)
	}
	gSupStates[StateHealthy].Add(1) // the connection now exists, Healthy
	if s.opts.Heartbeat > 0 {
		s.wg.Add(1)
		go s.heartbeatLoop()
	}
	return s, nil
}

// Addr reports the supervised endpoint (a RestartPolicy relaunch may move
// it).
func (s *Supervised) Addr() string {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.addr
}

// State reports the current connection health.
func (s *Supervised) State() ConnState {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.state
}

// setStateLocked transitions the health state; the returned thunk (nil when
// the state did not change) must be called after the lock is released.
func (s *Supervised) setStateLocked(st ConnState, cause error) func() {
	if s.state == st {
		return nil
	}
	// Breaker-state gauges: this connection's contribution moves from its
	// old state's gauge to the new one's.
	gSupStates[s.state].Add(-1)
	gSupStates[st].Add(1)
	if st == StateBroken {
		cSupBreakerOpens.Inc()
	}
	s.state = st
	if cb := s.opts.OnState; cb != nil {
		return func() { cb(st, cause) }
	}
	return nil
}

// adopt installs a freshly dialed client and spawns its death watcher.
func (s *Supervised) adopt(c *Client) {
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		c.Close()
		return
	}
	s.cur = c
	s.gen++
	g := s.gen
	s.consecDials = 0
	s.restarts = 0 // outage over: the restart budget re-arms
	s.redialing = false
	close(s.ready)
	notify := s.setStateLocked(StateHealthy, nil)
	s.mu.Unlock()
	if notify != nil {
		notify()
	}
	s.lastSend.Store(time.Now().UnixNano())
	s.wg.Add(1)
	go func() {
		defer s.wg.Done()
		select {
		case <-c.Done():
			s.dropClient(c, g, c.Err())
		case <-s.stop:
		}
	}()
}

// dropClient tears down a client observed failing (by a caller or the
// death watcher) and starts the redial loop. Generation-checked, so a
// stale report about an already replaced connection is a no-op.
func (s *Supervised) dropClient(c *Client, g uint64, cause error) {
	s.mu.Lock()
	if s.closed || s.gen != g || s.cur != c {
		s.mu.Unlock()
		c.Close() // stale: still make sure its demux winds down
		return
	}
	s.cur = nil
	s.ready = make(chan struct{})
	notify := s.setStateLocked(StateDegraded, cause)
	if !s.redialing {
		s.redialing = true
		s.wg.Add(1)
		go s.redialLoop(cause)
	}
	s.mu.Unlock()
	if notify != nil {
		notify()
	}
	c.Close()
}

// redialLoop re-establishes the connection with capped exponential backoff
// and jitter. After BreakerThreshold consecutive failures the circuit
// opens (state Broken: calls shed immediately) and further attempts become
// half-open probes paced by BreakerCooldown.
func (s *Supervised) redialLoop(cause error) {
	defer s.wg.Done()
	for attempt := 0; ; attempt++ {
		var delay time.Duration
		s.mu.Lock()
		if s.closed {
			s.redialing = false
			s.mu.Unlock()
			return
		}
		var notify func()
		if s.consecDials >= s.opts.BreakerThreshold {
			notify = s.setStateLocked(StateBroken, cause)
		}
		if s.state == StateBroken {
			delay = s.opts.BreakerCooldown // rest until the half-open probe
		} else {
			delay = s.backoffLocked(attempt)
		}
		s.mu.Unlock()
		if notify != nil {
			notify()
		}
		if !s.sleep(delay) {
			s.mu.Lock()
			s.redialing = false
			s.mu.Unlock()
			return
		}
		cSupRedials.Inc()
		s.mu.Lock()
		restart := s.state == StateBroken && s.restartBudgetLeft()
		addr := s.addr
		s.mu.Unlock()
		var c *Client
		if restart {
			// Crash recovery: relaunch a servant, dial it, replay the
			// checkpoint. Any failed step counts against the dial streak
			// like an ordinary probe miss, and its error replaces the
			// stale pre-restart cause in Broken notifications and sheds.
			var err error
			if c, err = s.tryRestart(); err != nil {
				cause = err
				s.mu.Lock()
				s.consecDials++
				s.mu.Unlock()
				continue
			}
		} else {
			var err error
			if c, err = DialClient(s.tr, addr); err != nil {
				cause = err
				s.mu.Lock()
				s.consecDials++
				s.mu.Unlock()
				continue
			}
		}
		s.adopt(c) // clears redialing under the lock
		return
	}
}

// sleep waits d unless Close interrupts; reports whether the wait ran full.
func (s *Supervised) sleep(d time.Duration) bool {
	t := time.NewTimer(d)
	defer t.Stop()
	select {
	case <-t.C:
		return true
	case <-s.stop:
		return false
	}
}

func (s *Supervised) backoff(attempt int) time.Duration {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.backoffLocked(attempt)
}

// backoffLocked computes cap(RetryBase·2ᵃᵗᵗᵉᵐᵖᵗ) jittered into [d/2, d).
func (s *Supervised) backoffLocked(attempt int) time.Duration {
	d := s.opts.RetryBase
	for i := 0; i < attempt && d < s.opts.RetryCap; i++ {
		d *= 2
	}
	if d > s.opts.RetryCap {
		d = s.opts.RetryCap
	}
	half := int64(d / 2)
	if half <= 0 {
		return d
	}
	return time.Duration(half + s.rng.Int63n(half))
}

// acquire returns the live client, waiting (bounded by RetryCap and ctx)
// for a reconnect when wait is set. Broken state fails fast — that is the
// breaker shedding load.
func (s *Supervised) acquire(ctx context.Context, wait bool) (*Client, uint64, error) {
	for {
		s.mu.Lock()
		switch {
		case s.closed:
			s.mu.Unlock()
			return nil, 0, classed(ClassFatal, ErrSupervisorClosed)
		case s.cur != nil:
			c, g := s.cur, s.gen
			s.mu.Unlock()
			return c, g, nil
		case s.state == StateBroken:
			addr := s.addr
			s.mu.Unlock()
			return nil, 0, classed(ClassRetryable, fmt.Errorf("%w: %s", ErrCircuitOpen, addr))
		}
		ready, addr := s.ready, s.addr
		s.mu.Unlock()
		if !wait {
			return nil, 0, classed(ClassRetryable,
				fmt.Errorf("%w: reconnecting to %s", transport.ErrClosed, addr))
		}
		t := time.NewTimer(s.opts.RetryCap)
		select {
		case <-ready:
			t.Stop()
			continue
		case <-ctx.Done():
			t.Stop()
			return nil, 0, classed(ClassTimeout, ctx.Err())
		case <-s.stop:
			t.Stop()
			return nil, 0, classed(ClassFatal, ErrSupervisorClosed)
		case <-t.C:
			// Bounded wait: report Retryable and let the caller's attempt
			// budget decide, rather than hanging without a deadline.
			return nil, 0, classed(ClassRetryable,
				fmt.Errorf("%w: still reconnecting to %s", transport.ErrClosed, addr))
		}
	}
}

// Invoke performs a supervised remote call; see InvokeContext.
func (s *Supervised) Invoke(key, method string, args ...any) ([]any, error) {
	return s.InvokeContext(context.Background(), key, method, args...)
}

// InvokeContext performs a supervised remote call. Failures surface as
// *CallError. Idempotent-marked methods are retried across reconnects —
// with backoff, within MaxAttempts, and never past ctx's deadline; when
// CallTimeout is set each attempt is individually bounded, so a frame lost
// in transit costs one attempt, not the whole deadline. Non-idempotent
// methods fail on the first connection-level error (the server may or may
// not have executed them — only the caller can decide to resubmit).
func (s *Supervised) InvokeContext(ctx context.Context, key, method string, args ...any) ([]any, error) {
	var res []any
	err := s.supervisedDo(ctx, method, func(ctx context.Context, c *Client) error {
		var err error
		res, err = c.InvokeContext(ctx, key, method, args...)
		return err
	})
	if err != nil {
		return nil, err
	}
	return res, nil
}

// InvokeRawContext is the supervised bulk-transfer path: it performs
// Client.InvokeRawContext under exactly the retry, redial, and breaker
// policy of InvokeContext. The distributed collective port pulls its
// chunks through this, so a severed cohort connection heals mid-pull.
func (s *Supervised) InvokeRawContext(ctx context.Context, key, method string, args ...any) (RawReply, error) {
	var rr RawReply
	err := s.supervisedDo(ctx, method, func(ctx context.Context, c *Client) error {
		var err error
		rr, err = c.InvokeRawContext(ctx, key, method, args...)
		return err
	})
	if err != nil {
		return RawReply{}, err
	}
	return rr, nil
}

// supervisedDo runs one logical call through the shared retry loop: call
// performs a single attempt on a live client (results are captured by the
// caller's closure), and the loop classifies its failures, redials, and
// retries idempotent-marked methods per SupervisorOptions.
func (s *Supervised) supervisedDo(ctx context.Context, method string, call func(ctx context.Context, c *Client) error) error {
	idem := s.opts.Idempotent != nil && s.opts.Idempotent(method)
	// Every method gets the full attempt budget: non-idempotent calls
	// still return on the first connection-level failure (below), but
	// load-shed replies arrive before the server executes anything, so
	// they are safe to retry regardless of idempotence.
	attempts := s.opts.MaxAttempts
	if attempts < 1 {
		attempts = 1
	}
	var lastErr error
	for attempt := 0; attempt < attempts; attempt++ {
		if attempt > 0 {
			cSupRetries.Inc()
			if !s.sleepCtx(ctx, s.backoff(attempt-1)) {
				return classed(ClassTimeout, ctx.Err())
			}
		}
		c, g, err := s.acquire(ctx, idem)
		if err != nil {
			lastErr = err
			if !idem || Classify(err) != ClassRetryable {
				return err
			}
			continue
		}
		callCtx, cancel := ctx, func() {}
		if idem && s.opts.CallTimeout > 0 {
			callCtx, cancel = context.WithTimeout(ctx, s.opts.CallTimeout)
		}
		err = call(callCtx, c)
		cancel()
		if err == nil {
			s.lastSend.Store(time.Now().UnixNano())
			return nil
		}
		switch Classify(err) {
		case ClassFatal:
			// Application-level failure: the connection is fine and a
			// retry would re-raise the same exception.
			return classed(ClassFatal, err)
		case ClassTimeout:
			if ctx.Err() != nil || !idem {
				return classed(ClassTimeout, err)
			}
			// Only the per-attempt CallTimeout expired (likely a dropped
			// frame); the caller's deadline is intact, so retry. The
			// connection itself may be healthy — do not tear it down.
			lastErr = classed(ClassTimeout, err)
		case ClassRetryable:
			if IsOverloaded(err) {
				// The server shed the request before executing it: the
				// connection is healthy, so back off and retry on it
				// instead of tearing it down — redialing a loaded server
				// would only add dial storms to the overload.
				cSupOverloads.Inc()
				lastErr = classed(ClassRetryable, err)
				continue
			}
			s.dropClient(c, g, err)
			lastErr = classed(ClassRetryable, err)
			if !idem {
				return lastErr
			}
		}
	}
	return lastErr
}

// sleepCtx waits d unless ctx or Close interrupts; reports true when the
// wait ran full.
func (s *Supervised) sleepCtx(ctx context.Context, d time.Duration) bool {
	t := time.NewTimer(d)
	defer t.Stop()
	select {
	case <-t.C:
		return true
	case <-ctx.Done():
		return false
	case <-s.stop:
		return false
	}
}

// InvokeOneway performs a supervised fire-and-forget call. Oneways are
// never retried (their contract is at-most-once, best effort); a
// connection-level failure tears the connection down for the supervisor to
// heal and is reported to the caller.
func (s *Supervised) InvokeOneway(key, method string, args ...any) error {
	c, g, err := s.acquire(context.Background(), false)
	if err != nil {
		return err
	}
	if err := c.InvokeOneway(key, method, args...); err != nil {
		if Classify(err) == ClassRetryable {
			s.dropClient(c, g, err)
			return classed(ClassRetryable, err)
		}
		return classed(ClassFatal, err)
	}
	s.lastSend.Store(time.Now().UnixNano())
	return nil
}

// Proxy returns a remote object reference whose calls are supervised.
func (s *Supervised) Proxy(key string) *Proxy {
	return &Proxy{invoke: s.Invoke, key: key}
}

// heartbeatLoop probes the connection with a oneway ping whenever it has
// been idle for a full Heartbeat interval. The ping carries correlation
// ID 0 and no reply; detection works because writing is the one operation
// a silently dead transport cannot fake indefinitely.
func (s *Supervised) heartbeatLoop() {
	defer s.wg.Done()
	tick := time.NewTicker(s.opts.Heartbeat)
	defer tick.Stop()
	for {
		select {
		case <-s.stop:
			return
		case <-tick.C:
		}
		if time.Since(time.Unix(0, s.lastSend.Load())) < s.opts.Heartbeat {
			continue // real traffic is probing the connection already
		}
		s.mu.Lock()
		c, g, st := s.cur, s.gen, s.state
		s.mu.Unlock()
		if st == StateBroken {
			// An open circuit means the peer resisted BreakerThreshold
			// consecutive dials; pinging it would only prolong the storm.
			// The half-open probe (redialLoop) owns recovery detection.
			cSupHeartbeatsSuppressed.Inc()
			continue
		}
		if c == nil {
			continue // redial in progress
		}
		if err := c.InvokeOneway(pingKey, pingMethod); err != nil {
			s.dropClient(c, g, fmt.Errorf("orb: heartbeat: %w", err))
		} else {
			s.lastSend.Store(time.Now().UnixNano())
		}
	}
}

// Close stops supervision (redial loop, heartbeat, watchers) and releases
// the connection. Pending calls fail; later calls report
// ErrSupervisorClosed.
func (s *Supervised) Close() error {
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		return nil
	}
	s.closed = true
	gSupStates[s.state].Add(-1) // retire this connection's state contribution
	c := s.cur
	s.cur = nil
	close(s.stop)
	s.mu.Unlock()
	if c != nil {
		c.Close()
	}
	s.wg.Wait()
	return nil
}
