package orb

import (
	"errors"
	"fmt"
	"sync"

	"repro/internal/sidl/sreflect"
	"repro/internal/transport"
)

// ORB errors.
var (
	ErrNoObject  = errors.New("orb: no such object")
	ErrRemote    = errors.New("orb: remote exception")
	ErrBadReply  = errors.New("orb: malformed reply")
	ErrOAStopped = errors.New("orb: object adapter stopped")
)

// Servant is an exported object: an implementation bound to its SIDL
// reflection record so the object adapter can dispatch requests by method
// name.
type Servant struct {
	Key string
	Obj *sreflect.Object
}

// ObjectAdapter is the CORBA-style basic object adapter: it owns the
// servant registry and dispatches decoded requests by dynamic invocation.
type ObjectAdapter struct {
	mu       sync.RWMutex
	servants map[string]*Servant
}

// NewObjectAdapter creates an empty adapter.
func NewObjectAdapter() *ObjectAdapter {
	return &ObjectAdapter{servants: map[string]*Servant{}}
}

// Register exports impl under key with the given type metadata.
func (oa *ObjectAdapter) Register(key string, info *sreflect.TypeInfo, impl any) error {
	obj, err := sreflect.NewObject(info, impl)
	if err != nil {
		return err
	}
	oa.mu.Lock()
	oa.servants[key] = &Servant{Key: key, Obj: obj}
	oa.mu.Unlock()
	return nil
}

// Unregister removes an exported object.
func (oa *ObjectAdapter) Unregister(key string) {
	oa.mu.Lock()
	delete(oa.servants, key)
	oa.mu.Unlock()
}

// lookup finds a servant.
func (oa *ObjectAdapter) lookup(key string) (*Servant, error) {
	oa.mu.RLock()
	defer oa.mu.RUnlock()
	s, ok := oa.servants[key]
	if !ok {
		return nil, fmt.Errorf("%w: %q", ErrNoObject, key)
	}
	return s, nil
}

// dispatch decodes a request frame, invokes the servant, and encodes the
// reply frame. Request wire format: bool oneway, key, method, then
// arguments. Reply: bool ok, then results (ok) or message (error); oneway
// requests produce a nil reply (nothing is sent back) — the SIDL `oneway`
// semantics used by loosely coupled monitor ports.
//
// The returned encoder comes from the package pool; the caller must send or
// copy its Bytes and then release it with PutEncoder.
func (oa *ObjectAdapter) dispatch(req []byte) *Encoder {
	d := NewDecoder(req)
	ow, err := d.Decode()
	if err != nil {
		return errReply(err)
	}
	oneway, ok := ow.(bool)
	if !ok {
		return errReply(fmt.Errorf("%w: missing oneway flag", ErrBadReply))
	}
	reply := func(e *Encoder) *Encoder {
		if oneway {
			PutEncoder(e)
			return nil
		}
		return e
	}
	key, err := d.DecodeString()
	if err != nil {
		return reply(errReply(err))
	}
	method, err := d.DecodeString()
	if err != nil {
		return reply(errReply(err))
	}
	var args []any
	for d.More() {
		a, err := d.Decode()
		if err != nil {
			return reply(errReply(err))
		}
		args = append(args, a)
	}
	sv, err := oa.lookup(key)
	if err != nil {
		return reply(errReply(err))
	}
	results, err := sv.Obj.Call(method, args...)
	if err != nil {
		return reply(errReply(err))
	}
	if oneway {
		return nil
	}
	e := GetEncoder()
	e.Encode(true) //nolint:errcheck // bool always encodes
	for _, r := range results {
		if err := e.Encode(r); err != nil {
			e.Reset()
			e.Encode(false) //nolint:errcheck // bool always encodes
			e.EncodeString(err.Error())
			return e
		}
	}
	return e
}

// encodeRequest builds a request frame in a pooled encoder; the caller
// releases it with PutEncoder after the frame is sent.
func encodeRequest(oneway bool, key, method string, args []any) (*Encoder, error) {
	e := GetEncoder()
	e.Encode(oneway) //nolint:errcheck // bool always encodes
	e.EncodeString(key)
	e.EncodeString(method)
	for _, a := range args {
		if err := e.Encode(a); err != nil {
			PutEncoder(e)
			return nil, err
		}
	}
	return e, nil
}

func errReply(err error) *Encoder {
	e := GetEncoder()
	e.Encode(false) //nolint:errcheck // bool always encodes
	e.EncodeString(err.Error())
	return e
}

func decodeReply(rep []byte) ([]any, error) {
	d := NewDecoder(rep)
	okv, err := d.Decode()
	if err != nil {
		return nil, err
	}
	ok, isBool := okv.(bool)
	if !isBool {
		return nil, fmt.Errorf("%w: leading %T", ErrBadReply, okv)
	}
	if !ok {
		msg, err := d.DecodeString()
		if err != nil {
			return nil, err
		}
		return nil, fmt.Errorf("%w: %s", ErrRemote, msg)
	}
	var out []any
	for d.More() {
		v, err := d.Decode()
		if err != nil {
			return nil, err
		}
		out = append(out, v)
	}
	return out, nil
}

// InProcessORB is the §3.3 baseline: requests to co-located objects still
// traverse encode → adapter dispatch → dynamic invocation → encode →
// decode, exactly as if they were remote. Experiment E2 measures this
// against a direct-connected CCA port.
type InProcessORB struct {
	OA *ObjectAdapter
}

// NewInProcessORB creates the baseline ORB.
func NewInProcessORB() *InProcessORB {
	return &InProcessORB{OA: NewObjectAdapter()}
}

// Invoke performs a marshaled same-address-space call.
func (o *InProcessORB) Invoke(key, method string, args ...any) ([]any, error) {
	req, err := encodeRequest(false, key, method, args)
	if err != nil {
		return nil, err
	}
	rep := o.OA.dispatch(req.Bytes())
	PutEncoder(req)
	out, err := decodeReply(rep.Bytes()) // decodeReply copies every value
	PutEncoder(rep)
	return out, err
}

// InvokeOneway performs a marshaled call discarding results and errors.
func (o *InProcessORB) InvokeOneway(key, method string, args ...any) error {
	req, err := encodeRequest(true, key, method, args)
	if err != nil {
		return err
	}
	PutEncoder(o.OA.dispatch(req.Bytes()))
	PutEncoder(req)
	return nil
}

// Proxy is a client-side object reference bound to a key. Its Invoke is the
// "generated stub" of a classic ORB: marshal, submit, unmarshal.
type Proxy struct {
	invoke func(key, method string, args ...any) ([]any, error)
	key    string
}

// Invoke calls the named method on the referenced object.
func (p *Proxy) Invoke(method string, args ...any) ([]any, error) {
	return p.invoke(p.key, method, args...)
}

// Proxy returns a local proxy for an exported object.
func (o *InProcessORB) Proxy(key string) *Proxy {
	return &Proxy{invoke: o.Invoke, key: key}
}

// Server serves object-adapter requests over a transport listener — the
// remote half of the distributed baseline and of distributed CCA port
// connections that choose ORB transport.
type Server struct {
	OA       *ObjectAdapter
	listener transport.Listener
	wg       sync.WaitGroup
	mu       sync.Mutex
	stopped  bool
	conns    map[transport.Conn]struct{}
}

// Serve starts accepting connections on l, dispatching each request frame
// through the adapter. It returns immediately; Stop shuts the server down.
func Serve(oa *ObjectAdapter, l transport.Listener) *Server {
	s := &Server{OA: oa, listener: l, conns: map[transport.Conn]struct{}{}}
	s.wg.Add(1)
	go func() {
		defer s.wg.Done()
		for {
			conn, err := l.Accept()
			if err != nil {
				return
			}
			s.mu.Lock()
			if s.stopped {
				s.mu.Unlock()
				conn.Close()
				return
			}
			s.conns[conn] = struct{}{}
			s.mu.Unlock()
			s.wg.Add(1)
			go func() {
				defer s.wg.Done()
				defer func() {
					conn.Close()
					s.mu.Lock()
					delete(s.conns, conn)
					s.mu.Unlock()
				}()
				for {
					req, err := conn.Recv()
					if err != nil {
						return
					}
					rep := s.OA.dispatch(req)
					if rep == nil {
						continue // oneway: no reply frame
					}
					err = conn.Send(rep.Bytes()) // Send does not retain the frame
					PutEncoder(rep)
					if err != nil {
						return
					}
				}
			}()
		}
	}()
	return s
}

// Addr reports the served address.
func (s *Server) Addr() string { return s.listener.Addr() }

// Stop closes the listener and every live connection, then waits for
// handler goroutines to drain. Clients with outstanding requests observe
// transport.ErrClosed.
func (s *Server) Stop() {
	s.mu.Lock()
	if s.stopped {
		s.mu.Unlock()
		return
	}
	s.stopped = true
	conns := make([]transport.Conn, 0, len(s.conns))
	for c := range s.conns {
		conns = append(conns, c)
	}
	s.mu.Unlock()
	s.listener.Close()
	for _, c := range conns {
		c.Close()
	}
	s.wg.Wait()
}

// Client is a connection to a remote ORB server. Calls are serialized per
// client (one outstanding request at a time), matching a classic
// synchronous ORB stub.
type Client struct {
	mu   sync.Mutex
	conn transport.Conn
}

// DialClient connects to a served address.
func DialClient(tr transport.Transport, addr string) (*Client, error) {
	conn, err := tr.Dial(addr)
	if err != nil {
		return nil, err
	}
	return &Client{conn: conn}, nil
}

// Invoke performs a remote call.
func (c *Client) Invoke(key, method string, args ...any) ([]any, error) {
	req, err := encodeRequest(false, key, method, args)
	if err != nil {
		return nil, err
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	err = c.conn.Send(req.Bytes())
	PutEncoder(req)
	if err != nil {
		return nil, err
	}
	rep, err := c.conn.Recv()
	if err != nil {
		return nil, err
	}
	return decodeReply(rep)
}

// InvokeOneway performs a fire-and-forget remote call: the request is sent
// and no reply is awaited. Delivery is ordered with respect to other calls
// on this client but completion is not confirmed — exactly the paper's
// loosely coupled monitor semantics (cca.ports.Monitor.observe is oneway).
func (c *Client) InvokeOneway(key, method string, args ...any) error {
	req, err := encodeRequest(true, key, method, args)
	if err != nil {
		return err
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	err = c.conn.Send(req.Bytes())
	PutEncoder(req)
	return err
}

// Proxy returns a remote object reference.
func (c *Client) Proxy(key string) *Proxy {
	return &Proxy{invoke: c.Invoke, key: key}
}

// Close releases the connection.
func (c *Client) Close() error { return c.conn.Close() }
