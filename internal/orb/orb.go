package orb

import (
	"errors"
	"fmt"
	"sync"
	"time"

	"repro/internal/obs"
	"repro/internal/sidl/arena"
	"repro/internal/sidl/sreflect"
)

// ORB errors.
var (
	ErrNoObject  = errors.New("orb: no such object")
	ErrRemote    = errors.New("orb: remote exception")
	ErrBadReply  = errors.New("orb: malformed reply")
	ErrOAStopped = errors.New("orb: object adapter stopped")
)

// Servant is an exported object: an implementation bound to its SIDL
// reflection record so the object adapter can dispatch requests by method
// name, or a dynamic handler that interprets requests itself.
type Servant struct {
	Key string
	Obj *sreflect.Object
	Dyn DynamicHandler
}

// DynamicHandler is a CORBA DSI-style servant: it receives the decoded
// method name and arguments and writes its results directly into the reply
// encoder, bypassing SIDL reflection metadata and the boxed-results copy.
// Bulk-transfer protocols (repro/internal/dist/collective) use it to pack
// array payloads straight into the wire buffer.
//
// The handler must not retain args past its return (the slice is pooled).
// reply is nil for oneway requests — there is nothing to answer. On a
// non-nil reply the handler appends results with reply.Encode (or
// Float64SliceSpan for bulk payloads); if it returns a non-nil error the
// partially written results are discarded and an error reply is sent
// instead. Handlers must be safe for concurrent calls.
type DynamicHandler func(method string, args []any, reply *Encoder) error

// ObjectAdapter is the CORBA-style basic object adapter: it owns the
// servant registry and dispatches decoded requests by dynamic invocation.
type ObjectAdapter struct {
	mu       sync.RWMutex
	servants map[string]*Servant
}

// NewObjectAdapter creates an empty adapter.
func NewObjectAdapter() *ObjectAdapter {
	return &ObjectAdapter{servants: map[string]*Servant{}}
}

// Register exports impl under key with the given type metadata.
func (oa *ObjectAdapter) Register(key string, info *sreflect.TypeInfo, impl any) error {
	obj, err := sreflect.NewObject(info, impl)
	if err != nil {
		return err
	}
	oa.mu.Lock()
	oa.servants[key] = &Servant{Key: key, Obj: obj}
	oa.mu.Unlock()
	return nil
}

// RegisterDynamic exports a dynamic servant under key: requests are handed
// to h undecoded-by-type (method name plus boxed CDR arguments) and h
// writes the reply body itself. This is the adapter's hook for reserved
// protocol keys — the distributed collective port registers its
// plan-exchange and chunk servant this way.
func (oa *ObjectAdapter) RegisterDynamic(key string, h DynamicHandler) {
	oa.mu.Lock()
	oa.servants[key] = &Servant{Key: key, Dyn: h}
	oa.mu.Unlock()
}

// Unregister removes an exported object.
func (oa *ObjectAdapter) Unregister(key string) {
	oa.mu.Lock()
	delete(oa.servants, key)
	oa.mu.Unlock()
}

// lookup finds a servant.
func (oa *ObjectAdapter) lookup(key string) (*Servant, error) {
	oa.mu.RLock()
	defer oa.mu.RUnlock()
	s, ok := oa.servants[key]
	if !ok {
		return nil, fmt.Errorf("%w: %q", ErrNoObject, key)
	}
	return s, nil
}

// dispatchBody decodes a request body (the frame after its correlation
// header), invokes the servant, and encodes the reply frame with its
// correlation header reserved but unstamped. Oneway requests produce a nil
// reply (nothing is sent back) — the SIDL `oneway` semantics used by
// loosely coupled monitor ports.
//
// dispatchBody is safe for concurrent use: the adapter state is
// read-locked per lookup, and servant implementations are required to be
// goroutine-safe when served remotely (the server dispatches two-way
// requests concurrently).
//
// The returned encoder comes from the package pool; the caller must stamp
// the correlation ID, send or copy its Bytes, and then release it with
// PutEncoder.
// argsPool recycles decoded-argument slices across dispatches. Safe because
// neither Call's fast paths nor the reflect path retain the slice beyond
// the invocation (result values are always freshly boxed).
var argsPool = sync.Pool{New: func() any { s := make([]any, 0, 8); return &s }}

func putArgs(p *[]any, used []any) {
	clear(used) // drop value references so boxed arguments can be collected
	*p = used[:0]
	argsPool.Put(p)
}

func (oa *ObjectAdapter) dispatchBody(body []byte, oneway bool, trace uint64, recvMono int64) *Encoder {
	metered := obs.MetricsEnabled()
	if trace == 0 && !metered {
		e, _, _, _ := oa.dispatch(body, oneway)
		return e
	}
	if trace != 0 {
		return oa.dispatchTraced(body, oneway, trace, metered, recvMono)
	}
	// Metered, untraced: rates and errors are exact on every dispatch;
	// durations are a uniform 1-in-8 sample (redSampleMask) so the two
	// monotonic clock reads stay off the common path. The decision is
	// drawn before dispatch decodes the method name, hence the shared
	// serverDurTick rather than the per-method one.
	var t0 int64
	sampled := serverDurTick.Add(1)&redSampleMask == 0
	if sampled {
		t0 = obs.Mono()
	}
	e, _, method, err := oa.dispatch(body, oneway)
	if method == "" {
		// The body died before its method name decoded; there is no
		// method to file RED numbers under.
		cDispatchBadBody.Inc()
		return e
	}
	red := serverRED(method)
	red.calls.Inc()
	if sampled {
		red.dur.Observe(durNS(obs.Mono() - t0))
	}
	if err != nil {
		red.errs[Classify(err)].Inc()
	}
	return e
}

// dispatchTraced is the traced dispatch path: the span timestamp comes
// from two monotonic reads anchored to the wall clock (obs.MonoToWall),
// and recvMono — the read loop's arrival clock, 0 for in-process calls —
// becomes the span's Queue (the time the frame waited for a dispatch
// slot). RED durations stay 1-in-8 sampled here too; the span already
// carries this call's exact duration.
func (oa *ObjectAdapter) dispatchTraced(body []byte, oneway bool, trace uint64, metered bool, recvMono int64) *Encoder {
	t0 := obs.Mono()
	e, key, method, err := oa.dispatch(body, oneway)
	dur := time.Duration(durNS(obs.Mono() - t0))
	if metered {
		if method == "" {
			cDispatchBadBody.Inc()
		} else {
			red := serverRED(method)
			red.calls.Inc()
			if red.sampleDur() {
				red.dur.Observe(uint64(dur))
			}
			if err != nil {
				red.errs[Classify(err)].Inc()
			}
		}
	}
	span := obs.Span{Trace: trace, Kind: obs.SpanDispatch, Key: key, Method: method,
		Start: obs.MonoToWall(t0), Dur: dur}
	if recvMono != 0 {
		span.Queue = time.Duration(durNS(t0 - recvMono))
	}
	if err != nil {
		span.Err = err.Error()
	}
	obs.Tracer.Record(span)
	return e
}

// arenaPool recycles per-dispatch decode arenas. One arena serves one
// dispatch: acquired before argument decode, reset and returned only
// after the reply body is fully encoded, because decoded arguments (and
// any results aliasing them, e.g. an echo) live in its slabs.
var arenaPool = sync.Pool{New: func() any { return new(arena.Arena) }}

// dispatch is the uninstrumented decode → invoke → encode path. It also
// reports the decoded key/method and the failure (if any) that went into
// the reply, for dispatchBody's RED metrics and dispatch span.
//
// Arguments decode through a pooled arena, and monomorphic servant
// signatures deliver results straight into the reply encoder via
// sreflect.CallSink — together with the pooled encoders, frames, and
// argument slices this makes the steady-state dispatch allocation-free.
// The arena is what makes the long-documented servant contract
// load-bearing: args (and their backing arrays and string bytes) are
// recycled after the call, so servants must not retain them.
func (oa *ObjectAdapter) dispatch(body []byte, oneway bool) (_ *Encoder, key, method string, _ error) {
	d := NewDecoder(body)
	ar := arenaPool.Get().(*arena.Arena)
	d.SetArena(ar)
	defer func() {
		ar.Reset()
		arenaPool.Put(ar)
	}()
	reply := func(e *Encoder) *Encoder {
		if oneway {
			PutEncoder(e)
			return nil
		}
		return e
	}
	key, err := d.decodeStringInterned()
	if err != nil {
		return reply(errReply(err)), key, "", err
	}
	method, err = d.decodeStringInterned()
	if err != nil {
		return reply(errReply(err)), key, "", err
	}
	argsp := argsPool.Get().(*[]any)
	args := (*argsp)[:0]
	for d.More() {
		a, err := d.Decode()
		if err != nil {
			putArgs(argsp, args)
			return reply(errReply(err)), key, method, err
		}
		args = append(args, a)
	}
	sv, err := oa.lookup(key)
	if err != nil {
		putArgs(argsp, args)
		return reply(errReply(err)), key, method, err
	}
	if sv.Dyn != nil {
		if oneway {
			err := sv.Dyn(method, args, nil)
			putArgs(argsp, args)
			return nil, key, method, err
		}
		e := newReply()
		e.Encode(true) //nolint:errcheck // bool always encodes
		err := sv.Dyn(method, args, e)
		putArgs(argsp, args)
		if err != nil {
			PutEncoder(e)
			return errReply(err), key, method, err
		}
		return e, key, method, nil
	}
	if !oneway {
		// Fast path: marshal results as the servant produces them.
		e := newReply()
		e.Encode(true) //nolint:errcheck // bool always encodes
		if handled, err := sv.Obj.CallSink(method, args, e); handled {
			putArgs(argsp, args)
			if err != nil {
				PutEncoder(e)
				return errReply(err), key, method, err
			}
			return e, key, method, nil
		}
		PutEncoder(e)
	}
	results, err := sv.Obj.Call(method, args...)
	putArgs(argsp, args) // callees do not retain the argument slice
	if err != nil {
		return reply(errReply(err)), key, method, err
	}
	if oneway {
		return nil, key, method, nil
	}
	e := newReply()
	e.Encode(true) //nolint:errcheck // bool always encodes
	for _, r := range results {
		if err := e.Encode(r); err != nil {
			e.Reset()
			h := e.grow(frameHeader)
			for i := range h {
				h[i] = 0
			}
			e.Encode(false) //nolint:errcheck // bool always encodes
			e.EncodeString(err.Error())
			return e, key, method, err
		}
	}
	return e, key, method, nil
}

// InProcessORB is the §3.3 baseline: requests to co-located objects still
// traverse encode → adapter dispatch → dynamic invocation → encode →
// decode, exactly as if they were remote. Experiment E2 measures this
// against a direct-connected CCA port.
type InProcessORB struct {
	OA *ObjectAdapter
}

// NewInProcessORB creates the baseline ORB.
func NewInProcessORB() *InProcessORB {
	return &InProcessORB{OA: NewObjectAdapter()}
}

// Invoke performs a marshaled same-address-space call.
func (o *InProcessORB) Invoke(key, method string, args ...any) ([]any, error) {
	req, err := encodeRequest(onewayID, 0, key, method, args)
	if err != nil {
		return nil, err
	}
	rep := o.OA.dispatchBody(req.Bytes()[frameHeader:], false, 0, 0)
	PutEncoder(req)
	out, err := decodeReply(rep.Bytes()[frameHeader:]) // decodeReply copies every value
	PutEncoder(rep)
	return out, err
}

// InvokeOneway performs a marshaled call discarding results and errors.
func (o *InProcessORB) InvokeOneway(key, method string, args ...any) error {
	req, err := encodeRequest(onewayID, 0, key, method, args)
	if err != nil {
		return err
	}
	PutEncoder(o.OA.dispatchBody(req.Bytes()[frameHeader:], true, 0, 0))
	PutEncoder(req)
	return nil
}

// Proxy is a client-side object reference bound to a key. Its Invoke is the
// "generated stub" of a classic ORB: marshal, submit, unmarshal.
type Proxy struct {
	invoke func(key, method string, args ...any) ([]any, error)
	key    string
}

// Invoke calls the named method on the referenced object.
func (p *Proxy) Invoke(method string, args ...any) ([]any, error) {
	return p.invoke(p.key, method, args...)
}

// Proxy returns a local proxy for an exported object.
func (o *InProcessORB) Proxy(key string) *Proxy {
	return &Proxy{invoke: o.Invoke, key: key}
}
