package orb

import (
	"context"
	"errors"
	"fmt"
	"io"
	"net"
	"strings"

	"repro/internal/transport"
)

// Class partitions remote-call failures by what the caller can do about
// them — the error taxonomy the supervised client reports and acts on.
type Class int

const (
	// ClassRetryable marks connection-level failures (peer died, socket
	// reset, circuit open): the call may succeed after a reconnect, and the
	// supervisor transparently retries idempotent-marked methods.
	ClassRetryable Class = iota
	// ClassTimeout marks calls abandoned because the caller's context
	// expired. The server may still have executed the request.
	ClassTimeout
	// ClassFatal marks application- or protocol-level failures (remote
	// exception, unknown object, malformed frame): retrying the identical
	// call cannot help.
	ClassFatal
)

func (c Class) String() string {
	switch c {
	case ClassRetryable:
		return "retryable"
	case ClassTimeout:
		return "timeout"
	case ClassFatal:
		return "fatal"
	default:
		return fmt.Sprintf("class(%d)", int(c))
	}
}

// ErrCircuitOpen is reported (wrapped in a CallError) when the supervised
// client's circuit breaker is open: the peer has been down long enough that
// calls are shed immediately instead of waiting out another dial.
var ErrCircuitOpen = errors.New("orb: circuit breaker open")

// ErrOverloaded is the typed load-shed reply: an admission-controlled
// server (ServeWith with a MaxInflight or MaxPerKey bound, or one
// draining toward Close) refused the request before dispatching it. The
// request was never executed, so retrying is safe for any method —
// idempotent or not — and the supervised client backs off and retries on
// the same healthy connection instead of tearing it down.
var ErrOverloaded = errors.New("orb: server overloaded")

// overloadedMsg is the wire prefix of every shed reply. Shed errors cross
// the wire as remote-exception strings, so the client re-types them by
// prefix — same mechanism as the collective layer's stale-plan sentinels.
const overloadedMsg = "orb: server overloaded"

// IsOverloaded reports whether err is a server load-shed reply, either
// the typed local error or its remote-exception form.
func IsOverloaded(err error) bool {
	if err == nil {
		return false
	}
	return errors.Is(err, ErrOverloaded) || strings.Contains(err.Error(), overloadedMsg)
}

// CallError is the typed error a supervised call fails with: the
// underlying cause plus its classification. It unwraps to the cause, so
// errors.Is against transport.ErrClosed, ErrRemote, context.DeadlineExceeded
// etc. keeps working through it.
type CallError struct {
	Class Class
	Err   error
}

func (e *CallError) Error() string { return fmt.Sprintf("orb: %s call error: %v", e.Class, e.Err) }
func (e *CallError) Unwrap() error { return e.Err }

// Classify maps an error from the remote path to its Class. CallErrors
// report their recorded class; connection-level transport errors are
// Retryable; context expiry is Timeout; everything else (remote exceptions,
// protocol violations, marshaling failures) is Fatal.
func Classify(err error) Class {
	var ce *CallError
	if errors.As(err, &ce) {
		return ce.Class
	}
	switch {
	case errors.Is(err, context.DeadlineExceeded), errors.Is(err, context.Canceled):
		return ClassTimeout
	case errors.Is(err, transport.ErrClosed),
		errors.Is(err, transport.ErrNoListener),
		errors.Is(err, ErrCircuitOpen),
		errors.Is(err, io.EOF),
		errors.Is(err, io.ErrUnexpectedEOF),
		errors.Is(err, net.ErrClosed):
		return ClassRetryable
	}
	if IsOverloaded(err) {
		// Shed before execution: retryable even though it arrives dressed
		// as a remote exception (normally fatal).
		return ClassRetryable
	}
	var ne net.Error // dial refused/reset/timeout arrive as *net.OpError
	if errors.As(err, &ne) {
		return ClassRetryable
	}
	return ClassFatal
}

// classed wraps err as a CallError of the given class (idempotent: an
// existing CallError passes through unchanged).
func classed(class Class, err error) error {
	var ce *CallError
	if errors.As(err, &ce) {
		return err
	}
	return &CallError{Class: class, Err: err}
}
