package orb

import (
	"encoding/binary"
	"fmt"
)

// Wire format (v2, multiplexed + traced). Every frame on a remote ORB
// connection is
//
//	[8-byte little-endian correlation ID] [8-byte little-endian trace ID] [CDR body]
//
// Request bodies are: key, method, args... . A correlation ID of 0 marks a
// oneway request — no reply frame is ever produced for it; nonzero IDs are
// client-assigned and unique among that client's in-flight calls. Reply
// frames echo the request's correlation ID; their body is: bool ok, then
// results (ok) or a message string (!ok).
//
// The trace ID is observability metadata: 0 means untraced; a nonzero ID
// is drawn by a client whose tracing is enabled (obs.ActiveTraceID),
// recorded into every span the call produces on either end, and echoed
// into the reply — so client-call, server-recv, and dispatch spans of one
// remote port call share an ID and can be joined across processes. The
// ORB never branches on the trace ID beyond "is it zero"; a server
// without tracing enabled just carries it.
//
// Because replies carry the ID they answer, one connection can carry any
// number of concurrent in-flight requests and replies may arrive in any
// order — the client demultiplexes by ID (see Client), and the server
// dispatches two-way requests concurrently (see Serve). Oneway requests
// are the exception: the server runs them inline in the connection's read
// loop, preserving their ordering relative to later requests on the same
// connection (the paper's loosely coupled monitor semantics).

// frameHeader is the byte length of the frame prefix: correlation ID then
// trace ID.
const frameHeader = 16

// traceOffset is where the trace ID sits inside the header.
const traceOffset = 8

// onewayID is the reserved correlation ID for fire-and-forget requests.
const onewayID = 0

// splitFrame separates the correlation ID, trace ID, and CDR body. ok is
// false when the frame is too short to carry a header — a protocol
// violation.
func splitFrame(frame []byte) (id, trace uint64, body []byte, ok bool) {
	if len(frame) < frameHeader {
		return 0, 0, nil, false
	}
	return binary.LittleEndian.Uint64(frame),
		binary.LittleEndian.Uint64(frame[traceOffset:]),
		frame[frameHeader:], true
}

// encodeRequest builds a request frame (correlation + trace header, then
// body) in a pooled encoder; the caller releases it with PutEncoder after
// the frame is sent.
func encodeRequest(id, trace uint64, key, method string, args []any) (*Encoder, error) {
	e := GetEncoder()
	h := e.grow(frameHeader)
	binary.LittleEndian.PutUint64(h, id)
	binary.LittleEndian.PutUint64(h[traceOffset:], trace)
	e.EncodeString(key)
	e.EncodeString(method)
	for _, a := range args {
		if err := e.Encode(a); err != nil {
			PutEncoder(e)
			return nil, err
		}
	}
	return e, nil
}

// newReply returns a pooled encoder with the frame header reserved and
// zeroed; stampReply fills it in once the request's IDs are known.
func newReply() *Encoder {
	e := GetEncoder()
	h := e.grow(frameHeader)
	for i := range h {
		h[i] = 0 // grow reuses pooled storage; the hole must be cleared
	}
	return e
}

// stampReply writes the correlation and trace IDs into a reply frame built
// by newReply.
func stampReply(e *Encoder, id, trace uint64) {
	b := e.Bytes()
	binary.LittleEndian.PutUint64(b, id)
	binary.LittleEndian.PutUint64(b[traceOffset:], trace)
}

// errReply builds an error reply frame (header still unstamped).
func errReply(err error) *Encoder {
	e := newReply()
	e.Encode(false) //nolint:errcheck // bool always encodes
	e.EncodeString(err.Error())
	return e
}

// replyResults validates a reply body's leading ok bool and returns the
// undecoded results portion, aliasing rep. A !ok reply decodes its message
// string and surfaces it as ErrRemote, exactly like decodeReply.
func replyResults(rep []byte) ([]byte, error) {
	d := NewDecoder(rep)
	okv, err := d.Decode()
	if err != nil {
		return nil, err
	}
	ok, isBool := okv.(bool)
	if !isBool {
		return nil, fmt.Errorf("%w: leading %T", ErrBadReply, okv)
	}
	if !ok {
		msg, err := d.DecodeString()
		if err != nil {
			return nil, err
		}
		return nil, fmt.Errorf("%w: %s", ErrRemote, msg)
	}
	return rep[d.off:], nil
}

// decodeReply unmarshals a reply body (the frame after its header). Every
// returned value is copied out of rep: the caller may release the backing
// frame immediately after.
func decodeReply(rep []byte) ([]any, error) {
	d := NewDecoder(rep)
	okv, err := d.Decode()
	if err != nil {
		return nil, err
	}
	ok, isBool := okv.(bool)
	if !isBool {
		return nil, fmt.Errorf("%w: leading %T", ErrBadReply, okv)
	}
	if !ok {
		msg, err := d.DecodeString()
		if err != nil {
			return nil, err
		}
		return nil, fmt.Errorf("%w: %s", ErrRemote, msg)
	}
	out := make([]any, 0, 4) // replies are short: one append, no regrow
	for d.More() {
		v, err := d.Decode()
		if err != nil {
			return nil, err
		}
		out = append(out, v)
	}
	return out, nil
}
