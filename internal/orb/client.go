package orb

import (
	"context"
	"fmt"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/obs"
	"repro/internal/sidl/arena"
	"repro/internal/transport"
)

// Client is a multiplexed connection to a remote ORB server. Any number of
// goroutines may Invoke concurrently: each call is assigned a correlation
// ID and a completion channel, the request frames share the connection
// (pipelined — concurrent calls cost one round trip together, not one
// each), and a single demux goroutine routes reply frames to their waiting
// callers by ID. On connection loss every pending and future call fails
// with the transport error.
type Client struct {
	conn   transport.Conn
	nextID atomic.Uint64

	mu    sync.Mutex
	calls map[uint64]chan muxReply
	err   error         // sticky: set once the demux loop exits
	done  chan struct{} // closed by fail(); see Done
}

// muxReply is one demultiplexed completion: a reply frame (still carrying
// its correlation header) or a connection-level error.
type muxReply struct {
	frame []byte
	err   error
}

// replyChanPool recycles completion channels across calls. A channel is
// only returned to the pool by a caller that knows no send can still be
// pending on it: after receiving its completion, or after forgetting the
// call before the demux loop claimed it.
var replyChanPool = sync.Pool{New: func() any { return make(chan muxReply, 1) }}

// DialClient connects to a served address and starts the reply
// demultiplexer.
func DialClient(tr transport.Transport, addr string) (*Client, error) {
	conn, err := tr.Dial(addr)
	if err != nil {
		return nil, err
	}
	c := &Client{conn: conn, calls: map[uint64]chan muxReply{}, done: make(chan struct{})}
	go c.demux()
	return c, nil
}

// Done is closed when the connection has died (the demux loop exited) and
// every pending and future call fails. Supervisors select on it to redial
// proactively instead of waiting for the next call to fail.
func (c *Client) Done() <-chan struct{} { return c.done }

// Err reports the sticky connection error, or nil while the client is live.
func (c *Client) Err() error {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.err
}

// demux routes reply frames to per-call completion channels until the
// connection dies, then fails everything still pending.
func (c *Client) demux() {
	for {
		frame, err := c.conn.Recv()
		if err != nil {
			c.fail(err)
			return
		}
		id, _, _, ok := splitFrame(frame)
		if !ok || id == onewayID {
			transport.ReleaseFrame(frame)
			c.conn.Close()
			c.fail(fmt.Errorf("%w: reply frame without correlation ID", ErrBadReply))
			return
		}
		c.mu.Lock()
		ch := c.calls[id]
		delete(c.calls, id)
		c.mu.Unlock()
		if ch == nil {
			// Cancelled or timed-out call: the late reply is discarded.
			transport.ReleaseFrame(frame)
			continue
		}
		ch <- muxReply{frame: frame} // buffered, never blocks
	}
}

// fail records the terminal error and completes every pending call with it.
func (c *Client) fail(err error) {
	c.mu.Lock()
	if c.err == nil {
		c.err = err
		close(c.done)
	}
	for id, ch := range c.calls {
		delete(c.calls, id)
		ch <- muxReply{err: c.err}
	}
	c.mu.Unlock()
}

// forget abandons a pending call; it reports false when the demux loop
// already claimed the call (a completion has been or is being delivered).
func (c *Client) forget(id uint64) bool {
	c.mu.Lock()
	_, ok := c.calls[id]
	delete(c.calls, id)
	c.mu.Unlock()
	return ok
}

// Invoke performs a remote call. Concurrent Invokes on one client share the
// connection and complete independently, in any order.
func (c *Client) Invoke(key, method string, args ...any) ([]any, error) {
	return c.InvokeContext(context.Background(), key, method, args...)
}

// InvokeContext performs a remote call honoring ctx for timeout and
// cancellation. A cancelled call is abandoned client-side only: the server
// still executes it, and the demux loop discards the late reply frame.
//
// InvokeContext is also the client's instrumentation point: with metrics
// enabled it maintains per-method RED instruments and the in-flight gauge
// (durations are a uniform 1-in-8 sample; see redSampleMask), and with
// tracing enabled it draws a trace ID, stamps it into the request frame,
// and records the round trip as a client-call span. With both off the
// overhead is two atomic loads.
func (c *Client) InvokeContext(ctx context.Context, key, method string, args ...any) ([]any, error) {
	trace := obs.ActiveTraceID()
	metered := obs.MetricsEnabled()
	if trace == 0 && !metered {
		return c.invoke(ctx, 0, key, method, args)
	}
	if trace != 0 {
		return c.invokeTraced(ctx, trace, metered, key, method, args)
	}
	red := clientRED(method)
	red.calls.Inc()
	gClientInflight.Add(1)
	var t0 int64
	sampled := red.sampleDur()
	if sampled {
		t0 = obs.Mono()
	}
	out, err := c.invoke(ctx, 0, key, method, args)
	if sampled {
		red.dur.Observe(durNS(obs.Mono() - t0))
	}
	gClientInflight.Add(-1)
	if err != nil {
		red.errs[Classify(err)].Inc()
	}
	return out, err
}

// invokeTraced is the traced round trip. Span timestamps come from two
// monotonic reads anchored to the wall clock (obs.MonoToWall). RED
// durations stay 1-in-8 sampled here too — the span already carries this
// call's exact duration.
func (c *Client) invokeTraced(ctx context.Context, trace uint64, metered bool, key, method string, args []any) ([]any, error) {
	t0 := obs.Mono()
	var red *methodRED
	if metered {
		red = clientRED(method)
		red.calls.Inc()
		gClientInflight.Add(1)
	}
	out, err := c.invoke(ctx, trace, key, method, args)
	dur := time.Duration(durNS(obs.Mono() - t0))
	if red != nil {
		gClientInflight.Add(-1)
		if red.sampleDur() {
			red.dur.Observe(uint64(dur))
		}
		if err != nil {
			red.errs[Classify(err)].Inc()
		}
	}
	span := obs.Span{Trace: trace, Kind: obs.SpanClientCall, Key: key, Method: method,
		Start: obs.MonoToWall(t0), Dur: dur}
	if err != nil {
		span.Err = err.Error()
	}
	obs.Tracer.Record(span)
	return out, err
}

// invoke is the uninstrumented call path; trace is stamped into the frame
// header (0 = untraced).
func (c *Client) invoke(ctx context.Context, trace uint64, key, method string, args []any) ([]any, error) {
	frame, err := c.callFrame(ctx, trace, key, method, args)
	if err != nil {
		return nil, err
	}
	out, derr := decodeReply(frame[frameHeader:])
	transport.ReleaseFrame(frame) // decodeReply copied every value
	return out, derr
}

// callFrame performs one round trip and returns the raw reply frame, header
// still attached; the caller must release it with transport.ReleaseFrame.
func (c *Client) callFrame(ctx context.Context, trace uint64, key, method string, args []any) ([]byte, error) {
	id := c.nextID.Add(1)
	req, err := encodeRequest(id, trace, key, method, args)
	if err != nil {
		return nil, err
	}
	ch := replyChanPool.Get().(chan muxReply)
	c.mu.Lock()
	if c.err != nil {
		err := c.err
		c.mu.Unlock()
		PutEncoder(req)
		return nil, err
	}
	c.calls[id] = ch
	c.mu.Unlock()
	err = c.conn.Send(req.Bytes())
	PutEncoder(req)
	if err != nil {
		if !c.forget(id) {
			// The demux claimed the call despite the failed send (e.g. the
			// sticky write error raced a delivered reply); drain it.
			if r := <-ch; r.frame != nil {
				transport.ReleaseFrame(r.frame)
			}
		}
		replyChanPool.Put(ch)
		return nil, err
	}
	if ctx.Done() == nil {
		// Uncancellable context (the Invoke path): a plain receive skips
		// the two-case select machinery.
		r := <-ch
		replyChanPool.Put(ch)
		return r.frame, r.err
	}
	select {
	case r := <-ch:
		replyChanPool.Put(ch)
		return r.frame, r.err
	case <-ctx.Done():
		if !c.forget(id) {
			// The completion raced the cancellation and is guaranteed to
			// arrive; drain it so the frame returns to the pool.
			if r := <-ch; r.frame != nil {
				transport.ReleaseFrame(r.frame)
			}
		}
		replyChanPool.Put(ch)
		return nil, ctx.Err()
	}
}

// InvokeOneway performs a fire-and-forget remote call: the request is sent
// with the reserved oneway correlation ID and no reply is ever produced.
// Delivery is ordered with respect to other calls issued from the same
// goroutine (the server dispatches oneways inline in arrival order), but
// completion is not confirmed — exactly the paper's loosely coupled
// monitor semantics (cca.ports.Monitor.observe is oneway).
func (c *Client) InvokeOneway(key, method string, args ...any) error {
	trace := obs.ActiveTraceID()
	var t0 int64
	if trace != 0 {
		t0 = obs.Mono()
	}
	cClientOneways.Inc()
	req, err := encodeRequest(onewayID, trace, key, method, args)
	if err != nil {
		return err
	}
	c.mu.Lock()
	err = c.err
	c.mu.Unlock()
	if err != nil {
		PutEncoder(req)
		return err
	}
	err = c.conn.Send(req.Bytes())
	PutEncoder(req)
	if trace != 0 {
		span := obs.Span{Trace: trace, Kind: obs.SpanOneway, Key: key, Method: method,
			Start: obs.MonoToWall(t0), Dur: time.Duration(durNS(obs.Mono() - t0))}
		if err != nil {
			span.Err = err.Error()
		}
		obs.Tracer.Record(span)
	}
	return err
}

// InvokeArena is the zero-allocation call path: results decode into the
// caller-supplied arena and append to out (pass a reused buffer,
// truncated to [:0]). Everything returned — the slice headers, strings,
// and interface boxes in out — lives in arena storage and is valid only
// until ar.Reset(); the caller owns the reset cadence, typically once per
// iteration of its own loop. args is taken as a plain slice, not
// variadic, so a caller can preassemble and reuse it: at steady state the
// whole round trip (encode, send, receive, decode) allocates nothing.
//
// The path is deliberately uninstrumented (no RED sample, no span): it
// exists for measured hot loops, and E12 measures it.
func (c *Client) InvokeArena(ar *arena.Arena, out []any, key, method string, args []any) ([]any, error) {
	frame, err := c.callFrame(context.Background(), 0, key, method, args)
	if err != nil {
		return out, err
	}
	d := NewDecoder(frame[frameHeader:])
	d.SetArena(ar)
	okv, err := d.Decode()
	if err == nil {
		if ok, isBool := okv.(bool); !isBool {
			err = fmt.Errorf("%w: leading %T", ErrBadReply, okv)
		} else if !ok {
			var msg string
			if msg, err = d.DecodeString(); err == nil {
				err = fmt.Errorf("%w: %s", ErrRemote, msg)
			}
		}
	}
	for err == nil && d.More() {
		var v any
		if v, err = d.Decode(); err == nil {
			out = append(out, v)
		}
	}
	transport.ReleaseFrame(frame) // arena decode copied every value
	return out, err
}

// RawReply is a successful reply left undecoded: Results is the
// CDR-encoded results portion of the reply body, aliasing a pooled
// transport frame. The caller parses it with NewDecoder (RawFloat64s for
// bulk array payloads reads without copying) and must call Release when
// done; Results is invalid afterwards.
type RawReply struct {
	frame   []byte
	Results []byte
}

// Release returns the backing frame to the transport pool.
func (r RawReply) Release() {
	if r.frame != nil {
		transport.ReleaseFrame(r.frame)
	}
}

// InvokeRaw is InvokeRawContext with a background context.
func (c *Client) InvokeRaw(key, method string, args ...any) (RawReply, error) {
	return c.InvokeRawContext(context.Background(), key, method, args...)
}

// InvokeRawContext performs a remote call but hands back the reply's
// results undecoded — the bulk-transfer path: a chunk of a distributed
// array crosses from the reply frame to its destination storage in one
// copy (Decoder.RawFloat64s + caller's scatter) instead of two. Remote
// exceptions still surface as ErrRemote.
//
// RED metrics are maintained as for InvokeContext; an active trace ID is
// stamped into the request (so the server's dispatch span joins the trace)
// but no client-call span is recorded — bulk streams would flood the span
// ring.
func (c *Client) InvokeRawContext(ctx context.Context, key, method string, args ...any) (RawReply, error) {
	var red *methodRED
	var t0 int64
	sampled := false
	if obs.MetricsEnabled() {
		red = clientRED(method)
		red.calls.Inc()
		gClientInflight.Add(1)
		if sampled = red.sampleDur(); sampled {
			t0 = obs.Mono()
		}
	}
	var rr RawReply
	frame, err := c.callFrame(ctx, obs.ActiveTraceID(), key, method, args)
	if err == nil {
		results, rerr := replyResults(frame[frameHeader:])
		if rerr != nil {
			transport.ReleaseFrame(frame)
			err = rerr
		} else {
			rr = RawReply{frame: frame, Results: results}
		}
	}
	if red != nil {
		if sampled {
			red.dur.Observe(durNS(obs.Mono() - t0))
		}
		gClientInflight.Add(-1)
		if err != nil {
			red.errs[Classify(err)].Inc()
		}
	}
	return rr, err
}

// Proxy returns a remote object reference.
func (c *Client) Proxy(key string) *Proxy {
	return &Proxy{invoke: c.Invoke, key: key}
}

// Close releases the connection; pending calls fail with
// transport.ErrClosed.
func (c *Client) Close() error {
	return c.conn.Close()
}
