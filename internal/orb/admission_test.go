package orb

// Tests for the serving-tier hardening: graceful drain on Close, typed
// retryable overload shedding (queue-depth and per-key), the supervised
// client's backoff-without-redial on overload, and the sharded listener
// group with its rendezvous dial.

import (
	"errors"
	"strings"
	"sync"
	"testing"
	"time"

	"repro/internal/obs"
	"repro/internal/transport"
)

// gateServer serves a dynamic servant "gate" with a blockable method:
// wait() parks on release after signalling entered, ping() answers
// immediately, nap() sleeps 2ms. Other keys can be added via oa.
func gateServer(t *testing.T, opts ServeOptions) (srv *Server, entered chan struct{}, release chan struct{}) {
	t.Helper()
	oa := NewObjectAdapter()
	entered = make(chan struct{}, 64)
	release = make(chan struct{})
	handler := func(method string, args []any, reply *Encoder) error {
		switch method {
		case "wait":
			entered <- struct{}{}
			<-release
			reply.Encode(int32(1)) //nolint:errcheck
			return nil
		case "ping":
			reply.Encode(int32(0)) //nolint:errcheck
			return nil
		case "nap":
			time.Sleep(2 * time.Millisecond)
			reply.Encode(int32(2)) //nolint:errcheck
			return nil
		}
		return errors.New("no such method: " + method)
	}
	oa.RegisterDynamic("gate", handler)
	oa.RegisterDynamic("gate2", handler)
	l, err := transport.TCP{}.Listen("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	return ServeWith(oa, l, opts), entered, release
}

// TestGracefulCloseDrains is the drain regression test: a call in flight
// when Close begins must complete with its real reply (not ErrClosed),
// while requests arriving during the drain are shed with the typed
// retryable overload error.
func TestGracefulCloseDrains(t *testing.T) {
	srv, entered, release := gateServer(t, ServeOptions{DrainTimeout: 5 * time.Second})
	c, err := DialClient(transport.TCP{}, srv.Addr())
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()

	type result struct {
		res []any
		err error
	}
	inflight := make(chan result, 1)
	go func() {
		res, err := c.Invoke("gate", "wait")
		inflight <- result{res, err}
	}()
	<-entered // the call is inside the handler

	closed := make(chan struct{})
	go func() {
		srv.Close()
		close(closed)
	}()

	// Once the drain has begun, new requests on the live connection must
	// be refused with the typed overload error rather than executed or
	// torn off.
	deadline := time.Now().Add(3 * time.Second)
	for {
		if time.Now().After(deadline) {
			t.Fatal("drain never started shedding")
		}
		_, err := c.Invoke("gate", "ping")
		if err == nil {
			time.Sleep(time.Millisecond)
			continue
		}
		if !IsOverloaded(err) {
			t.Fatalf("drain-time request failed with %v, want overload shed", err)
		}
		if Classify(err) != ClassRetryable {
			t.Fatalf("Classify(drain shed) = %v, want retryable", Classify(err))
		}
		break
	}

	close(release)
	r := <-inflight
	if r.err != nil {
		t.Fatalf("in-flight call during graceful Close: %v", r.err)
	}
	if r.res[0].(int32) != 1 {
		t.Fatalf("in-flight reply = %v", r.res)
	}
	select {
	case <-closed:
	case <-time.After(5 * time.Second):
		t.Fatal("Close did not return after drain")
	}
}

// TestOverloadShedTyped saturates a MaxInflight=1 server and checks the
// excess is refused before execution with errors that are ErrOverloaded
// and classified retryable.
func TestOverloadShedTyped(t *testing.T) {
	srv, entered, release := gateServer(t, ServeOptions{MaxInflight: 1})
	defer srv.Stop()

	c0, err := DialClient(transport.TCP{}, srv.Addr())
	if err != nil {
		t.Fatal(err)
	}
	defer c0.Close()
	hold := make(chan error, 1)
	go func() {
		_, err := c0.Invoke("gate", "wait")
		hold <- err
	}()
	<-entered // inflight pinned at 1

	const n = 6
	errs := make(chan error, n)
	var wg sync.WaitGroup
	for i := 0; i < n; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			c, err := DialClient(transport.TCP{}, srv.Addr())
			if err != nil {
				errs <- err
				return
			}
			defer c.Close()
			_, err = c.Invoke("gate", "ping")
			errs <- err
		}()
	}
	wg.Wait()
	close(errs)
	shed := 0
	for err := range errs {
		if err == nil {
			t.Fatal("request admitted past MaxInflight=1 while a call was in flight")
		}
		if !IsOverloaded(err) {
			t.Fatalf("shed error = %v, want ErrOverloaded", err)
		}
		if Classify(err) != ClassRetryable {
			t.Fatalf("Classify(shed) = %v, want retryable", Classify(err))
		}
		if !errors.Is(err, ErrRemote) && !strings.Contains(err.Error(), overloadedMsg) {
			t.Fatalf("shed error lost its typed message: %v", err)
		}
		shed++
	}
	if shed != n {
		t.Fatalf("shed %d of %d", shed, n)
	}
	close(release)
	if err := <-hold; err != nil {
		t.Fatalf("held call: %v", err)
	}
}

// TestSupervisedBacksOffOnOverload drives concurrent supervised clients
// into a MaxInflight=1 server: every call must eventually succeed through
// retry, the overload-backoff counter must grow, and the redial counter
// must not — shedding is a payload-level refusal, not a connection fault,
// so the supervisor keeps its connection.
func TestSupervisedBacksOffOnOverload(t *testing.T) {
	srv, _, _ := gateServer(t, ServeOptions{MaxInflight: 1})
	defer srv.Stop()

	opts, _ := fastOpts()
	opts.MaxAttempts = 12
	opts.RetryCap = 10 * time.Millisecond
	const clients = 3
	sups := make([]*Supervised, clients)
	for i := range sups {
		s, err := DialSupervised(transport.TCP{}, srv.Addr(), opts)
		if err != nil {
			t.Fatal(err)
		}
		defer s.Close()
		sups[i] = s
	}

	before := obs.Default.Snapshot().Counters
	var wg sync.WaitGroup
	errs := make(chan error, clients)
	for _, s := range sups {
		wg.Add(1)
		go func(s *Supervised) {
			defer wg.Done()
			deadline := time.Now().Add(10 * time.Second)
			for done := 0; done < 5; {
				if time.Now().After(deadline) {
					errs <- errors.New("timed out retrying through overload")
					return
				}
				_, err := s.Invoke("gate", "nap")
				if err == nil {
					done++
					continue
				}
				if !IsOverloaded(err) {
					errs <- err
					return
				}
			}
		}(s)
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Fatal(err)
	}
	after := obs.Default.Snapshot().Counters
	if got := after["orb.supervised.overload_backoffs"] - before["orb.supervised.overload_backoffs"]; got == 0 {
		t.Fatal("overload_backoffs counter did not grow under contention")
	}
	if got := after["orb.supervised.redials"] - before["orb.supervised.redials"]; got != 0 {
		t.Fatalf("supervisor redialed %d times on overload; shed must not drop the connection", got)
	}
	if got := after["orb.server.shed.queue_full"] - before["orb.server.shed.queue_full"]; got == 0 {
		t.Fatal("server shed counter did not grow")
	}
}

// TestPerKeyLimit saturates one servant key and checks a second key on
// the same server still answers while the first sheds.
func TestPerKeyLimit(t *testing.T) {
	srv, entered, release := gateServer(t, ServeOptions{MaxPerKey: 1})
	defer srv.Stop()

	c, err := DialClient(transport.TCP{}, srv.Addr())
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	hold := make(chan error, 1)
	go func() {
		_, err := c.Invoke("gate", "wait")
		hold <- err
	}()
	<-entered // "gate" is at its per-key limit

	c2, err := DialClient(transport.TCP{}, srv.Addr())
	if err != nil {
		t.Fatal(err)
	}
	defer c2.Close()
	if _, err := c2.Invoke("gate", "ping"); !IsOverloaded(err) {
		t.Fatalf("second call on saturated key: err = %v, want ErrOverloaded", err)
	}
	if res, err := c2.Invoke("gate2", "ping"); err != nil || res[0].(int32) != 0 {
		t.Fatalf("other key blocked by unrelated saturation: %v %v", res, err)
	}
	close(release)
	if err := <-hold; err != nil {
		t.Fatalf("held call: %v", err)
	}
}

// TestPickShardSpread checks the rendezvous dial spreads successive picks
// over the whole shard list and passes single addresses through.
func TestPickShardSpread(t *testing.T) {
	if got := PickShard("tcp://one:1"); got != "tcp://one:1" {
		t.Fatalf("single address rewritten to %q", got)
	}
	counts := map[string]int{}
	for i := 0; i < 300; i++ {
		counts[PickShard("a,b,c")]++
	}
	if len(counts) != 3 {
		t.Fatalf("picks landed on %d shards, want 3: %v", len(counts), counts)
	}
	for shard, n := range counts {
		if n < 30 { // uniform would be 100; catch gross skew only
			t.Fatalf("shard %q picked %d of 300", shard, n)
		}
	}
}

// TestServeShards runs a sharded listener group end to end: N listeners,
// a comma-joined address, and rendezvous dials that all reach a working
// servant.
func TestServeShards(t *testing.T) {
	oa := NewObjectAdapter()
	if err := oa.Register("calc", calcInfo(t), calcImpl{}); err != nil {
		t.Fatal(err)
	}
	pool, err := ServeShards(oa, "tcp://127.0.0.1:0", 3, ServeOptions{})
	if err != nil {
		t.Fatal(err)
	}
	defer pool.Close()
	if got := len(pool.Shards()); got != 3 {
		t.Fatalf("shards = %d, want 3", got)
	}
	addr := pool.Addr()
	if got := len(strings.Split(addr, ",")); got != 3 {
		t.Fatalf("pool addr %q does not list 3 shards", addr)
	}
	for i := 0; i < 12; i++ {
		c, err := DialAddr(addr)
		if err != nil {
			t.Fatalf("dial %d: %v", i, err)
		}
		res, err := c.Invoke("calc", "add", 2.0, float64(i))
		c.Close()
		if err != nil {
			t.Fatalf("invoke %d: %v", i, err)
		}
		if res[0].(float64) != float64(2+i) {
			t.Fatalf("add = %v", res)
		}
	}
}
