//go:build !race

package orb

const raceEnabled = false
