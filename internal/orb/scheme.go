package orb

import "repro/internal/transport"

// DialAddr connects to a scheme-qualified address — tcp://host:port,
// shm:///dir, inproc://name, or a bare host:port (tcp) — so deployment
// tooling can move a component between backends by editing a string
// instead of code (transport.ForScheme documents the grammar).
func DialAddr(addr string) (*Client, error) {
	tr, rest, err := transport.ForScheme(addr)
	if err != nil {
		return nil, err
	}
	return DialClient(tr, rest)
}

// ListenAddr opens a listener on a scheme-qualified address; pass the
// result to Serve.
func ListenAddr(addr string) (transport.Listener, error) {
	tr, rest, err := transport.ForScheme(addr)
	if err != nil {
		return nil, err
	}
	return tr.Listen(rest)
}
