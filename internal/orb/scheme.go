package orb

import (
	"fmt"
	"strings"
	"sync/atomic"

	"repro/internal/transport"
)

// DialAddr connects to a scheme-qualified address — tcp://host:port,
// shm:///dir, inproc://name, or a bare host:port (tcp) — so deployment
// tooling can move a component between backends by editing a string
// instead of code (transport.ForScheme documents the grammar). A
// comma-separated list of addresses is a sharded listener group (see
// ServeShards): the dial rendezvous-picks one shard, spreading a fleet of
// clients evenly without any coordination.
func DialAddr(addr string) (*Client, error) {
	tr, rest, err := transport.ForScheme(PickShard(addr))
	if err != nil {
		return nil, err
	}
	return DialClient(tr, rest)
}

// DialSupervisedAddr is DialAddr under supervision: scheme resolution and
// shard rendezvous, then DialSupervised. The supervisor redials the
// picked shard, so a client sticks to its shard across reconnects.
func DialSupervisedAddr(addr string, opts SupervisorOptions) (*Supervised, error) {
	tr, rest, err := transport.ForScheme(PickShard(addr))
	if err != nil {
		return nil, err
	}
	return DialSupervised(tr, rest, opts)
}

// ListenAddr opens a listener on a scheme-qualified address; pass the
// result to Serve.
func ListenAddr(addr string) (transport.Listener, error) {
	tr, rest, err := transport.ForScheme(addr)
	if err != nil {
		return nil, err
	}
	return tr.Listen(rest)
}

// dialSeq salts each rendezvous pick so successive dials from one process
// spread over the shard list instead of all landing on one winner.
var dialSeq atomic.Uint64

// PickShard resolves a comma-separated shard list to one address by
// rendezvous hashing over a per-dial nonce: each dial scores every shard
// with an FNV-1a hash of (shard, nonce) and takes the highest. Any single
// address (no comma) passes through unchanged. Deterministic per nonce,
// uniform across dials, and stable under list reordering — the properties
// that let every client pick independently yet load the shards evenly.
func PickShard(addr string) string {
	if !strings.Contains(addr, ",") {
		return addr
	}
	nonce := dialSeq.Add(1)
	best, bestScore := "", uint64(0)
	for _, shard := range strings.Split(addr, ",") {
		shard = strings.TrimSpace(shard)
		if shard == "" {
			continue
		}
		const (
			offset64 = 14695981039346656037
			prime64  = 1099511628211
		)
		h := uint64(offset64)
		for i := 0; i < len(shard); i++ {
			h = (h ^ uint64(shard[i])) * prime64
		}
		for i := 0; i < 8; i++ {
			h = (h ^ (nonce >> (8 * i) & 0xff)) * prime64
		}
		if best == "" || h > bestScore {
			best, bestScore = shard, h
		}
	}
	return best
}

// ServerPool serves one object adapter from several listeners — the
// connection-sharding layout of the high-fan-out serving tier. Each shard
// is its own Server (own read loops, own accept loop) over the shared
// adapter and options; Addr returns the comma-separated shard list that
// DialAddr/DialSupervisedAddr rendezvous over.
type ServerPool struct {
	servers []*Server
	addrs   []string
}

// ServeShards listens on `shards` addresses derived from addr and serves
// oa from each. For a kernel-assigned port (tcp://host:0) every shard
// listens on the same spec and gets its own port; for path- or name-like
// addresses (shm, inproc) shards beyond the first get a "-s<i>" suffix.
// An explicit tcp port cannot be shared — listening fails on the second
// shard, and the error reports which shard.
func ServeShards(oa *ObjectAdapter, addr string, shards int, opts ServeOptions) (*ServerPool, error) {
	if shards < 1 {
		shards = 1
	}
	scheme := ""
	if i := strings.Index(addr, "://"); i >= 0 {
		scheme = addr[:i+3]
	}
	p := &ServerPool{}
	for i := 0; i < shards; i++ {
		shardAddr := addr
		if i > 0 && !strings.HasSuffix(addr, ":0") {
			shardAddr = fmt.Sprintf("%s-s%d", addr, i)
		}
		l, err := ListenAddr(shardAddr)
		if err != nil {
			p.Stop()
			return nil, fmt.Errorf("orb: shard %d of %q: %w", i, addr, err)
		}
		p.servers = append(p.servers, ServeWith(oa, l, opts))
		p.addrs = append(p.addrs, scheme+l.Addr())
	}
	return p, nil
}

// Addr returns the comma-separated shard addresses, each with the
// original scheme prefix — the string clients hand to DialAddr.
func (p *ServerPool) Addr() string { return strings.Join(p.addrs, ",") }

// Shards returns the per-shard servers, for tests and metrics.
func (p *ServerPool) Shards() []*Server { return p.servers }

// Stop hard-stops every shard (Server.Stop).
func (p *ServerPool) Stop() {
	for _, s := range p.servers {
		s.Stop()
	}
}

// Close gracefully drains every shard (Server.Close).
func (p *ServerPool) Close() {
	for _, s := range p.servers {
		s.Close()
	}
}
