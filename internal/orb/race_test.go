//go:build race

package orb

// raceEnabled gates allocation-count assertions: the race runtime
// instruments sync primitives with allocating shadow state, so alloc
// figures under -race measure the detector, not the code.
const raceEnabled = true
