package orb

// Tests for the supervised client: reconnect with backoff, idempotent
// retry, circuit breaking, heartbeat detection of silent partitions, and
// the error taxonomy.

import (
	"context"
	"errors"
	"sync"
	"testing"
	"time"

	"repro/internal/transport"
)

// fastOpts returns supervisor options tuned for test speed, streaming state
// transitions into the returned channel.
func fastOpts() (SupervisorOptions, <-chan ConnState) {
	states := make(chan ConnState, 64)
	return SupervisorOptions{
		ConnectTimeout:   2 * time.Second,
		RetryBase:        time.Millisecond,
		RetryCap:         20 * time.Millisecond,
		MaxAttempts:      6,
		BreakerThreshold: 3,
		BreakerCooldown:  10 * time.Millisecond,
		Idempotent:       AllIdempotent,
		OnState: func(s ConnState, _ error) {
			select {
			case states <- s:
			default:
			}
		},
	}, states
}

func waitState(t *testing.T, states <-chan ConnState, want ConnState) {
	t.Helper()
	deadline := time.After(5 * time.Second)
	for {
		select {
		case s := <-states:
			if s == want {
				return
			}
		case <-deadline:
			t.Fatalf("timed out waiting for state %v", want)
		}
	}
}

// calcServer serves a calc servant on an InProc transport and returns a
// restart function that brings it back on the same address after Stop.
func calcServer(t *testing.T, tr transport.Transport, addr string) (stop func(), restart func()) {
	t.Helper()
	oa := NewObjectAdapter()
	if err := oa.Register("calc", calcInfo(t), calcImpl{}); err != nil {
		t.Fatal(err)
	}
	var srv *Server
	start := func() {
		l, err := tr.Listen(addr)
		if err != nil {
			t.Fatalf("listen %s: %v", addr, err)
		}
		srv = Serve(oa, l)
	}
	start()
	return func() { srv.Stop() }, start
}

func TestSupervisedHappyPath(t *testing.T) {
	tr := &transport.InProc{}
	stop, _ := calcServer(t, tr, "sup-happy")
	defer stop()
	opts, _ := fastOpts()
	s, err := DialSupervised(tr, "sup-happy", opts)
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	res, err := s.Invoke("calc", "add", 2.0, 3.0)
	if err != nil {
		t.Fatal(err)
	}
	if res[0].(float64) != 5 {
		t.Errorf("add = %v", res)
	}
	if got := s.State(); got != StateHealthy {
		t.Errorf("state = %v, want healthy", got)
	}
}

// lateTransport fails the first `fails` Dial attempts with ErrNoListener,
// then delegates — a deterministic stand-in for "the server comes up while
// the client is still dialing", with no wall-clock dependence.
type lateTransport struct {
	transport.Transport
	mu    sync.Mutex
	fails int
}

func (l *lateTransport) Dial(addr string) (transport.Conn, error) {
	l.mu.Lock()
	if l.fails > 0 {
		l.fails--
		l.mu.Unlock()
		return nil, transport.ErrNoListener
	}
	l.mu.Unlock()
	return l.Transport.Dial(addr)
}

func TestSupervisedDialRetriesUntilServerUp(t *testing.T) {
	// The first dials fail as if the server were not yet up; the initial
	// dial loop must absorb the failures within ConnectTimeout.
	inner := &transport.InProc{}
	stop, _ := calcServer(t, inner, "sup-late")
	defer stop()
	tr := &lateTransport{Transport: inner, fails: 3}
	opts, _ := fastOpts()
	s, err := DialSupervised(tr, "sup-late", opts)
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	if _, err := s.Invoke("calc", "add", 1.0, 1.0); err != nil {
		t.Fatal(err)
	}
}

func TestSupervisedReconnectAfterSever(t *testing.T) {
	inner := &transport.InProc{}
	tr := transport.NewFaulty(inner, transport.Faults{Seed: 7})
	stop, _ := calcServer(t, tr, "sup-sever")
	defer stop()
	opts, states := fastOpts()
	s, err := DialSupervised(tr, "sup-sever", opts)
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	if _, err := s.Invoke("calc", "add", 1.0, 2.0); err != nil {
		t.Fatal(err)
	}
	tr.SeverAll() // crash every live connection
	waitState(t, states, StateDegraded)
	// The idempotent call rides out the reconnect transparently.
	res, err := s.Invoke("calc", "add", 4.0, 5.0)
	if err != nil {
		t.Fatalf("post-sever call: %v", err)
	}
	if res[0].(float64) != 9 {
		t.Errorf("add = %v", res)
	}
	waitState(t, states, StateHealthy)
}

func TestSupervisedCircuitBreaker(t *testing.T) {
	tr := &transport.InProc{}
	stop, restart := calcServer(t, tr, "sup-breaker")
	opts, states := fastOpts()
	s, err := DialSupervised(tr, "sup-breaker", opts)
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	if _, err := s.Invoke("calc", "add", 1.0, 1.0); err != nil {
		t.Fatal(err)
	}
	stop() // server gone: redials fail, breaker opens after the threshold
	waitState(t, states, StateBroken)
	// Open circuit: calls are shed immediately with a typed error.
	_, err = s.Invoke("calc", "add", 1.0, 1.0)
	if err == nil {
		t.Fatal("call on open circuit succeeded")
	}
	var ce *CallError
	if !errors.As(err, &ce) {
		t.Fatalf("want *CallError, got %T: %v", err, err)
	}
	if ce.Class != ClassRetryable && ce.Class != ClassTimeout {
		t.Errorf("open-circuit class = %v", ce.Class)
	}
	restart() // half-open probe should now succeed
	waitState(t, states, StateHealthy)
	defer stop()
	res, err := s.Invoke("calc", "add", 20.0, 22.0)
	if err != nil {
		t.Fatalf("post-restore call: %v", err)
	}
	if res[0].(float64) != 42 {
		t.Errorf("add = %v", res)
	}
}

func TestSupervisedNonIdempotentFailsFast(t *testing.T) {
	tr := &transport.InProc{}
	stop, _ := calcServer(t, tr, "sup-nonidem")
	opts, states := fastOpts()
	opts.Idempotent = IdempotentMethods("sum") // add is NOT idempotent here
	s, err := DialSupervised(tr, "sup-nonidem", opts)
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	stop()
	// Let the watcher notice the death so the first attempt fails at
	// acquire rather than mid-call.
	waitState(t, states, StateDegraded)
	retries0 := cSupRetries.Value()
	_, err = s.Invoke("calc", "add", 1.0, 1.0)
	if err == nil {
		t.Fatal("call with dead server succeeded")
	}
	if Classify(err) == ClassFatal {
		t.Errorf("connection loss classified fatal: %v", err)
	}
	// One attempt, no retry loop: the supervisor retry counter must not
	// move for a non-idempotent method.
	if got := cSupRetries.Value(); got != retries0 {
		t.Errorf("non-idempotent call retried %d times", got-retries0)
	}
}

func TestSupervisedFatalNotRetried(t *testing.T) {
	tr := &transport.InProc{}
	stop, _ := calcServer(t, tr, "sup-fatal")
	defer stop()
	opts, _ := fastOpts()
	s, err := DialSupervised(tr, "sup-fatal", opts)
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	// Unknown object: a remote application-level error. It must surface as
	// Fatal immediately and must not tear down the healthy connection.
	_, err = s.Invoke("nosuch", "add", 1.0, 1.0)
	if err == nil {
		t.Fatal("unknown object succeeded")
	}
	if got := Classify(err); got != ClassFatal {
		t.Errorf("class = %v, want fatal (%v)", got, err)
	}
	if got := s.State(); got != StateHealthy {
		t.Errorf("state after app error = %v, want healthy", got)
	}
	if _, err := s.Invoke("calc", "add", 1.0, 1.0); err != nil {
		t.Errorf("connection unusable after app error: %v", err)
	}
}

func TestSupervisedHeartbeatDetectsBlackhole(t *testing.T) {
	inner := &transport.InProc{}
	tr := transport.NewFaulty(inner, transport.Faults{Seed: 11})
	stop, _ := calcServer(t, tr, "sup-hb")
	defer stop()
	opts, states := fastOpts()
	opts.Heartbeat = 10 * time.Millisecond
	s, err := DialSupervised(tr, "sup-hb", opts)
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	if _, err := s.Invoke("calc", "add", 1.0, 1.0); err != nil {
		t.Fatal(err)
	}
	// Silent partition: no reads, no close notification. Only the
	// heartbeat's write can notice.
	tr.BlackholeAll()
	waitState(t, states, StateDegraded)
	waitState(t, states, StateHealthy)
	if _, err := s.Invoke("calc", "add", 2.0, 2.0); err != nil {
		t.Fatalf("post-blackhole call: %v", err)
	}
}

func TestSupervisedCallTimeoutRecoversDroppedFrame(t *testing.T) {
	inner := &transport.InProc{}
	tr := transport.NewFaulty(inner, transport.Faults{Seed: 3})
	stop, _ := calcServer(t, tr, "sup-drop")
	defer stop()
	opts, _ := fastOpts()
	opts.CallTimeout = 25 * time.Millisecond
	s, err := DialSupervised(tr, "sup-drop", opts)
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	// Drop everything; the in-flight attempt hangs until CallTimeout.
	tr.SetFaults(transport.Faults{DropProb: 1})
	healed := time.AfterFunc(40*time.Millisecond, func() {
		tr.SetFaults(transport.Faults{})
	})
	defer healed.Stop()
	ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
	defer cancel()
	res, err := s.InvokeContext(ctx, "calc", "add", 3.0, 4.0)
	if err != nil {
		t.Fatalf("call across dropped frames: %v", err)
	}
	if res[0].(float64) != 7 {
		t.Errorf("add = %v", res)
	}
}

func TestSupervisedCloseFailsCalls(t *testing.T) {
	tr := &transport.InProc{}
	stop, _ := calcServer(t, tr, "sup-close")
	defer stop()
	opts, _ := fastOpts()
	s, err := DialSupervised(tr, "sup-close", opts)
	if err != nil {
		t.Fatal(err)
	}
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}
	if err := s.Close(); err != nil {
		t.Errorf("second Close: %v", err)
	}
	_, err = s.Invoke("calc", "add", 1.0, 1.0)
	if !errors.Is(err, ErrSupervisorClosed) {
		t.Errorf("call after Close = %v, want ErrSupervisorClosed", err)
	}
	if got := Classify(err); got != ClassFatal {
		t.Errorf("closed class = %v, want fatal", got)
	}
}

func TestSupervisedProxy(t *testing.T) {
	tr := &transport.InProc{}
	stop, _ := calcServer(t, tr, "sup-proxy")
	defer stop()
	opts, _ := fastOpts()
	s, err := DialSupervised(tr, "sup-proxy", opts)
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	res, err := s.Proxy("calc").Invoke("greet", "world")
	if err != nil {
		t.Fatal(err)
	}
	if res[0].(string) != "hello world" {
		t.Errorf("greet = %v", res)
	}
}

func TestClassify(t *testing.T) {
	cases := []struct {
		err  error
		want Class
	}{
		{transport.ErrClosed, ClassRetryable},
		{transport.ErrNoListener, ClassRetryable},
		{ErrCircuitOpen, ClassRetryable},
		{context.DeadlineExceeded, ClassTimeout},
		{context.Canceled, ClassTimeout},
		{ErrRemote, ClassFatal},
		{ErrNoObject, ClassFatal},
		{ErrBadReply, ClassFatal},
		{errors.New("anything else"), ClassFatal},
		{&CallError{Class: ClassTimeout, Err: transport.ErrClosed}, ClassTimeout},
	}
	for _, c := range cases {
		if got := Classify(c.err); got != c.want {
			t.Errorf("Classify(%v) = %v, want %v", c.err, got, c.want)
		}
	}
	// classed is idempotent: it never double-wraps.
	inner := classed(ClassRetryable, transport.ErrClosed)
	if again := classed(ClassFatal, inner); again != inner {
		t.Error("classed re-wrapped an existing CallError")
	}
	// CallError unwraps to its cause.
	if !errors.Is(inner, transport.ErrClosed) {
		t.Error("CallError does not unwrap to its cause")
	}
}

func TestSupervisedOnewayNotRetried(t *testing.T) {
	tr := &transport.InProc{}
	stop, _ := calcServer(t, tr, "sup-oneway")
	opts, states := fastOpts()
	s, err := DialSupervised(tr, "sup-oneway", opts)
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	// A live connection accepts the oneway (server drops unknown-key
	// oneways silently — the same path the heartbeat ping uses).
	if err := s.InvokeOneway("calc", "observe", 1.0); err != nil {
		t.Fatalf("oneway on live conn: %v", err)
	}
	stop()
	waitState(t, states, StateDegraded)
	if err := s.InvokeOneway("calc", "observe", 2.0); err == nil {
		t.Error("oneway with dead server succeeded")
	}
}
