package orb

import (
	"testing"

	"repro/internal/obs"
	"repro/internal/transport"
)

// TestTracePropagation proves the tentpole wiring: a traced remote call
// leaves a client-call span on the caller and a dispatch span (carrying
// the server's queueing delay) on the callee, sharing one nonzero trace
// ID — the ID crossed the wire in the v2 frame header and came back in
// the reply.
func TestTracePropagation(t *testing.T) {
	oa := NewObjectAdapter()
	if err := oa.Register("calc", calcInfo(t), calcImpl{}); err != nil {
		t.Fatal(err)
	}
	tr := &transport.InProc{}
	l, err := tr.Listen("traced")
	if err != nil {
		t.Fatal(err)
	}
	srv := Serve(oa, l)
	defer srv.Stop()
	c, err := DialClient(tr, "traced")
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()

	obs.Tracer.Reset()
	obs.Tracer.SetEnabled(true)
	defer func() {
		obs.Tracer.SetEnabled(false)
		obs.Tracer.Reset()
	}()

	if _, err := c.Invoke("calc", "add", 1.0, 2.0); err != nil {
		t.Fatal(err)
	}
	// The dispatch span is recorded before the reply is sent, and the
	// client-call span before Invoke returns — both are visible now
	// without any synchronization.
	byKind := map[obs.SpanKind]obs.Span{}
	for _, s := range obs.Tracer.Spans() {
		byKind[s.Kind] = s
	}
	cc, ok := byKind[obs.SpanClientCall]
	if !ok {
		t.Fatalf("no client-call span in %v", obs.Tracer.Spans())
	}
	if cc.Trace == 0 || cc.Key != "calc" || cc.Method != "add" || cc.Err != "" {
		t.Fatalf("client-call span = %+v", cc)
	}
	dp, ok := byKind[obs.SpanDispatch]
	if !ok {
		t.Fatal("no dispatch span: trace ID did not cross the wire")
	}
	if dp.Trace != cc.Trace {
		t.Fatalf("span trace IDs disagree: client=%d dispatch=%d", cc.Trace, dp.Trace)
	}
	if dp.Key != "calc" || dp.Method != "add" || dp.Err != "" {
		t.Fatalf("dispatch span = %+v", dp)
	}
	// A remote dispatch carries its queueing delay (arrival → dispatch
	// slot), and the client-side round trip bounds the server-side work.
	if dp.Queue < 0 || dp.Queue > cc.Dur {
		t.Fatalf("dispatch queue delay %v outside [0, %v]", dp.Queue, cc.Dur)
	}

	// A failing call's spans carry the error.
	obs.Tracer.Reset()
	if _, err := c.Invoke("ghost", "m"); err == nil {
		t.Fatal("call to missing object succeeded")
	}
	byKind = map[obs.SpanKind]obs.Span{}
	for _, s := range obs.Tracer.Spans() {
		byKind[s.Kind] = s
	}
	if byKind[obs.SpanClientCall].Err == "" || byKind[obs.SpanDispatch].Err == "" {
		t.Fatalf("error not recorded on spans: %+v", obs.Tracer.Spans())
	}
}

// TestUntracedCallsRecordNothing pins the off switch: with tracing
// disabled, frames carry trace ID 0 and no span is recorded anywhere.
func TestUntracedCallsRecordNothing(t *testing.T) {
	oa := NewObjectAdapter()
	if err := oa.Register("calc", calcInfo(t), calcImpl{}); err != nil {
		t.Fatal(err)
	}
	tr := &transport.InProc{}
	l, err := tr.Listen("untraced")
	if err != nil {
		t.Fatal(err)
	}
	srv := Serve(oa, l)
	defer srv.Stop()
	c, err := DialClient(tr, "untraced")
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()

	obs.Tracer.Reset()
	if _, err := c.Invoke("calc", "add", 1.0, 2.0); err != nil {
		t.Fatal(err)
	}
	if n := obs.Tracer.Recorded(); n != 0 {
		t.Fatalf("untraced call recorded %d spans", n)
	}
}

// TestClientServerRED pins the per-method RED wiring: one successful
// remote call moves the client and server call counters and duration
// histograms for exactly that method, and a classified error lands in the
// right error counter.
func TestClientServerRED(t *testing.T) {
	// Durations are normally a 1-in-8 sample; observe every call so one
	// invoke moves the histogram deterministically.
	oldMask := redSampleMask
	redSampleMask = 0
	defer func() { redSampleMask = oldMask }()

	oa := NewObjectAdapter()
	if err := oa.Register("calc", calcInfo(t), calcImpl{}); err != nil {
		t.Fatal(err)
	}
	tr := &transport.InProc{}
	l, err := tr.Listen("red")
	if err != nil {
		t.Fatal(err)
	}
	srv := Serve(oa, l)
	defer srv.Stop()
	c, err := DialClient(tr, "red")
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()

	cli, sv := clientRED("add"), serverRED("add")
	calls0, durs0 := cli.calls.Value(), cli.dur.Snapshot().Count
	sCalls0 := sv.calls.Value()
	fatal0 := cli.errs[ClassFatal].Value()

	if _, err := c.Invoke("calc", "add", 1.0, 2.0); err != nil {
		t.Fatal(err)
	}
	if got := cli.calls.Value(); got != calls0+1 {
		t.Fatalf("client calls = %d, want %d", got, calls0+1)
	}
	if got := cli.dur.Snapshot().Count; got != durs0+1 {
		t.Fatalf("client durations = %d, want %d", got, durs0+1)
	}
	if got := sv.calls.Value(); got != sCalls0+1 {
		t.Fatalf("server calls = %d, want %d", got, sCalls0+1)
	}
	if got := gClientInflight.Value(); got < 0 {
		t.Fatalf("in-flight gauge went negative: %d", got)
	}

	// A remote exception classifies Fatal on the client side.
	if _, err := c.Invoke("calc", "add", "not-a-number"); err == nil {
		t.Fatal("bad-argument call succeeded")
	}
	if got := cli.errs[ClassFatal].Value(); got != fatal0+1 {
		t.Fatalf("client fatal errors = %d, want %d", got, fatal0+1)
	}
}
