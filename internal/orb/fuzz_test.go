package orb

// Wire-layer fuzzing: the CDR decoder, the adapter's request dispatch, and
// the client's reply decoder must return errors on corrupt or truncated
// input — never panic, and never allocate proportionally to a corrupt
// length prefix rather than to the input itself.

import (
	"encoding/binary"
	"errors"
	"testing"
)

// fuzzSeeds returns valid encodings plus MaxFrame-ish length-prefix edge
// cases (huge element counts with almost no bytes behind them).
func fuzzSeeds(tb testing.TB) [][]byte {
	tb.Helper()
	valid, err := EncodeAll(
		nil, true, int32(-7), int64(1<<40), int(-99), 3.14,
		complex(1, -2), "hello", []byte{1, 2, 3},
		[]float64{1, 2, 3.5}, []int32{-1, 0, 1}, []string{"a", "", "c"},
	)
	if err != nil {
		tb.Fatal(err)
	}
	hugeLen := func(tag byte) []byte {
		return []byte{tag, 0xFF, 0xFF, 0xFF, 0xFF, 1, 2, 3}
	}
	return [][]byte{
		valid,
		{},
		{tagString, 200},
		hugeLen(tagString),
		hugeLen(tagBytes),
		hugeLen(tagFloat64Slice),
		hugeLen(tagInt32Slice),
		hugeLen(tagStringSlice),
	}
}

func FuzzCDRDecode(f *testing.F) {
	for _, s := range fuzzSeeds(f) {
		f.Add(s)
	}
	f.Fuzz(func(t *testing.T, b []byte) {
		vals, err := DecodeAll(b)
		if err != nil {
			if !errors.Is(err, ErrDecode) {
				t.Fatalf("non-ErrDecode failure: %v", err)
			}
			return
		}
		// Whatever decoded must re-encode: decode output stays within the
		// codec's value domain.
		if _, err := EncodeAll(vals...); err != nil {
			t.Fatalf("decoded values do not re-encode: %v", err)
		}
	})
}

func FuzzDispatch(f *testing.F) {
	oa := NewObjectAdapter()
	if err := oa.Register("calc", calcInfo(f), calcImpl{}); err != nil {
		f.Fatal(err)
	}
	// Seeds: a well-formed request, a request for a missing object, and
	// every decoder edge case behind a valid correlation header.
	if req, err := encodeRequest(1, 0, "calc", "add", []any{1.0, 2.0}); err == nil {
		f.Add(append([]byte(nil), req.Bytes()...))
		PutEncoder(req)
	}
	if req, err := encodeRequest(0, 9, "ghost", "m", nil); err == nil {
		f.Add(append([]byte(nil), req.Bytes()...))
		PutEncoder(req)
	}
	for _, s := range fuzzSeeds(f) {
		var hdr [frameHeader]byte
		binary.LittleEndian.PutUint64(hdr[:], 7)
		f.Add(append(hdr[:], s...))
		f.Add(s) // headerless / short frames
	}
	f.Fuzz(func(t *testing.T, frame []byte) {
		id, trace, body, ok := splitFrame(frame)
		if !ok {
			return // the server drops the connection; nothing to dispatch
		}
		e := oa.dispatchBody(body, id == onewayID, trace, 0)
		if id == onewayID {
			if e != nil {
				t.Fatal("oneway dispatch produced a reply")
			}
			return
		}
		if e == nil {
			t.Fatal("two-way dispatch produced no reply")
		}
		rep := e.Bytes()
		if len(rep) < frameHeader {
			t.Fatalf("reply shorter than its header: %d bytes", len(rep))
		}
		// The reply must itself be decodable (as a success or an error).
		if _, err := decodeReply(rep[frameHeader:]); err != nil &&
			!errors.Is(err, ErrRemote) && !errors.Is(err, ErrDecode) {
			t.Fatalf("undecodable reply: %v", err)
		}
		PutEncoder(e)
	})
}

func FuzzDecodeReply(f *testing.F) {
	ok1, _ := EncodeAll(true, 42.0)
	bad1, _ := EncodeAll(false, "boom")
	f.Add(ok1)
	f.Add(bad1)
	f.Add([]byte{tagBool})
	for _, s := range fuzzSeeds(f) {
		f.Add(s)
	}
	f.Fuzz(func(t *testing.T, body []byte) {
		out, err := decodeReply(body)
		if err != nil && out != nil {
			t.Fatal("decodeReply returned values alongside an error")
		}
	})
}
