package orb

import (
	"sync"
	"sync/atomic"

	"repro/internal/obs"
)

// RED metrics for the remote path, per method and per side: rate
// (".calls"), errors by CallError class (".errors.<class>"), duration
// (".duration_ns"). The instruments live in obs.Default under
// "orb.client.method.<m>.*" and "orb.server.method.<m>.*"; redFor caches
// the per-method bundle in a sync.Map so the steady-state lookup is one
// hash probe and no allocation.
type methodRED struct {
	calls *obs.Counter
	dur   *obs.Histogram
	errs  [3]*obs.Counter // indexed by Class
	tick  atomic.Uint32   // duration-sampling tick; see sampleDur
}

// redSampleMask selects which untraced metered calls pay for the two
// monotonic clock reads behind the duration histogram: a call samples when
// tick&redSampleMask == 0. Rates and error counts stay exact on every
// call; durations are a uniform 1-in-(mask+1) sample, which leaves the
// quantiles unbiased while keeping the clock off the common path (clock
// reads are the single largest per-call instrumentation cost where no vDSO
// fast path exists — see E10). Traced calls always observe. Tests set the
// mask to 0 to observe every call.
var redSampleMask uint32 = 7

// sampleDur draws the client-side duration-sampling decision for one call.
func (r *methodRED) sampleDur() bool { return r.tick.Add(1)&redSampleMask == 0 }

// durNS clamps a monotonic-clock difference to a histogram value. obs.Mono
// reads can come from the TSC, where residual cross-core skew could make a
// tiny interval read negative; a negative cast to uint64 would land in the
// top histogram bucket and wreck the quantiles.
func durNS(d int64) uint64 {
	if d < 0 {
		return 0
	}
	return uint64(d)
}

// serverDurTick drives the server-side sampling decision, which must be
// made before dispatch decodes the method name, so it is shared across
// methods rather than per-method.
var serverDurTick atomic.Uint32

func newMethodRED(side, method string) *methodRED {
	base := "orb." + side + ".method." + method
	r := &methodRED{
		calls: obs.NewCounter(base + ".calls"),
		dur:   obs.NewHistogram(base + ".duration_ns"),
	}
	for _, c := range []Class{ClassRetryable, ClassTimeout, ClassFatal} {
		r.errs[c] = obs.NewCounter(base + ".errors." + c.String())
	}
	return r
}

var (
	clientREDs sync.Map // method → *methodRED
	serverREDs sync.Map
)

func redFor(m *sync.Map, side, method string) *methodRED {
	if v, ok := m.Load(method); ok {
		return v.(*methodRED)
	}
	v, _ := m.LoadOrStore(method, newMethodRED(side, method))
	return v.(*methodRED)
}

func clientRED(method string) *methodRED { return redFor(&clientREDs, "client", method) }
func serverRED(method string) *methodRED { return redFor(&serverREDs, "server", method) }

// Aggregate instruments (registered once; Add/Inc gate themselves).
var (
	// gClientInflight counts remote calls currently awaiting their reply —
	// the in-flight gauge the multiplexed client exposes.
	gClientInflight = obs.NewGauge("orb.client.inflight")
	// cClientOneways counts fire-and-forget sends.
	cClientOneways = obs.NewCounter("orb.client.oneways")
	// cDispatchBadBody counts request bodies whose key/method failed to
	// decode (no method name to file the error under).
	cDispatchBadBody = obs.NewCounter("orb.server.bad_bodies")

	// Supervised-client instruments: one state gauge per ConnState (the
	// breaker-state gauges — a supervised connection contributes 1 to
	// exactly one of them), plus counters for retries, redials, and
	// circuit-breaker opens.
	gSupStates = [3]*obs.Gauge{
		StateHealthy:  obs.NewGauge("orb.supervised.healthy"),
		StateDegraded: obs.NewGauge("orb.supervised.degraded"),
		StateBroken:   obs.NewGauge("orb.supervised.broken"),
	}
	cSupRetries      = obs.NewCounter("orb.supervised.retries")
	cSupRedials      = obs.NewCounter("orb.supervised.redials")
	cSupBreakerOpens = obs.NewCounter("orb.supervised.breaker_opens")
	// Crash-recovery instruments: RestartPolicy relaunch attempts,
	// checkpoint replays that reached a fresh servant, and heartbeats the
	// supervisor withheld because the circuit was open.
	cSupRestarts             = obs.NewCounter("orb.supervised.restarts")
	cSupRestores             = obs.NewCounter("orb.supervised.restore_replays")
	cSupHeartbeatsSuppressed = obs.NewCounter("orb.supervised.heartbeats_suppressed")

	// Serving-tier instruments: load-shed counters on the server's
	// admission control (total sheds plus the reason split), the server's
	// in-flight dispatch gauge, and the supervised client's
	// overload-backoff counter (retries that kept the connection).
	gServerInflight   = obs.NewGauge("orb.server.inflight")
	cServerShed       = obs.NewCounter("orb.server.shed")
	cServerShedQueue  = obs.NewCounter("orb.server.shed.queue_full")
	cServerShedPerKey = obs.NewCounter("orb.server.shed.per_key")
	cServerShedDrain  = obs.NewCounter("orb.server.shed.draining")
	cSupOverloads     = obs.NewCounter("orb.supervised.overload_backoffs")
)
