package orb

import (
	"bytes"
	"encoding/binary"
	"errors"
	"fmt"
	"math"
	"reflect"
	"strings"
	"sync"
	"testing"
	"testing/quick"
	"time"

	"repro/internal/sidl"
	"repro/internal/sidl/sreflect"
	"repro/internal/transport"
)

func TestCDRRoundTripAllTypes(t *testing.T) {
	vals := []any{
		nil, true, false,
		int32(-7), int64(1 << 40), int(-99),
		3.14159, complex(1.5, -2.5),
		"hello", []byte{0, 1, 2, 255},
		[]float64{1, 2, 3.5}, []int32{-1, 0, 1},
		[]string{"a", "", "c"},
	}
	b, err := EncodeAll(vals...)
	if err != nil {
		t.Fatal(err)
	}
	got, err := DecodeAll(b)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != len(vals) {
		t.Fatalf("decoded %d values, want %d", len(got), len(vals))
	}
	for i := range vals {
		if !reflect.DeepEqual(got[i], vals[i]) {
			t.Errorf("value %d: %#v != %#v", i, got[i], vals[i])
		}
	}
}

func TestCDRSpecials(t *testing.T) {
	b, err := EncodeAll(math.Inf(1), math.NaN())
	if err != nil {
		t.Fatal(err)
	}
	got, err := DecodeAll(b)
	if err != nil {
		t.Fatal(err)
	}
	if !math.IsInf(got[0].(float64), 1) || !math.IsNaN(got[1].(float64)) {
		t.Errorf("specials = %v", got)
	}
}

func TestCDRUnsupported(t *testing.T) {
	if _, err := EncodeAll(struct{ X int }{}); !errors.Is(err, ErrEncode) {
		t.Errorf("err = %v", err)
	}
}

func TestCDRTruncated(t *testing.T) {
	b, _ := EncodeAll([]float64{1, 2, 3})
	for cut := 1; cut < len(b); cut++ {
		if _, err := DecodeAll(b[:cut]); !errors.Is(err, ErrDecode) {
			t.Fatalf("cut %d: err = %v", cut, err)
		}
	}
	if _, err := DecodeAll([]byte{200}); !errors.Is(err, ErrDecode) {
		t.Errorf("bad tag err = %v", err)
	}
}

// Property: EncodeAll/DecodeAll is the identity on random primitive tuples.
func TestCDRRoundTripProperty(t *testing.T) {
	f := func(i int32, l int64, d float64, s string, fs []float64) bool {
		b, err := EncodeAll(i, l, d, s, fs)
		if err != nil {
			return false
		}
		got, err := DecodeAll(b)
		if err != nil || len(got) != 5 {
			return false
		}
		if got[0].(int32) != i || got[1].(int64) != l || got[3].(string) != s {
			return false
		}
		gd := got[2].(float64)
		if gd != d && !(math.IsNaN(gd) && math.IsNaN(d)) {
			return false
		}
		gfs := got[4].([]float64)
		if len(gfs) != len(fs) {
			return false
		}
		for k := range fs {
			if gfs[k] != fs[k] && !(math.IsNaN(gfs[k]) && math.IsNaN(fs[k])) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

// --- ORB dispatch tests ---

const calcSIDL = `
package demo {
  interface Calc {
    double add(in double a, in double b);
    double sum(in array<double,1> xs);
    string greet(in string who);
  }
}
`

type calcImpl struct{}

func (calcImpl) Add(a, b float64) float64 { return a + b }
func (calcImpl) Sum(xs []float64) float64 {
	var s float64
	for _, x := range xs {
		s += x
	}
	return s
}
func (calcImpl) Greet(who string) string { return "hello " + who }

// BindSkeleton provides Babel-style direct bindings so dispatch (and the
// zero-alloc tests that measure it) skips reflect method values.
func (c calcImpl) BindSkeleton(bind func(string, any)) {
	bind("add", c.Add)
	bind("sum", c.Sum)
	bind("greet", c.Greet)
}

func calcInfo(t testing.TB) *sreflect.TypeInfo {
	t.Helper()
	f, err := sidl.Parse(calcSIDL)
	if err != nil {
		t.Fatal(err)
	}
	tbl, err := sidl.Resolve(f)
	if err != nil {
		t.Fatal(err)
	}
	infos := sreflect.FromTable(tbl)
	for _, ti := range infos {
		if ti.QName == "demo.Calc" {
			return ti
		}
	}
	t.Fatal("demo.Calc not found")
	return nil
}

func TestInProcessORBInvoke(t *testing.T) {
	o := NewInProcessORB()
	if err := o.OA.Register("calc", calcInfo(t), calcImpl{}); err != nil {
		t.Fatal(err)
	}
	res, err := o.Invoke("calc", "add", 2.0, 3.0)
	if err != nil {
		t.Fatal(err)
	}
	if res[0].(float64) != 5 {
		t.Errorf("add = %v", res)
	}
	res, err = o.Invoke("calc", "sum", []float64{1, 2, 3, 4})
	if err != nil || res[0].(float64) != 10 {
		t.Errorf("sum = %v, %v", res, err)
	}
	p := o.Proxy("calc")
	res, err = p.Invoke("greet", "world")
	if err != nil || res[0].(string) != "hello world" {
		t.Errorf("greet = %v, %v", res, err)
	}
}

func TestInProcessORBErrors(t *testing.T) {
	o := NewInProcessORB()
	if err := o.OA.Register("calc", calcInfo(t), calcImpl{}); err != nil {
		t.Fatal(err)
	}
	if _, err := o.Invoke("ghost", "add", 1.0, 2.0); !errors.Is(err, ErrRemote) {
		t.Errorf("no-object err = %v", err)
	}
	if _, err := o.Invoke("calc", "multiply", 1.0, 2.0); !errors.Is(err, ErrRemote) {
		t.Errorf("no-method err = %v", err)
	}
	if _, err := o.Invoke("calc", "add", "x", "y"); !errors.Is(err, ErrRemote) {
		t.Errorf("bad-args err = %v", err)
	}
	o.OA.Unregister("calc")
	if _, err := o.Invoke("calc", "add", 1.0, 2.0); !errors.Is(err, ErrRemote) {
		t.Errorf("post-unregister err = %v", err)
	}
}

func TestRemoteORBOverInproc(t *testing.T) {
	oa := NewObjectAdapter()
	if err := oa.Register("calc", calcInfo(t), calcImpl{}); err != nil {
		t.Fatal(err)
	}
	tr := &transport.InProc{}
	l, err := tr.Listen("orb")
	if err != nil {
		t.Fatal(err)
	}
	srv := Serve(oa, l)
	defer srv.Stop()

	c, err := DialClient(tr, "orb")
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	res, err := c.Invoke("calc", "add", 20.0, 22.0)
	if err != nil || res[0].(float64) != 42 {
		t.Fatalf("remote add = %v, %v", res, err)
	}
	proxy := c.Proxy("calc")
	res, err = proxy.Invoke("sum", []float64{5, 5})
	if err != nil || res[0].(float64) != 10 {
		t.Fatalf("remote sum = %v, %v", res, err)
	}
	// Remote error propagation.
	if _, err := c.Invoke("calc", "nope"); !errors.Is(err, ErrRemote) || !strings.Contains(err.Error(), "nope") {
		t.Errorf("remote err = %v", err)
	}
}

func TestRemoteORBOverTCP(t *testing.T) {
	oa := NewObjectAdapter()
	if err := oa.Register("calc", calcInfo(t), calcImpl{}); err != nil {
		t.Fatal(err)
	}
	l, err := transport.TCP{}.Listen("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	srv := Serve(oa, l)
	defer srv.Stop()

	c, err := DialClient(transport.TCP{}, srv.Addr())
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	for i := 0; i < 10; i++ {
		res, err := c.Invoke("calc", "add", float64(i), 1.0)
		if err != nil || res[0].(float64) != float64(i)+1 {
			t.Fatalf("iter %d: %v, %v", i, res, err)
		}
	}
}

func TestServerStopIdempotent(t *testing.T) {
	oa := NewObjectAdapter()
	tr := &transport.InProc{}
	l, _ := tr.Listen("x")
	srv := Serve(oa, l)
	srv.Stop()
	srv.Stop()
}

// observer is a servant with a oneway-style void method.
type observer struct {
	mu    sync.Mutex
	steps []int32
}

func (o *observer) Observe(step int32, data []float64) {
	o.mu.Lock()
	o.steps = append(o.steps, step)
	o.mu.Unlock()
}

func (o *observer) count() int {
	o.mu.Lock()
	defer o.mu.Unlock()
	return len(o.steps)
}

func observerInfo(t testing.TB) *sreflect.TypeInfo {
	t.Helper()
	f, err := sidl.Parse(`package m { interface Mon { oneway void observe(in int step, in array<double,1> data); } }`)
	if err != nil {
		t.Fatal(err)
	}
	tbl, err := sidl.Resolve(f)
	if err != nil {
		t.Fatal(err)
	}
	for _, ti := range sreflect.FromTable(tbl) {
		if ti.QName == "m.Mon" {
			return ti
		}
	}
	t.Fatal("m.Mon missing")
	return nil
}

func TestInProcessOneway(t *testing.T) {
	o := NewInProcessORB()
	obs := &observer{}
	if err := o.OA.Register("mon", observerInfo(t), obs); err != nil {
		t.Fatal(err)
	}
	for i := int32(0); i < 3; i++ {
		if err := o.InvokeOneway("mon", "observe", i, []float64{1}); err != nil {
			t.Fatal(err)
		}
	}
	if obs.count() != 3 {
		t.Errorf("observed %d", obs.count())
	}
	// Oneway errors (unknown key) are swallowed by design.
	if err := o.InvokeOneway("ghost", "observe", int32(0), []float64{}); err != nil {
		t.Errorf("oneway to ghost: %v", err)
	}
}

func TestRemoteOnewayOrderedWithTwoWay(t *testing.T) {
	oa := NewObjectAdapter()
	obs := &observer{}
	if err := oa.Register("mon", observerInfo(t), obs); err != nil {
		t.Fatal(err)
	}
	if err := oa.Register("calc", calcInfo(t), calcImpl{}); err != nil {
		t.Fatal(err)
	}
	tr := &transport.InProc{}
	l, err := tr.Listen("oneway")
	if err != nil {
		t.Fatal(err)
	}
	srv := Serve(oa, l)
	defer srv.Stop()
	c, err := DialClient(tr, "oneway")
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	// Fire several oneways, then a two-way; on one connection the two-way
	// reply implies the earlier oneways were dispatched first.
	for i := int32(0); i < 5; i++ {
		if err := c.InvokeOneway("mon", "observe", i, []float64{float64(i)}); err != nil {
			t.Fatal(err)
		}
	}
	if _, err := c.Invoke("calc", "add", 1.0, 2.0); err != nil {
		t.Fatal(err)
	}
	if obs.count() != 5 {
		t.Errorf("observed %d before two-way reply, want 5", obs.count())
	}
}

func TestServerStopWithLiveConnections(t *testing.T) {
	// Stop must not hang while a client connection is still open.
	oa := NewObjectAdapter()
	if err := oa.Register("calc", calcInfo(t), calcImpl{}); err != nil {
		t.Fatal(err)
	}
	tr := &transport.InProc{}
	l, err := tr.Listen("stop-live")
	if err != nil {
		t.Fatal(err)
	}
	srv := Serve(oa, l)
	c, err := DialClient(tr, "stop-live")
	if err != nil {
		t.Fatal(err)
	}
	if _, err := c.Invoke("calc", "add", 1.0, 1.0); err != nil {
		t.Fatal(err)
	}
	done := make(chan struct{})
	go func() {
		srv.Stop() // must return even though c is still open
		close(done)
	}()
	select {
	case <-done:
	case <-time.After(5 * time.Second):
		t.Fatal("Stop hung with a live connection")
	}
	// Subsequent calls fail cleanly.
	if _, err := c.Invoke("calc", "add", 1.0, 1.0); err == nil {
		t.Error("invoke succeeded after server stop")
	}
	c.Close()
}

// withID prefixes a CDR body with a wire-v2 correlation header.
func withID(id uint64, body ...byte) []byte {
	f := make([]byte, frameHeader+len(body))
	binary.LittleEndian.PutUint64(f, id)
	copy(f[frameHeader:], body)
	return f
}

func TestServerSurvivesCorruptFrames(t *testing.T) {
	// Failure injection: garbage bodies behind valid correlation headers
	// must produce error replies (or, for oneway IDs, silence), never a
	// wedged server.
	oa := NewObjectAdapter()
	if err := oa.Register("calc", calcInfo(t), calcImpl{}); err != nil {
		t.Fatal(err)
	}
	tr := &transport.InProc{}
	l, err := tr.Listen("fuzz")
	if err != nil {
		t.Fatal(err)
	}
	srv := Serve(oa, l)
	defer srv.Stop()

	conn, err := tr.Dial("fuzz")
	if err != nil {
		t.Fatal(err)
	}
	defer conn.Close()
	frames := [][]byte{
		withID(1),                             // empty body
		withID(2, 0xFF, 0x01, 0x02),           // bad tag
		withID(0, tagBool, 1),                 // oneway ID, garbage body: no reply
		withID(3, tagInt32, 1, 2, 3, 4),       // key is not a string
		withID(4, tagString, 4, 0, 0, 0, 'c'), // truncated key string
		withID(5, tagString, 1, 0, 0, 0, 'x'), // key only, method missing
	}
	for i, f := range frames {
		if err := conn.Send(f); err != nil {
			t.Fatalf("frame %d send: %v", i, err)
		}
	}
	// Every frame with a nonzero ID produces an error reply carrying that
	// ID back; the oneway frame produces none. Replies may arrive in any
	// order (dispatch is concurrent), so collect them all.
	seen := map[uint64]bool{}
	for i := 0; i < 5; i++ {
		rep, err := conn.Recv()
		if err != nil {
			t.Fatalf("reply %d: %v", i, err)
		}
		id, _, body, ok := splitFrame(rep)
		if !ok || id == 0 {
			t.Fatalf("reply %d: bad frame header (id=%d ok=%v)", i, id, ok)
		}
		seen[id] = true
		if _, err := decodeReply(body); !errors.Is(err, ErrRemote) && !errors.Is(err, ErrDecode) {
			t.Errorf("reply id %d: err = %v", id, err)
		}
	}
	for id := uint64(1); id <= 5; id++ {
		if !seen[id] {
			t.Errorf("no reply for correlation ID %d", id)
		}
	}
	// The server still works after the abuse.
	c, err := DialClient(tr, "fuzz")
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	res, err := c.Invoke("calc", "add", 2.0, 2.0)
	if err != nil || res[0].(float64) != 4 {
		t.Errorf("post-fuzz invoke: %v, %v", res, err)
	}
}

func TestServerDropsHeaderlessConnection(t *testing.T) {
	// A frame too short to carry a correlation header cannot be answered;
	// the server must drop that connection without taking down the rest.
	oa := NewObjectAdapter()
	if err := oa.Register("calc", calcInfo(t), calcImpl{}); err != nil {
		t.Fatal(err)
	}
	tr := &transport.InProc{}
	l, err := tr.Listen("short")
	if err != nil {
		t.Fatal(err)
	}
	srv := Serve(oa, l)
	defer srv.Stop()

	conn, err := tr.Dial("short")
	if err != nil {
		t.Fatal(err)
	}
	if err := conn.Send([]byte{1, 2, 3}); err != nil {
		t.Fatal(err)
	}
	if _, err := conn.Recv(); !errors.Is(err, transport.ErrClosed) {
		t.Errorf("recv after short frame: err = %v, want ErrClosed", err)
	}
	conn.Close()

	c, err := DialClient(tr, "short")
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	if res, err := c.Invoke("calc", "add", 1.0, 1.0); err != nil || res[0].(float64) != 2 {
		t.Errorf("fresh connection after drop: %v, %v", res, err)
	}
}

func TestInternSurvivesGarbageFlood(t *testing.T) {
	// Regression: the intern table used to be a fill-once global map, so a
	// peer sending a few thousand distinct garbage identifiers permanently
	// disabled interning for every legitimate name. The direct-mapped cache
	// evicts on collision instead: after an arbitrary flood, a real name
	// re-interns on first use and subsequent lookups return the cached copy
	// allocation-free.
	for i := 0; i < 3*internSlots; i++ {
		intern([]byte(fmt.Sprintf("garbage.%d", i)))
	}
	name := []byte("esi.Solver.Apply")
	intern(name) // repopulate the slot the flood may have evicted
	if got := testing.AllocsPerRun(100, func() {
		if s := intern(name); s != "esi.Solver.Apply" {
			t.Fatalf("intern returned %q", s)
		}
	}); got != 0 {
		t.Errorf("interned lookup allocates %.1f/op after garbage flood; want 0", got)
	}
	// Oversized identifiers bypass the table entirely but still decode.
	long := bytes.Repeat([]byte("x"), maxInternLen+1)
	if s := intern(long); s != string(long) {
		t.Errorf("oversized intern returned %q", s)
	}
}
