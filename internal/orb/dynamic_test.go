package orb

// Tests for the DSI-style dynamic servant hook and the raw (undecoded)
// invocation path that the distributed collective port streams bulk chunks
// through.

import (
	"encoding/binary"
	"errors"
	"math"
	"strings"
	"testing"

	"repro/internal/transport"
)

// registerScaler registers a dynamic servant under key that answers:
//
//	scale(factor float64, n int32) -> []float64 of n elements i·factor,
//	  packed through Float64SliceSpan;
//	fail(msg string) -> error after encoding a partial result;
//	note(v int32) oneway -> recorded on ch.
func registerScaler(oa *ObjectAdapter, key string, ch chan int32) {
	oa.RegisterDynamic(key, func(method string, args []any, reply *Encoder) error {
		switch method {
		case "scale":
			f := args[0].(float64)
			n := int(args[1].(int32))
			span := reply.Float64SliceSpan(n)
			for i := 0; i < n; i++ {
				binary.LittleEndian.PutUint64(span[8*i:], math.Float64bits(f*float64(i)))
			}
			return nil
		case "fail":
			reply.Encode(int32(42)) //nolint:errcheck // partial result, must be discarded
			return errors.New(args[0].(string))
		case "note":
			if reply != nil {
				return errors.New("oneway got a reply encoder")
			}
			ch <- args[0].(int32)
			return nil
		default:
			return errors.New("no such method: " + method)
		}
	})
}

func dynServer(t *testing.T, tr transport.Transport, addr string) (*Server, chan int32) {
	t.Helper()
	oa := NewObjectAdapter()
	ch := make(chan int32, 8)
	registerScaler(oa, "dyn", ch)
	l, err := tr.Listen(addr)
	if err != nil {
		t.Fatal(err)
	}
	return Serve(oa, l), ch
}

func TestDynamicServantInvoke(t *testing.T) {
	tr := &transport.InProc{}
	srv, _ := dynServer(t, tr, "dyn-basic")
	defer srv.Stop()
	c, err := DialClient(tr, "dyn-basic")
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()

	res, err := c.Invoke("dyn", "scale", 2.5, int32(4))
	if err != nil {
		t.Fatal(err)
	}
	got, ok := res[0].([]float64)
	if !ok || len(got) != 4 {
		t.Fatalf("scale returned %#v", res)
	}
	for i, v := range got {
		if v != 2.5*float64(i) {
			t.Errorf("elem %d = %v", i, v)
		}
	}
}

func TestDynamicServantError(t *testing.T) {
	tr := &transport.InProc{}
	srv, _ := dynServer(t, tr, "dyn-err")
	defer srv.Stop()
	c, err := DialClient(tr, "dyn-err")
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()

	// Handler error must surface as ErrRemote carrying the message, and the
	// partially encoded result must not leak into the reply.
	res, err := c.Invoke("dyn", "fail", "boom")
	if !errors.Is(err, ErrRemote) || !strings.Contains(err.Error(), "boom") {
		t.Fatalf("err = %v, want remote boom", err)
	}
	if res != nil {
		t.Errorf("partial results leaked: %#v", res)
	}
	if _, err := c.Invoke("dyn", "nope"); !errors.Is(err, ErrRemote) {
		t.Errorf("unknown method err = %v", err)
	}
	// The connection stays usable after a servant error.
	if _, err := c.Invoke("dyn", "scale", 1.0, int32(1)); err != nil {
		t.Fatalf("call after error: %v", err)
	}
}

func TestDynamicServantOneway(t *testing.T) {
	tr := &transport.InProc{}
	srv, ch := dynServer(t, tr, "dyn-oneway")
	defer srv.Stop()
	c, err := DialClient(tr, "dyn-oneway")
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()

	if err := c.InvokeOneway("dyn", "note", int32(7)); err != nil {
		t.Fatal(err)
	}
	if got := <-ch; got != 7 {
		t.Errorf("oneway delivered %d", got)
	}
}

func TestFloat64SliceSpanRoundTrip(t *testing.T) {
	var e Encoder
	e.Encode("hdr") //nolint:errcheck
	span := e.Float64SliceSpan(3)
	want := []float64{1.5, -2.25, math.Inf(1)}
	for i, v := range want {
		binary.LittleEndian.PutUint64(span[8*i:], math.Float64bits(v))
	}
	e.Encode(int32(9)) //nolint:errcheck

	d := NewDecoder(e.Bytes())
	if s, err := d.DecodeString(); err != nil || s != "hdr" {
		t.Fatalf("header = %q, %v", s, err)
	}
	raw, err := d.RawFloat64s()
	if err != nil {
		t.Fatal(err)
	}
	if len(raw) != 24 {
		t.Fatalf("raw len = %d", len(raw))
	}
	for i, v := range want {
		if got := math.Float64frombits(binary.LittleEndian.Uint64(raw[8*i:])); got != v {
			t.Errorf("elem %d = %v, want %v", i, got, v)
		}
	}
	// The decoder must have advanced past the slice: the trailing int32 is
	// next.
	if v, err := d.Decode(); err != nil || v.(int32) != 9 {
		t.Errorf("trailer = %v, %v", v, err)
	}
	// RawFloat64s on a non-slice value is a decode error.
	d2 := NewDecoder(e.Bytes())
	if _, err := d2.RawFloat64s(); !errors.Is(err, ErrDecode) {
		t.Errorf("RawFloat64s on string = %v", err)
	}
}

func TestInvokeRaw(t *testing.T) {
	tr := &transport.InProc{}
	srv, _ := dynServer(t, tr, "dyn-raw")
	defer srv.Stop()
	c, err := DialClient(tr, "dyn-raw")
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()

	rep, err := c.InvokeRaw("dyn", "scale", 3.0, int32(5))
	if err != nil {
		t.Fatal(err)
	}
	raw, err := NewDecoder(rep.Results).RawFloat64s()
	if err != nil {
		t.Fatal(err)
	}
	if len(raw) != 40 {
		t.Fatalf("raw len = %d", len(raw))
	}
	for i := 0; i < 5; i++ {
		if got := math.Float64frombits(binary.LittleEndian.Uint64(raw[8*i:])); got != 3*float64(i) {
			t.Errorf("elem %d = %v", i, got)
		}
	}
	rep.Release()
	rep.Release() // double-release must be safe on the zero frame

	// Remote errors surface identically to the decoded path.
	if _, err := c.InvokeRaw("dyn", "fail", "raw-boom"); !errors.Is(err, ErrRemote) || !strings.Contains(err.Error(), "raw-boom") {
		t.Fatalf("raw err = %v", err)
	}
	var zero RawReply
	zero.Release() // no-op
}

func TestSupervisedInvokeRawRetriesAfterSever(t *testing.T) {
	inner := &transport.InProc{}
	tr := transport.NewFaulty(inner, transport.Faults{Seed: 11})
	srv, _ := dynServer(t, tr, "dyn-sup")
	defer srv.Stop()
	opts, states := fastOpts()
	s, err := DialSupervised(tr, "dyn-sup", opts)
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()

	ctx := t.Context()
	rep, err := s.InvokeRawContext(ctx, "dyn", "scale", 1.0, int32(2))
	if err != nil {
		t.Fatal(err)
	}
	rep.Release()

	tr.SeverAll()
	waitState(t, states, StateDegraded)
	// The idempotent raw call rides out the reconnect transparently.
	rep, err = s.InvokeRawContext(ctx, "dyn", "scale", 2.0, int32(3))
	if err != nil {
		t.Fatalf("post-sever raw call: %v", err)
	}
	defer rep.Release()
	raw, err := NewDecoder(rep.Results).RawFloat64s()
	if err != nil {
		t.Fatal(err)
	}
	if len(raw) != 24 {
		t.Fatalf("raw len = %d", len(raw))
	}
	waitState(t, states, StateHealthy)
}
