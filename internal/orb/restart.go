package orb

import (
	"fmt"
)

// Checkpoint replay wire detail: after a RestartPolicy relaunch, the
// supervisor replays the component's latest checkpoint as a single []byte
// argument to this reserved key/method on the fresh servant — before the
// connection is adopted, so no application call can race ahead of the
// restore. Servants opt in with RegisterRestore; the stream inside the
// bytes is the internal/ckpt wire format, opaque to the ORB.
const (
	RestoreKey    = "orb/restore"
	restoreMethod = "restore"
)

// RestartPolicy upgrades a Supervised client's Broken state from "shed
// until the peer resurfaces" to crash restart: relaunch a servant, redial,
// replay the latest checkpoint, resume. It is the supervision layer
// repairing the assembly rather than only reporting on it.
type RestartPolicy struct {
	// Relaunch starts (or locates) a replacement servant and returns the
	// address to redial — a single address or a comma-separated shard
	// list, which the supervisor resolves by the same rendezvous hash
	// DialAddr uses. attempt counts restarts within one outage, from 1.
	Relaunch func(attempt int) (addr string, err error)
	// Checkpoint returns the latest checkpoint to replay through
	// RestoreKey after the redial succeeds. Nil (or a nil return) skips
	// the replay: the servant restarts cold.
	Checkpoint func() []byte
	// MaxRestarts bounds Relaunch attempts per outage (default 3). When
	// exhausted the supervisor falls back to plain half-open probes of
	// the last address.
	MaxRestarts int
}

func (p *RestartPolicy) maxRestarts() int {
	if p == nil {
		return 0
	}
	if p.MaxRestarts <= 0 {
		return 3
	}
	return p.MaxRestarts
}

// RegisterRestore installs the restore handler on an adapter: fn receives
// the replayed checkpoint bytes (copied out of the pooled decode surface)
// and reconstructs the servant's state before any application call
// arrives. Register it on every adapter whose servants participate in a
// RestartPolicy.
func RegisterRestore(oa *ObjectAdapter, fn func(state []byte) error) {
	oa.RegisterDynamic(RestoreKey, func(method string, args []any, reply *Encoder) error {
		if method != restoreMethod {
			return fmt.Errorf("orb: restore object has no method %q", method)
		}
		if len(args) != 1 {
			return fmt.Errorf("orb: restore takes 1 argument, got %d", len(args))
		}
		state, ok := args[0].([]byte)
		if !ok {
			return fmt.Errorf("orb: restore argument is %T, not []byte", args[0])
		}
		// The decode surface is pooled; the handler owns nothing after
		// return, so hand fn a copy.
		if err := fn(append([]byte(nil), state...)); err != nil {
			return err
		}
		if reply != nil {
			reply.Encode(true)
		}
		return nil
	})
}

// restartLocked reports whether a restart sequence should run for the
// current outage. Caller holds s.mu.
func (s *Supervised) restartBudgetLeft() bool {
	p := s.opts.Restart
	return p != nil && s.restarts < p.maxRestarts()
}

// tryRestart runs one relaunch → redial → replay sequence. It returns the
// adopted-ready client, or nil and the step error when any step failed
// (the failure counts against the dial streak like any probe miss, and
// the error becomes the outage's reported cause).
func (s *Supervised) tryRestart() (*Client, error) {
	s.mu.Lock()
	s.restarts++
	attempt := s.restarts
	s.mu.Unlock()
	cSupRestarts.Inc()
	addr, err := s.opts.Restart.Relaunch(attempt)
	if err != nil {
		return nil, fmt.Errorf("orb: relaunch attempt %d: %w", attempt, err)
	}
	addr = PickShard(addr)
	c, err := DialClient(s.tr, addr)
	if err != nil {
		return nil, fmt.Errorf("orb: redial after relaunch: %w", err)
	}
	if ck := s.opts.Restart.Checkpoint; ck != nil {
		if state := ck(); len(state) > 0 {
			if _, err := c.Invoke(RestoreKey, restoreMethod, state); err != nil {
				c.Close()
				return nil, fmt.Errorf("orb: checkpoint replay: %w", err)
			}
			cSupRestores.Inc()
		}
	}
	// The relaunched servant may live at a new address; future redials
	// and heartbeats must follow it.
	s.mu.Lock()
	s.addr = addr
	s.mu.Unlock()
	return c, nil
}
