package orb

import (
	"fmt"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/obs"
	"repro/internal/par"
	"repro/internal/transport"
)

// dispatchCap bounds the two-way requests a server executes concurrently,
// sized from the shared par worker pool so remote dispatch cannot
// oversubscribe the machine the numeric kernels also run on. Dispatch slots
// are overlap slots, not CPU slots — a handler spends most of its life in
// transport I/O, not compute — so the cap runs well past the worker count,
// with a floor that keeps single-core hosts pipelining deep enough for the
// write coalescer to form full batches of replies.
func dispatchCap() int {
	c := 4 * par.Workers()
	if c < 32 {
		c = 32
	}
	return c
}

// ServeOptions configures a server's admission control and shutdown
// behavior. The zero value reproduces the classic Serve: unbounded
// admission (the blocking dispatch queue is the only backpressure) and a
// 5-second drain bound on Close.
type ServeOptions struct {
	// MaxInflight bounds two-way requests admitted but not yet replied
	// to (queued + executing), across all connections. Beyond it the
	// server sheds: the request is answered immediately with a typed
	// retryable ErrOverloaded reply instead of executing, keeping reply
	// tail latency flat while supervised clients back off. 0 means no
	// bound — the read loops block when the dispatch queue fills, which
	// back-pressures each connection instead of answering it.
	MaxInflight int
	// MaxPerKey bounds concurrently executing requests per servant key,
	// so one hot object cannot starve every other servant's dispatch
	// slots. 0 means no per-key bound.
	MaxPerKey int
	// DrainTimeout bounds how long Close waits for in-flight requests
	// before tearing connections down. 0 means 5s.
	DrainTimeout time.Duration
}

const defaultDrainTimeout = 5 * time.Second

// Shed causes, pre-built so the shed path does not allocate errors.
var (
	errShedQueue  = fmt.Errorf("%w: dispatch queue full", ErrOverloaded)
	errShedPerKey = fmt.Errorf("%w: per-key concurrency limit", ErrOverloaded)
	errShedDrain  = fmt.Errorf("%w: server draining", ErrOverloaded)
)

// Server serves object-adapter requests over a transport listener — the
// remote half of the distributed baseline and of distributed CCA port
// connections that choose ORB transport.
//
// Each connection is drained by one read loop. Oneway requests dispatch
// inline in that loop, preserving their ordering relative to every later
// request on the same connection. Two-way requests dispatch on a bounded
// worker set (dispatchCap, shared across connections) so many in-flight
// calls from a multiplexing client execute concurrently and one slow call
// cannot stall the pipeline; when the cap is reached the read loop blocks,
// which is the server's backpressure — unless ServeOptions enables
// admission control, in which case excess requests are shed with a typed
// retryable reply before they queue. Replies are written as handlers
// complete, in any order — the transport's write coalescer batches replies
// that complete within the same flush window into one writev. Replies
// carrying a shared payload (see Encoder.AppendSharedFloat64s) are spliced
// zero-copy, so N subscribers of the same cached epoch share one buffer.
type Server struct {
	OA       *ObjectAdapter
	opts     ServeOptions
	listener transport.Listener
	work     chan dispatchItem
	wg       sync.WaitGroup // accept loop + per-connection read loops
	workerWg sync.WaitGroup // dispatch workers
	mu       sync.Mutex
	stopped  bool
	conns    map[transport.Conn]struct{}

	inflight atomic.Int64 // admitted two-way requests not yet replied to
	draining atomic.Bool  // Close in progress: shed instead of admit
	perKey   sync.Map     // servant key → *atomic.Int64 executing count
}

// dispatchItem is one two-way request handed from a read loop to the
// dispatch workers. req is the pooled frame; the body follows its
// correlation+trace header. recvMono is the read loop's arrival clock for
// traced frames (0 otherwise) — the dispatch span turns it into queueing
// delay. keyCtr, when non-nil, is the per-key concurrency cell the worker
// must decrement after replying.
type dispatchItem struct {
	conn     transport.Conn
	id       uint64
	trace    uint64
	recvMono int64
	req      []byte
	keyCtr   *atomic.Int64
}

// Serve starts accepting connections on l, dispatching each request frame
// through the adapter. It returns immediately; Stop (or the graceful
// Close) shuts the server down. Admission control is off — see ServeWith.
func Serve(oa *ObjectAdapter, l transport.Listener) *Server {
	return ServeWith(oa, l, ServeOptions{})
}

// ServeWith is Serve with explicit admission-control and drain options.
func ServeWith(oa *ObjectAdapter, l transport.Listener, opts ServeOptions) *Server {
	qcap := dispatchCap()
	if opts.MaxInflight > qcap {
		// The queue must hold every admitted request, or enqueue would
		// block before the shed check ever fires.
		qcap = opts.MaxInflight
	}
	s := &Server{
		OA:       oa,
		opts:     opts,
		listener: l,
		work:     make(chan dispatchItem, qcap),
		conns:    map[transport.Conn]struct{}{},
	}
	// Persistent dispatch workers rather than a goroutine per request: a
	// handler runs through reflect with deep call frames, and a fresh
	// goroutine would regrow its stack for every request. Warm workers pay
	// that once.
	for i := 0; i < dispatchCap(); i++ {
		s.workerWg.Add(1)
		go func() {
			defer s.workerWg.Done()
			for it := range s.work {
				rep := s.OA.dispatchBody(it.req[frameHeader:], false, it.trace, it.recvMono)
				stampReply(rep, it.id, it.trace)
				// A write failure is connection-level; the read loop
				// observes it on its next Recv and tears the connection
				// down.
				if sp := rep.takeShared(); sp != nil {
					// Fan-out reply: splice the shared payload after the
					// per-request prefix without flattening it into the
					// encoder. The worker's reference (taken from the
					// encoder) outlives the send.
					transport.SendShared(it.conn, rep.Bytes(), sp) //nolint:errcheck
					sp.Release()
				} else {
					it.conn.Send(rep.Bytes()) //nolint:errcheck
				}
				PutEncoder(rep)
				transport.ReleaseFrame(it.req)
				if it.keyCtr != nil {
					it.keyCtr.Add(-1)
				}
				if n := s.inflight.Add(-1); obs.MetricsEnabled() {
					gServerInflight.Set(n)
				}
			}
		}()
	}
	s.wg.Add(1)
	go func() {
		defer s.wg.Done()
		for {
			conn, err := l.Accept()
			if err != nil {
				return
			}
			s.mu.Lock()
			if s.stopped {
				s.mu.Unlock()
				conn.Close()
				return
			}
			s.conns[conn] = struct{}{}
			s.mu.Unlock()
			s.wg.Add(1)
			go s.serveConn(conn)
		}
	}()
	return s
}

// serveConn is one connection's read loop.
func (s *Server) serveConn(conn transport.Conn) {
	defer s.wg.Done()
	defer func() {
		conn.Close()
		s.mu.Lock()
		delete(s.conns, conn)
		s.mu.Unlock()
	}()
	for {
		req, err := conn.Recv()
		if err != nil {
			return
		}
		id, trace, body, ok := splitFrame(req)
		if !ok {
			// No correlation header: there is no ID to answer on and the
			// stream can no longer be trusted; drop the connection.
			transport.ReleaseFrame(req)
			return
		}
		var recvMono int64
		if trace != 0 {
			// Clock the traced frame's arrival before it queues for a
			// dispatch slot; the dispatch span reports the gap as Queue.
			recvMono = obs.Mono()
		}
		if id == onewayID {
			if s.draining.Load() {
				// Oneways have no reply to shed onto; drop them.
				transport.ReleaseFrame(req)
				continue
			}
			if e := s.OA.dispatchBody(body, true, trace, recvMono); e != nil {
				PutEncoder(e) // defensive: oneway dispatch returns nil
			}
			transport.ReleaseFrame(req)
			continue
		}
		keyCtr, ok := s.admit(conn, id, trace, body)
		if !ok {
			transport.ReleaseFrame(req)
			continue
		}
		// Blocks when every worker is busy and the queue is full — the
		// server's backpressure (with MaxInflight set, the shed check in
		// admit fires first and this never blocks).
		s.work <- dispatchItem{conn: conn, id: id, trace: trace, recvMono: recvMono,
			req: req, keyCtr: keyCtr}
	}
}

// admit runs the admission checks for one two-way request, answering a
// typed retryable ErrOverloaded reply on the request's own correlation ID
// when it is shed. It reports whether the request may be dispatched; on
// true the inflight count (and the returned per-key cell, when non-nil)
// is already charged, and the dispatch worker un-charges both after
// replying.
func (s *Server) admit(conn transport.Conn, id, trace uint64, body []byte) (*atomic.Int64, bool) {
	if s.draining.Load() {
		s.shed(conn, id, trace, errShedDrain, cServerShedDrain)
		return nil, false
	}
	n := s.inflight.Add(1)
	if max := int64(s.opts.MaxInflight); max > 0 && n > max {
		s.inflight.Add(-1)
		s.shed(conn, id, trace, errShedQueue, cServerShedQueue)
		return nil, false
	}
	if obs.MetricsEnabled() {
		gServerInflight.Set(n)
	}
	ctr := s.keyCtrFor(body)
	if ctr != nil && ctr.Add(1) > int64(s.opts.MaxPerKey) {
		ctr.Add(-1)
		s.inflight.Add(-1)
		s.shed(conn, id, trace, errShedPerKey, cServerShedPerKey)
		return nil, false
	}
	return ctr, true
}

// keyCtrFor returns the per-key concurrency cell for the request body's
// servant key, or nil when per-key limiting is off or the key cannot be
// decoded (dispatch will answer the decode error). The key peek reuses
// the interned-string decode, so at steady state it costs one hash probe
// and no allocation.
func (s *Server) keyCtrFor(body []byte) *atomic.Int64 {
	if s.opts.MaxPerKey <= 0 {
		return nil
	}
	d := Decoder{buf: body}
	key, err := d.decodeStringInterned()
	if err != nil {
		return nil
	}
	if v, ok := s.perKey.Load(key); ok {
		return v.(*atomic.Int64)
	}
	v, _ := s.perKey.LoadOrStore(key, new(atomic.Int64))
	return v.(*atomic.Int64)
}

// shed answers a refused request immediately with the typed overload
// reply. The Send is best-effort — a dead connection surfaces on the read
// loop's next Recv.
func (s *Server) shed(conn transport.Conn, id, trace uint64, cause error, reason *obs.Counter) {
	cServerShed.Inc()
	reason.Inc()
	e := errReply(cause)
	stampReply(e, id, trace)
	conn.Send(e.Bytes()) //nolint:errcheck
	PutEncoder(e)
}

// Addr reports the served address.
func (s *Server) Addr() string { return s.listener.Addr() }

// Stop closes the listener and every live connection, waits for the read
// loops to exit, then drains and retires the dispatch workers. Clients with
// outstanding requests observe transport.ErrClosed; Close is the graceful
// variant.
func (s *Server) Stop() { s.shutdown(false) }

// Close gracefully drains the server: stop accepting connections, answer
// newly arriving requests with the typed retryable ErrOverloaded reply,
// wait (bounded by DrainTimeout) for every in-flight dispatch to finish
// and its reply to reach the socket, then tear down as Stop does. Clients
// see their outstanding calls complete instead of transport.ErrClosed.
func (s *Server) Close() { s.shutdown(true) }

func (s *Server) shutdown(graceful bool) {
	s.mu.Lock()
	if s.stopped {
		s.mu.Unlock()
		return
	}
	s.stopped = true
	conns := make([]transport.Conn, 0, len(s.conns))
	for c := range s.conns {
		conns = append(conns, c)
	}
	s.mu.Unlock()
	if graceful {
		s.draining.Store(true)
	}
	s.listener.Close()
	if graceful {
		// Read loops stay up through the drain so replies still flow and
		// late requests are shed rather than torn off.
		d := s.opts.DrainTimeout
		if d <= 0 {
			d = defaultDrainTimeout
		}
		deadline := time.Now().Add(d)
		for s.inflight.Load() > 0 && time.Now().Before(deadline) {
			time.Sleep(100 * time.Microsecond)
		}
		// Workers have handed their replies to the transport; wait for
		// buffered write sides to reach the socket before closing them.
		for _, c := range conns {
			if wd, ok := c.(transport.WriteDrainer); ok {
				wd.DrainWrites()
			}
		}
	}
	for _, c := range conns {
		c.Close()
	}
	s.wg.Wait()   // read loops done: no more producers for work
	close(s.work) // workers finish queued requests, then exit
	s.workerWg.Wait()
}
