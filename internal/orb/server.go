package orb

import (
	"sync"

	"repro/internal/obs"
	"repro/internal/par"
	"repro/internal/transport"
)

// dispatchCap bounds the two-way requests a server executes concurrently,
// sized from the shared par worker pool so remote dispatch cannot
// oversubscribe the machine the numeric kernels also run on. Dispatch slots
// are overlap slots, not CPU slots — a handler spends most of its life in
// transport I/O, not compute — so the cap runs well past the worker count,
// with a floor that keeps single-core hosts pipelining deep enough for the
// write coalescer to form full batches of replies.
func dispatchCap() int {
	c := 4 * par.Workers()
	if c < 32 {
		c = 32
	}
	return c
}

// Server serves object-adapter requests over a transport listener — the
// remote half of the distributed baseline and of distributed CCA port
// connections that choose ORB transport.
//
// Each connection is drained by one read loop. Oneway requests dispatch
// inline in that loop, preserving their ordering relative to every later
// request on the same connection. Two-way requests dispatch on a bounded
// worker set (dispatchCap, shared across connections) so many in-flight
// calls from a multiplexing client execute concurrently and one slow call
// cannot stall the pipeline; when the cap is reached the read loop blocks,
// which is the server's backpressure. Replies are written as handlers
// complete, in any order — the transport's write coalescer batches replies
// that complete within the same flush window into one writev.
type Server struct {
	OA       *ObjectAdapter
	listener transport.Listener
	work     chan dispatchItem
	wg       sync.WaitGroup // accept loop + per-connection read loops
	workerWg sync.WaitGroup // dispatch workers
	mu       sync.Mutex
	stopped  bool
	conns    map[transport.Conn]struct{}
}

// dispatchItem is one two-way request handed from a read loop to the
// dispatch workers. req is the pooled frame; the body follows its
// correlation+trace header. recvMono is the read loop's arrival clock for
// traced frames (0 otherwise) — the dispatch span turns it into queueing
// delay.
type dispatchItem struct {
	conn     transport.Conn
	id       uint64
	trace    uint64
	recvMono int64
	req      []byte
}

// Serve starts accepting connections on l, dispatching each request frame
// through the adapter. It returns immediately; Stop shuts the server down.
func Serve(oa *ObjectAdapter, l transport.Listener) *Server {
	s := &Server{
		OA:       oa,
		listener: l,
		work:     make(chan dispatchItem, dispatchCap()),
		conns:    map[transport.Conn]struct{}{},
	}
	// Persistent dispatch workers rather than a goroutine per request: a
	// handler runs through reflect with deep call frames, and a fresh
	// goroutine would regrow its stack for every request. Warm workers pay
	// that once.
	for i := 0; i < dispatchCap(); i++ {
		s.workerWg.Add(1)
		go func() {
			defer s.workerWg.Done()
			for it := range s.work {
				rep := s.OA.dispatchBody(it.req[frameHeader:], false, it.trace, it.recvMono)
				stampReply(rep, it.id, it.trace)
				// A write failure is connection-level; the read loop
				// observes it on its next Recv and tears the connection
				// down.
				it.conn.Send(rep.Bytes()) //nolint:errcheck
				PutEncoder(rep)
				transport.ReleaseFrame(it.req)
			}
		}()
	}
	s.wg.Add(1)
	go func() {
		defer s.wg.Done()
		for {
			conn, err := l.Accept()
			if err != nil {
				return
			}
			s.mu.Lock()
			if s.stopped {
				s.mu.Unlock()
				conn.Close()
				return
			}
			s.conns[conn] = struct{}{}
			s.mu.Unlock()
			s.wg.Add(1)
			go s.serveConn(conn)
		}
	}()
	return s
}

// serveConn is one connection's read loop.
func (s *Server) serveConn(conn transport.Conn) {
	defer s.wg.Done()
	defer func() {
		conn.Close()
		s.mu.Lock()
		delete(s.conns, conn)
		s.mu.Unlock()
	}()
	for {
		req, err := conn.Recv()
		if err != nil {
			return
		}
		id, trace, body, ok := splitFrame(req)
		if !ok {
			// No correlation header: there is no ID to answer on and the
			// stream can no longer be trusted; drop the connection.
			transport.ReleaseFrame(req)
			return
		}
		var recvMono int64
		if trace != 0 {
			// Clock the traced frame's arrival before it queues for a
			// dispatch slot; the dispatch span reports the gap as Queue.
			recvMono = obs.Mono()
		}
		if id == onewayID {
			if e := s.OA.dispatchBody(body, true, trace, recvMono); e != nil {
				PutEncoder(e) // defensive: oneway dispatch returns nil
			}
			transport.ReleaseFrame(req)
			continue
		}
		// Blocks when every worker is busy and the queue is full — the
		// server's backpressure.
		s.work <- dispatchItem{conn: conn, id: id, trace: trace, recvMono: recvMono, req: req}
	}
}

// Addr reports the served address.
func (s *Server) Addr() string { return s.listener.Addr() }

// Stop closes the listener and every live connection, waits for the read
// loops to exit, then drains and retires the dispatch workers. Clients with
// outstanding requests observe transport.ErrClosed.
func (s *Server) Stop() {
	s.mu.Lock()
	if s.stopped {
		s.mu.Unlock()
		return
	}
	s.stopped = true
	conns := make([]transport.Conn, 0, len(s.conns))
	for c := range s.conns {
		conns = append(conns, c)
	}
	s.mu.Unlock()
	s.listener.Close()
	for _, c := range conns {
		c.Close()
	}
	s.wg.Wait()   // read loops done: no more producers for work
	close(s.work) // workers finish queued requests, then exit
	s.workerWg.Wait()
}
