package orb

// Lifecycle audit tests: every goroutine and pooled resource started by
// the remote path must be released by Close/Stop. The audit points are
// Client.Close (stops the demux goroutine), tcpConn.Close (terminates the
// leader flush), Server.Stop (drains the dispatch pool), and
// Supervised.Close (stops watcher, redial, and heartbeat goroutines).

import (
	"context"
	"fmt"
	"runtime"
	"testing"
	"time"

	"repro/internal/transport"
)

// goroutineBaseline samples the current goroutine count after a settle.
func goroutineBaseline() int {
	runtime.GC()
	time.Sleep(10 * time.Millisecond)
	return runtime.NumGoroutine()
}

// assertGoroutinesReturn waits for the goroutine count to come back to
// (near) base; the slack absorbs runtime-internal goroutines.
func assertGoroutinesReturn(t *testing.T, base int) {
	t.Helper()
	deadline := time.Now().Add(5 * time.Second)
	var n int
	for time.Now().Before(deadline) {
		runtime.GC()
		n = runtime.NumGoroutine()
		if n <= base+3 {
			return
		}
		time.Sleep(5 * time.Millisecond)
	}
	buf := make([]byte, 1<<20)
	t.Fatalf("goroutines leaked: %d at start, %d after close\n%s",
		base, n, buf[:runtime.Stack(buf, true)])
}

// TestLifecycleClientServerChurn opens and closes many client/server pairs
// and asserts the goroutine count returns to baseline: no demux, flush,
// accept, serve, or dispatch goroutine survives its owner.
func TestLifecycleClientServerChurn(t *testing.T) {
	const pairs = 1000
	oa := NewObjectAdapter()
	if err := oa.Register("calc", calcInfo(t), calcImpl{}); err != nil {
		t.Fatal(err)
	}
	for _, tc := range []struct {
		name string
		tr   transport.Transport
		addr string
	}{
		{"inproc", &transport.InProc{}, "churn"},
		{"tcp", transport.TCP{}, "127.0.0.1:0"},
	} {
		t.Run(tc.name, func(t *testing.T) {
			n := pairs
			if tc.name == "tcp" && testing.Short() {
				n = 100
			}
			// Warm-up cycle: the first dispatch lazily starts process-wide
			// singletons (the par worker pool) that are not per-connection
			// resources and never shut down; spin them up before baselining.
			{
				l, err := tc.tr.Listen(tc.addr)
				if err != nil {
					t.Fatal(err)
				}
				srv := Serve(oa, l)
				c, err := DialClient(tc.tr, srv.Addr())
				if err != nil {
					srv.Stop()
					t.Fatal(err)
				}
				if _, err := c.Invoke("calc", "add", 1.0, 2.0); err != nil {
					t.Fatal(err)
				}
				c.Close()
				srv.Stop()
			}
			base := goroutineBaseline()
			for i := 0; i < n; i++ {
				l, err := tc.tr.Listen(tc.addr)
				if err != nil {
					t.Fatal(err)
				}
				srv := Serve(oa, l)
				c, err := DialClient(tc.tr, srv.Addr())
				if err != nil {
					srv.Stop()
					t.Fatal(err)
				}
				if i%10 == 0 { // exercise the dispatch pool on a sample
					if _, err := c.Invoke("calc", "add", 1.0, 2.0); err != nil {
						t.Fatal(err)
					}
				}
				c.Close()
				srv.Stop()
			}
			assertGoroutinesReturn(t, base)
		})
	}
}

// TestLifecycleSupervisedChurn opens and closes supervised clients —
// including ones mid-redial and with heartbeats running — and asserts all
// supervision goroutines die with Close.
func TestLifecycleSupervisedChurn(t *testing.T) {
	oa := NewObjectAdapter()
	if err := oa.Register("calc", calcInfo(t), calcImpl{}); err != nil {
		t.Fatal(err)
	}
	tr := &transport.InProc{}
	l, err := tr.Listen("sup-churn")
	if err != nil {
		t.Fatal(err)
	}
	srv := Serve(oa, l)
	defer srv.Stop()

	base := goroutineBaseline()
	for i := 0; i < 300; i++ {
		opts := SupervisorOptions{
			RetryBase:  time.Millisecond,
			RetryCap:   5 * time.Millisecond,
			Heartbeat:  2 * time.Millisecond,
			Idempotent: AllIdempotent,
		}
		s, err := DialSupervised(tr, "sup-churn", opts)
		if err != nil {
			t.Fatal(err)
		}
		if i%3 == 0 {
			// Close while degraded: the redial loop must stop too.
			s.mu.Lock()
			c := s.cur
			s.mu.Unlock()
			if c != nil {
				c.Close()
			}
		} else if i%3 == 1 {
			if _, err := s.Invoke("calc", "add", 1.0, 1.0); err != nil {
				t.Fatal(err)
			}
		}
		s.Close()
	}
	assertGoroutinesReturn(t, base)
}

// TestLifecycleServerDrainsDispatch confirms Server.Stop waits for
// in-flight dispatches instead of abandoning them.
func TestLifecycleServerDrainsDispatch(t *testing.T) {
	oa := NewObjectAdapter()
	impl := &slowImpl{release: make(chan struct{}), started: make(chan struct{}, 1)}
	if err := oa.Register("slow", slowInfo(t), impl); err != nil {
		t.Fatal(err)
	}
	tr := &transport.InProc{}
	l, err := tr.Listen("drain")
	if err != nil {
		t.Fatal(err)
	}
	srv := Serve(oa, l)
	c, err := DialClient(tr, "drain")
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()

	done := make(chan error, 1)
	go func() {
		_, err := c.Invoke("slow", "wait", 1.0)
		done <- err
	}()
	<-impl.started // the dispatch is in flight

	stopped := make(chan struct{})
	go func() {
		srv.Stop()
		close(stopped)
	}()
	select {
	case <-stopped:
		t.Fatal("Stop returned while a dispatch was still running")
	case <-time.After(20 * time.Millisecond):
	}
	close(impl.release)
	select {
	case <-stopped:
	case <-time.After(5 * time.Second):
		t.Fatal("Stop did not return after the dispatch finished")
	}
	if err := <-done; err != nil {
		// The reply may lose the race with connection teardown; either a
		// delivered reply or a connection error is acceptable, a hang is not.
		t.Logf("in-flight call during Stop: %v", err)
	}
}

// TestLateReplyNeverReachesRecycledChannel is the regression test for the
// completion-channel recycling protocol: a reply that arrives after its
// call was forgotten (timeout) must be discarded, never delivered to a
// channel that a new call has since checked out of the pool. Interleaved
// tiny-deadline and normal calls against a slow servant maximize the
// chance of a protocol hole delivering a stale tag to the wrong caller.
func TestLateReplyNeverReachesRecycledChannel(t *testing.T) {
	oa := NewObjectAdapter()
	impl := &slowImpl{release: make(chan struct{}), started: make(chan struct{}, 1024)}
	if err := oa.Register("slow", slowInfo(t), impl); err != nil {
		t.Fatal(err)
	}
	close(impl.release) // wait() returns immediately; latency comes from load
	eachORBTransport(t, oa, func(t *testing.T, _ *Server, c *Client) {
		const goroutines, rounds = 8, 200
		errs := make(chan error, goroutines)
		for g := 0; g < goroutines; g++ {
			go func(g int) {
				for i := 0; i < rounds; i++ {
					tag := float64(g*rounds + i)
					if i%2 == 0 {
						// A deadline so small most calls are abandoned with
						// the reply still in flight.
						ctx, cancel := context.WithTimeout(context.Background(), 50*time.Microsecond)
						res, err := c.InvokeContext(ctx, "slow", "wait", tag)
						cancel()
						if err == nil && res[0].(float64) != tag {
							errs <- fmt.Errorf("tiny-deadline call got tag %v, want %v", res[0], tag)
							return
						}
					} else {
						res, err := c.Invoke("slow", "wait", tag)
						if err != nil {
							errs <- fmt.Errorf("normal call: %w", err)
							return
						}
						if res[0].(float64) != tag {
							errs <- fmt.Errorf("call got tag %v, want %v — a late reply "+
								"reached a recycled channel", res[0], tag)
							return
						}
					}
				}
				errs <- nil
			}(g)
		}
		for g := 0; g < goroutines; g++ {
			if err := <-errs; err != nil {
				t.Fatal(err)
			}
		}
		// Give stragglers (replies to forgotten calls) time to drain, then
		// confirm the pending-call table is empty: nothing leaked.
		deadline := time.Now().Add(2 * time.Second)
		for {
			c.mu.Lock()
			n := len(c.calls)
			c.mu.Unlock()
			if n == 0 {
				break
			}
			if time.Now().After(deadline) {
				t.Fatalf("%d calls still pending after all callers returned", n)
			}
			time.Sleep(time.Millisecond)
		}
	})
}
