package orb

// Tests for the crash-restart half of supervision: RestartPolicy relaunch +
// checkpoint replay through the reserved orb/restore key, the per-outage
// restart budget, and heartbeat suppression while the breaker is open.

import (
	"errors"
	"fmt"
	"sync"
	"testing"
	"time"

	"repro/internal/obs"
	"repro/internal/transport"
)

// counterServer serves a one-value store whose state a restart must carry:
// "set"/"get" mutate and read it, RegisterRestore replays it.
type counterServer struct {
	srv *Server
	mu  sync.Mutex
	val int64
}

func startCounterServer(t *testing.T, tr transport.Transport, addr string) *counterServer {
	t.Helper()
	c := &counterServer{}
	oa := NewObjectAdapter()
	oa.RegisterDynamic("counter", func(method string, args []any, reply *Encoder) error {
		c.mu.Lock()
		defer c.mu.Unlock()
		switch method {
		case "set":
			c.val = args[0].(int64)
			return reply.Encode(true)
		case "get":
			return reply.Encode(c.val)
		default:
			return errors.New("no such method: " + method)
		}
	})
	RegisterRestore(oa, func(state []byte) error {
		if len(state) != 8 {
			return fmt.Errorf("restore state is %d bytes", len(state))
		}
		v := int64(0)
		for i := 7; i >= 0; i-- {
			v = v<<8 | int64(state[i])
		}
		c.mu.Lock()
		c.val = v
		c.mu.Unlock()
		return nil
	})
	l, err := tr.Listen(addr)
	if err != nil {
		t.Fatalf("listen %s: %v", addr, err)
	}
	c.srv = Serve(oa, l)
	return c
}

func encodeVal(v int64) []byte {
	b := make([]byte, 8)
	for i := 0; i < 8; i++ {
		b[i] = byte(v >> (8 * i))
	}
	return b
}

func TestRestartPolicyRelaunchesAndReplays(t *testing.T) {
	tr := &transport.InProc{}
	first := startCounterServer(t, tr, "restart-0")

	var mu sync.Mutex
	var relaunches int
	opts, states := fastOpts()
	opts.CallTimeout = 100 * time.Millisecond
	opts.Restart = &RestartPolicy{
		Relaunch: func(attempt int) (string, error) {
			mu.Lock()
			relaunches++
			n := relaunches
			mu.Unlock()
			addr := fmt.Sprintf("restart-%d", n)
			startCounterServer(t, tr, addr)
			return addr, nil
		},
		Checkpoint: func() []byte { return encodeVal(41) },
	}
	before := obs.Default.Snapshot().Counters
	s, err := DialSupervised(tr, "restart-0", opts)
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	if _, err := s.Invoke("counter", "set", int64(41)); err != nil {
		t.Fatal(err)
	}

	// Kill the only incarnation: redial probes fail, the breaker opens, and
	// the restart policy takes over.
	first.srv.Stop()
	waitState(t, states, StateBroken)
	waitState(t, states, StateHealthy)

	// The relaunched servant must hold the replayed state, not a cold zero.
	res, err := s.Invoke("counter", "get")
	if err != nil {
		t.Fatal(err)
	}
	if got := res[0].(int64); got != 41 {
		t.Errorf("value after restart = %d, want 41 (checkpoint replayed)", got)
	}
	mu.Lock()
	r := relaunches
	mu.Unlock()
	if r == 0 {
		t.Error("restart policy never invoked")
	}
	if got := s.Addr(); got == "restart-0" {
		t.Error("Addr still reports the dead incarnation")
	}
	after := obs.Default.Snapshot().Counters
	if d := after["orb.supervised.restarts"] - before["orb.supervised.restarts"]; d == 0 {
		t.Error("restarts counter did not grow")
	}
	if d := after["orb.supervised.restore_replays"] - before["orb.supervised.restore_replays"]; d == 0 {
		t.Error("restore_replays counter did not grow")
	}
}

func TestRestartColdWithoutCheckpoint(t *testing.T) {
	// No Checkpoint hook: the relaunched servant comes up cold, and no
	// replay is counted — restart still repairs the connection.
	tr := &transport.InProc{}
	first := startCounterServer(t, tr, "restart-cold-0")
	opts, states := fastOpts()
	opts.Restart = &RestartPolicy{
		Relaunch: func(int) (string, error) {
			startCounterServer(t, tr, "restart-cold-1")
			return "restart-cold-1", nil
		},
	}
	before := obs.Default.Snapshot().Counters
	s, err := DialSupervised(tr, "restart-cold-0", opts)
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	if _, err := s.Invoke("counter", "set", int64(7)); err != nil {
		t.Fatal(err)
	}
	first.srv.Stop()
	waitState(t, states, StateBroken)
	waitState(t, states, StateHealthy)
	res, err := s.Invoke("counter", "get")
	if err != nil {
		t.Fatal(err)
	}
	if got := res[0].(int64); got != 0 {
		t.Errorf("cold restart value = %d, want 0", got)
	}
	after := obs.Default.Snapshot().Counters
	if d := after["orb.supervised.restore_replays"] - before["orb.supervised.restore_replays"]; d != 0 {
		t.Errorf("replay counted without a checkpoint: %d", d)
	}
}

func TestRestartBudgetFallsBackToProbes(t *testing.T) {
	// Every relaunch fails: after MaxRestarts the supervisor must fall back
	// to plain half-open probes of the last address — which succeed once
	// the original server returns.
	tr := &transport.InProc{}
	stop, restart := calcServer(t, tr, "restart-budget")
	var mu sync.Mutex
	attempts := 0
	opts, states := fastOpts()
	opts.Restart = &RestartPolicy{
		MaxRestarts: 2,
		Relaunch: func(int) (string, error) {
			mu.Lock()
			attempts++
			mu.Unlock()
			return "", errors.New("no capacity")
		},
	}
	s, err := DialSupervised(tr, "restart-budget", opts)
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	stop()
	waitState(t, states, StateBroken)
	// Give the budget time to exhaust, then resurrect the original address.
	deadline := time.Now().Add(2 * time.Second)
	for {
		mu.Lock()
		a := attempts
		mu.Unlock()
		if a >= 2 {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("relaunch attempts = %d, want 2", a)
		}
		time.Sleep(time.Millisecond)
	}
	restart()
	waitState(t, states, StateHealthy)
	mu.Lock()
	a := attempts
	mu.Unlock()
	if a != 2 {
		t.Errorf("relaunch attempts = %d, want exactly MaxRestarts=2", a)
	}
	if _, err := s.Invoke("calc", "add", 1.0, 2.0); err != nil {
		t.Fatalf("call after fallback recovery: %v", err)
	}
}

func TestRestartBudgetResetsPerOutage(t *testing.T) {
	// The budget is per outage, not per connection lifetime: a second crash
	// gets a fresh MaxRestarts allowance.
	tr := &transport.InProc{}
	cur := startCounterServer(t, tr, "restart-again-0")
	var mu sync.Mutex
	gen := 0
	var servers []*counterServer
	opts, states := fastOpts()
	opts.Restart = &RestartPolicy{
		MaxRestarts: 1,
		Relaunch: func(int) (string, error) {
			mu.Lock()
			gen++
			addr := fmt.Sprintf("restart-again-%d", gen)
			mu.Unlock()
			next := startCounterServer(t, tr, addr)
			mu.Lock()
			servers = append(servers, next)
			mu.Unlock()
			return addr, nil
		},
	}
	s, err := DialSupervised(tr, "restart-again-0", opts)
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()

	cur.srv.Stop()
	waitState(t, states, StateBroken)
	waitState(t, states, StateHealthy)

	// Second outage: kill the relaunched incarnation.
	mu.Lock()
	second := servers[len(servers)-1]
	mu.Unlock()
	second.srv.Stop()
	waitState(t, states, StateBroken)
	waitState(t, states, StateHealthy)
	if _, err := s.Invoke("counter", "get"); err != nil {
		t.Fatalf("call after second restart: %v", err)
	}
	mu.Lock()
	g := gen
	mu.Unlock()
	if g < 2 {
		t.Errorf("relaunches = %d, want one per outage", g)
	}
}

func TestHeartbeatSuppressedWhileBrokerOpen(t *testing.T) {
	tr := &transport.InProc{}
	stop, restart := calcServer(t, tr, "hb-suppress")
	opts, states := fastOpts()
	opts.Heartbeat = 2 * time.Millisecond
	s, err := DialSupervised(tr, "hb-suppress", opts)
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	if _, err := s.Invoke("calc", "add", 1.0, 1.0); err != nil {
		t.Fatal(err)
	}

	stop()
	waitState(t, states, StateBroken)
	before := obs.Default.Snapshot().Counters
	// While the circuit stays open, ticks keep firing and every one must be
	// withheld and counted rather than pinging the dead peer.
	deadline := time.Now().Add(2 * time.Second)
	for {
		now := obs.Default.Snapshot().Counters
		if now["orb.supervised.heartbeats_suppressed"]-before["orb.supervised.heartbeats_suppressed"] >= 3 {
			break
		}
		if time.Now().After(deadline) {
			t.Fatal("heartbeats_suppressed never grew while broken")
		}
		time.Sleep(time.Millisecond)
	}

	// Recovery ends the suppression: the connection heals and calls flow.
	restart()
	waitState(t, states, StateHealthy)
	if _, err := s.Invoke("calc", "add", 2.0, 2.0); err != nil {
		t.Fatalf("call after recovery: %v", err)
	}
}
