package orb

import (
	"path/filepath"
	"runtime"
	"testing"

	"repro/internal/sidl/arena"
	"repro/internal/transport"
)

// Steady-state allocation tests for the InvokeArena path: after warmup,
// a full remote round trip — encode, send, server receive, arena decode,
// CallSink dispatch, reply encode, send, client receive, arena decode —
// must allocate nothing on either side. Client and server share the
// process here, so testing.AllocsPerRun charges BOTH sides to the
// measured figure; 0 means the whole loop is clean, not just the client.

func newRemoteCalc(t *testing.T, tr transport.Transport, addr string) *Client {
	t.Helper()
	oa := NewObjectAdapter()
	if err := oa.Register("calc", calcInfo(t), calcImpl{}); err != nil {
		t.Fatal(err)
	}
	l, err := tr.Listen(addr)
	if err != nil {
		t.Fatal(err)
	}
	srv := Serve(oa, l)
	t.Cleanup(srv.Stop)
	c, err := DialClient(tr, l.Addr())
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { c.Close() })
	return c
}

func eachZeroAllocTransport(t *testing.T, f func(t *testing.T, c *Client)) {
	t.Helper()
	t.Run("inproc", func(t *testing.T) { f(t, newRemoteCalc(t, &transport.InProc{}, "za")) })
	t.Run("shm", func(t *testing.T) { f(t, newRemoteCalc(t, transport.SHM{}, filepath.Join(t.TempDir(), "ep"))) })
}

func measureZeroAlloc(t *testing.T, c *Client, args []any, check func(t *testing.T, out []any)) {
	t.Helper()
	ar := new(arena.Arena)
	out := make([]any, 0, 4)
	call := func() []any {
		ar.Reset()
		var err error
		out, err = c.InvokeArena(ar, out[:0], "calc", "add", args)
		if err != nil {
			t.Fatal(err)
		}
		return out
	}
	// Warm every pool on both sides (encoders, frames, reply channels,
	// arenas, sinks), then settle the pools' GC generation so a collection
	// during measurement finds them in the victim cache, not empty.
	for i := 0; i < 50; i++ {
		check(t, call())
	}
	if raceEnabled {
		t.Skip("allocation counts are unmeasurable under the race runtime")
	}
	runtime.GC()
	if n := testing.AllocsPerRun(200, func() { call() }); n != 0 {
		t.Fatalf("steady-state allocs/op = %v, want 0", n)
	}
	check(t, call())
}

func TestInvokeArenaZeroAllocScalar(t *testing.T) {
	args := []any{2.5, 3.25} // boxed once, outside the measured loop
	eachZeroAllocTransport(t, func(t *testing.T, c *Client) {
		measureZeroAlloc(t, c, args, func(t *testing.T, out []any) {
			if len(out) != 1 || out[0].(float64) != 5.75 {
				t.Fatalf("out = %v", out)
			}
		})
	})
}

func TestInvokeArenaZeroAllocSlice(t *testing.T) {
	// Slice argument: exercises the arena's []float64 decode on the
	// server (tagFloat64Slice) and the SIMD pack on the client encode.
	xs := make([]float64, 1024)
	var want float64
	for i := range xs {
		xs[i] = float64(i%7) * 0.5
		want += xs[i]
	}
	eachZeroAllocTransport(t, func(t *testing.T, c *Client) {
		ar := new(arena.Arena)
		out := make([]any, 0, 4)
		args := []any{xs}
		call := func() {
			ar.Reset()
			var err error
			out, err = c.InvokeArena(ar, out[:0], "calc", "sum", args)
			if err != nil {
				t.Fatal(err)
			}
			if len(out) != 1 || out[0].(float64) != want {
				t.Fatalf("out = %v, want [%v]", out, want)
			}
		}
		for i := 0; i < 50; i++ {
			call()
		}
		if raceEnabled {
			t.Skip("allocation counts are unmeasurable under the race runtime")
		}
		runtime.GC()
		if n := testing.AllocsPerRun(200, call); n != 0 {
			t.Fatalf("steady-state allocs/op = %v, want 0", n)
		}
	})
}

func TestInvokeArenaZeroAllocString(t *testing.T) {
	// String round trip: arena-backed argument decode and an arena-backed
	// result string on the client (the servant's "hello "+who concat is a
	// real allocation the server pays; strings stay off the floor here by
	// design decision, so this test asserts correctness plus a low bound
	// rather than zero).
	eachZeroAllocTransport(t, func(t *testing.T, c *Client) {
		ar := new(arena.Arena)
		out := make([]any, 0, 4)
		args := []any{"world"}
		call := func() {
			ar.Reset()
			var err error
			out, err = c.InvokeArena(ar, out[:0], "calc", "greet", args)
			if err != nil {
				t.Fatal(err)
			}
			if len(out) != 1 || out[0].(string) != "hello world" {
				t.Fatalf("out = %v", out)
			}
		}
		for i := 0; i < 50; i++ {
			call()
		}
		if raceEnabled {
			t.Skip("allocation counts are unmeasurable under the race runtime")
		}
		runtime.GC()
		// One concat in the servant, nothing else.
		if n := testing.AllocsPerRun(200, call); n > 1 {
			t.Fatalf("steady-state allocs/op = %v, want <= 1", n)
		}
	})
}
