package orb

// Golden wire-format vectors: byte-exact fixtures for the v2 frame layout
// (correlation ID + trace ID + CDR body) and the CDR encodings themselves.
// These bytes are the protocol contract between client and server builds —
// if any of these tests fail, the wire format changed, and every deployed
// peer speaking the old format breaks. Regenerate the fixtures with
//
//	go test ./internal/orb -run Golden -update-golden
//
// ONLY when the change is intentional and called out as a protocol bump.

import (
	"bytes"
	"encoding/hex"
	"errors"
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

var updateGolden = flag.Bool("update-golden", false, "rewrite golden wire-format fixtures")

// goldenVectors enumerates every pinned encoding. The builder functions
// copy their bytes out of pooled encoders before releasing them.
func goldenVectors(t *testing.T) []struct {
	name  string
	bytes []byte
} {
	t.Helper()
	fromEncoder := func(e *Encoder, err error) []byte {
		if err != nil {
			t.Fatal(err)
		}
		out := append([]byte(nil), e.Bytes()...)
		PutEncoder(e)
		return out
	}
	okReply := func(id, trace uint64, results ...any) []byte {
		e := newReply()
		e.Encode(true) //nolint:errcheck
		for _, r := range results {
			if err := e.Encode(r); err != nil {
				t.Fatal(err)
			}
		}
		stampReply(e, id, trace)
		out := append([]byte(nil), e.Bytes()...)
		PutEncoder(e)
		return out
	}
	errReplyBytes := func(id, trace uint64, msg string) []byte {
		e := errReply(errors.New(msg))
		stampReply(e, id, trace)
		out := append([]byte(nil), e.Bytes()...)
		PutEncoder(e)
		return out
	}
	cdr := func(vals ...any) []byte {
		b, err := EncodeAll(vals...)
		if err != nil {
			t.Fatal(err)
		}
		return b
	}
	return []struct {
		name  string
		bytes []byte
	}{
		// v2 frames: correlation ID, trace ID, body. The request header
		// bytes are little-endian, so the fixture pins endianness too.
		{"request_twoway", fromEncoder(encodeRequest(
			0x0102030405060708, 0x1112131415161718, "calc", "add",
			[]any{1.5, int32(-2)}))},
		{"request_untraced", fromEncoder(encodeRequest(
			42, 0, "op/A", "apply", []any{[]float64{1, 2, 3.5}, []float64{0, 0, 0}}))},
		// Oneway: reserved correlation ID 0 — the supervisor heartbeat is
		// the canonical producer.
		{"request_oneway_ping", fromEncoder(encodeRequest(
			onewayID, 0, "orb/supervisor", "ping", nil))},
		{"reply_ok", okReply(9, 7, []float64{2, 4, 7})},
		{"reply_error", errReplyBytes(3, 0, "orb: no such object: \"ghost\"")},
		// CDR value streams: every primitive tag, and the rank-1 arrays.
		{"cdr_primitives", cdr(nil, true, false, int32(-7), int64(1<<40),
			int(-99), 3.14, complex(1, -2), "hello", []byte{1, 2, 3})},
		{"cdr_arrays", cdr([]float64{1, 2, 3.5}, []int32{-1, 0, 1},
			[]string{"a", "", "c"})},
		// Identifier strings (interned on decode): interning is a decoder
		// optimization and must leave the wire bytes identical to a plain
		// tagged string.
		{"cdr_interned_names", cdr("calc", "add", "calc", "add")},
	}
}

func goldenPath(name string) string {
	return filepath.Join("testdata", "golden", name+".hex")
}

// readGolden parses a fixture: hex with arbitrary whitespace and
// line comments starting with '#'.
func readGolden(t *testing.T, name string) []byte {
	t.Helper()
	raw, err := os.ReadFile(goldenPath(name))
	if err != nil {
		t.Fatalf("missing golden fixture (run with -update-golden to create): %v", err)
	}
	var sb strings.Builder
	for _, line := range strings.Split(string(raw), "\n") {
		if i := strings.IndexByte(line, '#'); i >= 0 {
			line = line[:i]
		}
		sb.WriteString(strings.Map(func(r rune) rune {
			if r == ' ' || r == '\t' || r == '\r' {
				return -1
			}
			return r
		}, line))
	}
	b, err := hex.DecodeString(sb.String())
	if err != nil {
		t.Fatalf("corrupt golden fixture %s: %v", name, err)
	}
	return b
}

// writeGolden renders bytes as commented hex: the 16-byte frame header (when
// present) on its own line, then 16-byte rows.
func writeGolden(t *testing.T, name string, b []byte) {
	t.Helper()
	var sb strings.Builder
	fmt.Fprintf(&sb, "# golden wire vector %q — regenerate only on an intentional protocol bump\n", name)
	for i := 0; i < len(b); i += 16 {
		end := i + 16
		if end > len(b) {
			end = len(b)
		}
		fmt.Fprintf(&sb, "%x\n", b[i:end])
	}
	if err := os.MkdirAll(filepath.Dir(goldenPath(name)), 0o755); err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(goldenPath(name), []byte(sb.String()), 0o644); err != nil {
		t.Fatal(err)
	}
}

// TestGoldenWireVectors is the regression gate: today's encoders must
// produce byte-identical output to the checked-in fixtures.
func TestGoldenWireVectors(t *testing.T) {
	for _, v := range goldenVectors(t) {
		t.Run(v.name, func(t *testing.T) {
			if *updateGolden {
				writeGolden(t, v.name, v.bytes)
				return
			}
			want := readGolden(t, v.name)
			if !bytes.Equal(v.bytes, want) {
				t.Fatalf("wire format changed for %s:\n got %x\nwant %x\n"+
					"If intentional, regenerate with -update-golden and call out the protocol bump.",
					v.name, v.bytes, want)
			}
		})
	}
}

// TestGoldenFramesStillParse decodes the fixtures through the real paths:
// the pinned bytes are not just stable, they still mean what they meant.
func TestGoldenFramesStillParse(t *testing.T) {
	if *updateGolden {
		t.Skip("fixtures being rewritten")
	}
	// Two-way request: header fields and body identifiers.
	id, trace, body, ok := splitFrame(readGolden(t, "request_twoway"))
	if !ok || id != 0x0102030405060708 || trace != 0x1112131415161718 {
		t.Fatalf("request header: id=%x trace=%x ok=%v", id, trace, ok)
	}
	d := NewDecoder(body)
	if key, err := d.decodeStringInterned(); err != nil || key != "calc" {
		t.Fatalf("key = %q, %v", key, err)
	}
	if m, err := d.decodeStringInterned(); err != nil || m != "add" {
		t.Fatalf("method = %q, %v", m, err)
	}
	// Oneway ping: reserved ID 0, untraced.
	id, trace, _, ok = splitFrame(readGolden(t, "request_oneway_ping"))
	if !ok || id != onewayID || trace != 0 {
		t.Fatalf("oneway header: id=%d trace=%d ok=%v", id, trace, ok)
	}
	// Success reply round trip.
	_, _, body, ok = splitFrame(readGolden(t, "reply_ok"))
	if !ok {
		t.Fatal("reply_ok: short frame")
	}
	res, err := decodeReply(body)
	if err != nil || len(res) != 1 {
		t.Fatalf("reply_ok decode: %v %v", res, err)
	}
	if v := res[0].([]float64); len(v) != 3 || v[2] != 7 {
		t.Fatalf("reply_ok payload = %v", v)
	}
	// Error reply surfaces ErrRemote with the pinned message.
	_, _, body, _ = splitFrame(readGolden(t, "reply_error"))
	if _, err := decodeReply(body); !errors.Is(err, ErrRemote) ||
		!strings.Contains(err.Error(), "ghost") {
		t.Fatalf("reply_error decode: %v", err)
	}
	// CDR streams decode to the original values.
	vals, err := DecodeAll(readGolden(t, "cdr_primitives"))
	if err != nil || len(vals) != 10 {
		t.Fatalf("cdr_primitives: %d values, %v", len(vals), err)
	}
	if vals[6].(float64) != 3.14 || vals[8].(string) != "hello" {
		t.Fatalf("cdr_primitives values = %v", vals)
	}
	arrs, err := DecodeAll(readGolden(t, "cdr_arrays"))
	if err != nil || len(arrs) != 3 {
		t.Fatalf("cdr_arrays: %v %v", arrs, err)
	}
	if s := arrs[2].([]string); len(s) != 3 || s[1] != "" {
		t.Fatalf("cdr_arrays strings = %v", arrs[2])
	}
}
