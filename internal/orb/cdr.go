// Package orb implements the reproduction's CORBA-style object request
// broker baseline. The paper's §3.3 argues that CORBA "is far too
// inefficient when a method call is made within the same address space"
// because every request — local or remote — passes through marshaling and
// an object adapter. This package reproduces that cost structure:
//
//   - cdr.go: a CDR-flavoured value codec (common data representation);
//   - orb.go: an object adapter that dispatches marshaled requests to
//     registered servants via SIDL dynamic invocation, an in-process ORB
//     whose LocalProxy marshals every call (experiment E2's baseline), and
//     a remote ORB over repro/internal/transport.
package orb

import (
	"encoding/binary"
	"errors"
	"fmt"
	"math"
	"sync"
	"sync/atomic"

	"repro/internal/sidl/arena"
	"repro/internal/simd"
	"repro/internal/transport"
)

// Codec errors.
var (
	ErrEncode = errors.New("orb: cannot encode value")
	ErrDecode = errors.New("orb: malformed CDR stream")
)

// CDR type tags.
const (
	tagNil byte = iota
	tagBool
	tagInt32
	tagInt64
	tagFloat64
	tagComplex128
	tagString
	tagBytes
	tagFloat64Slice
	tagInt32Slice
	tagStringSlice
	tagInt // host int, encoded as int64
)

// Encoder serializes values in the ORB's common data representation.
// The zero value is ready to use.
type Encoder struct {
	buf []byte
	// shared is a reference-counted payload logically appended after buf
	// (see AppendSharedFloat64s). The encoder owns one reference until
	// Bytes flattens it, takeShared transfers it, or Reset/PutEncoder
	// drop it.
	shared *transport.SharedBuf
}

// Bytes returns the encoded stream. A pending shared payload is
// flattened (copied to the tail of the buffer) so the result is always
// the complete frame; senders that can splice the payload zero-copy use
// takeShared instead, before calling Bytes.
func (e *Encoder) Bytes() []byte {
	if e.shared != nil {
		e.buf = append(e.buf, e.shared.Bytes()...)
		e.shared.Release()
		e.shared = nil
	}
	return e.buf
}

// Reset clears the encoder for reuse.
func (e *Encoder) Reset() {
	e.buf = e.buf[:0]
	e.dropShared()
}

// AppendSharedFloat64s encodes a float64-slice value whose element bytes
// live in p (little-endian float64 bits; p.Len() must be a multiple of
// 8). The encoder takes its own reference on p — the caller keeps and
// releases its own — and the payload is logically the final bytes of the
// stream: this must be the last value encoded. Fan-out servers splice
// the same p into many replies without copying; every other consumer of
// the encoder sees identical bytes via the Bytes flatten path.
func (e *Encoder) AppendSharedFloat64s(p *transport.SharedBuf) error {
	if e.shared != nil {
		return fmt.Errorf("%w: shared payload already attached", ErrEncode)
	}
	if p.Len()%8 != 0 {
		return fmt.Errorf("%w: shared float64 payload of %d bytes", ErrEncode, p.Len())
	}
	e.buf = append(e.buf, tagFloat64Slice)
	e.u32(uint32(p.Len() / 8))
	p.Retain()
	e.shared = p
	return nil
}

// takeShared transfers the pending shared payload (and its reference) to
// the caller; after it returns non-nil, e.Bytes() is the frame prefix to
// send ahead of the payload.
func (e *Encoder) takeShared() *transport.SharedBuf {
	s := e.shared
	e.shared = nil
	return s
}

// dropShared releases a pending shared payload, for discard paths (error
// replies, pooling) that never send the frame.
func (e *Encoder) dropShared() {
	if e.shared != nil {
		e.shared.Release()
		e.shared = nil
	}
}

// maxPooledBuf caps the capacity of buffers kept in the encoder pool so one
// giant array transfer cannot pin memory for the rest of the run.
const maxPooledBuf = 1 << 20

var encoderPool = sync.Pool{New: func() any { return new(Encoder) }}

// GetEncoder returns a reset Encoder from the package pool. Pair with
// PutEncoder once the encoded bytes have been fully consumed (sent or
// copied) — the marshaling hot path then runs allocation-free at steady
// state.
func GetEncoder() *Encoder {
	e := encoderPool.Get().(*Encoder)
	e.Reset()
	return e
}

// PutEncoder returns e to the pool. The caller must not touch e or any
// slice obtained from e.Bytes() afterwards. A shared payload still
// attached (a reply discarded before sending) is released here.
func PutEncoder(e *Encoder) {
	if e == nil {
		return
	}
	e.dropShared()
	if cap(e.buf) > maxPooledBuf {
		return
	}
	encoderPool.Put(e)
}

// grow extends the buffer by n bytes and returns the new tail.
func (e *Encoder) grow(n int) []byte {
	l := len(e.buf)
	if cap(e.buf)-l < n {
		nb := make([]byte, l, 2*cap(e.buf)+n)
		copy(nb, e.buf)
		e.buf = nb
	}
	e.buf = e.buf[:l+n]
	return e.buf[l:]
}

func (e *Encoder) u32(v uint32) {
	binary.LittleEndian.PutUint32(e.grow(4), v)
}

func (e *Encoder) u64(v uint64) {
	binary.LittleEndian.PutUint64(e.grow(8), v)
}

// EncodeString appends a string.
func (e *Encoder) EncodeString(s string) {
	e.buf = append(e.buf, tagString)
	e.u32(uint32(len(s)))
	e.buf = append(e.buf, s...)
}

// Encode appends one tagged value. Supported types are SIDL's primitives
// and the rank-1 array mappings.
func (e *Encoder) Encode(v any) error {
	switch x := v.(type) {
	case nil:
		e.buf = append(e.buf, tagNil)
	case bool:
		e.buf = append(e.buf, tagBool)
		if x {
			e.buf = append(e.buf, 1)
		} else {
			e.buf = append(e.buf, 0)
		}
	case int32:
		e.buf = append(e.buf, tagInt32)
		e.u32(uint32(x))
	case int64:
		e.buf = append(e.buf, tagInt64)
		e.u64(uint64(x))
	case int:
		e.buf = append(e.buf, tagInt)
		e.u64(uint64(int64(x)))
	case float64:
		e.buf = append(e.buf, tagFloat64)
		e.u64(math.Float64bits(x))
	case complex128:
		e.buf = append(e.buf, tagComplex128)
		e.u64(math.Float64bits(real(x)))
		e.u64(math.Float64bits(imag(x)))
	case string:
		e.EncodeString(x)
	case []byte:
		e.buf = append(e.buf, tagBytes)
		e.u32(uint32(len(x)))
		e.buf = append(e.buf, x...)
	case []float64:
		e.buf = append(e.buf, tagFloat64Slice)
		e.u32(uint32(len(x)))
		simd.PackF64LE(e.grow(8*len(x)), x) // single grow, vectorized stores
	case []int32:
		e.buf = append(e.buf, tagInt32Slice)
		e.u32(uint32(len(x)))
		b := e.grow(4 * len(x))
		for i, n := range x {
			binary.LittleEndian.PutUint32(b[4*i:], uint32(n))
		}
	case []string:
		e.buf = append(e.buf, tagStringSlice)
		e.u32(uint32(len(x)))
		for _, s := range x {
			e.EncodeString(s)
		}
	default:
		return fmt.Errorf("%w: %T", ErrEncode, v)
	}
	return nil
}

// ResultFloat64 implements sreflect.ResultSink: dynamic-invocation
// results marshal straight into the reply stream, no boxing, no []any.
func (e *Encoder) ResultFloat64(v float64) {
	e.buf = append(e.buf, tagFloat64)
	e.u64(math.Float64bits(v))
}

// ResultInt32 implements sreflect.ResultSink.
func (e *Encoder) ResultInt32(v int32) {
	e.buf = append(e.buf, tagInt32)
	e.u32(uint32(v))
}

// ResultString implements sreflect.ResultSink.
func (e *Encoder) ResultString(s string) { e.EncodeString(s) }

// Float64SliceSpan appends an n-element float64-slice value and returns the
// 8n-byte span backing its elements, for the caller to fill with
// little-endian float64 bits. Bulk producers (the collective chunk servant)
// use it to pack array data straight into the wire buffer instead of
// building a []float64 only for Encode to copy it.
func (e *Encoder) Float64SliceSpan(n int) []byte {
	e.buf = append(e.buf, tagFloat64Slice)
	e.u32(uint32(n))
	return e.grow(8 * n)
}

// Decoder reads values back from a CDR stream.
type Decoder struct {
	buf   []byte
	off   int
	arena *arena.Arena
}

// NewDecoder wraps an encoded stream.
func NewDecoder(b []byte) *Decoder { return &Decoder{buf: b} }

// SetArena attaches (or, with nil, detaches) an arena. While attached,
// every value Decode returns — slices, strings, and the interface boxes
// holding scalars — lives in arena storage and is valid only until the
// arena's next Reset; in exchange, steady-state decoding allocates
// nothing. Callers that retain decoded values must use a plain decoder.
func (d *Decoder) SetArena(a *arena.Arena) { d.arena = a }

// f64s returns an m-element result slice: arena-backed when an arena is
// attached, freshly allocated otherwise.
func (d *Decoder) f64s(m int) []float64 {
	if d.arena != nil {
		return d.arena.Float64s(m)
	}
	return make([]float64, m)
}

// Boxing helpers: with an arena attached the interface conversion itself
// is allocation-free; without one these are ordinary conversions.

func (d *Decoder) anyOf(s []float64) any {
	if d.arena != nil {
		return d.arena.AnyFloat64Slice(s)
	}
	return s
}

func (d *Decoder) anyFloat64(v float64) any {
	if d.arena != nil {
		return d.arena.AnyFloat64(v)
	}
	return v
}

func (d *Decoder) anyInt32(v int32) any {
	if d.arena != nil {
		return d.arena.AnyInt32(v)
	}
	return v
}

func (d *Decoder) anyInt64(v int64) any {
	if d.arena != nil {
		return d.arena.AnyInt64(v)
	}
	return v
}

func (d *Decoder) anyInt(v int) any {
	if d.arena != nil {
		return d.arena.AnyInt(v)
	}
	return v
}

func (d *Decoder) anyStringBytes(b []byte) any {
	if d.arena != nil {
		return d.arena.AnyString(b)
	}
	return string(b)
}

// More reports whether undecoded bytes remain.
func (d *Decoder) More() bool { return d.off < len(d.buf) }

func (d *Decoder) take(n int) ([]byte, error) {
	if d.off+n > len(d.buf) {
		return nil, fmt.Errorf("%w: need %d bytes at offset %d of %d", ErrDecode, n, d.off, len(d.buf))
	}
	b := d.buf[d.off : d.off+n]
	d.off += n
	return b, nil
}

func (d *Decoder) u32() (uint32, error) {
	b, err := d.take(4)
	if err != nil {
		return 0, err
	}
	return binary.LittleEndian.Uint32(b), nil
}

func (d *Decoder) u64() (uint64, error) {
	b, err := d.take(8)
	if err != nil {
		return 0, err
	}
	return binary.LittleEndian.Uint64(b), nil
}

// elems validates a decoded element count against the bytes actually
// remaining, so a corrupt length prefix (e.g. 0xFFFFFFFF) fails fast with
// ErrDecode instead of forcing a multi-gigabyte allocation.
func (d *Decoder) elems(n uint32, size int) (int, error) {
	if int64(n)*int64(size) > int64(len(d.buf)-d.off) {
		return 0, fmt.Errorf("%w: %d elements of %dB exceed %d remaining bytes",
			ErrDecode, n, size, len(d.buf)-d.off)
	}
	return int(n), nil
}

// Interning for the request envelope's identifier strings (object keys and
// method names): every dispatched request re-decodes the same few names, so
// handing back one canonical copy removes two allocations per call. The
// table is a fixed-size direct-mapped cache of lock-free slots: a colliding
// name overwrites its slot, so remote-supplied garbage identifiers can only
// evict legitimate names transiently — they re-intern on their next use —
// and can never disable interning for the rest of the process.
const (
	maxInternLen = 64
	internSlots  = 4096 // power of two, ~hundreds of identifiers in practice
)

var internTab [internSlots]atomic.Pointer[string]

// internHash is FNV-1a; identifiers are short, so inlining the loop beats
// hash/fnv's interface plumbing.
func internHash(b []byte) uint32 {
	h := uint32(2166136261)
	for _, c := range b {
		h = (h ^ uint32(c)) * 16777619
	}
	return h
}

func intern(b []byte) string {
	if len(b) > maxInternLen {
		return string(b)
	}
	slot := &internTab[internHash(b)&(internSlots-1)]
	if p := slot.Load(); p != nil && *p == string(b) { // comparison does not copy
		return *p
	}
	s := string(b)
	slot.Store(&s)
	return s
}

// decodeStringInterned reads a string value and returns its interned copy;
// the dispatch path uses it for keys and method names.
func (d *Decoder) decodeStringInterned() (string, error) {
	tb, err := d.take(1)
	if err != nil {
		return "", err
	}
	if tb[0] != tagString {
		d.off-- // re-read through the generic path for the type error
		return d.DecodeString()
	}
	n, err := d.u32()
	if err != nil {
		return "", err
	}
	b, err := d.take(int(n))
	if err != nil {
		return "", err
	}
	return intern(b), nil
}

// DecodeString reads a string value (tag must be string).
func (d *Decoder) DecodeString() (string, error) {
	v, err := d.Decode()
	if err != nil {
		return "", err
	}
	s, ok := v.(string)
	if !ok {
		return "", fmt.Errorf("%w: expected string, got %T", ErrDecode, v)
	}
	return s, nil
}

// RawFloat64s reads a float64-slice value and returns its undecoded
// payload: 8 little-endian bytes per element, aliasing the decoder's
// buffer (valid only while the backing frame is held). Bulk consumers
// scatter straight from this view into their destination storage, merging
// the decode copy and the unpack copy into one pass.
func (d *Decoder) RawFloat64s() ([]byte, error) {
	tb, err := d.take(1)
	if err != nil {
		return nil, err
	}
	if tb[0] != tagFloat64Slice {
		return nil, fmt.Errorf("%w: expected float64 slice, got tag %d", ErrDecode, tb[0])
	}
	n, err := d.u32()
	if err != nil {
		return nil, err
	}
	m, err := d.elems(n, 8)
	if err != nil {
		return nil, err
	}
	return d.take(8 * m)
}

// Decode reads the next tagged value.
func (d *Decoder) Decode() (any, error) {
	tb, err := d.take(1)
	if err != nil {
		return nil, err
	}
	switch tb[0] {
	case tagNil:
		return nil, nil
	case tagBool:
		b, err := d.take(1)
		if err != nil {
			return nil, err
		}
		return b[0] != 0, nil
	case tagInt32:
		v, err := d.u32()
		if err != nil {
			return nil, err
		}
		return d.anyInt32(int32(v)), nil
	case tagInt64:
		v, err := d.u64()
		if err != nil {
			return nil, err
		}
		return d.anyInt64(int64(v)), nil
	case tagInt:
		v, err := d.u64()
		if err != nil {
			return nil, err
		}
		return d.anyInt(int(int64(v))), nil
	case tagFloat64:
		v, err := d.u64()
		if err != nil {
			return nil, err
		}
		return d.anyFloat64(math.Float64frombits(v)), nil
	case tagComplex128:
		re, err := d.u64()
		if err != nil {
			return nil, err
		}
		im, err := d.u64()
		if err != nil {
			return nil, err
		}
		return complex(math.Float64frombits(re), math.Float64frombits(im)), nil
	case tagString:
		n, err := d.u32()
		if err != nil {
			return nil, err
		}
		b, err := d.take(int(n))
		if err != nil {
			return nil, err
		}
		return d.anyStringBytes(b), nil
	case tagBytes:
		n, err := d.u32()
		if err != nil {
			return nil, err
		}
		b, err := d.take(int(n))
		if err != nil {
			return nil, err
		}
		if d.arena != nil {
			return d.arena.AnyBytes(b), nil
		}
		return append([]byte(nil), b...), nil
	case tagFloat64Slice:
		n, err := d.u32()
		if err != nil {
			return nil, err
		}
		m, err := d.elems(n, 8)
		if err != nil {
			return nil, err
		}
		b, err := d.take(8 * m)
		if err != nil {
			return nil, err
		}
		out := d.f64s(m)
		simd.UnpackF64LE(out, b)
		return d.anyOf(out), nil
	case tagInt32Slice:
		n, err := d.u32()
		if err != nil {
			return nil, err
		}
		m, err := d.elems(n, 4)
		if err != nil {
			return nil, err
		}
		b, err := d.take(4 * m)
		if err != nil {
			return nil, err
		}
		var out []int32
		if d.arena != nil {
			out = d.arena.Int32s(m)
		} else {
			out = make([]int32, m)
		}
		for i := range out {
			out[i] = int32(binary.LittleEndian.Uint32(b[4*i:]))
		}
		if d.arena != nil {
			return d.arena.AnyInt32Slice(out), nil
		}
		return out, nil
	case tagStringSlice:
		n, err := d.u32()
		if err != nil {
			return nil, err
		}
		// The shortest string element is 5 bytes (tag + length prefix).
		m, err := d.elems(n, 5)
		if err != nil {
			return nil, err
		}
		out := make([]string, m)
		for i := range out {
			s, err := d.DecodeString()
			if err != nil {
				return nil, err
			}
			out[i] = s
		}
		return out, nil
	default:
		return nil, fmt.Errorf("%w: unknown tag %d", ErrDecode, tb[0])
	}
}

// EncodeAll encodes a value list into a fresh buffer.
func EncodeAll(vals ...any) ([]byte, error) {
	var e Encoder
	for _, v := range vals {
		if err := e.Encode(v); err != nil {
			return nil, err
		}
	}
	return e.Bytes(), nil
}

// DecodeAll decodes every value in the stream.
func DecodeAll(b []byte) ([]any, error) {
	d := NewDecoder(b)
	var out []any
	for d.More() {
		v, err := d.Decode()
		if err != nil {
			return nil, err
		}
		out = append(out, v)
	}
	return out, nil
}
